(** Deterministic workload generator for concrete (execution-time) runs;
    seeded LCG, fully reproducible. *)

val random : seed:int -> size:int -> string
(** Uniform random bytes (may contain NULs). *)

val text : seed:int -> size:int -> string
(** Text-like input (letters, digits, whitespace, separators; no NULs), the
    distribution the corpus's interesting paths care about. *)

val batch : seed:int -> size:int -> count:int -> string list
(** Independent text inputs for throughput measurements. *)
