(** The evaluation corpus: UNIX-utility-style MiniC programs standing in for
    Coreutils 6.10 (see DESIGN.md "Substitutions").  Every program reads the
    symbolic input through [read_input]/[__input] and writes through
    [__output]. *)

type t = {
  name : string;
  descr : string;
  source : string;  (** MiniC source; link with {!Overify_vclib.Vclib} *)
}

val programs : t list
(** All bundled utilities, including the paper's Listing-1 [wc]. *)

val find : string -> t option
val names : string list
