(** The evaluation corpus: UNIX-utility-style MiniC programs standing in for
    Coreutils 6.10 (see DESIGN.md "Substitutions").  Every program reads the
    symbolic input through [read_input]/[__input], writes through
    [__output], and exercises the shapes that drive the paper's numbers:
    input-scanning loops, character classification, tables, nested
    conditions, and libc calls. *)

type t = {
  name : string;
  descr : string;
  source : string;
}

let p name descr source = { name; descr; source }

let programs : t list =
  [
    p "wc" "word count (the paper's Listing 1)" {|
int wc_count(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *q = str; *q; ++q) {
    if (isspace((int)*q) || (any && !isalpha((int)*q))) {
      new_word = 1;
    } else {
      if (new_word) { ++res; new_word = 0; }
    }
  }
  return res;
}
int main(void) {
  char buf[24];
  read_input(buf, 24);
  return wc_count((unsigned char *)buf, 1);
}
|};
    p "echo" "copy input to output, expanding \\n escapes" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    if (buf[i] == '\\' && i + 1 < n && buf[i + 1] == 'n') {
      __output('\n');
      i++;
    } else {
      __output(buf[i]);
    }
  }
  __output('\n');
  return 0;
}
|};
    p "cat" "copy input, with line numbering when it starts with '#'" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int number = n > 0 && buf[0] == '#';
  int line = 1;
  int at_bol = 1;
  for (int i = number; i < n; i++) {
    if (number && at_bol) {
      print_int(line);
      __output('\t');
      at_bol = 0;
    }
    __output(buf[i]);
    if (buf[i] == '\n') { line++; at_bol = 1; }
  }
  return 0;
}
|};
    p "true" "exit 0" {|
int main(void) { return 0; }
|};
    p "false" "exit 1" {|
int main(void) { return 1; }
|};
    p "yes" "repeat the first input character" {|
int main(void) {
  char buf[8];
  int n = read_input(buf, 8);
  if (n == 0) return 1;
  int reps = (buf[0] & 3) + 1;
  for (int i = 0; i < reps; i++) {
    __output(buf[0]);
    __output('\n');
  }
  return 0;
}
|};
    p "basename" "strip directory prefix" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n == 0) return 1;
  char *slash = strrchr(buf, '/');
  char *base = slash ? slash + 1 : buf;
  if (*base == 0) base = buf;    /* path ends in '/' */
  puts_(base);
  __output('\n');
  return 0;
}
|};
    p "dirname" "strip the last path component" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n == 0) return 1;
  char *slash = strrchr(buf, '/');
  if (!slash) { puts_("."); __output('\n'); return 0; }
  if (slash == buf) { puts_("/"); __output('\n'); return 0; }
  *slash = 0;
  puts_(buf);
  __output('\n');
  return 0;
}
|};
    p "head" "print the first K lines (K from the first byte)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n == 0) return 0;
  int k = (buf[0] & 3) + 1;
  int lines = 0;
  for (int i = 1; i < n && lines < k; i++) {
    __output(buf[i]);
    if (buf[i] == '\n') lines++;
  }
  return 0;
}
|};
    p "tail" "print the last line" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int start = 0;
  for (int i = 0; i < n; i++) {
    if (buf[i] == '\n' && i + 1 < n) start = i + 1;
  }
  for (int i = start; i < n; i++) __output(buf[i]);
  return 0;
}
|};
    p "tr" "translate characters (from/to in the first two bytes)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 2) return 1;
  char from = buf[0];
  char to = buf[1];
  for (int i = 2; i < n; i++) {
    char c = buf[i];
    __output(c == from ? to : c);
  }
  return 0;
}
|};
    p "cut" "print the second ':'-separated field" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int field = 0;
  for (int i = 0; i < n; i++) {
    if (buf[i] == ':') { field++; continue; }
    if (field == 1) __output(buf[i]);
  }
  return field >= 1 ? 0 : 1;
}
|};
    p "seq" "count from 1 to atoi(input) (clamped)" {|
int main(void) {
  char buf[16];
  read_input(buf, 16);
  int k = atoi(buf);
  if (k < 0) return 1;
  if (k > 9) k = 9;
  for (int i = 1; i <= k; i++) {
    print_int(i);
    __output('\n');
  }
  return 0;
}
|};
    p "sum" "BSD 16-bit rotating checksum" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  unsigned int ck = 0;
  for (int i = 0; i < n; i++) {
    ck = (ck >> 1) + ((ck & 1) << 15);
    ck = ck + (unsigned int)(unsigned char)buf[i];
    ck = ck & 0xffff;
  }
  print_int((int)ck);
  __output('\n');
  return 0;
}
|};
    p "cksum" "CRC-32 with a computed table (constant-trip table loop)" {|
unsigned int crc_table[256];
void build_table(void) {
  for (int i = 0; i < 256; i++) {
    unsigned int c = (unsigned int)i << 24;
    for (int j = 0; j < 8; j++) {
      if (c & 0x80000000u) c = (c << 1) ^ 0x04c11db7u;
      else c = c << 1;
    }
    crc_table[i] = c;
  }
}
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  build_table();
  unsigned int crc = 0;
  for (int i = 0; i < n; i++) {
    int idx = (int)(((crc >> 24) ^ (unsigned int)(unsigned char)buf[i]) & 0xffu);
    crc = (crc << 8) ^ crc_table[idx];
  }
  print_uint_base(crc, 16);
  __output('\n');
  return 0;
}
|};
    p "od" "octal dump" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    print_uint_base((unsigned int)(unsigned char)buf[i], 8);
    __output(i + 1 < n ? ' ' : '\n');
  }
  return 0;
}
|};
    p "rev" "reverse the input" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = n - 1; i >= 0; i--) __output(buf[i]);
  __output('\n');
  return 0;
}
|};
    p "nl" "number non-empty lines" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int line = 1;
  int at_bol = 1;
  for (int i = 0; i < n; i++) {
    if (at_bol && buf[i] != '\n') {
      print_int(line);
      __output(' ');
      line++;
      at_bol = 0;
    }
    __output(buf[i]);
    if (buf[i] == '\n') at_bol = 1;
  }
  return 0;
}
|};
    p "expand" "tabs to spaces (tab stop 4)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  unsigned int col = 0;
  for (int i = 0; i < n; i++) {
    if (buf[i] == '\t') {
      do { __output(' '); col++; } while (col % 4u != 0u);
    } else {
      __output(buf[i]);
      col = buf[i] == '\n' ? 0u : col + 1u;
    }
  }
  return 0;
}
|};
    p "unexpand" "leading spaces to tabs (tab stop 4)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int spaces = 0;
  int at_bol = 1;
  for (int i = 0; i < n; i++) {
    if (at_bol && buf[i] == ' ') {
      spaces++;
      if (spaces == 4) { __output('\t'); spaces = 0; }
    } else {
      while (spaces > 0) { __output(' '); spaces--; }
      at_bol = buf[i] == '\n';
      __output(buf[i]);
    }
  }
  while (spaces > 0) { __output(' '); spaces--; }
  return 0;
}
|};
    p "fold" "wrap lines at column 8" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int col = 0;
  for (int i = 0; i < n; i++) {
    if (buf[i] == '\n') col = 0;
    else if (col == 8) { __output('\n'); col = 0; }
    __output(buf[i]);
    col++;
  }
  return 0;
}
|};
    p "uniq" "drop repeated adjacent lines" {|
int main(void) {
  char buf[24];
  char prev[24];
  char cur[24];
  int n = read_input(buf, 24);
  prev[0] = 0;
  int have_prev = 0;
  int pos = 0;
  int ci = 0;
  while (pos <= n) {
    char c = pos < n ? buf[pos] : '\n';
    if (c == '\n') {
      cur[ci] = 0;
      if (ci > 0 && (!have_prev || strcmp(cur, prev) != 0)) {
        puts_(cur);
        __output('\n');
      }
      strcpy(prev, cur);
      have_prev = 1;
      ci = 0;
    } else if (ci < 23) {
      cur[ci] = c;
      ci++;
    }
    pos++;
  }
  return 0;
}
|};
    p "sort" "sort the input bytes (insertion sort)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 1; i < n; i++) {
    char key = buf[i];
    int j = i - 1;
    while (j >= 0 && buf[j] > key) {
      buf[j + 1] = buf[j];
      j--;
    }
    buf[j + 1] = key;
  }
  for (int i = 0; i < n; i++) __output(buf[i]);
  return 0;
}
|};
    p "grep" "print lines containing the pattern byte" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 1) return 2;
  char pat = buf[0];
  int start = 1;
  int found = 0;
  for (int i = 1; i <= n; i++) {
    if (i == n || buf[i] == '\n') {
      int hit = 0;
      for (int j = start; j < i; j++) {
        if (buf[j] == pat) hit = 1;
      }
      if (hit) {
        for (int j = start; j < i; j++) __output(buf[j]);
        __output('\n');
        found = 1;
      }
      start = i + 1;
    }
  }
  return found ? 0 : 1;
}
|};
    p "test" "evaluate 'N<op>M' with op in {=,<,>}" {|
int main(void) {
  char buf[16];
  int n = read_input(buf, 16);
  int i = 0;
  int a = 0;
  while (i < n && isdigit((int)buf[i])) { a = a * 10 + (buf[i] - '0'); i++; }
  if (i >= n) return 2;
  char op = buf[i];
  i++;
  int b = 0;
  int got = 0;
  while (i < n && isdigit((int)buf[i])) { b = b * 10 + (buf[i] - '0'); i++; got = 1; }
  if (!got) return 2;
  if (op == '=') return a == b ? 0 : 1;
  if (op == '<') return a < b ? 0 : 1;
  if (op == '>') return a > b ? 0 : 1;
  return 2;
}
|};
    p "factor" "smallest prime factor of atoi(input)" {|
int main(void) {
  char buf[16];
  read_input(buf, 16);
  int v = atoi(buf);
  if (v < 2) return 1;
  if (v > 997) v = 997;
  for (int d = 2; d * d <= v; d++) {
    if (v % d == 0) {
      print_int(d);
      __output('\n');
      return 0;
    }
  }
  print_int(v);
  __output('\n');
  return 0;
}
|};
    p "base64" "base64-encode the input (table lookup + bit packing)" {|
char b64[65] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int i = 0;
  while (i + 2 < n) {
    int v = ((int)(unsigned char)buf[i] << 16)
          | ((int)(unsigned char)buf[i + 1] << 8)
          | (int)(unsigned char)buf[i + 2];
    __output(b64[(v >> 18) & 63]);
    __output(b64[(v >> 12) & 63]);
    __output(b64[(v >> 6) & 63]);
    __output(b64[v & 63]);
    i += 3;
  }
  if (n - i == 1) {
    int v = (int)(unsigned char)buf[i] << 16;
    __output(b64[(v >> 18) & 63]);
    __output(b64[(v >> 12) & 63]);
    __output('=');
    __output('=');
  } else if (n - i == 2) {
    int v = ((int)(unsigned char)buf[i] << 16) | ((int)(unsigned char)buf[i + 1] << 8);
    __output(b64[(v >> 18) & 63]);
    __output(b64[(v >> 12) & 63]);
    __output(b64[(v >> 6) & 63]);
    __output('=');
  }
  return 0;
}
|};
    p "paste" "join lines with tabs" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    if (buf[i] == '\n' && i + 1 < n) __output('\t');
    else __output(buf[i]);
  }
  __output('\n');
  return 0;
}
|};
    p "printf" "minimal %d/%c/%% formatter over fixed arguments" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int arg = 42;
  for (int i = 0; i < n; i++) {
    if (buf[i] == '%' && i + 1 < n) {
      i++;
      if (buf[i] == 'd') { print_int(arg); arg++; }
      else if (buf[i] == 'c') { __output('*'); }
      else if (buf[i] == '%') { __output('%'); }
      else return 1;
    } else {
      __output(buf[i]);
    }
  }
  return 0;
}
|};
    p "tac" "print lines in reverse order" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int end = n;
  for (int i = n - 1; i >= -1; i--) {
    if (i < 0 || buf[i] == '\n') {
      for (int j = i + 1; j < end; j++) __output(buf[j]);
      __output('\n');
      end = i;
    }
  }
  return 0;
}
|};
    p "wcfull" "count lines, words and bytes (wc without flags)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int lines = 0;
  int words = 0;
  int in_word = 0;
  for (int i = 0; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    if (c == '\n') lines++;
    if (isspace(c)) in_word = 0;
    else if (!in_word) { words++; in_word = 1; }
  }
  print_int(lines); __output(' ');
  print_int(words); __output(' ');
  print_int(n); __output('\n');
  return 0;
}
|};
    p "cmp" "compare the two ';'-separated halves byte by byte" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  char *semi = strchr(buf, ';');
  if (!semi) return 2;
  *semi = 0;
  char *a = buf;
  char *b = semi + 1;
  int i = 0;
  while (a[i] && b[i]) {
    if (a[i] != b[i]) {
      puts_("differ: ");
      print_int(i + 1);
      __output('\n');
      return 1;
    }
    i++;
  }
  if (a[i] != b[i]) { puts_("eof\n"); return 1; }
  return 0;
}
|};
    p "strings" "print runs of 3+ printable characters" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  int start = 0;
  int run = 0;
  for (int i = 0; i <= n; i++) {
    int printable = i < n && isprint((int)(unsigned char)buf[i]);
    if (printable) {
      if (run == 0) start = i;
      run++;
    } else {
      if (run >= 3) {
        for (int j = start; j < i; j++) __output(buf[j]);
        __output('\n');
      }
      run = 0;
    }
  }
  return 0;
}
|};
    p "lcase" "lowercase the input (tr A-Z a-z)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++)
    __output(tolower((int)(unsigned char)buf[i]));
  return 0;
}
|};
    p "rot13" "ROT13 the input" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    if (islower(c)) c = 'a' + (c - 'a' + 13) % 26;
    else if (isupper(c)) c = 'A' + (c - 'A' + 13) % 26;
    __output(c);
  }
  return 0;
}
|};
    p "hexdump" "two-digit hex dump" {|
char hexdigits[17] = "0123456789abcdef";
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    __output(hexdigits[(c >> 4) & 15]);
    __output(hexdigits[c & 15]);
    __output(i + 1 < n ? ' ' : '\n');
  }
  return 0;
}
|};
    p "sysvsum" "System V checksum" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  unsigned int s = 0;
  for (int i = 0; i < n; i++) s += (unsigned int)(unsigned char)buf[i];
  unsigned int r = (s & 0xffff) + ((s & 0xffffffff) >> 16);
  unsigned int ck = (r & 0xffff) + (r >> 16);
  print_int((int)ck);
  __output('\n');
  return 0;
}
|};
    p "look" "print the value for a key in 'key;k1=v1;k2=v2' input" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  char *semi = strchr(buf, ';');
  if (!semi) return 2;
  *semi = 0;
  char *rest = semi + 1;
  int keylen = strlen(buf);
  while (*rest) {
    /* compare the next entry's key */
    if (strncmp(rest, buf, keylen) == 0 && rest[keylen] == '=') {
      char *v = rest + keylen + 1;
      while (*v && *v != ';') { __output(*v); v++; }
      __output('\n');
      return 0;
    }
    while (*rest && *rest != ';') rest++;
    if (*rest == ';') rest++;
  }
  return 1;
}
|};
    p "split" "print the first or second half (flag in first byte)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 1) return 1;
  int half = (n - 1) / 2;
  int second = buf[0] & 1;
  int from = second ? 1 + half : 1;
  int to = second ? n : 1 + half;
  for (int i = from; i < to; i++) __output(buf[i]);
  return 0;
}
|};
    p "shuf" "deterministic LCG shuffle (seed in first byte)" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 2) return 0;
  unsigned int seed = (unsigned int)(unsigned char)buf[0];
  for (int i = n - 1; i > 1; i--) {
    seed = seed * 1103515245u + 12345u;
    int j = 1 + (int)((seed >> 16) % (unsigned int)i);
    char tmp = buf[i];
    buf[i] = buf[j];
    buf[j] = tmp;
  }
  for (int i = 1; i < n; i++) __output(buf[i]);
  return 0;
}
|};
    p "expr" "evaluate 'A?B' for ? in {+,-,*}" {|
int main(void) {
  char buf[16];
  int n = read_input(buf, 16);
  int i = 0;
  int a = 0;
  int got = 0;
  while (i < n && isdigit((int)buf[i])) { a = a * 10 + (buf[i] - '0'); i++; got = 1; }
  if (!got || i >= n) return 2;
  char op = buf[i];
  i++;
  int b = 0;
  got = 0;
  while (i < n && isdigit((int)buf[i])) { b = b * 10 + (buf[i] - '0'); i++; got = 1; }
  if (!got) return 2;
  int r;
  if (op == '+') r = a + b;
  else if (op == '-') r = a - b;
  else if (op == '*') r = a * b;
  else return 2;
  print_int(r);
  __output('\n');
  return 0;
}
|};
    p "dd" "copy with skip and count from the first two bytes" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 2) return 1;
  int skip = buf[0] & 7;
  int count = (buf[1] & 7) + 1;
  int copied = 0;
  for (int i = 2 + skip; i < n && copied < count; i++) {
    __output(buf[i]);
    copied++;
  }
  print_int(copied);
  __output('\n');
  return 0;
}
|};
    p "join" "join the first two ':' fields with '-'" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  char *colon = strchr(buf, ':');
  if (!colon) return 1;
  *colon = 0;
  puts_(buf);
  __output('-');
  char *second = colon + 1;
  int i = 0;
  while (second[i] && second[i] != ':') { __output(second[i]); i++; }
  __output('\n');
  return 0;
}
|};
    p "caesar" "Caesar cipher, shift in the first byte" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  if (n < 1) return 1;
  int shift = buf[0] % 26;
  if (shift < 0) shift += 26;
  for (int i = 1; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    if (islower(c)) c = 'a' + (c - 'a' + shift) % 26;
    else if (isupper(c)) c = 'A' + (c - 'A' + shift) % 26;
    __output(c);
  }
  return 0;
}
|};
    p "csplit" "print the prefix up to the first '%'" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  for (int i = 0; i < n; i++) {
    if (buf[i] == '%') return 0;
    __output(buf[i]);
  }
  return 1;  /* delimiter not found */
}
|};
    p "cksum2" "djb2 hash of the input" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  unsigned int h = 5381;
  for (int i = 0; i < n; i++)
    h = h * 33u + (unsigned int)(unsigned char)buf[i];
  print_uint_base(h, 16);
  __output('\n');
  return 0;
}
|};
    p "comm" "compare the two ';'-separated halves" {|
int main(void) {
  char buf[24];
  int n = read_input(buf, 24);
  char *semi = strchr(buf, ';');
  if (!semi) return 2;
  *semi = 0;
  int r = strcmp(buf, semi + 1);
  if (r == 0) { puts_("same"); __output('\n'); return 0; }
  puts_(r < 0 ? "lt" : "gt");
  __output('\n');
  return 1;
}
|};
  ]

let find name = List.find_opt (fun t -> t.name = name) programs

let names = List.map (fun t -> t.name) programs
