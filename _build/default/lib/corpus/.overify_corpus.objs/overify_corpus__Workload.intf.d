lib/corpus/workload.mli:
