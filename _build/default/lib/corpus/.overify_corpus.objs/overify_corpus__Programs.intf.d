lib/corpus/programs.mli:
