lib/corpus/workload.ml: Char Int64 List String
