lib/corpus/programs.ml: List
