(** Deterministic workload generator for concrete (execution-time) runs.

    A small LCG produces reproducible pseudo-random inputs; [text] skews the
    distribution toward letters/spaces/newlines so that the utilities'
    interesting paths (word boundaries, line handling) are actually
    exercised, like the text workload used for the paper's t_run column. *)

type gen = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed * 2 + 1) }

let next g =
  (* Knuth MMIX LCG *)
  g.state <-
    Int64.add (Int64.mul g.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical g.state 33)

let byte g = next g land 0xFF

(** Uniformly random bytes (may contain NULs). *)
let random ~seed ~size =
  let g = create seed in
  String.init size (fun _ -> Char.chr (byte g))

let text_alphabet = "abcdefghijklm nopqrstuvwxyz \nABCDE 0123456789 /.:;%\t"

(** Text-like input: letters, digits, whitespace, separators; no NULs. *)
let text ~seed ~size =
  let g = create seed in
  String.init size (fun _ ->
      text_alphabet.[next g mod String.length text_alphabet])

(** A batch of text inputs for throughput measurements. *)
let batch ~seed ~size ~count =
  List.init count (fun i -> text ~seed:(seed + (i * 7919)) ~size)
