(** Hand-written lexer for MiniC. *)

type loc = { line : int; col : int }

exception Error of loc * string

let pp_loc l = Printf.sprintf "%d:%d" l.line l.col

type lexed = { tok : Token.t; loc : loc }

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let loc_of lx = { line = lx.line; col = lx.pos - lx.bol + 1 }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let error lx msg = raise (Error (loc_of lx, msg))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_ws_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws_comments lx
  | Some '/' when peek2 lx = Some '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do advance lx done;
      skip_ws_comments lx
  | Some '/' when peek2 lx = Some '*' ->
      advance lx; advance lx;
      let rec go () =
        match peek_char lx with
        | None -> error lx "unterminated comment"
        | Some '*' when peek2 lx = Some '/' -> advance lx; advance lx
        | Some _ -> advance lx; go ()
      in
      go ();
      skip_ws_comments lx
  | _ -> ()

let read_escape lx =
  (* called after the backslash has been consumed *)
  match peek_char lx with
  | None -> error lx "unterminated escape"
  | Some c ->
      advance lx;
      (match c with
      | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
      | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
      | 'x' ->
          let hex = Buffer.create 2 in
          let rec go () =
            match peek_char lx with
            | Some c when is_hex c && Buffer.length hex < 2 ->
                Buffer.add_char hex c; advance lx; go ()
            | _ -> ()
          in
          go ();
          if Buffer.length hex = 0 then error lx "empty \\x escape";
          Char.chr (int_of_string ("0x" ^ Buffer.contents hex))
      | c -> error lx (Printf.sprintf "unknown escape \\%c" c))

let read_number lx =
  let start = lx.pos in
  let hex =
    peek_char lx = Some '0' && (peek2 lx = Some 'x' || peek2 lx = Some 'X')
  in
  if hex then begin
    advance lx; advance lx;
    while (match peek_char lx with Some c -> is_hex c | None -> false) do
      advance lx
    done
  end
  else
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
  let text = String.sub lx.src start (lx.pos - start) in
  (* integer suffixes: u/U ignored (the type system treats literals as int),
     l/L widens the literal to long *)
  let is_long = ref false in
  while (match peek_char lx with
         | Some ('u' | 'U' | 'l' | 'L') -> true
         | _ -> false) do
    (match peek_char lx with
    | Some ('l' | 'L') -> is_long := true
    | _ -> ());
    advance lx
  done;
  match Int64.of_string_opt text with
  | Some v -> if !is_long then Token.LONG_LIT v else Token.INT_LIT v
  | None -> error lx ("bad integer literal " ^ text)

let next (lx : t) : lexed =
  skip_ws_comments lx;
  let loc = loc_of lx in
  let ret tok = { tok; loc } in
  let one tok = advance lx; ret tok in
  let two tok = advance lx; advance lx; ret tok in
  match peek_char lx with
  | None -> ret Token.EOF
  | Some c when is_digit c -> ret (read_number lx)
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_ident_char c | None -> false)
      do advance lx done;
      let text = String.sub lx.src start (lx.pos - start) in
      ret
        (match List.assoc_opt text Token.keywords with
        | Some kw -> kw
        | None -> Token.IDENT text)
  | Some '\'' ->
      advance lx;
      let c =
        match peek_char lx with
        | None -> error lx "unterminated char literal"
        | Some '\\' -> advance lx; read_escape lx
        | Some c -> advance lx; c
      in
      if peek_char lx <> Some '\'' then error lx "unterminated char literal";
      advance lx;
      ret (Token.CHAR_LIT c)
  | Some '"' ->
      advance lx;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char lx with
        | None -> error lx "unterminated string literal"
        | Some '"' -> advance lx
        | Some '\\' -> advance lx; Buffer.add_char buf (read_escape lx); go ()
        | Some c -> advance lx; Buffer.add_char buf c; go ()
      in
      go ();
      ret (Token.STR_LIT (Buffer.contents buf))
  | Some '(' -> one Token.LPAREN
  | Some ')' -> one Token.RPAREN
  | Some '{' -> one Token.LBRACE
  | Some '}' -> one Token.RBRACE
  | Some '[' -> one Token.LBRACKET
  | Some ']' -> one Token.RBRACKET
  | Some ';' -> one Token.SEMI
  | Some ',' -> one Token.COMMA
  | Some '?' -> one Token.QUESTION
  | Some ':' -> one Token.COLON
  | Some '~' -> one Token.TILDE
  | Some '+' -> (
      match peek2 lx with
      | Some '+' -> two Token.PLUSPLUS
      | Some '=' -> two Token.PLUS_ASSIGN
      | _ -> one Token.PLUS)
  | Some '-' -> (
      match peek2 lx with
      | Some '-' -> two Token.MINUSMINUS
      | Some '=' -> two Token.MINUS_ASSIGN
      | _ -> one Token.MINUS)
  | Some '*' ->
      if peek2 lx = Some '=' then two Token.STAR_ASSIGN else one Token.STAR
  | Some '/' ->
      if peek2 lx = Some '=' then two Token.SLASH_ASSIGN else one Token.SLASH
  | Some '%' ->
      if peek2 lx = Some '=' then two Token.PERCENT_ASSIGN else one Token.PERCENT
  | Some '^' ->
      if peek2 lx = Some '=' then two Token.CARET_ASSIGN else one Token.CARET
  | Some '!' -> if peek2 lx = Some '=' then two Token.NEQ else one Token.BANG
  | Some '=' -> if peek2 lx = Some '=' then two Token.EQEQ else one Token.ASSIGN
  | Some '&' -> (
      match peek2 lx with
      | Some '&' -> two Token.AMPAMP
      | Some '=' -> two Token.AMP_ASSIGN
      | _ -> one Token.AMP)
  | Some '|' -> (
      match peek2 lx with
      | Some '|' -> two Token.PIPEPIPE
      | Some '=' -> two Token.PIPE_ASSIGN
      | _ -> one Token.PIPE)
  | Some '<' -> (
      match peek2 lx with
      | Some '<' ->
          advance lx; advance lx;
          if peek_char lx = Some '=' then begin
            advance lx; ret Token.LSHIFT_ASSIGN
          end
          else ret Token.LSHIFT
      | Some '=' -> two Token.LE
      | _ -> one Token.LT)
  | Some '>' -> (
      match peek2 lx with
      | Some '>' ->
          advance lx; advance lx;
          if peek_char lx = Some '=' then begin
            advance lx; ret Token.RSHIFT_ASSIGN
          end
          else ret Token.RSHIFT
      | Some '=' -> two Token.GE
      | _ -> one Token.GT)
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(** Tokenize a whole source string. *)
let tokenize src : lexed list =
  let lx = create src in
  let rec go acc =
    let l = next lx in
    if l.tok = Token.EOF then List.rev (l :: acc) else go (l :: acc)
  in
  go []
