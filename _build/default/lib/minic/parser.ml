(** Recursive-descent parser for MiniC with precedence-climbing expression
    parsing (precedence table matches C). *)

open Ast

exception Error of loc * string

type t = { toks : Lexer.lexed array; mutable pos : int }

let make toks = { toks = Array.of_list toks; pos = 0 }

let cur p = p.toks.(p.pos).Lexer.tok
let cur_loc p = p.toks.(p.pos).Lexer.loc

let peek_ahead p n =
  let i = p.pos + n in
  if i < Array.length p.toks then p.toks.(i).Lexer.tok else Token.EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let error p msg = raise (Error (cur_loc p, msg))

let expect p tok =
  if cur p = tok then advance p
  else
    error p
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (cur p)))

let accept p tok = if cur p = tok then (advance p; true) else false

(* ---------------- types ---------------- *)

let starts_type p =
  match cur p with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_CONST ->
      true
  | _ -> false

(** Parse a type specifier: [const]? [signed|unsigned]? base, then [*]*.
    (We accept C's flexible keyword order for the common cases.) *)
let parse_base_type p : cty =
  let signedness = ref None in
  let base = ref None in
  let progress = ref true in
  while !progress do
    progress := true;
    match cur p with
    | Token.KW_CONST -> advance p
    | Token.KW_UNSIGNED -> signedness := Some false; advance p
    | Token.KW_SIGNED -> signedness := Some true; advance p
    | Token.KW_VOID -> base := Some CVoid; advance p
    | Token.KW_CHAR -> base := Some (CInt (W8, true)); advance p
    | Token.KW_SHORT ->
        advance p;
        ignore (accept p Token.KW_INT);
        base := Some (CInt (W16, true))
    | Token.KW_INT -> base := Some (CInt (W32, true)); advance p
    | Token.KW_LONG ->
        advance p;
        ignore (accept p Token.KW_LONG);
        ignore (accept p Token.KW_INT);
        base := Some (CInt (W64, true))
    | _ -> progress := false
  done;
  let t =
    match (!base, !signedness) with
    | (Some CVoid, _) -> CVoid
    | (Some (CInt (w, _)), Some s) -> CInt (w, s)
    | (Some (CInt (w, s)), None) -> CInt (w, s)
    | (Some t, _) -> t
    | (None, Some s) -> CInt (W32, s)  (* bare "unsigned" / "signed" *)
    | (None, None) -> error p "expected type"
  in
  let t = ref t in
  while accept p Token.STAR do
    ignore (accept p Token.KW_CONST);
    t := CPtr !t
  done;
  !t

(* ---------------- expressions ---------------- *)

let prec_of = function
  | Token.STAR | Token.SLASH | Token.PERCENT -> 13
  | Token.PLUS | Token.MINUS -> 12
  | Token.LSHIFT | Token.RSHIFT -> 11
  | Token.LT | Token.GT | Token.LE | Token.GE -> 10
  | Token.EQEQ | Token.NEQ -> 9
  | Token.AMP -> 8
  | Token.CARET -> 7
  | Token.PIPE -> 6
  | Token.AMPAMP -> 5
  | Token.PIPEPIPE -> 4
  | _ -> 0

let binop_of = function
  | Token.STAR -> Bmul | Token.SLASH -> Bdiv | Token.PERCENT -> Bmod
  | Token.PLUS -> Badd | Token.MINUS -> Bsub
  | Token.LSHIFT -> Bshl | Token.RSHIFT -> Bshr
  | Token.LT -> Blt | Token.GT -> Bgt | Token.LE -> Ble | Token.GE -> Bge
  | Token.EQEQ -> Beq | Token.NEQ -> Bne
  | Token.AMP -> Band | Token.CARET -> Bxor | Token.PIPE -> Bor
  | Token.AMPAMP -> Bland | Token.PIPEPIPE -> Blor
  | _ -> invalid_arg "binop_of"

let assign_op_of = function
  | Token.ASSIGN -> Some None
  | Token.PLUS_ASSIGN -> Some (Some Badd)
  | Token.MINUS_ASSIGN -> Some (Some Bsub)
  | Token.STAR_ASSIGN -> Some (Some Bmul)
  | Token.SLASH_ASSIGN -> Some (Some Bdiv)
  | Token.PERCENT_ASSIGN -> Some (Some Bmod)
  | Token.AMP_ASSIGN -> Some (Some Band)
  | Token.PIPE_ASSIGN -> Some (Some Bor)
  | Token.CARET_ASSIGN -> Some (Some Bxor)
  | Token.LSHIFT_ASSIGN -> Some (Some Bshl)
  | Token.RSHIFT_ASSIGN -> Some (Some Bshr)
  | _ -> None

let rec parse_expr p : expr = parse_comma p

and parse_comma p =
  let loc = cur_loc p in
  let e = parse_assign p in
  if cur p = Token.COMMA then begin
    advance p;
    let rest = parse_comma p in
    { e = Comma (e, rest); eloc = loc }
  end
  else e

(** Assignment expression (no top-level comma). *)
and parse_assign p =
  let loc = cur_loc p in
  let lhs = parse_ternary p in
  match assign_op_of (cur p) with
  | Some op ->
      advance p;
      let rhs = parse_assign p in
      { e = Assign (op, lhs, rhs); eloc = loc }
  | None -> lhs

and parse_ternary p =
  let loc = cur_loc p in
  let c = parse_binary p 1 in
  if accept p Token.QUESTION then begin
    let t = parse_assign p in
    expect p Token.COLON;
    let f = parse_ternary p in
    { e = Cond (c, t, f); eloc = loc }
  end
  else c

and parse_binary p min_prec =
  let lhs = ref (parse_unary p) in
  let continue = ref true in
  while !continue do
    let prec = prec_of (cur p) in
    if prec >= min_prec && prec > 0 then begin
      let op = binop_of (cur p) in
      let loc = cur_loc p in
      advance p;
      let rhs = parse_binary p (prec + 1) in
      lhs := { e = Bin (op, !lhs, rhs); eloc = loc }
    end
    else continue := false
  done;
  !lhs

and parse_unary p =
  let loc = cur_loc p in
  match cur p with
  | Token.MINUS -> advance p; { e = Un (Neg, parse_unary p); eloc = loc }
  | Token.BANG -> advance p; { e = Un (LogNot, parse_unary p); eloc = loc }
  | Token.TILDE -> advance p; { e = Un (BitNot, parse_unary p); eloc = loc }
  | Token.STAR -> advance p; { e = Un (Deref, parse_unary p); eloc = loc }
  | Token.AMP -> advance p; { e = Un (Addr, parse_unary p); eloc = loc }
  | Token.PLUS -> advance p; parse_unary p
  | Token.PLUSPLUS ->
      advance p;
      { e = IncDec { pre = true; inc = true; arg = parse_unary p }; eloc = loc }
  | Token.MINUSMINUS ->
      advance p;
      { e = IncDec { pre = true; inc = false; arg = parse_unary p }; eloc = loc }
  | Token.KW_SIZEOF ->
      advance p;
      if cur p = Token.LPAREN && starts_type { p with pos = p.pos + 1 } then begin
        expect p Token.LPAREN;
        let ty = parse_base_type p in
        expect p Token.RPAREN;
        { e = SizeofT ty; eloc = loc }
      end
      else
        let arg = parse_unary p in
        ignore arg;
        error p "sizeof of expressions is not supported; use sizeof(type)"
  | Token.LPAREN when starts_type { p with pos = p.pos + 1 } ->
      (* cast *)
      expect p Token.LPAREN;
      let ty = parse_base_type p in
      expect p Token.RPAREN;
      { e = CastE (ty, parse_unary p); eloc = loc }
  | _ -> parse_postfix p

and parse_postfix p =
  let loc = cur_loc p in
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    match cur p with
    | Token.LBRACKET ->
        advance p;
        let idx = parse_expr p in
        expect p Token.RBRACKET;
        e := { e = Index (!e, idx); eloc = loc }
    | Token.PLUSPLUS ->
        advance p;
        e := { e = IncDec { pre = false; inc = true; arg = !e }; eloc = loc }
    | Token.MINUSMINUS ->
        advance p;
        e := { e = IncDec { pre = false; inc = false; arg = !e }; eloc = loc }
    | _ -> continue := false
  done;
  !e

and parse_primary p =
  let loc = cur_loc p in
  match cur p with
  | Token.INT_LIT v -> advance p; { e = IntLit v; eloc = loc }
  | Token.LONG_LIT v -> advance p; { e = LongLit v; eloc = loc }
  | Token.CHAR_LIT c -> advance p; { e = CharLit c; eloc = loc }
  | Token.STR_LIT s -> advance p; { e = StrLit s; eloc = loc }
  | Token.IDENT name ->
      advance p;
      if cur p = Token.LPAREN then begin
        advance p;
        let args = ref [] in
        if cur p <> Token.RPAREN then begin
          args := [ parse_assign p ];
          while accept p Token.COMMA do args := parse_assign p :: !args done
        end;
        expect p Token.RPAREN;
        { e = Call (name, List.rev !args); eloc = loc }
      end
      else { e = Ident name; eloc = loc }
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | t -> error p ("expected expression, found '" ^ Token.to_string t ^ "'")

(* ---------------- declarations ---------------- *)

(** Parse declarators after a base type: [name ([N])? (= init)? (, ...)*]. *)
and parse_declarators p base : decl list =
  let one () =
    let ty = ref base in
    while accept p Token.STAR do ty := CPtr !ty done;
    let name =
      match cur p with
      | Token.IDENT n -> advance p; n
      | _ -> error p "expected identifier in declaration"
    in
    (* array suffixes, innermost last: int a[2][3] -> CArr (CArr (int,3), 2) *)
    let dims = ref [] in
    while accept p Token.LBRACKET do
      (match cur p with
      | Token.INT_LIT n ->
          advance p;
          dims := Int64.to_int n :: !dims
      | _ -> error p "array dimension must be an integer literal");
      expect p Token.RBRACKET
    done;
    let ty = List.fold_left (fun acc n -> CArr (acc, n)) !ty !dims in
    let init =
      if accept p Token.ASSIGN then
        Some
          (match cur p with
          | Token.LBRACE ->
              advance p;
              let items = ref [] in
              if cur p <> Token.RBRACE then begin
                items := [ parse_assign p ];
                while accept p Token.COMMA do
                  if cur p <> Token.RBRACE then
                    items := parse_assign p :: !items
                done
              end;
              expect p Token.RBRACE;
              Ilist (List.rev !items)
          | Token.STR_LIT s when (match ty with CArr _ -> true | _ -> false) ->
              advance p;
              Istr s
          | _ -> Iexpr (parse_assign p))
      else None
    in
    { dty = ty; dname = name; dinit = init }
  in
  let ds = ref [ one () ] in
  while accept p Token.COMMA do ds := one () :: !ds done;
  List.rev !ds

(* ---------------- statements ---------------- *)

and parse_stmt p : stmt =
  let loc = cur_loc p in
  match cur p with
  | Token.LBRACE ->
      advance p;
      let stmts = ref [] in
      while cur p <> Token.RBRACE do stmts := parse_stmt p :: !stmts done;
      expect p Token.RBRACE;
      { s = Sblock (List.rev !stmts); sloc = loc }
  | Token.KW_IF ->
      advance p;
      expect p Token.LPAREN;
      let c = parse_expr p in
      expect p Token.RPAREN;
      let th = parse_stmt p in
      let el = if accept p Token.KW_ELSE then Some (parse_stmt p) else None in
      { s = Sif (c, th, el); sloc = loc }
  | Token.KW_WHILE ->
      advance p;
      expect p Token.LPAREN;
      let c = parse_expr p in
      expect p Token.RPAREN;
      { s = Swhile (c, parse_stmt p); sloc = loc }
  | Token.KW_DO ->
      advance p;
      let body = parse_stmt p in
      expect p Token.KW_WHILE;
      expect p Token.LPAREN;
      let c = parse_expr p in
      expect p Token.RPAREN;
      expect p Token.SEMI;
      { s = Sdo (body, c); sloc = loc }
  | Token.KW_FOR ->
      advance p;
      expect p Token.LPAREN;
      let init =
        if cur p = Token.SEMI then None
        else if starts_type p then begin
          let base = parse_base_type p in
          Some (FDecl (parse_declarators p base))
        end
        else Some (FExpr (parse_expr p))
      in
      expect p Token.SEMI;
      let cond = if cur p = Token.SEMI then None else Some (parse_expr p) in
      expect p Token.SEMI;
      let step = if cur p = Token.RPAREN then None else Some (parse_expr p) in
      expect p Token.RPAREN;
      { s = Sfor (init, cond, step, parse_stmt p); sloc = loc }
  | Token.KW_BREAK ->
      advance p; expect p Token.SEMI; { s = Sbreak; sloc = loc }
  | Token.KW_CONTINUE ->
      advance p; expect p Token.SEMI; { s = Scontinue; sloc = loc }
  | Token.KW_RETURN ->
      advance p;
      let v = if cur p = Token.SEMI then None else Some (parse_expr p) in
      expect p Token.SEMI;
      { s = Sreturn v; sloc = loc }
  | Token.SEMI -> advance p; { s = Sblock []; sloc = loc }
  | _ when starts_type p ->
      let base = parse_base_type p in
      let ds = parse_declarators p base in
      expect p Token.SEMI;
      { s = Sdecl ds; sloc = loc }
  | _ ->
      let e = parse_expr p in
      expect p Token.SEMI;
      { s = Sexpr e; sloc = loc }

(* ---------------- top level ---------------- *)

let parse_top p : top =
  let base = parse_base_type p in
  let name =
    match cur p with
    | Token.IDENT n -> advance p; n
    | _ -> error p "expected identifier at top level"
  in
  if cur p = Token.LPAREN then begin
    advance p;
    let params = ref [] in
    if cur p = Token.KW_VOID && peek_ahead p 1 = Token.RPAREN then advance p
    else if cur p <> Token.RPAREN then begin
      let one () =
        let ty = parse_base_type p in
        let pname =
          match cur p with
          | Token.IDENT n -> advance p; n
          | _ -> error p "expected parameter name"
        in
        (* array parameters decay to pointers *)
        let ty = ref ty in
        while accept p Token.LBRACKET do
          (match cur p with
          | Token.INT_LIT _ -> advance p
          | _ -> ());
          expect p Token.RBRACKET;
          ty := CPtr !ty
        done;
        (!ty, pname)
      in
      params := [ one () ];
      while accept p Token.COMMA do params := one () :: !params done
    end;
    expect p Token.RPAREN;
    let params = List.rev !params in
    if accept p Token.SEMI then
      Tproto { pret = base; pname = name; pparams = List.map fst params }
    else begin
      let body = parse_stmt p in
      Tfunc { fret = base; fname = name; fparams = params; fbody = body }
    end
  end
  else begin
    (* global variable(s): re-parse declarators, first name already consumed *)
    let ty = ref base in
    let dims = ref [] in
    while accept p Token.LBRACKET do
      (match cur p with
      | Token.INT_LIT n -> advance p; dims := Int64.to_int n :: !dims
      | _ -> error p "array dimension must be an integer literal");
      expect p Token.RBRACKET
    done;
    let ty = List.fold_left (fun acc n -> CArr (acc, n)) !ty !dims in
    let init =
      if accept p Token.ASSIGN then
        Some
          (match cur p with
          | Token.LBRACE ->
              advance p;
              let items = ref [] in
              if cur p <> Token.RBRACE then begin
                items := [ parse_assign p ];
                while accept p Token.COMMA do
                  if cur p <> Token.RBRACE then
                    items := parse_assign p :: !items
                done
              end;
              expect p Token.RBRACE;
              Ilist (List.rev !items)
          | Token.STR_LIT s -> advance p; Istr s
          | _ -> Iexpr (parse_assign p))
      else None
    in
    expect p Token.SEMI;
    Tglobal { dty = ty; dname = name; dinit = init }
  end

(** Parse a whole translation unit. *)
let parse_program (src : string) : program =
  let p = make (Lexer.tokenize src) in
  let tops = ref [] in
  while cur p <> Token.EOF do tops := parse_top p :: !tops done;
  List.rev !tops
