(** Frontend driver: source text in, IR module out. *)

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(** Parse, type-check and lower one or more translation units (they share
    one global namespace, like linking objects). *)
let compile_sources (srcs : string list) : Overify_ir.Ir.modul =
  let program =
    List.concat_map
      (fun src ->
        try Parser.parse_program src with
        | Lexer.Error (loc, msg) -> fail "lex error at %s: %s" (Lexer.pp_loc loc) msg
        | Parser.Error (loc, msg) ->
            fail "parse error at %s: %s" (Lexer.pp_loc loc) msg)
      srcs
  in
  let typed =
    try Sema.check_program program
    with Sema.Error (loc, msg) ->
      fail "type error at %s: %s" (Lexer.pp_loc loc) msg
  in
  try Lower.lower_prog typed
  with Lower.Error (loc, msg) ->
    fail "lowering error at %s: %s" (Lexer.pp_loc loc) msg

let compile_source (src : string) : Overify_ir.Ir.modul =
  compile_sources [ src ]
