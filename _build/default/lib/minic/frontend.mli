(** Frontend driver: MiniC source text in, memory-form IR module out. *)

exception Compile_error of string
(** Raised for lexical, syntactic, type or lowering errors, with a
    location-bearing message. *)

val compile_sources : string list -> Overify_ir.Ir.modul
(** Parse, type-check and lower one or more translation units; they share a
    single global namespace, like linking objects.  The result is in memory
    form (no phis; cross-block values live in allocas). *)

val compile_source : string -> Overify_ir.Ir.modul
