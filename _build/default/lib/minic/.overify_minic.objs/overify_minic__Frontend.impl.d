lib/minic/frontend.ml: Lexer List Lower Overify_ir Parser Printf Sema
