lib/minic/frontend.mli: Overify_ir
