lib/minic/lower.ml: Ast Char Hashtbl Int64 Lexer List Option Overify_ir Printf Sema String
