lib/minic/ast.ml: Lexer Printf
