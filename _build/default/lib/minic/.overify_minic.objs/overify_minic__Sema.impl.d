lib/minic/sema.ml: Ast Bytes Char Hashtbl Int64 Lexer List Option Printf String
