(** Tokens of the MiniC language, the C subset our corpus and libc are
    written in. *)

type t =
  | INT_LIT of int64
  | LONG_LIT of int64  (* literal with an l/L suffix *)
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED | KW_SIGNED
  | KW_CONST
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_BREAK | KW_CONTINUE | KW_RETURN | KW_SIZEOF
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | AMPAMP | PIPEPIPE
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN | PERCENT_ASSIGN
  | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN | LSHIFT_ASSIGN | RSHIFT_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | EOF

let to_string = function
  | INT_LIT v -> Int64.to_string v
  | LONG_LIT v -> Int64.to_string v ^ "L"
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short"
  | KW_INT -> "int" | KW_LONG -> "long" | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed" | KW_CONST -> "const"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return" | KW_SIZEOF -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | AMPAMP -> "&&" | PIPEPIPE -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&=" | PIPE_ASSIGN -> "|=" | CARET_ASSIGN -> "^="
  | LSHIFT_ASSIGN -> "<<=" | RSHIFT_ASSIGN -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"

let keywords =
  [
    ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
    ("int", KW_INT); ("long", KW_LONG); ("unsigned", KW_UNSIGNED);
    ("signed", KW_SIGNED); ("const", KW_CONST);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("do", KW_DO);
    ("for", KW_FOR); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("return", KW_RETURN); ("sizeof", KW_SIZEOF);
  ]
