(** Abstract syntax of MiniC (untyped; see {!Sema} for the typed tree). *)

type loc = Lexer.loc

type width = W8 | W16 | W32 | W64

(** C-level types.  [CInt (w, signed)]; arrays appear only in declarations
    and decay to pointers in expressions. *)
type cty =
  | CVoid
  | CInt of width * bool
  | CPtr of cty
  | CArr of cty * int

let c_char = CInt (W8, true)
let c_uchar = CInt (W8, false)
let c_int = CInt (W32, true)
let c_uint = CInt (W32, false)
let c_long = CInt (W64, true)
let c_ulong = CInt (W64, false)

let rec string_of_cty = function
  | CVoid -> "void"
  | CInt (W8, true) -> "char"
  | CInt (W8, false) -> "unsigned char"
  | CInt (W16, true) -> "short"
  | CInt (W16, false) -> "unsigned short"
  | CInt (W32, true) -> "int"
  | CInt (W32, false) -> "unsigned int"
  | CInt (W64, true) -> "long"
  | CInt (W64, false) -> "unsigned long"
  | CPtr t -> string_of_cty t ^ "*"
  | CArr (t, n) -> Printf.sprintf "%s[%d]" (string_of_cty t) n

let rec sizeof_cty = function
  | CVoid -> 0
  | CInt (W8, _) -> 1
  | CInt (W16, _) -> 2
  | CInt (W32, _) -> 4
  | CInt (W64, _) -> 8
  | CPtr _ -> 8
  | CArr (t, n) -> sizeof_cty t * n

type unop =
  | Neg    (** [-e] *)
  | LogNot (** [!e] *)
  | BitNot (** [~e] *)
  | Deref  (** [*e] *)
  | Addr   (** [&e] *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr
  | Blt | Bgt | Ble | Bge | Beq | Bne
  | Band | Bor | Bxor
  | Bland | Blor  (** short-circuit [&&] and [||] *)

type expr = { e : expr_node; eloc : loc }

and expr_node =
  | IntLit of int64
  | LongLit of int64
  | CharLit of char
  | StrLit of string
  | Ident of string
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Assign of binop option * expr * expr  (** [lhs op= rhs]; [None] = plain *)
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | CastE of cty * expr
  | SizeofT of cty
  | IncDec of { pre : bool; inc : bool; arg : expr }
  | Comma of expr * expr

type init = Iexpr of expr | Ilist of expr list | Istr of string

type decl = { dty : cty; dname : string; dinit : init option }

type stmt = { s : stmt_node; sloc : loc }

and stmt_node =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of forinit option * expr option * expr option * stmt
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sreturn of expr option

and forinit = FDecl of decl list | FExpr of expr

type top =
  | Tfunc of { fret : cty; fname : string; fparams : (cty * string) list;
               fbody : stmt }
  | Tproto of { pret : cty; pname : string; pparams : cty list }
  | Tglobal of decl

type program = top list
