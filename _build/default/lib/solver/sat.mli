(** CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning with non-chronological backjumping, EVSIDS activities, phase
    saving and Luby restarts — a compact MiniSat.

    Literal encoding: variable [v] (0-based) has positive literal [2v] and
    negative literal [2v+1]. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val lit_of_var : int -> bool -> int
(** [lit_of_var v positive] is the literal for [v] with the given polarity. *)

val var_of : int -> int

val lit_sign : int -> bool
(** [true] = positive. *)

val neg : int -> int

val add_clause : t -> int list -> unit
(** Add a clause (list of literals).  May be called between [solve]s;
    resets any leftover non-root assignment first.  An empty or root-falsified
    clause makes the instance permanently unsatisfiable. *)

exception Timeout
(** Raised by {!solve} when the wall-clock [deadline] passes. *)

val solve : ?assumptions:int list -> ?deadline:float -> t -> bool
(** Decide satisfiability under the given assumption literals.  Learned
    clauses persist across calls (incremental use). *)

val model_value : t -> int -> bool
(** Value of a variable after a [true] answer from {!solve}. *)
