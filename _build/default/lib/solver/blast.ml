(** Bit-blasting of bitvector terms to CNF (Tseitin encoding).

    Each term becomes a little-endian array of SAT literals; circuits:
    ripple-carry adders, shift-add multipliers, restoring dividers, barrel
    shifters, borrow-based comparators.  Division circuits are patched so
    that division by zero yields 0, matching {!Bv.eval}. *)

type ctx = {
  sat : Sat.t;
  tlit : int;   (* literal that is constant true *)
  memo : (int, int array) Hashtbl.t;       (* term id -> bit literals *)
  varbits : (int, int array) Hashtbl.t;    (* bv var id -> bit literals *)
  deadline : float option;
  mutable ticks : int;
}

let create ?deadline () =
  let sat = Sat.create () in
  let v = Sat.new_var sat in
  let tlit = Sat.lit_of_var v true in
  Sat.add_clause sat [ tlit ];
  { sat; tlit; memo = Hashtbl.create 256; varbits = Hashtbl.create 64;
    deadline; ticks = 0 }

let flit ctx = Sat.neg ctx.tlit

let fresh ctx = Sat.lit_of_var (Sat.new_var ctx.sat) true

(* ---------------- gates ---------------- *)

let g_and ctx a b =
  if a = flit ctx || b = flit ctx then flit ctx
  else if a = ctx.tlit then b
  else if b = ctx.tlit then a
  else if a = b then a
  else if a = Sat.neg b then flit ctx
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.neg a; Sat.neg b; o ];
    Sat.add_clause ctx.sat [ a; Sat.neg o ];
    Sat.add_clause ctx.sat [ b; Sat.neg o ];
    o
  end

let g_or ctx a b = Sat.neg (g_and ctx (Sat.neg a) (Sat.neg b))

let g_xor ctx a b =
  if a = flit ctx then b
  else if b = flit ctx then a
  else if a = ctx.tlit then Sat.neg b
  else if b = ctx.tlit then Sat.neg a
  else if a = b then flit ctx
  else if a = Sat.neg b then ctx.tlit
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.neg a; Sat.neg b; Sat.neg o ];
    Sat.add_clause ctx.sat [ a; b; Sat.neg o ];
    Sat.add_clause ctx.sat [ Sat.neg a; b; o ];
    Sat.add_clause ctx.sat [ a; Sat.neg b; o ];
    o
  end

(** [c ? a : b] *)
let g_mux ctx c a b =
  if c = ctx.tlit then a
  else if c = flit ctx then b
  else if a = b then a
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.neg c; Sat.neg a; o ];
    Sat.add_clause ctx.sat [ Sat.neg c; a; Sat.neg o ];
    Sat.add_clause ctx.sat [ c; Sat.neg b; o ];
    Sat.add_clause ctx.sat [ c; b; Sat.neg o ];
    o
  end

(* ---------------- word-level circuits ---------------- *)

let const_bits ctx w v =
  Array.init w (fun i ->
      if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then ctx.tlit
      else flit ctx)

(** Ripple-carry adder; returns (sum bits, carry out). *)
let adder ctx a b cin =
  let w = Array.length a in
  let sum = Array.make w (flit ctx) in
  let c = ref cin in
  for i = 0 to w - 1 do
    let axb = g_xor ctx a.(i) b.(i) in
    sum.(i) <- g_xor ctx axb !c;
    c := g_or ctx (g_and ctx a.(i) b.(i)) (g_and ctx axb !c)
  done;
  (sum, !c)

let neg_bits ctx a =
  let w = Array.length a in
  let inv = Array.map Sat.neg a in
  fst (adder ctx inv (const_bits ctx w 0L) ctx.tlit)

let sub ctx a b =
  (* a - b = a + ~b + 1 ; carry out = NOT borrow *)
  adder ctx a (Array.map Sat.neg b) ctx.tlit

let eq_bits ctx a b =
  let acc = ref ctx.tlit in
  Array.iteri (fun i ai -> acc := g_and ctx !acc (Sat.neg (g_xor ctx ai b.(i)))) a;
  !acc

(** unsigned a < b *)
let ult_bits ctx a b =
  let (_, carry) = sub ctx a b in
  Sat.neg carry

(** signed a < b *)
let slt_bits ctx a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  let diff_sign = g_xor ctx sa sb in
  g_mux ctx diff_sign sa (ult_bits ctx a b)

let mul ctx a b =
  let w = Array.length a in
  let acc = ref (const_bits ctx w 0L) in
  for j = 0 to w - 1 do
    (* row j: (a << j) masked by b_j *)
    let row =
      Array.init w (fun i -> if i < j then flit ctx else g_and ctx a.(i - j) b.(j))
    in
    let (s, _) = adder ctx !acc row (flit ctx) in
    acc := s
  done;
  !acc

(** Restoring division: returns (quotient, remainder); 0/0 convention is
    patched by the caller. *)
let udivrem ctx a d =
  let w = Array.length a in
  let r = ref (const_bits ctx w 0L) in
  let q = Array.make w (flit ctx) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let shifted = Array.init w (fun k -> if k = 0 then a.(i) else !r.(k - 1)) in
    let ge = Sat.neg (ult_bits ctx shifted d) in
    let (diff, _) = sub ctx shifted d in
    r := Array.init w (fun k -> g_mux ctx ge diff.(k) shifted.(k));
    q.(i) <- ge
  done;
  (q, !r)

let shift ctx a amount ~dir ~arith =
  (* barrel shifter over the needed low bits of [amount]; widths are powers
     of two so shift-mod-w uses exactly [log2 w] bits *)
  let w = Array.length a in
  let stages = ref 0 in
  while 1 lsl !stages < w do incr stages done;
  let cur = ref (Array.copy a) in
  for k = 0 to !stages - 1 do
    let sh = 1 lsl k in
    let bit = amount.(k) in
    let shifted =
      Array.init w (fun i ->
          match dir with
          | `Left -> if i < sh then flit ctx else !cur.(i - sh)
          | `Right ->
              if i + sh < w then !cur.(i + sh)
              else if arith then !cur.(w - 1)
              else flit ctx)
    in
    cur := Array.init w (fun i -> g_mux ctx bit shifted.(i) !cur.(i))
  done;
  !cur

let is_zero ctx a =
  let acc = ref ctx.tlit in
  Array.iter (fun b -> acc := g_and ctx !acc (Sat.neg b)) a;
  !acc

(* ---------------- term blasting ---------------- *)

let rec bits ctx (t : Bv.t) : int array =
  match Hashtbl.find_opt ctx.memo t.Bv.id with
  | Some b -> b
  | None ->
      (* blasting a giant term DAG can dominate a query: honour the
         wall-clock deadline every few thousand nodes *)
      ctx.ticks <- ctx.ticks + 1;
      (match ctx.deadline with
      | Some d when ctx.ticks land 2047 = 0 && Unix.gettimeofday () > d ->
          raise Sat.Timeout
      | _ -> ());
      let b = compute ctx t in
      assert (Array.length b = t.Bv.width);
      Hashtbl.replace ctx.memo t.Bv.id b;
      b

and compute ctx (t : Bv.t) : int array =
  let w = t.Bv.width in
  match t.Bv.node with
  | Bv.Const v -> const_bits ctx w v
  | Bv.Var id -> (
      match Hashtbl.find_opt ctx.varbits id with
      | Some b ->
          if Array.length b = w then b
          else invalid_arg "blast: same variable used at two widths"
      | None ->
          let b = Array.init w (fun _ -> fresh ctx) in
          Hashtbl.replace ctx.varbits id b;
          b)
  | Bv.Bin (op, x, y) -> (
      let a = bits ctx x and b = bits ctx y in
      match op with
      | Bv.Add -> fst (adder ctx a b (flit ctx))
      | Bv.Sub -> fst (sub ctx a b)
      | Bv.Mul -> mul ctx a b
      | Bv.And -> Array.init w (fun i -> g_and ctx a.(i) b.(i))
      | Bv.Or -> Array.init w (fun i -> g_or ctx a.(i) b.(i))
      | Bv.Xor -> Array.init w (fun i -> g_xor ctx a.(i) b.(i))
      | Bv.Shl -> shift ctx a b ~dir:`Left ~arith:false
      | Bv.Lshr -> shift ctx a b ~dir:`Right ~arith:false
      | Bv.Ashr -> shift ctx a b ~dir:`Right ~arith:true
      | Bv.Udiv ->
          let (q, _) = udivrem ctx a b in
          let z = is_zero ctx b in
          Array.map (fun l -> g_and ctx l (Sat.neg z)) q
      | Bv.Urem ->
          let (_, r) = udivrem ctx a b in
          let z = is_zero ctx b in
          Array.init w (fun i -> g_and ctx r.(i) (Sat.neg z))
      | Bv.Sdiv ->
          let sa = a.(w - 1) and sb = b.(w - 1) in
          let abs_a = Array.init w (fun i -> g_mux ctx sa (neg_bits ctx a).(i) a.(i)) in
          let abs_b = Array.init w (fun i -> g_mux ctx sb (neg_bits ctx b).(i) b.(i)) in
          let (q, _) = udivrem ctx abs_a abs_b in
          let sgn = g_xor ctx sa sb in
          let nq = neg_bits ctx q in
          let res = Array.init w (fun i -> g_mux ctx sgn nq.(i) q.(i)) in
          let z = is_zero ctx b in
          Array.map (fun l -> g_and ctx l (Sat.neg z)) res
      | Bv.Srem ->
          let sa = a.(w - 1) and sb = b.(w - 1) in
          let abs_a = Array.init w (fun i -> g_mux ctx sa (neg_bits ctx a).(i) a.(i)) in
          let abs_b = Array.init w (fun i -> g_mux ctx sb (neg_bits ctx b).(i) b.(i)) in
          let (_, r) = udivrem ctx abs_a abs_b in
          let nr = neg_bits ctx r in
          let res = Array.init w (fun i -> g_mux ctx sa nr.(i) r.(i)) in
          let z = is_zero ctx b in
          Array.map (fun l -> g_and ctx l (Sat.neg z)) res)
  | Bv.Cmp (op, x, y) -> (
      let a = bits ctx x and b = bits ctx y in
      let l =
        match op with
        | Bv.Eq -> eq_bits ctx a b
        | Bv.Ne -> Sat.neg (eq_bits ctx a b)
        | Bv.Ult -> ult_bits ctx a b
        | Bv.Uge -> Sat.neg (ult_bits ctx a b)
        | Bv.Ugt -> ult_bits ctx b a
        | Bv.Ule -> Sat.neg (ult_bits ctx b a)
        | Bv.Slt -> slt_bits ctx a b
        | Bv.Sge -> Sat.neg (slt_bits ctx a b)
        | Bv.Sgt -> slt_bits ctx b a
        | Bv.Sle -> Sat.neg (slt_bits ctx b a)
      in
      [| l |])
  | Bv.Ite (c, x, y) ->
      let cl = (bits ctx c).(0) in
      let a = bits ctx x and b = bits ctx y in
      Array.init w (fun i -> g_mux ctx cl a.(i) b.(i))
  | Bv.Concat (hi, lo) ->
      let h = bits ctx hi and l = bits ctx lo in
      Array.append l h
  | Bv.Extract (hi, lo, x) ->
      let a = bits ctx x in
      Array.sub a lo (hi - lo + 1)

(** Assert that a width-1 term is true. *)
let assert_true ctx (t : Bv.t) =
  assert (t.Bv.width = 1);
  let b = bits ctx t in
  Sat.add_clause ctx.sat [ b.(0) ]

(** Read a variable's value out of the SAT model. *)
let model_of_var ctx id : int64 option =
  match Hashtbl.find_opt ctx.varbits id with
  | None -> None
  | Some b ->
      let v = ref 0L in
      Array.iteri
        (fun i l ->
          let bitval =
            if Sat.lit_sign l then Sat.model_value ctx.sat (Sat.var_of l)
            else not (Sat.model_value ctx.sat (Sat.var_of l))
          in
          if bitval then v := Int64.logor !v (Int64.shift_left 1L i))
        b;
      Some !v
