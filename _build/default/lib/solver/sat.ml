(** CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning with non-chronological backjumping, EVSIDS variable activities
    with a binary heap, phase saving, and Luby restarts — a compact MiniSat.

    Literal encoding: variable [v] (0-based) has positive literal [2v] and
    negative literal [2v+1]. *)

type clause = { lits : int array; mutable act : float }

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable watches : clause list array;   (* indexed by literal *)
  mutable assigns : int array;           (* var -> -1 unassigned / 0 / 1 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;            (* saved phase *)
  mutable heap : int array;              (* binary max-heap of vars *)
  mutable heap_pos : int array;          (* var -> index in heap, -1 absent *)
  mutable heap_size : int;
  mutable trail : int array;             (* literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;         (* decision level boundaries *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create () =
  {
    nvars = 0;
    clauses = [];
    watches = Array.make 16 [];
    assigns = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_size = 0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

(* ---------------- activity heap ---------------- *)

let heap_less s v w = s.activity.(v) > s.activity.(w)

let rec sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      let tmp = s.heap.(i) in
      s.heap.(i) <- s.heap.(p);
      s.heap.(p) <- tmp;
      s.heap_pos.(s.heap.(i)) <- i;
      s.heap_pos.(s.heap.(p)) <- p;
      sift_up s p
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = s.heap.(i) in
    s.heap.(i) <- s.heap.(!best);
    s.heap.(!best) <- tmp;
    s.heap_pos.(s.heap.(i)) <- i;
    s.heap_pos.(s.heap.(!best)) <- !best;
    sift_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    sift_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap.(0) <- s.heap.(s.heap_size);
  s.heap_pos.(s.heap.(0)) <- 0;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then sift_down s 0;
  v

(* ---------------- variables and clauses ---------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns s.nvars (-1);
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars None;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.phase <- grow_array s.phase s.nvars false;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.watches <- grow_array s.watches (2 * s.nvars) [];
  s.trail <- grow_array s.trail s.nvars 0;
  s.trail_lim <- grow_array s.trail_lim (s.nvars + 1) 0;
  s.assigns.(v) <- -1;
  s.reason.(v) <- None;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let lit_of_var v positive = (2 * v) + if positive then 0 else 1
let var_of l = l lsr 1
let lit_sign l = l land 1 = 0  (* true = positive *)
let neg l = l lxor 1

(** Value of a literal: -1 unassigned, 1 true, 0 false. *)
let lit_value s l =
  let a = s.assigns.(var_of l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level s = s.trail_lim_size

let enqueue s l reason =
  let v = var_of l in
  s.assigns.(v) <- (if lit_sign l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit_sign l;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do s.activity.(i) <- s.activity.(i) *. 1e-100 done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then sift_up s s.heap_pos.(v)

let decay s = s.var_inc <- s.var_inc /. 0.95

let watch s l c = s.watches.(l) <- c :: s.watches.(l)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = var_of s.trail.(i) in
      s.assigns.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.trail_lim_size <- lvl
  end

(** Add a clause (raw literal list). *)
let add_clause s (lits : int list) =
  (* clause addition reasons about root-level truth only: drop any
     assignment left over from a previous solve *)
  if decision_level s > 0 then cancel_until s 0;
  if s.ok then begin
    (* remove duplicates and detect tautologies / satisfied-at-level-0 *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (neg l) lits) lits in
    if not taut then begin
      let lits =
        List.filter (fun l -> lit_value s l <> 0 || s.level.(var_of l) > 0) lits
      in
      let sat_already =
        List.exists (fun l -> lit_value s l = 1 && s.level.(var_of l) = 0) lits
      in
      if not sat_already then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            if lit_value s l = 0 then s.ok <- false
            else if lit_value s l < 0 then enqueue s l None
        | _ ->
            let c = { lits = Array.of_list lits; act = 0.0 } in
            s.clauses <- c :: s.clauses;
            watch s (neg c.lits.(0)) c;
            watch s (neg c.lits.(1)) c
    end
  end

(* ---------------- propagation ---------------- *)

exception Conflict of clause

let propagate s : clause option =
  let confl = ref None in
  (try
     while s.qhead < s.trail_size do
       let l = s.trail.(s.qhead) in
       s.qhead <- s.qhead + 1;
       s.propagations <- s.propagations + 1;
       (* literal l became true; visit clauses watching ~l i.e. watches.(l) *)
       let ws = s.watches.(l) in
       s.watches.(l) <- [];
       let rec go = function
         | [] -> ()
         | c :: rest -> (
             (* make sure the false literal is at position 1 *)
             let falsel = neg l in
             if c.lits.(0) = falsel then begin
               c.lits.(0) <- c.lits.(1);
               c.lits.(1) <- falsel
             end;
             if lit_value s c.lits.(0) = 1 then begin
               (* already satisfied; keep watching *)
               watch s l c;
               go rest
             end
             else begin
               (* find a new watch *)
               let found = ref false in
               (try
                  for i = 2 to Array.length c.lits - 1 do
                    if lit_value s c.lits.(i) <> 0 then begin
                      let w = c.lits.(i) in
                      c.lits.(i) <- c.lits.(1);
                      c.lits.(1) <- w;
                      watch s (neg w) c;
                      found := true;
                      raise Exit
                    end
                  done
                with Exit -> ());
               if !found then go rest
               else begin
                 (* unit or conflict *)
                 watch s l c;
                 if lit_value s c.lits.(0) = 0 then begin
                   (* conflict: restore remaining watches and bail *)
                   List.iter (fun c' -> watch s l c') rest;
                   s.qhead <- s.trail_size;
                   raise (Conflict c)
                 end
                 else begin
                   enqueue s c.lits.(0) (Some c);
                   go rest
                 end
               end
             end)
       in
       go ws
     done
   with Conflict c -> confl := Some c);
  !confl

(* ---------------- conflict analysis (first UIP) ---------------- *)

let analyze s (confl : clause) : int list * int =
  let seen = Array.make s.nvars false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (s.trail_size - 1) in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
    | Some c ->
        Array.iter
          (fun q ->
            if !p = -1 || q <> !p then begin
              let v = var_of q in
              if (not seen.(v)) && s.level.(v) > 0 then begin
                seen.(v) <- true;
                bump s v;
                if s.level.(v) >= decision_level s then incr counter
                else learnt := q :: !learnt
              end
            end)
          c.lits
    | None -> ());
    (* pick next literal from trail *)
    while not seen.(var_of s.trail.(!idx)) do decr idx done;
    let l = s.trail.(!idx) in
    decr idx;
    let v = var_of l in
    seen.(v) <- false;
    confl := s.reason.(v);
    p := l;
    decr counter;
    if !counter <= 0 then continue_ := false
  done;
  let uip = neg !p in
  let learnt = uip :: !learnt in
  (* backjump level: second highest level in the clause *)
  let bl =
    List.fold_left
      (fun acc l -> if l <> uip then max acc s.level.(var_of l) else acc)
      0 learnt
  in
  (learnt, bl)

(* ---------------- main search ---------------- *)

let luby i =
  (* the Luby restart sequence *)
  let rec go k sz seq =
    if sz >= i + 1 then
      if sz = i + 1 && seq >= 0 then k
      else go (k / 2) ((sz - 1) / 2) (seq - 1)
    else k
  in
  let k = ref 1 and sz = ref 1 in
  while !sz < i + 1 do
    sz := (2 * !sz) + 1;
    k := !k * 2
  done;
  go !k !sz (i - (!sz / 2))

let rec pick_branch s =
  if s.heap_size = 0 then -1
  else begin
    let v = heap_pop s in
    if s.assigns.(v) < 0 then v else pick_branch s
  end

exception Sat_found
exception Unsat_found

(** Raised when [solve] exceeds its wall-clock deadline. *)
exception Timeout

let solve ?(assumptions = []) ?deadline (s : t) : bool =
  if decision_level s > 0 then cancel_until s 0;
  if not s.ok then false
  else begin
    let check_deadline () =
      match deadline with
      | Some d when s.conflicts land 255 = 0 && Unix.gettimeofday () > d ->
          raise Timeout
      | _ -> ()
    in
    let restarts = ref 0 in
    let result = ref false in
    (try
       (match propagate s with
       | Some _ -> raise Unsat_found
       | None -> ());
       while true do
         let budget = 64 * luby !restarts in
         let conflicts_here = ref 0 in
         (* restart loop *)
         (try
            while true do
              match propagate s with
              | Some confl ->
                  s.conflicts <- s.conflicts + 1;
                  incr conflicts_here;
                  check_deadline ();
                  if decision_level s <= List.length assumptions then
                    (* conflict under assumptions (or at root) *)
                    raise Unsat_found;
                  let (learnt, bl) = analyze s confl in
                  let bl = max bl (List.length assumptions) in
                  cancel_until s bl;
                  (match learnt with
                  | [ l ] ->
                      cancel_until s (List.length assumptions);
                      if lit_value s l = 0 then raise Unsat_found
                      else if lit_value s l < 0 then enqueue s l None
                  | l :: _ ->
                      let c = { lits = Array.of_list learnt; act = 0.0 } in
                      (* ensure watch order: lits.(0)=uip, lits.(1)=highest level *)
                      let arr = c.lits in
                      let best = ref 1 in
                      for i = 2 to Array.length arr - 1 do
                        if s.level.(var_of arr.(i)) > s.level.(var_of arr.(!best))
                        then best := i
                      done;
                      let tmp = arr.(1) in
                      arr.(1) <- arr.(!best);
                      arr.(!best) <- tmp;
                      s.clauses <- c :: s.clauses;
                      watch s (neg arr.(0)) c;
                      watch s (neg arr.(1)) c;
                      if lit_value s l < 0 then enqueue s l (Some c)
                  | [] -> raise Unsat_found);
                  decay s;
                  if !conflicts_here > budget then begin
                    cancel_until s (List.length assumptions);
                    raise Exit
                  end
              | None ->
                  (* extend assignment: assumptions first, then decide *)
                  let dl = decision_level s in
                  if dl < List.length assumptions then begin
                    let a = List.nth assumptions dl in
                    match lit_value s a with
                    | 1 ->
                        (* already true: open an empty decision level *)
                        s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                        s.trail_lim_size <- s.trail_lim_size + 1
                    | 0 -> raise Unsat_found
                    | _ ->
                        s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                        s.trail_lim_size <- s.trail_lim_size + 1;
                        enqueue s a None
                  end
                  else begin
                    let v = pick_branch s in
                    if v < 0 then raise Sat_found;
                    s.decisions <- s.decisions + 1;
                    s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                    s.trail_lim_size <- s.trail_lim_size + 1;
                    enqueue s (lit_of_var v s.phase.(v)) None
                  end
            done
          with Exit -> ());
         incr restarts
       done
     with
    | Sat_found -> result := true
    | Unsat_found -> result := false);
    if not !result then cancel_until s 0;
    !result
  end

(** Model value of a variable after a SAT answer. *)
let model_value s v = s.assigns.(v) = 1
