(** Query interface over bit-blasting + CDCL, with a query cache and
    counters — the role KLEE's solver chain (simplify, cache, STP) plays. *)

type result =
  | Unsat
  | Sat of (int * int64) list
      (** satisfying assignment as (variable id, value) pairs *)

val deadline : float option ref
(** Wall-clock deadline honoured by {!check}; long-running blasting or SAT
    work raises {!Timeout} past it.  Set by the symbolic-execution engine so
    one pathological query cannot blow an experiment budget. *)

exception Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
}

val stats : stats
val reset_stats : unit -> unit

val clear_cache : unit -> unit
(** Drop cached query results (call between independent experiments). *)

val check : Bv.t list -> result
(** Satisfiability of the conjunction of width-1 terms.  Results are cached
    by the hash-consed term-id set. *)

val is_sat : Bv.t list -> bool

val model_value : (int * int64) list -> int -> int64
(** Look up a variable in a model; unconstrained variables read as 0. *)
