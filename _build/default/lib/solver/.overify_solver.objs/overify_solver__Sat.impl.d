lib/solver/sat.ml: Array List Unix
