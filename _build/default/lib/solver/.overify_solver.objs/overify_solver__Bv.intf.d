lib/solver/bv.mli: Format Hashtbl
