lib/solver/solver.ml: Blast Bv Hashtbl List Sat Unix
