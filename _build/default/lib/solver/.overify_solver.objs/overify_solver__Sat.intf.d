lib/solver/sat.mli:
