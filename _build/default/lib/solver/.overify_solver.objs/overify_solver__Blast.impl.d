lib/solver/blast.ml: Array Bv Hashtbl Int64 Sat Unix
