lib/solver/solver.mli: Bv
