lib/solver/bv.ml: Format Hashtbl Int64 Option
