(** Query interface over bit-blasting + CDCL, with a query cache and the
    counters the benchmark harness reports (KLEE's counterpart is its solver
    chain: simplification, caching, then STP). *)

type result =
  | Unsat
  | Sat of (int * int64) list  (** satisfying assignment: (var id, value) *)

(** Wall-clock deadline honoured by [check]; long-running blasting/SAT work
    raises {!Sat.Timeout} past it.  Set by the symbolic-execution engine so
    that one pathological query cannot blow the experiment budget. *)
let deadline : float option ref = ref None

exception Timeout = Sat.Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
}

let stats = {
  queries = 0;
  cache_hits = 0;
  sat_answers = 0;
  unsat_answers = 0;
  solver_time = 0.0;
}

let reset_stats () =
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.sat_answers <- 0;
  stats.unsat_answers <- 0;
  stats.solver_time <- 0.0

(* query cache: sorted term-id list -> result *)
let cache : (int list, result) Hashtbl.t = Hashtbl.create 1024

let clear_cache () = Hashtbl.reset cache

(** Check satisfiability of the conjunction of width-1 terms. *)
let check (assertions : Bv.t list) : result =
  stats.queries <- stats.queries + 1;
  (* constant-prune: smart constructors already folded constants *)
  let assertions =
    List.filter (fun (t : Bv.t) -> t.Bv.node <> Bv.Const 1L) assertions
  in
  if List.exists (fun (t : Bv.t) -> t.Bv.node = Bv.Const 0L) assertions then begin
    stats.unsat_answers <- stats.unsat_answers + 1;
    Unsat
  end
  else if assertions = [] then begin
    stats.sat_answers <- stats.sat_answers + 1;
    Sat []
  end
  else begin
    let key =
      List.sort_uniq compare (List.map (fun (t : Bv.t) -> t.Bv.id) assertions)
    in
    match Hashtbl.find_opt cache key with
    | Some r ->
        stats.cache_hits <- stats.cache_hits + 1;
        (match r with
        | Sat _ -> stats.sat_answers <- stats.sat_answers + 1
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        r
    | None ->
        let t0 = Unix.gettimeofday () in
        (match !deadline with
        | Some d when t0 > d -> raise Timeout
        | _ -> ());
        let ctx = Blast.create ?deadline:!deadline () in
        List.iter (Blast.assert_true ctx) assertions;
        let sat =
          try Sat.solve ?deadline:!deadline ctx.Blast.sat
          with Timeout ->
            stats.solver_time <- stats.solver_time +. (Unix.gettimeofday () -. t0);
            raise Timeout
        in
        let r =
          if not sat then Unsat
          else begin
            (* extract values for every variable mentioned *)
            let vars = Hashtbl.create 16 in
            List.iter
              (fun t ->
                Hashtbl.iter (fun id w -> Hashtbl.replace vars id w) (Bv.vars t))
              assertions;
            let model =
              Hashtbl.fold
                (fun id _w acc ->
                  match Blast.model_of_var ctx id with
                  | Some v -> (id, v) :: acc
                  | None -> (id, 0L) :: acc)
                vars []
            in
            Sat model
          end
        in
        stats.solver_time <- stats.solver_time +. (Unix.gettimeofday () -. t0);
        (match r with
        | Sat _ -> stats.sat_answers <- stats.sat_answers + 1
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        Hashtbl.replace cache key r;
        r
  end

(** Convenience: is the conjunction satisfiable? *)
let is_sat assertions = match check assertions with Sat _ -> true | Unsat -> false

(** Model lookup with default 0 (unconstrained variables may take any value;
    0 is what the model extraction produces for absent bits). *)
let model_value model id =
  match List.assoc_opt id model with Some v -> v | None -> 0L
