lib/harness/table1.ml: Experiment List Overify_corpus Overify_opt Overify_symex Printf Report
