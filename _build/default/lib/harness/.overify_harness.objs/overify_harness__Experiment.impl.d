lib/harness/experiment.ml: List Overify_corpus Overify_interp Overify_ir Overify_minic Overify_opt Overify_symex Overify_vclib Unix
