lib/harness/table3.ml: Experiment List Overify_corpus Overify_opt Report
