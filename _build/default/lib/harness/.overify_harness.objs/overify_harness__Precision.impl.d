lib/harness/precision.ml: Experiment List Overify_absint Overify_corpus Overify_opt Printf Report
