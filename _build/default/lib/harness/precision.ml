(** The §2.1 precision experiment: run the coarse interval analysis
    (lib/absint) over the corpus compiled at each level and report how many
    facts it can prove.  The paper's claim is qualitative — "compiler
    transformations can increase their precision and allow them to prove
    more facts"; this measures it. *)

module Costmodel = Overify_opt.Costmodel
module Precision = Overify_absint.Precision

let levels = [ Costmodel.o0; Costmodel.o3; Costmodel.overify ]

let totals (level : Costmodel.t) : Precision.counts =
  List.fold_left
    (fun acc p ->
      let c = Experiment.compile level p in
      Precision.add acc (Precision.of_module c.Experiment.modul))
    Precision.zero Overify_corpus.Programs.programs

let print () =
  Report.section
    "Precision: facts provable by a coarse interval analysis (paper 2.1)";
  let stats = List.map (fun l -> (l, totals l)) levels in
  Report.table
    (("Metric" :: List.map (fun (l, _) -> l.Costmodel.name) stats)
    :: List.map
         (fun (label, get) -> label :: List.map (fun (_, s) -> get s) stats)
         [
           ( "branches decided / total",
             fun (s : Precision.counts) ->
               Printf.sprintf "%d/%d" s.Precision.branches_decided
                 s.Precision.branches );
           ( "accesses proven in-bounds / total",
             fun s ->
               Printf.sprintf "%d/%d" s.Precision.geps_proved s.Precision.geps );
           ( "in-bounds ratio",
             fun s ->
               Printf.sprintf "%.0f%%"
                 (100.0 *. Precision.ratio s.Precision.geps_proved s.Precision.geps)
           );
           ( "registers with tight ranges",
             fun s ->
               Printf.sprintf "%d/%d" s.Precision.regs_bounded s.Precision.regs );
         ]);
  print_endline
    "(A higher in-bounds ratio means the same simple tool proves more\n\
    \ memory accesses safe because the compiler exposed the masking and\n\
    \ specialized the code — the paper's precision argument.)";
  stats
