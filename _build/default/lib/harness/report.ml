(** Plain-text table rendering for the benchmark harness. *)

(** Print a column-aligned table; the first row is the header. *)
let table ?(out = stdout) (rows : string list list) =
  match rows with
  | [] -> ()
  | header :: _ ->
      let ncols = List.length header in
      let widths = Array.make ncols 0 in
      List.iter
        (fun row ->
          List.iteri
            (fun i cell ->
              if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
            row)
        rows;
      let print_row row =
        List.iteri
          (fun i cell ->
            Printf.fprintf out "%s%s"
              (if i = 0 then "" else "  ")
              (let pad = widths.(i) - String.length cell in
               if i = 0 then cell ^ String.make pad ' '
               else String.make pad ' ' ^ cell))
          row;
        Printf.fprintf out "\n"
      in
      (match rows with
      | h :: rest ->
          print_row h;
          Printf.fprintf out "%s\n"
            (String.concat "  "
               (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
          List.iter print_row rest
      | [] -> ())

let section ?(out = stdout) title =
  Printf.fprintf out "\n=== %s ===\n\n" title

let ms t = Printf.sprintf "%.1f" (t *. 1000.)

let fmt_int n =
  (* thousands separators for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
