(** Table 2: measured ablation of the paper's qualitative
    transformation-impact matrix.

    For each transformation class we compare the full [-OVERIFY] pipeline
    against the same pipeline with that class disabled (and [-O3] against
    [-O3]-plus/minus for the execution-oriented entries), measuring the
    impact on verification time and on simulated execution cycles over a few
    representative corpus programs.  A '+' means the transformation helps
    (time drops when it is enabled), '-' means it hurts, '0' means within
    noise. *)

module Costmodel = Overify_opt.Costmodel
module Engine = Overify_symex.Engine

type row = {
  transformation : string;
  verify_factor : float;  (** t_verify(disabled) / t_verify(enabled) *)
  exec_factor : float;    (** cycles(disabled) / cycles(enabled) *)
  paths_with : int;
  paths_without : int;
}

let sign ?(threshold = 1.05) f =
  if f > threshold then "+" else if f < 1.0 /. threshold then "-" else "0"

(** Verification impact sign: path counts are deterministic, so when the
    ablation changes them they give the answer; otherwise fall back to the
    time factor with a generous noise band. *)
let verify_sign (r : row) =
  if r.paths_without <> r.paths_with then
    sign (float_of_int r.paths_without /. float_of_int (max r.paths_with 1))
  else sign ~threshold:1.2 r.verify_factor

let test_programs = [ "wc"; "tr"; "nl"; "cut" ]

(** Total verification time + paths over the ablation program set. *)
let measure_level ?(input_size = 4) ?(timeout = 20.0) (cm : Costmodel.t) :
    float * float * int =
  List.fold_left
    (fun (tv, cyc, paths) name ->
      match Overify_corpus.Programs.find name with
      | None -> (tv, cyc, paths)
      | Some p ->
          let c = Experiment.compile cm p in
          let v = Experiment.verify ~input_size ~timeout c in
          let cycles = Experiment.measure_cycles ~size:12 c in
          (tv +. v.Engine.time, cyc +. cycles, paths + v.Engine.paths))
    (0.0, 0.0, 0) test_programs

let ablate ?input_size ?timeout ~name ~(base : Costmodel.t)
    ~(disabled : string list) () : row =
  let (tv_on, cyc_on, p_on) = measure_level ?input_size ?timeout base in
  let without =
    { base with
      Costmodel.disabled_passes = disabled @ base.Costmodel.disabled_passes }
  in
  let (tv_off, cyc_off, p_off) = measure_level ?input_size ?timeout without in
  {
    transformation = name;
    verify_factor = tv_off /. max tv_on 1e-6;
    exec_factor = cyc_off /. max cyc_on 1e-6;
    paths_with = p_on;
    paths_without = p_off;
  }

(** The runtime-checks row is special: enabling the pass adds work for both
    consumers, but turns every failure mode into a crash. *)
let runtime_checks_row ?input_size ?timeout () : row =
  let base = Costmodel.overify in
  let with_checks = { base with Costmodel.runtime_checks = true } in
  let (tv_off, cyc_off, p_off) = measure_level ?input_size ?timeout base in
  let (tv_on, cyc_on, p_on) = measure_level ?input_size ?timeout with_checks in
  {
    transformation = "Generate runtime checks";
    verify_factor = tv_off /. max tv_on 1e-6;
    exec_factor = cyc_off /. max cyc_on 1e-6;
    paths_with = p_on;
    paths_without = p_off;
  }

let rows ?input_size ?timeout () : row list =
  let ab = ablate ?input_size ?timeout in
  [
    ab ~name:"Constant propagation/folding, arithmetic simplifications"
      ~base:Costmodel.overify ~disabled:[ "constfold"; "gvn" ] ();
    ab ~name:"Remove/split memory accesses"
      ~base:Costmodel.overify
      ~disabled:[ "mem2reg"; "sroa"; "loadelim" ] ();
    ab ~name:"Simplify control flow: jump threading, loop unswitching"
      ~base:Costmodel.overify ~disabled:[ "jump_threading"; "unswitch" ] ();
    ab ~name:"Speculate branches (if-conversion)"
      ~base:Costmodel.overify ~disabled:[ "if_convert" ] ();
    ab ~name:"Restructure the program: function inlining, loop unrolling"
      ~base:Costmodel.overify ~disabled:[ "inline"; "unroll" ] ();
    ab ~name:"CPU-specific: instruction scheduling"
      ~base:Costmodel.o3 ~disabled:[ "schedule" ] ();
    runtime_checks_row ?input_size ?timeout ();
  ]

let print ?(input_size = 4) ?timeout () =
  Report.section
    "Table 2: measured impact of transformation classes (ablation)";
  let rs = rows ~input_size ?timeout () in
  Report.table
    ([ "Transformation"; "Verification"; "Execution"; "x faster verify";
       "x faster exec"; "paths with/without" ]
    :: List.map
         (fun r ->
           [
             r.transformation;
             verify_sign r;
             sign r.exec_factor;
             Printf.sprintf "%.2f" r.verify_factor;
             Printf.sprintf "%.2f" r.exec_factor;
             Printf.sprintf "%d/%d" r.paths_with r.paths_without;
           ])
         rs);
  print_endline
    "('+' = transformation speeds this consumer up, '-' = slows it down;\n\
    \ factors are time-without / time-with over the ablation program set)";
  rs
