(** Figure 4: per-program compile+analysis time over the whole corpus at
    [-O0], [-O3] and [-OVERIFY], with a per-program budget.

    The paper plots, per program, the time of the faster of -O3/-OVERIFY
    plus the time gained by the winner; we print the same series (sorted by
    gain, as in the figure) as text columns, and the summary statistics the
    paper quotes: average reduction, maximum speedup, and the number of
    programs that only finish under -OVERIFY. *)

module Costmodel = Overify_opt.Costmodel
module Engine = Overify_symex.Engine

type cell = {
  total_s : float;       (** compile + analysis, seconds *)
  complete : bool;
  paths : int;
  bugs : (string * string) list;  (** kind, function *)
}

type entry = {
  pname : string;
  o0 : cell;
  o3 : cell;
  overify : cell;
}

let measure_one ?(input_size = 5) ?(timeout = 10.0) level program : cell =
  let c = Experiment.compile level program in
  let v = Experiment.verify ~input_size ~timeout c in
  {
    total_s = c.Experiment.t_compile +. v.Engine.time;
    complete = v.Engine.complete;
    paths = v.Engine.paths;
    bugs =
      List.map
        (fun (b : Engine.bug) -> (b.Engine.kind, b.Engine.at_function))
        v.Engine.bugs;
  }

let measure ?input_size ?timeout ?(progress = fun _ -> ()) () : entry list =
  List.map
    (fun (p : Overify_corpus.Programs.t) ->
      progress p.Overify_corpus.Programs.name;
      {
        pname = p.Overify_corpus.Programs.name;
        o0 = measure_one ?input_size ?timeout Costmodel.o0 p;
        o3 = measure_one ?input_size ?timeout Costmodel.o3 p;
        overify = measure_one ?input_size ?timeout Costmodel.overify p;
      })
    Overify_corpus.Programs.programs

type summary = {
  aggregate_reduction_vs_o3 : float;
      (** fraction of total (summed) -O3 time saved — the paper's "overall
          compilation and analysis time" metric *)
  aggregate_reduction_vs_o0 : float;
  avg_reduction_vs_o3 : float;   (** mean of per-program fractions *)
  avg_reduction_vs_o0 : float;
  max_speedup_vs_o3 : float;
  timeouts_o0 : int;
  timeouts_o3 : int;
  timeouts_overify : int;
  rescued_from_o3 : int;  (** programs finishing only under -OVERIFY *)
  bug_mismatches : string list;
}

let summarize (entries : entry list) : summary =
  (* keep experiments where at least one version finishes, like the paper *)
  let usable =
    List.filter
      (fun e -> e.o0.complete || e.o3.complete || e.overify.complete)
      entries
  in
  (* when a baseline times out, its measured time is a lower bound on the
     true time, so the computed reduction is a (sound) lower bound too —
     this mirrors the paper, which kept every experiment finishing on at
     least one version *)
  let reductions_o3 =
    List.filter_map
      (fun e ->
        if e.overify.complete && e.o3.total_s > 1e-4 then
          Some (1.0 -. (e.overify.total_s /. e.o3.total_s))
        else None)
      usable
  in
  let reductions_o0 =
    List.filter_map
      (fun e ->
        if e.overify.complete && e.o0.total_s > 1e-4 then
          Some (1.0 -. (e.overify.total_s /. e.o0.total_s))
        else None)
      usable
  in
  let avg l =
    if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let max_speedup =
    List.fold_left
      (fun acc e ->
        if e.overify.complete && e.overify.total_s > 1e-5 then
          max acc (e.o3.total_s /. e.overify.total_s)
        else acc)
      1.0 usable
  in
  let count f = List.length (List.filter f entries) in
  let total get = List.fold_left (fun a e -> a +. (get e).total_s) 0.0 usable in
  let t_ov = total (fun e -> e.overify)
  and t_o3 = total (fun e -> e.o3)
  and t_o0 = total (fun e -> e.o0) in
  (* the paper verified every bug found at -O0/-O3 is also found at -OVERIFY *)
  let bug_mismatches =
    List.concat_map
      (fun e ->
        let missing =
          List.filter
            (fun (kind, _) ->
              not (List.exists (fun (k, _) -> k = kind) e.overify.bugs))
            (e.o0.bugs @ e.o3.bugs)
        in
        List.map
          (fun (kind, fn) ->
            Printf.sprintf "%s: '%s' in %s found at -O0/-O3 but not -OVERIFY"
              e.pname kind fn)
          missing)
      entries
  in
  {
    aggregate_reduction_vs_o3 = (if t_o3 > 0. then 1.0 -. (t_ov /. t_o3) else 0.);
    aggregate_reduction_vs_o0 = (if t_o0 > 0. then 1.0 -. (t_ov /. t_o0) else 0.);
    avg_reduction_vs_o3 = avg reductions_o3;
    avg_reduction_vs_o0 = avg reductions_o0;
    max_speedup_vs_o3 = max_speedup;
    timeouts_o0 = count (fun e -> not e.o0.complete);
    timeouts_o3 = count (fun e -> not e.o3.complete);
    timeouts_overify = count (fun e -> not e.overify.complete);
    rescued_from_o3 =
      count (fun e -> e.overify.complete && not e.o3.complete);
    bug_mismatches;
  }

let print ?(input_size = 5) ?(timeout = 10.0) () =
  Report.section
    (Printf.sprintf
       "Figure 4: compile+analysis time per corpus program (%d symbolic \
        bytes, %.0fs budget per run)"
       input_size timeout);
  let entries =
    measure ~input_size ~timeout
      ~progress:(fun name -> Printf.printf "  analyzing %-10s...\n%!" name)
      ()
  in
  (* sort by gain of -OVERIFY over -O3, like the figure's right side *)
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.o3.total_s -. a.overify.total_s)
          (b.o3.total_s -. b.overify.total_s))
      entries
  in
  Report.table
    ([ "program"; "t(-O0) [s]"; "t(-O3) [s]"; "t(-OVERIFY) [s]";
       "fastest [s]"; "gain -OVERIFY"; "gain -O3"; "paths O0/O3/OV" ]
    :: List.map
         (fun e ->
           let fmt (c : cell) =
             if c.complete then Printf.sprintf "%.3f" c.total_s
             else Printf.sprintf ">%.1f (timeout)" c.total_s
           in
           let gain_ov = max 0.0 (e.o3.total_s -. e.overify.total_s) in
           let gain_o3 = max 0.0 (e.overify.total_s -. e.o3.total_s) in
           [
             e.pname;
             fmt e.o0;
             fmt e.o3;
             fmt e.overify;
             Printf.sprintf "%.3f" (min e.o3.total_s e.overify.total_s);
             Printf.sprintf "%.3f" gain_ov;
             Printf.sprintf "%.3f" gain_o3;
             Printf.sprintf "%d/%d/%d" e.o0.paths e.o3.paths e.overify.paths;
           ])
         sorted);
  let s = summarize entries in
  Printf.printf
    "\nSummary: -OVERIFY reduces overall compile+analysis time by %.0f%% vs \
     -O3 (paper: 58%%)\n\
    \         and by %.0f%% vs -O0 (paper: 63%%); max speedup vs -O3: %.0fx \
     (paper: 95x).\n\
    \         Per-program mean reduction: %.0f%% vs -O3, %.0f%% vs -O0 (the \
     mean is dominated by\n\
    \         trivial utilities whose total time is compile time — the \
     effect the paper notes\n\
    \         'vanishes in longer experiments').\n\
    \         Budget exhausted: %d at -O0, %d at -O3, %d at -OVERIFY; %d \
     programs finish only under -OVERIFY.\n"
    (100.0 *. s.aggregate_reduction_vs_o3)
    (100.0 *. s.aggregate_reduction_vs_o0)
    s.max_speedup_vs_o3
    (100.0 *. s.avg_reduction_vs_o3)
    (100.0 *. s.avg_reduction_vs_o0)
    s.timeouts_o0 s.timeouts_o3 s.timeouts_overify
    s.rescued_from_o3;
  (match s.bug_mismatches with
  | [] ->
      print_endline
        "Bug consistency: every bug found at -O0/-O3 is also found at \
         -OVERIFY (matches the paper)."
  | l ->
      print_endline "Bug consistency MISMATCHES:";
      List.iter (fun m -> print_endline ("  " ^ m)) l);
  (entries, s)
