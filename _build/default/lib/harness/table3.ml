(** Table 3: transformation counts when compiling the whole corpus at
    [-O0], [-O3] and [-OSYMBEX]/[-OVERIFY] — how much more aggressively the
    verification-oriented level transforms the same code. *)

module Costmodel = Overify_opt.Costmodel
module Stats = Overify_opt.Stats

let totals (level : Costmodel.t) : Stats.t =
  List.fold_left
    (fun acc p ->
      let c = Experiment.compile level p in
      Stats.add acc c.Experiment.opt_stats)
    (Stats.create ())
    Overify_corpus.Programs.programs

let levels = [ Costmodel.o0; Costmodel.o3; Costmodel.overify ]

let print () =
  Report.section "Table 3: compiling the corpus with different options";
  let stats = List.map (fun l -> (l, totals l)) levels in
  Report.table
    ([ "Optimization" ]
     @ List.map (fun (l, _) -> l.Costmodel.name) stats
    |> fun header ->
    header
    :: List.map
         (fun (label, get) ->
           label :: List.map (fun (_, s) -> Report.fmt_int (get s)) stats)
         [
           ("# functions inlined", fun s -> s.Stats.functions_inlined);
           ("# loops unswitched", fun s -> s.Stats.loops_unswitched);
           ("# loops unrolled", fun s -> s.Stats.loops_unrolled);
           ("# branches converted", fun s -> s.Stats.branches_converted);
           ("# jumps threaded", fun s -> s.Stats.jumps_threaded);
           ("# allocas promoted", fun s -> s.Stats.allocas_promoted);
           ("# instructions folded", fun s -> s.Stats.insts_folded);
           ("# annotations emitted", fun s -> s.Stats.annotations_added);
         ]);
  stats
