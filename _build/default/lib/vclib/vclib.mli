(** The MiniC standard library, in two variants (paper §3, "library-level
    changes"): an execution-oriented one and a verification-oriented one
    with branch-free predicates and precondition checks. *)

type variant = Exec | Verify

val source : variant -> string
(** MiniC source of the chosen libc variant; concatenate it with the program
    under test before compiling (linking, KLEE-style). *)

val for_cost_model : Overify_opt.Costmodel.t -> string
(** The variant a cost model links ([Verify] iff [verify_libc]). *)
