lib/vclib/vclib.ml: Overify_opt
