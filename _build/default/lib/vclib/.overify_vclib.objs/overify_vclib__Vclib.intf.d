lib/vclib/vclib.mli: Overify_opt
