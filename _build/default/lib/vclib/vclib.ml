(** The MiniC standard library, in two variants (paper §3, "library-level
    changes"):

    - [`Exec]: idiomatic, branchy C — early returns, short-circuit scans —
      the shape a CPU likes (uClibc's role in KLEE's setup);
    - [`Verify]: same observable semantics, tailored for analysis — bitwise
      combination instead of short-circuit control flow, and precondition
      checks ([__assert]) so that bugs surface close to their root cause.

    Both variants are MiniC source compiled by our own frontend and linked
    (concatenated) with the program under test, exactly as KLEE links its
    adapted libc bitcode. *)

let common = {|
/* shared helpers, identical in both variants */

/* copy the symbolic input into a NUL-terminated buffer */
int read_input(char *buf, int cap) {
  int n = __input_size();
  if (n > cap - 1) n = cap - 1;
  for (int i = 0; i < n; i++) buf[i] = (char)__input(i);
  buf[n] = 0;
  return n;
}

int abs_(int x) { return x < 0 ? -x : x; }
int min_(int a, int b) { return a < b ? a : b; }
int max_(int a, int b) { return a > b ? a : b; }

void puts_(const char *s) {
  __assert(s != 0);
  for (int i = 0; s[i]; i++) __output(s[i]);
}

/* print a signed integer in decimal */
void print_int(int v) {
  char tmp[12];
  int i = 0;
  unsigned int u;
  if (v < 0) { __output('-'); u = (unsigned int)(-v); } else u = (unsigned int)v;
  if (u == 0) { __output('0'); return; }
  while (u > 0) { tmp[i] = (char)('0' + (int)(u % 10u)); u = u / 10u; i++; }
  while (i > 0) { i--; __output(tmp[i]); }
}

/* print an unsigned integer in the given base (2..16) */
void print_uint_base(unsigned int v, int base) {
  char tmp[36];
  int i = 0;
  __assert(base >= 2 && base <= 16);
  if (v == 0) { __output('0'); return; }
  while (v > 0) {
    int d = (int)(v % (unsigned int)base);
    tmp[i] = (char)(d < 10 ? '0' + d : 'a' + d - 10);
    v = v / (unsigned int)base;
    i++;
  }
  while (i > 0) { i--; __output(tmp[i]); }
}
|}

let exec_variant = {|
/* ---- execution-oriented libc: early exits, short-circuit scans ---- */

int isspace(int c) {
  if (c == ' ') return 1;
  if (c == '\t') return 1;
  if (c == '\n') return 1;
  if (c == '\r') return 1;
  if (c == 11) return 1;
  if (c == 12) return 1;
  return 0;
}

int isdigit(int c) { if (c >= '0' && c <= '9') return 1; return 0; }

int isupper(int c) { if (c >= 'A' && c <= 'Z') return 1; return 0; }
int islower(int c) { if (c >= 'a' && c <= 'z') return 1; return 0; }

int isalpha(int c) {
  if (c >= 'a' && c <= 'z') return 1;
  if (c >= 'A' && c <= 'Z') return 1;
  return 0;
}

int isalnum(int c) {
  if (isalpha(c)) return 1;
  if (isdigit(c)) return 1;
  return 0;
}

int isprint(int c) { if (c >= 32 && c < 127) return 1; return 0; }

int toupper(int c) { if (c >= 'a' && c <= 'z') return c - 32; return c; }
int tolower(int c) { if (c >= 'A' && c <= 'Z') return c + 32; return c; }

int strlen(const char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}

int strcmp(const char *a, const char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(const char *a, const char *b, int n) {
  for (int i = 0; i < n; i++) {
    if (a[i] != b[i]) return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
    if (!a[i]) return 0;
  }
  return 0;
}

char *strcpy(char *dst, const char *src) {
  int i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

char *strcat(char *dst, const char *src) {
  int n = strlen(dst);
  int i = 0;
  while (src[i]) { dst[n + i] = src[i]; i++; }
  dst[n + i] = 0;
  return dst;
}

char *strchr(const char *s, int c) {
  int i = 0;
  while (s[i]) {
    if (s[i] == (char)c) return (char *)(s + i);
    i++;
  }
  if (c == 0) return (char *)(s + i);
  return 0;
}

char *strrchr(const char *s, int c) {
  char *last = 0;
  int i = 0;
  while (s[i]) {
    if (s[i] == (char)c) last = (char *)(s + i);
    i++;
  }
  if (c == 0) return (char *)(s + i);
  return last;
}

void *memcpy(void *dst, const void *src, int n) {
  char *d = (char *)dst;
  const char *s = (const char *)src;
  for (int i = 0; i < n; i++) d[i] = s[i];
  return dst;
}

void *memset(void *dst, int c, int n) {
  char *d = (char *)dst;
  for (int i = 0; i < n; i++) d[i] = (char)c;
  return dst;
}

int memcmp(const void *a, const void *b, int n) {
  const unsigned char *x = (const unsigned char *)a;
  const unsigned char *y = (const unsigned char *)b;
  for (int i = 0; i < n; i++) {
    if (x[i] != y[i]) return (int)x[i] - (int)y[i];
  }
  return 0;
}

int atoi(const char *s) {
  int i = 0;
  int sign = 1;
  int v = 0;
  while (isspace((int)(unsigned char)s[i])) i++;
  if (s[i] == '-') { sign = -1; i++; }
  else if (s[i] == '+') i++;
  while (isdigit((int)(unsigned char)s[i])) {
    v = v * 10 + (s[i] - '0');
    i++;
  }
  return sign * v;
}
|}

let verify_variant = {|
/* ---- verification-oriented libc: branch-free predicates, bounded loops,
       precondition checks ---- */

int isspace(int c) {
  return (c == ' ') | (c == '\t') | (c == '\n') | (c == '\r')
       | (c == 11) | (c == 12);
}

int isdigit(int c) { return (c >= '0') & (c <= '9'); }

int isupper(int c) { return (c >= 'A') & (c <= 'Z'); }
int islower(int c) { return (c >= 'a') & (c <= 'z'); }

int isalpha(int c) { return islower(c) | isupper(c); }

int isalnum(int c) { return isalpha(c) | isdigit(c); }

int isprint(int c) { return (c >= 32) & (c < 127); }

int toupper(int c) { return c - (islower(c) << 5); }
int tolower(int c) { return c + (isupper(c) << 5); }

int strlen(const char *s) {
  __assert(s != 0);
  int n = 0;
  while (s[n]) n++;
  return n;
}

int strcmp(const char *a, const char *b) {
  __assert(a != 0);
  __assert(b != 0);
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(const char *a, const char *b, int n) {
  __assert(a != 0);
  __assert(b != 0);
  int d = 0;
  for (int i = 0; i < n; i++) {
    int da = (int)(unsigned char)a[i];
    int db = (int)(unsigned char)b[i];
    int differ = (d == 0) & ((da != db) | (da == 0));
    d = differ ? da - db : d;
    if (d != 0) return d;     /* keep early exit: loop bound is data */
    if (da == 0) return 0;
  }
  return d;
}

char *strcpy(char *dst, const char *src) {
  __assert(dst != 0);
  __assert(src != 0);
  int i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

char *strcat(char *dst, const char *src) {
  __assert(dst != 0);
  __assert(src != 0);
  int n = strlen(dst);
  int i = 0;
  while (src[i]) { dst[n + i] = src[i]; i++; }
  dst[n + i] = 0;
  return dst;
}

/* pointer-returning scans deliberately keep their early exits: a
   select-computed index would turn the result into a symbolic address,
   which costs an analyzer far more than the branch it saves */
char *strchr(const char *s, int c) {
  __assert(s != 0);
  int i = 0;
  while (s[i]) {
    if (s[i] == (char)c) return (char *)(s + i);
    i++;
  }
  if (c == 0) return (char *)(s + i);
  return 0;
}

char *strrchr(const char *s, int c) {
  __assert(s != 0);
  char *last = 0;
  int i = 0;
  while (s[i]) {
    if (s[i] == (char)c) last = (char *)(s + i);
    i++;
  }
  if (c == 0) return (char *)(s + i);
  return last;
}

void *memcpy(void *dst, const void *src, int n) {
  __assert(dst != 0);
  __assert(src != 0);
  __assert(n >= 0);
  char *d = (char *)dst;
  const char *s = (const char *)src;
  for (int i = 0; i < n; i++) d[i] = s[i];
  return dst;
}

void *memset(void *dst, int c, int n) {
  __assert(dst != 0);
  __assert(n >= 0);
  char *d = (char *)dst;
  for (int i = 0; i < n; i++) d[i] = (char)c;
  return dst;
}

int memcmp(const void *a, const void *b, int n) {
  __assert(a != 0);
  __assert(b != 0);
  const unsigned char *x = (const unsigned char *)a;
  const unsigned char *y = (const unsigned char *)b;
  int d = 0;
  for (int i = 0; i < n; i++) {
    int differ = (d == 0) & (x[i] != y[i]);
    d = differ ? (int)x[i] - (int)y[i] : d;
  }
  return d;
}

int atoi(const char *s) {
  __assert(s != 0);
  int i = 0;
  while (isspace((int)(unsigned char)s[i])) i++;
  int neg = s[i] == '-';
  i = i + ((s[i] == '-') | (s[i] == '+'));
  int v = 0;
  while (isdigit((int)(unsigned char)s[i])) {
    v = v * 10 + (s[i] - '0');
    i++;
  }
  return neg ? -v : v;
}
|}

type variant = Exec | Verify

(** MiniC source of the chosen libc variant. *)
let source = function
  | Exec -> exec_variant ^ common
  | Verify -> verify_variant ^ common

(** The variant a cost model links (paper: [-OVERIFY] "links the program
    with a specialized version of the C standard library"). *)
let for_cost_model (cm : Overify_opt.Costmodel.t) =
  if cm.Overify_opt.Costmodel.verify_libc then source Verify else source Exec
