(** Concrete IR interpreter with a CPU cycle cost model.

    This is the "execution" side of the paper's trade-off: it measures
    [t_run] for Table 1 and serves as the semantic oracle for differential
    testing of optimization passes (same input must produce the same exit
    code and output bytes at every optimization level).

    The cost model is a simple in-order CPU approximation; absolute numbers
    are meaningless but relative costs (branches vs straight-line speculated
    code) reproduce the paper's observation that verification-optimized code
    runs slower. *)

module Ir = Overify_ir.Ir

type trap =
  | Out_of_bounds of string
  | Null_deref
  | Use_after_free
  | Div_by_zero
  | Assert_failure
  | Abort_called
  | Unknown_function of string
  | Out_of_fuel
  | Invalid of string

let string_of_trap = function
  | Out_of_bounds s -> "out-of-bounds access: " ^ s
  | Null_deref -> "null pointer dereference"
  | Use_after_free -> "use after scope exit"
  | Div_by_zero -> "division by zero"
  | Assert_failure -> "assertion failure"
  | Abort_called -> "abort called"
  | Unknown_function f -> "call to unknown function " ^ f
  | Out_of_fuel -> "instruction budget exhausted"
  | Invalid s -> "invalid operation: " ^ s

exception Trap of trap

(** Runtime values: normalized integers or (object, byte-offset) pointers.
    The null pointer is object 0. *)
type value = VInt of int64 | VPtr of int * int

let vnull = VPtr (0, 0)

type obj = { data : Bytes.t; mutable live : bool; writable : bool }

(** Per-instruction cycle costs. *)
module Cost = struct
  let alu = 1
  let mul = 3
  let divide = 24
  let cmp = 1
  let select = 1
  let cast = 1
  let load = 4
  let store = 4
  let gep = 1
  let call = 6
  let ret = 2
  let br = 1
  let cbr = 3
  let phi = 0

  let of_inst = function
    | Ir.Bin (_, (Ir.Mul), _, _, _) -> mul
    | Ir.Bin (_, (Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem), _, _, _) -> divide
    | Ir.Bin _ -> alu
    | Ir.Cmp _ -> cmp
    | Ir.Select _ -> select
    | Ir.Cast _ -> cast
    | Ir.Alloca _ -> alu
    | Ir.Load _ -> load
    | Ir.Store _ -> store
    | Ir.Gep _ -> gep
    | Ir.Call _ -> call
    | Ir.Phi _ -> phi

  let of_term = function
    | Ir.Br _ -> br
    | Ir.Cbr _ -> cbr
    | Ir.Ret _ -> ret
    | Ir.Unreachable -> 0
end

type result = {
  exit_code : int64;
  output : string;
  cycles : int;
  insts : int;  (** dynamic instruction count *)
  trap : trap option;
}

type state = {
  modul : Ir.modul;
  objects : (int, obj) Hashtbl.t;
  globals : (string, int) Hashtbl.t;  (* global name -> object id *)
  input : string;
  out : Buffer.t;
  mutable next_obj : int;
  mutable cycles : int;
  mutable insts : int;
  mutable fuel : int;
}

let new_obj st ~size ~writable =
  let id = st.next_obj in
  st.next_obj <- id + 1;
  Hashtbl.replace st.objects id
    { data = Bytes.make size '\000'; live = true; writable };
  id

let obj_of st id =
  match Hashtbl.find_opt st.objects id with
  | Some o -> o
  | None -> raise (Trap (Invalid "dangling object id"))

(* little-endian scalar access *)
let read_scalar st (obj, off) size =
  if obj = 0 then raise (Trap Null_deref);
  let o = obj_of st obj in
  if not o.live then raise (Trap Use_after_free);
  if off < 0 || off + size > Bytes.length o.data then
    raise
      (Trap
         (Out_of_bounds
            (Printf.sprintf "load of %d bytes at offset %d of %d-byte object"
               size off (Bytes.length o.data))));
  let v = ref 0L in
  for i = size - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get o.data (off + i))))
  done;
  !v

let write_scalar st (obj, off) size v =
  if obj = 0 then raise (Trap Null_deref);
  let o = obj_of st obj in
  if not o.live then raise (Trap Use_after_free);
  if not o.writable then raise (Trap (Out_of_bounds "write to read-only data"));
  if off < 0 || off + size > Bytes.length o.data then
    raise
      (Trap
         (Out_of_bounds
            (Printf.sprintf "store of %d bytes at offset %d of %d-byte object"
               size off (Bytes.length o.data))));
  for i = 0 to size - 1 do
    Bytes.set o.data (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let as_int = function
  | VInt v -> v
  | VPtr (0, 0) -> 0L
  | VPtr _ -> raise (Trap (Invalid "pointer used as integer"))

let as_ptr = function
  | VPtr (o, off) -> (o, off)
  | VInt 0L -> (0, 0)
  | VInt _ -> raise (Trap (Invalid "integer used as pointer"))

(* ------------------------------------------------------------------ *)

let charge st c =
  st.cycles <- st.cycles + c;
  st.insts <- st.insts + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Trap Out_of_fuel)

let eval_value regs = function
  | Ir.Imm (v, Ir.Ptr) ->
      if v = 0L then vnull
      else raise (Trap (Invalid "non-null pointer constant"))
  | Ir.Imm (v, _) -> VInt v
  | Ir.Reg r -> (
      match Hashtbl.find_opt regs r with
      | Some v -> v
      | None ->
          raise (Trap (Invalid (Printf.sprintf "undefined register %%%d" r))))
  | Ir.Glob name ->
      raise (Trap (Invalid ("unresolved global " ^ name)))
      (* resolved by the caller's [eval] before reaching here *)

let rec exec_func st (fn : Ir.func) (args : value list) : value option =
  let regs : (int, value) Hashtbl.t = Hashtbl.create 64 in
  let frame_objs = ref [] in
  (try List.iter2 (fun (r, _) v -> Hashtbl.replace regs r v) fn.params args
   with Invalid_argument _ ->
     raise (Trap (Invalid ("arity mismatch calling " ^ fn.fname))));
  let eval v =
    match v with
    | Ir.Glob name -> (
        match Hashtbl.find_opt st.globals name with
        | Some o -> VPtr (o, 0)
        | None -> raise (Trap (Invalid ("unknown global " ^ name))))
    | _ -> eval_value regs v
  in
  let set r v = Hashtbl.replace regs r v in
  (* in-order pipeline model: consuming the immediately preceding result
     stalls for one cycle; the -O2/-O3 scheduler spreads such pairs apart,
     while -OVERIFY's serial select chains pay it in full *)
  let last_def = ref (-1) in
  let charge_stall inst =
    if !last_def >= 0
       && List.exists (fun v -> v = Ir.Reg !last_def) (Ir.uses_of_inst inst)
    then st.cycles <- st.cycles + 1;
    last_def := (match Ir.def_of_inst inst with Some d -> d | None -> -1)
  in
  let btbl = Ir.block_tbl fn in
  let result = ref None in
  let rec run_block prev (b : Ir.block) =
    (* evaluate phis simultaneously *)
    let phis, rest =
      let rec split acc = function
        | (Ir.Phi _ as p) :: tl -> split (p :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      split [] b.insts
    in
    let phi_vals =
      List.map
        (fun p ->
          match p with
          | Ir.Phi (d, _, incoming) -> (
              match List.assoc_opt prev incoming with
              | Some v -> (d, eval v)
              | None ->
                  raise (Trap (Invalid "phi has no entry for predecessor")))
          | _ -> assert false)
        phis
    in
    List.iter (fun (d, v) -> set d v) phi_vals;
    List.iter (fun p -> charge st (Cost.of_inst p)) phis;
    List.iter exec_one rest;
    charge st (Cost.of_term b.term);
    match b.term with
    | Ir.Br l -> run_block b.bid (Hashtbl.find btbl l)
    | Ir.Cbr (c, t, e) ->
        let v = as_int (eval c) in
        run_block b.bid (Hashtbl.find btbl (if v <> 0L then t else e))
    | Ir.Ret None -> result := None
    | Ir.Ret (Some v) -> result := Some (eval v)
    | Ir.Unreachable -> raise (Trap (Invalid "reached unreachable"))
  and exec_one inst =
    charge st (Cost.of_inst inst);
    charge_stall inst;
    match inst with
    | Ir.Bin (d, op, ty, a, b) -> (
        let va = as_int (eval a) and vb = as_int (eval b) in
        match Ir.eval_binop op ty va vb with
        | Some v -> set d (VInt v)
        | None -> raise (Trap Div_by_zero))
    | Ir.Cmp (d, op, ty, a, b) ->
        let r =
          match ty with
          | Ir.Ptr ->
              let pa = as_ptr (eval a) and pb = as_ptr (eval b) in
              let eq = pa = pb in
              (match op with
              | Ir.Eq -> eq
              | Ir.Ne -> not eq
              | _ -> raise (Trap (Invalid "ordered pointer comparison")))
          | _ -> Ir.eval_cmp op ty (as_int (eval a)) (as_int (eval b))
        in
        set d (VInt (if r then 1L else 0L))
    | Ir.Select (d, ty, c, a, b) ->
        ignore ty;
        let v = if as_int (eval c) <> 0L then eval a else eval b in
        set d v
    | Ir.Cast (d, op, to_ty, v, from_ty) ->
        set d (VInt (Ir.eval_cast op to_ty (as_int (eval v)) from_ty))
    | Ir.Alloca (d, ty, n) ->
        let id = new_obj st ~size:(Ir.size_of_ty ty * n) ~writable:true in
        frame_objs := id :: !frame_objs;
        set d (VPtr (id, 0))
    | Ir.Load (d, ty, p) ->
        let (o, off) = as_ptr (eval p) in
        if ty = Ir.Ptr then begin
          (* pointers in memory are stored as (obj << 32 | off+1); 0 = null *)
          let raw = read_scalar st (o, off) 8 in
          if raw = 0L then set d vnull
          else
            set d
              (VPtr
                 ( Int64.to_int (Int64.shift_right_logical raw 32),
                   Int64.to_int (Int64.logand raw 0xFFFFFFFFL) - 1 ))
        end
        else set d (VInt (read_scalar st (o, off) (Ir.size_of_ty ty)))
    | Ir.Store (ty, v, p) ->
        let (o, off) = as_ptr (eval p) in
        if ty = Ir.Ptr then begin
          let raw =
            match eval v with
            | VPtr (0, 0) -> 0L
            | VPtr (po, poff) ->
                Int64.logor
                  (Int64.shift_left (Int64.of_int po) 32)
                  (Int64.of_int (poff + 1))
            | VInt 0L -> 0L
            | VInt _ -> raise (Trap (Invalid "storing integer as pointer"))
          in
          write_scalar st (o, off) 8 raw
        end
        else write_scalar st (o, off) (Ir.size_of_ty ty) (as_int (eval v))
    | Ir.Gep (d, base, scale, idx) ->
        let (o, off) = as_ptr (eval base) in
        let i = Int64.to_int (Ir.signed_of Ir.I64 (as_int (eval idx))) in
        set d (VPtr (o, off + (scale * i)))
    | Ir.Call (d, _, name, args) -> (
        let vargs = List.map eval args in
        match exec_call st name vargs with
        | Some v -> ( match d with Some d -> set d v | None -> ())
        | None -> ())
    | Ir.Phi _ -> raise (Trap (Invalid "phi not at block start"))
  in
  run_block (-1) (Ir.entry fn);
  (* free the frame's stack objects *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt st.objects id with
      | Some o -> o.live <- false
      | None -> ())
    !frame_objs;
  !result

and exec_call st name (args : value list) : value option =
  match name with
  | "__input" ->
      let i = Int64.to_int (Ir.signed_of Ir.I32 (as_int (List.nth args 0))) in
      let v =
        if i >= 0 && i < String.length st.input then
          Int64.of_int (Char.code st.input.[i])
        else 0L
      in
      Some (VInt v)
  | "__input_size" -> Some (VInt (Int64.of_int (String.length st.input)))
  | "__output" ->
      let c = Int64.to_int (Int64.logand (as_int (List.nth args 0)) 0xFFL) in
      Buffer.add_char st.out (Char.chr c);
      None
  | "__abort" -> raise (Trap Abort_called)
  | "__assert" ->
      if as_int (List.nth args 0) = 0L then raise (Trap Assert_failure);
      None
  | _ -> (
      match Ir.find_func st.modul name with
      | Some fn -> exec_func st fn args
      | None -> raise (Trap (Unknown_function name)))

(** Run [main] of a module against a concrete [input] byte string. *)
let run ?(fuel = 50_000_000) (m : Ir.modul) ~(input : string) : result =
  let st =
    {
      modul = m;
      objects = Hashtbl.create 64;
      globals = Hashtbl.create 16;
      input;
      out = Buffer.create 64;
      next_obj = 1;
      cycles = 0;
      insts = 0;
      fuel;
    }
  in
  (* materialize globals *)
  List.iter
    (fun (g : Ir.global) ->
      let id = new_obj st ~size:g.gsize ~writable:(not g.gconst) in
      let o = Hashtbl.find st.objects id in
      Bytes.blit_string g.ginit 0 o.data 0
        (min (String.length g.ginit) g.gsize);
      Hashtbl.replace st.globals g.gname id)
    m.globals;
  match Ir.find_func m "main" with
  | None ->
      { exit_code = -1L; output = ""; cycles = 0; insts = 0;
        trap = Some (Unknown_function "main") }
  | Some main -> (
      try
        let r = exec_func st main [] in
        let code = match r with Some (VInt v) -> v | _ -> 0L in
        {
          exit_code = Ir.signed_of Ir.I32 code;
          output = Buffer.contents st.out;
          cycles = st.cycles;
          insts = st.insts;
          trap = None;
        }
      with Trap t ->
        {
          exit_code = -1L;
          output = Buffer.contents st.out;
          cycles = st.cycles;
          insts = st.insts;
          trap = Some t;
        })
