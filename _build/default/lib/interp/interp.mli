(** Concrete IR interpreter with a CPU cycle cost model — the "execution"
    side of the paper's trade-off (provides [t_run]) and the semantic oracle
    for differential testing of optimization passes. *)

type trap =
  | Out_of_bounds of string
  | Null_deref
  | Use_after_free
  | Div_by_zero
  | Assert_failure
  | Abort_called
  | Unknown_function of string
  | Out_of_fuel
  | Invalid of string

val string_of_trap : trap -> string

(** Runtime values: normalized integers or (object, byte-offset) pointers. *)
type value = VInt of int64 | VPtr of int * int

(** Per-instruction cycle costs of the simulated in-order CPU. *)
module Cost : sig
  val alu : int
  val mul : int
  val divide : int
  val load : int
  val store : int
  val call : int
  val br : int
  val cbr : int
  val of_inst : Overify_ir.Ir.inst -> int
  val of_term : Overify_ir.Ir.term -> int
end

type result = {
  exit_code : int64;   (** signed 32-bit view of [main]'s return value *)
  output : string;     (** bytes written through [__output] *)
  cycles : int;        (** simulated cycles, including dependency stalls *)
  insts : int;         (** dynamic instruction count *)
  trap : trap option;  (** [None] on clean termination *)
}

val run : ?fuel:int -> Overify_ir.Ir.modul -> input:string -> result
(** Execute [main] against a concrete input.  [fuel] bounds the dynamic
    instruction count (default 50M); exhausting it reports {!Out_of_fuel}. *)
