lib/interp/interp.ml: Buffer Bytes Char Hashtbl Int64 List Overify_ir Printf String
