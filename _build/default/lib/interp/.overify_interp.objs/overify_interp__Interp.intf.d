lib/interp/interp.mli: Overify_ir
