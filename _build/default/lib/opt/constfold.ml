(** Constant folding, algebraic simplification and copy propagation (an
    "instcombine-lite").  Runs on SSA form.

    The paper's §3 "instruction simplification" point: folding is good for
    execution but even better for verification, because every removed
    operation is one fewer symbolic expression and every branch condition
    reduced to a constant removes a solver query. *)

module Ir = Overify_ir.Ir

(** Is [v] a power of two > 0?  Returns the exponent. *)
let log2_opt v =
  if Int64.compare v 0L > 0 && Int64.logand v (Int64.sub v 1L) = 0L then begin
    let rec go i x = if x = 1L then i else go (i + 1) (Int64.shift_right_logical x 1) in
    Some (go 0 v)
  end
  else None

type action =
  | Keep
  | Replace of Ir.value   (* the defined register becomes this value *)
  | Rewrite of Ir.inst

let simplify_inst deftbl (inst : Ir.inst) : action =
  let def_of r = Hashtbl.find_opt deftbl r in
  match inst with
  | Ir.Bin (d, op, ty, a, b) -> (
      match (a, b) with
      | (Ir.Imm (va, _), Ir.Imm (vb, _)) -> (
          match Ir.eval_binop op ty va vb with
          | Some v -> Replace (Ir.Imm (v, ty))
          | None -> Keep (* division by zero: preserve the trap *))
      | _ -> (
          let zero = Ir.zero ty and ones = Ir.imm ty (-1L) in
          match (op, a, b) with
          | (Ir.Add, x, z) when z = zero -> Replace x
          | (Ir.Add, z, x) when z = zero -> Replace x
          | (Ir.Sub, x, z) when z = zero -> Replace x
          | (Ir.Sub, x, y) when x = y -> Replace zero
          | (Ir.Mul, x, Ir.Imm (1L, _)) -> Replace x
          | (Ir.Mul, Ir.Imm (1L, _), x) -> Replace x
          | (Ir.Mul, _, z) when z = zero -> Replace zero
          | (Ir.Mul, z, _) when z = zero -> Replace zero
          | (Ir.Mul, x, Ir.Imm (v, _)) when log2_opt v <> None -> (
              match log2_opt v with
              | Some k ->
                  Rewrite (Ir.Bin (d, Ir.Shl, ty, x, Ir.imm ty (Int64.of_int k)))
              | None -> Keep)
          | ((Ir.Sdiv | Ir.Udiv), x, Ir.Imm (1L, _)) -> Replace x
          | (Ir.Udiv, x, Ir.Imm (v, _)) when log2_opt v <> None -> (
              match log2_opt v with
              | Some k ->
                  Rewrite (Ir.Bin (d, Ir.Lshr, ty, x, Ir.imm ty (Int64.of_int k)))
              | None -> Keep)
          | ((Ir.Srem | Ir.Urem), _, Ir.Imm (1L, _)) -> Replace zero
          | (Ir.And, x, o) when o = ones -> Replace x
          | (Ir.And, o, x) when o = ones -> Replace x
          | (Ir.And, _, z) when z = zero -> Replace zero
          | (Ir.And, z, _) when z = zero -> Replace zero
          | (Ir.And, x, y) when x = y -> Replace x
          | (Ir.Or, x, z) when z = zero -> Replace x
          | (Ir.Or, z, x) when z = zero -> Replace x
          | (Ir.Or, x, y) when x = y -> Replace x
          | (Ir.Or, _, o) when o = ones -> Replace ones
          | (Ir.Or, o, _) when o = ones -> Replace ones
          | (Ir.Xor, x, z) when z = zero -> Replace x
          | (Ir.Xor, z, x) when z = zero -> Replace x
          | (Ir.Xor, x, y) when x = y -> Replace zero
          | ((Ir.Shl | Ir.Lshr | Ir.Ashr), x, z) when z = zero -> Replace x
          | ((Ir.Shl | Ir.Lshr), z, _) when z = zero -> Replace zero
          | _ -> Keep))
  | Ir.Cmp (d, op, ty, a, b) -> (
      match (a, b) with
      | (Ir.Imm (va, _), Ir.Imm (vb, _)) when ty <> Ir.Ptr ->
          Replace (Ir.imm_bool (Ir.eval_cmp op ty va vb))
      | _ when a = b && ty <> Ir.Ptr -> (
          match op with
          | Ir.Eq | Ir.Sle | Ir.Sge | Ir.Ule | Ir.Uge ->
              Replace (Ir.imm_bool true)
          | Ir.Ne | Ir.Slt | Ir.Sgt | Ir.Ult | Ir.Ugt ->
              Replace (Ir.imm_bool false))
      | _ -> (
          (* icmp (zext i1 x), 0  ==>  x  or  !x *)
          let zext_i1_of = function
            | Ir.Reg r -> (
                match def_of r with
                | Some (Ir.Cast (_, Ir.Zext, _, src, Ir.I1)) -> Some src
                | _ -> None)
            | _ -> None
          in
          match (op, zext_i1_of a, b) with
          | (Ir.Ne, Some x, z) when Ir.is_zero z -> Replace x
          | (Ir.Eq, Some x, z) when Ir.is_zero z ->
              Rewrite (Ir.Bin (d, Ir.Xor, Ir.I1, x, Ir.imm Ir.I1 1L))
          | (Ir.Eq, Some x, Ir.Imm (1L, _)) -> Replace x
          | (Ir.Ne, Some x, Ir.Imm (1L, _)) ->
              Rewrite (Ir.Bin (d, Ir.Xor, Ir.I1, x, Ir.imm Ir.I1 1L))
          | _ ->
              (* unsigned compare of a zext'd narrow value against a constant
                 above its range *)
              (match (op, a, b) with
              | (Ir.Ult, Ir.Reg r, Ir.Imm (v, _)) -> (
                  match def_of r with
                  | Some (Ir.Cast (_, Ir.Zext, _, _, from_ty))
                    when Ir.bits_of_ty from_ty < 64
                         && Int64.unsigned_compare v
                              (Int64.shift_left 1L (Ir.bits_of_ty from_ty))
                            >= 0 ->
                      Replace (Ir.imm_bool true)
                  | _ -> Keep)
              | _ -> Keep)))
  | Ir.Select (_, ty, c, a, b) -> (
      match c with
      | Ir.Imm (1L, _) -> Replace a
      | Ir.Imm (0L, _) -> Replace b
      | _ ->
          if a = b then Replace a
          else if ty <> Ir.Ptr && a = Ir.one ty && Ir.is_zero b then
            match inst with
            | Ir.Select (d, _, _, _, _) ->
                if ty = Ir.I1 then Replace c
                else Rewrite (Ir.Cast (d, Ir.Zext, ty, c, Ir.I1))
            | _ -> Keep
          else Keep)
  | Ir.Cast (d, op, to_ty, v, from_ty) -> (
      if to_ty = from_ty then Replace v
      else
        match v with
        | Ir.Imm (c, _) -> Replace (Ir.Imm (Ir.eval_cast op to_ty c from_ty, to_ty))
        | Ir.Reg r -> (
            match (op, def_of r) with
            | (Ir.Zext, Some (Ir.Cast (_, Ir.Zext, _, src, src_ty))) ->
                (* zext (zext x) -> zext x *)
                Rewrite (Ir.Cast (d, Ir.Zext, to_ty, src, src_ty))
            | (Ir.Trunc, Some (Ir.Cast (_, (Ir.Zext | Ir.Sext), _, src, src_ty)))
              when to_ty = src_ty ->
                (* trunc (ext x) back to the original type -> x *)
                Replace src
            | (Ir.Trunc, Some (Ir.Cast (_, Ir.Zext, _, src, src_ty)))
              when Ir.bits_of_ty to_ty > Ir.bits_of_ty src_ty ->
                Rewrite (Ir.Cast (d, Ir.Zext, to_ty, src, src_ty))
            | _ -> Keep)
        | _ -> Keep)
  | Ir.Gep (_, base, _, idx) when Ir.is_zero idx -> Replace base
  | Ir.Phi (d, _, incoming) -> (
      (* a phi whose incoming values are all identical (ignoring self) *)
      let vals =
        List.filter_map
          (fun (_, v) -> if v = Ir.Reg d then None else Some v)
          incoming
      in
      match vals with
      | v :: rest when List.for_all (Ir.value_eq v) rest -> Replace v
      | _ -> Keep)
  | _ -> Keep

(** One folding round over a function.  Returns the new function and whether
    anything changed. *)
let run_round (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let deftbl = Hashtbl.create 64 in
  Ir.iter_insts
    (fun _ i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace deftbl d i
      | None -> ())
    fn;
  let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Ir.Reg r -> (
        match Hashtbl.find_opt subst r with
        | Some v' when v' <> v -> resolve v'
        | _ -> v)
    | _ -> v
  in
  let changed = ref false in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let insts =
          List.filter_map
            (fun i ->
              let i = Ir.map_inst_values (fun r -> resolve (Ir.Reg r)) i in
              match simplify_inst deftbl i with
              | Keep -> Some i
              | Replace v -> (
                  match Ir.def_of_inst i with
                  | Some d ->
                      changed := true;
                      stats.Stats.insts_folded <- stats.Stats.insts_folded + 1;
                      Hashtbl.replace subst d (resolve v);
                      None
                  | None -> Some i)
              | Rewrite i' ->
                  changed := true;
                  stats.Stats.insts_folded <- stats.Stats.insts_folded + 1;
                  (match Ir.def_of_inst i' with
                  | Some d -> Hashtbl.replace deftbl d i'
                  | None -> ());
                  Some i')
            b.insts
        in
        let term = Ir.map_term_values (fun r -> resolve (Ir.Reg r)) b.term in
        { b with insts; term })
      fn.blocks
  in
  (* apply accumulated substitutions once more so later uses see them *)
  let final_sub r = resolve (Ir.Reg r) in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        {
          b with
          Ir.insts = List.map (Ir.map_inst_values final_sub) b.insts;
          term = Ir.map_term_values final_sub b.term;
        })
      blocks
  in
  ({ fn with blocks }, !changed)

let run stats (fn : Ir.func) : Ir.func * bool =
  let rec go fn n any =
    if n = 0 then (fn, any)
    else
      let (fn, changed) = run_round stats fn in
      if changed then go fn (n - 1) true else (fn, any)
  in
  go fn 8 false
