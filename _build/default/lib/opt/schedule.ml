(** CPU-oriented instruction scheduling: within each block, independent
    instructions are reordered so that an instruction does not immediately
    consume the result of its predecessor, avoiding the back-to-back
    dependency stall modeled by the interpreter's cost model.

    This is a stand-in for the pipeline/cache-oriented work of a real
    backend; its role in the reproduction is Table 2's last "available"
    row — an optimization that helps execution, does nothing for
    verification, and is therefore {e omitted} under [-OVERIFY] ("this
    offers the further benefit of considerably more freedom in generating
    code"). *)

module Ir = Overify_ir.Ir

(** Topological list scheduling of one block.  Memory operations and calls
    keep their relative order; pure instructions may move earlier as long as
    their operands are ready. *)
let schedule_block (blk : Ir.block) : Ir.block =
  (* phis must stay a prefix: schedule only the non-phi tail *)
  let phis, tail = List.partition Ir.is_phi blk.Ir.insts in
  let insts = Array.of_list tail in
  let n = Array.length insts in
  if n < 3 then blk
  else begin
    (* dependency edges: use -> def position, plus a chain through
       side-effecting instructions *)
    let def_pos = Hashtbl.create 16 in
    Array.iteri
      (fun idx i ->
        match Ir.def_of_inst i with
        | Some d -> Hashtbl.replace def_pos d idx
        | None -> ())
      insts;
    let preds_of = Array.make n [] in
    let last_effect = ref (-1) in
    Array.iteri
      (fun idx i ->
        let deps = ref [] in
        List.iter
          (fun v ->
            match v with
            | Ir.Reg r -> (
                match Hashtbl.find_opt def_pos r with
                | Some p when p < idx -> deps := p :: !deps
                | _ -> ())
            | _ -> ())
          (Ir.uses_of_inst i);
        (* effects and loads are ordered among themselves *)
        let pinned =
          match i with
          | Ir.Store _ | Ir.Call _ | Ir.Load _ | Ir.Alloca _ -> true
          | _ -> false
        in
        if pinned then begin
          if !last_effect >= 0 then deps := !last_effect :: !deps;
          last_effect := idx
        end;
        preds_of.(idx) <- !deps)
      insts;
    (* greedy schedule: prefer a ready instruction that does not use the
       result of the previously emitted one *)
    let emitted = Array.make n false in
    let out = ref [] in
    let prev_def = ref None in
    let ready idx =
      (not emitted.(idx)) && List.for_all (fun p -> emitted.(p)) preds_of.(idx)
    in
    let uses_prev idx =
      match !prev_def with
      | None -> false
      | Some d ->
          List.exists
            (fun v -> v = Ir.Reg d)
            (Ir.uses_of_inst insts.(idx))
    in
    for _ = 1 to n do
      (* first ready instruction not stalling; fall back to first ready *)
      let pick = ref (-1) in
      (try
         for idx = 0 to n - 1 do
           if ready idx && not (uses_prev idx) then begin
             pick := idx;
             raise Exit
           end
         done
       with Exit -> ());
      if !pick < 0 then begin
        try
          for idx = 0 to n - 1 do
            if ready idx then begin
              pick := idx;
              raise Exit
            end
          done
        with Exit -> ()
      end;
      if !pick >= 0 then begin
        emitted.(!pick) <- true;
        out := insts.(!pick) :: !out;
        prev_def := Ir.def_of_inst insts.(!pick)
      end
    done;
    { blk with Ir.insts = phis @ List.rev !out }
  end

let run (fn : Ir.func) : Ir.func * bool =
  let blocks = List.map schedule_block fn.Ir.blocks in
  if blocks = fn.Ir.blocks then (fn, false) else ({ fn with Ir.blocks }, true)
