(** CFG simplification: fold constant branches, eliminate trivial phis,
    merge straight-line block chains, skip empty forwarding blocks, drop
    unreachable code. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg

(** Remove a phi incoming entry when an edge disappears. *)
let drop_incoming (b : Ir.block) ~pred =
  let fix = function
    | Ir.Phi (d, ty, incoming) ->
        Ir.Phi (d, ty, List.filter (fun (p, _) -> p <> pred) incoming)
    | i -> i
  in
  { b with Ir.insts = List.map fix b.insts }

(** Fold [Cbr] on constants and same-target [Cbr]s into [Br]. *)
let fold_branches (fn : Ir.func) : Ir.func * bool =
  let changed = ref false in
  let btbl = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace btbl b.bid b) fn.blocks;
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Cbr (c, t, e) ->
          let replace target dead =
            changed := true;
            Hashtbl.replace btbl b.bid
              { (Hashtbl.find btbl b.bid) with Ir.term = Ir.Br target };
            if dead <> target then
              Hashtbl.replace btbl dead
                (drop_incoming (Hashtbl.find btbl dead) ~pred:b.bid)
          in
          if t = e then replace t t
          else (
            match c with
            | Ir.Imm (1L, _) -> replace t e
            | Ir.Imm (0L, _) -> replace e t
            | _ -> ())
      | _ -> ())
    fn.blocks;
  if !changed then
    ({ fn with blocks = List.map (fun (b : Ir.block) -> Hashtbl.find btbl b.bid) fn.blocks },
     true)
  else (fn, false)

(** Replace single-incoming phis with their value. *)
let fold_trivial_phis (fn : Ir.func) : Ir.func * bool =
  let subst = Hashtbl.create 8 in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let insts =
          List.filter
            (fun i ->
              match i with
              | Ir.Phi (d, _, [ (_, v) ]) ->
                  Hashtbl.replace subst d v;
                  false
              | _ -> true)
            b.insts
        in
        { b with insts })
      fn.blocks
  in
  if Hashtbl.length subst = 0 then (fn, false)
  else begin
    let rec resolve v =
      match v with
      | Ir.Reg r -> (
          match Hashtbl.find_opt subst r with
          | Some v' when v' <> v -> resolve v'
          | Some v' -> v'
          | None -> v)
      | _ -> v
    in
    let f r = resolve (Ir.Reg r) in
    let blocks =
      List.map
        (fun (b : Ir.block) ->
          {
            b with
            Ir.insts = List.map (Ir.map_inst_values f) b.insts;
            term = Ir.map_term_values f b.term;
          })
        blocks
    in
    ({ fn with blocks }, true)
  end

(** Merge [b -> c] when [c] is [b]'s only successor and [b] is [c]'s only
    predecessor. *)
let merge_chains (fn : Ir.func) : Ir.func * bool =
  let preds = Cfg.preds fn in
  let btbl = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace btbl b.bid b) fn.blocks;
  let merged_into = Hashtbl.create 8 in
  let changed = ref false in
  let entry_bid = (Ir.entry fn).bid in
  List.iter
    (fun (b0 : Ir.block) ->
      (* find the current representative of b0 (it may have been merged) *)
      let rec rep bid =
        match Hashtbl.find_opt merged_into bid with
        | Some b' -> rep b'
        | None -> bid
      in
      let bid = rep b0.bid in
      let b = Hashtbl.find btbl bid in
      match b.Ir.term with
      | Ir.Br c_bid
        when c_bid <> entry_bid && c_bid <> bid
             && Cfg.preds_of preds c_bid = [ b0.bid ] -> (
          let c = Hashtbl.find btbl c_bid in
          let has_phi = List.exists Ir.is_phi c.Ir.insts in
          if not has_phi then begin
            changed := true;
            Hashtbl.replace btbl bid
              { b with Ir.insts = b.Ir.insts @ c.Ir.insts; term = c.Ir.term };
            Hashtbl.replace merged_into c_bid bid;
            (* successors of c now see bid as predecessor *)
            List.iter
              (fun s ->
                match Hashtbl.find_opt btbl s with
                | Some sb ->
                    Hashtbl.replace btbl s
                      (Cfg.retarget_phis sb ~from_pred:c_bid ~to_pred:bid)
                | None -> ())
              (Cfg.succs c)
          end)
      | _ -> ())
    fn.blocks;
  if !changed then begin
    let blocks =
      List.filter_map
        (fun (b : Ir.block) ->
          if Hashtbl.mem merged_into b.bid then None
          else Some (Hashtbl.find btbl b.bid))
        fn.blocks
    in
    ({ fn with blocks }, true)
  end
  else (fn, false)

(** Skip empty blocks: [b] with no instructions and terminator [Br c] is
    removed by retargeting its predecessors straight to [c]. *)
let skip_empty (fn : Ir.func) : Ir.func * bool =
  let preds = Cfg.preds fn in
  let btbl = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace btbl b.bid b) fn.blocks;
  let entry_bid = (Ir.entry fn).bid in
  let removed = Hashtbl.create 8 in
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      match (b.Ir.insts, b.Ir.term) with
      | ([], Ir.Br c_bid)
        when (not !changed) (* one removal per pass: preds stay fresh *)
             && b.bid <> entry_bid && c_bid <> b.bid
             && not (Hashtbl.mem removed c_bid) -> (
          match Hashtbl.find_opt btbl c_bid with
          | None -> ()
          | Some c ->
              let bpreds = Cfg.preds_of preds b.bid in
              let cpreds = Cfg.preds_of preds c_bid in
              let c_has_phi = List.exists Ir.is_phi c.Ir.insts in
              (* avoid duplicate phi labels: a predecessor of b that is
                 already a predecessor of c would need two entries *)
              let conflict =
                c_has_phi
                && List.exists (fun p -> List.mem p cpreds) bpreds
              in
              (* a predecessor reaching c both through b and directly would
                 give c duplicate preds even without phis; that is fine for
                 the CFG but Cbr(x, b, c) folding handles it, so only skip
                 when phis force us to *)
              if not conflict && bpreds <> [] then begin
                changed := true;
                Hashtbl.replace removed b.bid ();
                (* retarget predecessors *)
                List.iter
                  (fun p ->
                    match Hashtbl.find_opt btbl p with
                    | Some pb ->
                        Hashtbl.replace btbl p
                          { pb with Ir.term = Cfg.redirect_term b.bid c_bid pb.Ir.term }
                    | None -> ())
                  bpreds;
                (* update c's phis: replace the entry for b with entries for
                   each predecessor of b, carrying b's incoming value *)
                let c = Hashtbl.find btbl c_bid in
                let fix = function
                  | Ir.Phi (d, ty, incoming) ->
                      let v_b = List.assoc_opt b.bid incoming in
                      let incoming =
                        List.filter (fun (p, _) -> p <> b.bid) incoming
                      in
                      let extra =
                        match v_b with
                        | Some v -> List.map (fun p -> (p, v)) bpreds
                        | None -> []
                      in
                      Ir.Phi (d, ty, incoming @ extra)
                  | i -> i
                in
                Hashtbl.replace btbl c_bid
                  { c with Ir.insts = List.map fix c.Ir.insts }
              end)
      | _ -> ())
    fn.blocks;
  if !changed then begin
    let blocks =
      List.filter_map
        (fun (b : Ir.block) ->
          if Hashtbl.mem removed b.bid then None
          else Some (Hashtbl.find btbl b.bid))
        fn.blocks
    in
    ({ fn with blocks }, true)
  end
  else (fn, false)

let run_once (fn : Ir.func) : Ir.func * bool =
  let (fn, c1) = fold_branches fn in
  let (fn, c2) = Cfg.remove_unreachable fn in
  let (fn, c3) = fold_trivial_phis fn in
  let (fn, c4) = skip_empty fn in
  let (fn, c5) = merge_chains fn in
  (fn, c1 || c2 || c3 || c4 || c5)

let run (fn : Ir.func) : Ir.func * bool =
  let rec go fn n any =
    if n = 0 then (fn, any)
    else
      let (fn, changed) = run_once fn in
      if changed then go fn (n - 1) true else (fn, any)
  in
  go fn 10 false
