lib/opt/if_convert.ml: Costmodel Hashtbl List Overify_ir Stats
