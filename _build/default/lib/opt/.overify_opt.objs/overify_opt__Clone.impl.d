lib/opt/clone.ml: Hashtbl List Option Overify_ir
