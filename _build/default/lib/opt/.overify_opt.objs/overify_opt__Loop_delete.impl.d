lib/opt/loop_delete.ml: Hashtbl List Option Overify_ir
