lib/opt/loop_unroll.ml: Array Clone Costmodel Hashtbl List Loop_unswitch Overify_ir Stats
