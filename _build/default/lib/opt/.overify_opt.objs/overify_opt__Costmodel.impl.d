lib/opt/costmodel.ml:
