lib/opt/stats.ml: Format
