lib/opt/loop_unswitch.ml: Clone Costmodel Hashtbl List Overify_ir Stats
