lib/opt/pipeline.mli: Costmodel Overify_ir Stats
