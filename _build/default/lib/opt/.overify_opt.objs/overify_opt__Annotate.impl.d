lib/opt/annotate.ml: Costmodel Gvn Int64 List Loop_unroll Loop_unswitch Overify_ir Printf Stats
