lib/opt/if_convert.mli: Costmodel Overify_ir Stats
