lib/opt/inline.ml: Clone Costmodel Hashtbl List Overify_ir Stats
