lib/opt/constfold.ml: Hashtbl Int64 List Overify_ir Stats
