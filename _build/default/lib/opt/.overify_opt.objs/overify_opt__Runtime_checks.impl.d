lib/opt/runtime_checks.ml: Hashtbl Int64 List Overify_ir Stats
