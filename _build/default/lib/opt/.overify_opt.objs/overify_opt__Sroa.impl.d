lib/opt/sroa.ml: Hashtbl Int64 List Overify_ir Stats
