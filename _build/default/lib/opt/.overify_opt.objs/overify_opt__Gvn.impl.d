lib/opt/gvn.ml: Hashtbl List Overify_ir
