lib/opt/loadelim.mli: Overify_ir
