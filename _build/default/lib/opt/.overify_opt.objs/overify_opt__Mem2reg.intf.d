lib/opt/mem2reg.mli: Hashtbl Overify_ir Stats
