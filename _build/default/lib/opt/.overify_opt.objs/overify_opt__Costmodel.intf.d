lib/opt/costmodel.mli:
