lib/opt/stats.mli: Format
