lib/opt/schedule.ml: Array Hashtbl List Overify_ir
