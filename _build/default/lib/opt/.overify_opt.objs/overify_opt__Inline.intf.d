lib/opt/inline.mli: Costmodel Overify_ir Stats
