lib/opt/loop_unswitch.mli: Costmodel Overify_ir Stats
