lib/opt/loop_unroll.mli: Costmodel Hashtbl Overify_ir Stats
