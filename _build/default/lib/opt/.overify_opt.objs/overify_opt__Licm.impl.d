lib/opt/licm.ml: Hashtbl List Overify_ir Stats
