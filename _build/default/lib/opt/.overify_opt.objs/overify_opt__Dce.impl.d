lib/opt/dce.ml: Hashtbl List Overify_ir
