lib/opt/loadelim.ml: Hashtbl List Map Overify_ir
