lib/opt/jump_threading.ml: Hashtbl List Overify_ir Stats
