lib/opt/mem2reg.ml: Hashtbl List Overify_ir Stats
