lib/opt/simplify_cfg.ml: Hashtbl List Overify_ir
