(** Promotion of scalar stack slots to SSA registers (Cytron et al., via
    iterated dominance frontiers).  Reads of never-written slots become 0,
    matching the interpreter's zero-initialized stack. *)

val promotable_slots : Overify_ir.Ir.func -> (int, Overify_ir.Ir.ty) Hashtbl.t
(** Single scalar allocas whose address never escapes. *)

val run : Stats.t -> Overify_ir.Ir.func -> Overify_ir.Ir.func * bool
