(** Pass pipelines implementing [-O0], [-O2], [-O3] and [-OVERIFY].

    Phase structure (see DESIGN.md §5):
    1. memory form: inlining, loop unswitching, loop peeling — structural
       transforms where block cloning is trivially sound;
    2. [mem2reg] builds SSA;
    3. scalar fixpoint: folding, GVN, CFG simplification, jump threading,
       if-conversion, DCE;
    4. CPU-oriented scheduling ([-O2]/[-O3] only) or annotations and the
       optional runtime checks ([-OVERIFY]). *)

module Ir = Overify_ir.Ir
module Verify = Overify_ir.Verify

type result = {
  modul : Ir.modul;
  stats : Stats.t;
  level : Costmodel.t;
}

(** When true (tests), every pass is followed by an IR verification. *)
let paranoid = ref false

let check_fn what fn =
  if !paranoid then
    match Verify.check fn with
    | Ok () -> ()
    | Error errs ->
        failwith
          (Printf.sprintf "pipeline: IR broken after %s in %s:\n%s\n%s" what
             fn.Ir.fname
             (String.concat "\n" errs)
             (Overify_ir.Printer.func_to_string fn))

let trace_passes =
  match Sys.getenv_opt "OVERIFY_PASS_TIMES" with Some _ -> true | None -> false

let apply_fn what (f : Ir.func -> Ir.func * bool) (fn : Ir.func) : Ir.func * bool
    =
  let t0 = if trace_passes then Unix.gettimeofday () else 0.0 in
  let (fn', changed) = f fn in
  if trace_passes then begin
    let dt = Unix.gettimeofday () -. t0 in
    if dt > 0.05 then
      Printf.eprintf "[pass] %-16s %-20s %6.2fs size=%d
%!" what fn.Ir.fname dt
        (Ir.func_size fn')
  end;
  if changed then check_fn what fn';
  (fn', changed)

(** Apply a pass unless the cost model's ablation list disables it. *)
let apply_fn_cm (cm : Costmodel.t) what f fn =
  if List.mem what cm.Costmodel.disabled_passes then (fn, false)
  else apply_fn what f fn

(** The scalar-optimization fixpoint on one SSA function. *)
let scalar_fixpoint (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) :
    Ir.func =
  let rec go fn round =
    if round = 0 then fn
    else begin
      let (fn, c1) = apply_fn_cm cm "constfold" (Constfold.run stats) fn in
      let (fn, c2) = apply_fn_cm cm "gvn" Gvn.run fn in
      let (fn, c2b) = apply_fn_cm cm "loadelim" Loadelim.run fn in
      let c2 = c2 || c2b in
      let (fn, c3) = apply_fn_cm cm "simplify_cfg" Simplify_cfg.run fn in
      let (fn, c4) =
        if cm.Costmodel.jump_threading then
          apply_fn_cm cm "jump_threading" (Jump_threading.run stats) fn
        else (fn, false)
      in
      let (fn, c5) = apply_fn_cm cm "if_convert" (If_convert.run cm stats) fn in
      let (fn, c6) =
        if cm.Costmodel.licm then apply_fn_cm cm "licm" (Licm.run stats) fn
        else (fn, false)
      in
      let (fn, c6b) =
        let (fn, ch) = apply_fn_cm cm "loop_delete" Loop_delete.run fn in
        if ch then stats.Stats.loops_deleted <- stats.Stats.loops_deleted + 1;
        (fn, ch)
      in
      let c6 = c6 || c6b in
      let (fn, c7) = apply_fn_cm cm "dce" Dce.run fn in
      if c1 || c2 || c3 || c4 || c5 || c6 || c7 then go fn (round - 1) else fn
    end
  in
  go fn 6

let optimize_function (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) :
    Ir.func =
  if not cm.Costmodel.scalar_opts then fn
  else begin
    (* memory-form loop transforms *)
    let (fn, _) = apply_fn_cm cm "unswitch" (Loop_unswitch.run cm stats) fn in
    let (fn, _) = apply_fn_cm cm "unroll" (Loop_unroll.run cm stats) fn in
    (* SSA construction and scalar work *)
    let (fn, _) = apply_fn_cm cm "sroa" (Sroa.run stats) fn in
    let (fn, _) = apply_fn_cm cm "mem2reg" (Mem2reg.run stats) fn in
    let fn = scalar_fixpoint cm stats fn in
    let fn =
      if cm.Costmodel.cpu_opts then fst (apply_fn_cm cm "schedule" Schedule.run fn)
      else fn
    in
    let fn =
      if cm.Costmodel.annotations then
        fst (apply_fn "annotate" (Annotate.run cm stats) fn)
      else fn
    in
    fn
  end

(** Compile a memory-form module at the given optimization level. *)
let optimize (cm : Costmodel.t) (m : Ir.modul) : result =
  let stats = Stats.create () in
  let m =
    if cm.Costmodel.runtime_checks then
      {
        m with
        Ir.funcs =
          List.map (fun f -> fst (Runtime_checks.run stats f)) m.Ir.funcs;
      }
    else m
  in
  let m =
    if cm.Costmodel.inline_threshold > 0
       && not (List.mem "inline" cm.Costmodel.disabled_passes)
    then Inline.run cm stats m
    else m
  in
  let m =
    { m with Ir.funcs = List.map (optimize_function cm stats) m.Ir.funcs }
  in
  { modul = m; stats; level = cm }
