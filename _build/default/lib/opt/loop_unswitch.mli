(** Loop unswitching on memory-form IR: a loop-invariant conditional inside
    the loop is evaluated once in a dispatch block that selects between two
    specialized copies of the loop — the transformation behind the paper's
    motivating example. *)

val non_escaping_slots : Overify_ir.Ir.func -> Overify_ir.Cfg.IntSet.t
(** Allocas used only as direct load/store addresses. *)

val has_phis : Overify_ir.Ir.func -> bool

val run :
  Costmodel.t -> Stats.t -> Overify_ir.Ir.func -> Overify_ir.Ir.func * bool
