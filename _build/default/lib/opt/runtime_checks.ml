(** Insertion of explicit runtime checks (paper §3, "runtime checks" row of
    Table 2): division-by-zero guards, null-pointer guards before memory
    accesses through unknown pointers, and bounds checks for address
    computations into stack arrays of known extent.  Every failing check
    branches to a single block calling [__abort], so a verification tool only
    needs to look for one kind of failure — crashes.

    Runs on memory-form or SSA IR alike (no phis are introduced in the block
    interiors being split; blocks with phis keep them in the head block). *)

module Ir = Overify_ir.Ir

let run (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let extents = Hashtbl.create 8 in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, ty, n) -> Hashtbl.replace extents d (Ir.size_of_ty ty * n)
      | _ -> ())
    fn;
  let fresh = Ir.Fresh.of_func fn in
  let abort_bid = Ir.Fresh.take fresh in
  let inserted = ref 0 in
  (* what guard does instruction [i] need?  (check insts, i1 guard reg) *)
  let needs_check (i : Ir.inst) : (Ir.inst list * int) option =
    match i with
    | Ir.Bin (_, (Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem), ty, _, (Ir.Reg _ as b)) ->
        let c = Ir.Fresh.take fresh in
        Some ([ Ir.Cmp (c, Ir.Ne, ty, b, Ir.zero ty) ], c)
    | Ir.Gep (_, Ir.Reg base, scale, (Ir.Reg _ as idx))
      when Hashtbl.mem extents base && scale > 0 ->
        let size = Hashtbl.find extents base in
        let limit = Int64.of_int (size / scale) in
        let c = Ir.Fresh.take fresh in
        Some ([ Ir.Cmp (c, Ir.Ult, Ir.I64, idx, Ir.imm Ir.I64 limit) ], c)
    | Ir.Load (_, _, (Ir.Reg r as p)) | Ir.Store (_, _, (Ir.Reg r as p))
      when not (Hashtbl.mem extents r) ->
        let c = Ir.Fresh.take fresh in
        Some ([ Ir.Cmp (c, Ir.Ne, Ir.Ptr, p, Ir.Imm (0L, Ir.Ptr)) ], c)
    | _ -> None
  in
  (* when a block is split, its outgoing edges come from the last sub-block;
     successors' phi labels must be retargeted accordingly *)
  let last_sub : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let split_block (blk : Ir.block) : Ir.block list =
    let out = ref [] in
    let cur_bid = ref blk.Ir.bid in
    let cur_rev = ref [] in
    List.iter
      (fun i ->
        match needs_check i with
        | Some (checks, guard) ->
            incr inserted;
            let cont_bid = Ir.Fresh.take fresh in
            out :=
              {
                Ir.bid = !cur_bid;
                insts = List.rev_append !cur_rev checks;
                term = Ir.Cbr (Ir.Reg guard, cont_bid, abort_bid);
              }
              :: !out;
            cur_bid := cont_bid;
            cur_rev := [ i ]
        | None -> cur_rev := i :: !cur_rev)
      blk.Ir.insts;
    if !cur_bid <> blk.Ir.bid then Hashtbl.replace last_sub blk.Ir.bid !cur_bid;
    List.rev
      ({ Ir.bid = !cur_bid; insts = List.rev !cur_rev; term = blk.Ir.term }
      :: !out)
  in
  let blocks = List.concat_map split_block fn.Ir.blocks in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let fix = function
          | Ir.Phi (d, ty, incoming) ->
              Ir.Phi
                ( d,
                  ty,
                  List.map
                    (fun (p, v) ->
                      match Hashtbl.find_opt last_sub p with
                      | Some p' -> (p', v)
                      | None -> (p, v))
                    incoming )
          | i -> i
        in
        { b with Ir.insts = List.map fix b.Ir.insts })
      blocks
  in
  if !inserted = 0 then (fn, false)
  else begin
    let abort_blk =
      {
        Ir.bid = abort_bid;
        insts = [ Ir.Call (None, Ir.Void, "__abort", []) ];
        term = Ir.Unreachable;
      }
    in
    stats.Stats.checks_inserted <- stats.Stats.checks_inserted + !inserted;
    (Ir.Fresh.commit fresh { fn with Ir.blocks = blocks @ [ abort_blk ] }, true)
  end
