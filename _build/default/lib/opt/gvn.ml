(** Global value numbering / common-subexpression elimination over the
    dominator tree, including redundant-load elimination.

    Loads are the interesting case for the paper: collapsing repeated loads
    of the same pointer is what makes branch arms pure so that if-conversion
    can remove them — the paper's Listing 2 speculates the character-class
    test on the already-loaded byte.  Memory dependence is handled
    conservatively:

    - if the function contains {e no} stores and no calls that could write
      memory, a dominating load of the same pointer is always reusable;
    - otherwise loads are only reused within a block, with an epoch counter
      bumped at every store/call. *)

module Ir = Overify_ir.Ir
module Dom = Overify_ir.Dom

type key =
  | KBin of Ir.binop * Ir.ty * Ir.value * Ir.value
  | KCmp of Ir.cmp * Ir.ty * Ir.value * Ir.value
  | KSel of Ir.ty * Ir.value * Ir.value * Ir.value
  | KCast of Ir.castop * Ir.ty * Ir.value * Ir.ty
  | KGep of Ir.value * int * Ir.value
  | KLoad of Ir.ty * Ir.value * int  (* pointer, memory epoch *)

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

(* canonicalize operand order for commutative operations *)
let key_of_inst ~epoch (i : Ir.inst) : (key * int) option =
  match i with
  | Ir.Bin (d, op, ty, a, b) ->
      let (a, b) = if commutative op && compare b a < 0 then (b, a) else (a, b) in
      Some (KBin (op, ty, a, b), d)
  | Ir.Cmp (d, op, ty, a, b) -> Some (KCmp (op, ty, a, b), d)
  | Ir.Select (d, ty, c, a, b) -> Some (KSel (ty, c, a, b), d)
  | Ir.Cast (d, op, to_ty, v, from_ty) -> Some (KCast (op, to_ty, v, from_ty), d)
  | Ir.Gep (d, base, scale, idx) -> Some (KGep (base, scale, idx), d)
  | Ir.Load (d, ty, p) -> Some (KLoad (ty, p, epoch), d)
  | _ -> None

let writes_memory = function
  | Ir.Store _ -> true
  | Ir.Call _ -> true  (* conservative: any call may write *)
  | _ -> false

let function_is_memory_quiet (fn : Ir.func) =
  let quiet = ref true in
  Ir.iter_insts (fun _ i -> if writes_memory i then quiet := false) fn;
  !quiet

let run (fn : Ir.func) : Ir.func * bool =
  let quiet = function_is_memory_quiet fn in
  let dom = Dom.compute fn in
  let btbl = Ir.block_tbl fn in
  let changed = ref false in
  let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Ir.Reg r -> (
        match Hashtbl.find_opt subst r with
        | Some v' when v' <> v -> resolve v'
        | Some v' -> v'
        | None -> v)
    | _ -> v
  in
  (* scoped available-expression table: an association list stack *)
  let rec walk bid (avail : (key * int) list) =
    let b = Hashtbl.find btbl bid in
    let epoch = ref 0 in
    let avail = ref avail in
    let insts =
      List.filter
        (fun i ->
          let i' = Ir.map_inst_values (fun r -> resolve (Ir.Reg r)) i in
          if writes_memory i' then begin
            incr epoch;
            (* block-local load facts die; in a quiet function there are no
               writes so this never triggers *)
            avail :=
              List.filter (function (KLoad _, _) -> false | _ -> true) !avail
          end;
          match key_of_inst ~epoch:!epoch i' with
          | None -> true
          | Some (key, d) -> (
              (* loads in non-quiet functions are only reusable locally; tag
                 cross-block load keys with epoch -1 in quiet functions *)
              let key =
                match key with
                | KLoad (ty, p, e) -> KLoad (ty, p, if quiet then -1 else e)
                | k -> k
              in
              match List.assoc_opt key !avail with
              | Some prev ->
                  changed := true;
                  Hashtbl.replace subst d (Ir.Reg prev);
                  false
              | None ->
                  avail := (key, d) :: !avail;
                  true))
        b.insts
    in
    Hashtbl.replace btbl bid { b with Ir.insts = insts };
    (* local (epoch > 0 in non-quiet functions) load facts must not leak to
       dominated blocks: paths between them may contain stores *)
    let keep_for_children =
      List.filter
        (function
          | (KLoad (_, _, e), _) -> quiet && e = -1
          | _ -> true)
        !avail
    in
    List.iter (fun c -> walk c keep_for_children) (Dom.children dom bid)
  in
  walk (Ir.entry fn).bid [];
  if !changed then begin
    let f r = resolve (Ir.Reg r) in
    let blocks =
      List.map
        (fun (b : Ir.block) ->
          let nb = Hashtbl.find btbl b.Ir.bid in
          {
            nb with
            Ir.insts = List.map (Ir.map_inst_values f) nb.Ir.insts;
            term = Ir.map_term_values f nb.Ir.term;
          })
        fn.blocks
    in
    ({ fn with blocks }, true)
  end
  else (fn, false)
