(** Function inlining on memory-form IR, bottom-up over the call graph,
    bounded by the cost model's [inline_threshold] and [inline_growth]. *)

val run : Costmodel.t -> Stats.t -> Overify_ir.Ir.modul -> Overify_ir.Ir.modul
