(** Per-compilation transformation counters — the quantities reported in the
    paper's Table 3. *)

type t = {
  mutable functions_inlined : int;
  mutable loops_unswitched : int;
  mutable loops_unrolled : int;    (** fully peeled counted loops *)
  mutable loops_deleted : int;     (** residual loops proven never to run *)
  mutable branches_converted : int;(** removed by region if-conversion *)
  mutable jumps_threaded : int;
  mutable allocas_promoted : int;  (** mem2reg promotions *)
  mutable aggregates_split : int;  (** SROA victims *)
  mutable insts_folded : int;
  mutable insts_hoisted : int;     (** LICM *)
  mutable checks_inserted : int;   (** runtime checks *)
  mutable annotations_added : int;
}

val create : unit -> t
val add : t -> t -> t
val pp : Format.formatter -> t -> unit
