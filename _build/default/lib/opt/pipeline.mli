(** Pass pipelines implementing [-O0], [-O2], [-O3] and [-OVERIFY].

    Phase structure: structural transforms on memory form (inlining,
    unswitching, peeling) where block cloning is trivially sound, then
    [mem2reg], then the scalar fixpoint on SSA, then CPU-oriented or
    verification-oriented finishing passes. *)

type result = {
  modul : Overify_ir.Ir.modul;
  stats : Stats.t;         (** transformation counters (Table 3) *)
  level : Costmodel.t;
}

val paranoid : bool ref
(** When true (tests), every pass is followed by an IR verification. *)

val optimize : Costmodel.t -> Overify_ir.Ir.modul -> result
(** Compile a memory-form module at the given optimization level. *)
