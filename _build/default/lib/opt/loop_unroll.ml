(** Loop unrolling by peeling, on memory-form IR.

    A counted loop [for (i = C0; i `pred` C1; i += C2)] whose trip count [T]
    is a compile-time constant is peeled [T] times; the residual loop stays
    in place, so the transformation is semantics-preserving {e even if the
    trip-count analysis were wrong} — correctness never depends on the
    analysis, only effectiveness does.  Once mem2reg and folding run, the
    peeled headers' conditions fold to constants, the copies straighten into
    a branch-free line, and the residual loop becomes unreachable.

    [-OVERIFY] "removes loops from the program whenever possible, even if
    this increases the program size" (paper §4); the cost model's
    [unroll_trip_limit]/[unroll_size_limit] encode how far each level goes. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module Loop = Overify_ir.Loop
module IntSet = Cfg.IntSet

type counted = {
  islot : int;       (* the induction variable's alloca register *)
  trip : int;        (* exact number of iterations before first exit *)
}

(** Simulate the counted loop to get the exact trip count (handles any
    predicate/step combination, including wrap-around), bounded by [limit]. *)
let simulate ~ty ~init ~bound ~pred ~continue_on ~step ~stepop ~limit =
  let rec go i count =
    if count > limit then None
    else
      let cont = Ir.eval_cmp pred ty i bound = continue_on in
      if not cont then Some count
      else
        match Ir.eval_binop stepop ty i step with
        | Some i' -> go i' (count + 1)
        | None -> None
  in
  go (Ir.norm ty init) 0

(** Match the header pattern: [%a = load islot; %c = icmp pred %a, C1] with
    the terminator branching on [%c]. *)
let match_header (blk : Ir.block) safe_slots l =
  match blk.Ir.term with
  | Ir.Cbr (Ir.Reg c, t, e) -> (
      let deftbl = Hashtbl.create 8 in
      List.iter
        (fun i ->
          match Ir.def_of_inst i with
          | Some d -> Hashtbl.replace deftbl d i
          | None -> ())
        blk.Ir.insts;
      match Hashtbl.find_opt deftbl c with
      | Some (Ir.Cmp (_, pred, ty, Ir.Reg a, Ir.Imm (bound, _))) -> (
          match Hashtbl.find_opt deftbl a with
          | Some (Ir.Load (_, lty, Ir.Reg islot))
            when lty = ty && IntSet.mem islot safe_slots ->
              (* which direction continues the loop? *)
              let t_in = Loop.mem l t and e_in = Loop.mem l e in
              if t_in && not e_in then
                Some (islot, ty, pred, bound, true)
              else if e_in && not t_in then
                Some (islot, ty, pred, bound, false)
              else None
          | _ -> None)
      | _ -> None)
  | _ -> None

(** Find the unique in-loop increment [load; add/sub imm; store] of [islot]
    in the latch block, and check no other in-loop store touches it. *)
let match_step (fn : Ir.func) (l : Loop.t) islot ty =
  match l.Loop.latches with
  | [ latch ] -> (
      let stores_elsewhere = ref false in
      List.iter
        (fun (b : Ir.block) ->
          if Loop.mem l b.Ir.bid && b.Ir.bid <> latch then
            List.iter
              (fun i ->
                match i with
                | Ir.Store (_, _, Ir.Reg p) when p = islot ->
                    stores_elsewhere := true
                | _ -> ())
              b.Ir.insts)
        fn.Ir.blocks;
      if !stores_elsewhere then None
      else begin
        let lb = Ir.find_block fn latch in
        let deftbl = Hashtbl.create 8 in
        List.iter
          (fun i ->
            match Ir.def_of_inst i with
            | Some d -> Hashtbl.replace deftbl d i
            | None -> ())
          lb.Ir.insts;
        let found = ref None and count = ref 0 in
        List.iter
          (fun i ->
            match i with
            | Ir.Store (_, Ir.Reg v, Ir.Reg p) when p = islot -> (
                incr count;
                match Hashtbl.find_opt deftbl v with
                | Some (Ir.Bin (_, ((Ir.Add | Ir.Sub) as op), bty, Ir.Reg x, Ir.Imm (step, _)))
                  when bty = ty -> (
                    match Hashtbl.find_opt deftbl x with
                    | Some (Ir.Load (_, _, Ir.Reg p2)) when p2 = islot ->
                        found := Some (op, step)
                    | _ -> ())
                | _ -> ())
            | Ir.Store (_, _, Ir.Reg p) when p = islot -> incr count
            | _ -> ())
          lb.Ir.insts;
        if !count = 1 then !found else None
      end)
  | _ -> None

(** Find the constant initial value: the last store to [islot] in the loop's
    unique outside predecessor block. *)
let match_init (fn : Ir.func) (l : Loop.t) preds islot =
  let outside =
    List.filter (fun p -> not (Loop.mem l p)) (Cfg.preds_of preds l.Loop.header)
  in
  match outside with
  | [ p ] -> (
      let pb = Ir.find_block fn p in
      let last = ref None in
      List.iter
        (fun i ->
          match i with
          | Ir.Store (_, v, Ir.Reg q) when q = islot ->
              last := Some v
          | _ -> ())
        pb.Ir.insts;
      match !last with
      | Some (Ir.Imm (v, _)) -> Some (v, p)
      | _ -> None)
  | _ -> None

let analyze (cm : Costmodel.t) (fn : Ir.func) preds safe_slots (l : Loop.t) :
    (counted * int) option =
  let header_blk = Ir.find_block fn l.Loop.header in
  match match_header header_blk safe_slots l with
  | None -> None
  | Some (islot, ty, pred, bound, continue_on) -> (
      match match_step fn l islot ty with
      | None -> None
      | Some (stepop, step) -> (
          match match_init fn l preds islot with
          | None -> None
          | Some (init, entry_pred) -> (
              match
                simulate ~ty ~init ~bound ~pred ~continue_on ~step ~stepop
                  ~limit:cm.Costmodel.unroll_trip_limit
              with
              | Some trip when trip > 0 ->
                  let size =
                    List.fold_left
                      (fun acc (b : Ir.block) ->
                        if Loop.mem l b.Ir.bid then
                          acc + List.length b.Ir.insts + 1
                        else acc)
                      0 fn.Ir.blocks
                  in
                  if size * trip <= cm.Costmodel.unroll_size_limit then begin
                    ignore entry_pred;
                    Some ({ islot; trip }, trip)
                  end
                  else None
              | _ -> None)))

(** Peel [trip] copies of the loop in front of it. *)
let peel (fn : Ir.func) (l : Loop.t) ~trip : Ir.func =
  let fresh = Ir.Fresh.of_func fn in
  let preds = Cfg.preds fn in
  let loop_blocks =
    List.filter (fun (b : Ir.block) -> Loop.mem l b.Ir.bid) fn.Ir.blocks
  in
  let header = l.Loop.header in
  let copies =
    List.init trip (fun _ -> Clone.clone_blocks ~fresh loop_blocks)
  in
  (* wire copy k's back edges to copy k+1's header (or the residual loop) *)
  let headers =
    List.map (fun c -> Hashtbl.find c.Clone.label_map header) copies
  in
  let next_header = Array.of_list (List.tl headers @ [ header ]) in
  let wired =
    List.concat
      (List.mapi
         (fun k (c : Clone.result) ->
           let my_header = List.nth headers k in
           List.map
             (fun (b : Ir.block) ->
               { b with
                 Ir.term = Cfg.redirect_term my_header next_header.(k) b.Ir.term })
             c.Clone.blocks)
         copies)
  in
  (* entry edges now enter the first copy *)
  let first_header = List.nth headers 0 in
  let outside =
    List.filter (fun p -> not (Loop.mem l p)) (Cfg.preds_of preds header)
  in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        if List.mem b.Ir.bid outside then
          { b with Ir.term = Cfg.redirect_term header first_header b.Ir.term }
        else b)
      fn.Ir.blocks
  in
  let entry_bid = (Ir.entry fn).Ir.bid in
  let blocks =
    if header = entry_bid then
      (* keep the entry first: the first peeled header becomes the entry *)
      let first_copy_blocks, rest_copies =
        match copies with
        | c :: _ ->
            let ids = Hashtbl.fold (fun _ v acc -> IntSet.add v acc)
                        c.Clone.label_map IntSet.empty in
            List.partition (fun (b : Ir.block) -> IntSet.mem b.Ir.bid ids) wired
        | [] -> ([], wired)
      in
      (* order: entry copy's header first *)
      let entry_first =
        List.sort
          (fun (a : Ir.block) (b : Ir.block) ->
            if a.Ir.bid = first_header then -1
            else if b.Ir.bid = first_header then 1
            else 0)
          first_copy_blocks
      in
      entry_first @ rest_copies @ blocks
    else blocks @ wired
  in
  Ir.Fresh.commit fresh { fn with Ir.blocks }

let run (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  (* memory form only; see Loop_unswitch.run *)
  if cm.Costmodel.unroll_trip_limit <= 0 || Loop_unswitch.has_phis fn then
    (fn, false)
  else begin
    let changed = ref false in
    let rec go fn budget =
      if budget = 0 then fn
      else begin
        let preds = Cfg.preds fn in
        let safe = Loop_unswitch.non_escaping_slots fn in
        let loops = Loop.find fn in
        let candidate =
          List.find_map
            (fun l ->
              match analyze cm fn preds safe l with
              | Some (c, trip) -> Some (l, c, trip)
              | None -> None)
            loops
        in
        match candidate with
        | Some (l, _c, trip) ->
            changed := true;
            stats.Stats.loops_unrolled <- stats.Stats.loops_unrolled + 1;
            go (peel fn l ~trip) (budget - 1)
        | None -> fn
      end
    in
    let fn = go fn 16 in
    (fn, !changed)
  end
