(** Dead-code elimination: removes pure instructions whose results are never
    (transitively) needed by a side effect or terminator, and stack slots
    that are only ever stored to. *)

module Ir = Overify_ir.Ir
module IntSet = Overify_ir.Cfg.IntSet

(** Registers that feed side effects or control flow, transitively. *)
let live_regs (fn : Ir.func) : IntSet.t =
  let users : (int, Ir.value list) Hashtbl.t = Hashtbl.create 64 in
  Ir.iter_insts
    (fun _ i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace users d (Ir.uses_of_inst i)
      | None -> ())
    fn;
  let live = ref IntSet.empty in
  let rec mark v =
    match v with
    | Ir.Reg r when not (IntSet.mem r !live) ->
        live := IntSet.add r !live;
        (match Hashtbl.find_opt users r with
        | Some uses -> List.iter mark uses
        | None -> ())
    | _ -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          if not (Ir.is_pure i) then List.iter mark (Ir.uses_of_inst i))
        b.insts;
      List.iter mark (Ir.uses_of_term b.term))
    fn.blocks;
  !live

(** Allocas whose only uses are as the pointer operand of stores (never
    loaded, never escaping): the alloca and the stores are dead. *)
let write_only_allocas (fn : Ir.func) : IntSet.t =
  let allocas = ref IntSet.empty in
  let disqualified = ref IntSet.empty in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, _, _) -> allocas := IntSet.add d !allocas
      | _ -> ())
    fn;
  let dq v =
    match v with Ir.Reg r -> disqualified := IntSet.add r !disqualified | _ -> ()
  in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca _ -> ()
      | Ir.Store (_, v, _ptr) -> dq v  (* storing the address escapes it *)
      | _ -> List.iter dq (Ir.uses_of_inst i))
    fn;
  List.iter
    (fun (b : Ir.block) -> List.iter dq (Ir.uses_of_term b.term))
    fn.blocks;
  IntSet.diff !allocas !disqualified

let run (fn : Ir.func) : Ir.func * bool =
  let live = live_regs fn in
  let dead_slots = write_only_allocas fn in
  let changed = ref false in
  let keep (i : Ir.inst) =
    match i with
    | Ir.Store (_, _, Ir.Reg p) when IntSet.mem p dead_slots ->
        changed := true;
        false
    | Ir.Alloca (d, _, _) when IntSet.mem d dead_slots ->
        changed := true;
        false
    | _ -> (
        if not (Ir.is_pure i) then true
        else
          match Ir.def_of_inst i with
          | Some d when not (IntSet.mem d live) ->
              changed := true;
              false
          | _ -> true)
  in
  let blocks =
    List.map
      (fun (b : Ir.block) -> { b with Ir.insts = List.filter keep b.insts })
      fn.blocks
  in
  if !changed then ({ fn with blocks }, true) else (fn, false)
