(** Block-set cloning with register/label remapping — the shared mechanism
    behind inlining, loop unswitching and loop peeling.

    Every register {e defined} inside the cloned set gets a fresh id; uses of
    registers defined outside the set either stay unchanged (loop cloning:
    they are allocas, valid in both copies) or are resolved through [vmap]
    (inlining: parameter registers become argument values). *)

module Ir = Overify_ir.Ir

type result = {
  blocks : Ir.block list;
  label_map : (int, int) Hashtbl.t;  (** old bid -> new bid *)
  reg_map : (int, int) Hashtbl.t;    (** old def -> new def *)
}

(** Clone [blocks], drawing fresh ids from [fresh].
    [vmap]: substitution for uses of registers not defined in the set. *)
let clone_blocks ~(fresh : Ir.Fresh.t) ?(vmap = fun (_ : int) -> None)
    (blocks : Ir.block list) : result =
  let label_map = Hashtbl.create 16 in
  let reg_map = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace label_map b.bid (Ir.Fresh.take fresh);
      List.iter
        (fun i ->
          match Ir.def_of_inst i with
          | Some d -> Hashtbl.replace reg_map d (Ir.Fresh.take fresh)
          | None -> ())
        b.insts)
    blocks;
  let map_use r =
    match Hashtbl.find_opt reg_map r with
    | Some r' -> Ir.Reg r'
    | None -> (
        match vmap r with Some v -> v | None -> Ir.Reg r)
  in
  let map_def d =
    match Hashtbl.find_opt reg_map d with Some d' -> d' | None -> d
  in
  let map_label l =
    match Hashtbl.find_opt label_map l with Some l' -> l' | None -> l
  in
  let clone_inst i =
    let i = Ir.map_inst_values map_use i in
    match i with
    | Ir.Bin (d, op, ty, a, b) -> Ir.Bin (map_def d, op, ty, a, b)
    | Ir.Cmp (d, op, ty, a, b) -> Ir.Cmp (map_def d, op, ty, a, b)
    | Ir.Select (d, ty, c, a, b) -> Ir.Select (map_def d, ty, c, a, b)
    | Ir.Cast (d, op, to_ty, v, from_ty) ->
        Ir.Cast (map_def d, op, to_ty, v, from_ty)
    | Ir.Alloca (d, ty, n) -> Ir.Alloca (map_def d, ty, n)
    | Ir.Load (d, ty, p) -> Ir.Load (map_def d, ty, p)
    | Ir.Store (ty, v, p) -> Ir.Store (ty, v, p)
    | Ir.Gep (d, base, scale, idx) -> Ir.Gep (map_def d, base, scale, idx)
    | Ir.Call (d, ty, fn, args) -> Ir.Call (Option.map map_def d, ty, fn, args)
    | Ir.Phi (d, ty, incoming) ->
        Ir.Phi
          (map_def d, ty, List.map (fun (p, v) -> (map_label p, v)) incoming)
  in
  let clone_term t =
    let t = Ir.map_term_values map_use t in
    match t with
    | Ir.Br l -> Ir.Br (map_label l)
    | Ir.Cbr (c, a, b) -> Ir.Cbr (c, map_label a, map_label b)
    | (Ir.Ret _ | Ir.Unreachable) as t -> t
  in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        {
          Ir.bid = map_label b.bid;
          insts = List.map clone_inst b.insts;
          term = clone_term b.term;
        })
      blocks
  in
  { blocks; label_map; reg_map }
