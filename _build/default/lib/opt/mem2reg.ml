(** Promotion of scalar stack slots to SSA registers — the classic mem2reg
    construction with iterated dominance frontiers (Cytron et al.).

    This is the paper's "remove/split memory accesses" row in Table 2: every
    promoted slot removes loads and stores the verifier would otherwise have
    to reason about through its memory model, and exposes the value flow to
    the scalar simplifications. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module Dom = Overify_ir.Dom
module IntSet = Cfg.IntSet

(** A slot is promotable when it is a single scalar whose address never
    escapes: every use is a [Load] from it or a [Store] to it of its element
    type. *)
let promotable_slots (fn : Ir.func) : (int, Ir.ty) Hashtbl.t =
  let cands = Hashtbl.create 16 in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, ty, 1) when Ir.is_int_ty ty || ty = Ir.Ptr ->
          Hashtbl.replace cands d ty
      | _ -> ())
    fn;
  let disqualify r = Hashtbl.remove cands r in
  let check_use i =
    let scan v =
      match v with
      | Ir.Reg r when Hashtbl.mem cands r -> disqualify r
      | _ -> ()
    in
    match i with
    | Ir.Load (_, ty, Ir.Reg p) when Hashtbl.mem cands p ->
        if Hashtbl.find cands p <> ty then disqualify p
    | Ir.Store (ty, v, Ir.Reg p) ->
        (* the stored value must not be the slot's own address *)
        scan v;
        if Hashtbl.mem cands p && Hashtbl.find cands p <> ty then disqualify p
    | Ir.Alloca _ -> ()
    | i -> List.iter scan (Ir.uses_of_inst i)
  in
  Ir.iter_insts (fun _ i -> check_use i) fn;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun v ->
          match v with
          | Ir.Reg r when Hashtbl.mem cands r -> disqualify r
          | _ -> ())
        (Ir.uses_of_term b.term))
    fn.blocks;
  cands

let run (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  (* the renaming walk only visits reachable blocks; drop the rest first *)
  let (fn, _) = Cfg.remove_unreachable fn in
  let slots = promotable_slots fn in
  if Hashtbl.length slots = 0 then (fn, false)
  else begin
    let dom = Dom.compute fn in
    let df = Dom.frontiers fn dom in
    let reachable = Cfg.reachable fn in
    (* blocks containing a store to each slot *)
    let def_blocks : (int, IntSet.t) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter (fun s _ -> Hashtbl.replace def_blocks s IntSet.empty) slots;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun i ->
            match i with
            | Ir.Store (_, _, Ir.Reg p) when Hashtbl.mem slots p ->
                Hashtbl.replace def_blocks p
                  (IntSet.add b.bid (Hashtbl.find def_blocks p))
            | _ -> ())
          b.insts)
      fn.blocks;
    (* phi placement via iterated dominance frontier *)
    let fresh = Ir.Fresh.of_func fn in
    (* (block, slot) -> phi reg *)
    let phi_at : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun slot defs ->
        let work = ref (IntSet.elements defs) in
        let placed = ref IntSet.empty in
        while !work <> [] do
          match !work with
          | [] -> ()
          | b :: rest ->
              work := rest;
              IntSet.iter
                (fun f ->
                  if IntSet.mem f reachable && not (IntSet.mem f !placed) then begin
                    placed := IntSet.add f !placed;
                    Hashtbl.replace phi_at (f, slot) (Ir.Fresh.take fresh);
                    work := f :: !work
                  end)
                (Dom.frontier_of df b)
        done)
      def_blocks;
    (* renaming walk over the dominator tree *)
    let preds = Cfg.preds fn in
    let btbl = Hashtbl.create 16 in
    List.iter (fun (b : Ir.block) -> Hashtbl.replace btbl b.bid b) fn.blocks;
    let new_insts : (int, Ir.inst list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Ir.block) -> Hashtbl.replace new_insts b.bid (ref []))
      fn.blocks;
    (* phi incoming accumulators: (block, slot) -> (pred, value) list *)
    let phi_incoming : (int * int, (int * Ir.value) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    Hashtbl.iter
      (fun key _ -> Hashtbl.replace phi_incoming key (ref []))
      phi_at;
    let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 32 in
    let rec resolve v =
      match v with
      | Ir.Reg r -> (
          match Hashtbl.find_opt subst r with
          | Some v' when v' <> v -> resolve v'
          | Some v' -> v'
          | None -> v)
      | _ -> v
    in
    let rec walk bid (cur : (int, Ir.value) Hashtbl.t) =
      let b = Hashtbl.find btbl bid in
      let cur = Hashtbl.copy cur in
      (* phis for slots at this block define new current values *)
      Hashtbl.iter
        (fun slot _ ->
          match Hashtbl.find_opt phi_at (bid, slot) with
          | Some phi_reg -> Hashtbl.replace cur slot (Ir.Reg phi_reg)
          | None -> ())
        slots;
      let out = Hashtbl.find new_insts bid in
      List.iter
        (fun i ->
          match i with
          | Ir.Alloca (d, _, _) when Hashtbl.mem slots d -> ()
          | Ir.Load (d, ty, Ir.Reg p) when Hashtbl.mem slots p ->
              let v =
                match Hashtbl.find_opt cur p with
                | Some v -> v
                | None -> Ir.zero ty  (* slots start zero-initialized *)
              in
              Hashtbl.replace subst d v
          | Ir.Store (_, v, Ir.Reg p) when Hashtbl.mem slots p ->
              Hashtbl.replace cur p v
          | i -> out := i :: !out)
        b.insts;
      (* feed successors' phis *)
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun slot ty ->
              match Hashtbl.find_opt phi_at (s, slot) with
              | Some _ ->
                  let v =
                    match Hashtbl.find_opt cur slot with
                    | Some v -> v
                    | None -> Ir.zero ty
                  in
                  let acc = Hashtbl.find phi_incoming (s, slot) in
                  acc := (bid, v) :: !acc
              | None -> ())
            slots)
        (Cfg.succs b);
      List.iter (fun child -> walk child cur) (Dom.children dom bid)
    in
    walk (Ir.entry fn).bid (Hashtbl.create 8);
    (* assemble blocks: phis first, then surviving instructions, with the
       load substitution applied *)
    let f r = resolve (Ir.Reg r) in
    let blocks =
      List.map
        (fun (b : Ir.block) ->
          let phis =
            Hashtbl.fold
              (fun slot ty acc ->
                match Hashtbl.find_opt phi_at (b.Ir.bid, slot) with
                | Some phi_reg ->
                    let incoming =
                      match Hashtbl.find_opt phi_incoming (b.Ir.bid, slot) with
                      | Some l -> !l
                      | None -> []
                    in
                    (* every CFG predecessor must appear; blocks only visited
                       via the dominator tree of reachable code, so fill any
                       missing pred (unreachable edge) with zero *)
                    let incoming =
                      List.map
                        (fun p ->
                          match List.assoc_opt p incoming with
                          | Some v -> (p, resolve v)
                          | None -> (p, Ir.zero ty))
                        (Cfg.preds_of preds b.Ir.bid)
                    in
                    Ir.Phi (phi_reg, ty, incoming) :: acc
                | None -> acc)
              slots []
          in
          let rest =
            List.rev_map (Ir.map_inst_values f) !(Hashtbl.find new_insts b.Ir.bid)
          in
          {
            b with
            Ir.insts = phis @ rest;
            term = Ir.map_term_values f b.Ir.term;
          })
        fn.blocks
    in
    stats.Stats.allocas_promoted <-
      stats.Stats.allocas_promoted + Hashtbl.length slots;
    (Ir.Fresh.commit fresh { fn with blocks }, true)
  end
