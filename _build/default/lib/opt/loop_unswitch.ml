(** Loop unswitching on memory-form IR.

    A conditional branch inside a loop whose condition is loop-invariant is
    hoisted: the loop is duplicated, one copy assumes the condition true, the
    other false, and a dispatch block evaluates the condition once.  This is
    the transformation behind the paper's motivating example: unswitching
    [wc]'s [any != 0] turns O(3^n) paths into O(2^n).

    Invariance is established syntactically: the condition is computed inside
    the branch block from loads of non-escaping scalar slots (or globals)
    that nothing in the loop writes. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module Loop = Overify_ir.Loop
module IntSet = Cfg.IntSet

(** Slots (alloca registers) whose address never escapes: used only as the
    direct pointer operand of loads and stores. *)
let non_escaping_slots (fn : Ir.func) : IntSet.t =
  let allocas = ref IntSet.empty in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, _, _) -> allocas := IntSet.add d !allocas
      | _ -> ())
    fn;
  let escaped = ref IntSet.empty in
  let esc v =
    match v with
    | Ir.Reg r -> escaped := IntSet.add r !escaped
    | _ -> ()
  in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Load (_, _, _) -> ()  (* pointer operand use is fine *)
      | Ir.Store (_, v, _) -> esc v
      | Ir.Alloca _ -> ()
      | i -> List.iter esc (Ir.uses_of_inst i))
    fn;
  List.iter
    (fun (b : Ir.block) -> List.iter esc (Ir.uses_of_term b.Ir.term))
    fn.blocks;
  IntSet.diff !allocas !escaped

(** Instructions allowed in a hoistable condition chain: pure, non-trapping,
    and any loads read whole non-escaping slots or globals. *)
let chain_inst_ok safe_slots loop_writes_globals has_calls = function
  | Ir.Bin (_, (Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem), _, _, _) -> false
  | Ir.Bin _ | Ir.Cmp _ | Ir.Select _ | Ir.Cast _ -> true
  | Ir.Load (_, _, Ir.Reg p) -> IntSet.mem p safe_slots
  | Ir.Load (_, _, Ir.Glob g) ->
      (not has_calls) && not (List.mem g loop_writes_globals)
  | _ -> false

(** The sub-sequence of [blk]'s instructions needed to compute [cond],
    in original order, or [None] if the chain leaves the block or uses a
    disallowed instruction. *)
let condition_chain (blk : Ir.block) (cond : int) safe_slots writes has_calls :
    Ir.inst list option =
  let deftbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace deftbl d i
      | None -> ())
    blk.Ir.insts;
  let needed = Hashtbl.create 16 in
  let ok = ref true in
  let rec visit r =
    if !ok && not (Hashtbl.mem needed r) then
      match Hashtbl.find_opt deftbl r with
      | None ->
          (* defined outside the block: only allocas (slot addresses) are
             valid cross-block registers in memory form; a raw slot address
             as a leaf is fine *)
          if not (IntSet.mem r safe_slots) then ok := false
      | Some i ->
          if chain_inst_ok safe_slots writes has_calls i then begin
            Hashtbl.replace needed r ();
            List.iter
              (fun v -> match v with Ir.Reg r' -> visit r' | _ -> ())
              (Ir.uses_of_inst i)
          end
          else ok := false
  in
  visit cond;
  if not !ok then None
  else
    Some
      (List.filter
         (fun i ->
           match Ir.def_of_inst i with
           | Some d -> Hashtbl.mem needed d
           | None -> false)
         blk.Ir.insts)

(** Loads in the chain must be invariant: collect the slots/globals the loop
    writes. *)
let loop_stores (fn : Ir.func) (l : Loop.t) =
  let slots = ref IntSet.empty and globals = ref [] and calls = ref false in
  List.iter
    (fun (b : Ir.block) ->
      if Loop.mem l b.Ir.bid then
        List.iter
          (fun i ->
            match i with
            | Ir.Store (_, _, Ir.Reg p) -> slots := IntSet.add p !slots
            | Ir.Store (_, _, Ir.Glob g) -> globals := g :: !globals
            | Ir.Store (_, _, _) -> calls := true  (* unknown target *)
            | Ir.Call _ -> calls := true
            | _ -> ())
          b.Ir.insts)
    fn.blocks;
  (!slots, !globals, !calls)

(** Attempt one unswitch anywhere in [fn]; returns the transformed function
    on success. *)
let unswitch_one (cm : Costmodel.t) (fn : Ir.func) : Ir.func option =
  let loops = Loop.find fn in
  let safe = non_escaping_slots fn in
  let entry_bid = (Ir.entry fn).bid in
  let preds = Cfg.preds fn in
  let try_loop (l : Loop.t) : Ir.func option =
    let size =
      List.fold_left
        (fun acc (b : Ir.block) ->
          if Loop.mem l b.Ir.bid then acc + List.length b.Ir.insts + 1 else acc)
        0 fn.Ir.blocks
    in
    if size > cm.Costmodel.unswitch_size_limit then None
    else begin
      let (wslots, wglobals, has_calls) = loop_stores fn l in
      let safe_invariant = IntSet.diff safe wslots in
      (* a candidate branch: Cbr inside the loop, both targets inside the
         loop (so the unswitch actually changes intra-loop structure), with a
         hoistable chain.  The header's own exit branch is excluded; the
         chain loads would not be invariant for it anyway in typical code. *)
      let candidate =
        List.find_opt
          (fun (b : Ir.block) ->
            Loop.mem l b.Ir.bid
            &&
            match b.Ir.term with
            | Ir.Cbr (Ir.Reg c, t, e) ->
                t <> e && Loop.mem l t && Loop.mem l e
                && condition_chain b c safe_invariant wglobals has_calls <> None
            | _ -> false)
          fn.Ir.blocks
      in
      match candidate with
      | None -> None
      | Some bblk ->
          let (cond, _t_target, e_target) =
            match bblk.Ir.term with
            | Ir.Cbr (Ir.Reg c, t, e) -> (c, t, e)
            | _ -> assert false
          in
          let chain =
            match
              condition_chain bblk cond safe_invariant wglobals has_calls
            with
            | Some c -> c
            | None -> assert false
          in
          let fresh = Ir.Fresh.of_func fn in
          let loop_blocks =
            List.filter (fun (b : Ir.block) -> Loop.mem l b.Ir.bid) fn.Ir.blocks
          in
          let cloned = Clone.clone_blocks ~fresh loop_blocks in
          (* original copy assumes the condition true *)
          let fix_orig (b : Ir.block) =
            if b.Ir.bid = bblk.Ir.bid then
              { b with Ir.term = (match b.Ir.term with
                                  | Ir.Cbr (_, t, _) -> Ir.Br t
                                  | t -> t) }
            else b
          in
          (* cloned copy assumes it false *)
          let cloned_b_bid = Hashtbl.find cloned.Clone.label_map bblk.Ir.bid in
          let fix_clone (b : Ir.block) =
            if b.Ir.bid = cloned_b_bid then
              { b with
                Ir.term =
                  (match b.Ir.term with
                  | Ir.Cbr (_, _, e) -> Ir.Br e
                  | t -> t);
              }
            else b
          in
          ignore e_target;
          let cloned_blocks = List.map fix_clone cloned.Clone.blocks in
          (* dispatch block: re-evaluate the chain, branch to a copy *)
          let chain' =
            let rmap = Hashtbl.create 8 in
            List.map
              (fun i ->
                let i =
                  Ir.map_inst_values
                    (fun r ->
                      match Hashtbl.find_opt rmap r with
                      | Some r' -> Ir.Reg r'
                      | None -> Ir.Reg r)
                    i
                in
                match Ir.def_of_inst i with
                | Some d ->
                    let d' = Ir.Fresh.take fresh in
                    Hashtbl.replace rmap d d';
                    (match i with
                    | Ir.Bin (_, op, ty, a, b) -> Ir.Bin (d', op, ty, a, b)
                    | Ir.Cmp (_, op, ty, a, b) -> Ir.Cmp (d', op, ty, a, b)
                    | Ir.Select (_, ty, c, a, b) -> Ir.Select (d', ty, c, a, b)
                    | Ir.Cast (_, op, t2, v, t1) -> Ir.Cast (d', op, t2, v, t1)
                    | Ir.Load (_, ty, p) -> Ir.Load (d', ty, p)
                    | _ -> assert false)
                | None -> assert false)
              chain
          in
          let cond' =
            match List.rev chain' with
            | last :: _ -> (
                match Ir.def_of_inst last with
                | Some d -> Ir.Reg d
                | None -> assert false)
            | [] -> assert false
          in
          let cloned_header = Hashtbl.find cloned.Clone.label_map l.Loop.header in
          let dispatch_bid = Ir.Fresh.take fresh in
          let dispatch =
            {
              Ir.bid = dispatch_bid;
              insts = chain';
              term = Ir.Cbr (cond', l.Loop.header, cloned_header);
            }
          in
          (* entry edges into the loop now go through the dispatch *)
          let outside_preds =
            List.filter
              (fun p -> not (Loop.mem l p))
              (Cfg.preds_of preds l.Loop.header)
          in
          let blocks =
            List.map
              (fun (b : Ir.block) ->
                let b = fix_orig b in
                if List.mem b.Ir.bid outside_preds then
                  { b with
                    Ir.term =
                      Cfg.redirect_term l.Loop.header dispatch_bid b.Ir.term }
                else b)
              fn.Ir.blocks
          in
          let blocks =
            if l.Loop.header = entry_bid then (dispatch :: blocks) @ cloned_blocks
            else blocks @ (dispatch :: cloned_blocks)
          in
          Some (Ir.Fresh.commit fresh { fn with Ir.blocks })
    end
  in
  List.fold_left
    (fun acc l -> match acc with Some _ -> acc | None -> try_loop l)
    None loops

let has_phis (fn : Ir.func) =
  let p = ref false in
  Ir.iter_insts (fun _ i -> if Ir.is_phi i then p := true) fn;
  !p

let run (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  (* memory form only: cloning loop bodies is sound because no registers are
     live across block boundaries except allocas; with phis, exit blocks
     would need new incoming entries *)
  if (not cm.Costmodel.unswitch) || has_phis fn then (fn, false)
  else begin
    let rec go fn n any =
      if n = 0 then (fn, any)
      else
        match unswitch_one cm fn with
        | Some fn' ->
            stats.Stats.loops_unswitched <- stats.Stats.loops_unswitched + 1;
            go fn' (n - 1) true
        | None -> (fn, any)
    in
    go fn cm.Costmodel.unswitch_rounds false
  end
