(** Loop-invariant code motion (SSA form): speculatable instructions whose
    operands dominate the loop preheader are hoisted into it.

    For compile-time sanity on heavily peeled functions, each round ensures
    all preheaders first (the only CFG changes), then shares a single
    dominator tree and definition map across every loop's hoisting. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module Dom = Overify_ir.Dom
module Loop = Overify_ir.Loop

(** Create (or find) a preheader for [l]: a block that is the unique
    out-of-loop predecessor of the header and branches only to it.
    Returns [None] when the header is the function entry. *)
let ensure_preheader (fn : Ir.func) (l : Loop.t) : (Ir.func * int) option =
  match l.Loop.preheader with
  | Some p -> Some (fn, p)
  | None ->
      let entry_bid = (Ir.entry fn).Ir.bid in
      if l.Loop.header = entry_bid then None
      else begin
        let preds = Cfg.preds fn in
        let outside =
          List.filter (fun p -> not (Loop.mem l p))
            (Cfg.preds_of preds l.Loop.header)
        in
        if outside = [] then None
        else begin
          let fresh = Ir.Fresh.of_func fn in
          let pre_bid = Ir.Fresh.take fresh in
          (* split header phis: out-of-loop entries move into the preheader *)
          let header_blk = Ir.find_block fn l.Loop.header in
          let pre_phis = ref [] in
          let new_header_insts =
            List.map
              (fun i ->
                match i with
                | Ir.Phi (d, ty, incoming) ->
                    let outs, ins =
                      List.partition (fun (p, _) -> List.mem p outside) incoming
                    in
                    let pre_val =
                      match outs with
                      | [ (_, v) ] -> v
                      | _ ->
                          let pd = Ir.Fresh.take fresh in
                          pre_phis := Ir.Phi (pd, ty, outs) :: !pre_phis;
                          Ir.Reg pd
                    in
                    Ir.Phi (d, ty, (pre_bid, pre_val) :: ins)
                | i -> i)
              header_blk.Ir.insts
          in
          let pre_blk =
            {
              Ir.bid = pre_bid;
              insts = List.rev !pre_phis;
              term = Ir.Br l.Loop.header;
            }
          in
          let blocks =
            List.concat_map
              (fun (b : Ir.block) ->
                if b.Ir.bid = l.Loop.header then
                  [ pre_blk; { b with Ir.insts = new_header_insts } ]
                else if List.mem b.Ir.bid outside then
                  [ { b with
                      Ir.term =
                        Cfg.redirect_term l.Loop.header pre_bid b.Ir.term } ]
                else [ b ])
              fn.Ir.blocks
          in
          Some (Ir.Fresh.commit fresh { fn with Ir.blocks }, pre_bid)
        end
      end

(** One hoisting round over all loops, sharing [dom]/[def_block]/[btbl];
    instruction motion does not change the CFG, so they stay valid. *)
let hoist_round (stats : Stats.t) (fn : Ir.func)
    (loops_with_pre : (Loop.t * int) list) : Ir.func * bool =
  let dom = Dom.compute fn in
  let def_block = Hashtbl.create 256 in
  List.iter
    (fun (r, _) -> Hashtbl.replace def_block r (Ir.entry fn).Ir.bid)
    fn.Ir.params;
  Ir.iter_insts
    (fun b i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace def_block d b.Ir.bid
      | None -> ())
    fn;
  let btbl = Ir.block_tbl fn in
  let any = ref false in
  List.iter
    (fun (l, pre) ->
      let available_at_pre v =
        match v with
        | Ir.Imm _ | Ir.Glob _ -> true
        | Ir.Reg r -> (
            match Hashtbl.find_opt def_block r with
            | Some db -> Dom.dominates dom db pre
            | None -> false)
      in
      let hoisted = ref [] in
      let changed = ref true in
      while !changed do
        changed := false;
        Cfg.IntSet.iter
          (fun bid ->
            match Hashtbl.find_opt btbl bid with
            | None -> ()
            | Some b ->
                let keep, moved =
                  List.partition
                    (fun i ->
                      not
                        (Ir.is_speculatable i
                        && List.for_all available_at_pre (Ir.uses_of_inst i)))
                    b.Ir.insts
                in
                if moved <> [] then begin
                  changed := true;
                  any := true;
                  List.iter
                    (fun i ->
                      (match Ir.def_of_inst i with
                      | Some d -> Hashtbl.replace def_block d pre
                      | None -> ());
                      hoisted := i :: !hoisted;
                      stats.Stats.insts_hoisted <- stats.Stats.insts_hoisted + 1)
                    moved;
                  Hashtbl.replace btbl bid { b with Ir.insts = keep }
                end)
          l.Loop.blocks
      done;
      if !hoisted <> [] then begin
        let pre_blk = Hashtbl.find btbl pre in
        Hashtbl.replace btbl pre
          { pre_blk with Ir.insts = pre_blk.Ir.insts @ List.rev !hoisted }
      end)
    loops_with_pre;
  if not !any then (fn, false)
  else
    ( { fn with
        Ir.blocks =
          List.map (fun (b : Ir.block) -> Hashtbl.find btbl b.Ir.bid) fn.Ir.blocks
      },
      true )

let run (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let rec go fn budget any =
    if budget = 0 then (fn, any)
    else begin
      (* phase 1: make sure every loop has a preheader (CFG changes) *)
      let fn = ref fn in
      List.iter
        (fun (l0 : Loop.t) ->
          if l0.Loop.preheader = None then
            (* re-find by header: earlier insertions may have shifted ids *)
            match
              List.find_opt
                (fun l -> l.Loop.header = l0.Loop.header)
                (Loop.find !fn)
            with
            | Some l -> (
                match ensure_preheader !fn l with
                | Some (fn', _) -> fn := fn'
                | None -> ())
            | None -> ())
        (Loop.find !fn);
      let fn = !fn in
      (* phase 2: hoist across all loops with one dominator tree *)
      let loops_with_pre =
        List.filter_map
          (fun (l : Loop.t) ->
            match l.Loop.preheader with
            | Some p -> Some (l, p)
            | None -> None)
          (Loop.find fn)
      in
      let (fn, changed) = hoist_round stats fn loops_with_pre in
      if changed then go fn (budget - 1) true else (fn, any)
    end
  in
  go fn 4 false
