(** Scalar replacement of aggregates: an array alloca whose every use is a
    load or store through a [Gep] with a constant in-bounds index is split
    into independent scalar allocas, which mem2reg can then promote.

    Table 2's "remove/split memory accesses" row: fewer aliasing
    opportunities means the verifier's memory reasoning gets cheaper. *)

module Ir = Overify_ir.Ir

type agg = {
  elem_ty : Ir.ty;
  count : int;
  mutable geps : (int * int) list;  (* gep reg -> element index *)
  mutable ok : bool;
}

let run (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let aggs : (int, agg) Hashtbl.t = Hashtbl.create 8 in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, ty, n)
        when n > 1 && n <= 256 && (Ir.is_int_ty ty || ty = Ir.Ptr) ->
          Hashtbl.replace aggs d { elem_ty = ty; count = n; geps = []; ok = true }
      | _ -> ())
    fn;
  if Hashtbl.length aggs = 0 then (fn, false)
  else begin
    (* classify uses *)
    let gep_owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
    Ir.iter_insts
      (fun _ i ->
        let disqualify v =
          match v with
          | Ir.Reg r -> (
              (match Hashtbl.find_opt aggs r with
              | Some a -> a.ok <- false
              | None -> ());
              match Hashtbl.find_opt gep_owner r with
              | Some owner -> (Hashtbl.find aggs owner).ok <- false
              | None -> ())
          | _ -> ()
        in
        match i with
        | Ir.Gep (d, Ir.Reg base, scale, idx) when Hashtbl.mem aggs base -> (
            let a = Hashtbl.find aggs base in
            match idx with
            | Ir.Imm (iv, _)
              when scale = Ir.size_of_ty a.elem_ty
                   && Ir.signed_of Ir.I64 iv >= 0L
                   && Ir.signed_of Ir.I64 iv < Int64.of_int a.count ->
                let e = Int64.to_int (Ir.signed_of Ir.I64 iv) in
                a.geps <- (d, e) :: a.geps;
                Hashtbl.replace gep_owner d base
            | _ -> a.ok <- false)
        | Ir.Load (_, ty, Ir.Reg p) -> (
            (* loading directly from the aggregate base = element 0 only if
               types match; treat as a zero-index gep would — keep simple and
               require geps *)
            match Hashtbl.find_opt aggs p with
            | Some a -> a.ok <- false
            | None -> (
                match Hashtbl.find_opt gep_owner p with
                | Some owner ->
                    let a = Hashtbl.find aggs owner in
                    if ty <> a.elem_ty then a.ok <- false
                | None -> ()))
        | Ir.Store (ty, v, Ir.Reg p) -> (
            disqualify v;
            match Hashtbl.find_opt aggs p with
            | Some a -> a.ok <- false
            | None -> (
                match Hashtbl.find_opt gep_owner p with
                | Some owner ->
                    let a = Hashtbl.find aggs owner in
                    if ty <> a.elem_ty then a.ok <- false
                | None -> ()))
        | Ir.Store (_, v, p) ->
            disqualify v;
            disqualify p
        | i -> List.iter disqualify (Ir.uses_of_inst i))
      fn;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun v ->
            match v with
            | Ir.Reg r -> (
                (match Hashtbl.find_opt aggs r with
                | Some a -> a.ok <- false
                | None -> ());
                match Hashtbl.find_opt gep_owner r with
                | Some owner -> (Hashtbl.find aggs owner).ok <- false
                | None -> ())
            | _ -> ())
          (Ir.uses_of_term b.Ir.term))
      fn.blocks;
    let victims =
      Hashtbl.fold (fun d a acc -> if a.ok then (d, a) :: acc else acc) aggs []
    in
    if victims = [] then (fn, false)
    else begin
      let fresh = Ir.Fresh.of_func fn in
      (* element slot registers *)
      let slot_of : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (d, a) ->
          for e = 0 to a.count - 1 do
            Hashtbl.replace slot_of (d, e) (Ir.Fresh.take fresh)
          done)
        victims;
      let gep_slot : (int, int) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (d, a) ->
          List.iter
            (fun (g, e) -> Hashtbl.replace gep_slot g (Hashtbl.find slot_of (d, e)))
            a.geps)
        victims;
      let blocks =
        List.map
          (fun (b : Ir.block) ->
            let insts =
              List.concat_map
                (fun i ->
                  match i with
                  | Ir.Alloca (d, _, _) when List.mem_assoc d victims ->
                      let a = List.assoc d victims in
                      List.init a.count (fun e ->
                          Ir.Alloca (Hashtbl.find slot_of (d, e), a.elem_ty, 1))
                  | Ir.Gep (d, _, _, _) when Hashtbl.mem gep_slot d -> []
                  | Ir.Load (d, ty, Ir.Reg p) when Hashtbl.mem gep_slot p ->
                      [ Ir.Load (d, ty, Ir.Reg (Hashtbl.find gep_slot p)) ]
                  | Ir.Store (ty, v, Ir.Reg p) when Hashtbl.mem gep_slot p ->
                      [ Ir.Store (ty, v, Ir.Reg (Hashtbl.find gep_slot p)) ]
                  | i -> [ i ])
                b.Ir.insts
            in
            { b with Ir.insts = insts })
          fn.blocks
      in
      stats.Stats.aggregates_split <-
        stats.Stats.aggregates_split + List.length victims;
      (Ir.Fresh.commit fresh { fn with blocks }, true)
    end
  end
