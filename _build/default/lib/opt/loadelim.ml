(** Redundant-load elimination with store-to-load forwarding, as a forward
    {e must}-dataflow over available memory facts (SSA form).

    A fact [(ty, ptr) -> value] means: on every path reaching this point, the
    last access to [ptr] (a load or a store) produced/stored [value].  Facts
    meet by intersection; stores kill may-aliasing facts, where aliasing is
    judged by provenance (pointers based on distinct allocas/globals cannot
    alias).  Intrinsic calls ([__output] etc.) do not write program-visible
    memory and kill nothing; unknown calls kill everything.

    This pass is what lets if-conversion see the branch arms of the paper's
    motivating example as pure: the repeated loads of the scanned character
    collapse to the one dominating load. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg

module Key = struct
  type t = Ir.ty * Ir.value
  let compare = compare
end

module KMap = Map.Make (Key)

type state = Top | Facts of Ir.value KMap.t

type base = Balloca of int | Bglobal of string | Bunknown

let base_of deftbl (v : Ir.value) : base =
  let rec go v fuel =
    if fuel = 0 then Bunknown
    else
      match v with
      | Ir.Glob g -> Bglobal g
      | Ir.Imm _ -> Bunknown
      | Ir.Reg r -> (
          match Hashtbl.find_opt deftbl r with
          | Some (Ir.Alloca _) -> Balloca r
          | Some (Ir.Gep (_, b, _, _)) -> go b (fuel - 1)
          | _ -> Bunknown)
  in
  go v 32

let may_alias b1 b2 =
  match (b1, b2) with
  | (Bunknown, _) | (_, Bunknown) -> true
  | (Balloca a, Balloca b) -> a = b
  | (Bglobal a, Bglobal b) -> a = b
  | (Balloca _, Bglobal _) | (Bglobal _, Balloca _) -> false

(** Transfer function; when [rewrite] is given, redundant loads are recorded
    as substitutions. *)
let transfer deftbl ?rewrite (facts : Ir.value KMap.t) (insts : Ir.inst list) :
    Ir.value KMap.t =
  List.fold_left
    (fun facts i ->
      match i with
      | Ir.Load (d, ty, p) -> (
          match KMap.find_opt (ty, p) facts with
          | Some v when v <> Ir.Reg d ->
              (match rewrite with
              | Some tbl -> Hashtbl.replace tbl d v
              | None -> ());
              facts
          | Some _ -> facts
          | None -> KMap.add (ty, p) (Ir.Reg d) facts)
      | Ir.Store (ty, v, p) ->
          let pb = base_of deftbl p in
          let facts =
            KMap.filter
              (fun (_, q) _ -> not (may_alias pb (base_of deftbl q)))
              facts
          in
          KMap.add (ty, p) v facts
      | Ir.Call (_, _, name, _) when Ir.is_intrinsic name -> facts
      | Ir.Call _ -> KMap.empty
      | _ -> facts)
    facts insts

let meet a b =
  match (a, b) with
  | (Top, x) | (x, Top) -> x
  | (Facts fa, Facts fb) ->
      Facts
        (KMap.merge
           (fun _ va vb ->
             match (va, vb) with
             | (Some x, Some y) when x = y -> Some x
             | _ -> None)
           fa fb)

let state_equal a b =
  match (a, b) with
  | (Top, Top) -> true
  | (Facts x, Facts y) -> KMap.equal ( = ) x y
  | _ -> false

let run (fn : Ir.func) : Ir.func * bool =
  (* unreachable predecessors would stay Top and corrupt the meet *)
  let (fn, _) = Cfg.remove_unreachable fn in
  let deftbl = Hashtbl.create 64 in
  Ir.iter_insts
    (fun _ i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace deftbl d i
      | None -> ())
    fn;
  let preds = Cfg.preds fn in
  let order = Cfg.rpo fn in
  let btbl = Ir.block_tbl fn in
  let out : (int, state) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace out bid Top) order;
  let entry_bid = (Ir.entry fn).Ir.bid in
  let in_of bid =
    if bid = entry_bid then Facts KMap.empty
    else
      match Cfg.preds_of preds bid with
      | [] -> Facts KMap.empty
      | ps ->
          List.fold_left
            (fun acc p ->
              meet acc
                (match Hashtbl.find_opt out p with Some s -> s | None -> Top))
            Top ps
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun bid ->
        let b = Hashtbl.find btbl bid in
        let s =
          match in_of bid with
          | Top -> Top
          | Facts f -> Facts (transfer deftbl f b.Ir.insts)
        in
        if not (state_equal s (Hashtbl.find out bid)) then begin
          Hashtbl.replace out bid s;
          changed := true
        end)
      order
  done;
  (* rewrite pass *)
  let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Hashtbl.find btbl bid in
      match in_of bid with
      | Top -> ()
      | Facts f -> ignore (transfer deftbl ~rewrite:subst f b.Ir.insts))
    order;
  if Hashtbl.length subst = 0 then (fn, false)
  else begin
    let rec resolve v =
      match v with
      | Ir.Reg r -> (
          match Hashtbl.find_opt subst r with
          | Some v' when v' <> v -> resolve v'
          | Some v' -> v'
          | None -> v)
      | _ -> v
    in
    let f r = resolve (Ir.Reg r) in
    let blocks =
      List.map
        (fun (b : Ir.block) ->
          let insts =
            List.filter
              (fun i ->
                match Ir.def_of_inst i with
                | Some d -> not (Hashtbl.mem subst d)
                | None -> true)
              b.Ir.insts
          in
          {
            b with
            Ir.insts = List.map (Ir.map_inst_values f) insts;
            term = Ir.map_term_values f b.Ir.term;
          })
        fn.Ir.blocks
    in
    ({ fn with Ir.blocks }, true)
  end
