(** Program-annotation pass (paper §3, "program annotations" row of
    Table 2): information the compiler computed anyway is preserved as
    function metadata for downstream verification tools instead of being
    thrown away.

    Facts recorded in [fmeta]:
    - ["pure"]: the function writes no memory and makes no calls
    - ["loops"]: number of natural loops remaining
    - ["max_trip:<header>"]: constant trip counts for counted loops
    - ["range:<reg>"]: value ranges implied by zero-extensions
    - ["noalias"]: number of distinct non-escaping stack slots *)

module Ir = Overify_ir.Ir
module Loop = Overify_ir.Loop

let run (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let meta = ref [] in
  let add k v =
    meta := (k, v) :: !meta;
    stats.Stats.annotations_added <- stats.Stats.annotations_added + 1
  in
  if Gvn.function_is_memory_quiet fn then add "pure" "true";
  let loops = Loop.find fn in
  add "loops" (string_of_int (List.length loops));
  (* ranges from zero-extensions: zext iK -> iN implies [0, 2^K-1] *)
  let ranges = ref 0 in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Cast (d, Ir.Zext, _, _, from_ty) when Ir.bits_of_ty from_ty < 64 ->
          incr ranges;
          if !ranges <= 32 then
            add
              (Printf.sprintf "range:%%%d" d)
              (Printf.sprintf "[0,%Ld]"
                 (Int64.sub (Int64.shift_left 1L (Ir.bits_of_ty from_ty)) 1L))
      | _ -> ())
    fn;
  let safe = Loop_unswitch.non_escaping_slots fn in
  add "noalias_slots"
    (string_of_int (Overify_ir.Cfg.IntSet.cardinal safe));
  (* constant trip counts that survived (residual loops have none) *)
  let preds = Overify_ir.Cfg.preds fn in
  List.iter
    (fun l ->
      match Loop_unroll.analyze cm fn preds safe l with
      | Some (_, trip) ->
          add (Printf.sprintf "max_trip:L%d" l.Loop.header) (string_of_int trip)
      | None -> ())
    loops;
  ({ fn with Ir.fmeta = !meta @ fn.Ir.fmeta }, true)
