(** The cost model is the heart of the paper's thesis: [-OVERIFY] is mostly
    the {e same passes} as [-O3] with {e different costs} — a branch is far
    more expensive for a verifier than for a CPU, code growth is cheap, and
    CPU-specific passes are pointless.  Each optimization level is a value of
    this record. *)

type t = {
  name : string;
  branch_cost : int;
      (** relative cost of a conditional branch; drives if-conversion:
          speculation is profitable while
          [speculated instructions <= branch_cost] *)
  inline_threshold : int;  (** max callee size (instructions) to inline *)
  inline_growth : int;     (** max ×-growth of a function from inlining *)
  unswitch : bool;
  unswitch_size_limit : int;  (** max loop size (instructions) to unswitch *)
  unswitch_rounds : int;      (** max unswitch applications per function *)
  unroll_trip_limit : int;    (** max trip count to fully peel *)
  unroll_size_limit : int;    (** max (body size × trips) after peeling *)
  scalar_opts : bool;   (** mem2reg, folding, GVN, DCE, CFG simplification *)
  licm : bool;
  jump_threading : bool;
  cpu_opts : bool;      (** instruction scheduling (CPU-oriented) *)
  runtime_checks : bool;
  annotations : bool;
  verify_libc : bool;   (** link the verification-friendly libc variant *)
  disabled_passes : string list;
      (** pass names skipped by the pipeline; used by the Table 2 ablation *)
}

(** No optimization: what a verifier sees from a debug build. *)
let o0 =
  {
    name = "-O0";
    branch_cost = 0;
    inline_threshold = 0;
    inline_growth = 1;
    unswitch = false;
    unswitch_size_limit = 0;
    unswitch_rounds = 0;
    unroll_trip_limit = 0;
    unroll_size_limit = 0;
    scalar_opts = false;
    licm = false;
    jump_threading = false;
    cpu_opts = false;
    runtime_checks = false;
    annotations = false;
    verify_libc = false;
    disabled_passes = [];
  }

(** Standard optimization: scalar cleanups and modest inlining, but no
    structural loop transformations — path structure is unchanged. *)
let o2 =
  {
    o0 with
    name = "-O2";
    branch_cost = 0;
    inline_threshold = 45;
    inline_growth = 4;
    scalar_opts = true;
    licm = true;
    jump_threading = true;
    cpu_opts = true;
  }

(** Aggressive execution-oriented optimization: adds loop unswitching, small
    unrolling and CPU-budget if-conversion. *)
let o3 =
  {
    o2 with
    name = "-O3";
    branch_cost = 3;
    inline_threshold = 90;
    inline_growth = 8;
    unswitch = true;
    unswitch_size_limit = 200;
    unswitch_rounds = 2;
    unroll_trip_limit = 8;
    unroll_size_limit = 256;
  }

(** Verification-oriented optimization (the paper's [-OSYMBEX] instance):
    branches are treated as nearly unbounded cost, inlining and unrolling are
    allowed to grow code substantially, CPU-specific passes are disabled, and
    metadata is preserved. *)
let overify =
  {
    name = "-OVERIFY";
    branch_cost = 10_000;
    inline_threshold = 5_000;
    inline_growth = 64;
    unswitch = true;
    unswitch_size_limit = 2_000;
    unswitch_rounds = 8;
    unroll_trip_limit = 300;
    unroll_size_limit = 20_000;
    scalar_opts = true;
    licm = true;
    jump_threading = true;
    cpu_opts = false;
    runtime_checks = false;
    annotations = true;
    verify_libc = true;
    disabled_passes = [];
  }

let of_name = function
  | "-O0" | "O0" | "o0" -> Some o0
  | "-O2" | "O2" | "o2" -> Some o2
  | "-O3" | "O3" | "o3" -> Some o3
  | "-OVERIFY" | "-Overify" | "OVERIFY" | "Overify" | "overify"
  | "-OSYMBEX" | "OSYMBEX" | "osymbex" ->
      Some overify
  | _ -> None

let all = [ o0; o2; o3; overify ]
