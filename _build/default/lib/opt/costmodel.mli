(** The cost model is the heart of the paper's thesis: [-OVERIFY] is mostly
    the {e same passes} as [-O3] with {e different costs}.  Each optimization
    level is a value of {!t}; the pipeline consults only this record. *)

type t = {
  name : string;
  branch_cost : int;
      (** relative cost of a conditional branch; drives if-conversion:
          speculation is profitable while the speculated instruction count
          stays below this *)
  inline_threshold : int;  (** max callee size (instructions) to inline *)
  inline_growth : int;     (** max ×-growth of a function from inlining *)
  unswitch : bool;
  unswitch_size_limit : int;  (** max loop size (instructions) to unswitch *)
  unswitch_rounds : int;      (** max unswitch applications per function *)
  unroll_trip_limit : int;    (** max trip count to fully peel *)
  unroll_size_limit : int;    (** max (body size × trips) after peeling *)
  scalar_opts : bool;  (** mem2reg, folding, GVN, DCE, CFG simplification *)
  licm : bool;
  jump_threading : bool;
  cpu_opts : bool;         (** instruction scheduling (CPU-oriented) *)
  runtime_checks : bool;   (** insert explicit div/bounds/null guards *)
  annotations : bool;      (** preserve metadata for verification tools *)
  verify_libc : bool;      (** link the verification-friendly libc variant *)
  disabled_passes : string list;
      (** pass names skipped by the pipeline; used by the Table 2 ablation *)
}

val o0 : t
(** No optimization: what a verifier sees from a debug build. *)

val o2 : t
(** Standard optimization: scalar cleanups and modest inlining, but no
    structural loop transformations — path structure is unchanged. *)

val o3 : t
(** Aggressive execution-oriented optimization: adds loop unswitching, small
    unrolling and CPU-budget if-conversion. *)

val overify : t
(** Verification-oriented optimization (the paper's [-OSYMBEX] instance). *)

val of_name : string -> t option
(** Parse "-O0" / "O3" / "-OVERIFY" / "osymbex" etc. *)

val all : t list
(** The four levels, in increasing optimization order. *)
