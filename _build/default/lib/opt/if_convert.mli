(** If-conversion: speculation of side-effect-free acyclic regions into
    predicated straight-line code with selects (SSA form).  The cost model's
    [branch_cost] bounds the speculated instruction count; under [-OVERIFY]
    whole short-circuit DAGs flatten — the paper's Listing 2. *)

val run :
  Costmodel.t -> Stats.t -> Overify_ir.Ir.func -> Overify_ir.Ir.func * bool
