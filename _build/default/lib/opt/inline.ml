(** Function inlining on memory-form IR.

    Precondition (guaranteed by the frontend's lowering and preserved by the
    memory-form passes): callers contain no phis and callee parameter
    registers are only used in the callee's entry block, so cloning the body
    with parameters substituted by argument values is sound.

    The cost model decides how far to go: [-O2/-O3] inline small callees to
    save call overhead; [-OVERIFY] inlines almost everything, because every
    inlined call specializes the body and unlocks folding and if-conversion
    (paper §4, "aggressively inlines functions in order to benefit from
    simplifications due to function specialization"). *)

module Ir = Overify_ir.Ir
module Callgraph = Overify_ir.Callgraph

let params_confined_to_entry (fn : Ir.func) =
  let params = List.map fst fn.params in
  let entry_bid = (Ir.entry fn).bid in
  let ok = ref true in
  List.iter
    (fun (b : Ir.block) ->
      let check v =
        match v with
        | Ir.Reg r when List.mem r params && b.Ir.bid <> entry_bid -> ok := false
        | _ -> ()
      in
      List.iter (fun i -> List.iter check (Ir.uses_of_inst i)) b.Ir.insts;
      List.iter check (Ir.uses_of_term b.Ir.term))
    fn.blocks;
  !ok

let has_phis (fn : Ir.func) =
  let p = ref false in
  Ir.iter_insts (fun _ i -> if Ir.is_phi i then p := true) fn;
  !p

(** Inline one call site: the call to [callee] at position [idx] in block
    [bid] of [caller]. *)
let inline_site (caller : Ir.func) (callee : Ir.func) ~bid ~idx : Ir.func =
  let fresh = Ir.Fresh.of_func caller in
  let blk = Ir.find_block caller bid in
  let before = List.filteri (fun i _ -> i < idx) blk.Ir.insts in
  let after = List.filteri (fun i _ -> i > idx) blk.Ir.insts in
  let (dst, ret_ty, args) =
    match List.nth blk.Ir.insts idx with
    | Ir.Call (dst, ret_ty, _, args) -> (dst, ret_ty, args)
    | _ -> invalid_arg "inline_site: not a call"
  in
  let param_map =
    List.map2 (fun (p, _) a -> (p, a)) callee.Ir.params args
  in
  let vmap r = List.assoc_opt r param_map in
  let cloned = Clone.clone_blocks ~fresh ~vmap callee.Ir.blocks in
  let cont_bid = Ir.Fresh.take fresh in
  (* a slot communicates the return value across the (possibly many) rets *)
  let ret_slot =
    if ret_ty = Ir.Void || dst = None then None
    else Some (Ir.Fresh.take fresh)
  in
  let body =
    List.map
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Ret (Some v) ->
            let insts =
              match ret_slot with
              | Some slot -> b.Ir.insts @ [ Ir.Store (ret_ty, v, Ir.Reg slot) ]
              | None -> b.Ir.insts
            in
            { b with Ir.insts = insts; term = Ir.Br cont_bid }
        | Ir.Ret None -> { b with Ir.term = Ir.Br cont_bid }
        | _ -> b)
      cloned.Clone.blocks
  in
  let entry_clone_bid =
    Hashtbl.find cloned.Clone.label_map (Ir.entry callee).Ir.bid
  in
  let slot_alloca =
    match ret_slot with
    | Some slot -> [ Ir.Alloca (slot, ret_ty, 1) ]
    | None -> []
  in
  let head =
    { blk with Ir.insts = before @ slot_alloca; term = Ir.Br entry_clone_bid }
  in
  let load_ret =
    match (dst, ret_slot) with
    | (Some d, Some slot) -> [ Ir.Load (d, ret_ty, Ir.Reg slot) ]
    | _ -> []
  in
  let cont =
    { Ir.bid = cont_bid; insts = load_ret @ after; term = blk.Ir.term }
  in
  let blocks =
    List.concat_map
      (fun (b : Ir.block) ->
        if b.Ir.bid = bid then (head :: body) @ [ cont ] else [ b ])
      caller.Ir.blocks
  in
  Ir.Fresh.commit fresh { caller with Ir.blocks }

(** Find the first eligible call site in [fn]; returns (bid, idx, callee). *)
let find_site (cm : Costmodel.t) (m : Ir.modul) cyclic (fn : Ir.func) =
  let found = ref None in
  List.iter
    (fun (b : Ir.block) ->
      if !found = None then
        List.iteri
          (fun idx i ->
            if !found = None then
              match i with
              | Ir.Call (_, _, callee_name, _)
                when callee_name <> fn.Ir.fname
                     && not (Ir.is_intrinsic callee_name) -> (
                  match Ir.find_func m callee_name with
                  | Some callee
                    when Ir.func_size callee <= cm.Costmodel.inline_threshold
                         && (not (List.mem callee_name cyclic))
                         && params_confined_to_entry callee
                         && not (has_phis callee) ->
                      found := Some (b.Ir.bid, idx, callee)
                  | _ -> ())
              | _ -> ())
          b.Ir.insts)
    fn.blocks;
  !found

(** Module-level inlining driven by the cost model. *)
let run (cm : Costmodel.t) (stats : Stats.t) (m : Ir.modul) : Ir.modul =
  if cm.Costmodel.inline_threshold <= 0 then m
  else begin
    let cyclic =
      List.filter_map
        (fun (f : Ir.func) ->
          if Callgraph.in_cycle m f.Ir.fname then Some f.Ir.fname else None)
        m.Ir.funcs
    in
    let m = ref m in
    List.iter
      (fun name ->
        match Ir.find_func !m name with
        | None -> ()
        | Some fn when has_phis fn -> ()
        | Some fn ->
            let budget = Ir.func_size fn * cm.Costmodel.inline_growth + 512 in
            let fn = ref fn in
            let continue_ = ref true in
            while !continue_ do
              if Ir.func_size !fn > budget then continue_ := false
              else
                match find_site cm !m cyclic !fn with
                | Some (bid, idx, callee) ->
                    fn := inline_site !fn callee ~bid ~idx;
                    stats.Stats.functions_inlined <-
                      stats.Stats.functions_inlined + 1
                | None -> continue_ := false
            done;
            m := Ir.update_func !m !fn)
      (Callgraph.bottom_up_order !m);
    !m
  end
