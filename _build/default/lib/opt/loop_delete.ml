(** Dead-loop elimination (SSA form).

    After peeling, the residual loop's header is entered only from outside
    with known phi values (the final induction state), so its exit condition
    folds per entry edge.  If {e every} out-of-loop entry decides "exit",
    the body can never execute: the header's branch is rewritten to go
    straight to the exit, and CFG simplification sweeps the body away.

    This is what completes the paper's "removes loops from the program
    whenever possible": peeling + this pass deletes counted loops outright. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module Loop = Overify_ir.Loop

(** Evaluate block [h]'s pure instruction results under an environment that
    maps header phis to the values flowing in from one predecessor; returns
    the folded constant for [reg] if everything relevant folds. *)
let eval_chain (h : Ir.block) (phi_env : (int, Ir.value) Hashtbl.t) (reg : int)
    : int64 option =
  let env : (int, int64 * Ir.ty) Hashtbl.t = Hashtbl.create 8 in
  let resolve v =
    match v with
    | Ir.Imm (c, ty) -> Some (c, ty)
    | Ir.Reg r -> (
        match Hashtbl.find_opt env r with
        | Some cv -> Some cv
        | None -> (
            match Hashtbl.find_opt phi_env r with
            | Some (Ir.Imm (c, ty)) -> Some (c, ty)
            | _ -> None))
    | Ir.Glob _ -> None
  in
  List.iter
    (fun i ->
      match i with
      | Ir.Phi (d, ty, _) -> (
          (* already in phi_env if constant for this pred *)
          match Hashtbl.find_opt phi_env d with
          | Some (Ir.Imm (c, _)) -> Hashtbl.replace env d (c, ty)
          | _ -> ())
      | Ir.Bin (d, op, ty, a, b) -> (
          match (resolve a, resolve b) with
          | (Some (va, _), Some (vb, _)) -> (
              match Ir.eval_binop op ty va vb with
              | Some v -> Hashtbl.replace env d (v, ty)
              | None -> ())
          | _ -> ())
      | Ir.Cmp (d, op, ty, a, b) -> (
          match (resolve a, resolve b) with
          | (Some (va, _), Some (vb, _)) when ty <> Ir.Ptr ->
              Hashtbl.replace env d
                ((if Ir.eval_cmp op ty va vb then 1L else 0L), Ir.I1)
          | _ -> ())
      | Ir.Cast (d, op, to_ty, v, from_ty) -> (
          match resolve v with
          | Some (c, _) ->
              Hashtbl.replace env d (Ir.eval_cast op to_ty c from_ty, to_ty)
          | None -> ())
      | Ir.Select (d, ty, c, a, b) -> (
          match resolve c with
          | Some (1L, _) -> (
              match resolve a with
              | Some (v, _) -> Hashtbl.replace env d (v, ty)
              | None -> ())
          | Some (0L, _) -> (
              match resolve b with
              | Some (v, _) -> Hashtbl.replace env d (v, ty)
              | None -> ())
          | _ -> ())
      | _ -> ())
    h.Ir.insts;
  Option.map fst (Hashtbl.find_opt env reg)

let delete_one (fn : Ir.func) : Ir.func option =
  let loops = Loop.find fn in
  let preds = Cfg.preds fn in
  let try_loop (l : Loop.t) =
    let h = Ir.find_block fn l.Loop.header in
    match h.Ir.term with
    | Ir.Cbr (Ir.Reg c, t, e) -> (
        let t_in = Loop.mem l t and e_in = Loop.mem l e in
        match (t_in, e_in) with
        | (true, false) | (false, true) ->
            let exit_target = if t_in then e else t in
            let exit_const = if t_in then 0L else 1L in
            let outside =
              List.filter (fun p -> not (Loop.mem l p))
                (Cfg.preds_of preds l.Loop.header)
            in
            if outside = [] then None
            else begin
              let all_exit =
                List.for_all
                  (fun p ->
                    let phi_env = Hashtbl.create 8 in
                    List.iter
                      (fun i ->
                        match i with
                        | Ir.Phi (d, _, incoming) -> (
                            match List.assoc_opt p incoming with
                            | Some v -> Hashtbl.replace phi_env d v
                            | None -> ())
                        | _ -> ())
                      h.Ir.insts;
                    eval_chain h phi_env c = Some exit_const)
                  outside
              in
              if all_exit then
                Some (Ir.update_block fn { h with Ir.term = Ir.Br exit_target })
              else None
            end
        | _ -> None)
    | _ -> None
  in
  List.find_map try_loop loops

let run (fn : Ir.func) : Ir.func * bool =
  let rec go fn n any =
    if n = 0 then (fn, any)
    else
      match delete_one fn with
      | Some fn' ->
          (* the body is now unreachable; prune it (and stale phi entries)
             before re-running the loop analysis *)
          let (fn', _) = Cfg.remove_unreachable fn' in
          go fn' (n - 1) true
      | None -> (fn, any)
  in
  go fn 8 false
