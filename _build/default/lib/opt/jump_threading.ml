(** Jump threading (SSA form), the paper's §3 example: "checks whether a
    conditional branch jumps to a location where another condition is
    subsumed by the first one; if yes, the first branch is redirected
    correspondingly, turning two jumps into one."

    We implement the correlated-condition case: an empty block [S] that
    branches on the same SSA register as its unique predecessor's branch is
    bypassed — the predecessor jumps straight to the side the condition
    implies. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg

let thread_once (fn : Ir.func) : Ir.func option =
  let preds = Cfg.preds fn in
  let btbl = Ir.block_tbl fn in
  let entry_bid = (Ir.entry fn).Ir.bid in
  let candidate = ref None in
  List.iter
    (fun (s : Ir.block) ->
      if !candidate = None && s.Ir.bid <> entry_bid && s.Ir.insts = [] then
        match (s.Ir.term, Cfg.preds_of preds s.Ir.bid) with
        | (Ir.Cbr (Ir.Reg c, t2, e2), [ p ]) -> (
            match Hashtbl.find_opt btbl p with
            | Some pb -> (
                match pb.Ir.term with
                | Ir.Cbr (Ir.Reg c', t, e) when c' = c && t <> e ->
                    if t = s.Ir.bid then
                      (* condition is true on this edge *)
                      candidate := Some (p, s.Ir.bid, t2)
                    else if e = s.Ir.bid then
                      candidate := Some (p, s.Ir.bid, e2)
                | _ -> ())
            | None -> ())
        | _ -> ())
    fn.Ir.blocks;
  match !candidate with
  | None -> None
  | Some (p, s_bid, target) ->
      (* redirect p's edge s -> target; s becomes unreachable (single pred)
         and is cleaned up by simplify_cfg.  The phi entries of [target] for
         pred [s] become entries for [p]; values incoming from the empty [s]
         dominate [p] (see the threading precondition). *)
      let pb = Hashtbl.find btbl p in
      let pb' = { pb with Ir.term = Cfg.redirect_term s_bid target pb.Ir.term } in
      let tb = Hashtbl.find btbl target in
      let tb' =
        let fix = function
          | Ir.Phi (d, ty, incoming) -> (
              match List.assoc_opt s_bid incoming with
              | Some v when not (List.mem_assoc p incoming) ->
                  Ir.Phi (d, ty, (p, v) :: incoming)
              | _ -> Ir.Phi (d, ty, incoming))
          | i -> i
        in
        { tb with Ir.insts = List.map fix tb.Ir.insts }
      in
      (* if target already had p as a predecessor and has phis, threading
         would create a duplicate entry; bail out in that case *)
      let target_preds = Cfg.preds_of preds target in
      let has_phi = List.exists Ir.is_phi tb.Ir.insts in
      if has_phi && List.mem p target_preds then None
      else begin
        let blocks =
          List.map
            (fun (b : Ir.block) ->
              if b.Ir.bid = p then pb'
              else if b.Ir.bid = target then tb'
              else b)
            fn.Ir.blocks
        in
        (* [s] is now unreachable; simplify_cfg removes it and prunes the
           stale phi entries of its successors *)
        Some { fn with Ir.blocks }
      end

let run (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let rec go fn n any =
    if n = 0 then (fn, any)
    else
      match thread_once fn with
      | Some fn' ->
          stats.Stats.jumps_threaded <- stats.Stats.jumps_threaded + 1;
          go fn' (n - 1) true
      | None -> (fn, any)
  in
  go fn 32 false
