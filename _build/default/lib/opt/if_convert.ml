(** If-conversion: speculation of side-effect-free acyclic regions into
    predicated straight-line code with selects (SSA form).

    This is where the cost model's [branch_cost] earns its keep.  A CPU
    converts an [if] to straight-line code only when the arm is a couple of
    instructions (GCC's [x &= -(test == 0)] example in the paper); under
    [-OVERIFY] a branch costs thousands of "instructions", so whole
    short-circuit DAGs are speculated — exactly the transformation producing
    the paper's Listing 2 branch-free loop body.

    Mechanism: starting from a conditional branch, grow a region of blocks
    whose predecessors are all inside the region and whose instructions are
    all speculatable.  The region is necessarily acyclic.  If it funnels into
    a single exit block, every region block's instructions are hoisted into
    the branch block in topological order; an [i1] path predicate is
    materialized per edge, phis inside the region and at the exit become
    select chains over those predicates. *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg

module IntSet = Cfg.IntSet

type region = {
  head : Ir.block;          (* the branching block *)
  body : Ir.block list;     (* topological order *)
  exit : int;               (* merge block *)
  cost : int;               (* instructions to speculate *)
}

let block_speculatable (b : Ir.block) =
  List.for_all
    (fun i -> Ir.is_phi i || Ir.is_speculatable i)
    b.Ir.insts
  && (match b.Ir.term with Ir.Br _ | Ir.Cbr _ -> true | Ir.Ret _ | Ir.Unreachable -> false)

(** Grow a speculation region from [head]; returns it if the frontier
    collapses to a single exit within budget. *)
let find_region (fn : Ir.func) preds btbl budget (head : Ir.block) :
    region option =
  match head.Ir.term with
  | Ir.Cbr (_, t, e) when t <> e && t <> head.Ir.bid && e <> head.Ir.bid ->
      let in_region = ref (IntSet.singleton head.Ir.bid) in
      let body = ref [] in
      let cost = ref 0 in
      let frontier = ref (IntSet.of_list [ t; e ]) in
      let progress = ref true in
      while !progress do
        progress := false;
        IntSet.iter
          (fun x ->
            if (not !progress) && not (IntSet.mem x !in_region) then
              match Hashtbl.find_opt btbl x with
              | Some xb
                when x <> (Ir.entry fn).Ir.bid
                     && block_speculatable xb
                     && List.for_all
                          (fun p -> IntSet.mem p !in_region)
                          (Cfg.preds_of preds x)
                     (* no back edge to the head: the region must be a DAG
                        hanging off the branch, not a loop through it *)
                     && List.for_all (fun s -> s <> head.Ir.bid) (Cfg.succs xb)
                     && !cost + List.length xb.Ir.insts <= budget ->
                  progress := true;
                  in_region := IntSet.add x !in_region;
                  body := xb :: !body;
                  cost := !cost + List.length xb.Ir.insts;
                  frontier := IntSet.remove x !frontier;
                  List.iter
                    (fun s ->
                      if not (IntSet.mem s !in_region) then
                        frontier := IntSet.add s !frontier)
                    (Cfg.succs xb)
              | _ -> ())
          !frontier
      done;
      let body = List.rev !body in
      if body = [] then None
      else begin
        match IntSet.elements !frontier with
        | [ m ] when m <> head.Ir.bid ->
            Some { head; body; exit = m; cost = !cost }
        | _ -> None
      end
  | _ -> None

(** Flatten the region into its head block. *)
let convert (fn : Ir.func) (r : region) : Ir.func =
  let fresh = Ir.Fresh.of_func fn in
  let spec = ref [] in  (* reversed speculated instruction stream *)
  let emit i = spec := i :: !spec in
  (* edge predicates: (from, to) -> i1 value *)
  let edge : (int * int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let not_ v =
    match v with
    | Ir.Imm (1L, Ir.I1) -> Ir.imm_bool false
    | Ir.Imm (0L, Ir.I1) -> Ir.imm_bool true
    | _ ->
        let d = Ir.Fresh.take fresh in
        emit (Ir.Bin (d, Ir.Xor, Ir.I1, v, Ir.imm Ir.I1 1L));
        Ir.Reg d
  in
  let and_ a b =
    match (a, b) with
    | (Ir.Imm (1L, Ir.I1), v) | (v, Ir.Imm (1L, Ir.I1)) -> v
    | _ ->
        let d = Ir.Fresh.take fresh in
        emit (Ir.Bin (d, Ir.And, Ir.I1, a, b));
        Ir.Reg d
  in
  let or_ a b =
    let d = Ir.Fresh.take fresh in
    emit (Ir.Bin (d, Ir.Or, Ir.I1, a, b));
    Ir.Reg d
  in
  let set_out_edges (b : Ir.block) (pred_val : Ir.value) =
    match b.Ir.term with
    | Ir.Br l -> Hashtbl.replace edge (b.Ir.bid, l) pred_val
    | Ir.Cbr (c, t, e) ->
        if t = e then Hashtbl.replace edge (b.Ir.bid, t) pred_val
        else begin
          Hashtbl.replace edge (b.Ir.bid, t) (and_ pred_val c);
          Hashtbl.replace edge (b.Ir.bid, e) (and_ pred_val (not_ c))
        end
    | Ir.Ret _ | Ir.Unreachable -> ()
  in
  set_out_edges r.head (Ir.imm_bool true);
  (* select chain for a phi's (pred, value) entries *)
  let select_chain ty entries ~def =
    match List.rev entries with
    | [] -> invalid_arg "if_convert: empty phi"
    | (_, vlast) :: rest ->
        let acc =
          List.fold_left
            (fun acc (ev, v) ->
              let d = Ir.Fresh.take fresh in
              emit (Ir.Select (d, ty, ev, v, acc));
              Ir.Reg d)
            vlast rest
        in
        (* bind the required destination register to the chain result *)
        (match def with
        | Some d -> emit (Ir.Select (d, ty, Ir.imm_bool true, acc, acc))
        | None -> ());
        acc
  in
  List.iter
    (fun (b : Ir.block) ->
      (* this block's predicate: OR of incoming edge predicates *)
      let inc =
        List.filter_map
          (fun ((f, t), v) -> if t = b.Ir.bid then Some (f, v) else None)
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) edge [])
      in
      let pred_val =
        match inc with
        | [] -> Ir.imm_bool false  (* unreachable region block *)
        | [ (_, v) ] -> v
        | (_, v) :: rest -> List.fold_left (fun acc (_, v') -> or_ acc v') v rest
      in
      List.iter
        (fun i ->
          match i with
          | Ir.Phi (d, ty, incoming) ->
              let entries =
                List.filter_map
                  (fun (p, v) ->
                    match Hashtbl.find_opt edge (p, b.Ir.bid) with
                    | Some ev -> Some (ev, v)
                    | None -> None)
                  incoming
              in
              ignore (select_chain ty entries ~def:(Some d))
          | i -> emit i)
        b.Ir.insts;
      set_out_edges b pred_val)
    r.body;
  (* rewrite the exit block's phis *)
  let region_bids =
    IntSet.add r.head.Ir.bid
      (IntSet.of_list (List.map (fun (b : Ir.block) -> b.Ir.bid) r.body))
  in
  let mb = Ir.find_block fn r.exit in
  let new_exit_insts =
    List.map
      (fun i ->
        match i with
        | Ir.Phi (d, ty, incoming) ->
            let from_region, outside =
              List.partition (fun (p, _) -> IntSet.mem p region_bids) incoming
            in
            if from_region = [] then i
            else begin
              let entries =
                List.map
                  (fun (p, v) ->
                    match Hashtbl.find_opt edge (p, r.exit) with
                    | Some ev -> (ev, v)
                    | None -> (Ir.imm_bool false, v))
                  from_region
              in
              let v = select_chain ty entries ~def:None in
              Ir.Phi (d, ty, (r.head.Ir.bid, v) :: outside)
            end
        | i -> i)
      mb.Ir.insts
  in
  let new_head =
    {
      r.head with
      Ir.insts = r.head.Ir.insts @ List.rev !spec;
      term = Ir.Br r.exit;
    }
  in
  let blocks =
    List.filter_map
      (fun (b : Ir.block) ->
        if b.Ir.bid = r.head.Ir.bid then Some new_head
        else if b.Ir.bid = r.exit then Some { mb with Ir.insts = new_exit_insts }
        else if IntSet.mem b.Ir.bid region_bids then None
        else Some b)
      fn.Ir.blocks
  in
  Ir.Fresh.commit fresh { fn with Ir.blocks }

let count_branches (r : region) =
  1
  + List.length
      (List.filter
         (fun (b : Ir.block) ->
           match b.Ir.term with Ir.Cbr (_, t, e) -> t <> e | _ -> false)
         r.body)

let run (cm : Costmodel.t) (stats : Stats.t) (fn : Ir.func) : Ir.func * bool =
  let budget = cm.Costmodel.branch_cost in
  if budget <= 0 then (fn, false)
  else begin
    let rec go fn n any =
      if n = 0 then (fn, any)
      else begin
        let preds = Cfg.preds fn in
        let btbl = Ir.block_tbl fn in
        let reachable = Cfg.reachable fn in
        let found =
          List.find_map
            (fun (b : Ir.block) ->
              if IntSet.mem b.Ir.bid reachable then
                find_region fn preds btbl budget b
              else None)
            fn.Ir.blocks
        in
        match found with
        | Some r ->
            stats.Stats.branches_converted <-
              stats.Stats.branches_converted + count_branches r;
            go (convert fn r) (n - 1) true
        | None -> (fn, any)
      end
    in
    go fn 400 false
  end
