(** Redundant-load elimination with store-to-load forwarding: a forward
    must-dataflow over (type, pointer) -> value facts, killed by may-alias
    stores (provenance-based) and unknown calls.  This is what makes the
    motivating example's branch arms pure enough to if-convert. *)

val run : Overify_ir.Ir.func -> Overify_ir.Ir.func * bool
