(** Per-compilation transformation counters — the quantities reported in the
    paper's Table 3. *)

type t = {
  mutable functions_inlined : int;
  mutable loops_unswitched : int;
  mutable loops_unrolled : int;
  mutable loops_deleted : int;
  mutable branches_converted : int;  (** branches removed by if-conversion *)
  mutable jumps_threaded : int;
  mutable allocas_promoted : int;
  mutable aggregates_split : int;
  mutable insts_folded : int;
  mutable insts_hoisted : int;
  mutable checks_inserted : int;
  mutable annotations_added : int;
}

let create () =
  {
    functions_inlined = 0;
    loops_unswitched = 0;
    loops_unrolled = 0;
    loops_deleted = 0;
    branches_converted = 0;
    jumps_threaded = 0;
    allocas_promoted = 0;
    aggregates_split = 0;
    insts_folded = 0;
    insts_hoisted = 0;
    checks_inserted = 0;
    annotations_added = 0;
  }

let add a b =
  {
    functions_inlined = a.functions_inlined + b.functions_inlined;
    loops_unswitched = a.loops_unswitched + b.loops_unswitched;
    loops_unrolled = a.loops_unrolled + b.loops_unrolled;
    loops_deleted = a.loops_deleted + b.loops_deleted;
    branches_converted = a.branches_converted + b.branches_converted;
    jumps_threaded = a.jumps_threaded + b.jumps_threaded;
    allocas_promoted = a.allocas_promoted + b.allocas_promoted;
    aggregates_split = a.aggregates_split + b.aggregates_split;
    insts_folded = a.insts_folded + b.insts_folded;
    insts_hoisted = a.insts_hoisted + b.insts_hoisted;
    checks_inserted = a.checks_inserted + b.checks_inserted;
    annotations_added = a.annotations_added + b.annotations_added;
  }

let pp fmt t =
  Format.fprintf fmt
    "inlined=%d unswitched=%d unrolled=%d deleted=%d branches-converted=%d threaded=%d \
     promoted=%d sroa=%d folded=%d hoisted=%d checks=%d annotations=%d"
    t.functions_inlined t.loops_unswitched t.loops_unrolled t.loops_deleted
    t.branches_converted t.jumps_threaded t.allocas_promoted
    t.aggregates_split t.insts_folded t.insts_hoisted t.checks_inserted
    t.annotations_added
