(** Loop unrolling by peeling, on memory-form IR.  A counted loop with a
    constant trip count T is peeled T times in front of a residual copy, so
    the transformation is semantics-preserving even if the trip-count
    analysis were wrong; folding then collapses the peels and
    {!Loop_delete} removes the residue. *)

val run :
  Costmodel.t -> Stats.t -> Overify_ir.Ir.func -> Overify_ir.Ir.func * bool

(**/**)

(* exposed for the annotation pass, which records surviving trip counts *)
type counted = { islot : int; trip : int }

val analyze :
  Costmodel.t ->
  Overify_ir.Ir.func ->
  (int, int list) Hashtbl.t ->
  Overify_ir.Cfg.IntSet.t ->
  Overify_ir.Loop.t ->
  (counted * int) option
