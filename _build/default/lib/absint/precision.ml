(** Precision metrics for the interval analysis — the measurable version of
    the paper's §2.1 claim: "For simple verification tools that employ
    coarse-grained abstractions … compiler transformations can increase
    their precision and allow them to prove more facts about a program."

    For a compiled module we count, over all reachable functions:
    - conditional branches whose condition the analysis decides statically;
    - address computations into stack/global arrays proven in bounds;
    - registers given a range strictly tighter than their type.

    Comparing these ratios across [-O0]/[-O3]/[-OVERIFY] is the
    "precision" experiment of the harness. *)

module Ir = Overify_ir.Ir

type counts = {
  branches : int;
  branches_decided : int;
  geps : int;            (** address computations with a known extent *)
  geps_proved : int;     (** … proven in bounds *)
  regs : int;
  regs_bounded : int;    (** range strictly tighter than the type allows *)
}

let zero =
  { branches = 0; branches_decided = 0; geps = 0; geps_proved = 0;
    regs = 0; regs_bounded = 0 }

let add a b =
  {
    branches = a.branches + b.branches;
    branches_decided = a.branches_decided + b.branches_decided;
    geps = a.geps + b.geps;
    geps_proved = a.geps_proved + b.geps_proved;
    regs = a.regs + b.regs;
    regs_bounded = a.regs_bounded + b.regs_bounded;
  }

let of_function (fn : Ir.func) : counts =
  let r = Analysis.analyze fn in
  (* extents of locally-allocated arrays *)
  let extents = Hashtbl.create 8 in
  Ir.iter_insts
    (fun _ i ->
      match i with
      | Ir.Alloca (d, ty, n) -> Hashtbl.replace extents d (Ir.size_of_ty ty * n)
      | _ -> ())
    fn;
  let typing = Overify_ir.Typing.of_func fn in
  let c = ref zero in
  let bump f = c := f !c in
  (* walk each block with the analysis' entry environment, checking every
     fact at the exact program point where it matters *)
  List.iter
    (fun (b : Ir.block) ->
      match Hashtbl.find_opt r.Analysis.block_in b.Ir.bid with
      | None -> ()  (* unreachable *)
      | Some env0 ->
          let env = ref env0 in
          List.iter
            (fun i ->
              (match i with
              | Ir.Gep (_, Ir.Reg base, scale, idx) when Hashtbl.mem extents base
                ->
                  let extent = Hashtbl.find extents base in
                  let limit = Int64.of_int (extent / max scale 1) in
                  bump (fun c -> { c with geps = c.geps + 1 });
                  (match Analysis.value_range !env idx with
                  | Interval.Range (lo, hi) when lo >= 0L && hi < limit ->
                      bump (fun c -> { c with geps_proved = c.geps_proved + 1 })
                  | _ -> ())
              | _ -> ());
              (match i with
              | Ir.Phi _ -> ()  (* already folded into block_in *)
              | i -> env := Analysis.transfer_inst ~deftbl:r.Analysis.deftbl !env i);
              match Ir.def_of_inst i with
              | Some d -> (
                  match Overify_ir.Typing.reg_ty typing d with
                  | (Ir.I1 | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64) as ty ->
                      bump (fun c -> { c with regs = c.regs + 1 });
                      let range = Analysis.lookup !env d in
                      let tyr = Interval.top_for_bits (Ir.bits_of_ty ty) in
                      if (not (Interval.is_bot range))
                         && Interval.leq range tyr
                         && not (Interval.equal range tyr)
                      then
                        bump (fun c ->
                            { c with regs_bounded = c.regs_bounded + 1 })
                  | _ -> ())
              | None -> ())
            b.Ir.insts;
          (match b.Ir.term with
          | Ir.Cbr (cond, t, e) when t <> e ->
              bump (fun c -> { c with branches = c.branches + 1 });
              (match Interval.singleton (Analysis.value_range !env cond) with
              | Some _ ->
                  bump (fun c ->
                      { c with branches_decided = c.branches_decided + 1 })
              | None -> ())
          | _ -> ()))
    fn.Ir.blocks;
  !c

(** Aggregate over the functions reachable from [main]. *)
let of_module (m : Ir.modul) : counts =
  let reachable = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Ir.find_func m name with
      | Some fn ->
          List.iter visit (Overify_ir.Callgraph.callees m fn)
      | None -> ()
    end
  in
  visit "main";
  List.fold_left
    (fun acc (fn : Ir.func) ->
      if Hashtbl.mem reachable fn.Ir.fname then add acc (of_function fn)
      else acc)
    zero m.Ir.funcs

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den
