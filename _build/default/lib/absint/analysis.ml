(** Flow-sensitive interval analysis over SSA IR, with branch refinement and
    widening — the "simple verification tool" of the paper's §2.1.

    The analysis itself is deliberately ordinary; the experiment is what the
    compiler does {e to its precision}: after [-OVERIFY]'s inlining and
    simplification, the same analysis proves more memory accesses in bounds
    and decides more branches (see {!Precision}). *)

module Ir = Overify_ir.Ir
module Cfg = Overify_ir.Cfg
module IMap = Map.Make (Int)

type env = Interval.t IMap.t

let lookup env r =
  match IMap.find_opt r env with Some v -> v | None -> Interval.Bot

let value_range (env : env) (v : Ir.value) : Interval.t =
  match v with
  | Ir.Imm (c, ty) -> Interval.const (Ir.signed_of ty c)
  | Ir.Reg r -> lookup env r
  | Ir.Glob _ -> Interval.Range (Int64.min_int, Int64.max_int)

let bits_of ty = try Ir.bits_of_ty ty with Invalid_argument _ -> 64

(* transfer one instruction; [deftbl] resolves condition registers so that
   selects can refine their arms (the min/max idiom) *)
let rec transfer_inst ?deftbl (env : env) (i : Ir.inst) : env =
  let set d v = IMap.add d v env in
  match i with
  | Ir.Bin (d, op, ty, a, b) ->
      let bits = bits_of ty in
      let ra = value_range env a and rb = value_range env b in
      let r =
        match op with
        | Ir.Add -> Interval.add ~bits ra rb
        | Ir.Sub -> Interval.sub ~bits ra rb
        | Ir.Mul -> Interval.mul ~bits ra rb
        | Ir.Sdiv -> Interval.div ~bits ra rb
        | Ir.Srem | Ir.Urem -> Interval.rem ~bits ra rb
        | Ir.Udiv -> Interval.div ~bits ra rb
        | Ir.And -> Interval.band ~bits ra rb
        | Ir.Or -> Interval.bor ~bits ra rb
        | Ir.Xor -> (
            match (ra, rb) with
            | (Interval.Range (l1, h1), Interval.Range (l2, h2))
              when l1 >= 0L && l2 >= 0L ->
                (* stays within the covering power of two *)
                Interval.bor ~bits (Interval.Range (0L, h1)) (Interval.Range (0L, h2))
            | _ -> Interval.top_for_bits bits)
        | Ir.Shl -> Interval.shl ~bits ra rb
        | Ir.Lshr -> Interval.lshr ~bits ra rb
        | Ir.Ashr -> (
            match (ra, rb) with
            | (Interval.Range (l1, _), _) when l1 >= 0L -> Interval.lshr ~bits ra rb
            | _ -> Interval.top_for_bits bits)
      in
      set d r
  | Ir.Cmp (d, op, ty, a, b) -> (
      (* decide statically when ranges separate *)
      let ra = value_range env a and rb = value_range env b in
      match (ra, rb) with
      | (Interval.Range (l1, h1), Interval.Range (l2, h2)) when ty <> Ir.Ptr ->
          let decided =
            match op with
            | Ir.Slt -> if h1 < l2 then Some true else if l1 >= h2 then Some false else None
            | Ir.Sle -> if h1 <= l2 then Some true else if l1 > h2 then Some false else None
            | Ir.Sgt -> if l1 > h2 then Some true else if h1 <= l2 then Some false else None
            | Ir.Sge -> if l1 >= h2 then Some true else if h1 < l2 then Some false else None
            | Ir.Eq ->
                if l1 = h1 && l2 = h2 && l1 = l2 then Some true
                else if Interval.meet ra rb = Interval.Bot then Some false
                else None
            | Ir.Ne ->
                if Interval.meet ra rb = Interval.Bot then Some true
                else if l1 = h1 && l2 = h2 && l1 = l2 then Some false
                else None
            | Ir.Ult | Ir.Ule | Ir.Ugt | Ir.Uge ->
                (* only decide when both ranges are non-negative, where the
                   unsigned order agrees with the signed one *)
                if l1 >= 0L && l2 >= 0L then
                  match op with
                  | Ir.Ult -> if h1 < l2 then Some true else if l1 > h2 then Some false else None
                  | Ir.Ule -> if h1 <= l2 then Some true else if l1 > h2 then Some false else None
                  | Ir.Ugt -> if l1 > h2 then Some true else if h1 < l2 then Some false else None
                  | Ir.Uge -> if l1 >= h2 then Some true else if h1 < l2 then Some false else None
                  | _ -> None
                else None
          in
          (match decided with
          | Some b -> set d (Interval.const (if b then 1L else 0L))
          | None -> set d Interval.bool_range)
      | _ -> set d Interval.bool_range)
  | Ir.Select (d, _, c, a, b) -> (
      match value_range env c with
      | Interval.Range (1L, 1L) -> set d (value_range env a)
      | Interval.Range (0L, 0L) -> set d (value_range env b)
      | _ ->
          (* refine each arm under the condition: captures min/max idioms
             like [n > 15 ? 15 : n] *)
          let (ra, rb) =
            match (c, deftbl) with
            | (Ir.Reg cr, Some deftbl) ->
                let env_t = refine deftbl env cr ~taken:true in
                let env_f = refine deftbl env cr ~taken:false in
                (value_range env_t a, value_range env_f b)
            | _ -> (value_range env a, value_range env b)
          in
          set d (Interval.join ra rb))
  | Ir.Cast (d, op, to_ty, v, from_ty) -> (
      let r = value_range env v in
      match op with
      | Ir.Zext -> (
          match r with
          | Interval.Range (l, _) when l >= 0L ->
              set d (Interval.meet r (Interval.unsigned_for_bits 64))
          | _ -> set d (Interval.unsigned_for_bits (bits_of from_ty)))
      | Ir.Sext -> set d r
      | Ir.Trunc ->
          if Interval.leq r (Interval.top_for_bits (bits_of to_ty)) then set d r
          else set d (Interval.top_for_bits (bits_of to_ty)))
  | Ir.Load (d, ty, _) ->
      (* coarse: a loaded value is only bounded by its type *)
      set d (Interval.top_for_bits (bits_of ty))
  | Ir.Call (Some d, ty, name, _) ->
      if name = "__input" then set d (Interval.Range (0L, 255L))
      else if name = "__input_size" then set d (Interval.Range (0L, 0x7FFFFFFFL))
      else if ty = Ir.Void then env
      else set d (Interval.top_for_bits (bits_of ty))
  | Ir.Alloca (d, _, _) | Ir.Gep (d, _, _, _) ->
      set d (Interval.Range (Int64.min_int, Int64.max_int))
  | Ir.Store _ | Ir.Call (None, _, _, _) -> env
  | Ir.Phi _ -> env (* handled at block entry *)

(** Refine ranges knowing the boolean register [cond] is [taken].  The
    compared right-hand side may be a constant or another register whose
    current bounds act as (sound, non-relational) pseudo-constants — this is
    what lets [i < n] bound a loop index once mem2reg has put both in
    registers.  Negations ([xor c, 1]) are looked through. *)
and refine (deftbl : (int, Ir.inst) Hashtbl.t) (env : env) (cond : int)
    ~(taken : bool) : env =
  match Hashtbl.find_opt deftbl cond with
  | Some (Ir.Bin (_, Ir.Xor, Ir.I1, Ir.Reg c2, Ir.Imm (1L, _))) ->
      refine deftbl env c2 ~taken:(not taken)
  | Some (Ir.Cmp (_, op, ty, Ir.Reg r, rhs)) when ty <> Ir.Ptr -> (
      let rhs_range =
        match rhs with
        | Ir.Imm (c, cty) ->
            let c = Ir.signed_of cty c in
            Some (c, c)
        | Ir.Reg s -> (
            match lookup env s with
            | Interval.Range (lo, hi) -> Some (lo, hi)
            | Interval.Bot -> None)
        | Ir.Glob _ -> None
      in
      match rhs_range with
      | None -> env
      | Some (rlo, rhi) -> refine_var env r op ~taken ~rlo ~rhi)
  | _ -> env

and refine_var (env : env) r op ~taken ~rlo ~rhi =
  (
      let cur = lookup env r in
      let constraint_ =
        (* taken: r OP rhs holds, where rhs is in [rlo, rhi] *)
        match (op, taken) with
        | (Ir.Slt, true) | (Ir.Sge, false) ->
            (* r < rhs  =>  r <= rhi - 1 *)
            Interval.Range (Int64.min_int, Int64.sub rhi 1L)
        | (Ir.Slt, false) | (Ir.Sge, true) ->
            (* r >= rhs  =>  r >= rlo *)
            Interval.Range (rlo, Int64.max_int)
        | (Ir.Sle, true) | (Ir.Sgt, false) -> Interval.Range (Int64.min_int, rhi)
        | (Ir.Sle, false) | (Ir.Sgt, true) ->
            Interval.Range (Int64.add rlo 1L, Int64.max_int)
        | (Ir.Eq, true) | (Ir.Ne, false) -> Interval.Range (rlo, rhi)
        | (Ir.Ult, true) when rhi >= 0L ->
            (* r <u rhs with rhs <= max_int: a signed-negative r would be a
               huge unsigned value, so r is non-negative and below rhi *)
            Interval.Range (0L, Int64.sub rhi 1L)
        | (Ir.Ule, true) when rhi >= 0L -> Interval.Range (0L, rhi)
        | ((Ir.Ugt | Ir.Uge), true) when rlo >= 0L ->
            Interval.Range (0L, Int64.max_int)
        | _ -> Interval.Range (Int64.min_int, Int64.max_int)
      in
      let refined = Interval.meet cur constraint_ in
      if Interval.is_bot refined then env  (* edge infeasible; keep coarse *)
      else IMap.add r refined env)

type result = {
  block_in : (int, env) Hashtbl.t;
  reg_out : env;  (** final fixpoint environment over all registers *)
  deftbl : (int, Ir.inst) Hashtbl.t;
}

(** Run to fixpoint over one function. *)
let analyze (fn : Ir.func) : result =
  let order = Cfg.rpo fn in
  let btbl = Ir.block_tbl fn in
  let preds = Cfg.preds fn in
  let block_in : (int, env) Hashtbl.t = Hashtbl.create 16 in
  let block_out : (int, env) Hashtbl.t = Hashtbl.create 16 in
  let deftbl = Hashtbl.create 64 in
  Ir.iter_insts
    (fun _ i ->
      match Ir.def_of_inst i with
      | Some d -> Hashtbl.replace deftbl d i
      | None -> ())
    fn;
  let entry_bid = (Ir.entry fn).Ir.bid in
  (* parameters: type range *)
  let init_env =
    List.fold_left
      (fun env (r, ty) ->
        IMap.add r
          (try Interval.top_for_bits (Ir.bits_of_ty ty)
           with Invalid_argument _ ->
             Interval.Range (Int64.min_int, Int64.max_int))
          env)
      IMap.empty fn.Ir.params
  in
  let visits = Hashtbl.create 16 in
  let widen_threshold = 3 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 50 do
    changed := false;
    incr rounds;
    List.iter
      (fun bid ->
        let b = Hashtbl.find btbl bid in
        (* per-edge refined predecessor environments: used both for the join
           and for evaluating phi incoming values, so a clamp like
           [if (n > 15) n = 15] flows into the merged phi *)
        let refined_out p =
          match Hashtbl.find_opt block_out p with
          | None -> None
          | Some out ->
              let refined =
                match Hashtbl.find_opt btbl p with
                | Some pb -> (
                    match pb.Ir.term with
                    | Ir.Cbr (Ir.Reg c, t, e) when t <> e ->
                        if t = bid then refine deftbl out c ~taken:true
                        else if e = bid then refine deftbl out c ~taken:false
                        else out
                    | _ -> out)
                | None -> out
              in
              Some refined
        in
        let in_env =
          if bid = entry_bid then init_env
          else
            List.fold_left
              (fun acc p ->
                match refined_out p with
                | None -> acc
                | Some refined ->
                    IMap.union (fun _ a b -> Some (Interval.join a b)) acc refined)
              IMap.empty (Cfg.preds_of preds bid)
        in
        (* phis: join incoming values under each edge's refinement *)
        let in_env =
          List.fold_left
            (fun env i ->
              match i with
              | Ir.Phi (d, ty, incoming) ->
                  let bits = bits_of ty in
                  let v =
                    List.fold_left
                      (fun acc (p, v) ->
                        match refined_out p with
                        | Some out -> Interval.join acc (value_range out v)
                        | None -> acc)
                      Interval.Bot incoming
                  in
                  let v =
                    if Interval.is_bot v then Interval.top_for_bits bits else v
                  in
                  (* widening against the previous value at this phi *)
                  let prev =
                    match Hashtbl.find_opt block_in bid with
                    | Some old -> lookup old d
                    | None -> Interval.Bot
                  in
                  let n = try Hashtbl.find visits (bid, d) with Not_found -> 0 in
                  Hashtbl.replace visits (bid, d) (n + 1);
                  let v =
                    if n > widen_threshold then Interval.widen ~bits prev v else v
                  in
                  IMap.add d (Interval.meet (Interval.join prev v) (Interval.top_for_bits bits)) env
              | _ -> env)
            in_env b.Ir.insts
        in
        Hashtbl.replace block_in bid in_env;
        let out_env =
          List.fold_left
            (fun env i ->
              match i with
              | Ir.Phi _ -> env
              | i -> transfer_inst ~deftbl env i)
            in_env b.Ir.insts
        in
        let same =
          match Hashtbl.find_opt block_out bid with
          | Some old -> IMap.equal Interval.equal old out_env
          | None -> false
        in
        if not same then begin
          Hashtbl.replace block_out bid out_env;
          changed := true
        end)
      order
  done;
  let final =
    Hashtbl.fold
      (fun _ env acc -> IMap.union (fun _ a b -> Some (Interval.join a b)) acc env)
      block_out IMap.empty
  in
  { block_in; reg_out = final; deftbl }
