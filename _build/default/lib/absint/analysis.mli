(** Flow-sensitive interval analysis over SSA IR, with branch and select
    refinement and widening — the "simple verification tool" of the paper's
    §2.1. *)

module IMap : Map.S with type key = int

type env = Interval.t IMap.t

val lookup : env -> int -> Interval.t
val value_range : env -> Overify_ir.Ir.value -> Interval.t

val transfer_inst :
  ?deftbl:(int, Overify_ir.Ir.inst) Hashtbl.t -> env -> Overify_ir.Ir.inst -> env
(** Abstract transfer of one instruction.  With [deftbl], selects refine
    their arms under the condition (captures min/max idioms). *)

val refine :
  (int, Overify_ir.Ir.inst) Hashtbl.t -> env -> int -> taken:bool -> env
(** Refine ranges knowing the boolean register is [taken]; looks through
    negations; register-vs-register compares use the right side's bounds as
    sound pseudo-constants. *)

type result = {
  block_in : (int, env) Hashtbl.t;  (** environment at each block entry *)
  reg_out : env;                    (** final joined environment *)
  deftbl : (int, Overify_ir.Ir.inst) Hashtbl.t;
}

val analyze : Overify_ir.Ir.func -> result
(** Run to fixpoint (widening bounds the iteration count). *)
