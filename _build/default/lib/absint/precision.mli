(** Precision metrics for the interval analysis — the measurable version of
    the paper's §2.1 claim that compiler transformations increase simple
    tools' precision. *)

type counts = {
  branches : int;
  branches_decided : int;  (** condition proven constant at its branch *)
  geps : int;              (** address computations with a known extent *)
  geps_proved : int;       (** … proven in bounds at their program point *)
  regs : int;
  regs_bounded : int;      (** range strictly tighter than the type allows *)
}

val zero : counts
val add : counts -> counts -> counts

val of_function : Overify_ir.Ir.func -> counts
val of_module : Overify_ir.Ir.modul -> counts
(** Aggregates over the functions reachable from [main]. *)

val ratio : int -> int -> float
(** [ratio num den], treating 0/0 as 1. *)
