(** The interval abstract domain: signed ranges [lo, hi] over [int64], plus
    bottom.  Transfer functions are deliberately coarse — this models the
    "simple verification tool" of the paper's §2.1. *)

type t =
  | Bot
  | Range of int64 * int64  (** inclusive; invariant lo <= hi *)

val top_for_bits : int -> t
(** Full signed range of an n-bit integer. *)

val unsigned_for_bits : int -> t
(** [0, 2^n - 1], the range of a zero-extended n-bit value. *)

val const : int64 -> t

val bool_range : t
(** The range [0, 1]. *)

val is_bot : t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val widen : bits:int -> t -> t -> t
(** Escape ascending chains: unstable bounds jump to the type extremes. *)

val singleton : t -> int64 option
(** The value, when the range is a single point. *)

(** Sound over-approximations of the IR's arithmetic (two's complement,
    [bits]-wide).  Imprecise cases return [top_for_bits]. *)

val add : bits:int -> t -> t -> t
val sub : bits:int -> t -> t -> t
val neg : bits:int -> t -> t
val mul : bits:int -> t -> t -> t
val div : bits:int -> t -> t -> t
val rem : bits:int -> t -> t -> t
val band : bits:int -> t -> t -> t
val bor : bits:int -> t -> t -> t
val shl : bits:int -> t -> t -> t
val lshr : bits:int -> t -> t -> t

val to_string : t -> string
