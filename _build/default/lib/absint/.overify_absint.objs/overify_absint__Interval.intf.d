lib/absint/interval.mli:
