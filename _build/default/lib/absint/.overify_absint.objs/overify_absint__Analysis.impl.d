lib/absint/analysis.ml: Hashtbl Int Int64 Interval List Map Overify_ir
