lib/absint/analysis.mli: Hashtbl Interval Map Overify_ir
