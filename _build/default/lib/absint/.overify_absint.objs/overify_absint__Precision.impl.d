lib/absint/precision.ml: Analysis Hashtbl Int64 Interval List Overify_ir
