lib/absint/precision.mli: Overify_ir
