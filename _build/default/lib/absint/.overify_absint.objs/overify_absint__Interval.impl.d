lib/absint/interval.ml: Int64 List Printf
