(** The interval abstract domain: signed 64-bit ranges [lo, hi], with
    bottom for unreachable values.  Transfer functions are deliberately
    coarse — this models the paper's "simple verification tools that employ
    coarse-grained abstractions" (§2.1), whose precision depends heavily on
    how the compiler presents the program. *)

type t =
  | Bot
  | Range of int64 * int64  (** inclusive; invariant lo <= hi *)

let top_for_bits bits =
  if bits >= 64 then Range (Int64.min_int, Int64.max_int)
  else
    Range
      ( Int64.neg (Int64.shift_left 1L (bits - 1)),
        Int64.sub (Int64.shift_left 1L (bits - 1)) 1L )

(** Unsigned view for zero-extended values of [bits] source bits. *)
let unsigned_for_bits bits =
  if bits >= 64 then Range (Int64.min_int, Int64.max_int)
  else Range (0L, Int64.sub (Int64.shift_left 1L bits) 1L)

let const v = Range (v, v)
let bool_range = Range (0L, 1L)

let is_bot = function Bot -> true | Range _ -> false

let join a b =
  match (a, b) with
  | (Bot, x) | (x, Bot) -> x
  | (Range (l1, h1), Range (l2, h2)) -> Range (min l1 l2, max h1 h2)

let meet a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      let lo = max l1 l2 and hi = min h1 h2 in
      if lo > hi then Bot else Range (lo, hi)

let equal a b =
  match (a, b) with
  | (Bot, Bot) -> true
  | (Range (l1, h1), Range (l2, h2)) -> l1 = l2 && h1 = h2
  | _ -> false

let leq a b =
  match (a, b) with
  | (Bot, _) -> true
  | (_, Bot) -> false
  | (Range (l1, h1), Range (l2, h2)) -> l1 >= l2 && h1 <= h2

(** Widening: escape ascending chains by jumping unstable bounds to the
    type's extremes. *)
let widen ~bits old_ new_ =
  match (old_, new_) with
  | (Bot, x) -> x
  | (x, Bot) -> x
  | (Range (l1, h1), Range (l2, h2)) ->
      let (tl, th) =
        match top_for_bits bits with
        | Range (a, b) -> (a, b)
        | Bot -> (Int64.min_int, Int64.max_int)
      in
      Range ((if l2 < l1 then tl else l1), if h2 > h1 then th else h1)

(* checked 64-bit arithmetic: saturate to Top on overflow *)
let add_sat a b =
  let r = Int64.add a b in
  if (a > 0L && b > 0L && r < 0L) || (a < 0L && b < 0L && r >= 0L) then None
  else Some r

let singleton = function
  | Range (l, h) when l = h -> Some l
  | _ -> None

(* ------------- transfer functions ------------- *)

let clamp ~bits r = meet r (top_for_bits bits)

let add ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) -> (
      match (add_sat l1 l2, add_sat h1 h2) with
      | (Some lo, Some hi) ->
          (* result may wrap at the type boundary: fall back to Top then *)
          if leq (Range (lo, hi)) (top_for_bits bits) then Range (lo, hi)
          else top_for_bits bits
      | _ -> top_for_bits bits)

let neg ~bits = function
  | Bot -> Bot
  | Range (l, h) ->
      if l = Int64.min_int then top_for_bits bits
      else clamp ~bits (Range (Int64.neg h, Int64.neg l))

let sub ~bits a b = add ~bits a (neg ~bits b)

let mul ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      let safe v = Int64.abs v < 0x40000000L in
      if safe l1 && safe h1 && safe l2 && safe h2 then begin
        let products =
          [ Int64.mul l1 l2; Int64.mul l1 h2; Int64.mul h1 l2; Int64.mul h1 h2 ]
        in
        let lo = List.fold_left min (List.hd products) products in
        let hi = List.fold_left max (List.hd products) products in
        if leq (Range (lo, hi)) (top_for_bits bits) then Range (lo, hi)
        else top_for_bits bits
      end
      else top_for_bits bits

let div ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      if l2 > 0L then
        (* positive divisor: magnitude shrinks *)
        let candidates =
          [ Int64.div l1 l2; Int64.div l1 h2; Int64.div h1 l2; Int64.div h1 h2 ]
        in
        clamp ~bits
          (Range
             ( List.fold_left min (List.hd candidates) candidates,
               List.fold_left max (List.hd candidates) candidates ))
      else top_for_bits bits

let rem ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, _), Range (l2, h2)) ->
      if l2 > 0L && l1 >= 0L then Range (0L, Int64.sub h2 1L)
      else top_for_bits bits

let band ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      (* non-negative & non-negative stays within the smaller bound *)
      if l1 >= 0L && l2 >= 0L then Range (0L, min h1 h2)
      else if l2 >= 0L then Range (0L, h2)   (* masking with a constant *)
      else if l1 >= 0L then Range (0L, h1)
      else top_for_bits bits

let bor ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      if l1 >= 0L && l2 >= 0L then begin
        (* result < next power of two above max hi *)
        let m = max h1 h2 in
        let rec ceil_pow2 v acc = if acc > v then acc else ceil_pow2 v (Int64.mul acc 2L) in
        if m < 0x4000000000000000L then
          Range (max l1 l2, Int64.sub (ceil_pow2 m 1L) 1L)
        else top_for_bits bits
      end
      else top_for_bits bits

let shl ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      if l1 >= 0L && l2 >= 0L && h2 < 32L && h1 < 0x100000000L then
        clamp ~bits
          (Range
             ( Int64.shift_left l1 (Int64.to_int l2),
               Int64.shift_left h1 (Int64.to_int h2) ))
      else top_for_bits bits

let lshr ~bits a b =
  match (a, b) with
  | (Bot, _) | (_, Bot) -> Bot
  | (Range (l1, h1), Range (l2, h2)) ->
      if l1 >= 0L && l2 >= 0L && h2 < 64L then
        Range
          ( Int64.shift_right_logical l1 (Int64.to_int h2),
            Int64.shift_right_logical h1 (Int64.to_int l2) )
      else if l2 > 0L then Range (0L, Int64.max_int)  (* sign bit cleared *)
      else top_for_bits bits

let to_string = function
  | Bot -> "bot"
  | Range (l, h) when l = h -> Int64.to_string l
  | Range (l, h) -> Printf.sprintf "[%Ld,%Ld]" l h
