(** Control-flow graph queries over a function's blocks. *)

open Ir

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

let succs_of_term = function
  | Br l -> [ l ]
  | Cbr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ | Unreachable -> []

let succs (b : block) = succs_of_term b.term

(** Predecessor table: block id -> list of predecessor block ids, in
    iteration order of [fn.blocks]. *)
let preds (fn : func) : (int, int list) Hashtbl.t =
  let tbl = Hashtbl.create (List.length fn.blocks) in
  List.iter (fun b -> Hashtbl.replace tbl b.bid []) fn.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some l -> Hashtbl.replace tbl s (b.bid :: l)
          | None -> ())
        (succs b))
    fn.blocks;
  Hashtbl.iter (fun k l -> Hashtbl.replace tbl k (List.rev l)) tbl;
  tbl

let preds_of tbl bid = try Hashtbl.find tbl bid with Not_found -> []

(** Blocks reachable from the entry. *)
let reachable (fn : func) : IntSet.t =
  let btbl = block_tbl fn in
  let seen = ref IntSet.empty in
  let rec go bid =
    if not (IntSet.mem bid !seen) then begin
      seen := IntSet.add bid !seen;
      match Hashtbl.find_opt btbl bid with
      | Some b -> List.iter go (succs b)
      | None -> ()
    end
  in
  go (entry fn).bid;
  !seen

(** Postorder of reachable blocks (entry last). *)
let postorder (fn : func) : int list =
  let btbl = block_tbl fn in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      (match Hashtbl.find_opt btbl bid with
      | Some b -> List.iter go (succs b)
      | None -> ());
      order := bid :: !order
    end
  in
  go (entry fn).bid;
  List.rev !order

(** Reverse postorder of reachable blocks (entry first). *)
let rpo (fn : func) : int list = List.rev (postorder fn)

(** Drop blocks not reachable from the entry, and prune phi incoming entries
    coming from removed blocks. *)
let remove_unreachable (fn : func) : func * bool =
  let live = reachable fn in
  if IntSet.cardinal live = List.length fn.blocks then (fn, false)
  else
    let blocks = List.filter (fun b -> IntSet.mem b.bid live) fn.blocks in
    let prune_phi = function
      | Phi (d, ty, incoming) ->
          Phi (d, ty, List.filter (fun (p, _) -> IntSet.mem p live) incoming)
      | i -> i
    in
    let blocks =
      List.map (fun b -> { b with insts = List.map prune_phi b.insts }) blocks
    in
    ({ fn with blocks }, true)

(** Replace successor [from_l] with [to_l] in a terminator. *)
let redirect_term from_l to_l = function
  | Br l when l = from_l -> Br to_l
  | Cbr (c, t, e) when t = from_l || e = from_l ->
      Cbr (c, (if t = from_l then to_l else t), if e = from_l then to_l else e)
  | t -> t

(** In block [bid]'s phis, retarget incoming edges from [from_pred] to
    [to_pred]. *)
let retarget_phis (b : block) ~from_pred ~to_pred =
  let fix = function
    | Phi (d, ty, incoming) ->
        Phi
          ( d,
            ty,
            List.map
              (fun (p, v) -> ((if p = from_pred then to_pred else p), v))
              incoming )
    | i -> i
  in
  { b with insts = List.map fix b.insts }
