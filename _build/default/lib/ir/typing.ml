(** Register typing environment for a function.

    Register types are implicit in instruction definitions; this module
    materializes them once per function for passes that need to query the
    type of an arbitrary operand. *)

type t = (int, Ir.ty) Hashtbl.t

let of_func (fn : Ir.func) : t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (r, ty) -> Hashtbl.replace tbl r ty) fn.params;
  Ir.iter_insts
    (fun _blk inst ->
      match Ir.def_of_inst inst with
      | Some d -> Hashtbl.replace tbl d (Ir.ty_of_inst inst)
      | None -> ())
    fn;
  tbl

let reg_ty (t : t) r =
  match Hashtbl.find_opt t r with
  | Some ty -> ty
  | None -> invalid_arg (Printf.sprintf "Typing.reg_ty: unknown register %%%d" r)

let value_ty (t : t) = function
  | Ir.Imm (_, ty) -> ty
  | Ir.Reg r -> reg_ty t r
  | Ir.Glob _ -> Ir.Ptr
