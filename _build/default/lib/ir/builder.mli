(** Imperative function builder used by the frontend lowering and by tests
    that construct IR by hand.  Blocks appear in creation order; the entry
    is created (and selected) by {!create}. *)

type t

val create : name:string -> params:Ir.ty list -> ret:Ir.ty -> t
val param_regs : t -> int list
val fresh : t -> int

val new_block : t -> int
(** Create a new empty block; does not change the insertion point. *)

val switch_to : t -> int -> unit
val current : t -> int
val is_terminated : t -> bool

val add_inst : t -> Ir.inst -> unit
(** Append at the insertion point; fails on a terminated block. *)

val term : t -> Ir.term -> unit
(** Set the current block's terminator; no-op if already terminated (handy
    after [return]/[break] statements). *)

(** Convenience constructors; each appends and returns the defined value. *)

val bin : t -> Ir.binop -> Ir.ty -> Ir.value -> Ir.value -> Ir.value
val cmp : t -> Ir.cmp -> Ir.ty -> Ir.value -> Ir.value -> Ir.value
val select : t -> Ir.ty -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val cast : t -> Ir.castop -> Ir.ty -> Ir.value -> Ir.ty -> Ir.value
val alloca : t -> Ir.ty -> int -> Ir.value
val load : t -> Ir.ty -> Ir.value -> Ir.value
val store : t -> Ir.ty -> Ir.value -> Ir.value -> unit
val gep : t -> Ir.value -> int -> Ir.value -> Ir.value
val call : t -> Ir.ty -> string -> Ir.value list -> Ir.value option

val entry_alloca : t -> Ir.ty -> int -> Ir.value
(** Stack storage hoisted into the entry block regardless of the insertion
    point — the memory-form invariant's only cross-block registers. *)

val set_meta : t -> string -> string -> unit

val finish : t -> Ir.func
(** Fails if any created block lacks a terminator. *)
