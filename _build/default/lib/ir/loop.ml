(** Natural-loop detection.

    A back edge is an edge [u -> h] where [h] dominates [u]; the natural loop
    of that edge is [h] plus every block that can reach [u] without passing
    through [h].  Loops sharing a header are merged, as in LLVM's LoopInfo. *)

module IntSet = Cfg.IntSet

type t = {
  header : int;
  latches : int list;       (** sources of back edges into [header] *)
  blocks : IntSet.t;        (** includes the header *)
  exiting : int list;       (** blocks inside with a successor outside *)
  exits : int list;         (** blocks outside with a predecessor inside *)
  preheader : int option;   (** unique out-of-loop predecessor of the header,
                                if it has the header as its only successor *)
}

let mem l bid = IntSet.mem bid l.blocks

(** All natural loops of [fn], outermost first (by increasing block count is
    not guaranteed; order is by header RPO). *)
let find (fn : Ir.func) : t list =
  let dom = Dom.compute fn in
  let preds = Cfg.preds fn in
  let btbl = Ir.block_tbl fn in
  let reachable = Cfg.reachable fn in
  (* collect back edges *)
  let back = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      if IntSet.mem b.bid reachable then
        List.iter
          (fun s ->
            if Dom.dominates dom s b.bid then
              Hashtbl.replace back s
                (b.bid :: (try Hashtbl.find back s with Not_found -> [])))
          (Cfg.succs b))
    fn.blocks;
  let loops = ref [] in
  Hashtbl.iter
    (fun header latches ->
      (* blocks: reverse reachability from latches, stopping at header *)
      let set = ref (IntSet.singleton header) in
      let rec go bid =
        if not (IntSet.mem bid !set) then begin
          set := IntSet.add bid !set;
          List.iter go (Cfg.preds_of preds bid)
        end
      in
      List.iter go latches;
      let blocks = !set in
      let exiting = ref [] and exits = ref IntSet.empty in
      IntSet.iter
        (fun bid ->
          match Hashtbl.find_opt btbl bid with
          | None -> ()
          | Some b ->
              let outside =
                List.filter (fun s -> not (IntSet.mem s blocks)) (Cfg.succs b)
              in
              if outside <> [] then begin
                exiting := bid :: !exiting;
                List.iter (fun s -> exits := IntSet.add s !exits) outside
              end)
        blocks;
      let outside_preds =
        List.filter (fun p -> not (IntSet.mem p blocks))
          (Cfg.preds_of preds header)
      in
      let preheader =
        match outside_preds with
        | [ p ] -> (
            match Hashtbl.find_opt btbl p with
            | Some pb when Cfg.succs pb = [ header ] -> Some p
            | _ -> None)
        | _ -> None
      in
      loops :=
        {
          header;
          latches;
          blocks;
          exiting = List.rev !exiting;
          exits = IntSet.elements !exits;
          preheader;
        }
        :: !loops)
    back;
  (* order by header RPO index for determinism *)
  let idx bid = try Hashtbl.find dom.Dom.rpo_index bid with Not_found -> max_int in
  List.sort (fun a b -> compare (idx a.header) (idx b.header)) !loops

(** Loop-nesting depth of each block (0 = not in any loop). *)
let depth_map (fn : Ir.func) : (int, int) Hashtbl.t =
  let loops = find fn in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace tbl b.bid 0) fn.blocks;
  List.iter
    (fun l ->
      IntSet.iter
        (fun bid ->
          Hashtbl.replace tbl bid
            (1 + (try Hashtbl.find tbl bid with Not_found -> 0)))
        l.blocks)
    loops;
  tbl

(** Innermost loop containing [bid], if any (smallest block set wins). *)
let innermost_containing loops bid =
  List.fold_left
    (fun acc l ->
      if mem l bid then
        match acc with
        | Some best when IntSet.cardinal best.blocks <= IntSet.cardinal l.blocks
          ->
            acc
        | _ -> Some l
      else acc)
    None loops
