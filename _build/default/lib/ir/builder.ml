(** Imperative function builder used by the frontend lowering and by tests
    that construct IR by hand. *)

open Ir

type bstate = {
  mutable b_insts : inst list;  (* reversed *)
  mutable b_term : term option;
}

type t = {
  name : string;
  ret : ty;
  params : (int * ty) list;
  mutable counter : int;
  mutable order : int list;  (* block ids, reversed creation order *)
  tbl : (int, bstate) Hashtbl.t;
  mutable cur : int;  (* insertion block *)
  mutable meta : (string * string) list;
  mutable entry_allocas : inst list;  (* reversed; prepended to entry *)
}

(** Create a builder; [params] gives parameter types, their registers are
    allocated here and can be read back with {!param_regs}.  The entry block
    is created and selected. *)
let create ~name ~params ~ret =
  let counter = ref 0 in
  let fresh () = let v = !counter in incr counter; v in
  let params = List.map (fun ty -> (fresh (), ty)) params in
  let entry = fresh () in
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl entry { b_insts = []; b_term = None };
  {
    name;
    ret;
    params;
    counter = !counter;
    order = [ entry ];
    tbl;
    cur = entry;
    meta = [];
    entry_allocas = [];
  }

let param_regs t = List.map fst t.params

let fresh t = let v = t.counter in t.counter <- v + 1; v

(** Create a new (empty, unterminated) block and return its label; does not
    change the insertion point. *)
let new_block t =
  let l = fresh t in
  Hashtbl.replace t.tbl l { b_insts = []; b_term = None };
  t.order <- l :: t.order;
  l

let switch_to t l =
  if not (Hashtbl.mem t.tbl l) then invalid_arg "Builder.switch_to: no block";
  t.cur <- l

let current t = t.cur

let is_terminated t =
  match (Hashtbl.find t.tbl t.cur).b_term with Some _ -> true | None -> false

let add_inst t i =
  let bs = Hashtbl.find t.tbl t.cur in
  match bs.b_term with
  | Some _ -> invalid_arg "Builder.add_inst: block already terminated"
  | None -> bs.b_insts <- i :: bs.b_insts

(** Set the current block's terminator; no-op if already terminated (handy
    after [break]/[return] statements). *)
let term t tm =
  let bs = Hashtbl.find t.tbl t.cur in
  match bs.b_term with Some _ -> () | None -> bs.b_term <- Some tm

(* convenience instruction constructors, each returns the defined value *)

let bin t op ty a b = let d = fresh t in add_inst t (Bin (d, op, ty, a, b)); Reg d
let cmp t op ty a b = let d = fresh t in add_inst t (Cmp (d, op, ty, a, b)); Reg d
let select t ty c a b =
  let d = fresh t in add_inst t (Select (d, ty, c, a, b)); Reg d
let cast t op to_ty v from_ty =
  let d = fresh t in add_inst t (Cast (d, op, to_ty, v, from_ty)); Reg d
let alloca t ty n = let d = fresh t in add_inst t (Alloca (d, ty, n)); Reg d
let load t ty p = let d = fresh t in add_inst t (Load (d, ty, p)); Reg d
let store t ty v p = add_inst t (Store (ty, v, p))
let gep t base scale idx =
  let d = fresh t in add_inst t (Gep (d, base, scale, idx)); Reg d
let call t ty fn args =
  if ty = Void then begin add_inst t (Call (None, Void, fn, args)); None end
  else begin
    let d = fresh t in
    add_inst t (Call (Some d, ty, fn, args));
    Some (Reg d)
  end

(** Allocate stack storage hoisted into the entry block, regardless of the
    current insertion point.  All frontend allocas go through this so the
    memory-form invariant holds: the only registers live across block
    boundaries are entry-block allocas. *)
let entry_alloca t ty n =
  let d = fresh t in
  t.entry_allocas <- Alloca (d, ty, n) :: t.entry_allocas;
  Reg d

let set_meta t k v = t.meta <- (k, v) :: t.meta

(** Finalize into a function; every created block must be terminated. *)
let finish t : func =
  let blocks =
    List.rev_map
      (fun bid ->
        let bs = Hashtbl.find t.tbl bid in
        match bs.b_term with
        | Some tm -> { bid; insts = List.rev bs.b_insts; term = tm }
        | None ->
            invalid_arg
              (Printf.sprintf "Builder.finish: block L%d of %s unterminated"
                 bid t.name))
      t.order
  in
  let blocks =
    match blocks with
    | e :: rest ->
        { e with insts = List.rev_append t.entry_allocas e.insts } :: rest
    | [] -> blocks
  in
  {
    fname = t.name;
    params = t.params;
    ret = t.ret;
    blocks;
    next = t.counter;
    fmeta = t.meta;
  }
