(** Dominator tree and dominance frontiers, computed with the iterative
    algorithm of Cooper, Harvey and Kennedy ("A simple, fast dominance
    algorithm"). *)

module IntSet = Cfg.IntSet

type t = {
  idom : (int, int) Hashtbl.t;        (** immediate dominator; entry absent *)
  children : (int, int list) Hashtbl.t;
  rpo_index : (int, int) Hashtbl.t;
  entry : int;
  tin : (int, int) Hashtbl.t;   (** Euler-tour entry time in the dom tree *)
  tout : (int, int) Hashtbl.t;  (** … exit time: O(1) dominance queries *)
}

let compute (fn : Ir.func) : t =
  let order = Cfg.rpo fn in
  let n = List.length order in
  let index = Hashtbl.create n in
  List.iteri (fun i bid -> Hashtbl.replace index bid i) order;
  let preds = Cfg.preds fn in
  let entry = (Ir.entry fn).bid in
  (* idom.(i) over rpo indices; -1 = undefined *)
  let arr = Array.of_list order in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do a := idom.(!a) done;
      while !b > !a do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun i bid ->
        if i > 0 then begin
          let ps =
            List.filter_map (fun p -> Hashtbl.find_opt index p)
              (Cfg.preds_of preds bid)
          in
          let processed = List.filter (fun p -> idom.(p) >= 0) ps in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
        end)
      order
  done;
  let idom_tbl = Hashtbl.create n in
  let children = Hashtbl.create n in
  List.iter (fun bid -> Hashtbl.replace children bid []) order;
  Array.iteri
    (fun i bid ->
      if i > 0 && idom.(i) >= 0 then begin
        let parent = arr.(idom.(i)) in
        Hashtbl.replace idom_tbl bid parent;
        Hashtbl.replace children parent
          (bid :: (try Hashtbl.find children parent with Not_found -> []))
      end)
    arr;
  (* Euler-tour numbering of the dominator tree for O(1) queries; the tree
     can be thousands deep after heavy peeling, so use an explicit stack *)
  let tin = Hashtbl.create n and tout = Hashtbl.create n in
  let clock = ref 0 in
  let stack = ref [ `Enter entry ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | `Enter bid :: rest ->
        incr clock;
        Hashtbl.replace tin bid !clock;
        stack :=
          List.map (fun c -> `Enter c)
            (try Hashtbl.find children bid with Not_found -> [])
          @ (`Leave bid :: rest)
    | `Leave bid :: rest ->
        incr clock;
        Hashtbl.replace tout bid !clock;
        stack := rest
  done;
  { idom = idom_tbl; children; rpo_index = index; entry; tin; tout }

let idom t bid = Hashtbl.find_opt t.idom bid

let children t bid = try Hashtbl.find t.children bid with Not_found -> []

(** Does [a] dominate [b]?  (Reflexive; O(1) via Euler-tour intervals.) *)
let dominates t a b =
  if a = b then true
  else
    match
      ( Hashtbl.find_opt t.tin a, Hashtbl.find_opt t.tout a,
        Hashtbl.find_opt t.tin b )
    with
    | (Some ia, Some oa, Some ib) -> ia <= ib && ib <= oa
    | _ -> false

(** Dominance frontier of every block. *)
let frontiers (fn : Ir.func) (t : t) : (int, IntSet.t) Hashtbl.t =
  let preds = Cfg.preds fn in
  let df = Hashtbl.create 16 in
  let add bid x =
    let cur = try Hashtbl.find df bid with Not_found -> IntSet.empty in
    Hashtbl.replace df bid (IntSet.add x cur)
  in
  List.iter
    (fun (b : Ir.block) ->
      let ps = Cfg.preds_of preds b.bid in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            if Hashtbl.mem t.rpo_index p then begin
              (* walk up from each predecessor to idom(b), adding b to the
                 frontier of every block passed; note the walk must NOT stop
                 at b itself — a loop header belongs to its own frontier *)
              let runner = ref p in
              let stop = idom t b.bid in
              let continue = ref true in
              while !continue do
                if Some !runner = stop then continue := false
                else begin
                  add !runner b.bid;
                  match idom t !runner with
                  | Some p' -> runner := p'
                  | None -> continue := false
                end
              done
            end)
          ps)
    fn.blocks;
  df

let frontier_of df bid =
  try Hashtbl.find df bid with Not_found -> IntSet.empty
