(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy). *)

module IntSet = Cfg.IntSet

type t = {
  idom : (int, int) Hashtbl.t;        (** immediate dominator; entry absent *)
  children : (int, int list) Hashtbl.t;
  rpo_index : (int, int) Hashtbl.t;
  entry : int;
  tin : (int, int) Hashtbl.t;   (** Euler-tour entry time in the dom tree *)
  tout : (int, int) Hashtbl.t;  (** … exit time: O(1) dominance queries *)
}

val compute : Ir.func -> t

val idom : t -> int -> int option
val children : t -> int -> int list

val dominates : t -> int -> int -> bool
(** Does the first block dominate the second?  Reflexive. *)

val frontiers : Ir.func -> t -> (int, IntSet.t) Hashtbl.t
(** Dominance frontier of every block.  A loop header belongs to its own
    frontier (this is what places the phis for back edges). *)

val frontier_of : (int, IntSet.t) Hashtbl.t -> int -> IntSet.t
