(** LLVM-flavoured textual printing of the IR, for debugging, tests and the
    [--emit-ir] mode of the CLI. *)

open Ir

let rec string_of_ty = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Ptr -> "ptr"
  | Void -> "void"
  | Arr (t, n) -> Printf.sprintf "[%d x %s]" n (string_of_ty t)

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let string_of_cmp = function
  | Eq -> "eq" | Ne -> "ne"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let string_of_castop = function
  | Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc"

let string_of_value = function
  | Imm (v, ty) ->
      if ty = I1 then if v = 0L then "false" else "true"
      else Int64.to_string (signed_of ty v)
  | Reg r -> Printf.sprintf "%%%d" r
  | Glob g -> "@" ^ g

let sv = string_of_value
let sty = string_of_ty

let string_of_inst inst =
  match inst with
  | Bin (d, op, ty, a, b) ->
      Printf.sprintf "%%%d = %s %s %s, %s" d (string_of_binop op) (sty ty)
        (sv a) (sv b)
  | Cmp (d, op, ty, a, b) ->
      Printf.sprintf "%%%d = icmp %s %s %s, %s" d (string_of_cmp op) (sty ty)
        (sv a) (sv b)
  | Select (d, ty, c, a, b) ->
      Printf.sprintf "%%%d = select %s, %s %s, %s" d (sv c) (sty ty) (sv a)
        (sv b)
  | Cast (d, op, to_ty, v, from_ty) ->
      Printf.sprintf "%%%d = %s %s %s to %s" d (string_of_castop op)
        (sty from_ty) (sv v) (sty to_ty)
  | Alloca (d, ty, n) ->
      if n = 1 then Printf.sprintf "%%%d = alloca %s" d (sty ty)
      else Printf.sprintf "%%%d = alloca %s, %d" d (sty ty) n
  | Load (d, ty, p) -> Printf.sprintf "%%%d = load %s, %s" d (sty ty) (sv p)
  | Store (ty, v, p) ->
      Printf.sprintf "store %s %s, %s" (sty ty) (sv v) (sv p)
  | Gep (d, base, scale, idx) ->
      Printf.sprintf "%%%d = gep %s, %d * %s" d (sv base) scale (sv idx)
  | Call (Some d, ty, fn, args) ->
      Printf.sprintf "%%%d = call %s @%s(%s)" d (sty ty) fn
        (String.concat ", " (List.map sv args))
  | Call (None, _, fn, args) ->
      Printf.sprintf "call void @%s(%s)" fn
        (String.concat ", " (List.map sv args))
  | Phi (d, ty, incoming) ->
      Printf.sprintf "%%%d = phi %s %s" d (sty ty)
        (String.concat ", "
           (List.map (fun (p, v) -> Printf.sprintf "[L%d: %s]" p (sv v))
              incoming))

let string_of_term = function
  | Br l -> Printf.sprintf "br L%d" l
  | Cbr (c, t, e) -> Printf.sprintf "br %s, L%d, L%d" (sv c) t e
  | Ret None -> "ret void"
  | Ret (Some v) -> Printf.sprintf "ret %s" (sv v)
  | Unreachable -> "unreachable"

let pp_block fmt (b : block) =
  Format.fprintf fmt "L%d:@." b.bid;
  List.iter (fun i -> Format.fprintf fmt "  %s@." (string_of_inst i)) b.insts;
  Format.fprintf fmt "  %s@." (string_of_term b.term)

let pp_func fmt (fn : func) =
  let params =
    String.concat ", "
      (List.map (fun (r, ty) -> Printf.sprintf "%s %%%d" (sty ty) r) fn.params)
  in
  Format.fprintf fmt "define %s @%s(%s) {@." (sty fn.ret) fn.fname params;
  List.iter (pp_block fmt) fn.blocks;
  Format.fprintf fmt "}@."

let pp_global fmt (g : global) =
  Format.fprintf fmt "@%s = %s global [%d x i8]@." g.gname
    (if g.gconst then "constant" else "")
    g.gsize

let pp_modul fmt (m : modul) =
  List.iter (pp_global fmt) m.globals;
  List.iter (fun f -> Format.fprintf fmt "@.%a" pp_func f) m.funcs

let func_to_string fn = Format.asprintf "%a" pp_func fn
let modul_to_string m = Format.asprintf "%a" pp_modul m
