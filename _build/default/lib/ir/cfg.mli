(** Control-flow graph queries over a function's blocks. *)

module IntSet : Set.S with type elt = int
module IntMap : Map.S with type key = int

val succs_of_term : Ir.term -> int list
(** Successor labels; a same-target [Cbr] is reported once. *)

val succs : Ir.block -> int list

val preds : Ir.func -> (int, int list) Hashtbl.t
(** Predecessor table: block id -> predecessors, in block order. *)

val preds_of : (int, int list) Hashtbl.t -> int -> int list

val reachable : Ir.func -> IntSet.t
(** Blocks reachable from the entry. *)

val postorder : Ir.func -> int list
val rpo : Ir.func -> int list
(** Reverse postorder of reachable blocks (entry first). *)

val remove_unreachable : Ir.func -> Ir.func * bool
(** Drop unreachable blocks and prune phi entries from removed edges. *)

val redirect_term : int -> int -> Ir.term -> Ir.term
(** [redirect_term from_l to_l t] retargets branches to [from_l]. *)

val retarget_phis : Ir.block -> from_pred:int -> to_pred:int -> Ir.block
(** Rewrite a block's phi incoming labels for a moved edge. *)
