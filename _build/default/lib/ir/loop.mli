(** Natural-loop detection.  A back edge is an edge [u -> h] where [h]
    dominates [u]; loops sharing a header are merged, as in LLVM LoopInfo. *)

module IntSet = Cfg.IntSet

type t = {
  header : int;
  latches : int list;       (** sources of back edges into [header] *)
  blocks : IntSet.t;        (** includes the header *)
  exiting : int list;       (** blocks inside with a successor outside *)
  exits : int list;         (** blocks outside with a predecessor inside *)
  preheader : int option;   (** unique out-of-loop predecessor of the header,
                                if it branches only to the header *)
}

val mem : t -> int -> bool

val find : Ir.func -> t list
(** All natural loops, ordered by header RPO index. *)

val depth_map : Ir.func -> (int, int) Hashtbl.t
(** Loop-nesting depth of each block (0 = not in any loop). *)

val innermost_containing : t list -> int -> t option
