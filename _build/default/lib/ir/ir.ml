(** Core intermediate representation.

    The IR is deliberately close to LLVM bitcode, which is what the paper's
    prototype operates on: typed virtual registers, basic blocks ending in a
    single terminator, [phi] nodes for SSA form, [alloca]/[load]/[store] for
    stack memory, and an address-computation instruction ([Gep]).

    Two forms of the same IR are used by the pipeline:
    - {e memory form}, produced by the frontend: every value that crosses a
      basic-block boundary lives in an alloca, and there are no phis.  Block
      cloning (inlining, unswitching, unrolling) is trivially sound here.
    - {e SSA form}, produced by [mem2reg]: promoted allocas become registers
      joined by phis; scalar optimizations run on this form.

    Registers and block labels share one per-function integer id space drawn
    from [func.next]. *)

(** Scalar and aggregate types.  Pointers are opaque (untyped), as in modern
    LLVM; memory instructions carry the accessed type. *)
type ty =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Ptr
  | Void
  | Arr of ty * int  (** element type, element count; allocas/globals only *)

type binop =
  | Add | Sub | Mul
  | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type castop =
  | Zext   (** zero-extend to a wider type *)
  | Sext   (** sign-extend to a wider type *)
  | Trunc  (** truncate to a narrower type *)

(** Operand values.  Integer immediates are stored {e normalized}: the bit
    pattern is truncated to the width of [ty] and kept zero-extended inside
    the [int64].  Use {!norm} to normalize and {!signed_of} to read back a
    signed interpretation. *)
type value =
  | Imm of int64 * ty
  | Reg of int
  | Glob of string  (** address of the named global *)

type inst =
  | Bin of int * binop * ty * value * value
  | Cmp of int * cmp * ty * value * value      (** result has type [I1] *)
  | Select of int * ty * value * value * value (** [dst = sel cond, tv, fv] *)
  | Cast of int * castop * ty * value * ty     (** [dst = op to_ty, v, from_ty] *)
  | Alloca of int * ty * int                   (** element type, element count *)
  | Load of int * ty * value
  | Store of ty * value * value                (** [store ty v, ptr] *)
  | Gep of int * value * int * value           (** [dst = base + scale * idx] (bytes) *)
  | Call of int option * ty * string * value list
  | Phi of int * ty * (int * value) list       (** incoming (pred label, value) *)

type term =
  | Br of int
  | Cbr of value * int * int  (** condition (I1), then-label, else-label *)
  | Ret of value option
  | Unreachable

type block = {
  bid : int;
  insts : inst list;  (** phis, if any, form a prefix *)
  term : term;
}

type func = {
  fname : string;
  params : (int * ty) list;
  ret : ty;
  blocks : block list;  (** the first block is the entry; it has no preds *)
  next : int;           (** next fresh register/label id *)
  fmeta : (string * string) list;
      (** annotations preserved for verification tools (paper §3) *)
}

(** A global is a raw byte image; [gconst] marks read-only data such as
    string literals. *)
type global = {
  gname : string;
  gsize : int;
  ginit : string;
  gconst : bool;
}

type modul = {
  globals : global list;
  funcs : func list;
}

(* ------------------------------------------------------------------ *)
(* Types *)

let rec size_of_ty = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | Ptr -> 8
  | Void -> 0
  | Arr (t, n) -> size_of_ty t * n

let bits_of_ty = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | Ptr -> 64
  | Void | Arr _ -> invalid_arg "Ir.bits_of_ty: not a scalar type"

let is_int_ty = function
  | I1 | I8 | I16 | I32 | I64 -> true
  | Ptr | Void | Arr _ -> false

(** Bit mask covering the width of [ty] (all ones for 64-bit types). *)
let mask_of_ty ty =
  let bits = bits_of_ty ty in
  if bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

(** Normalize a constant to the canonical zero-extended representation. *)
let norm ty v = Int64.logand v (mask_of_ty ty)

(** Signed interpretation of a normalized constant of type [ty]. *)
let signed_of ty v =
  let bits = bits_of_ty ty in
  if bits >= 64 then v
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left v shift) shift

let imm ty v = Imm (norm ty v, ty)
let imm_bool b = Imm ((if b then 1L else 0L), I1)
let zero ty = Imm (0L, ty)
let one ty = imm ty 1L

let is_zero = function Imm (0L, _) -> true | Imm _ | Reg _ | Glob _ -> false

let value_eq (a : value) (b : value) = a = b

(* ------------------------------------------------------------------ *)
(* Instruction structure *)

(** The register defined by an instruction, if any. *)
let def_of_inst = function
  | Bin (d, _, _, _, _)
  | Cmp (d, _, _, _, _)
  | Select (d, _, _, _, _)
  | Cast (d, _, _, _, _)
  | Alloca (d, _, _)
  | Load (d, _, _)
  | Gep (d, _, _, _)
  | Phi (d, _, _) -> Some d
  | Call (d, _, _, _) -> d
  | Store _ -> None

(** Values read by an instruction (phi incoming values included). *)
let uses_of_inst = function
  | Bin (_, _, _, a, b) | Cmp (_, _, _, a, b) -> [ a; b ]
  | Select (_, _, c, a, b) -> [ c; a; b ]
  | Cast (_, _, _, v, _) -> [ v ]
  | Alloca _ -> []
  | Load (_, _, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Gep (_, base, _, idx) -> [ base; idx ]
  | Call (_, _, _, args) -> args
  | Phi (_, _, incoming) -> List.map snd incoming

let uses_of_term = function
  | Br _ | Unreachable | Ret None -> []
  | Ret (Some v) -> [ v ]
  | Cbr (c, _, _) -> [ c ]

(** Result type of an instruction's definition (meaningless for [Store]). *)
let ty_of_inst = function
  | Bin (_, _, ty, _, _) -> ty
  | Cmp _ -> I1
  | Select (_, ty, _, _, _) -> ty
  | Cast (_, _, to_ty, _, _) -> to_ty
  | Alloca _ -> Ptr
  | Load (_, ty, _) -> ty
  | Gep _ -> Ptr
  | Call (_, ty, _, _) -> ty
  | Phi (_, ty, _) -> ty
  | Store _ -> Void

let is_phi = function Phi _ -> true | _ -> false

(** An instruction that may be freely duplicated, speculated or removed:
    it has no side effect and cannot trap. Loads are excluded because a
    speculated load may touch an invalid address; division is excluded
    because of division by zero. *)
let is_speculatable = function
  | Bin (_, (Sdiv | Udiv | Srem | Urem), _, _, _) -> false
  | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ -> true
  | Alloca _ | Load _ | Store _ | Call _ | Phi _ -> false

(** An instruction with no observable side effect (its removal is sound if
    its result is unused).  Loads are pure in this sense. *)
let is_pure = function
  | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ | Load _ | Phi _ -> true
  | Alloca _ | Store _ | Call _ -> false

let map_value f = function
  | Reg r -> f r
  | (Imm _ | Glob _) as v -> v

(** Substitute register operands of an instruction through [f].  The defined
    register is left untouched. *)
let map_inst_values f inst =
  let m = map_value f in
  match inst with
  | Bin (d, op, ty, a, b) -> Bin (d, op, ty, m a, m b)
  | Cmp (d, op, ty, a, b) -> Cmp (d, op, ty, m a, m b)
  | Select (d, ty, c, a, b) -> Select (d, ty, m c, m a, m b)
  | Cast (d, op, to_ty, v, from_ty) -> Cast (d, op, to_ty, m v, from_ty)
  | Alloca _ as i -> i
  | Load (d, ty, p) -> Load (d, ty, m p)
  | Store (ty, v, p) -> Store (ty, m v, m p)
  | Gep (d, base, scale, idx) -> Gep (d, m base, scale, m idx)
  | Call (d, ty, fn, args) -> Call (d, ty, fn, List.map m args)
  | Phi (d, ty, incoming) ->
      Phi (d, ty, List.map (fun (p, v) -> (p, m v)) incoming)

let map_term_values f term =
  let m = map_value f in
  match term with
  | Br _ | Unreachable | Ret None -> term
  | Ret (Some v) -> Ret (Some (m v))
  | Cbr (c, t, e) -> Cbr (m c, t, e)

(** Replace every use of register [r] by value [v] throughout a block. *)
let subst_block r v blk =
  let f r' = if r' = r then v else Reg r' in
  {
    blk with
    insts = List.map (map_inst_values f) blk.insts;
    term = map_term_values f blk.term;
  }

let subst_func r v fn = { fn with blocks = List.map (subst_block r v) fn.blocks }

(* ------------------------------------------------------------------ *)
(* Functions and modules *)

let entry fn =
  match fn.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Ir.entry: empty function " ^ fn.fname)

let find_block fn bid =
  match List.find_opt (fun b -> b.bid = bid) fn.blocks with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Ir.find_block: no block %d in %s" bid fn.fname)

let block_tbl fn =
  let tbl = Hashtbl.create (List.length fn.blocks) in
  List.iter (fun b -> Hashtbl.replace tbl b.bid b) fn.blocks;
  tbl

(** Replace a block (matched by [bid]) wholesale. *)
let update_block fn blk =
  {
    fn with
    blocks = List.map (fun b -> if b.bid = blk.bid then blk else b) fn.blocks;
  }

let iter_insts f fn = List.iter (fun b -> List.iter (f b) b.insts) fn.blocks

(** Static instruction count, the code-size metric used by cost models. *)
let func_size fn =
  List.fold_left (fun acc b -> acc + List.length b.insts + 1) 0 fn.blocks

let num_blocks fn = List.length fn.blocks

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func_exn: no function " ^ name)

let update_func m fn =
  {
    m with
    funcs = List.map (fun f -> if f.fname = fn.fname then fn else f) m.funcs;
  }

let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

(** Names with runtime support in the interpreter and symbolic executor;
    they have no IR body. *)
let intrinsics =
  [ "__input"; "__input_size"; "__output"; "__abort"; "__assert" ]

let is_intrinsic name = List.mem name intrinsics

(* ------------------------------------------------------------------ *)
(* Fresh id supply *)

(** Mutable supply of fresh register/label ids for one function.  Create it
    from the function being rewritten and write the final counter back with
    {!commit}. *)
module Fresh = struct
  type t = int ref

  let of_func fn : t = ref fn.next
  let take (t : t) = let v = !t in incr t; v
  let commit (t : t) fn = { fn with next = !t }
end

(* ------------------------------------------------------------------ *)
(* Constant evaluation (shared by folding, the interpreter and symex) *)

(** Evaluate a binary operation over normalized constants of type [ty].
    Returns [None] for division by zero. *)
let eval_binop op ty a b =
  let sa = signed_of ty a and sb = signed_of ty b in
  let bits = bits_of_ty ty in
  let ok v = Some (norm ty v) in
  match op with
  | Add -> ok (Int64.add a b)
  | Sub -> ok (Int64.sub a b)
  | Mul -> ok (Int64.mul a b)
  | Sdiv -> if sb = 0L then None else ok (Int64.div sa sb)
  | Srem -> if sb = 0L then None else ok (Int64.rem sa sb)
  | Udiv -> if b = 0L then None else ok (Int64.unsigned_div a b)
  | Urem -> if b = 0L then None else ok (Int64.unsigned_rem a b)
  | And -> ok (Int64.logand a b)
  | Or -> ok (Int64.logor a b)
  | Xor -> ok (Int64.logxor a b)
  | Shl ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int bits)) in
      ok (Int64.shift_left a s)
  | Lshr ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int bits)) in
      ok (Int64.shift_right_logical a s)
  | Ashr ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int bits)) in
      ok (norm ty (Int64.shift_right sa s))

let eval_cmp op ty a b =
  let sa = signed_of ty a and sb = signed_of ty b in
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> sa < sb
  | Sle -> sa <= sb
  | Sgt -> sa > sb
  | Sge -> sa >= sb
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Ugt -> Int64.unsigned_compare a b > 0
  | Uge -> Int64.unsigned_compare a b >= 0

let eval_cast op to_ty v from_ty =
  match op with
  | Zext | Trunc -> norm to_ty v
  | Sext -> norm to_ty (signed_of from_ty v)
