(** Structural validator for the IR; run after every pass in tests.

    Checks: unique blocks/defs, terminator targets, phi placement and
    incoming-label consistency, operand typing; with [~ssa:true], dominance
    of uses by definitions; with [~memform:true], absence of phis. *)

val check :
  ?ssa:bool -> ?memform:bool -> Ir.func -> (unit, string list) result

val check_exn : ?ssa:bool -> ?memform:bool -> Ir.func -> unit
(** Raises [Failure] with the error list and the printed function. *)

val check_modul : ?ssa:bool -> ?memform:bool -> Ir.modul -> unit
