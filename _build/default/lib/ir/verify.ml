(** Structural validator for the IR; run after every pass in tests.

    Checks performed:
    - block ids are unique; terminator targets exist
    - register definitions are unique (SSA single-assignment)
    - phis form a prefix of their block and never appear in the entry block
    - phi incoming labels exactly match the block's CFG predecessors
    - every used register has a definition or is a parameter
    - operand types agree with instruction signatures
    - with [~ssa:true], every use is dominated by its definition
    - with [~memform:true], there are no phis at all *)

open Ir

module IntSet = Cfg.IntSet

let check ?(ssa = false) ?(memform = false) (fn : func) :
    (unit, string list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* unique block ids *)
  let bids = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem bids b.bid then err "duplicate block L%d" b.bid;
      Hashtbl.replace bids b.bid ())
    fn.blocks;
  (* terminator targets *)
  List.iter
    (fun b ->
      List.iter
        (fun s -> if not (Hashtbl.mem bids s) then
            err "L%d: branch to missing block L%d" b.bid s)
        (Cfg.succs b))
    fn.blocks;
  (* defs *)
  let defs = Hashtbl.create 64 in
  List.iter (fun (r, ty) -> Hashtbl.replace defs r ty) fn.params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of_inst i with
          | Some d ->
              if Hashtbl.mem defs d then
                err "L%d: register %%%d defined twice" b.bid d;
              Hashtbl.replace defs d (ty_of_inst i)
          | None -> ())
        b.insts)
    fn.blocks;
  (* ids below next *)
  Hashtbl.iter
    (fun r _ -> if r >= fn.next then err "register %%%d >= next (%d)" r fn.next)
    defs;
  List.iter
    (fun b -> if b.bid >= fn.next then err "block L%d >= next (%d)" b.bid fn.next)
    fn.blocks;
  (* phi placement *)
  let preds = Cfg.preds fn in
  let entry_bid = (entry fn).bid in
  List.iter
    (fun b ->
      let seen_nonphi = ref false in
      List.iter
        (fun i ->
          if is_phi i then begin
            if memform then err "L%d: phi present in memory form" b.bid;
            if b.bid = entry_bid then err "entry block L%d has a phi" b.bid;
            if !seen_nonphi then err "L%d: phi after non-phi instruction" b.bid
          end
          else seen_nonphi := true)
        b.insts;
      List.iter
        (function
          | Phi (d, _, incoming) ->
              let ps = IntSet.of_list (Cfg.preds_of preds b.bid) in
              let ls = IntSet.of_list (List.map fst incoming) in
              if not (IntSet.equal ps ls) then
                err "L%d: phi %%%d incoming labels do not match predecessors" b.bid d;
              if List.length incoming
                 <> IntSet.cardinal (IntSet.of_list (List.map fst incoming))
              then err "L%d: phi %%%d has duplicate incoming labels" b.bid d
          | _ -> ())
        b.insts)
    fn.blocks;
  (* uses are defined; types check *)
  let vty = function
    | Imm (_, ty) -> Some ty
    | Glob _ -> Some Ptr
    | Reg r -> Hashtbl.find_opt defs r
  in
  let want where v ty =
    match vty v with
    | None -> err "%s: use of undefined %s" where (Printer.string_of_value v)
    | Some t when t <> ty ->
        err "%s: %s has type %s, expected %s" where (Printer.string_of_value v)
          (Printer.string_of_ty t) (Printer.string_of_ty ty)
    | Some _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          let where = Printf.sprintf "L%d: %s" b.bid (Printer.string_of_inst i) in
          match i with
          | Bin (_, _, ty, a, bb) ->
              if not (is_int_ty ty) then err "%s: non-integer binop type" where;
              want where a ty; want where bb ty
          | Cmp (_, _, ty, a, bb) -> want where a ty; want where bb ty
          | Select (_, ty, c, a, bb) ->
              want where c I1; want where a ty; want where bb ty
          | Cast (_, op, to_ty, v, from_ty) ->
              want where v from_ty;
              let fb = bits_of_ty from_ty and tb = bits_of_ty to_ty in
              (match op with
              | Zext | Sext ->
                  if tb < fb then err "%s: extension to narrower type" where
              | Trunc -> if tb > fb then err "%s: trunc to wider type" where)
          | Alloca (_, ty, n) ->
              if n <= 0 then err "%s: alloca count %d" where n;
              if size_of_ty ty <= 0 then err "%s: alloca of empty type" where
          | Load (_, ty, p) ->
              if not (is_int_ty ty || ty = Ptr) then
                err "%s: load of non-scalar" where;
              want where p Ptr
          | Store (ty, v, p) -> want where v ty; want where p Ptr
          | Gep (_, base, scale, idx) ->
              want where base Ptr;
              if scale <= 0 then err "%s: gep scale %d" where scale;
              (match vty idx with
              | Some (I32 | I64) | None -> ()
              | Some _ -> err "%s: gep index must be i32/i64" where)
          | Call _ -> ()  (* signature checking happens at link time *)
          | Phi (_, ty, incoming) ->
              List.iter (fun (_, v) -> want where v ty) incoming)
        b.insts;
      match b.term with
      | Cbr (c, _, _) -> want (Printf.sprintf "L%d: cbr" b.bid) c I1
      | Ret (Some v) ->
          if fn.ret = Void then err "L%d: ret value in void function" b.bid
          else want (Printf.sprintf "L%d: ret" b.bid) v fn.ret
      | Ret None ->
          if fn.ret <> Void then err "L%d: missing return value" b.bid
      | Br _ | Unreachable -> ())
    fn.blocks;
  (* SSA dominance *)
  if ssa && !errs = [] then begin
    let dom = Dom.compute fn in
    let def_block = Hashtbl.create 64 in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match def_of_inst i with
            | Some d -> Hashtbl.replace def_block d b.bid
            | None -> ())
          b.insts)
      fn.blocks;
    let param_regs = IntSet.of_list (List.map fst fn.params) in
    let check_use where user_bid v =
      match v with
      | Reg r when not (IntSet.mem r param_regs) -> (
          match Hashtbl.find_opt def_block r with
          | Some db ->
              if not (Dom.dominates dom db user_bid) then
                err "%s: use of %%%d not dominated by its definition (L%d)"
                  where r db
          | None -> ())
      | _ -> ()
    in
    let reachable = Cfg.reachable fn in
    List.iter
      (fun b ->
        if IntSet.mem b.bid reachable then begin
          (* position-sensitive check within a block: a use in the same block
             must come after the def; approximate with ordering scan *)
          let defined_here = Hashtbl.create 8 in
          List.iter
            (fun i ->
              let where =
                Printf.sprintf "L%d: %s" b.bid (Printer.string_of_inst i)
              in
              (match i with
              | Phi (_, _, incoming) ->
                  (* phi uses are checked against the incoming edge *)
                  List.iter
                    (fun (p, v) ->
                      match v with
                      | Reg r when not (IntSet.mem r param_regs) -> (
                          match Hashtbl.find_opt def_block r with
                          | Some db ->
                              if not (Dom.dominates dom db p) then
                                err
                                  "%s: phi incoming %%%d from L%d not \
                                   dominated by def (L%d)"
                                  where r p db
                          | None -> ())
                      | _ -> ())
                    incoming
              | _ ->
                  List.iter
                    (fun v ->
                      match v with
                      | Reg r when Hashtbl.mem def_block r
                                   && Hashtbl.find def_block r = b.bid
                                   && not (Hashtbl.mem defined_here r) ->
                          err "%s: use of %%%d before its definition" where r
                      | _ -> check_use where b.bid v)
                    (uses_of_inst i));
              match def_of_inst i with
              | Some d -> Hashtbl.replace defined_here d ()
              | None -> ())
            b.insts;
          List.iter
            (fun v ->
              match v with
              | Reg r when Hashtbl.mem def_block r
                           && Hashtbl.find def_block r = b.bid
                           && not (Hashtbl.mem defined_here r) ->
                  err "L%d: terminator uses %%%d before definition" b.bid r
              | _ -> check_use (Printf.sprintf "L%d: term" b.bid) b.bid v)
            (uses_of_term b.term)
        end)
      fn.blocks
  end;
  if !errs = [] then Ok () else Error (List.rev !errs)

let check_exn ?ssa ?memform fn =
  match check ?ssa ?memform fn with
  | Ok () -> ()
  | Error errs ->
      failwith
        (Printf.sprintf "IR verification failed for %s:\n%s\n%s" fn.fname
           (String.concat "\n" errs)
           (Printer.func_to_string fn))

let check_modul ?ssa ?memform (m : modul) =
  List.iter (check_exn ?ssa ?memform) m.funcs
