lib/ir/dom.mli: Cfg Hashtbl Ir
