lib/ir/callgraph.ml: Ir List Set String
