lib/ir/cfg.mli: Hashtbl Ir Map Set
