lib/ir/printer.ml: Format Int64 Ir List Printf String
