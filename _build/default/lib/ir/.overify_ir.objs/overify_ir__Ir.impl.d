lib/ir/ir.ml: Hashtbl Int64 List Printf
