lib/ir/dom.ml: Array Cfg Hashtbl Ir List
