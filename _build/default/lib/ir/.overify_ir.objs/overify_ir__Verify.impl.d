lib/ir/verify.ml: Cfg Dom Hashtbl Ir List Printer Printf String
