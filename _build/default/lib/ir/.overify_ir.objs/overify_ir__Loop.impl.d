lib/ir/loop.ml: Cfg Dom Hashtbl Ir List
