lib/ir/loop.mli: Cfg Hashtbl Ir
