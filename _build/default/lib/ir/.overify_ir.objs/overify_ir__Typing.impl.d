lib/ir/typing.ml: Hashtbl Ir List Printf
