(** Core intermediate representation.

    The IR is deliberately close to LLVM bitcode, which is what the paper's
    prototype operates on: typed virtual registers, basic blocks ending in a
    single terminator, [phi] nodes for SSA form, [alloca]/[load]/[store] for
    stack memory, and an address-computation instruction ([Gep]).

    Two forms of the same IR are used by the pipeline:
    - {e memory form}, produced by the frontend: every value that crosses a
      basic-block boundary lives in an alloca, and there are no phis.  Block
      cloning (inlining, unswitching, unrolling) is trivially sound here.
    - {e SSA form}, produced by [mem2reg]: promoted allocas become registers
      joined by phis; scalar optimizations run on this form.

    Registers and block labels share one per-function integer id space drawn
    from [func.next]. *)

(** Scalar and aggregate types.  Pointers are opaque (untyped), as in modern
    LLVM; memory instructions carry the accessed type. *)
type ty =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Ptr
  | Void
  | Arr of ty * int  (** element type, element count; allocas/globals only *)

type binop =
  | Add | Sub | Mul
  | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type castop =
  | Zext   (** zero-extend to a wider type *)
  | Sext   (** sign-extend to a wider type *)
  | Trunc  (** truncate to a narrower type *)

(** Operand values.  Integer immediates are stored {e normalized}: the bit
    pattern is truncated to the width of [ty] and kept zero-extended inside
    the [int64]. *)
type value =
  | Imm of int64 * ty
  | Reg of int
  | Glob of string  (** address of the named global *)

type inst =
  | Bin of int * binop * ty * value * value
  | Cmp of int * cmp * ty * value * value      (** result has type [I1] *)
  | Select of int * ty * value * value * value (** [dst = sel cond, tv, fv] *)
  | Cast of int * castop * ty * value * ty     (** [dst = op to_ty, v, from_ty] *)
  | Alloca of int * ty * int                   (** element type, element count *)
  | Load of int * ty * value
  | Store of ty * value * value                (** [store ty v, ptr] *)
  | Gep of int * value * int * value           (** [dst = base + scale * idx] (bytes) *)
  | Call of int option * ty * string * value list
  | Phi of int * ty * (int * value) list       (** incoming (pred label, value) *)

type term =
  | Br of int
  | Cbr of value * int * int  (** condition (I1), then-label, else-label *)
  | Ret of value option
  | Unreachable

type block = {
  bid : int;
  insts : inst list;  (** phis, if any, form a prefix *)
  term : term;
}

type func = {
  fname : string;
  params : (int * ty) list;
  ret : ty;
  blocks : block list;  (** the first block is the entry; it has no preds *)
  next : int;           (** next fresh register/label id *)
  fmeta : (string * string) list;
      (** annotations preserved for verification tools (paper §3) *)
}

(** A global is a raw byte image; [gconst] marks read-only data such as
    string literals. *)
type global = {
  gname : string;
  gsize : int;
  ginit : string;
  gconst : bool;
}

type modul = {
  globals : global list;
  funcs : func list;
}

(** {2 Types} *)

val size_of_ty : ty -> int
(** Size in bytes ([Ptr] is 8). *)

val bits_of_ty : ty -> int
(** Bit width of a scalar type; raises [Invalid_argument] on [Void]/[Arr]. *)

val is_int_ty : ty -> bool
val mask_of_ty : ty -> int64
val norm : ty -> int64 -> int64
(** Normalize a constant to the canonical zero-extended representation. *)

val signed_of : ty -> int64 -> int64
(** Signed interpretation of a normalized constant. *)

(** {2 Value constructors} *)

val imm : ty -> int64 -> value
val imm_bool : bool -> value
val zero : ty -> value
val one : ty -> value
val is_zero : value -> bool
val value_eq : value -> value -> bool

(** {2 Instruction structure} *)

val def_of_inst : inst -> int option
(** The register defined by an instruction, if any. *)

val uses_of_inst : inst -> value list
val uses_of_term : term -> value list
val ty_of_inst : inst -> ty
(** Result type of the definition (meaningless for [Store]). *)

val is_phi : inst -> bool

val is_speculatable : inst -> bool
(** No side effect and cannot trap: may be freely duplicated, speculated or
    removed.  Excludes loads (may fault) and division (divide by zero). *)

val is_pure : inst -> bool
(** No observable side effect (removal is sound if the result is unused);
    loads are pure in this sense. *)

val map_inst_values : (int -> value) -> inst -> inst
(** Substitute register operands; the defined register is untouched. *)

val map_term_values : (int -> value) -> term -> term
val subst_block : int -> value -> block -> block
val subst_func : int -> value -> func -> func

(** {2 Functions and modules} *)

val entry : func -> block
val find_block : func -> int -> block
val block_tbl : func -> (int, block) Hashtbl.t
val update_block : func -> block -> func
val iter_insts : (block -> inst -> unit) -> func -> unit
val func_size : func -> int
(** Static instruction count, the cost models' code-size metric. *)

val num_blocks : func -> int
val find_func : modul -> string -> func option
val find_func_exn : modul -> string -> func
val update_func : modul -> func -> modul
val find_global : modul -> string -> global option

val intrinsics : string list
(** Names with runtime support ([__input], [__output], …); no IR body. *)

val is_intrinsic : string -> bool

(** Mutable supply of fresh register/label ids for one function. *)
module Fresh : sig
  type t

  val of_func : func -> t
  val take : t -> int
  val commit : t -> func -> func
  (** Write the final counter back into the function. *)
end

(** {2 Constant evaluation} (shared by folding, the interpreter and symex) *)

val eval_binop : binop -> ty -> int64 -> int64 -> int64 option
(** Over normalized constants; [None] for division by zero. *)

val eval_cmp : cmp -> ty -> int64 -> int64 -> bool
val eval_cast : castop -> ty -> int64 -> ty -> int64
(** [eval_cast op to_ty v from_ty]. *)
