(** Call graph over direct calls, used to order inlining bottom-up. *)

module StrSet = Set.Make (String)

(** Callees of [fn] that are defined in the module (intrinsics and unknown
    externals excluded), without duplicates, in first-call order. *)
let callees (m : Ir.modul) (fn : Ir.func) : string list =
  let defined = List.map (fun (f : Ir.func) -> f.Ir.fname) m.funcs in
  let seen = ref StrSet.empty in
  let out = ref [] in
  Ir.iter_insts
    (fun _ inst ->
      match inst with
      | Ir.Call (_, _, callee, _)
        when List.mem callee defined && not (StrSet.mem callee !seen) ->
          seen := StrSet.add callee !seen;
          out := callee :: !out
      | _ -> ())
    fn;
  List.rev !out

(** Is [name] on a call-graph cycle (including direct recursion)?  True when
    [name] is reachable from one of its own callees. *)
let in_cycle (m : Ir.modul) (name : string) : bool =
  match Ir.find_func m name with
  | None -> false
  | Some f ->
      let visited = ref StrSet.empty in
      let rec reaches cur =
        cur = name
        || (not (StrSet.mem cur !visited)
           && begin
                visited := StrSet.add cur !visited;
                match Ir.find_func m cur with
                | None -> false
                | Some cf -> List.exists reaches (callees m cf)
              end)
      in
      List.exists reaches (callees m f)

(** Function names ordered so that callees come before callers (cycles broken
    arbitrarily); the order used by the inliner. *)
let bottom_up_order (m : Ir.modul) : string list =
  let visited = ref StrSet.empty in
  let order = ref [] in
  let rec go name =
    if not (StrSet.mem name !visited) then begin
      visited := StrSet.add name !visited;
      (match Ir.find_func m name with
      | Some f -> List.iter go (callees m f)
      | None -> ());
      order := name :: !order
    end
  in
  List.iter (fun (f : Ir.func) -> go f.Ir.fname) m.funcs;
  List.rev !order
