(** Execution states of the symbolic executor.  States are persistent
    values: forking shares everything structurally. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module IMap = Map.Make (Int)

type frame = {
  fn : Ir.func;
  regs : Sval.t IMap.t;
  cur_block : int;
  prev_block : int;
  insts : Ir.inst list;        (** remaining instructions of the block *)
  ret_dst : int option;        (** caller register receiving the result *)
  frame_objs : int list;       (** allocas to kill on return *)
}

type t = {
  frames : frame list;         (** top of the stack first *)
  mem : Memory.t;
  path : Bv.t list;            (** path condition (conjunction) *)
  model : (int * int64) list;  (** an assignment satisfying [path] *)
  out_rev : Bv.t list;         (** bytes written via [__output], reversed *)
  steps : int;                 (** instructions executed on this path *)
}

let top (st : t) =
  match st.frames with
  | f :: _ -> f
  | [] -> invalid_arg "State.top: no frame"

let with_top (st : t) f =
  match st.frames with
  | fr :: rest -> { st with frames = f fr :: rest }
  | [] -> invalid_arg "State.with_top: no frame"

let set_reg (st : t) r v =
  with_top st (fun fr -> { fr with regs = IMap.add r v fr.regs })

let get_reg (st : t) r =
  match IMap.find_opt r (top st).regs with
  | Some v -> v
  | None ->
      failwith (Printf.sprintf "symex: undefined register %%%d in %s" r
                  (top st).fn.Ir.fname)

(** Evaluate the model on a term (for the solver-free feasibility check). *)
let model_eval (st : t) (c : Bv.t) : bool =
  let lookup id =
    match List.assoc_opt id st.model with Some v -> v | None -> 0L
  in
  Bv.eval lookup c = 1L
