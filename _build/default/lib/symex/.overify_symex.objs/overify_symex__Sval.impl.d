lib/symex/sval.ml: Overify_solver Printf
