lib/symex/sval.mli: Overify_solver
