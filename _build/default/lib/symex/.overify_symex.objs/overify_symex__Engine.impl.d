lib/symex/engine.ml: Array Char Executor Hashtbl Int64 List Memory Overify_ir Overify_solver Queue State String Unix
