lib/symex/memory.ml: Array Char Int Int64 Map Overify_solver Printf String
