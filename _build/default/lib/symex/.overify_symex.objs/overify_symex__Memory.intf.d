lib/symex/memory.mli: Overify_solver
