lib/symex/engine.mli: Overify_ir
