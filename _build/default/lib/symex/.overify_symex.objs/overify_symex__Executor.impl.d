lib/symex/executor.ml: Array Hashtbl Int64 List Memory Option Overify_ir Overify_solver Printf State Sval
