lib/symex/state.ml: Int List Map Memory Overify_ir Overify_solver Printf Sval
