(** Symbolic runtime values: bitvector terms, or pointers with a concrete
    object identity and a (possibly symbolic) byte offset. *)

module Bv = Overify_solver.Bv

type t =
  | SInt of Bv.t
  | SPtr of int * Bv.t  (** object id, 64-bit offset term *)

val null : t
(** Object 0 at offset 0. *)

val is_null : t -> bool

val as_int : t -> Bv.t option
(** Integer view; null reads as 0. *)

val as_ptr : t -> (int * Bv.t) option
(** Pointer view; the integer 0 reads as null. *)

val to_string : t -> string
