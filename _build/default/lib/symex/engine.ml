(** Top-level symbolic-execution engine: explores all paths of a module's
    [main] for a given symbolic input size, under time/path budgets, and
    reports the statistics the paper's evaluation uses (t_verify, number of
    paths, number of interpreted instructions, solver counters). *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Solver = Overify_solver.Solver

type config = {
  input_size : int;
  max_paths : int;       (** stop after completing this many paths *)
  max_insts : int;       (** total dynamic instruction budget *)
  timeout : float;       (** wall-clock seconds *)
  check_bounds : bool;   (** fork out-of-bounds bug paths *)
  searcher : [ `Dfs | `Bfs ];
}

let default_config =
  {
    input_size = 4;
    max_paths = 1_000_000;
    max_insts = 200_000_000;
    timeout = 60.0;
    check_bounds = true;
    searcher = `Dfs;
  }

type bug = {
  kind : string;
  input : string;        (** concrete input reproducing the bug *)
  at_function : string;
}

type result = {
  paths : int;                  (** completed (exited) paths *)
  bugs : bug list;
  instructions : int;           (** dynamic instructions over all paths *)
  forks : int;
  queries : int;
  cache_hits : int;
  solver_time : float;
  time : float;                 (** total verification wall time *)
  complete : bool;              (** false if a budget was exhausted *)
  exit_codes : (string * int64) list;
      (** per completed path: concrete witness input and its exit code *)
  blocks_covered : int;  (** basic blocks reached on some explored path *)
  blocks_total : int;    (** blocks of the functions reachable from main *)
}

(** Extract a concrete input string from a state's model. *)
let input_of_model (input_vars : int array) model =
  String.init (Array.length input_vars) (fun i ->
      let v =
        match List.assoc_opt input_vars.(i) model with
        | Some v -> Int64.to_int (Int64.logand v 0xFFL)
        | None -> 0
      in
      Char.chr v)

let run ?(config = default_config) (m : Ir.modul) : result =
  (* each run is self-contained: drop cached queries and hash-consed terms *)
  Solver.clear_cache ();
  Bv.reset ();
  let q0 = Solver.stats.Solver.queries
  and h0 = Solver.stats.Solver.cache_hits
  and st0 = Solver.stats.Solver.solver_time in
  let t_start = Unix.gettimeofday () in
  (* globals *)
  let mem = ref Memory.empty in
  let globals =
    List.map
      (fun (g : Ir.global) ->
        let (m', obj) =
          Memory.alloc_bytes ~writable:(not g.Ir.gconst) !mem g.Ir.ginit
            ~size:g.Ir.gsize
        in
        mem := m';
        (g.Ir.gname, obj))
      m.Ir.globals
  in
  (* fresh symbolic variables for the input bytes *)
  let input_vars =
    Array.init config.input_size (fun i -> 1_000_000 + (config.input_size * 7919) + i)
  in
  let gctx =
    {
      Executor.modul = m;
      block_tbls = Hashtbl.create 16;
      globals;
      input_vars;
      check_bounds = config.check_bounds;
      insts_executed = 0;
      forks = 0;
      covered = Hashtbl.create 64;
    }
  in
  let main =
    match Ir.find_func m "main" with
    | Some f -> f
    | None -> invalid_arg "Engine.run: module has no main"
  in
  let entry = Ir.entry main in
  Hashtbl.replace gctx.Executor.covered (main.Ir.fname, entry.Ir.bid) ();
  let init_state =
    {
      State.frames =
        [
          {
            State.fn = main;
            regs = State.IMap.empty;
            cur_block = entry.Ir.bid;
            prev_block = -1;
            insts = entry.Ir.insts;
            ret_dst = None;
            frame_objs = [];
          };
        ];
      mem = !mem;
      path = [];
      model = [];
      out_rev = [];
      steps = 0;
    }
  in
  (* worklist *)
  let stack = ref [] in
  let queue = Queue.create () in
  let push st =
    match config.searcher with
    | `Dfs -> stack := st :: !stack
    | `Bfs -> Queue.add st queue
  in
  let pop () =
    match config.searcher with
    | `Dfs -> (
        match !stack with
        | st :: rest ->
            stack := rest;
            Some st
        | [] -> None)
    | `Bfs -> ( try Some (Queue.pop queue) with Queue.Empty -> None)
  in
  push init_state;
  let paths = ref 0 in
  let bugs : bug list ref = ref [] in
  let bug_kinds = Hashtbl.create 8 in
  let exit_codes = ref [] in
  let complete = ref true in
  let deadline = t_start +. config.timeout in
  Solver.deadline := Some deadline;
  let out_of_budget () =
    !paths >= config.max_paths
    || gctx.Executor.insts_executed >= config.max_insts
    || Unix.gettimeofday () > deadline
  in
  let check_counter = ref 0 in
  (try
     let rec loop () =
       match pop () with
       | None -> ()
       | Some st ->
           (* run this state until it forks or finishes *)
           let rec advance st =
             incr check_counter;
             if !check_counter land 2047 = 0 && out_of_budget () then begin
               complete := false;
               raise Exit
             end;
             match Executor.step gctx st with
             | [ Executor.T_cont st' ] -> advance st'
             | transitions ->
                 List.iter
                   (fun tr ->
                     match tr with
                     | Executor.T_cont st' -> push st'
                     | Executor.T_exit (st', code) ->
                         incr paths;
                         let witness =
                           input_of_model input_vars st'.State.model
                         in
                         let code_v =
                           match code with
                           | Some t ->
                               Bv.to_signed 32
                                 (Bv.eval
                                    (fun id ->
                                      match
                                        List.assoc_opt id st'.State.model
                                      with
                                      | Some v -> v
                                      | None -> 0L)
                                    t)
                           | None -> 0L
                         in
                         exit_codes := (witness, code_v) :: !exit_codes;
                         if out_of_budget () then begin
                           complete := false;
                           raise Exit
                         end
                     | Executor.T_drop (_, _) -> complete := false
                     | Executor.T_bug (st', kind) ->
                         let fname = (State.top st').State.fn.Ir.fname in
                         let key = (kind, fname) in
                         if not (Hashtbl.mem bug_kinds key) then begin
                           Hashtbl.replace bug_kinds key ();
                           bugs :=
                             {
                               kind;
                               input = input_of_model input_vars st'.State.model;
                               at_function = fname;
                             }
                             :: !bugs
                         end)
                   transitions
           in
           advance st;
           loop ()
     in
     loop ()
   with
  | Exit -> ()
  | Solver.Timeout -> complete := false
  | Executor.Symex_error msg ->
      complete := false;
      bugs :=
        { kind = "executor error: " ^ msg; input = ""; at_function = "?" }
        :: !bugs);
  Solver.deadline := None;
  (* anything left on the worklist means incompleteness *)
  (match config.searcher with
  | `Dfs -> if !stack <> [] then complete := false
  | `Bfs -> if not (Queue.is_empty queue) then complete := false);
  {
    paths = !paths;
    bugs = List.rev !bugs;
    instructions = gctx.Executor.insts_executed;
    forks = gctx.Executor.forks;
    queries = Solver.stats.Solver.queries - q0;
    cache_hits = Solver.stats.Solver.cache_hits - h0;
    solver_time = Solver.stats.Solver.solver_time -. st0;
    time = Unix.gettimeofday () -. t_start;
    complete = !complete;
    exit_codes = List.rev !exit_codes;
    blocks_covered = Hashtbl.length gctx.Executor.covered;
    blocks_total =
      (let reach = Hashtbl.create 16 in
       let rec visit name =
         if not (Hashtbl.mem reach name) then begin
           Hashtbl.replace reach name ();
           match Ir.find_func m name with
           | Some fn ->
               List.iter visit (Overify_ir.Callgraph.callees m fn)
           | None -> ()
         end
       in
       visit "main";
       List.fold_left
         (fun acc (f : Ir.func) ->
           if Hashtbl.mem reach f.Ir.fname then acc + Ir.num_blocks f else acc)
         0 m.Ir.funcs);
  }
