(** Symbolic runtime values: bitvector terms, or pointers with a concrete
    object identity and a (possibly symbolic) byte offset.  The null pointer
    is object 0 at offset 0. *)

module Bv = Overify_solver.Bv

type t =
  | SInt of Bv.t
  | SPtr of int * Bv.t  (** object id, 64-bit offset term *)

let null = SPtr (0, Bv.const 64 0L)

let is_null = function
  | SPtr (0, o) -> o.Bv.node = Bv.Const 0L
  | SPtr _ | SInt _ -> false

let as_int = function
  | SInt t -> Some t
  | SPtr (0, o) when o.Bv.node = Bv.Const 0L -> Some (Bv.const 64 0L)
  | SPtr _ -> None

let as_ptr = function
  | SPtr (o, off) -> Some (o, off)
  | SInt t when t.Bv.node = Bv.Const 0L -> Some (0, Bv.const 64 0L)
  | SInt _ -> None

let to_string = function
  | SInt t -> Bv.to_string t
  | SPtr (o, off) -> Printf.sprintf "&obj%d[%s]" o (Bv.to_string off)
