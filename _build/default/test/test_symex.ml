(** Symbolic-execution engine tests: path counting, bug finding with
    witness replay, symbolic memory, and the soundness property that every
    reported path replays concretely to its predicted exit code. *)

module I = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Engine = Overify_symex.Engine
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let compile ?(level = Costmodel.o0) src =
  (Pipeline.optimize level (Frontend.compile_source src)).Pipeline.modul

let verify ?(level = Costmodel.o0) ?(n = 2) ?(timeout = 20.0) src =
  Engine.run
    ~config:{ Engine.default_config with Engine.input_size = n; timeout }
    (compile ~level src)

(* ------------- path counting ------------- *)

let test_single_path () =
  let r = verify "int main(void) { return 42; }" in
  check int "one path" 1 r.Engine.paths;
  check bool "complete" true r.Engine.complete

let test_two_way_branch () =
  let r = verify "int main(void) { return __input(0) > 10 ? 1 : 0; }" in
  check int "two paths" 2 r.Engine.paths

let test_infeasible_pruned () =
  (* the second test is implied by the first: no extra fork *)
  let src = {|
int main(void) {
  int c = __input(0);
  if (c > 100) {
    if (c > 50) return 1;   /* always true here */
    return 2;               /* infeasible */
  }
  return 0;
}
|} in
  let r = verify src in
  check int "two paths, not three" 2 r.Engine.paths

let test_loop_paths_linear_in_input () =
  let src = {|
int main(void) {
  int n = 0;
  for (int i = 0; i < __input_size(); i++) {
    if (__input(i) == 0) break;
    n++;
  }
  return n;
}
|} in
  let r = verify ~n:3 src in
  (* paths: first zero byte at position 0..2, or none = 4 *)
  check int "n+1 paths" 4 r.Engine.paths

let test_exponential_paths () =
  let src = {|
int main(void) {
  int acc = 0;
  for (int i = 0; i < __input_size(); i++)
    if (__input(i) & 1) acc++;
  return acc;
}
|} in
  check int "2^3 paths" 8 (verify ~n:3 src).Engine.paths

let test_symbolic_size_independent_code () =
  (* a branch on nothing symbolic costs no fork *)
  let src = "int main(void) { int x = 5; return x > 2 ? 1 : 0; }" in
  let r = verify ~n:4 src in
  check int "one path" 1 r.Engine.paths;
  check int "no queries" 0 r.Engine.queries

(* ------------- budgets ------------- *)

let test_path_budget () =
  let src = {|
int main(void) {
  int acc = 0;
  for (int i = 0; i < __input_size(); i++)
    if (__input(i) & 1) acc++;
  return acc;
}
|} in
  let r =
    Engine.run
      ~config:{ Engine.default_config with Engine.input_size = 6; max_paths = 5 }
      (compile src)
  in
  check bool "incomplete" false r.Engine.complete;
  check bool "at most a few paths over budget" true (r.Engine.paths <= 6)

(* ------------- bug finding ------------- *)

let bug_kinds (r : Engine.result) =
  List.map (fun (b : Engine.bug) -> b.Engine.kind) r.Engine.bugs

let test_finds_oob () =
  let src = {|
int main(void) {
  int a[4];
  a[__input(0) & 7] = 1;
  return 0;
}
|} in
  let r = verify src in
  check bool "oob found" true
    (List.exists
       (fun k ->
         String.length k >= 5 && String.sub k 0 5 = "store")
       (bug_kinds r));
  (* the witness must replay to a trap in the interpreter *)
  List.iter
    (fun (b : Engine.bug) ->
      let rr = Interp.run (compile src) ~input:b.Engine.input in
      check bool "witness replays to a trap" true (rr.Interp.trap <> None))
    r.Engine.bugs

let test_finds_div_by_zero () =
  let src = {|
int main(void) {
  int d = __input(0);
  return 100 / d;
}
|} in
  let r = verify src in
  check bool "division bug found" true
    (List.mem "division by zero" (bug_kinds r));
  List.iter
    (fun (b : Engine.bug) ->
      let rr = Interp.run (compile src) ~input:b.Engine.input in
      check bool "witness traps" true (rr.Interp.trap = Some Interp.Div_by_zero))
    r.Engine.bugs

let test_finds_assert_failure () =
  let src = {|
int main(void) {
  __assert(__input(0) != 'Q');
  return 0;
}
|} in
  let r = verify src in
  check bool "assert bug" true (List.mem "assertion failure" (bug_kinds r));
  match r.Engine.bugs with
  | b :: _ -> check Alcotest.char "witness is Q" 'Q' b.Engine.input.[0]
  | [] -> Alcotest.fail "no bug"

let test_no_false_positives () =
  let src = {|
int main(void) {
  int a[4];
  a[__input(0) & 3] = 1;       /* always in bounds */
  int d = (__input(1) & 7) + 1; /* never zero */
  return 8 / d;
}
|} in
  let r = verify src in
  check int "no bugs" 0 (List.length r.Engine.bugs);
  check bool "complete" true r.Engine.complete

let test_abort_reached_conditionally () =
  let src = {|
int main(void) {
  if (__input(0) == 'x' && __input(1) == 'y') __abort();
  return 0;
}
|} in
  let r = verify src in
  check bool "abort found" true (List.mem "abort called" (bug_kinds r));
  match List.find_opt (fun (b : Engine.bug) -> b.Engine.kind = "abort called") r.Engine.bugs with
  | Some b -> check Alcotest.string "witness xy" "xy" b.Engine.input
  | None -> Alcotest.fail "no abort bug"

(* ------------- symbolic memory ------------- *)

let test_symbolic_index_read () =
  let src = {|
int table[4] = {10, 20, 30, 40};
int main(void) {
  return table[__input(0) & 3];
}
|} in
  let r = verify src in
  check int "single path (no fork on select)" 1 r.Engine.paths;
  check bool "complete" true r.Engine.complete;
  (* replay each witness *)
  List.iter
    (fun (input, code) ->
      let rr = Interp.run (compile src) ~input in
      check Alcotest.int64 "witness exit matches" code rr.Interp.exit_code)
    r.Engine.exit_codes

let test_symbolic_index_write () =
  let src = {|
int main(void) {
  int a[4] = {0, 0, 0, 0};
  a[__input(0) & 3] = 7;
  int sum = 0;
  for (int i = 0; i < 4; i++) sum += a[i];
  return sum;
}
|} in
  let r = verify src in
  check bool "complete" true r.Engine.complete;
  List.iter
    (fun ((_ : string), code) -> check Alcotest.int64 "sum always 7" 7L code)
    r.Engine.exit_codes

let test_pointer_in_memory () =
  (* pointers stored to and loaded from memory survive symbolically *)
  let src = {|
int main(void) {
  int x = 3;
  int y = 4;
  int *sel[2];
  sel[0] = &x;
  sel[1] = &y;
  return *sel[__input(0) & 1];
}
|} in
  let r = verify src in
  check bool "complete" true r.Engine.complete;
  List.iter
    (fun (input, code) ->
      let rr = Interp.run (compile src) ~input in
      check Alcotest.int64 "replay matches" code rr.Interp.exit_code)
    r.Engine.exit_codes

(* ------------- symbolic memory unit tests ------------- *)

module Memory = Overify_symex.Memory
module Bv = Overify_solver.Bv

let test_memory_concrete_rw () =
  let (m, obj) = Memory.alloc Memory.empty ~size:8 in
  let v = Bv.const 32 0xAABBCCDDL in
  (match Memory.write m ~obj ~off:(Bv.const 64 2L) ~width:4 ~v with
  | Ok m -> (
      match Memory.read m ~obj ~off:(Bv.const 64 2L) ~width:4 with
      | Ok t -> check bool "round trip" true (t = v)
      | Error _ -> Alcotest.fail "read failed")
  | Error _ -> Alcotest.fail "write failed");
  (* little-endian byte order *)
  match Memory.write m ~obj ~off:(Bv.const 64 0L) ~width:4 ~v with
  | Ok m -> (
      match Memory.read m ~obj ~off:(Bv.const 64 0L) ~width:1 with
      | Ok b -> check bool "LSB first" true (b = Bv.const 8 0xDDL)
      | Error _ -> Alcotest.fail "byte read failed")
  | Error _ -> Alcotest.fail "write failed"

let test_memory_bounds () =
  let (m, obj) = Memory.alloc Memory.empty ~size:4 in
  (match Memory.read m ~obj ~off:(Bv.const 64 1L) ~width:4 with
  | Error (Memory.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "straddling read must fail");
  match Memory.write m ~obj ~off:(Bv.const 64 (-1L)) ~width:1 ~v:(Bv.const 8 0L) with
  | Error (Memory.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "negative offset must fail"

let test_memory_cow_isolation () =
  (* a write in a forked state must not leak into the original *)
  let (m0, obj) = Memory.alloc Memory.empty ~size:1 in
  let m1 =
    match Memory.write m0 ~obj ~off:(Bv.const 64 0L) ~width:1 ~v:(Bv.const 8 42L) with
    | Ok m -> m
    | Error _ -> Alcotest.fail "write failed"
  in
  (match Memory.read m0 ~obj ~off:(Bv.const 64 0L) ~width:1 with
  | Ok t -> check bool "original unchanged" true (t = Bv.const 8 0L)
  | Error _ -> Alcotest.fail "read failed");
  match Memory.read m1 ~obj ~off:(Bv.const 64 0L) ~width:1 with
  | Ok t -> check bool "copy updated" true (t = Bv.const 8 42L)
  | Error _ -> Alcotest.fail "read failed"

let test_memory_symbolic_ite () =
  (* reading at a symbolic offset builds an ITE that evaluates correctly at
     every concrete position *)
  let (m, obj) = Memory.alloc_bytes Memory.empty "\x10\x20\x30\x40" ~size:4 in
  let off = Bv.zext 64 (Bv.var 8 4242) in
  match Memory.read m ~obj ~off ~width:1 with
  | Ok t ->
      List.iter
        (fun (pos, expect) ->
          let v = Bv.eval (fun _ -> Int64.of_int pos) t in
          check Alcotest.int64 (Printf.sprintf "byte %d" pos) expect v)
        [ (0, 0x10L); (1, 0x20L); (2, 0x30L); (3, 0x40L) ]
  | Error _ -> Alcotest.fail "symbolic read failed"

let test_memory_kill () =
  let (m, obj) = Memory.alloc Memory.empty ~size:4 in
  let m = Memory.kill m obj in
  match Memory.read m ~obj ~off:(Bv.const 64 0L) ~width:1 with
  | Error Memory.Dead_object -> ()
  | _ -> Alcotest.fail "dead object must not be readable"

(* ------------- soundness over exit codes ------------- *)

(** Every explored path's witness input must produce exactly the predicted
    exit code when run concretely — at every optimization level. *)
let test_path_witness_soundness () =
  let src = {|
int classify(int c) {
  if (c >= '0' && c <= '9') return 1;
  if (c >= 'a' && c <= 'z') return 2;
  if (c == ' ') return 3;
  return 0;
}
int main(void) {
  int a = classify(__input(0));
  int b = classify(__input(1));
  return a * 4 + b;
}
|} in
  List.iter
    (fun level ->
      let m = compile ~level src in
      let r =
        Engine.run
          ~config:{ Engine.default_config with Engine.input_size = 2 }
          m
      in
      check bool
        (Printf.sprintf "%s complete" level.Costmodel.name)
        true r.Engine.complete;
      List.iter
        (fun (input, code) ->
          let rr = Interp.run m ~input in
          if rr.Interp.exit_code <> code then
            Alcotest.failf "%s: witness %S predicted %Ld got %Ld"
              level.Costmodel.name input code rr.Interp.exit_code)
        r.Engine.exit_codes)
    Costmodel.all

(* paths partition behaviours: exit codes seen concretely on random inputs
   must all appear among the symbolic paths' exit codes *)
let test_paths_cover_concrete_behaviours () =
  let src = {|
int main(void) {
  int c = __input(0);
  if (c == 0) return 0;
  if (c & 1) return 1;
  if (c < 100) return 2;
  return 3;
}
|} in
  let m = compile src in
  let r =
    Engine.run ~config:{ Engine.default_config with Engine.input_size = 1 } m
  in
  check bool "complete" true r.Engine.complete;
  let symbolic_codes =
    List.sort_uniq compare (List.map snd r.Engine.exit_codes)
  in
  for c = 0 to 255 do
    let rr = Interp.run m ~input:(String.make 1 (Char.chr c)) in
    if not (List.mem rr.Interp.exit_code symbolic_codes) then
      Alcotest.failf "behaviour %Ld (input %d) not covered" rr.Interp.exit_code c
  done

(* ------------- calls and frames ------------- *)

let test_recursive_symbolic () =
  let src = {|
int depth(int n) { if (n <= 0) return 0; return 1 + depth(n - 1); }
int main(void) { return depth(__input(0) & 3); }
|} in
  let r = verify ~n:1 src in
  check int "4 paths" 4 r.Engine.paths;
  check bool "complete" true r.Engine.complete

let test_block_coverage () =
  (* exhaustive exploration covers every reachable block; an unreachable
     arm stays uncovered *)
  let src = {|
int main(void) {
  int c = __input(0);
  if (c > 300) return 1;   /* infeasible for a byte: block never covered */
  if (c & 1) return 2;
  return 3;
}
|} in
  let r = verify src in
  check bool "complete" true r.Engine.complete;
  check bool "covered most blocks" true
    (r.Engine.blocks_covered >= r.Engine.blocks_total - 2);
  check bool "the infeasible arm stays uncovered" true
    (r.Engine.blocks_covered < r.Engine.blocks_total)

let test_frame_isolation () =
  (* locals of different frames must not interfere after forking *)
  let src = {|
int probe(int c) {
  int local = 1;
  if (c > 10) local = 2;
  return local;
}
int main(void) { return probe(__input(0)) + probe(__input(1)) * 4; }
|} in
  let r = verify src in
  check int "4 paths" 4 r.Engine.paths;
  List.iter
    (fun (input, code) ->
      let rr = Interp.run (compile src) ~input in
      check Alcotest.int64 "replay" code rr.Interp.exit_code)
    r.Engine.exit_codes

let () =
  Alcotest.run "symex"
    [
      ( "paths",
        [
          Alcotest.test_case "single" `Quick test_single_path;
          Alcotest.test_case "two-way" `Quick test_two_way_branch;
          Alcotest.test_case "infeasible pruned" `Quick test_infeasible_pruned;
          Alcotest.test_case "linear loop" `Quick test_loop_paths_linear_in_input;
          Alcotest.test_case "exponential" `Quick test_exponential_paths;
          Alcotest.test_case "concrete branch free" `Quick
            test_symbolic_size_independent_code;
        ] );
      ("budgets", [ Alcotest.test_case "path budget" `Quick test_path_budget ]);
      ( "bugs",
        [
          Alcotest.test_case "out of bounds" `Quick test_finds_oob;
          Alcotest.test_case "division by zero" `Quick test_finds_div_by_zero;
          Alcotest.test_case "assert failure" `Quick test_finds_assert_failure;
          Alcotest.test_case "no false positives" `Quick test_no_false_positives;
          Alcotest.test_case "conditional abort" `Quick
            test_abort_reached_conditionally;
        ] );
      ( "memory",
        [
          Alcotest.test_case "symbolic read" `Quick test_symbolic_index_read;
          Alcotest.test_case "symbolic write" `Quick test_symbolic_index_write;
          Alcotest.test_case "pointers in memory" `Quick test_pointer_in_memory;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "witness replay at all levels" `Quick
            test_path_witness_soundness;
          Alcotest.test_case "paths cover behaviours" `Quick
            test_paths_cover_concrete_behaviours;
        ] );
      ( "frames",
        [
          Alcotest.test_case "recursion" `Quick test_recursive_symbolic;
          Alcotest.test_case "frame isolation" `Quick test_frame_isolation;
        ] );
      ( "coverage",
        [ Alcotest.test_case "block coverage" `Quick test_block_coverage ] );
      ( "memory unit",
        [
          Alcotest.test_case "concrete round trip" `Quick test_memory_concrete_rw;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "copy-on-write isolation" `Quick
            test_memory_cow_isolation;
          Alcotest.test_case "symbolic ITE read" `Quick test_memory_symbolic_ite;
          Alcotest.test_case "kill" `Quick test_memory_kill;
        ] );
    ]
