test/test_interp.ml: Alcotest Int64 Overify_interp Overify_ir Overify_minic Printf
