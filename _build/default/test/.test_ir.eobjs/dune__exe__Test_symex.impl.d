test/test_symex.ml: Alcotest Char Int64 List Overify_interp Overify_ir Overify_minic Overify_opt Overify_solver Overify_symex Printf String
