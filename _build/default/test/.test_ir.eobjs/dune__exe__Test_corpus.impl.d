test/test_corpus.ml: Alcotest Char Int64 List Option Overify_corpus Overify_interp Overify_ir Overify_minic Overify_opt Overify_symex Overify_vclib Printf String
