test/test_harness.ml: Alcotest List Option Overify_corpus Overify_harness Overify_opt Overify_symex
