test/test_absint.ml: Alcotest Char Hashtbl Int64 List Option Overify_absint Overify_corpus Overify_harness Overify_interp Overify_ir Overify_minic Overify_opt Printf QCheck2 QCheck_alcotest
