test/test_solver.ml: Alcotest Array Hashtbl Int64 List Overify_solver QCheck2 QCheck_alcotest Random
