test/test_minic.ml: Alcotest Hashtbl Int64 List Overify_corpus Overify_interp Overify_ir Overify_minic Overify_vclib Printf
