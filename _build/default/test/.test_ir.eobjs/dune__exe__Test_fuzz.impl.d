test/test_fuzz.ml: Alcotest Buffer Char List Overify_interp Overify_ir Overify_minic Overify_opt Overify_symex Printf QCheck2 QCheck_alcotest Random String
