test/test_ir.ml: Alcotest Array Builder Callgraph Cfg Dom Hashtbl Int32 Int64 Ir List Loop Option Overify_ir Printer String Typing Verify
