(** Abstract-interpretation tests: the interval domain's algebra, the
    analysis' soundness on concrete runs (QCheck), and the §2.1 precision
    experiment's direction. *)

module I = Overify_ir.Ir
module Interval = Overify_absint.Interval
module Analysis = Overify_absint.Analysis
module Precision = Overify_absint.Precision
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rng n = Interval.Range (Int64.of_int (fst n), Int64.of_int (snd n))

(* ------------- domain algebra ------------- *)

let test_join_meet () =
  check bool "join" true
    (Interval.equal (Interval.join (rng (0, 5)) (rng (3, 9))) (rng (0, 9)));
  check bool "meet" true
    (Interval.equal (Interval.meet (rng (0, 5)) (rng (3, 9))) (rng (3, 5)));
  check bool "disjoint meet is bot" true
    (Interval.is_bot (Interval.meet (rng (0, 2)) (rng (5, 9))));
  check bool "bot join" true
    (Interval.equal (Interval.join Interval.Bot (rng (1, 2))) (rng (1, 2)))

let test_leq () =
  check bool "subset" true (Interval.leq (rng (2, 3)) (rng (0, 5)));
  check bool "not subset" false (Interval.leq (rng (2, 9)) (rng (0, 5)));
  check bool "bot leq all" true (Interval.leq Interval.Bot (rng (0, 0)))

let test_widen_terminates () =
  let w = Interval.widen ~bits:32 (rng (0, 5)) (rng (0, 6)) in
  (* unstable upper bound jumps to the type max *)
  match w with
  | Interval.Range (0L, hi) -> check bool "widened" true (hi >= 0x7FFFFFFFL)
  | _ -> Alcotest.fail "unexpected widening"

(* abstract ops over-approximate the concrete ones (QCheck) *)
let prop_sound_ops =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range (-1000) 1000) (int_range 0 1000) (int_range (-1000) 1000)
        (int_range 0 1000))
  in
  QCheck2.Test.make ~name:"interval ops over-approximate" ~count:200 gen
    (fun (l1, d1, l2, d2) ->
      let a = rng (l1, l1 + d1) and b = rng (l2, l2 + d2) in
      (* sample concrete points *)
      let points r =
        match r with
        | Interval.Range (lo, hi) -> [ lo; Int64.div (Int64.add lo hi) 2L; hi ]
        | Interval.Bot -> []
      in
      List.for_all
        (fun (name, abs_op, conc_op) ->
          let res = abs_op ~bits:32 a b in
          List.for_all
            (fun x ->
              List.for_all
                (fun y ->
                  match conc_op x y with
                  | None -> true
                  | Some v ->
                      let inside =
                        match res with
                        | Interval.Range (lo, hi) -> v >= lo && v <= hi
                        | Interval.Bot -> false
                      in
                      if not inside then
                        QCheck2.Test.fail_reportf
                          "%s: %Ld op %Ld = %Ld outside %s" name x y v
                          (Interval.to_string res)
                      else true)
                (points b))
            (points a))
        [
          ("add", Interval.add, fun x y -> Some (Int64.add x y));
          ("sub", Interval.sub, fun x y -> Some (Int64.sub x y));
          ("mul", Interval.mul, fun x y -> Some (Int64.mul x y));
          ( "div", Interval.div,
            fun x y -> if y = 0L then None else Some (Int64.div x y) );
          ( "rem", Interval.rem,
            fun x y -> if y = 0L then None else Some (Int64.rem x y) );
          ("and", Interval.band, fun x y -> Some (Int64.logand x y));
          ("or", Interval.bor, fun x y -> Some (Int64.logor x y));
        ])

(* ------------- analysis on real programs ------------- *)

let analyze_main ?(level = Costmodel.o3) src =
  let m = (Pipeline.optimize level (Frontend.compile_source src)).Pipeline.modul in
  let fn = I.find_func_exn m "main" in
  (fn, Analysis.analyze fn)

let test_input_range () =
  let (fn, r) = analyze_main "int main(void) { return __input(0); }" in
  (* the returned register's range must include [0,255] and stay sane *)
  let ret_reg =
    List.find_map
      (fun (b : I.block) ->
        match b.I.term with I.Ret (Some (I.Reg x)) -> Some x | _ -> None)
      fn.I.blocks
  in
  match ret_reg with
  | Some x -> (
      match Analysis.IMap.find_opt x r.Analysis.reg_out with
      | Some (Interval.Range (lo, hi)) ->
          check bool "within [0,255]" true (lo >= 0L && hi <= 255L)
      | _ -> Alcotest.fail "no range for return value")
  | None -> ()  (* folded to a constant return: fine *)

let test_mask_bounds () =
  let (fn, r) = analyze_main
    "int main(void) { int a[8]; int i = __input(0) & 7; a[i] = 1; return a[i]; }"
  in
  (* every gep index must be provably in [0,7] somewhere in the analysis *)
  let ok = ref false in
  List.iter
    (fun (b : I.block) ->
      match Hashtbl.find_opt r.Analysis.block_in b.I.bid with
      | None -> ()
      | Some env0 ->
          let env = ref env0 in
          List.iter
            (fun i ->
              (match i with
              | I.Gep (_, _, _, idx) -> (
                  match Analysis.value_range !env idx with
                  | Interval.Range (lo, hi) when lo >= 0L && hi <= 7L ->
                      ok := true
                  | _ -> ())
              | _ -> ());
              match i with
              | I.Phi _ -> ()
              | i -> env := Analysis.transfer_inst ~deftbl:r.Analysis.deftbl !env i)
            b.I.insts)
    fn.I.blocks;
  check bool "masked index bounded" true !ok

let test_precision_counts_mask_program () =
  let src =
    "int main(void) { int a[8]; a[__input(0) & 7] = 1; return a[__input(1) & 7]; }"
  in
  let m = (Pipeline.optimize Costmodel.o3 (Frontend.compile_source src)).Pipeline.modul in
  let c = Precision.of_module m in
  check bool "accesses seen" true (c.Precision.geps >= 2);
  check int "all proved" c.Precision.geps c.Precision.geps_proved

let test_loop_bound_via_reg_comparison () =
  (* i < n with n <= 15: mem2reg + refinement should bound the index *)
  let src = {|
int main(void) {
  char buf[16];
  int n = __input_size();
  if (n > 15) n = 15;
  int sum = 0;
  for (int i = 0; i < n; i++) {
    buf[i] = (char)__input(i);
    sum += buf[i];
  }
  return sum & 0xff;
}
|} in
  let m = (Pipeline.optimize Costmodel.o3 (Frontend.compile_source src)).Pipeline.modul in
  let c = Precision.of_module m in
  check bool "at least one access proved in-bounds" true
    (c.Precision.geps_proved >= 1)

(* soundness vs concrete runs: the decided-branch claim must agree with the
   interpreter on random inputs *)
let prop_decided_branches_sound =
  QCheck2.Test.make ~name:"analysis never contradicts a concrete run"
    ~count:25
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 6))
    (fun input ->
      let src = {|
int main(void) {
  int c = __input(0);
  int masked = c & 15;
  int r = 0;
  if (masked < 16) r += 1;       /* always true: should be decided */
  if (masked > 20) r += 100;     /* always false */
  if (c > 128) r += 2;           /* genuinely input-dependent */
  return r;
}
|} in
      let m =
        (Pipeline.optimize Costmodel.o3 (Frontend.compile_source src)).Pipeline.modul
      in
      let res = Interp.run m ~input in
      (* r must be 1 or 3; the +100 arm must never fire *)
      let code = Int64.to_int res.Interp.exit_code in
      code = 1 || code = 3)

(* ------------- the experiment's direction ------------- *)

let test_precision_improves_with_optimization () =
  (* over a few corpus programs, the optimized builds must let the analysis
     prove at least as high a fraction of accesses as -O0 *)
  let progs = [ "tr"; "rev"; "sum" ] in
  let counts level =
    List.fold_left
      (fun acc name ->
        let p = Option.get (Overify_corpus.Programs.find name) in
        let c = Overify_harness.Experiment.compile level p in
        Precision.add acc (Precision.of_module c.Overify_harness.Experiment.modul))
      Precision.zero progs
  in
  let c0 = counts Costmodel.o0 in
  let c3 = counts Costmodel.o3 in
  let r0 = Precision.ratio c0.Precision.geps_proved c0.Precision.geps in
  let r3 = Precision.ratio c3.Precision.geps_proved c3.Precision.geps in
  check bool
    (Printf.sprintf "in-bounds ratio improves (%.2f -> %.2f)" r0 r3)
    true (r3 >= r0)

let () =
  Alcotest.run "absint"
    [
      ( "domain",
        [
          Alcotest.test_case "join/meet" `Quick test_join_meet;
          Alcotest.test_case "leq" `Quick test_leq;
          Alcotest.test_case "widening" `Quick test_widen_terminates;
          QCheck_alcotest.to_alcotest prop_sound_ops;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "input range" `Quick test_input_range;
          Alcotest.test_case "mask bounds" `Quick test_mask_bounds;
          Alcotest.test_case "precision on masks" `Quick
            test_precision_counts_mask_program;
          Alcotest.test_case "loop bound via register compare" `Quick
            test_loop_bound_via_reg_comparison;
          QCheck_alcotest.to_alcotest prop_decided_branches_sound;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "precision direction" `Quick
            test_precision_improves_with_optimization;
        ] );
    ]
