(** Corpus tests: every bundled utility compiles at all levels, behaves
    correctly on golden inputs, and is explorable by the engine; plus tests
    of both libc variants against each other and of the workload
    generator. *)

module I = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Workload = Overify_corpus.Workload
module Vclib = Overify_vclib.Vclib

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let compile ?(level = Costmodel.o0) (p : Programs.t) =
  (Pipeline.optimize level
     (Frontend.compile_sources [ Vclib.for_cost_model level; p.Programs.source ]))
    .Pipeline.modul

let find name = Option.get (Programs.find name)

let run ?level name ~input =
  Interp.run (compile ?level (find name)) ~input

(* ------------- compilation at all levels ------------- *)

let test_all_compile_all_levels () =
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun level ->
          let m = compile ~level p in
          check bool
            (Printf.sprintf "%s has main at %s" p.Programs.name
               level.Costmodel.name)
            true
            (I.find_func m "main" <> None))
        Costmodel.all)
    Programs.programs

(* ------------- golden behaviours ------------- *)

let golden_tests =
  let cases =
    [
      ("wc", "one two three", 3, None);
      ("wc", "  spaced   out  ", 2, None);
      ("wc", "", 0, None);
      ("echo", "hi", 0, Some "hi\n");
      ("echo", "a\\nb", 0, Some "a\nb\n");
      ("cat", "plain", 0, Some "plain");
      ("true", "", 0, None);
      ("false", "", 1, None);
      ("basename", "usr/bin/tool", 0, Some "tool\n");
      ("basename", "plain", 0, Some "plain\n");
      ("dirname", "usr/bin/tool", 0, Some "usr/bin\n");
      ("dirname", "plain", 0, Some ".\n");
      ("tail", "a\nbb\nccc", 0, Some "ccc");
      ("tr", "ab_a_a_", 0, Some "_b_b_");
      ("cut", "k:value:rest", 0, Some "value");
      ("seq", "3", 0, Some "1\n2\n3\n");
      ("rev", "abc", 0, Some "cba\n");
      ("sort", "dcba", 0, Some "abcd");
      ("grep", "xhay\nxs\nno", 0, Some "xs\n");
      ("test", "3<5", 0, None);
      ("test", "5<3", 1, None);
      ("test", "7=7", 0, None);
      ("factor", "15", 0, Some "3\n");
      ("factor", "13", 0, Some "13\n");
      ("base64", "abc", 0, Some "YWJj");
      ("base64", "a", 0, Some "YQ==");
      ("paste", "a\nb\nc", 0, Some "a\tb\tc\n");
      ("printf", "n=%d!", 0, Some "n=42!");
      ("uniq", "aa\naa\nbb", 0, Some "aa\nbb\n");
      ("comm", "abc;abc", 0, Some "same\n");
      ("nl", "x\ny", 0, Some "1 x\n2 y");
      ("expand", "\tz", 0, Some "    z");
      ("fold", "abcdefghij", 0, Some "abcdefgh\nij");
      ("tac", "a\nbb\nc", 0, Some "c\nbb\na\n");
      ("wcfull", "one two\nthree\n", 0, Some "2 3 14\n");
      ("cmp", "abc;abc", 0, None);
      ("cmp", "abc;abd", 1, Some "differ: 3\n");
      ("cmp", "ab;abc", 1, Some "eof\n");
      ("strings", "ab\001hello\002x", 0, Some "hello\n");
      ("lcase", "MiXeD", 0, Some "mixed");
      ("rot13", "Hello", 0, Some "Uryyb");
      ("hexdump", "AB", 0, Some "41 42\n");
      ("sysvsum", "abc", 0, Some "294\n");
      ("look", "k2;k1=v1;k2=v2", 0, Some "v2\n");
      ("look", "zz;k1=v1", 1, None);
      ("expr", "12+5", 0, Some "17\n");
      ("expr", "9*9", 0, Some "81\n");
      ("expr", "7-9", 0, Some "-2\n");
      ("join", "usr:bin:rest", 0, Some "usr-bin\n");
      ("caesar", "\003abz", 0, Some "dec");
      ("csplit", "keep%drop", 0, Some "keep");
      ("split", "\000abcd", 0, Some "ab");
      ("split", "\001abcd", 0, Some "cd");
      ("dd", "\001\002XabcdY", 0, Some "abc3\n");
    ]
  in
  List.map
    (fun (name, input, code, out) ->
      Alcotest.test_case
        (Printf.sprintf "%s %S" name input)
        `Quick
        (fun () ->
          let r = run name ~input in
          (match r.Interp.trap with
          | None -> ()
          | Some t -> Alcotest.failf "trap: %s" (Interp.string_of_trap t));
          check int "exit code" code (Int64.to_int r.Interp.exit_code);
          match out with
          | Some expected -> check string "output" expected r.Interp.output
          | None -> ()))
    cases

(* golden behaviours must hold at -OVERIFY too *)
let test_golden_at_overify () =
  List.iter
    (fun (name, input, expected_out) ->
      let r = run ~level:Costmodel.overify name ~input in
      check string (name ^ " output at -OVERIFY") expected_out r.Interp.output)
    [
      ("echo", "hey", "hey\n");
      ("tr", "ab_a_a_", "_b_b_");
      ("seq", "4", "1\n2\n3\n4\n");
      ("base64", "abc", "YWJj");
    ]

(* ------------- the two libc variants agree ------------- *)

let libc_test_harness = {|
int main(void) {
  char buf[16];
  int n = read_input(buf, 16);
  int acc = 0;
  for (int i = 0; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    acc += isspace(c) + 2 * isalpha(c) + 4 * isdigit(c) + 8 * isalnum(c)
         + 16 * isupper(c) + 32 * islower(c) + 64 * isprint(c);
    acc += toupper(c) - tolower(c);
  }
  acc += strlen(buf);
  char tmp[16];
  strcpy(tmp, buf);
  acc += 100 * (strcmp(tmp, buf) == 0);
  acc += strncmp(buf, tmp, 5);
  if (n > 0) {
    char *c1 = strchr(buf, buf[0]);
    acc += c1 != 0;
    char *c2 = strrchr(buf, buf[n - 1]);
    acc += c2 != 0;
  }
  acc += memcmp(buf, tmp, n) == 0;
  memset(tmp, 'x', 3);
  acc += tmp[2] == 'x';
  acc += atoi(buf);
  return acc & 0xff;
}
|}

let test_libc_variants_agree () =
  let m_exec =
    Frontend.compile_sources [ Vclib.source Vclib.Exec; libc_test_harness ]
  in
  let m_verify =
    Frontend.compile_sources [ Vclib.source Vclib.Verify; libc_test_harness ]
  in
  let inputs =
    [ ""; "a"; "Z9 ~"; "  42abc"; "-17"; "+3x"; "hello world"; "\tA Z\n";
      "0"; "abcabc"; String.init 12 (fun i -> Char.chr (i * 21)) ]
  in
  List.iter
    (fun input ->
      let r1 = Interp.run m_exec ~input in
      let r2 = Interp.run m_verify ~input in
      if r1.Interp.exit_code <> r2.Interp.exit_code then
        Alcotest.failf "libc variants disagree on %S: %Ld vs %Ld" input
          r1.Interp.exit_code r2.Interp.exit_code)
    inputs

(* the verification-oriented libc reduces path counts even at -O0: its
   branch-free predicates replace short-circuit control flow (paper 3,
   "library-level changes") *)
let test_verify_libc_reduces_paths () =
  let harness = {|
int main(void) {
  char buf[8];
  int n = read_input(buf, 8);
  int cls = 0;
  for (int i = 0; i < n; i++)
    cls += isspace((int)(unsigned char)buf[i])
         + isalpha((int)(unsigned char)buf[i]);
  return cls;
}
|} in
  let paths variant =
    let m = Frontend.compile_sources [ Vclib.source variant; harness ] in
    (Overify_symex.Engine.run
       ~config:
         { Overify_symex.Engine.default_config with input_size = 3; timeout = 30.0 }
       m)
      .Overify_symex.Engine.paths
  in
  let exec_paths = paths Vclib.Exec in
  let verify_paths = paths Vclib.Verify in
  check bool
    (Printf.sprintf "verify libc forks less (%d vs %d)" verify_paths exec_paths)
    true
    (verify_paths * 4 <= exec_paths)

(* precondition checks fire in the verify variant *)
let test_verify_libc_preconditions () =
  let src = {|
int main(void) {
  char *nullp = 0;
  return strlen(nullp);
}
|} in
  let m = Frontend.compile_sources [ Vclib.source Vclib.Verify; src ] in
  let r = Interp.run m ~input:"" in
  check bool "assert fired" true
    (r.Interp.trap = Some Interp.Assert_failure)

(* ------------- symbolic exploration sanity ------------- *)

let test_every_program_explorable () =
  List.iter
    (fun (p : Programs.t) ->
      let m = compile ~level:Costmodel.overify p in
      let r =
        Overify_symex.Engine.run
          ~config:
            { Overify_symex.Engine.default_config with
              input_size = 2; timeout = 20.0 }
          m
      in
      check bool
        (Printf.sprintf "%s explores at least one path" p.Programs.name)
        true
        (r.Overify_symex.Engine.paths >= 1);
      (* the corpus itself is bug-free *)
      if r.Overify_symex.Engine.bugs <> [] then
        Alcotest.failf "%s reported bugs: %s" p.Programs.name
          (String.concat ", "
             (List.map
                (fun (b : Overify_symex.Engine.bug) -> b.Overify_symex.Engine.kind)
                r.Overify_symex.Engine.bugs)))
    Programs.programs

(* ------------- workload generator ------------- *)

let test_workload_deterministic () =
  check string "same seed same data"
    (Workload.text ~seed:7 ~size:32)
    (Workload.text ~seed:7 ~size:32);
  check bool "different seeds differ" true
    (Workload.text ~seed:7 ~size:32 <> Workload.text ~seed:8 ~size:32)

let test_workload_text_no_nul () =
  let s = Workload.text ~seed:3 ~size:256 in
  check bool "no NUL bytes" true (not (String.contains s '\000'));
  check int "right size" 256 (String.length s)

let test_workload_batch () =
  let b = Workload.batch ~seed:1 ~size:8 ~count:5 in
  check int "count" 5 (List.length b);
  check bool "all sized" true (List.for_all (fun s -> String.length s = 8) b)

let () =
  Alcotest.run "corpus"
    [
      ( "compilation",
        [ Alcotest.test_case "all programs, all levels" `Quick
            test_all_compile_all_levels ] );
      ("golden", golden_tests);
      ( "golden at -OVERIFY",
        [ Alcotest.test_case "spot checks" `Quick test_golden_at_overify ] );
      ( "libc",
        [
          Alcotest.test_case "variants agree" `Quick test_libc_variants_agree;
          Alcotest.test_case "verify variant forks less" `Quick
            test_verify_libc_reduces_paths;
          Alcotest.test_case "verify preconditions" `Quick
            test_verify_libc_preconditions;
        ] );
      ( "symbolic",
        [ Alcotest.test_case "every program explorable" `Slow
            test_every_program_explorable ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "text shape" `Quick test_workload_text_no_nul;
          Alcotest.test_case "batch" `Quick test_workload_batch;
        ] );
    ]
