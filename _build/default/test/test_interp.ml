(** Interpreter tests: trap detection, the cycle cost model, and I/O. *)

module I = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let run ?input:(inp = "") ?fuel src =
  Interp.run ?fuel (Frontend.compile_source src) ~input:inp

let expect_trap name pred src =
  match (run src).Interp.trap with
  | Some t when pred t -> ()
  | Some t -> Alcotest.failf "%s: wrong trap %s" name (Interp.string_of_trap t)
  | None -> Alcotest.failf "%s: expected a trap" name

(* ------------- traps ------------- *)

let test_oob_read () =
  expect_trap "oob read"
    (function Interp.Out_of_bounds _ -> true | _ -> false)
    "int main(void) { int a[4]; return a[5]; }"

let test_oob_write () =
  expect_trap "oob write"
    (function Interp.Out_of_bounds _ -> true | _ -> false)
    "int main(void) { int a[4]; a[-1] = 3; return 0; }"

let test_div_zero () =
  expect_trap "sdiv 0"
    (( = ) Interp.Div_by_zero)
    "int main(void) { int z = 0; return 5 / z; }";
  expect_trap "srem 0"
    (( = ) Interp.Div_by_zero)
    "int main(void) { int z = 0; return 5 % z; }"

let test_null_deref () =
  expect_trap "null"
    (( = ) Interp.Null_deref)
    "int main(void) { int *q = 0; return *q; }"

let test_assert_abort () =
  expect_trap "assert"
    (( = ) Interp.Assert_failure)
    "int main(void) { __assert(1 == 2); return 0; }";
  expect_trap "abort"
    (( = ) Interp.Abort_called)
    "int main(void) { __abort(); return 0; }"

let test_fuel () =
  let r = run ~fuel:1000 "int main(void) { while (1) {} return 0; }" in
  check bool "ran out of fuel" true (r.Interp.trap = Some Interp.Out_of_fuel)

let test_no_false_traps () =
  let r = run "int main(void) { int a[4]; a[3] = 7; return a[3] / 1; }" in
  check bool "clean" true (r.Interp.trap = None);
  check int "value" 7 (Int64.to_int r.Interp.exit_code)

(* ------------- cost model ------------- *)

let test_cost_charges () =
  let r = run "int main(void) { return 1 + 2; }" in
  check bool "cycles positive" true (r.Interp.cycles > 0);
  check bool "insts positive" true (r.Interp.insts > 0)

let test_division_expensive () =
  let cheap = run "int main(void) { int x = 3; return x + x; }" in
  let costly = run "int main(void) { int x = 3; return 100 / x; }" in
  check bool "div costs more" true (costly.Interp.cycles > cheap.Interp.cycles)

let test_loop_cost_scales () =
  let cost n =
    (run (Printf.sprintf
            "int main(void) { int s = 0; for (int i = 0; i < %d; i++) s += i; return 0; }"
            n)).Interp.cycles
  in
  check bool "10x loop costs more" true (cost 100 > 5 * cost 10)

(* ------------- memory model ------------- *)

let test_pointer_roundtrip_memory () =
  let src = {|
int main(void) {
  int x = 5;
  int *slot[2];
  slot[0] = &x;
  slot[1] = 0;
  *slot[0] = 9;
  if (slot[1] != 0) return 1;
  return x;
}
|} in
  let r = run src in
  check bool "no trap" true (r.Interp.trap = None);
  check int "through stored pointer" 9 (Int64.to_int r.Interp.exit_code)

let test_use_after_scope () =
  let src = {|
int *evil(void) { int local = 3; return &local; }
int main(void) { int *q = evil(); return *q; }
|} in
  expect_trap "dangling" (( = ) Interp.Use_after_free) src

let test_global_mutation_persists () =
  let src = {|
int g = 1;
void bump(void) { g++; }
int main(void) { bump(); bump(); bump(); return g; }
|} in
  check int "g = 4" 4 (Int64.to_int (run src).Interp.exit_code)

let test_read_only_global () =
  let src = {|
int main(void) {
  char *s = "abc";
  s[0] = 'x';
  return 0;
}
|} in
  expect_trap "read-only"
    (function Interp.Out_of_bounds _ -> true | _ -> false)
    src

(* ------------- I/O ------------- *)

let test_input_boundaries () =
  let src = {|
int main(void) {
  /* out-of-range reads return 0, like KLEE's input model */
  return __input(-1) + __input(100) + __input(0);
}
|} in
  let r = Interp.run (Frontend.compile_source src) ~input:"A" in
  check int "only in-range byte" 65 (Int64.to_int r.Interp.exit_code)

let test_output_bytes () =
  let r = run "int main(void) { for (int i = 65; i < 70; i++) __output(i); return 0; }" in
  check Alcotest.string "ABCDE" "ABCDE" r.Interp.output

let () =
  Alcotest.run "interp"
    [
      ( "traps",
        [
          Alcotest.test_case "oob read" `Quick test_oob_read;
          Alcotest.test_case "oob write" `Quick test_oob_write;
          Alcotest.test_case "division by zero" `Quick test_div_zero;
          Alcotest.test_case "null deref" `Quick test_null_deref;
          Alcotest.test_case "assert/abort" `Quick test_assert_abort;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "no false traps" `Quick test_no_false_traps;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "charges" `Quick test_cost_charges;
          Alcotest.test_case "division expensive" `Quick test_division_expensive;
          Alcotest.test_case "loop scaling" `Quick test_loop_cost_scales;
        ] );
      ( "memory",
        [
          Alcotest.test_case "pointer round-trip" `Quick
            test_pointer_roundtrip_memory;
          Alcotest.test_case "use after scope" `Quick test_use_after_scope;
          Alcotest.test_case "global mutation" `Quick
            test_global_mutation_persists;
          Alcotest.test_case "read-only globals" `Quick test_read_only_global;
        ] );
      ( "io",
        [
          Alcotest.test_case "input boundaries" `Quick test_input_boundaries;
          Alcotest.test_case "output bytes" `Quick test_output_bytes;
        ] );
    ]
