examples/precision.ml: Int64 List Overify Printf
