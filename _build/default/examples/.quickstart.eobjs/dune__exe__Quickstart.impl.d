examples/quickstart.ml: List Overify Printf
