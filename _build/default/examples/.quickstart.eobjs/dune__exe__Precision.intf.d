examples/precision.mli:
