examples/coreutils_sweep.mli:
