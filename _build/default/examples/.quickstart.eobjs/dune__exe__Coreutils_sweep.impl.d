examples/coreutils_sweep.ml: List Overify Overify_harness Printf
