examples/buildchain.mli:
