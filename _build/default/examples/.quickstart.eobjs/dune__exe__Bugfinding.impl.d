examples/bugfinding.ml: Char List Overify Printf String
