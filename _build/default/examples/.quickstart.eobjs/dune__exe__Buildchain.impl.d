examples/buildchain.ml: List Option Overify Printf
