examples/quickstart.mli:
