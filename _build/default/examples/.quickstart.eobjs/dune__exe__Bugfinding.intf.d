examples/bugfinding.mli:
