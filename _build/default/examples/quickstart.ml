(** Quickstart: compile the paper's motivating [wc] example at every
    optimization level, execute it concretely, and symbolically explore all
    of its paths — a miniature Table 1.

    Run with: [dune exec examples/quickstart.exe] *)

module O = Overify

let wc_source = {|
/* Listing 1 of the paper: count words separated by whitespace or, if
   any != 0, by non-alphabetic characters. */
int wc(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) { ++res; new_word = 0; }
    }
  }
  return res;
}

int main(void) {
  char buf[16];
  read_input(buf, 16);
  return wc((unsigned char *)buf, 1);
}
|}

let () =
  print_endline "== Quickstart: wc at four optimization levels ==\n";
  List.iter
    (fun (level : O.Costmodel.t) ->
      (* 1. compile (the level picks its own libc variant) *)
      let m = O.compile ~level wc_source in
      (* 2. run concretely: words in a sample text *)
      let r = O.run m ~input:"hello brave new world" in
      (* 3. verify: exhaustively explore all paths for 3 symbolic bytes *)
      let v = O.verify ~input_size:3 ~timeout:60.0 m in
      Printf.printf
        "%-9s wc(\"hello brave new world\") = %Ld | t_run = %6d cycles | \
         verification (3 symbolic bytes): %4d paths, %6d instructions, %7.1f ms\n"
        level.O.Costmodel.name r.O.Interp.exit_code r.O.Interp.cycles
        v.O.Engine.paths v.O.Engine.instructions
        (v.O.Engine.time *. 1000.))
    O.Costmodel.all;
  print_endline
    "\nNote the trade-off the paper is about: -OVERIFY explores dramatically\n\
     fewer paths (linear in the input size instead of exponential), while\n\
     its branch-free code costs more cycles to execute than -O3.";
  (* show the branch-free loop body -OVERIFY produces (paper's Listing 2) *)
  let m = O.compile ~level:O.Costmodel.overify wc_source in
  print_endline "\n-OVERIFY code for main (note the select-based loop body):";
  print_string (O.Printer.func_to_string (O.Ir.find_func_exn m "main"))
