(** Sweep a few corpus utilities across symbolic input sizes, showing how
    path counts scale at each optimization level — the scaling behaviour
    behind the paper's Figure 4 (exponential at -O0, tamed under -OVERIFY).

    Run with: [dune exec examples/coreutils_sweep.exe] *)

module O = Overify
module E = Overify_harness.Experiment

let utilities = [ "wc"; "tr"; "cut"; "nl" ]
let sizes = [ 2; 3; 4 ]

let () =
  print_endline "== Path-count scaling across symbolic input sizes ==";
  List.iter
    (fun name ->
      match O.Programs.find name with
      | None -> ()
      | Some p ->
          Printf.printf "\n%s (%s)\n" name p.O.Programs.descr;
          Printf.printf "  %-9s" "level";
          List.iter (fun n -> Printf.printf "  n=%-7d" n) sizes;
          print_newline ();
          List.iter
            (fun (level : O.Costmodel.t) ->
              Printf.printf "  %-9s" level.O.Costmodel.name;
              List.iter
                (fun n ->
                  let c = E.compile level p in
                  let v = E.verify ~input_size:n ~timeout:20.0 c in
                  Printf.printf "  %-9s"
                    (Printf.sprintf "%d%s" v.O.Engine.paths
                       (if v.O.Engine.complete then "" else "+")))
                sizes;
              print_newline ())
            O.Costmodel.all)
    utilities;
  print_endline
    "\n('+' marks runs that hit the 20 s budget before completing: the\n\
     remaining paths were not counted.)"
