(** The build chain of the paper's Figure 3: one source, three build
    configurations —

    - a debug/development build ([-O0] + runtime checks, for humans),
    - a release build ([-O3], for CPUs),
    - a verification build ([-OVERIFY], for automated analysis tools).

    Run with: [dune exec examples/buildchain.exe] *)

module O = Overify

let program = (Option.get (O.Programs.find "tr")).O.Programs.source

let () =
  print_endline "== Figure 3: three build configurations of tr ==\n";

  (* Debug & develop: unoptimized, with explicit runtime checks so failures
     crash close to their cause. *)
  let debug_level =
    { O.Costmodel.o0 with
      O.Costmodel.name = "-O0 -g (debug)";
      scalar_opts = false;
      runtime_checks = true }
  in
  let debug = O.compile ~level:debug_level program in
  let r = O.run debug ~input:"ab_a_b_" in
  Printf.printf "%-18s tr('a'->'b') over \"_a_b_\": %S (%d cycles, %d static insts)\n"
    debug_level.O.Costmodel.name r.O.Interp.output r.O.Interp.cycles
    (List.fold_left (fun a f -> a + O.Ir.func_size f) 0 debug.O.Ir.funcs);

  (* Release: fastest execution. *)
  let release = O.compile ~level:O.Costmodel.o3 program in
  let r = O.run release ~input:"ab_a_b_" in
  Printf.printf "%-18s same run: %S (%d cycles, %d static insts)\n"
    "-O3 (release)" r.O.Interp.output r.O.Interp.cycles
    (List.fold_left (fun a f -> a + O.Ir.func_size f) 0 release.O.Ir.funcs);

  (* Automated analysis: fastest verification. *)
  let verif = O.compile ~level:O.Costmodel.overify program in
  let v = O.verify ~input_size:6 ~timeout:30.0 verif in
  Printf.printf "%-18s symbolic execution: %d paths, %d instructions, %.1f ms\n"
    "-OVERIFY (verify)" v.O.Engine.paths v.O.Engine.instructions
    (v.O.Engine.time *. 1000.);

  (* and the same analysis against the release build, for contrast *)
  let v3 = O.verify ~input_size:6 ~timeout:30.0 release in
  Printf.printf "%-18s symbolic execution: %d paths, %d instructions, %.1f ms\n"
    "-O3 (for contrast)" v3.O.Engine.paths v3.O.Engine.instructions
    (v3.O.Engine.time *. 1000.);

  (* metadata the -OVERIFY build preserves for downstream tools *)
  print_endline "\nAnnotations preserved in the -OVERIFY build of main:";
  let main = O.Ir.find_func_exn verif "main" in
  List.iter
    (fun (k, v) -> Printf.printf "  %-16s = %s\n" k v)
    (List.filteri (fun i _ -> i < 12) main.O.Ir.fmeta);

  print_endline
    "\nThe three artifacts are behaviorally equivalent; they differ in what\n\
     they are optimized for. This is the deployment story of the paper's\n\
     Figure 3: ship -O3, debug with checks, hand -OVERIFY to the verifier."
