(** Bug finding: the engine flags memory-safety violations, division by
    zero and assertion failures on every feasible path, and produces a
    concrete input reproducing each — and, as the paper verified for its
    prototype, the bugs found at [-O0]/[-O3] are also found at [-OVERIFY].

    Run with: [dune exec examples/bugfinding.exe] *)

module O = Overify

(* A parser with two planted bugs:
   - writing the NUL terminator out of bounds when the field is exactly
     8 bytes long (classic off-by-one);
   - dividing by the parsed field width without checking for zero. *)
let buggy_source = {|
int parse_field(const char *s, char *out) {
  int i = 0;
  while (s[i] && s[i] != ':' && i < 8) {
    out[i] = s[i];
    i++;
  }
  out[i] = 0;            /* BUG: i may be 8, out has 8 bytes */
  return i;
}

int main(void) {
  char buf[16];
  char field[8];
  int n = read_input(buf, 16);
  if (n == 0) return 0;
  int w = parse_field(buf, field);
  int cols = 64 / w;     /* BUG: w = 0 when the input starts with ':' */
  return cols;
}
|}

let () =
  print_endline "== Bug finding across optimization levels ==\n";
  List.iter
    (fun (level : O.Costmodel.t) ->
      let m = O.compile ~level buggy_source in
      let v = O.verify ~input_size:8 ~timeout:15.0 m in
      Printf.printf "%-9s %d paths%s, %d bug(s) found in %.1f ms:\n%!"
        level.O.Costmodel.name v.O.Engine.paths
        (if v.O.Engine.complete then "" else "+ (budget hit)")
        (List.length v.O.Engine.bugs)
        (v.O.Engine.time *. 1000.);
      List.iter
        (fun (b : O.Engine.bug) ->
          Printf.printf "    %-45s reproduced by input \"%s\"\n" b.O.Engine.kind
            (String.concat ""
               (List.map
                  (fun c ->
                    if c >= ' ' && c < '\127' then String.make 1 c
                    else Printf.sprintf "\\x%02x" (Char.code c))
                  (List.init (String.length b.O.Engine.input) (String.get b.O.Engine.input)))))
        v.O.Engine.bugs)
    O.Costmodel.all;
  print_endline
    "\nEach reported input is a concrete witness: replaying it in the\n\
     interpreter triggers the same failure. Verify one:";
  let m = O.compile ~level:O.Costmodel.overify buggy_source in
  let v = O.verify ~input_size:8 ~timeout:15.0 m in
  List.iter
    (fun (b : O.Engine.bug) ->
      let r = O.run m ~input:b.O.Engine.input in
      Printf.printf "  replaying %-45s -> %s\n" b.O.Engine.kind
        (match r.O.Interp.trap with
        | Some t -> "TRAP: " ^ O.Interp.string_of_trap t
        | None -> "no trap (bug depends on engine checks)"))
    v.O.Engine.bugs
