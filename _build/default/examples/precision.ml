(** The paper's §2.1 precision claim, demonstrated on one program: "For
    simple verification tools that employ coarse-grained abstractions …
    compiler transformations can increase their precision and allow them to
    prove more facts about a program."

    The "simple tool" here is an ordinary interval analysis (lib/absint).
    On the -O0 build, every interesting value lives in memory, so the
    analysis sees nothing.  After mem2reg + inlining + simplification it can
    bound loop indices and prove the buffer accesses safe.

    Run with: [dune exec examples/precision.exe] *)

module O = Overify

let source = {|
int main(void) {
  char buf[16];
  int n = __input_size();
  if (n > 15) n = 15;               /* clamp: buf[i] is always in bounds */
  int vowels = 0;
  for (int i = 0; i < n; i++) {
    buf[i] = (char)__input(i);
    int c = tolower((int)(unsigned char)buf[i]);
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') vowels++;
  }
  return vowels;
}
|}

let () =
  print_endline "== Interval-analysis precision across optimization levels ==\n";
  Printf.printf "%-9s  %-28s  %-24s  %s\n" "level" "accesses proved in-bounds"
    "branches decided" "registers bounded";
  List.iter
    (fun (level : O.Costmodel.t) ->
      let m = O.compile ~level source in
      let c = O.Precision.of_module m in
      Printf.printf "%-9s  %14d / %-11d  %10d / %-11d  %8d / %d\n"
        level.O.Costmodel.name c.O.Precision.geps_proved c.O.Precision.geps
        c.O.Precision.branches_decided c.O.Precision.branches
        c.O.Precision.regs_bounded c.O.Precision.regs)
    O.Costmodel.all;
  print_endline
    "\nAt -O0 the loop index and the clamped length live in stack slots, so\n\
     the interval analysis cannot relate them and proves nothing.  Once\n\
     mem2reg exposes them as registers, the analysis bounds i by n <= 15 and\n\
     proves the buffer accesses safe — the same coarse tool, a more\n\
     verification-friendly presentation of the same program.";
  (* show a couple of concrete ranges the analysis derives at -OVERIFY *)
  let m = O.compile ~level:O.Costmodel.overify source in
  let main = O.Ir.find_func_exn m "main" in
  let r = O.Absint.analyze main in
  print_endline "\nSample facts at -OVERIFY (register: range):";
  let shown = ref 0 in
  O.Absint.IMap.iter
    (fun reg range ->
      match range with
      | O.Interval.Range (lo, hi)
        when !shown < 8 && hi <> Int64.max_int && lo <> Int64.min_int
             && Int64.sub hi lo < 300L ->
          incr shown;
          Printf.printf "  %%%d: %s\n" reg (O.Interval.to_string range)
      | _ -> ())
    r.O.Absint.reg_out
