(** Robustness suite: the hardened-verification contract.

    Covers the fault-injection schedule language, the engine's crash
    containment and graceful-degradation ladder, the Store's
    length+checksum trailer against truncated/flipped files (including
    injected corrupt/partial saves), checkpoint save/load discipline, and
    the headline kill/resume determinism property. *)

module Engine = Overify_symex.Engine
module Checkpoint = Overify_symex.Checkpoint
module Store = Overify_solver.Store
module Solver = Overify_solver.Solver
module Bv = Overify_solver.Bv
module Fault = Overify_fault.Fault
module Cancel = Overify_fault.Cancel
module Costmodel = Overify_opt.Costmodel
module Programs = Overify_corpus.Programs
module H = Overify_harness

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let program name = Option.get (Programs.find name)

let compile ?(level = Costmodel.o0) name =
  H.Experiment.compile level (program name)

let faults spec =
  match Fault.parse spec with
  | Ok f -> f
  | Error msg -> Alcotest.failf "spec %S failed to parse: %s" spec msg

let tmpdir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f ^ ".d"

let rm_rf dir =
  (if Sys.file_exists dir && Sys.is_directory dir then
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir));
  try Sys.rmdir dir with Sys_error _ -> ()

(* ------------- fault schedule language ------------- *)

let test_fault_parse_good () =
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Ok f -> check Alcotest.string "spec kept" spec (Fault.spec f)
      | Error msg -> Alcotest.failf "%S should parse: %s" spec msg)
    [
      "timeout@3"; "corrupt@1"; "partial@2"; "alloc@5"; "crash@7"; "kill@9";
      "stall@2"; "stall@1,timeout@3";
      "timeout@3,timeout@7"; "alloc@2;crash@5"; " timeout@1 , alloc@2 ";
      "seed:42"; "seed:42:5"; "seed:0:1,kill@3";
    ]

let test_fault_parse_bad () =
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" spec)
    [
      "timeout@"; "timeout@x"; "timeout@0"; "timeout@-3"; "bogus@3"; "@3";
      "timeout"; "seed:"; "seed:x"; "seed:1:0"; "timeout@3@4"; "stall@";
      "stall@0";
    ]

let test_fault_fire_semantics () =
  let f = faults "crash@2,crash@4" in
  let fires =
    List.init 5 (fun _ -> Fault.fire (Some f) Fault.Worker_crash)
  in
  check (Alcotest.list bool) "fires on visits 2 and 4"
    [ false; true; false; true; false ] fires;
  check int "two fired" 2 (Fault.injected_total f);
  check int "crash counter" 2 (List.assoc "crash" (Fault.injected f));
  check int "timeout counter present and zero" 0
    (List.assoc "timeout" (Fault.injected f));
  (* other kinds don't tick this site *)
  check bool "other kind unaffected" false
    (Fault.fire (Some f) Fault.Solver_timeout);
  check bool "none is free" false (Fault.fire None Fault.Worker_crash)

let test_fault_of_env () =
  Unix.putenv "OVERIFY_FAULTS" "timeout@2";
  (match Fault.of_env () with
  | Some f -> check Alcotest.string "parsed from env" "timeout@2" (Fault.spec f)
  | None -> Alcotest.fail "env schedule ignored");
  Unix.putenv "OVERIFY_FAULTS" "not-a-spec";
  (match Fault.of_env () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed env schedule must fail fast");
  Unix.putenv "OVERIFY_FAULTS" "";
  check bool "empty means none" true (Fault.of_env () = None)

(* ------------- cancellation tokens and the stall wedge ------------- *)

let test_cancel_token_basics () =
  let c = Cancel.create () in
  check bool "fresh token unset" false (Cancel.cancelled c);
  check Alcotest.string "no reason yet" "" (Cancel.reason c);
  Cancel.check (Some c);
  Cancel.check None;
  Cancel.cancel c ~reason:"first";
  Cancel.cancel c ~reason:"second";
  check bool "set" true (Cancel.cancelled c);
  check Alcotest.string "first reason wins" "first" (Cancel.reason c);
  match Cancel.check (Some c) with
  | exception Cancel.Cancelled r ->
      check Alcotest.string "check raises the reason" "first" r
  | () -> Alcotest.fail "check on a cancelled token must raise"

let test_cancel_deadline_self_arms () =
  let now = ref 0.0 in
  let c = Cancel.create ~deadline:10.0 ~now:(fun () -> !now) () in
  Cancel.check (Some c);
  check bool "before the deadline: unset" false (Cancel.cancelled c);
  now := 11.0;
  (* [cancelled] is a pure flag read — it must NOT consult the clock
     (that is what lets an injected stall wedge past its deadline until
     the watchdog fires) *)
  check bool "cancelled ignores the clock" false (Cancel.cancelled c);
  (match Cancel.check (Some c) with
  | exception Cancel.Cancelled r ->
      check Alcotest.string "self-armed reason" "deadline exceeded" r
  | () -> Alcotest.fail "past-deadline check must raise");
  check bool "check armed the flag" true (Cancel.cancelled c)

let test_stall_without_token_times_out () =
  (* a stall with no cancellation token attached must not hang a
     process that has no way to free it: it degrades to Timeout *)
  let ctx = Solver.create ~faults:(faults "stall@1") () in
  match Solver.check ctx [ Bv.tt ] with
  | exception Solver.Timeout -> ()
  | _ -> Alcotest.fail "token-less stall must raise Solver.Timeout"

let test_cancel_checked_before_query () =
  let c = Cancel.create () in
  Cancel.cancel c ~reason:"pre-cancelled";
  let ctx = Solver.create ~cancel:c () in
  match Solver.check ctx [ Bv.tt ] with
  | exception Cancel.Cancelled r ->
      check Alcotest.string "reason surfaces" "pre-cancelled" r
  | _ -> Alcotest.fail "a cancelled token must stop the query"

let test_stall_unblocks_on_cancel () =
  (* the watchdog scenario in miniature: the stall polls the token, so
     an explicit cancel from another thread frees it promptly *)
  let c = Cancel.create () in
  let ctx = Solver.create ~cancel:c ~faults:(faults "stall@1") () in
  let canceller =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Cancel.cancel c ~reason:"unwedged")
      ()
  in
  (match Solver.check ctx [ Bv.tt ] with
  | exception Cancel.Cancelled r ->
      check Alcotest.string "watchdog reason surfaces" "unwedged" r
  | _ -> Alcotest.fail "stall must end in Cancelled once the token fires");
  Thread.join canceller

let test_engine_deadline_degrades () =
  (* a token whose deadline already passed: the run stops at the first
     cooperative check and reports a deadline_exceeded degradation
     instead of raising *)
  let c = compile "wc" in
  let cancel = Cancel.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  let r =
    Engine.run
      ~config:
        {
          Engine.default_config with
          Engine.input_size = 2;
          cancel = Some cancel;
        }
      c.H.Experiment.modul
  in
  check bool "run is degraded" false r.Engine.complete;
  check bool "deadline_exceeded entry present" true
    (List.exists
       (fun (d : Engine.degradation) ->
         d.Engine.d_kind = "deadline_exceeded"
         && d.Engine.d_where = "deadline exceeded")
       r.Engine.degradations)

(* ------------- containment and the degradation ladder ------------- *)

let verify ?faults ?checkpoint_dir ?checkpoint_every ?resume ?(input_size = 2)
    c =
  H.Experiment.verify ~input_size ~timeout:60.0 ?faults ?checkpoint_dir
    ?checkpoint_every ?resume c

let has_kind kind (r : Engine.result) =
  List.exists
    (fun (d : Engine.degradation) -> d.Engine.d_kind = kind)
    r.Engine.degradations

let test_crash_contained () =
  let c = compile "wc" in
  let clean = verify c in
  check bool "baseline completes" true clean.Engine.complete;
  let r = verify ~faults:(faults "crash@200") c in
  check bool "run survives the crash" true (r.Engine.paths >= 0);
  check bool "degraded" false r.Engine.complete;
  check bool "worker_crash reported" true (has_kind "worker_crash" r);
  check bool "verdict subset" true (r.Engine.paths <= clean.Engine.paths);
  check int "fault accounted" 1 (List.assoc "crash" r.Engine.faults_injected)

let test_solver_timeout_degrades () =
  let c = compile "wc" in
  let r = verify ~faults:(faults "timeout@3") c in
  check bool "survives" true (r.Engine.paths >= 0);
  check bool "solver_timeout reported" true (has_kind "solver_timeout" r);
  check int "fault accounted" 1 (List.assoc "timeout" r.Engine.faults_injected)

let test_alloc_exhaustion_degrades () =
  let c = compile "wc" in
  let r = verify ~faults:(faults "alloc@3") c in
  check bool "alloc_exhausted reported" true (has_kind "alloc_exhausted" r);
  check bool "degraded, not crashed" false r.Engine.complete

let test_kill_escapes () =
  let c = compile "wc" in
  match verify ~faults:(faults "kill@50") c with
  | (_ : Engine.result) -> Alcotest.fail "kill must not be contained"
  | exception Fault.Killed _ -> ()

let test_injected_runs_deterministic () =
  let c = compile "wc" in
  let r1 = verify ~faults:(faults "crash@200,timeout@2") c in
  let r2 = verify ~faults:(faults "crash@200,timeout@2") c in
  check int "paths agree" r1.Engine.paths r2.Engine.paths;
  check bool "exits agree" true (r1.Engine.exit_codes = r2.Engine.exit_codes);
  check bool "degradations agree" true
    (r1.Engine.degradations = r2.Engine.degradations)

(* ------------- store: trailer vs partial writes ------------- *)

let store_file dir = Filename.concat dir "solver-cache.bin"

let populate_store ?faults dir =
  let s = Store.load ?faults ~dir () in
  Store.add s "k1" Store.E_unsat;
  Store.add s "k2" (Store.E_sat [| 1L; 2L; 3L |]);
  Store.save s;
  s

(** Satellite: a byte-level truncation sweep.  Every proper prefix of a
    valid store file must load as an empty store — the length + checksum
    trailer catches truncations that keep the magic and header intact. *)
let test_store_truncation_sweep () =
  let dir = tmpdir "overify_trunc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  ignore (populate_store dir);
  let full = In_channel.with_open_bin (store_file dir) In_channel.input_all in
  let n = String.length full in
  check bool "store written" true (n > 0);
  (let s = Store.load ~dir () in
   check int "intact file loads fully" 2 (Store.loaded s));
  for len = 0 to n - 1 do
    Out_channel.with_open_bin (store_file dir) (fun oc ->
        Out_channel.output_string oc (String.sub full 0 len));
    let s = Store.load ~dir () in
    if Store.loaded s <> 0 then
      Alcotest.failf "truncation to %d/%d bytes loaded %d entries" len n
        (Store.loaded s)
  done

let test_store_byte_flip_detected () =
  let dir = tmpdir "overify_flip" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  ignore (populate_store dir);
  let full = In_channel.with_open_bin (store_file dir) In_channel.input_all in
  (* flip one byte at a spread of positions, including header and payload *)
  let n = String.length full in
  List.iter
    (fun pos ->
      if pos < n then begin
        let b = Bytes.of_string full in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        Out_channel.with_open_bin (store_file dir) (fun oc ->
            Out_channel.output_bytes oc b);
        let s = Store.load ~dir () in
        if Store.loaded s <> 0 then
          Alcotest.failf "flip at byte %d survived load (%d entries)" pos
            (Store.loaded s)
      end)
    [ 0; 5; 21; 25; 33; n / 2; n - 17; n - 1 ]

let test_store_injected_corruption_loads_empty () =
  List.iter
    (fun spec ->
      let dir = tmpdir "overify_chaos_store" in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let f = faults spec in
      ignore (populate_store ~faults:f dir);
      check int (spec ^ " fired") 1 (Fault.injected_total f);
      let s = Store.load ~dir () in
      check int (spec ^ " loads empty") 0 (Store.loaded s))
    [ "corrupt@1"; "partial@1" ]

(* ------------- checkpoint discipline ------------- *)

let budget_config ~max_paths ~dir =
  {
    Engine.default_config with
    Engine.input_size = 2;
    timeout = 60.0;
    max_paths;
    checkpoint_dir = Some dir;
    checkpoint_every = 2;
  }

let test_checkpoint_left_by_budget_run () =
  let c = compile "wc" in
  let dir = tmpdir "overify_ck" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let r = Engine.run ~config:(budget_config ~max_paths:6 ~dir) c.H.Experiment.modul in
  check bool "budget run degraded" false r.Engine.complete;
  check bool "snapshot kept (resumable)" true
    (Sys.file_exists (Checkpoint.file ~dir));
  let digest =
    Checkpoint.fingerprint c.H.Experiment.modul ~input_size:2
      ~check_bounds:true
  in
  (match Checkpoint.load ~dir ~digest with
  | Some s ->
      check bool "frontier non-empty" true (s.Checkpoint.ck_frontier <> []);
      check bool "snapshot paths <= budget" true (s.Checkpoint.ck_paths <= 6)
  | None -> Alcotest.fail "snapshot did not load");
  (* a fingerprint mismatch must refuse the snapshot *)
  check bool "wrong digest refused" true
    (Checkpoint.load ~dir ~digest:"not-the-program" = None);
  (* resuming completes the run and deletes the snapshot *)
  let resumed =
    Engine.run
      ~config:
        { (budget_config ~max_paths:Engine.default_config.Engine.max_paths
             ~dir)
          with Engine.resume = true }
      c.H.Experiment.modul
  in
  check bool "resumed flag" true resumed.Engine.resumed;
  check bool "resumed run completes" true resumed.Engine.complete;
  check bool "snapshot deleted after completion" false
    (Sys.file_exists (Checkpoint.file ~dir))

let test_torn_checkpoint_ignored () =
  let c = compile "wc" in
  let dir = tmpdir "overify_ck_torn" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let r = Engine.run ~config:(budget_config ~max_paths:6 ~dir) c.H.Experiment.modul in
  check bool "budget run degraded" false r.Engine.complete;
  let path = Checkpoint.file ~dir in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full * 2 / 3)));
  let digest =
    Checkpoint.fingerprint c.H.Experiment.modul ~input_size:2
      ~check_bounds:true
  in
  check bool "torn snapshot loads as none" true
    (Checkpoint.load ~dir ~digest = None);
  (* resume against the torn file silently starts fresh and completes *)
  let resumed =
    Engine.run
      ~config:
        { (budget_config ~max_paths:Engine.default_config.Engine.max_paths
             ~dir)
          with Engine.resume = true }
      c.H.Experiment.modul
  in
  check bool "fresh start, not resumed" false resumed.Engine.resumed;
  check bool "completes" true resumed.Engine.complete

(* ------------- the headline: kill, resume, identical verdicts ------------- *)

let test_kill_resume_identical () =
  let c = compile "wc" in
  let clean = verify c in
  check bool "baseline completes" true clean.Engine.complete;
  let k =
    H.Chaos.kill_and_resume ~input_size:2 ~timeout:60.0 c ~clean
  in
  if not k.H.Chaos.k_ok then
    Alcotest.failf "kill/resume: %s" k.H.Chaos.k_detail

(* ------------- chaos sweep mini (one program) ------------- *)

let test_chaos_sweep_smoke () =
  let r =
    H.Chaos.run ~input_size:2 ~timeout:60.0 ~programs:[ program "wc" ]
      ~kill_resume:false ~json_path:"" ()
  in
  check int "no contract violations" 0 r.H.Chaos.failures;
  check bool "some fault fired somewhere" true
    (List.exists (fun cl -> cl.H.Chaos.c_injected > 0) r.H.Chaos.cells)

let () =
  Alcotest.run "robust"
    [
      ( "faults",
        [
          Alcotest.test_case "parse good" `Quick test_fault_parse_good;
          Alcotest.test_case "parse bad" `Quick test_fault_parse_bad;
          Alcotest.test_case "fire semantics" `Quick test_fault_fire_semantics;
          Alcotest.test_case "env schedule" `Quick test_fault_of_env;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "token basics" `Quick test_cancel_token_basics;
          Alcotest.test_case "deadline self-arms" `Quick
            test_cancel_deadline_self_arms;
          Alcotest.test_case "stall without token times out" `Quick
            test_stall_without_token_times_out;
          Alcotest.test_case "cancel checked before query" `Quick
            test_cancel_checked_before_query;
          Alcotest.test_case "stall unblocks on cancel" `Quick
            test_stall_unblocks_on_cancel;
          Alcotest.test_case "engine deadline degrades" `Quick
            test_engine_deadline_degrades;
        ] );
      ( "containment",
        [
          Alcotest.test_case "crash contained" `Quick test_crash_contained;
          Alcotest.test_case "solver timeout degrades" `Quick
            test_solver_timeout_degrades;
          Alcotest.test_case "alloc exhaustion degrades" `Quick
            test_alloc_exhaustion_degrades;
          Alcotest.test_case "kill escapes" `Quick test_kill_escapes;
          Alcotest.test_case "faulted runs deterministic" `Quick
            test_injected_runs_deterministic;
        ] );
      ( "store",
        [
          Alcotest.test_case "truncation sweep" `Quick
            test_store_truncation_sweep;
          Alcotest.test_case "byte flips detected" `Quick
            test_store_byte_flip_detected;
          Alcotest.test_case "injected corruption loads empty" `Quick
            test_store_injected_corruption_loads_empty;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "budget run leaves a resumable snapshot" `Quick
            test_checkpoint_left_by_budget_run;
          Alcotest.test_case "torn snapshot ignored" `Quick
            test_torn_checkpoint_ignored;
        ] );
      ( "kill-resume",
        [
          Alcotest.test_case "byte-identical verdicts" `Slow
            test_kill_resume_identical;
        ] );
      ( "chaos",
        [ Alcotest.test_case "sweep smoke" `Slow test_chaos_sweep_smoke ] );
    ]
