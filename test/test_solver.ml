(** Solver tests: term simplification, the CDCL SAT core, bit-blasting
    correctness (QCheck against brute force and against [Bv.eval]), and the
    query cache. *)

module Bv = Overify_solver.Bv
module Sat = Overify_solver.Sat
module Solver = Overify_solver.Solver

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------- term constructors ------------- *)

let test_hash_consing () =
  let x = Bv.var 8 1 in
  let a = Bv.binop Bv.Add x (Bv.const 8 3L) in
  let b = Bv.binop Bv.Add x (Bv.const 8 3L) in
  check bool "same id" true (a.Bv.id = b.Bv.id)

let test_const_fold () =
  check bool "add folds" true
    (Bv.binop Bv.Add (Bv.const 8 200L) (Bv.const 8 100L) = Bv.const 8 44L);
  check bool "cmp folds" true
    (Bv.cmp Bv.Slt (Bv.const 8 0xFFL) (Bv.const 8 1L) = Bv.tt)

let test_identities () =
  let x = Bv.var 32 7 in
  check bool "x+0" true (Bv.binop Bv.Add x (Bv.const 32 0L) = x);
  check bool "x*1" true (Bv.binop Bv.Mul x (Bv.const 32 1L) = x);
  check bool "x-x" true (Bv.binop Bv.Sub x x = Bv.const 32 0L);
  check bool "x^x" true (Bv.binop Bv.Xor x x = Bv.const 32 0L);
  check bool "x&x" true (Bv.binop Bv.And x x = x);
  check bool "x==x" true (Bv.cmp Bv.Eq x x = Bv.tt);
  check bool "x<x" true (Bv.cmp Bv.Slt x x = Bv.ff);
  check bool "not not" true (Bv.not_ (Bv.not_ (Bv.cmp Bv.Ne x (Bv.const 32 0L)))
                             = Bv.cmp Bv.Ne x (Bv.const 32 0L))

let test_pow2_strength_reduction () =
  let x = Bv.var 32 8 in
  (match (Bv.binop Bv.Udiv x (Bv.const 32 8L)).Bv.node with
  | Bv.Bin (Bv.Lshr, _, _) -> ()
  | _ -> Alcotest.fail "udiv by 8 should become lshr");
  match (Bv.binop Bv.Urem x (Bv.const 32 8L)).Bv.node with
  | Bv.Bin (Bv.And, _, _) -> ()
  | _ -> Alcotest.fail "urem by 8 should become and"

let test_ite_simplify () =
  let c = Bv.cmp Bv.Eq (Bv.var 8 9) (Bv.const 8 1L) in
  check bool "ite c 1 0 = c" true (Bv.ite c Bv.tt Bv.ff = c);
  check bool "ite c x x = x" true
    (let x = Bv.var 8 10 in Bv.ite c x x = x);
  (* (ite c 5 9) == 5  ==>  c *)
  let t = Bv.cmp Bv.Eq (Bv.ite c (Bv.const 8 5L) (Bv.const 8 9L)) (Bv.const 8 5L) in
  check bool "ite-eq reduces" true (t = c)

let test_extract_concat () =
  let hi = Bv.var 8 11 and lo = Bv.var 8 12 in
  let cc = Bv.concat hi lo in
  check bool "extract low" true (Bv.extract ~hi:7 ~lo:0 cc = lo);
  check bool "extract high" true (Bv.extract ~hi:15 ~lo:8 cc = hi);
  check bool "zext const" true (Bv.zext 32 (Bv.const 8 0xFFL) = Bv.const 32 0xFFL);
  check bool "sext const" true
    (Bv.sext 32 (Bv.const 8 0xFFL) = Bv.const 32 0xFFFFFFFFL);
  check bool "trunc of zext" true (Bv.trunc 8 (Bv.zext 32 lo) = lo)

let test_eval () =
  let x = Bv.var 8 1 and y = Bv.var 8 2 in
  let t = Bv.ite (Bv.cmp Bv.Ult x y) (Bv.binop Bv.Add x y) (Bv.binop Bv.Sub x y) in
  let lookup = function 1 -> 3L | 2 -> 10L | _ -> 0L in
  check Alcotest.int64 "ite-add" 13L (Bv.eval lookup t);
  let lookup2 = function 1 -> 10L | 2 -> 3L | _ -> 0L in
  check Alcotest.int64 "ite-sub" 7L (Bv.eval lookup2 t)

let test_vars () =
  let x = Bv.var 8 1 and y = Bv.var 16 2 in
  let t = Bv.cmp Bv.Eq (Bv.zext 16 x) y in
  let vs = Bv.vars t in
  check int "two vars" 2 (Hashtbl.length vs);
  check (Alcotest.option int) "x width" (Some 8) (Hashtbl.find_opt vs 1)

(* ------------- SAT core ------------- *)

let lit = Sat.lit_of_var

let test_sat_trivial () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ lit a true ];
  check bool "sat" true (Sat.solve s);
  check bool "a true" true (Sat.model_value s a)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ lit a true ];
  Sat.add_clause s [ lit a false ];
  check bool "unsat" false (Sat.solve s)

let test_sat_chain () =
  (* implication chain a -> b -> c -> d with a forced *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Sat.new_var s) in
  Sat.add_clause s [ lit v.(0) true ];
  for i = 0 to 2 do
    Sat.add_clause s [ lit v.(i) false; lit v.(i + 1) true ]
  done;
  check bool "sat" true (Sat.solve s);
  Array.iter (fun x -> check bool "forced true" true (Sat.model_value s x)) v

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: unsat; classic resolution stress *)
  let s = Sat.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.new_var s)) in
  (* each pigeon in some hole *)
  Array.iter (fun row -> Sat.add_clause s [ lit row.(0) true; lit row.(1) true ]) p;
  (* no two pigeons share a hole *)
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ lit p.(i).(h) false; lit p.(j).(h) false ]
      done
    done
  done;
  check bool "pigeonhole unsat" false (Sat.solve s)

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ lit a false; lit b true ];   (* a -> b *)
  check bool "sat under a" true (Sat.solve ~assumptions:[ lit a true ] s);
  Sat.add_clause s [ lit b false ];
  check bool "unsat under a" false (Sat.solve ~assumptions:[ lit a true ] s);
  check bool "still sat without" true (Sat.solve s)

(* random 3-SAT instances cross-checked against brute force *)
let test_sat_random_vs_bruteforce () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  for _ = 1 to 120 do
    let nvars = 1 + Random.State.int rng 8 in
    let nclauses = 1 + Random.State.int rng 24 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init
            (1 + Random.State.int rng 3)
            (fun _ -> (Random.State.int rng nvars, Random.State.bool rng)))
    in
    (* brute force *)
    let bf = ref false in
    for m = 0 to (1 lsl nvars) - 1 do
      if
        List.for_all
          (List.exists (fun (v, pos) -> (m lsr v) land 1 = if pos then 1 else 0))
          clauses
      then bf := true
    done;
    let s = Sat.create () in
    let vars = Array.init nvars (fun _ -> Sat.new_var s) in
    List.iter
      (fun c -> Sat.add_clause s (List.map (fun (v, pos) -> lit vars.(v) pos) c))
      clauses;
    let got = Sat.solve s in
    if got <> !bf then
      Alcotest.failf "SAT solver disagrees with brute force (expected %b)" !bf;
    (* model check *)
    if got then begin
      let ok =
        List.for_all
          (List.exists (fun (v, pos) -> Sat.model_value s vars.(v) = pos))
          clauses
      in
      check bool "model satisfies" true ok
    end
  done

(* ------------- blasting: QCheck properties ------------- *)

let ops = [| Bv.Add; Bv.Sub; Bv.Mul; Bv.Sdiv; Bv.Udiv; Bv.Srem; Bv.Urem;
             Bv.And; Bv.Or; Bv.Xor; Bv.Shl; Bv.Lshr; Bv.Ashr |]
let cmps = [| Bv.Eq; Bv.Ne; Bv.Slt; Bv.Sle; Bv.Sgt; Bv.Sge; Bv.Ult; Bv.Ule;
              Bv.Ugt; Bv.Uge |]

let gen_case =
  QCheck2.Gen.(
    tup4 (int_range 0 (Array.length ops - 1))
      (int_range 0 (Array.length cmps - 1))
      (map Int64.of_int (int_range 0 255))
      (map Int64.of_int (int_range 0 255)))

(* solver vs brute force at 8 bits (both SAT answers and model soundness) *)
let prop_solver_vs_bruteforce =
  QCheck2.Test.make ~name:"8-bit solver matches brute force" ~count:120
    gen_case (fun (oi, ci, c1, c2) ->
      let x = Bv.var 8 1 and y = Bv.var 8 2 in
      let t = Bv.cmp cmps.(ci) (Bv.binop ops.(oi) x y) (Bv.const 8 c1) in
      let t2 = Bv.cmp Bv.Ult x (Bv.const 8 c2) in
      let bf = ref false in
      (try
         for xv = 0 to 255 do
           for yv = 0 to 255 do
             let lookup id = if id = 1 then Int64.of_int xv else Int64.of_int yv in
             if Bv.eval lookup t = 1L && Bv.eval lookup t2 = 1L then begin
               bf := true;
               raise Exit
             end
           done
         done
       with Exit -> ());
      match Solver.check (Solver.create ()) [ t; t2 ] with
      | Solver.Sat model ->
          if not !bf then
            QCheck2.Test.fail_reportf "solver SAT, brute force UNSAT: %s"
              (Bv.to_string t)
          else begin
            let lookup id = Solver.model_value model id in
            Bv.eval lookup t = 1L && Bv.eval lookup t2 = 1L
          end
      | Solver.Unsat ->
          if !bf then
            QCheck2.Test.fail_reportf "solver UNSAT, brute force SAT: %s"
              (Bv.to_string t)
          else true)

(* model soundness at 32 bits (brute force impossible; check the model) *)
let prop_model_sound_32 =
  QCheck2.Test.make ~name:"32-bit models satisfy their query" ~count:40
    gen_case (fun (oi, ci, c1, c2) ->
      let x = Bv.var 32 1 and y = Bv.var 32 2 in
      let t =
        Bv.cmp cmps.(ci) (Bv.binop ops.(oi) x y)
          (Bv.const 32 (Int64.mul c1 1234567L))
      in
      let t2 = Bv.cmp Bv.Ugt y (Bv.const 32 c2) in
      match Solver.check (Solver.create ()) [ t; t2 ] with
      | Solver.Sat model ->
          let lookup id = Solver.model_value model id in
          Bv.eval lookup t = 1L && Bv.eval lookup t2 = 1L
      | Solver.Unsat -> true)

(* blast/eval agreement: pin variables with equality constraints and check
   the solver agrees with direct evaluation *)
let prop_blast_matches_eval =
  QCheck2.Test.make ~name:"blasting agrees with Bv.eval on pinned vars"
    ~count:80
    QCheck2.Gen.(
      tup4 (int_range 0 (Array.length ops - 1))
        (map Int64.of_int (int_range 0 255))
        (map Int64.of_int (int_range 0 255))
        (oneofl [ 8; 16; 32; 64 ]))
    (fun (oi, xv, yv, w) ->
      let x = Bv.var w 1 and y = Bv.var w 2 in
      let expr = Bv.binop ops.(oi) x y in
      let expected =
        Bv.eval (function 1 -> xv | 2 -> yv | _ -> 0L) expr
      in
      let pin =
        [ Bv.cmp Bv.Eq x (Bv.const w xv); Bv.cmp Bv.Eq y (Bv.const w yv);
          Bv.cmp Bv.Eq expr (Bv.const w expected) ]
      in
      match Solver.check (Solver.create ()) pin with
      | Solver.Sat _ -> true
      | Solver.Unsat ->
          QCheck2.Test.fail_reportf
            "circuit disagrees with eval: op %d width %d x=%Ld y=%Ld \
             expected %Ld"
            oi w xv yv expected)

(* ------------- solver interface (explicit contexts) ------------- *)

let test_trivial_queries_no_sat () =
  let ctx = Solver.create () in
  (match Solver.check ctx [ Bv.tt ] with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "true is sat");
  (match Solver.check ctx [ Bv.ff ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "false is unsat");
  check int "2 queries counted" 2 (Solver.stats ctx).Solver.queries;
  check int "1 sat answer" 1 (Solver.stats ctx).Solver.sat_answers;
  check int "1 unsat answer" 1 (Solver.stats ctx).Solver.unsat_answers

(* the reuse-layer tests pin [~cache:true] so they hold even when the
   suite is re-run under OVERIFY_SOLVER_CACHE=0 (the @ci-cache-off pass) *)
let test_cache_hits () =
  let ctx = Solver.create ~cache:true () in
  let x = Bv.var 8 77 in
  let q = [ Bv.cmp Bv.Ugt x (Bv.const 8 100L) ] in
  ignore (Solver.check ctx q);
  ignore (Solver.check ctx q);
  check int "second hit cached" 1 (Solver.stats ctx).Solver.cache_hits

(* two contexts share nothing: a query cached in one is a miss in the
   other, and counters advance independently *)
let test_ctx_isolation () =
  let c1 = Solver.create ~cache:true ()
  and c2 = Solver.create ~cache:true () in
  let x = Bv.var 8 78 in
  let q = [ Bv.cmp Bv.Ult x (Bv.const 8 10L) ] in
  ignore (Solver.check c1 q);
  ignore (Solver.check c1 q);
  check int "c1 hit" 1 (Solver.stats c1).Solver.cache_hits;
  check int "c2 untouched" 0 (Solver.stats c2).Solver.queries;
  ignore (Solver.check c2 q);
  check int "c2 miss despite c1's cache" 0 (Solver.stats c2).Solver.cache_hits;
  check int "c1 unaffected by c2" 2 (Solver.stats c1).Solver.queries

let test_ctx_clear_cache () =
  let c1 = Solver.create ~cache:true ()
  and c2 = Solver.create ~cache:true () in
  let x = Bv.var 8 79 in
  let q = [ Bv.cmp Bv.Eq x (Bv.const 8 42L) ] in
  ignore (Solver.check c1 q);
  ignore (Solver.check c2 q);
  Solver.clear_cache c1;
  ignore (Solver.check c1 q);
  check int "c1 re-solved after clear" 0 (Solver.stats c1).Solver.cache_hits;
  ignore (Solver.check c2 q);
  check int "c2 cache survived c1's clear" 1
    (Solver.stats c2).Solver.cache_hits;
  Solver.reset_stats c1;
  check int "reset_stats zeroes" 0 (Solver.stats c1).Solver.queries

(* each of two domains hammers its own context (on distinct variables, with
   terms built inside the domain to also exercise the hash-cons lock);
   counters must come out exact, proving no cross-context interference *)
let test_ctx_concurrent_domains () =
  let n = 40 in
  let work var_base () =
    let ctx = Solver.create ~cache:true () in
    for i = 0 to n - 1 do
      let x = Bv.var 8 (var_base + i) in
      let q = [ Bv.cmp Bv.Ugt x (Bv.const 8 (Int64.of_int (i mod 200))) ] in
      ignore (Solver.check ctx q);
      ignore (Solver.check ctx q)
    done;
    Solver.stats ctx
  in
  let d = Domain.spawn (work 2_000) in
  let s1 = work 3_000 () in
  let s2 = Domain.join d in
  check int "domain1 queries" (2 * n) s1.Solver.queries;
  check int "domain2 queries" (2 * n) s2.Solver.queries;
  check int "domain1 hits" n s1.Solver.cache_hits;
  check int "domain2 hits" n s2.Solver.cache_hits;
  check int "summed queries" (4 * n) (s1.Solver.queries + s2.Solver.queries)

(* ------------- acceleration chain: differential oracle -------------

   ~2,000 seeded random assertion sets, each answered three ways: by the
   full acceleration chain on one warm (shared) context, by the chain on a
   fresh context, and by a reference solver that goes straight to blast +
   SAT with no canonicalization, partitioning or caching.  All three
   verdicts must agree; warm and fresh must return the *same model* (the
   determinism contract: answers are a pure function of the assertion set,
   not of cache history); and every SAT model must evaluate every assertion
   to true. *)

module Canon = Overify_solver.Canon
module Blast = Overify_solver.Blast
module Store = Overify_solver.Store

let gen_term rng =
  let atom () =
    if Random.State.int rng 3 = 0 then
      Bv.const 8 (Int64.of_int (Random.State.int rng 256))
    else Bv.var 8 (600 + Random.State.int rng 5)
  in
  let binops = [| Bv.Add; Bv.Sub; Bv.Mul; Bv.And; Bv.Or; Bv.Xor |] in
  let cmpops = [| Bv.Eq; Bv.Ne; Bv.Ult; Bv.Ule; Bv.Slt; Bv.Ugt |] in
  let rec expr depth =
    if depth = 0 || Random.State.int rng 4 = 0 then atom ()
    else
      Bv.binop
        binops.(Random.State.int rng (Array.length binops))
        (expr (depth - 1))
        (expr (depth - 1))
  in
  let t =
    Bv.cmp cmpops.(Random.State.int rng (Array.length cmpops)) (expr 2)
      (expr 2)
  in
  if Random.State.bool rng then t else Bv.not_ t

let gen_assertions rng =
  List.init (1 + Random.State.int rng 5) (fun _ -> gen_term rng)

(* verdict by direct blast+SAT of the conjunction — no reuse layers, no
   normalization, no partitioning (only the same constant pruning
   [Solver.check] applies first) *)
let reference_is_sat (assertions : Bv.t list) : bool =
  let live =
    List.filter (fun (t : Bv.t) -> t.Bv.node <> Bv.Const 1L) assertions
  in
  if List.exists (fun (t : Bv.t) -> t.Bv.node = Bv.Const 0L) live then false
  else if live = [] then true
  else begin
    let b = Blast.create () in
    List.iter (Blast.assert_true b) live;
    Sat.solve b.Blast.sat
  end

let model_satisfies model assertions =
  let lookup v = Solver.model_value model v in
  List.for_all (fun a -> Bv.eval lookup a = 1L) assertions

let test_differential_oracle () =
  let rng = Random.State.make [| 0xace5 |] in
  let warm = Solver.create ~cache:true () in
  for i = 1 to 2_000 do
    let assertions = gen_assertions rng in
    let expected = reference_is_sat assertions in
    let run name ctx =
      match Solver.check ctx assertions with
      | Solver.Unsat ->
          if expected then
            Alcotest.failf "query %d: %s chain says Unsat, reference says Sat"
              i name;
          Solver.Unsat
      | Solver.Sat m ->
          if not expected then
            Alcotest.failf "query %d: %s chain says Sat, reference says Unsat"
              i name;
          if not (model_satisfies m assertions) then
            Alcotest.failf
              "query %d: %s chain's model does not satisfy the assertions" i
              name;
          Solver.Sat m
    in
    let rw = run "warm" warm in
    let rf = run "fresh" (Solver.create ~cache:true ()) in
    if rw <> rf then
      Alcotest.failf
        "query %d: warm and fresh contexts disagree — the answer depends on \
         cache history"
        i
  done;
  let s = Solver.stats warm in
  check bool "warm context reused earlier work" true
    (s.Solver.cache_hits > 0 || s.Solver.hits_canon > 0)

(* ------------- independence partitioning: properties ------------- *)

let sorted_uniq_vars cctx terms =
  List.sort_uniq compare (List.concat_map (Canon.term_vars cctx) terms)

(* components partition both the assertion set and the variable set:
   every normalized assertion lands in exactly one component, and no
   variable occurs in two components *)
let prop_partition_is_partition =
  QCheck2.Test.make
    ~name:"partition: components partition assertions and variables"
    ~count:300
    QCheck2.Gen.(int_bound 0xFFFFFF)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let assertions = gen_assertions rng in
      let cctx = Canon.create () in
      let norm = Canon.normalize cctx assertions in
      let comps = Canon.partition cctx norm in
      let ids l = List.sort compare (List.map (fun (t : Bv.t) -> t.Bv.id) l) in
      if ids (List.concat comps) <> ids norm then
        QCheck2.Test.fail_reportf
          "components lose, duplicate or invent assertions";
      let vsets = List.map (sorted_uniq_vars cctx) comps in
      if List.sort compare (List.concat vsets) <> sorted_uniq_vars cctx norm
      then
        QCheck2.Test.fail_reportf
          "component variable sets are not a partition of the query's \
           variables";
      true)

(* solving components separately agrees with solving the conjunction whole
   (SAT iff every component SAT — the soundness of independence
   partitioning).  On a mismatch, greedily shrink to a minimal failing
   assertion set before reporting. *)
let test_partition_vs_conjunction () =
  let mismatch assertions =
    let whole = reference_is_sat assertions in
    let cctx = Canon.create () in
    let comps = Canon.partition cctx (Canon.normalize cctx assertions) in
    let piecewise = List.for_all reference_is_sat comps in
    whole <> piecewise
  in
  let shrink assertions =
    let rec go set =
      match
        List.find_opt mismatch
          (List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) set) set)
      with
      | Some smaller -> go smaller
      | None -> set
    in
    go assertions
  in
  let rng = Random.State.make [| 0x9a27 |] in
  for i = 1 to 400 do
    let assertions = gen_assertions rng in
    if mismatch assertions then begin
      let minimal = shrink assertions in
      Alcotest.failf
        "query %d: component-wise verdict disagrees with the conjunction; \
         minimal failing set (%d of %d assertions):\n%s"
        i (List.length minimal)
        (List.length assertions)
        (String.concat "\n" (List.map Bv.to_string minimal))
    end
  done

(* ------------- cache semantics: subset/superset rules ------------- *)

(* a recorded UNSAT core proves any superset UNSAT without blasting *)
let test_unsat_subset_rule () =
  let ctx = Solver.create ~cache:true () in
  let x = Bv.var 8 700 in
  let a = Bv.cmp Bv.Ult x (Bv.const 8 5L) in
  let b = Bv.cmp Bv.Ugt x (Bv.const 8 10L) in
  let c = Bv.cmp Bv.Ne x (Bv.const 8 3L) in
  (match Solver.check ctx [ a; b ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "x<5 && x>10 should be unsat");
  let solves = (Solver.stats ctx).Solver.component_solves in
  (match Solver.check ctx [ a; b; c ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "a superset of an unsat set must be unsat");
  check int "answered by the UNSAT-subset rule" 1
    (Solver.stats ctx).Solver.hits_subset;
  check int "no new blast+SAT" solves
    (Solver.stats ctx).Solver.component_solves;
  check int "counted as a cache hit" 1 (Solver.stats ctx).Solver.cache_hits

(* a stored model screens weaker SAT queries in the verdict-only is_sat:
   every unsigned value > 100 is also > 50, so the model recorded for the
   first query must satisfy the second *)
let test_sat_superset_screening () =
  let ctx = Solver.create ~cache:true () in
  let x = Bv.var 8 701 in
  (match Solver.check ctx [ Bv.cmp Bv.Ugt x (Bv.const 8 100L) ] with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "x>100 is sat");
  let solves = (Solver.stats ctx).Solver.component_solves in
  check bool "weaker query screened to SAT" true
    (Solver.is_sat ctx [ Bv.cmp Bv.Ugt x (Bv.const 8 50L) ]);
  check int "answered by stored-model screening" 1
    (Solver.stats ctx).Solver.hits_superset;
  check int "no new blast+SAT" solves
    (Solver.stats ctx).Solver.component_solves

(* clear_cache must drop EVERY layer: exact, canonical, counterexample *)
let test_clear_cache_all_layers () =
  let ctx = Solver.create ~cache:true () in
  let x = Bv.var 8 702 in
  let a = Bv.cmp Bv.Ult x (Bv.const 8 5L) in
  let b = Bv.cmp Bv.Ugt x (Bv.const 8 10L) in
  ignore (Solver.check ctx [ a ]);
  ignore (Solver.check ctx [ a; b ]);
  Solver.clear_cache ctx;
  Solver.reset_stats ctx;
  ignore (Solver.check ctx [ a ]);
  (match Solver.check ctx [ a; b; Bv.cmp Bv.Ne x (Bv.const 8 3L) ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "unsat superset");
  let s = Solver.stats ctx in
  check int "no hits from any layer after clear" 0 s.Solver.cache_hits;
  check int "no exact hits" 0 s.Solver.hits_exact;
  check int "no canonical hits" 0 s.Solver.hits_canon;
  check int "no subset hits" 0 s.Solver.hits_subset;
  check bool "everything re-solved" true (s.Solver.component_solves >= 2)

(* ------------- persistent store ------------- *)

let with_temp_dir f =
  let tmp = Filename.temp_file "overify_store_test" "" in
  let dir = tmp ^ ".d" in
  Fun.protect
    ~finally:(fun () ->
      (if Sys.file_exists dir && Sys.is_directory dir then
         Array.iter
           (fun fn ->
             try Sys.remove (Filename.concat dir fn) with Sys_error _ -> ())
           (Sys.readdir dir));
      (try Sys.rmdir dir with Sys_error _ -> ());
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () -> f dir)

let store_queries () =
  let x = Bv.var 8 710 and y = Bv.var 8 711 in
  [
    [ Bv.cmp Bv.Ugt x (Bv.const 8 200L) ];
    [ Bv.cmp Bv.Ult x (Bv.const 8 5L); Bv.cmp Bv.Ugt x (Bv.const 8 10L) ];
    [ Bv.cmp Bv.Eq (Bv.binop Bv.Add x y) (Bv.const 8 77L) ];
  ]

let test_store_round_trip () =
  with_temp_dir @@ fun dir ->
  let queries = store_queries () in
  let st1 = Store.load ~dir () in
  check int "store starts cold" 0 (Store.loaded st1);
  let c1 = Solver.create ~cache:true ~store:st1 () in
  let r1 = List.map (Solver.check c1) queries in
  Store.save st1;
  let st2 = Store.load ~dir () in
  check bool "entries survive the round trip" true (Store.loaded st2 > 0);
  let c2 = Solver.create ~cache:true ~store:st2 () in
  let r2 = List.map (Solver.check c2) queries in
  check bool "identical results across runs (verdicts and models)" true
    (r1 = r2);
  check int "no fresh solves on the warm run" 0
    (Solver.stats c2).Solver.component_solves;
  check bool "answered from the store" true
    ((Solver.stats c2).Solver.hits_store > 0)

(* corrupted or version-mismatched store files must load as empty stores —
   a cache starts cold, it never crashes the run or poisons answers *)
let test_store_rejects_invalid () =
  with_temp_dir @@ fun dir ->
  let st = Store.load ~dir () in
  let c = Solver.create ~cache:true ~store:st () in
  List.iter (fun q -> ignore (Solver.check c q)) (store_queries ());
  Store.save st;
  let file =
    match Array.to_list (Sys.readdir dir) with
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected exactly one store file, got %d" (List.length l)
  in
  (* truncated garbage *)
  Out_channel.with_open_bin file (fun oc -> output_string oc "garbage");
  let st_bad = Store.load ~dir () in
  check int "corrupted file loads as an empty store" 0 (Store.loaded st_bad);
  let c_bad = Solver.create ~cache:true ~store:st_bad () in
  (match Solver.check c_bad (List.hd (store_queries ())) with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "x>200 is sat even with a corrupt store");
  check bool "corrupt store produced no hits" true
    ((Solver.stats c_bad).Solver.hits_store = 0);
  (* right magic, wrong version *)
  Out_channel.with_open_bin file (fun oc ->
      output_string oc "OVERIFY-SOLVER-STORE";
      output_binary_int oc 999_999);
  let st_v = Store.load ~dir () in
  check int "version mismatch loads as an empty store" 0 (Store.loaded st_v)

let () =
  Alcotest.run "solver"
    [
      ( "terms",
        [
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "constant folding" `Quick test_const_fold;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "pow2 strength reduction" `Quick
            test_pow2_strength_reduction;
          Alcotest.test_case "ite" `Quick test_ite_simplify;
          Alcotest.test_case "extract/concat" `Quick test_extract_concat;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "vars" `Quick test_vars;
        ] );
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "unsat" `Quick test_sat_unsat;
          Alcotest.test_case "implication chain" `Quick test_sat_chain;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          Alcotest.test_case "random vs brute force" `Quick
            test_sat_random_vs_bruteforce;
        ] );
      ( "blasting (qcheck)",
        [
          QCheck_alcotest.to_alcotest prop_solver_vs_bruteforce;
          QCheck_alcotest.to_alcotest prop_model_sound_32;
          QCheck_alcotest.to_alcotest prop_blast_matches_eval;
        ] );
      ( "interface",
        [
          Alcotest.test_case "trivial queries" `Quick test_trivial_queries_no_sat;
          Alcotest.test_case "cache" `Quick test_cache_hits;
          Alcotest.test_case "context isolation" `Quick test_ctx_isolation;
          Alcotest.test_case "per-context clear_cache" `Quick
            test_ctx_clear_cache;
          Alcotest.test_case "concurrent contexts on 2 domains" `Quick
            test_ctx_concurrent_domains;
        ] );
      ( "acceleration chain",
        [
          Alcotest.test_case "differential oracle (2,000 queries)" `Quick
            test_differential_oracle;
          QCheck_alcotest.to_alcotest prop_partition_is_partition;
          Alcotest.test_case "partition vs conjunction (with shrinker)"
            `Quick test_partition_vs_conjunction;
          Alcotest.test_case "UNSAT-subset rule" `Quick test_unsat_subset_rule;
          Alcotest.test_case "SAT stored-model screening" `Quick
            test_sat_superset_screening;
          Alcotest.test_case "clear_cache drops every layer" `Quick
            test_clear_cache_all_layers;
        ] );
      ( "persistent store",
        [
          Alcotest.test_case "round trip across runs" `Quick
            test_store_round_trip;
          Alcotest.test_case "rejects corrupt and wrong-version files" `Quick
            test_store_rejects_invalid;
        ] );
    ]
