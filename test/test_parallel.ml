(** Parallel-exploration determinism suite.

    The engine's contract: for a run that completes exploration, [paths],
    [exit_codes], [bugs] and [blocks_covered] are independent of the
    searcher and the worker count — [`Dfs], [`Bfs] and [`Parallel n] agree
    exactly.  This suite checks the contract over the whole corpus and over
    handcrafted buggy programs.

    The worker count comes from the [OVERIFY_JOBS] environment variable
    (default 4), so the dune smoke target can run the same suite at 2. *)

module Engine = Overify_symex.Engine
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let jobs =
  match Sys.getenv_opt "OVERIFY_JOBS" with
  | Some s -> (match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 4)
  | None -> 4

let compile ?(level = Costmodel.overify) (p : Programs.t) =
  (Pipeline.optimize level
     (Frontend.compile_sources [ Vclib.for_cost_model level; p.Programs.source ]))
    .Pipeline.modul

let explore searcher ?(input_size = 2) ?(timeout = 20.0) m =
  Engine.run
    ~config:{ Engine.default_config with input_size; timeout; searcher }
    m

(** Compare two complete results field by field, with readable failures. *)
let assert_agree name (a : Engine.result) (b : Engine.result) ~what =
  check int (Printf.sprintf "%s: paths (%s)" name what) a.Engine.paths
    b.Engine.paths;
  check int
    (Printf.sprintf "%s: exit count (%s)" name what)
    (List.length a.Engine.exit_codes)
    (List.length b.Engine.exit_codes);
  List.iteri
    (fun i ((ia, ca), (ib, cb)) ->
      if ia <> ib || ca <> cb then
        Alcotest.failf "%s: exit_codes[%d] differ (%s): (%S,%Ld) vs (%S,%Ld)"
          name i what ia ca ib cb)
    (List.combine a.Engine.exit_codes b.Engine.exit_codes);
  check int
    (Printf.sprintf "%s: bug count (%s)" name what)
    (List.length a.Engine.bugs) (List.length b.Engine.bugs);
  List.iter2
    (fun (x : Engine.bug) (y : Engine.bug) ->
      if x <> y then
        Alcotest.failf "%s: bugs differ (%s): %s@%s %S vs %s@%s %S" name what
          x.Engine.kind x.Engine.at_function x.Engine.input y.Engine.kind
          y.Engine.at_function y.Engine.input)
    a.Engine.bugs b.Engine.bugs;
  check int
    (Printf.sprintf "%s: blocks covered (%s)" name what)
    a.Engine.blocks_covered b.Engine.blocks_covered

(* ------------- whole-corpus determinism ------------- *)

(* every corpus program that completes exploration must report identical
   results under DFS, BFS and the parallel scheduler *)
let test_corpus_determinism () =
  let skipped = ref 0 in
  List.iter
    (fun (p : Programs.t) ->
      let m = compile p in
      let dfs = explore `Dfs m in
      if not dfs.Engine.complete then incr skipped
      else begin
        let bfs = explore `Bfs m in
        let par = explore (`Parallel jobs) m in
        check bool
          (Printf.sprintf "%s: bfs also completes" p.Programs.name)
          true bfs.Engine.complete;
        check bool
          (Printf.sprintf "%s: parallel also completes" p.Programs.name)
          true par.Engine.complete;
        check int
          (Printf.sprintf "%s: parallel used %d workers" p.Programs.name jobs)
          jobs par.Engine.jobs;
        assert_agree p.Programs.name dfs bfs ~what:"dfs vs bfs";
        assert_agree p.Programs.name dfs par
          ~what:(Printf.sprintf "dfs vs parallel %d" jobs)
      end)
    Programs.programs;
  (* the corpus is small enough that everything completes at 2 input bytes;
     if that regresses we want to hear about it *)
  check int "no program skipped as incomplete" 0 !skipped

(* ------------- handcrafted bug programs ------------- *)

(* multiple distinct bugs on different paths: dedup and the smallest-witness
   rule must make the report schedule-independent *)
let buggy_src = {|
int helper(int c) {
  int arr[4];
  if (c == 'X') return arr[7];      /* out of bounds */
  return c;
}
int main(void) {
  char buf[3];
  int n = read_input(buf, 3);
  int acc = 0;
  for (int i = 0; i < n; i++) {
    int c = (int)(unsigned char)buf[i];
    if (c == 'D') acc += 10 / (c - 'D');   /* division by zero */
    acc += helper(c);
  }
  return acc & 0xff;
}
|}

let compile_src src =
  (Pipeline.optimize Costmodel.overify
     (Frontend.compile_sources [ Vclib.for_cost_model Costmodel.overify; src ]))
    .Pipeline.modul

let test_buggy_program_determinism () =
  let m = compile_src buggy_src in
  let dfs = explore `Dfs ~input_size:2 m in
  let bfs = explore `Bfs ~input_size:2 m in
  let par = explore (`Parallel jobs) ~input_size:2 m in
  check bool "dfs complete" true dfs.Engine.complete;
  check bool "bfs complete" true bfs.Engine.complete;
  check bool "par complete" true par.Engine.complete;
  check bool "bugs found" true (List.length dfs.Engine.bugs >= 2);
  assert_agree "buggy" dfs bfs ~what:"dfs vs bfs";
  assert_agree "buggy" dfs par ~what:"dfs vs parallel"

(* parallel runs are reproducible run-to-run, not just seq-vs-par *)
let test_parallel_reproducible () =
  let m = compile_src buggy_src in
  let r1 = explore (`Parallel jobs) ~input_size:2 m in
  let r2 = explore (`Parallel jobs) ~input_size:2 m in
  assert_agree "repeat" r1 r2 ~what:"parallel vs parallel"

(* `Parallel 1 is the work-sharing scheduler on one domain — same results *)
let test_parallel_one_worker () =
  let m = compile_src buggy_src in
  let dfs = explore `Dfs ~input_size:2 m in
  let par1 = explore (`Parallel 1) ~input_size:2 m in
  check int "jobs recorded" 1 par1.Engine.jobs;
  assert_agree "par1" dfs par1 ~what:"dfs vs parallel 1"

(* ------------- per-worker stats aggregation ------------- *)

(* the reported totals are defined as the sum of the per-worker solver and
   executor counters; [result.worker_stats] exposes exactly those per-worker
   values, so the sums must agree — exactly, including solver_time, since
   both are the same left fold over the same worker list *)
let sum_stats f (stats : Engine.worker_stat list) =
  List.fold_left (fun acc w -> acc + f w) 0 stats

let assert_worker_stats_sum name (r : Engine.result) =
  check int
    (name ^ ": instructions = sum of workers")
    r.Engine.instructions
    (sum_stats (fun w -> w.Engine.w_instructions) r.Engine.worker_stats);
  check int
    (name ^ ": forks = sum of workers")
    r.Engine.forks
    (sum_stats (fun w -> w.Engine.w_forks) r.Engine.worker_stats);
  check int
    (name ^ ": queries = sum of workers")
    r.Engine.queries
    (sum_stats (fun w -> w.Engine.w_queries) r.Engine.worker_stats);
  check int
    (name ^ ": cache_hits = sum of workers")
    r.Engine.cache_hits
    (sum_stats (fun w -> w.Engine.w_cache_hits) r.Engine.worker_stats);
  (* the solver acceleration layers report per-worker too; their totals
     are the same sums *)
  List.iter
    (fun (what, total, get) ->
      check int
        (Printf.sprintf "%s: %s = sum of workers" name what)
        total
        (sum_stats get r.Engine.worker_stats))
    [
      ("components", r.Engine.components, fun w -> w.Engine.w_components);
      ( "component_solves",
        r.Engine.component_solves,
        fun w -> w.Engine.w_component_solves );
      ("hits_exact", r.Engine.hits_exact, fun w -> w.Engine.w_hits_exact);
      ("hits_canon", r.Engine.hits_canon, fun w -> w.Engine.w_hits_canon);
      ("hits_subset", r.Engine.hits_subset, fun w -> w.Engine.w_hits_subset);
      ( "hits_superset",
        r.Engine.hits_superset,
        fun w -> w.Engine.w_hits_superset );
      ("hits_store", r.Engine.hits_store, fun w -> w.Engine.w_hits_store);
    ];
  let t =
    List.fold_left
      (fun acc (w : Engine.worker_stat) -> acc +. w.Engine.w_solver_time)
      0.0 r.Engine.worker_stats
  in
  if t <> r.Engine.solver_time then
    Alcotest.failf "%s: solver_time %.9f <> worker sum %.9f" name
      r.Engine.solver_time t

let test_worker_stats_sum () =
  let m = compile_src buggy_src in
  let par = explore (`Parallel jobs) ~input_size:2 m in
  check int "one stat row per worker" jobs
    (List.length par.Engine.worker_stats);
  assert_worker_stats_sum "parallel" par;
  (* sequential searchers report the same shape with a single row *)
  let dfs = explore `Dfs ~input_size:2 m in
  check int "sequential run has one worker row" 1
    (List.length dfs.Engine.worker_stats);
  assert_worker_stats_sum "dfs" dfs;
  (* and a corpus program, for counters big enough to catch double counting *)
  let wc = compile (Option.get (Programs.find "wc")) in
  let r = explore (`Parallel jobs) ~input_size:3 wc in
  assert_worker_stats_sum "wc" r

(* budgets are enforced globally: a tiny path budget stops a parallel run
   and marks it incomplete, same as sequential *)
let test_parallel_budget () =
  let p = Option.get (Programs.find "wc") in
  let m = compile p in
  let r =
    Engine.run
      ~config:
        {
          Engine.default_config with
          input_size = 3;
          timeout = 20.0;
          max_paths = 2;
          searcher = `Parallel jobs;
        }
      m
  in
  check bool "incomplete under tiny budget" false r.Engine.complete;
  check bool "did not blow the budget by much" true (r.Engine.paths <= 2 + jobs)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case
            (Printf.sprintf "corpus: dfs = bfs = parallel %d" jobs)
            `Slow test_corpus_determinism;
          Alcotest.test_case "buggy program agrees across searchers" `Quick
            test_buggy_program_determinism;
          Alcotest.test_case "parallel runs reproducible" `Quick
            test_parallel_reproducible;
          Alcotest.test_case "single-worker parallel" `Quick
            test_parallel_one_worker;
        ] );
      ( "stats",
        [
          Alcotest.test_case "worker stats sum to totals" `Quick
            test_worker_stats_sum;
        ] );
      ( "budgets",
        [ Alcotest.test_case "global path budget" `Quick test_parallel_budget ] );
    ]
