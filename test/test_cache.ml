(** Solver-acceleration determinism suite at the engine level.

    The solver's reuse layers (exact cache, canonical component cache,
    counterexample cache, persistent store) are pure memoization: turning
    them off ([OVERIFY_SOLVER_CACHE=0] / [solver_cache = Some false]) must
    not change any verification result — verdicts, paths, exit codes, bugs
    and coverage are byte-identical, and the deterministic profile JSON is
    identical modulo the hit counters themselves.  This suite pins that
    contract over the corpus, plus the engine-level persistent-store round
    trip behind [--cache-dir]. *)

module Engine = Overify_symex.Engine
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib
module Profile = Overify_harness.Profile

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let compile ?(level = Costmodel.overify) (p : Programs.t) =
  (Pipeline.optimize level
     (Frontend.compile_sources [ Vclib.for_cost_model level; p.Programs.source ]))
    .Pipeline.modul

let explore ?(input_size = 2) ?(timeout = 20.0) ?solver_cache ?cache_dir m =
  Engine.run
    ~config:
      { Engine.default_config with input_size; timeout; solver_cache; cache_dir }
    m

(* ------------- cache on vs off: identical results ------------- *)

let assert_same_verdicts name (off : Engine.result) (on : Engine.result) =
  check int (name ^ ": paths") off.Engine.paths on.Engine.paths;
  check bool (name ^ ": exit codes") true
    (off.Engine.exit_codes = on.Engine.exit_codes);
  check bool (name ^ ": bugs") true (off.Engine.bugs = on.Engine.bugs);
  check int (name ^ ": blocks covered") off.Engine.blocks_covered
    on.Engine.blocks_covered;
  check bool (name ^ ": complete") off.Engine.complete on.Engine.complete;
  check int (name ^ ": queries") off.Engine.queries on.Engine.queries

let test_corpus_cache_on_off () =
  let total_hits = ref 0 in
  List.iter
    (fun (p : Programs.t) ->
      let m = compile p in
      let off = explore ~solver_cache:false m in
      let on = explore ~solver_cache:true m in
      assert_same_verdicts p.Programs.name off on;
      total_hits := !total_hits + on.Engine.cache_hits + on.Engine.hits_canon;
      check bool (p.Programs.name ^ ": fewer or equal raw solves") true
        (on.Engine.component_solves <= off.Engine.component_solves))
    Programs.programs;
  (* the layers must actually be saving work somewhere, not just idle
     (tiny programs at this input size may legitimately see no reuse) *)
  check bool "chain produced hits across the corpus" true (!total_hits > 0)

(* ------------- deterministic profile JSON modulo hit counters ---------- *)

(* scrub the counters the reuse layers are allowed to move: every other
   byte of the deterministic profile report must be identical *)
let volatile_keys =
  [
    "\"cache_hits\": ";
    "\"components\": ";
    "\"component_solves\": ";
    "\"hits_exact\": ";
    "\"hits_canon\": ";
    "\"hits_subset\": ";
    "\"hits_superset\": ";
    "\"hits_store\": ";
  ]

let scrub (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let matched =
      List.find_opt
        (fun k ->
          let lk = String.length k in
          !i + lk <= n && String.sub s !i lk = k)
        volatile_keys
    in
    (match matched with
    | Some k ->
        Buffer.add_string buf k;
        Buffer.add_char buf '_';
        i := !i + String.length k;
        while
          !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false)
        do
          incr i
        done
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

let test_profile_json_cache_on_off () =
  let p = Option.get (Programs.find "wc") in
  let json solver_cache =
    Profile.to_json ~times:false
      (Profile.profile ~program:p.Programs.name ~level:Costmodel.overify
         ~input_size:2 ~timeout:20.0 ~solver_cache p.Programs.source)
  in
  let off = scrub (json false) and on = scrub (json true) in
  check bool "deterministic profile identical modulo hit counters" true
    (off = on);
  (* the scrubber itself must be doing something, or the check is vacuous *)
  check bool "scrubber blanked the volatile counters" true
    (String.length off > 0
    && off <> json false
    && on <> json true)

(* ------------- persistent store behind --cache-dir ------------- *)

let with_temp_dir f =
  let tmp = Filename.temp_file "overify_engine_store" "" in
  let dir = tmp ^ ".d" in
  Fun.protect
    ~finally:(fun () ->
      (if Sys.file_exists dir && Sys.is_directory dir then
         Array.iter
           (fun fn ->
             try Sys.remove (Filename.concat dir fn) with Sys_error _ -> ())
           (Sys.readdir dir));
      (try Sys.rmdir dir with Sys_error _ -> ());
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () -> f dir)

let test_engine_store_round_trip () =
  with_temp_dir @@ fun dir ->
  let p = Option.get (Programs.find "wc") in
  let m = compile p in
  let cold = explore ~solver_cache:true ~cache_dir:dir m in
  let warm = explore ~solver_cache:true ~cache_dir:dir m in
  assert_same_verdicts "wc cold vs warm" cold warm;
  check bool "warm run answered from the store" true
    (warm.Engine.hits_store > 0);
  check bool "warm run solves less than cold" true
    (warm.Engine.component_solves < cold.Engine.component_solves
    || cold.Engine.component_solves = 0)

let () =
  Alcotest.run "solver-cache"
    [
      ( "determinism",
        [
          Alcotest.test_case "corpus: cache on vs off" `Quick
            test_corpus_cache_on_off;
          Alcotest.test_case "profile JSON modulo hit counters" `Quick
            test_profile_json_cache_on_off;
        ] );
      ( "store",
        [
          Alcotest.test_case "engine round trip via cache_dir" `Quick
            test_engine_store_round_trip;
        ] );
    ]
