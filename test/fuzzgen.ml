(** Random well-typed MiniC program generator, shared by the compiler
    fuzzer (test_fuzz) and the summary property suite (test_summary).

    Programs are built from integer arithmetic, bounded loops, arrays with
    in-bounds indices, function calls and I/O intrinsics, so every generated
    program is trap-free by construction except for division (always guarded
    by [| 1]).

    The [pure] mode restricts helper bodies to what the summary static gate
    accepts ({!Overify_summary.Summary.summarizable}): integer expressions,
    branches and bounded loops only — no arrays, no I/O intrinsics — and
    lets helpers call previously generated helpers, so the callgraph (and
    hence the fingerprint cones the invalidation properties probe) has real
    depth. *)

type genv = {
  buf : Buffer.t;
  mutable indent : int;
  mutable vars : string list;       (* in-scope assignable int variables *)
  mutable rvars : string list;      (* read-only (loop counters) *)
  mutable arrays : (string * int) list;
  mutable fresh : int;
  rng : Random.State.t;
  mutable fuel : int;               (* bounds program size *)
  mutable pure : bool;              (* restrict to the summary static gate *)
  mutable callables : string list;  (* earlier helpers a pure body may call *)
}

let line g fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string g.buf (String.make (2 * g.indent) ' ');
      Buffer.add_string g.buf s;
      Buffer.add_char g.buf '\n')
    fmt

let fresh g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let pick g l = List.nth l (Random.State.int g.rng (List.length l))

let rec gen_expr g depth : string =
  let readable g = g.vars @ g.rvars in
  let leaf () =
    if g.pure then
      (* pure leaves: variables, literals and calls to earlier helpers *)
      match Random.State.int g.rng (if g.callables = [] then 3 else 4) with
      | 0 when readable g <> [] -> pick g (readable g)
      | 3 ->
          let f = pick g g.callables in
          let arg () =
            if readable g <> [] && Random.State.bool g.rng then
              pick g (readable g)
            else string_of_int (Random.State.int g.rng 64)
          in
          Printf.sprintf "%s(%s, %s)" f (arg ()) (arg ())
      | _ -> string_of_int (Random.State.int g.rng 200 - 100)
    else
      match Random.State.int g.rng 4 with
      | 0 when readable g <> [] -> pick g (readable g)
      | 1 -> string_of_int (Random.State.int g.rng 200 - 100)
      | 2 -> Printf.sprintf "__input(%d)" (Random.State.int g.rng 4)
      | _ -> (
          match g.arrays with
          | [] -> string_of_int (Random.State.int g.rng 64)
          | arrays ->
              let (a, n) = pick g arrays in
              (* in-bounds by masking with a power-of-two-minus-one < n *)
              let mask = if n >= 8 then 7 else if n >= 4 then 3 else 1 in
              let idx =
                if g.vars <> [] && Random.State.bool g.rng then pick g g.vars
                else Printf.sprintf "__input(%d)" (Random.State.int g.rng 4)
              in
              Printf.sprintf "%s[(%s) & %d]" a idx mask)
  in
  if depth = 0 || g.fuel <= 0 then leaf ()
  else begin
    g.fuel <- g.fuel - 1;
    match Random.State.int g.rng 10 with
    | 0 | 1 | 2 ->
        let op = pick g [ "+"; "-"; "*"; "&"; "|"; "^" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 3 ->
        (* guarded division: divisor forced nonzero *)
        let op = pick g [ "/"; "%" ] in
        Printf.sprintf "(%s %s ((%s) | 1))" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 4 ->
        let op = pick g [ "<"; ">"; "<="; ">="; "=="; "!=" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 5 ->
        let op = pick g [ "&&"; "||" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 6 ->
        Printf.sprintf "(%s ? %s : %s)" (gen_expr g (depth - 1))
          (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 ->
        (* bounded shift *)
        Printf.sprintf "(%s %s ((%s) & 15))" (gen_expr g (depth - 1))
          (pick g [ "<<"; ">>" ])
          (gen_expr g (depth - 1))
    | 8 -> Printf.sprintf "(-(%s))" (gen_expr g (depth - 1))
    | _ -> Printf.sprintf "(!(%s))" (gen_expr g (depth - 1))
  end

let rec gen_stmt g depth =
  if g.fuel <= 0 then ()
  else begin
    g.fuel <- g.fuel - 1;
    match Random.State.int g.rng 11 with
    | 0 | 1 ->
        let v = fresh g "v" in
        line g "int %s = %s;" v (gen_expr g 2);
        g.vars <- v :: g.vars
    | 2 when g.vars <> [] ->
        line g "%s %s= %s;" (pick g g.vars)
          (pick g [ ""; "+"; "-"; "^"; "&"; "|" ])
          (gen_expr g 2)
    | 3 when depth > 0 ->
        line g "if (%s) {" (gen_expr g 2);
        g.indent <- g.indent + 1;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 3);
        g.indent <- g.indent - 1;
        if Random.State.bool g.rng then begin
          line g "} else {";
          g.indent <- g.indent + 1;
          gen_block g (depth - 1) (1 + Random.State.int g.rng 2);
          g.indent <- g.indent - 1
        end;
        line g "}"
    | 4 when depth > 0 ->
        (* bounded counted loop *)
        let i = fresh g "i" in
        let n = 1 + Random.State.int g.rng 6 in
        line g "for (int %s = 0; %s < %d; %s++) {" i i n i;
        g.indent <- g.indent + 1;
        let saved = g.rvars in
        (* readable but never assignable: generated loops terminate *)
        g.rvars <- i :: g.rvars;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 3);
        g.rvars <- saved;
        g.indent <- g.indent - 1;
        line g "}"
    | 5 when g.arrays <> [] ->
        let (a, n) = pick g g.arrays in
        let mask = if n >= 8 then 7 else if n >= 4 then 3 else 1 in
        line g "%s[(%s) & %d] = %s;" a (gen_expr g 1) mask (gen_expr g 2)
    | 6 when not g.pure ->
        line g "__output((%s) & 0xff);" (gen_expr g 2)
    | 7 when depth > 0 && g.vars <> [] ->
        (* while loop with a guaranteed-decreasing counter *)
        let c = fresh g "c" in
        line g "int %s = (%s) & 7;" c (gen_expr g 1);
        line g "while (%s > 0) {" c;
        g.indent <- g.indent + 1;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 2);
        line g "%s--;" c;
        g.indent <- g.indent - 1;
        line g "}"
    | 8 when not g.pure ->
        let a = fresh g "arr" in
        let n = pick g [ 2; 4; 8 ] in
        line g "int %s[%d] = {%s};" a n
          (String.concat ", "
             (List.init n (fun _ -> string_of_int (Random.State.int g.rng 100))));
        g.arrays <- (a, n) :: g.arrays
    | _ when g.vars <> [] ->
        line g "%s = %s;" (pick g g.vars) (gen_expr g 3)
    | _ when g.pure ->
        let v = fresh g "v" in
        line g "int %s = %s;" v (gen_expr g 1);
        g.vars <- v :: g.vars
    | _ -> line g "__output('.');"
  end

and gen_block g depth count =
  (* blocks open a scope: declarations inside must not leak out *)
  let saved_vars = g.vars and saved_arrays = g.arrays in
  for _ = 1 to count do gen_stmt g depth done;
  g.vars <- saved_vars;
  g.arrays <- saved_arrays

let gen_function g name =
  line g "int %s(int p0, int p1) {" name;
  g.indent <- g.indent + 1;
  let saved_vars = g.vars and saved_arrays = g.arrays in
  let saved_rvars = g.rvars in
  g.vars <- [ "p0"; "p1" ];
  g.rvars <- [];
  g.arrays <- [];
  gen_block g 2 (2 + Random.State.int g.rng 4);
  line g "return %s;" (gen_expr g 2);
  g.vars <- saved_vars;
  g.rvars <- saved_rvars;
  g.arrays <- saved_arrays;
  g.indent <- g.indent - 1;
  line g "}"

let make_genv seed =
  {
    buf = Buffer.create 1024;
    indent = 0;
    vars = [];
    rvars = [];
    arrays = [];
    fresh = 0;
    rng = Random.State.make [| seed |];
    fuel = 120;
    pure = false;
    callables = [];
  }

let gen_program seed : string =
  let g = make_genv seed in
  (* a couple of helper functions main can call *)
  let helpers =
    List.init (Random.State.int g.rng 3) (fun i -> Printf.sprintf "helper%d" i)
  in
  List.iter (fun h -> gen_function g h) helpers;
  line g "int main(void) {";
  g.indent <- 1;
  line g "int acc = 0;";
  g.vars <- [ "acc" ];
  gen_block g 3 (4 + Random.State.int g.rng 6);
  List.iter
    (fun h ->
      line g "acc += %s(%s, %s);" h (gen_expr g 1) (gen_expr g 1))
    helpers;
  line g "return acc & 0xff;";
  g.indent <- 0;
  line g "}";
  Buffer.contents g.buf

(** A program whose helpers all pass the summary static gate: pure integer
    functions (possibly calling earlier helpers) plus a [main] that feeds
    them input bytes and may use the full statement language.  Returns the
    source and the helper names in generation (bottom-up) order. *)
let gen_pure_program ?(helpers = 3) seed : string * string list =
  let g = make_genv seed in
  g.fuel <- 60 + (20 * helpers);
  let names = List.init helpers (fun i -> Printf.sprintf "helper%d" i) in
  List.iter
    (fun h ->
      g.pure <- true;
      gen_function g h;
      g.pure <- false;
      (* later helpers may call this one: the callgraph gets depth *)
      g.callables <- g.callables @ [ h ])
    names;
  line g "int main(void) {";
  g.indent <- 1;
  line g "int acc = 0;";
  g.vars <- [ "acc" ];
  (* symbolic arguments so summaries are instantiated under real caller
     contexts, plus accumulator feedback so helper results flow onward *)
  List.iteri
    (fun i h -> line g "acc += %s(__input(%d), acc);" h (i land 3))
    names;
  gen_block g 2 (2 + Random.State.int g.rng 3);
  List.iter (fun h -> line g "acc += %s(acc, 7);" h) names;
  line g "return acc & 0xff;";
  g.indent <- 0;
  line g "}";
  (Buffer.contents g.buf, names)
