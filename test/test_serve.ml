(** Verification-service suite: protocol round-trips (QCheck), frame
    hardening (malformed / truncated / oversized inputs answered with
    structured errors, daemon intact), request deduplication (N identical
    concurrent requests, one execution), the serve-vs-CLI differential
    (byte-identical verify verdicts, including under injected faults), the
    response-envelope golden keys, and the store lifecycle under
    concurrency (racing atomic saves never tear the file; [clear_cache]
    never drops the shared store). *)

module Serve = Overify_serve.Serve
module Client = Overify_serve.Client
module Protocol = Overify_serve.Protocol
module Json = Overify_serve.Json
module Binfile = Overify_solver.Binfile
module Store = Overify_solver.Store
module Solver = Overify_solver.Solver
module Bv = Overify_solver.Bv
module Engine = Overify_symex.Engine
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib
module Fault = Overify_fault.Fault
module Hserve = Overify_harness.Serve

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_daemon f =
  let d = Serve.start () in
  Fun.protect ~finally:(fun () -> Serve.stop d) (fun () -> f d)

let with_conn d f =
  let c = Client.connect (Serve.socket_path d) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let get_str json key =
  match Protocol.extract_field json key with
  | Some v -> (
      match Json.parse v with Ok (Json.Str s) -> s | _ -> String.trim v)
  | None -> Alcotest.failf "field %S missing in %s" key json

let get_raw json key =
  match Protocol.extract_field json key with
  | Some v -> v
  | None -> Alcotest.failf "field %S missing in %s" key json

let daemon_stat d name =
  with_conn d @@ fun c ->
  match
    Client.rpc c
      { Protocol.default_request with Protocol.rq_kind = Protocol.Stats }
  with
  | Ok json -> (
      let result = get_raw json "result" in
      match Json.parse result with
      | Ok j -> Option.value ~default:(-1) (Option.bind (Json.mem j name) Json.int_)
      | Error e -> Alcotest.failf "stats result unparseable (%s): %s" e result)
  | Error e ->
      Alcotest.failf "stats rpc failed: %s" (Protocol.frame_error_name e)

(* ------------- Json: parse/print ------------- *)

let test_json_roundtrip_docs () =
  let docs =
    [
      "null"; "true"; "false"; "0"; "-7"; "3.5"; "\"\"";
      "\"a b\\nc\\\"d\\\\e\"";
      "[]"; "[1, 2, 3]"; "{}";
      "{\"k\": [true, null, {\"x\": -1}], \"s\": \"v\"}";
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error e -> Alcotest.failf "parse %s: %s" doc e
      | Ok v -> check string doc doc (Json.to_string v))
    docs

let test_json_rejects () =
  let bad =
    [ ""; "tru"; "{"; "[1,"; "{\"a\" 1}"; "\"unterminated"; "1 2";
      "{\"a\": 1,}"; "nul"; "--1"; "[1] trailing" ]
  in
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Ok _ -> Alcotest.failf "accepted malformed %S" doc
      | Error _ -> ())
    bad

let test_json_deep_nesting_safe () =
  (* a pathologically nested document must yield an error, not a crash *)
  let n = 2_000_000 in
  let doc = String.make n '[' in
  match Json.parse doc with
  | Ok _ -> Alcotest.fail "accepted unterminated deep nesting"
  | Error _ -> ()

let test_json_control_chars () =
  let s = "a\x01b\tc\"d\\e\x1f" in
  let doc = "\"" ^ Json.escape s ^ "\"" in
  match Json.parse doc with
  | Ok (Json.Str s') -> check string "control chars round-trip" s s'
  | _ -> Alcotest.failf "bad parse of %s" doc

(* ------------- Protocol: QCheck round-trips ------------- *)

let request_gen : Protocol.request QCheck.Gen.t =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 40)
  in
  let* rq_id = int_bound 1_000_000 in
  let* rq_kind =
    oneofl [ Protocol.Verify; Protocol.Compile; Protocol.Tv;
             Protocol.Stats; Protocol.Metrics; Protocol.Shutdown ]
  in
  let* rq_program = any_string in
  let* rq_source = any_string in
  let* rq_level = any_string in
  let* rq_input_size = int_bound 64 in
  let* timeout_mant = int_range 1 1_000_000 in
  let* timeout_exp = int_range (-3) 3 in
  let rq_timeout =
    float_of_int timeout_mant *. (10.0 ** float_of_int timeout_exp)
  in
  let* rq_jobs = int_range 1 64 in
  let* rq_link_libc = bool in
  let* rq_deterministic = bool in
  let* rq_faults = any_string in
  let* rq_summaries = bool in
  let* rq_format = oneofl [ ""; "json"; "prometheus" ] in
  return
    {
      Protocol.rq_id; rq_kind; rq_program; rq_source; rq_level;
      rq_input_size; rq_timeout; rq_jobs; rq_link_libc; rq_deterministic;
      rq_faults; rq_summaries; rq_format;
    }

let test_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request json round-trip"
    (QCheck.make request_gen)
    (fun rq ->
      let json = Protocol.request_to_json rq in
      match Json.parse json with
      | Error e -> QCheck.Test.fail_reportf "emitted unparseable JSON: %s" e
      | Ok j -> (
          match Protocol.request_of_json j with
          | Error e -> QCheck.Test.fail_reportf "rejected own encoding: %s" e
          | Ok rq' -> rq = rq'))

let test_frame_roundtrip =
  QCheck.Test.make ~count:100 ~name:"frame wire round-trip"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 4096)
              (QCheck.Gen.map Char.chr (QCheck.Gen.int_range 0 255)))
    (fun payload ->
      let (a, b) = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
        (fun () ->
          if not (Protocol.write_frame a payload) then
            QCheck.Test.fail_report "write_frame failed";
          match Protocol.read_frame b with
          | Ok p -> p = payload
          | Error e ->
              QCheck.Test.fail_reportf "read_frame: %s"
                (Protocol.frame_error_name e)))

let test_fingerprint_semantics () =
  let rq = Protocol.default_request in
  check string "id is not semantic"
    (Protocol.fingerprint rq)
    (Protocol.fingerprint { rq with Protocol.rq_id = 42 });
  check bool "kind is semantic" true
    (Protocol.fingerprint rq
    <> Protocol.fingerprint { rq with Protocol.rq_kind = Protocol.Compile });
  check bool "level is semantic" true
    (Protocol.fingerprint rq
    <> Protocol.fingerprint { rq with Protocol.rq_level = "O0" })

let test_request_rejects () =
  let parse s =
    match Json.parse s with
    | Ok j -> Protocol.request_of_json j
    | Error e -> Error e
  in
  let expect_err label s =
    match parse s with
    | Ok _ -> Alcotest.failf "%s: accepted %s" label s
    | Error _ -> ()
  in
  expect_err "not an object" "[1]";
  expect_err "missing kind" "{\"program\": \"wc\"}";
  expect_err "unknown kind" "{\"kind\": \"frobnicate\"}";
  expect_err "unknown field" "{\"kind\": \"verify\", \"frob\": 1}";
  expect_err "bad type" "{\"kind\": \"verify\", \"input_size\": \"four\"}";
  expect_err "size range" "{\"kind\": \"verify\", \"input_size\": 65}";
  expect_err "jobs range" "{\"kind\": \"verify\", \"jobs\": 0}";
  expect_err "timeout range" "{\"kind\": \"verify\", \"timeout\": -1}";
  expect_err "unknown format" "{\"kind\": \"metrics\", \"format\": \"xml\"}";
  match parse "{\"kind\": \"verify\", \"program\": \"wc\"}" with
  | Ok rq -> check string "defaults fill in" "OVERIFY" rq.Protocol.rq_level
  | Error e -> Alcotest.failf "rejected minimal request: %s" e

let test_extract_field () =
  let doc =
    "{\"a\": {\"nested\": [1, 2, \"}\"]}, \"b\": \"x\\\"y\", \"c\": -3.5, \
     \"d\": null}"
  in
  check string "object field" "{\"nested\": [1, 2, \"}\"]}" (get_raw doc "a");
  check string "string field with escape" "\"x\\\"y\"" (get_raw doc "b");
  check string "number field" "-3.5" (get_raw doc "c");
  check string "null field" "null" (get_raw doc "d");
  check bool "nested key not top-level" true
    (Protocol.extract_field doc "nested" = None)

(* ------------- daemon: frame hardening ------------- *)

let wc_request =
  {
    Protocol.default_request with
    Protocol.rq_program = "wc";
    rq_level = "O0";
    rq_input_size = 1;
    rq_timeout = 30.0;
    rq_deterministic = true;
  }

let test_garbage_frame () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c ->
   check bool "garbage sent" true (Client.send_bytes c "NOT A FRAME AT ALL");
   match Client.read_response c with
   | Ok json ->
       check string "status" "error" (get_str json "status");
       let err = get_raw json "error" in
       check bool "bad_frame error" true
         (match Json.parse err with
         | Ok e -> Json.mem e "kind" = Some (Json.Str "bad_frame")
         | Error _ -> false)
   | Error e ->
       Alcotest.failf "no structured answer to garbage: %s"
         (Protocol.frame_error_name e));
  (* the daemon survives and still serves *)
  with_conn d @@ fun c ->
  match Client.rpc c wc_request with
  | Ok json -> check string "daemon alive after garbage" "ok" (get_str json "status")
  | Error e -> Alcotest.failf "daemon dead: %s" (Protocol.frame_error_name e)

let test_truncated_frame () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c ->
   (* a valid frame cut mid-payload, then EOF *)
   let frame = Binfile.frame ~magic:Protocol.magic ~version:Protocol.version
       "{\"kind\": \"stats\"}" in
   let half = String.sub frame 0 (String.length frame - 7) in
   ignore (Client.send_bytes c half));
  (* connection dropped; daemon must keep serving *)
  with_conn d @@ fun c ->
  match Client.rpc c wc_request with
  | Ok json -> check string "daemon alive after truncation" "ok" (get_str json "status")
  | Error e -> Alcotest.failf "daemon dead: %s" (Protocol.frame_error_name e)

let test_oversized_frame () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c ->
   (* a well-formed header declaring a payload far beyond the cap: the
      daemon must refuse *before* allocating/reading the payload *)
   let buf = Buffer.create 32 in
   Buffer.add_string buf Protocol.magic;
   let put width v =
     for i = width - 1 downto 0 do
       Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
     done
   in
   put 4 Protocol.version;
   put 8 (Protocol.max_frame + 1);
   check bool "header sent" true (Client.send_bytes c (Buffer.contents buf));
   match Client.read_response c with
   | Ok json ->
       check string "status" "error" (get_str json "status");
       check bool "oversized error detail" true
         (let err = get_raw json "error" in
          match Json.parse err with
          | Ok e -> (
              match Json.mem e "message" with
              | Some (Json.Str m) ->
                  String.length m >= 9 && String.sub m 0 9 = "oversized"
              | _ -> false)
          | Error _ -> false)
   | Error e ->
       Alcotest.failf "no structured answer to oversized header: %s"
         (Protocol.frame_error_name e));
  with_conn d @@ fun c ->
  match Client.rpc c wc_request with
  | Ok json -> check string "daemon alive after oversized" "ok" (get_str json "status")
  | Error e -> Alcotest.failf "daemon dead: %s" (Protocol.frame_error_name e)

let test_bad_json_keeps_connection () =
  with_daemon @@ fun d ->
  with_conn d @@ fun c ->
  (* invalid JSON in a valid frame: structured error, connection stays
     usable (frame boundaries were never lost) *)
  check bool "payload sent" true (Client.send_payload c "{\"kind\": oops");
  (match Client.read_response c with
  | Ok json ->
      check string "status" "error" (get_str json "status");
      check bool "bad_json error" true
        (match Json.parse (get_raw json "error") with
        | Ok e -> Json.mem e "kind" = Some (Json.Str "bad_json")
        | Error _ -> false)
  | Error e ->
      Alcotest.failf "no answer to bad json: %s" (Protocol.frame_error_name e));
  match Client.rpc c wc_request with
  | Ok json ->
      check string "same connection still serves" "ok" (get_str json "status")
  | Error e -> Alcotest.failf "connection lost: %s" (Protocol.frame_error_name e)

let test_bad_request_errors () =
  with_daemon @@ fun d ->
  with_conn d @@ fun c ->
  let expect_bad label payload =
    check bool (label ^ " sent") true (Client.send_payload c payload);
    match Client.read_response c with
    | Ok json ->
        check string (label ^ " status") "error" (get_str json "status")
    | Error e ->
        Alcotest.failf "%s: no structured answer: %s" label
          (Protocol.frame_error_name e)
  in
  expect_bad "unknown field" "{\"kind\": \"verify\", \"frob\": 1}";
  expect_bad "unknown program"
    "{\"kind\": \"verify\", \"program\": \"no-such-program\", \
     \"deterministic\": true}";
  expect_bad "unknown level"
    "{\"kind\": \"verify\", \"program\": \"wc\", \"level\": \"O7\", \
     \"deterministic\": true}";
  expect_bad "bad fault spec"
    "{\"kind\": \"verify\", \"program\": \"wc\", \"faults\": \"bogus@x\", \
     \"deterministic\": true}";
  expect_bad "no program and no source" "{\"kind\": \"verify\"}"

let test_injected_kill_contained () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c ->
   (* kill@1: the first executor step raises Fault.Killed — one-shot CLI
      dies with exit 137; the daemon must contain it as a structured
      error and survive *)
   match
     Client.rpc c { wc_request with Protocol.rq_faults = "kill@1" }
   with
   | Ok json ->
       check string "killed request errors" "error" (get_str json "status");
       check bool "killed error kind" true
         (match Json.parse (get_raw json "error") with
         | Ok e -> Json.mem e "kind" = Some (Json.Str "killed")
         | Error _ -> false)
   | Error e ->
       Alcotest.failf "no structured answer to killed run: %s"
         (Protocol.frame_error_name e));
  with_conn d @@ fun c ->
  match Client.rpc c wc_request with
  | Ok json -> check string "daemon survives the kill" "ok" (get_str json "status")
  | Error e -> Alcotest.failf "daemon dead: %s" (Protocol.frame_error_name e)

(* ------------- dedup ------------- *)

let test_dedup_identical_concurrent () =
  with_daemon @@ fun d ->
  let n = 6 in
  let bodies = Array.make n "" in
  let worker i =
    with_conn d @@ fun c ->
    match Client.rpc c { wc_request with Protocol.rq_id = i } with
    | Ok json -> bodies.(i) <- json
    | Error e -> bodies.(i) <- "transport:" ^ Protocol.frame_error_name e
  in
  let threads = List.init n (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  (* all envelopes ok, all results byte-identical *)
  Array.iteri
    (fun i json ->
      check string (Printf.sprintf "request %d ok" i) "ok" (get_str json "status"))
    bodies;
  let result0 = get_raw bodies.(0) "result" in
  Array.iteri
    (fun i json ->
      check string
        (Printf.sprintf "request %d result identical" i)
        result0 (get_raw json "result"))
    bodies;
  (* exactly one underlying execution; every other request was a dedup
     hit (in-flight join or recent-cache) — visible in the counters *)
  check int "one execution for n identical requests" 1 (daemon_stat d "executed");
  check int "n-1 dedup hits" (n - 1) (daemon_stat d "dedup_hits");
  (* ids are echoed per-request even when deduplicated *)
  Array.iteri
    (fun i json ->
      check string (Printf.sprintf "id %d echoed" i) (string_of_int i)
        (get_raw json "id"))
    bodies

let test_dedup_kind_isolation () =
  (* same program at two kinds / two levels: no false sharing *)
  with_daemon @@ fun d ->
  (with_conn d @@ fun c ->
   List.iter
     (fun rq ->
       match Client.rpc c rq with
       | Ok json -> check string "ok" "ok" (get_str json "status")
       | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e))
     [
       wc_request;
       { wc_request with Protocol.rq_kind = Protocol.Compile };
       { wc_request with Protocol.rq_level = "O2" };
     ]);
  check int "three distinct executions" 3 (daemon_stat d "executed");
  check int "no dedup hits" 0 (daemon_stat d "dedup_hits")

(* ------------- serve-vs-CLI differential ------------- *)

(** What `overify verify --json --deterministic` computes, in-process:
    compile exactly as the daemon does, run the engine cold, print the
    deterministic document. *)
let oneshot_verify_json ~(level : string) ~input_size ~faults () =
  let cm = Option.get (Costmodel.of_name level) in
  let p = Option.get (Programs.find "wc") in
  let m =
    (Pipeline.optimize cm
       (Frontend.compile_sources [ Vclib.for_cost_model cm; p.Programs.source ]))
      .Pipeline.modul
  in
  let faults =
    if faults = "" then None
    else match Fault.parse faults with Ok f -> Some f | Error e -> failwith e
  in
  let r =
    Engine.run
      ~config:
        { Engine.default_config with Engine.input_size; timeout = 30.0; faults }
      m
  in
  Engine.result_to_json ~deterministic:true r

let differential ~level ~faults () =
  with_daemon @@ fun d ->
  let via_daemon =
    with_conn d @@ fun c ->
    match
      Client.rpc c
        { wc_request with Protocol.rq_level = level; rq_faults = faults }
    with
    | Ok json ->
        check string "daemon request ok" "ok" (get_str json "status");
        get_raw json "result"
    | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e)
  in
  let via_cli = oneshot_verify_json ~level ~input_size:1 ~faults () in
  check string
    (Printf.sprintf "byte-identical verdict (%s%s)" level
       (if faults = "" then "" else ", faults " ^ faults))
    via_cli via_daemon

let test_differential_o0 () = differential ~level:"O0" ~faults:"" ()
let test_differential_overify () = differential ~level:"OVERIFY" ~faults:"" ()

let test_differential_faults () =
  (* a degraded run (injected solver timeout) must degrade identically:
     same structured degradations, same faults_injected counts *)
  differential ~level:"O0" ~faults:"timeout@1" ()

let test_differential_warm_store () =
  (* the whole point of ~deterministic: the SAME request against a warm
     daemon (second occurrence, answered by a fresh execution after the
     recent-cache is bypassed via distinct fingerprints... kept simple:
     re-ask with a different id, dedup answers from cache — then compare
     against the cold one-shot document *)
  with_daemon @@ fun d ->
  let ask id =
    with_conn d @@ fun c ->
    match Client.rpc c { wc_request with Protocol.rq_id = id } with
    | Ok json -> (get_str json "dedup", get_raw json "result")
    | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e)
  in
  let (d1, r1) = ask 1 in
  let (d2, r2) = ask 2 in
  check string "first is a miss" "miss" d1;
  check string "second is a dedup hit" "recent" d2;
  check string "identical bytes warm vs cold" r1 r2;
  check string "and identical to the one-shot CLI document" r1
    (oneshot_verify_json ~level:"O0" ~input_size:1 ~faults:"" ())

(* ------------- response envelope: golden keys ------------- *)

let golden_walk json keys =
  let rec walk pos = function
    | [] -> ()
    | k :: rest ->
        let found = ref None in
        let nk = String.length k in
        (try
           for i = pos to String.length json - nk do
             if String.sub json i nk = k then begin
               found := Some i;
               raise Exit
             end
           done
         with Exit -> ());
        (match !found with
        | Some i -> walk (i + nk) rest
        | None ->
            Alcotest.failf "envelope: key %s missing (after position %d) in:\n%s"
              k pos json)
  in
  walk 0 keys

let test_envelope_golden_keys () =
  with_daemon @@ fun d ->
  with_conn d @@ fun c ->
  match Client.rpc c wc_request with
  | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e)
  | Ok json ->
      golden_walk json
        [
          "{"; "\"id\": 0"; "\"status\": \"ok\""; "\"kind\": \"verify\"";
          "\"dedup\": \"miss\""; "\"trace\": \"rq-"; "\"elapsed_ms\": 0.0";
          "\"error\": null";
          "\"result\": {"; "\"paths\":"; "\"instructions\":"; "\"forks\":";
          "\"queries\":"; "\"cache_hits\": 0"; "\"time_ms\": 0.0";
          "\"solver_time_ms\": 0.0"; "\"blocks_covered\":";
          "\"blocks_total\":"; "\"jobs\": 1"; "\"complete\": true";
          "\"resumed\": false"; "\"degradations\": []";
          "\"faults_injected\": []"; "\"bugs\": []"; "\"obs\": ["; "}";
        ]

let test_error_envelope_golden_keys () =
  with_daemon @@ fun d ->
  with_conn d @@ fun c ->
  check bool "sent" true (Client.send_payload c "not json");
  match Client.read_response c with
  | Error e -> Alcotest.failf "read: %s" (Protocol.frame_error_name e)
  | Ok json ->
      golden_walk json
        [
          "{"; "\"id\": 0"; "\"status\": \"error\"";
          "\"kind\": \"protocol\""; "\"dedup\": \"none\"";
          "\"trace\": \"\""; "\"elapsed_ms\":";
          "\"error\": {\"kind\": \"bad_json\"";
          "\"message\":"; "\"result\": null"; "\"obs\": []"; "}";
        ]

let with_temp_dir f =
  let tmp = Filename.temp_file "overify_serve_test" "" in
  let dir = tmp ^ ".d" in
  Fun.protect
    ~finally:(fun () ->
      (if Sys.file_exists dir && Sys.is_directory dir then
         Array.iter
           (fun fn ->
             try Sys.remove (Filename.concat dir fn) with Sys_error _ -> ())
           (Sys.readdir dir));
      (try Sys.rmdir dir with Sys_error _ -> ());
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () -> f dir)

(* ------------- telemetry: metrics op and flight recorder ------------- *)

module Flight = Overify_serve.Flight

let metrics_rpc ?(format = "") d =
  with_conn d @@ fun c ->
  match
    Client.rpc c
      {
        Protocol.default_request with
        Protocol.rq_kind = Protocol.Metrics;
        rq_format = format;
      }
  with
  | Error e -> Alcotest.failf "metrics rpc: %s" (Protocol.frame_error_name e)
  | Ok json ->
      check string "metrics op ok" "ok" (get_str json "status");
      get_raw json "result"

let test_metrics_golden_keys () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c -> ignore (Client.rpc c wc_request));
  (with_conn d @@ fun c ->
   ignore (Client.rpc c { wc_request with Protocol.rq_id = 1 }));
  let result = metrics_rpc d in
  (* the full registry document, fixed key order; the two verify
     requests above pin executed / dedup / latency-count cells *)
  golden_walk result
    [
      "{"; "\"uptime_s\":"; "\"queue_depth\":"; "\"requests\":";
      "\"executed\": 1"; "\"dedup_inflight\":"; "\"dedup_recent\":";
      "\"dedup_hits\": 1"; "\"malformed\": 0"; "\"errors\": 0";
      "\"requests_shed\": 0"; "\"cancelled\": 0";
      "\"deadline_exceeded\": 0"; "\"watchdog_fired\": 0";
      "\"idle_reaped\": 0"; "\"degraded\": 0"; "\"flight_dumps\": 0"; "\"flight_records\":";
      "\"flight_dropped\":"; "\"store_entries\":"; "\"store_loaded\":";
      "\"store_hits\":"; "\"engine_queries\":"; "\"engine_cache_hits\":";
      "\"solver_time_s\":"; "\"summary_instantiated\":";
      "\"summary_opaque\":"; "\"summary_computed\":"; "\"summary_cached\":";
      "\"latency_ms\": {"; "\"verify\": {"; "\"count\": 2"; "\"mean_ms\":";
      "\"p50_ms\":"; "\"p95_ms\":"; "\"p99_ms\":"; "\"max_ms\":";
      "\"compile\": {"; "\"count\": 0"; "\"tv\": {"; "\"registry\":"; "}";
    ];
  match Json.parse result with
  | Error e -> Alcotest.failf "metrics result unparseable: %s" e
  | Ok j ->
      let leaf path =
        List.fold_left
          (fun acc k -> Option.bind acc (fun j -> Json.mem j k))
          (Some j) path
      in
      check bool "latency_ms.verify.count = 2" true
        (Option.bind (leaf [ "latency_ms"; "verify"; "count" ]) Json.int_
        = Some 2);
      check bool "p95 >= p50 >= 0" true
        (match
           ( Option.bind (leaf [ "latency_ms"; "verify"; "p50_ms" ]) Json.num,
             Option.bind (leaf [ "latency_ms"; "verify"; "p95_ms" ]) Json.num )
         with
        | Some p50, Some p95 -> p95 >= p50 && p50 >= 0.0
        | _ -> false)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn <= nh && at 0

let test_prometheus_exposition () =
  with_daemon @@ fun d ->
  (with_conn d @@ fun c -> ignore (Client.rpc c wc_request));
  let raw = metrics_rpc ~format:"prometheus" d in
  let text =
    match Json.parse raw with
    | Ok (Json.Str s) -> s
    | _ -> Alcotest.failf "exposition is not a JSON string: %s" raw
  in
  (* shape: every sample line is `name{labels} value` with a numeric
     value; comment lines are # TYPE declarations *)
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  check bool "non-trivial exposition" true (List.length lines > 10);
  List.iter
    (fun l ->
      if l.[0] = '#' then
        check bool ("type line: " ^ l) true
          (String.length l > 7 && String.sub l 0 7 = "# TYPE ")
      else
        match String.rindex_opt l ' ' with
        | None -> Alcotest.failf "sample without value: %s" l
        | Some i -> (
            let v = String.sub l (i + 1) (String.length l - i - 1) in
            match float_of_string_opt v with
            | Some _ -> ()
            | None -> Alcotest.failf "non-numeric sample value: %s" l))
    lines;
  check bool "histogram declared" true
    (contains text "# TYPE overify_request_latency_seconds histogram");
  (* the one verify request lands in the +Inf bucket with count 1 — the
     ISSUE's "correct histogram bucket" check in its cumulative form *)
  check bool "verify +Inf bucket counts the request" true
    (contains text
       "overify_request_latency_seconds_bucket{kind=\"verify\",le=\"+Inf\"} 1");
  check bool "requests counter present" true
    (contains text "overify_requests_total");
  check bool "dedup counter present" true
    (contains text "overify_dedup_hits_total");
  check bool "shed counter present" true
    (contains text "overify_requests_shed_total");
  check bool "watchdog counter present" true
    (contains text "overify_watchdog_fired_total")

let test_flight_record_after_fault () =
  (* a degraded request (contained crash fault) must leave a flight
     record carrying its trace id, loadable via the postmortem path *)
  with_temp_dir @@ fun dir ->
  let d = Serve.start ~flight_dir:dir () in
  Fun.protect ~finally:(fun () -> Serve.stop d) @@ fun () ->
  let trace =
    with_conn d @@ fun c ->
    match
      Client.rpc c { wc_request with Protocol.rq_faults = "crash@1" }
    with
    | Ok json ->
        check string "faulted request ok (contained)" "ok"
          (get_str json "status");
        get_str json "trace"
    | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e)
  in
  check bool "trace id shape" true
    (String.length trace > 3 && String.sub trace 0 3 = "rq-");
  (* the dump happens on the executor thread after the response; poll *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec find_dump () =
    let dumps =
      if Sys.file_exists dir then
        List.filter
          (fun f -> Filename.check_suffix f ".bin")
          (Array.to_list (Sys.readdir dir))
      else []
    in
    match dumps with
    | f :: _ -> Filename.concat dir f
    | [] ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "no flight dump after degraded request"
        else begin
          Thread.delay 0.05;
          find_dump ()
        end
  in
  let path = find_dump () in
  match Flight.load path with
  | Error msg -> Alcotest.failf "flight load: %s" msg
  | Ok fd ->
      check string "dump reason" "degraded" fd.Flight.fd_reason;
      check string "dump trace is the request's" trace fd.Flight.fd_trace;
      check bool "has records" true (fd.Flight.fd_records <> []);
      check bool "a record carries the request trace" true
        (List.exists
           (fun (r : Overify_obs.Obs.Flight.record) ->
             r.Overify_obs.Obs.Flight.fr_trace = trace)
           fd.Flight.fd_records);
      (* the engine's fault event made it into the ring *)
      check bool "fault.injected event recorded" true
        (List.exists
           (fun (r : Overify_obs.Obs.Flight.record) ->
             r.Overify_obs.Obs.Flight.fr_label = "fault.injected"
             && r.Overify_obs.Obs.Flight.fr_trace = trace)
           fd.Flight.fd_records)

(* ------------- store lifecycle under concurrency ------------- *)

let test_write_atomic_race () =
  (* two in-process writers racing write_atomic on ONE path: every read
     observes one complete frame, never an interleaving of the two (the
     per-write unique temp name is what guarantees this; a pid-only temp
     name makes this test fail) *)
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "contended.bin" in
  let magic = "RACE-TEST" and version = 1 in
  let payload_a = String.make 8192 'a' and payload_b = String.make 8192 'b' in
  let iters = 150 in
  let writer payload () =
    for _ = 1 to iters do
      ignore (Binfile.write ~path ~magic ~version payload)
    done
  in
  let torn = ref 0 and reads = ref 0 in
  let reader () =
    while !reads < iters do
      (* probe existence BEFORE the read: a first write landing between a
         failed read and the check must not be miscounted as a torn read *)
      (let existed = Sys.file_exists path in
       match Binfile.read ~path ~magic ~version with
       | Some p ->
           incr reads;
           if p <> payload_a && p <> payload_b then incr torn
       | None ->
           (* the file exists after the first write and is never removed;
              from then on every read must validate *)
           if existed then incr torn);
      Thread.yield ()
    done
  in
  let ths =
    [ Thread.create (writer payload_a) (); Thread.create (writer payload_b) ();
      Thread.create reader () ]
  in
  List.iter Thread.join ths;
  check int "no torn or invalid reads" 0 !torn;
  check bool "reader actually read" true (!reads >= iters)

let store_queries () =
  let x = Bv.var 8 910 and y = Bv.var 8 911 in
  [
    [ Bv.cmp Bv.Ugt x (Bv.const 8 200L) ];
    [ Bv.cmp Bv.Ult x (Bv.const 8 5L); Bv.cmp Bv.Ugt x (Bv.const 8 10L) ];
    [ Bv.cmp Bv.Eq (Bv.binop Bv.Add x y) (Bv.const 8 77L) ];
  ]

let test_store_save_race () =
  (* a store save racing other saves of the same directory (the daemon's
     periodic save vs. an engine's end-of-run save): concurrent loads
     must always see a valid file — lost updates are acceptable for a
     cache, torn files are not *)
  with_temp_dir @@ fun dir ->
  let st = Store.load ~dir () in
  let c = Solver.create ~cache:true ~store:st () in
  List.iter (fun q -> ignore (Solver.check c q)) (store_queries ());
  Store.save st;
  let iters = 120 in
  let saver () =
    for i = 1 to iters do
      Store.add st (Printf.sprintf "key-%d-%d" (Thread.id (Thread.self ())) i)
        Store.E_unsat;
      Store.save st
    done
  in
  let invalid = ref 0 in
  let loader () =
    for _ = 1 to iters do
      (* a fresh load must always parse; the querying context's verdicts
         must be reproduced from whatever snapshot it sees *)
      let st' = Store.load ~dir () in
      if Store.loaded st' = 0 then incr invalid;
      Thread.yield ()
    done
  in
  let ths =
    [ Thread.create saver (); Thread.create saver (); Thread.create loader () ]
  in
  List.iter Thread.join ths;
  check int "every concurrent load saw a valid store file" 0 !invalid

let test_clear_cache_keeps_shared_store () =
  (* Solver.clear_cache drops the context-owned layers only: the shared
     store keeps its entries, and a post-clear query is answered from the
     store without a fresh solve *)
  with_temp_dir @@ fun dir ->
  let st = Store.load ~dir () in
  let c = Solver.create ~cache:true ~store:st () in
  let queries = store_queries () in
  let r1 = List.map (Solver.check c) queries in
  let entries = Store.length st in
  check bool "store gained entries" true (entries > 0);
  Solver.clear_cache c;
  check int "clear_cache left the shared store alone" entries (Store.length st);
  Solver.reset_stats c;
  let r2 = List.map (Solver.check c) queries in
  check bool "verdicts identical after clear" true (r1 = r2);
  check int "no fresh component solves after clear (store answered)" 0
    (Solver.stats c).Solver.component_solves;
  check bool "store layer hit" true ((Solver.stats c).Solver.hits_store > 0)

(* ------------- deadlines, admission control, watchdog ------------- *)

let stall_request ~timeout =
  { wc_request with Protocol.rq_faults = "stall@1"; rq_timeout = timeout }

(** Poll a daemon-side predicate (10ms ticks, ~5s budget). *)
let eventually ?(tries = 500) p =
  let rec go n = n > 0 && (p () || (Thread.delay 0.01; go (n - 1))) in
  go tries

let error_field json key =
  match Json.parse (get_raw json "error") with
  | Ok e -> Json.mem e key
  | Error _ -> None

let error_kind json =
  match error_field json "kind" with Some (Json.Str s) -> s | _ -> "<none>"

let error_message json =
  match error_field json "message" with Some (Json.Str s) -> s | _ -> "<none>"

let rpc_json c rq =
  match Client.rpc c rq with
  | Ok json -> json
  | Error e -> Alcotest.failf "rpc: %s" (Protocol.frame_error_name e)

(** Occupy the single executor with a wedged solver ([stall@1] polls only
    the explicit cancel flag, so the job runs past its deadline until the
    watchdog cancels it) and hand back the occupier's envelope cell plus
    its thread for joining. *)
let occupy d ~timeout =
  let out = ref "" in
  let th =
    Thread.create
      (fun () ->
        with_conn d @@ fun c -> out := rpc_json c (stall_request ~timeout))
      ()
  in
  check bool "occupier reached the executor" true
    (eventually (fun () ->
         daemon_stat d "inflight" >= 1
         && daemon_stat d "queue_depth" = 0
         && daemon_stat d "executed" = 0));
  (th, out)

let test_read_frame_timeouts () =
  let (a, b) = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* no bytes at all before the timeout: an idle connection *)
      (match Protocol.read_frame ~idle_timeout:0.05 a with
      | Error Protocol.Idle -> ()
      | Ok _ -> Alcotest.fail "idle read returned a frame"
      | Error e ->
          Alcotest.failf "idle read: %s" (Protocol.frame_error_name e));
      (* the magic arrives, then silence: a slowloris half-frame *)
      let n =
        Unix.write_substring b Protocol.magic 0 (String.length Protocol.magic)
      in
      check int "magic written" (String.length Protocol.magic) n;
      (match Protocol.read_frame ~idle_timeout:5.0 ~frame_timeout:0.05 a with
      | Error Protocol.Timed_out -> ()
      | Ok _ -> Alcotest.fail "half-frame returned a frame"
      | Error e ->
          Alcotest.failf "half-frame read: %s" (Protocol.frame_error_name e));
      check string "mid-frame expiry is the answerable one" "timeout"
        (Protocol.frame_error_name Protocol.Timed_out);
      check string "idle expiry is reaped silently" "idle"
        (Protocol.frame_error_name Protocol.Idle))

let test_deadline_while_queued () =
  let d = Serve.start ~grace:0.4 () in
  Fun.protect ~finally:(fun () -> Serve.stop d) @@ fun () ->
  let (occ_t, occ) = occupy d ~timeout:0.8 in
  (* a queued probe whose deadline lapses while the executor is wedged:
     the watchdog answers it without the engine ever seeing it *)
  let json =
    with_conn d @@ fun c ->
    rpc_json c { wc_request with Protocol.rq_timeout = 0.1; rq_id = 7 }
  in
  golden_walk json
    [
      "{"; "\"id\": 7"; "\"status\": \"error\""; "\"kind\": \"verify\"";
      "\"dedup\": \"miss\"";
      "\"error\": {\"kind\": \"deadline_exceeded\"";
      "\"message\": \"deadline expired while queued\"";
      "\"result\": null"; "}";
    ];
  check int "probe never executed" 0 (daemon_stat d "executed");
  Thread.join occ_t;
  check string "occupier degraded to deadline_exceeded" "deadline_exceeded"
    (error_kind !occ);
  check bool "occupier was freed by the watchdog" true
    (String.length (error_message !occ) >= 8
    && String.sub (error_message !occ) 0 8 = "watchdog");
  check int "watchdog fired exactly once" 1 (daemon_stat d "watchdog_fired");
  check bool "both deadline answers counted" true
    (daemon_stat d "deadline_exceeded" >= 2);
  (* the daemon keeps serving after wedge recovery *)
  with_conn d @@ fun c ->
  check string "daemon healthy after watchdog" "ok"
    (get_str (rpc_json c wc_request) "status")

let test_deadline_mid_run () =
  (* a deadline that lapses mid-symex: the engine self-cancels at its
     next cooperative check point and the envelope carries the partial
     result with its deadline_exceeded degradation entry *)
  with_daemon @@ fun d ->
  let json =
    with_conn d @@ fun c ->
    rpc_json c
      { wc_request with Protocol.rq_input_size = 8; rq_timeout = 0.02 }
  in
  check string "status" "error" (get_str json "status");
  check string "error kind" "deadline_exceeded" (error_kind json);
  check string "cooperative self-cancel, not the watchdog"
    "deadline exceeded" (error_message json);
  let result = get_raw json "result" in
  check bool "partial result rides along" true (result <> "null");
  check bool "run marked incomplete" true
    (contains result "\"complete\": false");
  check bool "degradation entry recorded" true
    (contains result "\"deadline_exceeded\"");
  check int "watchdog stayed out of it" 0 (daemon_stat d "watchdog_fired")

let test_cancelled_retry_byte_identity () =
  with_daemon @@ fun d ->
  let attempt =
    { wc_request with Protocol.rq_input_size = 8; rq_timeout = 0.02 }
  in
  (* 1. the first attempt dies on its deadline, partially warming the
     shared solver store and summary cache *)
  (with_conn d @@ fun c ->
   let json = rpc_json c attempt in
   check string "first attempt cancelled" "deadline_exceeded"
     (error_kind json));
  (* 2. transient answers never enter the recent-dedup cache: the same
     fingerprint re-executes instead of replaying the stale refusal *)
  (with_conn d @@ fun c ->
   let json = rpc_json c { attempt with Protocol.rq_id = 2 } in
   check string "transient answer not cached: fresh miss" "miss"
     (get_str json "dedup"));
  (* 3. the retried run (adequate deadline) must be byte-identical to
     the cold one-shot document despite the partially-warmed store *)
  let retried =
    with_conn d @@ fun c ->
    let json = rpc_json c wc_request in
    check string "retry ok" "ok" (get_str json "status");
    get_raw json "result"
  in
  check string "cancelled-then-retried run is byte-identical"
    (oneshot_verify_json ~level:"O0" ~input_size:1 ~faults:"" ())
    retried

let test_queue_cap_exact_sheds () =
  (* cap 1: one running + one queued; every distinct probe beyond that
     must shed — exactly N sheds, zero transport failures, each with the
     machine-readable overloaded envelope and a sane retry hint *)
  let d = Serve.start ~queue_cap:1 ~grace:0.4 () in
  Fun.protect ~finally:(fun () -> Serve.stop d) @@ fun () ->
  let (occ_t, occ) = occupy d ~timeout:1.0 in
  let filler = ref "" in
  let fill_t =
    Thread.create
      (fun () ->
        with_conn d @@ fun c ->
        filler :=
          rpc_json c
            { wc_request with Protocol.rq_level = "O2"; rq_timeout = 25.0 })
      ()
  in
  check bool "filler queued" true
    (eventually (fun () -> daemon_stat d "queue_depth" >= 1));
  let n = 3 in
  let sheds =
    List.init n (fun i ->
        with_conn d @@ fun c ->
        rpc_json c
          {
            wc_request with
            Protocol.rq_id = 10 + i;
            (* epsilon timeouts: distinct fingerprints defeat dedup *)
            rq_timeout = 29.0 -. (0.001 *. float_of_int i);
          })
  in
  List.iteri
    (fun i json ->
      golden_walk json
        [
          "{"; Printf.sprintf "\"id\": %d" (10 + i);
          "\"status\": \"error\""; "\"dedup\": \"none\"";
          "\"error\": {\"kind\": \"overloaded\""; "\"message\":";
          "\"retry_after_ms\":"; "\"result\": null"; "}";
        ];
      check bool (Printf.sprintf "probe %d hint at or above the floor" i)
        true
        (match Option.bind (error_field json "retry_after_ms") Json.int_ with
        | Some ms -> ms >= 25
        | None -> false))
    sheds;
  check int "exactly N sheds, none leaked to the executor" n
    (daemon_stat d "requests_shed");
  Thread.join occ_t;
  Thread.join fill_t;
  check string "occupier degraded to deadline_exceeded" "deadline_exceeded"
    (error_kind !occ);
  check string "filler ran to completion after recovery" "ok"
    (get_str !filler "status");
  check int "sheds still exactly N after drain" n
    (daemon_stat d "requests_shed")

let test_client_retry_backoff () =
  (* queue_cap 0 sheds every verify: the retrying client must re-send on
     a fresh connection per attempt and surface the final overloaded
     answer rather than a transport error *)
  let d = Serve.start ~queue_cap:0 () in
  Fun.protect ~finally:(fun () -> Serve.stop d) @@ fun () ->
  match
    Client.rpc_retry ~socket:(Serve.socket_path d) ~retries:2 ~backoff_ms:1
      wc_request
  with
  | Error e -> Alcotest.failf "retry surfaced a transport error: %s" e
  | Ok json ->
      check string "final answer still overloaded" "overloaded"
        (error_kind json);
      check int "every attempt reached the daemon and was shed" 3
        (daemon_stat d "requests_shed")

let test_overload_schedule_healthy () =
  (* the bench-overload workload in miniature: wedge, flood, recover,
     slowloris — the CI overload smoke's in-process twin *)
  let (o, healthy) =
    Hserve.run_overload ~probes:4 ~accepted:4 ~occupier_timeout:1.0
      ~grace:0.4 ()
  in
  check int "zero transport failures" 0 o.Hserve.o_transport_failures;
  check int "every request answered or shed" o.Hserve.o_requests
    (o.Hserve.o_ok + o.Hserve.o_overloaded + o.Hserve.o_deadline
   + o.Hserve.o_other_errors);
  check bool "overload schedule healthy" true healthy

(* ------------- harness trace replay ------------- *)

let test_trace_replay_healthy () =
  (* the bench-serve workload in miniature: daemon + synthetic mixed
     trace (dups + malformed) over concurrent clients, health contract
     asserted — this is the CI serve smoke's in-process twin *)
  let (s, healthy) = Hserve.run ~n:16 ~clients:3 () in
  check bool "healthy replay" true healthy;
  check int "every entry answered" s.Hserve.s_requests
    (s.Hserve.s_ok + s.Hserve.s_errors);
  check int "no transport failures" 0 s.Hserve.s_transport_failures;
  check bool "dedup hits observed" true (Hserve.stat s "dedup_hits" > 0);
  check bool "malformed entries answered as errors" true (s.Hserve.s_errors > 0)

let test_shutdown_drains_inflight () =
  (* a request in flight when shutdown arrives must still be answered *)
  let d = Serve.start () in
  let result = ref "" in
  let requester =
    Thread.create
      (fun () ->
        with_conn d @@ fun c ->
        match Client.rpc c { wc_request with Protocol.rq_level = "O2" } with
        | Ok json -> result := get_str json "status"
        | Error e -> result := "transport:" ^ Protocol.frame_error_name e)
      ()
  in
  (* give the request a moment to be submitted, then stop concurrently *)
  Thread.delay 0.05;
  Serve.stop d;
  Thread.join requester;
  check bool "in-flight request answered across shutdown" true
    (!result = "ok" || !result = "error");
  check bool "not dropped on the floor" true
    (String.length !result < 10 || String.sub !result 0 9 <> "transport")

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip documents" `Quick
            test_json_roundtrip_docs;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "deep nesting is an error, not a crash" `Quick
            test_json_deep_nesting_safe;
          Alcotest.test_case "control characters round-trip" `Quick
            test_json_control_chars;
        ] );
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest test_request_roundtrip;
          QCheck_alcotest.to_alcotest test_frame_roundtrip;
          Alcotest.test_case "fingerprint semantics" `Quick
            test_fingerprint_semantics;
          Alcotest.test_case "request validation" `Quick test_request_rejects;
          Alcotest.test_case "extract_field" `Quick test_extract_field;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "garbage frame" `Quick test_garbage_frame;
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "bad json keeps connection" `Quick
            test_bad_json_keeps_connection;
          Alcotest.test_case "bad requests answered" `Quick
            test_bad_request_errors;
          Alcotest.test_case "injected kill contained" `Quick
            test_injected_kill_contained;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "n identical concurrent requests, 1 execution"
            `Quick test_dedup_identical_concurrent;
          Alcotest.test_case "no false sharing across kinds/levels" `Quick
            test_dedup_kind_isolation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "serve = cli at O0" `Quick test_differential_o0;
          Alcotest.test_case "serve = cli at OVERIFY" `Quick
            test_differential_overify;
          Alcotest.test_case "serve = cli under injected faults" `Quick
            test_differential_faults;
          Alcotest.test_case "warm daemon = cold one-shot" `Quick
            test_differential_warm_store;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "golden keys (ok)" `Quick
            test_envelope_golden_keys;
          Alcotest.test_case "golden keys (error)" `Quick
            test_error_envelope_golden_keys;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics op golden keys" `Quick
            test_metrics_golden_keys;
          Alcotest.test_case "prometheus exposition parses" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "injected fault leaves a flight record" `Quick
            test_flight_record_after_fault;
        ] );
      ( "store-lifecycle",
        [
          Alcotest.test_case "write_atomic race never tears" `Quick
            test_write_atomic_race;
          Alcotest.test_case "racing store saves stay loadable" `Quick
            test_store_save_race;
          Alcotest.test_case "clear_cache keeps the shared store" `Quick
            test_clear_cache_keeps_shared_store;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "read_frame idle / mid-frame timeouts" `Quick
            test_read_frame_timeouts;
          Alcotest.test_case "deadline lapses while queued" `Quick
            test_deadline_while_queued;
          Alcotest.test_case "deadline lapses mid-run (partial result)"
            `Quick test_deadline_mid_run;
          Alcotest.test_case "cancelled-then-retried byte identity" `Quick
            test_cancelled_retry_byte_identity;
          Alcotest.test_case "queue cap: exact sheds, golden envelope"
            `Quick test_queue_cap_exact_sheds;
          Alcotest.test_case "client retry surfaces final overload" `Quick
            test_client_retry_backoff;
          Alcotest.test_case "overload schedule healthy" `Quick
            test_overload_schedule_healthy;
        ] );
      ( "replay",
        [
          Alcotest.test_case "synthetic trace replay healthy" `Quick
            test_trace_replay_healthy;
          Alcotest.test_case "shutdown drains in-flight requests" `Quick
            test_shutdown_drains_inflight;
        ] );
    ]
