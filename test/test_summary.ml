(** Summary-vs-inline differential battery and property suite for the
    compositional layer (lib/summary + Summarize + the executor's call-site
    instantiation).

    The soundness claim under test: with [config.summaries] on, every
    verdict — paths, exit codes, bugs, witnesses, coverage — is
    byte-identical to inline exploration; only effort counters move.  The
    claim is only meaningful for complete runs (a wall-clock truncation
    cuts the two explorations at different points), so every differential
    check here gates on [complete] and counts truncated cells as skipped.

    Beyond the differential battery: QCheck properties over random pure
    MiniC programs (shared {!Fuzzgen} generator) for agreement, fingerprint
    stability and the invalidation cone; store round-trip/corruption
    robustness; chaos schedules with summaries on; parallel determinism;
    and the recursion-is-Opaque gate. *)

module Engine = Overify_symex.Engine
module Summary = Overify_summary.Summary
module Callgraph = Overify_ir.Callgraph
module Ir = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Store = Overify_solver.Store
module H = Overify_harness

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let compile level src =
  (Pipeline.optimize level (Frontend.compile_source src)).Pipeline.modul

let run ?(input_size = 2) ?(timeout = 30.0) ?(summaries = false) ?(jobs = 1)
    ?cache_dir m =
  Engine.run
    ~config:
      {
        Engine.default_config with
        input_size;
        timeout;
        summaries;
        searcher = (if jobs > 1 then `Parallel jobs else `Dfs);
        cache_dir;
      }
    m

let det_json r = Engine.result_to_json ~deterministic:true r

let with_temp_dir f =
  let tmp = Filename.temp_file "overify_test_summary" "" in
  let dir = tmp ^ ".d" in
  Fun.protect
    ~finally:(fun () ->
      (if Sys.file_exists dir && Sys.is_directory dir then
         Array.iter
           (fun x ->
             try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
           (Sys.readdir dir));
      (try Sys.rmdir dir with Sys_error _ -> ());
      try Sys.remove tmp with Sys_error _ -> ())
    (fun () -> f dir)

(* ------------- the corpus differential battery ------------- *)

(* every corpus program x {O0, O3, OVERIFY} x {summaries off, on}: for
   complete runs the deterministic JSON (verdicts only: paths, exit codes,
   bugs, witnesses, coverage) must be byte-identical *)
let test_corpus_differential () =
  let levels = [ Costmodel.o0; Costmodel.o3; Costmodel.overify ] in
  let compared = ref 0 and skipped = ref 0 in
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun (level : Costmodel.t) ->
          let c = H.Experiment.compile level p in
          let off =
            H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:false c
          in
          let on =
            H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true c
          in
          if off.Engine.complete && on.Engine.complete then begin
            incr compared;
            let a = det_json off and b = det_json on in
            if a <> b then
              Alcotest.failf
                "%s at %s: summaries on and off disagree\n--- off ---\n%s\n\
                 --- on ---\n%s"
                p.Programs.name level.Costmodel.name a b
          end
          else incr skipped)
        levels)
    Programs.programs;
  (* the suite must actually compare most of the corpus — if nearly
     everything times out the battery is vacuous *)
  check bool
    (Printf.sprintf "compared %d cells (%d wall-clock truncated)" !compared
       !skipped)
    true
    (!compared > 2 * !skipped)

(* the compositional mode must actually fire on the corpus: a program
   linking the vclib helpers instantiates summaries at call sites *)
let test_mode_is_not_vacuous () =
  let p = Option.get (Programs.find "wc") in
  let c = H.Experiment.compile Costmodel.o0 p in
  let r = H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true c in
  check bool "run completed" true r.Engine.complete;
  check bool "summaries were computed" true (r.Engine.summary_computed > 0);
  check bool "summaries were instantiated at call sites" true
    (r.Engine.summary_instantiated > 0)

(* ------------- QCheck properties over random pure programs ------------- *)

let prop_on_agrees_with_off =
  QCheck2.Test.make ~name:"random pure programs: summaries on = off"
    ~count:12
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let (src, _) = Fuzzgen.gen_pure_program seed in
      let m = compile Costmodel.o0 src in
      let off = run ~timeout:15.0 ~summaries:false m in
      let on = run ~timeout:15.0 ~summaries:true m in
      if not (off.Engine.complete && on.Engine.complete) then true
      else if det_json off <> det_json on then
        QCheck2.Test.fail_reportf
          "seed %d: summaries on and off disagree\n--- off ---\n%s\n--- on \
           ---\n%s\n--- program ---\n%s"
          seed (det_json off) (det_json on) src
      else true)

(* does [caller] transitively call [target]? (the fingerprint cone of
   [target] is exactly [target] plus the functions for which this holds) *)
let reaches m caller target =
  let seen = ref [] in
  let rec go cur =
    cur = target
    || (not (List.mem cur !seen)
       && begin
            seen := cur :: !seen;
            match Ir.find_func m cur with
            | None -> false
            | Some f -> List.exists go (Callgraph.callees m f)
          end)
  in
  go caller

let fn_names (m : Ir.modul) = List.map (fun (f : Ir.func) -> f.Ir.fname) m.Ir.funcs

let prop_fingerprint_stability_and_cone =
  QCheck2.Test.make
    ~name:"fingerprints: stable across compiles, edit changes exactly the cone"
    ~count:25
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let (src, helpers) = Fuzzgen.gen_pure_program seed in
      let m1 = compile Costmodel.o0 src in
      let m2 = compile Costmodel.o0 src in
      let f1 = Summary.fingerprints m1 and f2 = Summary.fingerprints m2 in
      List.iter
        (fun fn ->
          if Hashtbl.find_opt f1 fn <> Hashtbl.find_opt f2 fn then
            QCheck2.Test.fail_reportf
              "seed %d: fingerprint of %s differs across two compiles of \
               identical source"
              seed fn)
        (fn_names m1);
      (* edit one helper: exactly its cone (itself + transitive callers)
         must change fingerprint *)
      let fn = List.nth helpers (abs seed mod List.length helpers) in
      let m3 = Summary.edit_function m1 fn in
      let f3 = Summary.fingerprints m3 in
      List.iter
        (fun g ->
          let changed = Hashtbl.find_opt f3 g <> Hashtbl.find_opt f1 g in
          let in_cone = reaches m1 g fn in
          if changed && not in_cone then
            QCheck2.Test.fail_reportf
              "seed %d: editing %s changed the fingerprint of %s, which is \
               outside its cone"
              seed fn g
          else if in_cone && not changed then
            QCheck2.Test.fail_reportf
              "seed %d: editing %s left the fingerprint of %s (in its cone) \
               unchanged"
              seed fn g)
        (fn_names m1);
      true)

let prop_invalidation_cone_cache =
  QCheck2.Test.make
    ~name:"editing one function cache-hits every summary outside its cone"
    ~count:6
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let (src, helpers) = Fuzzgen.gen_pure_program seed in
      let m = compile Costmodel.o0 src in
      let cands = Summary.candidates m in
      if cands = [] then true
      else
        with_temp_dir (fun dir ->
            let cold = run ~timeout:15.0 ~summaries:true ~cache_dir:dir m in
            (* transient opacities (solver timeout, coverage attribution)
               are never persisted, so they re-compute on every run; the
               warm run measures that baseline so the edited run is only
               charged for what the edit itself invalidated *)
            let warm = run ~timeout:15.0 ~summaries:true ~cache_dir:dir m in
            let transient = warm.Engine.summary_computed in
            let fn = List.nth helpers (abs seed mod List.length helpers) in
            let m' = Summary.edit_function m fn in
            let edited =
              run ~timeout:15.0 ~summaries:true ~cache_dir:dir m'
            in
            let cone = List.filter (fun c -> reaches m c fn) cands in
            if edited.Engine.summary_computed > List.length cone + transient
            then
              QCheck2.Test.fail_reportf
                "seed %d: editing %s rebuilt %d summaries but its cone has \
                 only %d candidates (+%d transient)"
                seed fn edited.Engine.summary_computed (List.length cone)
                transient
            else if
              edited.Engine.summary_cached
              < warm.Engine.summary_cached - List.length cone
            then
              QCheck2.Test.fail_reportf
                "seed %d: editing %s cache-hit %d summaries; a warm run \
                 cache-hits %d and the cone only covers %d (cold computed %d)"
                seed fn edited.Engine.summary_cached
                warm.Engine.summary_cached (List.length cone)
                cold.Engine.summary_computed
            else true))

(* ------------- persistence robustness ------------- *)

(* warm re-run against the same store: nothing recomputed, everything
   cache-hit, verdicts byte-identical *)
let test_store_round_trip () =
  let p = Option.get (Programs.find "wc") in
  let c = H.Experiment.compile Costmodel.o0 p in
  with_temp_dir (fun dir ->
      let cold =
        H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true
          ~cache_dir:dir c
      in
      let warm =
        H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true
          ~cache_dir:dir c
      in
      check bool "cold computed summaries" true
        (cold.Engine.summary_computed > 0);
      check int "warm recomputed nothing" 0 warm.Engine.summary_computed;
      check bool "warm answered from the store" true
        (warm.Engine.summary_cached > 0);
      check string "verdicts identical across the round trip" (det_json cold)
        (det_json warm))

let test_decode_robustness () =
  (* a decodable blob round-trips *)
  let s = Summary.Opaque "too many traces" in
  (match Summary.decode (Summary.encode s) with
  | Some (Summary.Opaque r) -> check string "opaque reason survives" "too many traces" r
  | _ -> Alcotest.fail "encode/decode lost an Opaque summary");
  (* garbage and truncation are misses, never crashes *)
  check bool "garbage decodes to None" true (Summary.decode "garbage" = None);
  check bool "empty decodes to None" true (Summary.decode "" = None);
  let enc = Summary.encode s in
  let trunc = String.sub enc 0 (String.length enc / 2) in
  check bool "truncated blob decodes to None" true (Summary.decode trunc = None)

(* flipping any byte of the store file must never crash the load, and a
   verification against the damaged store still completes with the same
   verdicts (summaries silently recomputed) *)
let test_store_corruption_is_a_miss () =
  let p = Option.get (Programs.find "echo") in
  let c = H.Experiment.compile Costmodel.o0 p in
  with_temp_dir (fun dir ->
      let clean =
        H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true
          ~cache_dir:dir c
      in
      let file =
        match Array.to_list (Sys.readdir dir) with
        | [ f ] -> Filename.concat dir f
        | l ->
            Alcotest.failf "expected exactly one store file, got %d"
              (List.length l)
      in
      let original = In_channel.with_open_bin file In_channel.input_all in
      let len = String.length original in
      let positions = [ 0; 5; 21; len / 2; len - 1 ] in
      List.iter
        (fun pos ->
          let b = Bytes.of_string original in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_bytes oc b);
          (* the load must absorb the damage... *)
          let st = Store.load ~dir () in
          ignore (Store.loaded st);
          (* ...and verification against it must still agree with clean *)
          let r =
            H.Experiment.verify ~input_size:2 ~timeout:30.0 ~summaries:true
              ~cache_dir:dir c
          in
          if r.Engine.complete && clean.Engine.complete then
            check string
              (Printf.sprintf "verdicts unchanged after flip at byte %d" pos)
              (det_json clean) (det_json r))
        positions;
      (* truncated garbage loads as an empty store *)
      Out_channel.with_open_bin file (fun oc -> output_string oc "garbage");
      check int "truncated garbage loads empty" 0 (Store.loaded (Store.load ~dir ()));
      (* right magic, wrong version: also empty *)
      Out_channel.with_open_bin file (fun oc ->
          output_string oc "OVERIFY-SOLVER-STORE";
          output_binary_int oc 999_999);
      check int "version mismatch loads empty" 0
        (Store.loaded (Store.load ~dir ())))

(* ------------- chaos: fault schedules with summaries on ------------- *)

(* summaries must not weaken the hardening contract: zero crashes,
   deterministic repeats, degraded verdicts a subset of clean.  kill/resume
   is off — a kill firing during summary construction precedes the first
   checkpoint, which the chaos harness documents as incompatible. *)
let test_chaos_with_summaries () =
  let p = Option.get (Programs.find "wc") in
  let json = Filename.temp_file "overify_chaos_summary" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove json with Sys_error _ -> ())
    (fun () ->
      let r =
        H.Chaos.run ~input_size:2 ~timeout:60.0 ~programs:[ p ]
          ~kill_resume:false ~summaries:true ~json_path:json ()
      in
      check int "no hardening-contract violations with summaries on" 0
        r.H.Chaos.failures)

(* ------------- parallel determinism ------------- *)

let test_jobs2_determinism () =
  let p = Option.get (Programs.find "wc") in
  let c = H.Experiment.compile Costmodel.o0 p in
  let seq =
    H.Experiment.verify ~input_size:2 ~timeout:60.0 ~summaries:true ~jobs:1 c
  in
  let par =
    H.Experiment.verify ~input_size:2 ~timeout:60.0 ~summaries:true ~jobs:2 c
  in
  check bool "both runs complete" true
    (seq.Engine.complete && par.Engine.complete);
  (* the "jobs" field reports the worker count and differs by
     construction; everything else must match byte-for-byte *)
  let normalize j =
    let needle = "\"jobs\": " in
    match
      let rec find i =
        if i + String.length needle > String.length j then None
        else if String.sub j i (String.length needle) = needle then Some i
        else find (i + 1)
      in
      find 0
    with
    | None -> j
    | Some i ->
        let k = ref (i + String.length needle) in
        while !k < String.length j && j.[!k] >= '0' && j.[!k] <= '9' do
          incr k
        done;
        String.sub j 0 (i + String.length needle)
        ^ "0"
        ^ String.sub j !k (String.length j - !k)
  in
  check string "1 and 2 worker domains agree byte-for-byte"
    (normalize (det_json seq))
    (normalize (det_json par))

(* ------------- recursion is Opaque ------------- *)

let test_mutual_recursion_is_opaque () =
  let src =
    String.concat "\n"
      [
        "int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }";
        "int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }";
        "int main(void) { return even(__input(0) & 7) + odd(__input(1) & 3); }";
      ]
  in
  let m = compile Costmodel.o0 src in
  let cyc = Callgraph.cyclic m in
  check bool "even is cyclic" true (Callgraph.StrSet.mem "even" cyc);
  check bool "odd is cyclic" true (Callgraph.StrSet.mem "odd" cyc);
  let cands = Summary.candidates m in
  check bool "neither recursive function is a candidate" true
    (not (List.mem "even" cands) && not (List.mem "odd" cands));
  (* and the engine still verifies it identically either way *)
  let off = run ~summaries:false m and on = run ~summaries:true m in
  check bool "both complete" true (off.Engine.complete && on.Engine.complete);
  check string "verdicts agree" (det_json off) (det_json on);
  check int "nothing was instantiated" 0 on.Engine.summary_instantiated

let () =
  Alcotest.run "summary"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus x levels: on = off (byte-identical)"
            `Quick test_corpus_differential;
          Alcotest.test_case "mode is not vacuous" `Quick
            test_mode_is_not_vacuous;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_on_agrees_with_off;
          QCheck_alcotest.to_alcotest prop_fingerprint_stability_and_cone;
          QCheck_alcotest.to_alcotest prop_invalidation_cone_cache;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "store round trip" `Quick test_store_round_trip;
          Alcotest.test_case "decode robustness" `Quick test_decode_robustness;
          Alcotest.test_case "corruption is a miss" `Quick
            test_store_corruption_is_a_miss;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "chaos schedules with summaries on" `Quick
            test_chaos_with_summaries;
          Alcotest.test_case "2-domain determinism" `Quick
            test_jobs2_determinism;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "mutual recursion is opaque" `Quick
            test_mutual_recursion_is_opaque;
        ] );
    ]
