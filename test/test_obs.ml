(** Observability suite: unit tests for the metric primitives ([Obs.Hist],
    [Obs.Registry], [Obs.Pass], [Obs.Profile]), the central attribution
    invariant (per-site costs sum to the whole-run [Engine.result] totals),
    the shape and determinism of the [overify profile --json] report, and
    the trace sink. *)

module Obs = Overify_obs.Obs
module Engine = Overify_symex.Engine
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib
module Profile = Overify_harness.Profile

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------- Hist ------------- *)

let test_hist_observe () =
  let h = Obs.Hist.create () in
  check int "empty count" 0 h.Obs.Hist.count;
  Obs.Hist.observe h 0.001;
  Obs.Hist.observe h 0.004;
  Obs.Hist.observe h 0.002;
  check int "count" 3 h.Obs.Hist.count;
  check (Alcotest.float 1e-9) "sum" 0.007 h.Obs.Hist.sum;
  check (Alcotest.float 1e-9) "max" 0.004 h.Obs.Hist.max;
  check (Alcotest.float 1e-9) "mean" (0.007 /. 3.) (Obs.Hist.mean h)

let test_hist_buckets_monotonic () =
  let prev = ref 0.0 in
  for i = 0 to Obs.Hist.nbuckets - 1 do
    let b = Obs.Hist.bucket_bound i in
    check bool (Printf.sprintf "bound %d grows" i) true (b > !prev);
    prev := b
  done

let test_hist_percentile () =
  let h = Obs.Hist.create () in
  (* 90 fast observations, 10 slow ones *)
  for _ = 1 to 90 do Obs.Hist.observe h 0.0001 done;
  for _ = 1 to 10 do Obs.Hist.observe h 0.1 done;
  let p50 = Obs.Hist.percentile h 0.5 in
  let p99 = Obs.Hist.percentile h 0.99 in
  check bool "p50 is fast" true (p50 < 0.01);
  check bool "p99 is slow" true (p99 > 0.01);
  check bool "percentile capped at max" true (p99 <= h.Obs.Hist.max)

let test_hist_merge () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  Obs.Hist.observe a 0.001;
  Obs.Hist.observe b 0.002;
  Obs.Hist.observe b 0.3;
  Obs.Hist.merge_into a b;
  check int "merged count" 3 a.Obs.Hist.count;
  check (Alcotest.float 1e-9) "merged sum" 0.303 a.Obs.Hist.sum;
  check (Alcotest.float 1e-9) "merged max" 0.3 a.Obs.Hist.max;
  check int "source untouched" 2 b.Obs.Hist.count

(* ------------- Registry ------------- *)

let test_registry () =
  let r = Obs.Registry.create () in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) @@ fun () ->
  let c = Obs.Registry.counter ~registry:r "events" in
  Obs.Registry.incr c;
  Obs.Registry.incr c;
  Obs.Registry.add c 3;
  check int "counter" 5 c.Obs.Registry.count;
  (* same (name, labels) resolves to the same cell *)
  let c' = Obs.Registry.counter ~registry:r "events" in
  check bool "same cell" true (c == c');
  (* different labels are a different cell *)
  let cl = Obs.Registry.counter ~registry:r ~labels:[ ("pass", "gvn") ] "events" in
  check bool "labeled cell distinct" true (not (c == cl));
  Obs.Registry.incr cl;
  check int "labeled count" 1 cl.Obs.Registry.count;
  let t = Obs.Registry.timer ~registry:r "t" in
  Obs.Registry.add_time t 0.25;
  let x = Obs.Registry.time t (fun () -> 41 + 1) in
  check int "timed thunk result" 42 x;
  check bool "timer accumulated" true (t.Obs.Registry.sum >= 0.25);
  check int "dump has three cells" 3
    (List.length (Obs.Registry.dump ~registry:r ()));
  Obs.Registry.clear ~registry:r ();
  check int "clear empties" 0 (List.length (Obs.Registry.dump ~registry:r ()))

let test_registry_disabled_noop () =
  let r = Obs.Registry.create () in
  let was = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) @@ fun () ->
  let c = Obs.Registry.counter ~registry:r "events" in
  Obs.Registry.incr c;
  Obs.Registry.add c 10;
  check int "disabled counter stays 0" 0 c.Obs.Registry.count

(* ------------- Pass ------------- *)

let app pass fn time before after changed =
  {
    Obs.Pass.pa_pass = pass;
    pa_fn = fn;
    pa_time = time;
    pa_size_before = before;
    pa_size_after = after;
    pa_changed = changed;
  }

let test_pass_rollup () =
  let p = Obs.Pass.create () in
  Obs.Pass.record p (app "gvn" "f" 0.1 100 90 true);
  Obs.Pass.record p (app "dce" "f" 0.2 90 80 true);
  Obs.Pass.record p (app "gvn" "g" 0.3 50 50 false);
  check int "apps in order" 3 (List.length (Obs.Pass.apps p));
  check string "first app" "gvn" (List.nth (Obs.Pass.apps p) 0).Obs.Pass.pa_pass;
  match Obs.Pass.rollup p with
  | [ gvn; dce ] ->
      check string "rollup order = first application" "gvn" gvn.Obs.Pass.pr_pass;
      check int "gvn apps" 2 gvn.Obs.Pass.pr_apps;
      check int "gvn changed" 1 gvn.Obs.Pass.pr_changed;
      check (Alcotest.float 1e-9) "gvn time" 0.4 gvn.Obs.Pass.pr_time;
      check int "gvn dsize" (-10) gvn.Obs.Pass.pr_dsize;
      check int "dce apps" 1 dce.Obs.Pass.pr_apps;
      check int "dce dsize" (-10) dce.Obs.Pass.pr_dsize
  | l -> Alcotest.failf "expected 2 rollup rows, got %d" (List.length l)

(* ------------- Profile collector ------------- *)

let test_profile_sites () =
  let p = Obs.Profile.create () in
  let s1 = Obs.Profile.site p ~fn:"main" ~block:3 in
  s1.Obs.Profile.s_insts <- 10;
  (* memoized: the same (fn, block) is the same cell *)
  let s1' = Obs.Profile.site p ~fn:"main" ~block:3 in
  check bool "memoized cell" true (s1 == s1');
  let s2 = Obs.Profile.site p ~fn:"main" ~block:7 in
  s2.Obs.Profile.s_queries <- 2;
  let s3 = Obs.Profile.site p ~fn:"wc" ~block:3 in
  s3.Obs.Profile.s_insts <- 5;
  check int "three sites" 3 (List.length (Obs.Profile.sites p));
  let t = Obs.Profile.totals p in
  check int "total insts" 15 t.Obs.Profile.t_insts;
  check int "total queries" 2 t.Obs.Profile.t_queries;
  (* merge *)
  let q = Obs.Profile.create () in
  (Obs.Profile.site q ~fn:"main" ~block:3).Obs.Profile.s_insts <- 100;
  (Obs.Profile.site q ~fn:"new" ~block:0).Obs.Profile.s_forks <- 4;
  Obs.Profile.merge_into p q;
  let t = Obs.Profile.totals p in
  check int "merged insts" 115 t.Obs.Profile.t_insts;
  check int "merged forks" 4 t.Obs.Profile.t_forks;
  check int "four sites after merge" 4 (List.length (Obs.Profile.sites p))

(* ------------- attribution sums to engine totals ------------- *)

let compile_program ?(level = Costmodel.overify) (p : Programs.t) =
  (Pipeline.optimize level
     (Frontend.compile_sources [ Vclib.for_cost_model level; p.Programs.source ]))
    .Pipeline.modul

let run_profiled ?(searcher = `Dfs) ?(input_size = 3) m =
  Engine.run
    ~config:
      {
        Engine.default_config with
        input_size;
        timeout = 30.0;
        searcher;
        profile = true;
      }
    m

let assert_attribution_matches name (r : Engine.result) =
  let p =
    match r.Engine.profile with
    | Some p -> p
    | None -> Alcotest.failf "%s: no profile returned" name
  in
  let t = Obs.Profile.totals p in
  check int (name ^ ": instructions attributed") r.Engine.instructions
    t.Obs.Profile.t_insts;
  check int (name ^ ": forks attributed") r.Engine.forks t.Obs.Profile.t_forks;
  check int (name ^ ": queries attributed") r.Engine.queries
    t.Obs.Profile.t_queries;
  check int (name ^ ": cache hits attributed") r.Engine.cache_hits
    t.Obs.Profile.t_cache_hits;
  check int (name ^ ": paths attributed") r.Engine.paths t.Obs.Profile.t_paths;
  (* per-site solver charges are float deltas of the same accumulator —
     equal up to rounding *)
  if abs_float (t.Obs.Profile.t_solver_time -. r.Engine.solver_time)
     > 1e-6 +. (1e-9 *. float_of_int r.Engine.queries)
  then
    Alcotest.failf "%s: solver time %.9f attributed as %.9f" name
      r.Engine.solver_time t.Obs.Profile.t_solver_time

(* every corpus program, sequential: sums must match exactly *)
let test_attribution_corpus () =
  List.iter
    (fun (p : Programs.t) ->
      let m = compile_program p in
      let r = run_profiled ~input_size:2 m in
      assert_attribution_matches p.Programs.name r)
    Programs.programs

(* unoptimized wc has multiple active functions — attribution must span
   them and still sum to the totals *)
let test_attribution_multi_function () =
  let p = Option.get (Programs.find "wc") in
  let m = compile_program ~level:Costmodel.o0 p in
  let r = run_profiled ~input_size:3 m in
  assert_attribution_matches "wc@O0" r;
  let prof = Option.get r.Engine.profile in
  let fns =
    List.sort_uniq compare
      (List.map (fun ((fn, _), _) -> fn) (Obs.Profile.sites prof))
  in
  check bool "several functions attributed" true (List.length fns > 1)

(* the merged parallel profile obeys the same invariant *)
let test_attribution_parallel () =
  let p = Option.get (Programs.find "wc") in
  let m = compile_program p in
  let r = run_profiled ~searcher:(`Parallel 2) ~input_size:3 m in
  check int "two workers" 2 r.Engine.jobs;
  assert_attribution_matches "wc@parallel2" r

(* profiling off: no collector is allocated or returned *)
let test_profile_off_is_none () =
  let p = Option.get (Programs.find "wc") in
  let m = compile_program p in
  let r =
    Engine.run
      ~config:{ Engine.default_config with input_size = 2; timeout = 30.0 }
      m
  in
  check bool "no profile by default" true (r.Engine.profile = None)

(* ------------- report: shape, golden keys, determinism ------------- *)

let wc_report () =
  let p = Option.get (Programs.find "wc") in
  Profile.profile ~program:"wc" ~level:Costmodel.overify ~input_size:3
    ~timeout:30.0 p.Programs.source

(* the JSON document's key skeleton, in order — the machine-readable
   contract of `overify profile --json` *)
let test_json_shape () =
  let json = Profile.to_json ~times:false (wc_report ()) in
  let keys =
    [
      "{";
      "\"program\": \"wc\"";
      "\"level\": \"-OVERIFY\"";
      "\"input_size\": 3";
      "\"totals\": {\"paths\":";
      "\"instructions\":";
      "\"forks\":";
      "\"queries\":";
      "\"cache_hits\":";
      "\"solver_time_ms\":";
      "\"complete\": true";
      "\"degradations\": [";
      "\"functions\": [";
      "\"fn\": \"main\"";
      "\"blocks\": [";
      "\"passes\": [";
      "\"pass\": \"inline\"";
      "\"applications\":";
      "\"size_delta\":";
      "}";
    ]
  in
  let rec walk pos = function
    | [] -> ()
    | k :: rest ->
        let found = ref None in
        let nk = String.length k in
        (try
           for i = pos to String.length json - nk do
             if String.sub json i nk = k then begin
               found := Some i;
               raise Exit
             end
           done
         with Exit -> ());
        (match !found with
        | Some i -> walk (i + nk) rest
        | None ->
            Alcotest.failf "JSON shape: key %s missing (after position %d) in:\n%s"
              k pos json)
  in
  walk 0 keys;
  (* times:false excludes the non-deterministic parts *)
  check bool "no latency histogram" false (contains json "query_latency");
  check bool "times zeroed" false (contains json "\"time_ms\": 0.001");
  check bool "solver times zeroed" true
    (contains json "\"solver_time_ms\": 0.000")

(* a degraded (budget-exhausted) run's `overify verify --json` document:
   the structured degradations block is present, and the key skeleton has
   a stable order (goldenable with ~deterministic, which zeroes times) *)
let test_degraded_verify_json_shape () =
  let p = Option.get (Programs.find "wc") in
  let m = compile_program p in
  let r =
    Engine.run
      ~config:
        { Engine.default_config with input_size = 3; timeout = 30.0;
          max_paths = 2 }
      m
  in
  check bool "budget run is degraded" false r.Engine.complete;
  let json = Engine.result_to_json ~deterministic:true r in
  let keys =
    [
      "{";
      "\"paths\": 2";
      "\"instructions\":";
      "\"forks\":";
      "\"queries\":";
      "\"cache_hits\":";
      "\"time_ms\": 0.0";
      "\"solver_time_ms\": 0.0";
      "\"blocks_covered\":";
      "\"blocks_total\":";
      "\"jobs\": 1";
      "\"complete\": false";
      "\"resumed\": false";
      "\"degradations\": [{\"kind\": \"path_budget\", \"where\": ";
      "\"paths\":";
      "\"faults_injected\": []";
      "\"bugs\": [";
      "}";
    ]
  in
  let rec walk pos = function
    | [] -> ()
    | k :: rest -> (
        let found = ref None in
        let nk = String.length k in
        (try
           for i = pos to String.length json - nk do
             if String.sub json i nk = k then begin
               found := Some i;
               raise Exit
             end
           done
         with Exit -> ());
        match !found with
        | Some i -> walk (i + nk) rest
        | None ->
            Alcotest.failf
              "verify JSON shape: key %s missing (after position %d) in:\n%s"
              k pos json)
  in
  walk 0 keys;
  (* and byte-stable across runs *)
  let r2 =
    Engine.run
      ~config:
        { Engine.default_config with input_size = 3; timeout = 30.0;
          max_paths = 2 }
      m
  in
  check string "deterministic document" json
    (Engine.result_to_json ~deterministic:true r2)

(* two independent profile runs produce byte-identical deterministic
   reports (timestamps excluded via times:false) *)
let test_json_deterministic () =
  let j1 = Profile.to_json ~times:false (wc_report ()) in
  let j2 = Profile.to_json ~times:false (wc_report ()) in
  check string "independent runs agree byte-for-byte" j1 j2

(* the human-readable table agrees with the engine totals it prints *)
let test_table_renders () =
  let t = wc_report () in
  let buf = Filename.temp_file "overify_profile" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove buf) @@ fun () ->
  Out_channel.with_open_text buf (fun oc -> Profile.print ~out:oc t);
  let s = In_channel.with_open_text buf In_channel.input_all in
  check bool "has header" true (contains s "verification profile: wc");
  check bool "has function column" true (contains s "function");
  check bool "has pass table" true (contains s "compile profile");
  check bool "names a function" true (contains s "main")

(* ------------- trace sink ------------- *)

let test_trace_capture () =
  Obs.Trace.clear ();
  Obs.Trace.start ();
  Fun.protect ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.clear ())
  @@ fun () ->
  let p = Option.get (Programs.find "wc") in
  let m = compile_program p in
  ignore (run_profiled ~input_size:2 m);
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  check bool "captured events" true (List.length evs > 0);
  check bool "has engine span" true
    (List.exists (fun e -> e.Obs.Trace.ev_name = "engine.run") evs);
  check bool "has solver spans" true
    (List.exists (fun e -> e.Obs.Trace.ev_cat = "solver") evs);
  let json = Obs.Trace.to_json () in
  check bool "chrome envelope" true (contains json "\"traceEvents\"");
  check bool "complete events" true (contains json "\"ph\": \"X\"")

let test_trace_disabled_by_default () =
  check bool "trace off" false (Obs.Trace.enabled ());
  Obs.Trace.emit ~name:"ignored" ~ts:0.0 ~dur:1.0 ();
  check int "no events recorded when off" 0 (List.length (Obs.Trace.events ()))

(* ------------- spans and the flight ring ------------- *)

let test_span_nesting_manual () =
  let open Obs.Flight in
  Obs.Flight.clear ();
  let root = Obs.Span.start ~trace:"t-nest" "root" in
  let child = Obs.Span.start ~parent:root "child" in
  let grandchild = Obs.Span.start ~parent:child "grandchild" in
  Obs.Span.finish grandchild;
  Obs.Span.finish child ~counters:[ ("k", 1.0) ];
  Obs.Span.finish root;
  let rs =
    List.filter (fun r -> r.fr_trace = "t-nest") (Obs.Flight.records ())
  in
  check int "three records" 3 (List.length rs);
  let find l = List.find (fun r -> r.fr_label = l) rs in
  let r = find "root" and c = find "child" and g = find "grandchild" in
  check int "child's parent is root" r.fr_id c.fr_parent;
  check int "grandchild's parent is child" c.fr_id g.fr_parent;
  check int "root has no parent" (-1) r.fr_parent;
  let inside inner outer =
    inner.fr_ts >= outer.fr_ts -. 1e-6
    && inner.fr_ts +. inner.fr_dur <= outer.fr_ts +. outer.fr_dur +. 1e-6
  in
  check bool "child interval within root" true (inside c r);
  check bool "grandchild interval within child" true (inside g c);
  check bool "finish counters kept" true (List.mem_assoc "k" c.fr_counters)

let engine_span_run ~trace () =
  let p = Option.get (Programs.find "wc") in
  let m = compile_program p in
  let root = Obs.Span.start ~trace "request.verify" in
  let r =
    Engine.run
      ~config:
        {
          Engine.default_config with
          input_size = 2;
          timeout = 30.0;
          span = Some root;
        }
      m
  in
  Obs.Span.finish root;
  r

(* the attribution invariant, per-span edition: worker-span counters sum
   to the run's totals, and the engine.run span carries those totals *)
let test_span_sums_match_engine () =
  let open Obs.Flight in
  Obs.Flight.clear ();
  let r = engine_span_run ~trace:"t-sums" () in
  let rs =
    List.filter (fun x -> x.fr_trace = "t-sums") (Obs.Flight.records ())
  in
  let prefixed pre l =
    String.length l >= String.length pre && String.sub l 0 (String.length pre) = pre
  in
  let workers =
    List.filter
      (fun x -> x.fr_kind = "span" && prefixed "symex.worker" x.fr_label)
      rs
  in
  check bool "worker spans present" true (workers <> []);
  let sum name =
    List.fold_left
      (fun acc w ->
        acc +. Option.value ~default:0.0 (List.assoc_opt name w.fr_counters))
      0.0 workers
  in
  check int "instructions sum to total" r.Engine.instructions
    (int_of_float (sum "instructions"));
  check int "forks sum to total" r.Engine.forks (int_of_float (sum "forks"));
  check int "queries sum to total" r.Engine.queries
    (int_of_float (sum "queries"));
  check int "cache hits sum to total" r.Engine.cache_hits
    (int_of_float (sum "cache_hits"));
  check bool "solver time sums to total" true
    (abs_float (sum "solver_time" -. r.Engine.solver_time)
    <= 1e-6 +. (1e-9 *. float_of_int r.Engine.queries));
  let eng = List.find (fun x -> x.fr_label = "engine.run") rs in
  check int "engine span paths" r.Engine.paths
    (int_of_float (List.assoc "paths" eng.fr_counters));
  check int "engine span instructions" r.Engine.instructions
    (int_of_float (List.assoc "instructions" eng.fr_counters));
  (* interval nesting holds across the whole recorded tree *)
  let spans = List.filter (fun x -> x.fr_kind = "span") rs in
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.fr_id s) spans;
  List.iter
    (fun s ->
      if s.fr_parent >= 0 then
        match Hashtbl.find_opt by_id s.fr_parent with
        | None -> ()
        | Some p ->
            check bool
              (Printf.sprintf "%s within %s" s.fr_label p.fr_label)
              true
              (s.fr_ts >= p.fr_ts -. 1e-6
              && s.fr_ts +. s.fr_dur <= p.fr_ts +. p.fr_dur +. 1e-6))
    spans

let test_flight_ring_cap () =
  let open Obs.Flight in
  Obs.Flight.clear ();
  Obs.Flight.set_cap 8;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.set_cap Obs.Flight.default_cap;
      Obs.Flight.clear ())
  @@ fun () ->
  for i = 1 to 20 do
    Obs.Span.event ~trace:"t-cap" (Printf.sprintf "e%d" i)
  done;
  let rs = Obs.Flight.records () in
  check int "ring capped" 8 (List.length rs);
  check int "evictions counted" 12 (Obs.Flight.dropped ());
  check string "newest record kept" "e20" (List.nth rs 7).fr_label;
  check string "oldest surviving record" "e13" (List.hd rs).fr_label

(* two identical runs leave the same record sequence once timestamps,
   span ids and wall-clock counters are scrubbed *)
let scrubbed trace =
  let open Obs.Flight in
  List.map
    (fun r ->
      ( r.fr_kind,
        r.fr_label,
        List.filter (fun (k, _) -> k <> "solver_time") r.fr_counters,
        r.fr_args ))
    (List.filter (fun r -> r.fr_trace = trace) (Obs.Flight.records ()))

let test_two_run_trace_deterministic () =
  Obs.Flight.clear ();
  ignore (engine_span_run ~trace:"t-det1" ());
  let a = scrubbed "t-det1" in
  Obs.Flight.clear ();
  ignore (engine_span_run ~trace:"t-det2" ());
  let b = scrubbed "t-det2" in
  check bool "non-trivial trace" true (List.length a > 2);
  check int "same record count" (List.length a) (List.length b);
  check bool "identical modulo timestamps/ids" true (a = b)

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "observe/sum/max/mean" `Quick test_hist_observe;
          Alcotest.test_case "bucket bounds monotonic" `Quick
            test_hist_buckets_monotonic;
          Alcotest.test_case "percentiles" `Quick test_hist_percentile;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters/timers/labels" `Quick test_registry;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_registry_disabled_noop;
        ] );
      ( "pass",
        [ Alcotest.test_case "record and rollup" `Quick test_pass_rollup ] );
      ( "profile collector",
        [ Alcotest.test_case "sites, memo, merge, totals" `Quick
            test_profile_sites ] );
      ( "attribution",
        [
          Alcotest.test_case "corpus sums to totals" `Slow
            test_attribution_corpus;
          Alcotest.test_case "multi-function (wc@O0)" `Quick
            test_attribution_multi_function;
          Alcotest.test_case "parallel merged profile" `Quick
            test_attribution_parallel;
          Alcotest.test_case "off by default" `Quick test_profile_off_is_none;
        ] );
      ( "report",
        [
          Alcotest.test_case "json shape (golden keys)" `Quick test_json_shape;
          Alcotest.test_case "degraded verify json (golden keys)" `Quick
            test_degraded_verify_json_shape;
          Alcotest.test_case "deterministic across runs" `Quick
            test_json_deterministic;
          Alcotest.test_case "table renders" `Quick test_table_renders;
        ] );
      ( "trace",
        [
          Alcotest.test_case "captures engine/solver spans" `Quick
            test_trace_capture;
          Alcotest.test_case "disabled by default" `Quick
            test_trace_disabled_by_default;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and intervals" `Quick
            test_span_nesting_manual;
          Alcotest.test_case "per-span sums equal engine totals" `Quick
            test_span_sums_match_engine;
          Alcotest.test_case "flight ring caps and counts drops" `Quick
            test_flight_ring_cap;
          Alcotest.test_case "two runs trace identically (scrubbed)" `Quick
            test_two_run_trace_deterministic;
        ] );
    ]
