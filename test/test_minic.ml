(** Frontend tests: lexer, parser, type checker, and lowering — mostly
    end-to-end, by compiling small programs and interpreting them at -O0
    (the identity pipeline), which checks the whole frontend chain. *)

module I = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Lexer = Overify_minic.Lexer
module Token = Overify_minic.Token
module Parser = Overify_minic.Parser

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* ------------- helpers ------------- *)

(** Compile a source, verify the memory-form invariants, interpret. *)
let run ?(input = "") src : Interp.result =
  let m = Frontend.compile_source src in
  List.iter (Overify_ir.Verify.check_exn ~memform:true) m.I.funcs;
  Interp.run m ~input

let exit_of ?input src =
  let r = run ?input src in
  (match r.Interp.trap with
  | None -> ()
  | Some t -> Alcotest.failf "unexpected trap: %s" (Interp.string_of_trap t));
  Int64.to_int r.Interp.exit_code

let output_of ?input src = (run ?input src).Interp.output

let expect_compile_error src =
  match Frontend.compile_source src with
  | exception Frontend.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a compile error"

(* ------------- lexer ------------- *)

let toks src = List.map (fun (l : Lexer.lexed) -> l.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basic () =
  check int "count" 6 (List.length (toks "int x = 42;"));
  (match toks "int x = 42;" with
  | [ Token.KW_INT; Token.IDENT "x"; Token.ASSIGN; Token.INT_LIT 42L;
      Token.SEMI; Token.EOF ] -> ()
  | _ -> Alcotest.fail "wrong tokens")

let test_lexer_operators () =
  match toks "a <<= b >>= c << >> <= >= == != && || ++ --" with
  | [ Token.IDENT "a"; Token.LSHIFT_ASSIGN; Token.IDENT "b";
      Token.RSHIFT_ASSIGN; Token.IDENT "c"; Token.LSHIFT; Token.RSHIFT;
      Token.LE; Token.GE; Token.EQEQ; Token.NEQ; Token.AMPAMP;
      Token.PIPEPIPE; Token.PLUSPLUS; Token.MINUSMINUS; Token.EOF ] -> ()
  | _ -> Alcotest.fail "operator tokens wrong"

let test_lexer_literals () =
  (match toks "0x10 10u 10UL '\\n' '\\x41' 'a'" with
  | [ Token.INT_LIT 16L; Token.INT_LIT 10L; Token.LONG_LIT 10L;
      Token.CHAR_LIT '\n'; Token.CHAR_LIT 'A'; Token.CHAR_LIT 'a';
      Token.EOF ] -> ()
  | _ -> Alcotest.fail "literal tokens wrong");
  match toks {|"a\tb\"c"|} with
  | [ Token.STR_LIT "a\tb\"c"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "string literal wrong"

let test_lexer_comments () =
  check int "comments skipped" 2
    (List.length (toks "// line\n/* block\n * more */ x"))

let test_lexer_errors () =
  (match Lexer.tokenize "\"unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error");
  match Lexer.tokenize "`" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error on backquote"

(* ------------- parser ------------- *)

let test_parser_errors () =
  let bad = [ "int main(void) { return 1 }"; "int f("; "int = 3;";
              "int main(void) { if }" ] in
  List.iter
    (fun src ->
      match Parser.parse_program src with
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" src)
    bad

let test_parser_top_level () =
  let prog =
    Parser.parse_program
      "int g = 3; int f(int x); int f(int x) { return x; } char s[4];"
  in
  check int "4 top-level items" 4 (List.length prog)

(* ------------- expression semantics (via -O0 interpretation) ------------- *)

let expr_test name expr expected =
  Alcotest.test_case name `Quick (fun () ->
      check int name expected
        (exit_of (Printf.sprintf "int main(void) { return %s; }" expr)))

let expr_tests =
  [
    expr_test "precedence mul over add" "2 + 3 * 4" 14;
    expr_test "parens" "(2 + 3) * 4" 20;
    expr_test "unary minus" "-5 + 8" 3;
    expr_test "division truncates" "7 / 2" 3;
    expr_test "negative division" "-7 / 2" (-3);
    expr_test "modulo" "17 % 5" 2;
    expr_test "negative modulo" "-17 % 5" (-2);
    expr_test "shift" "1 << 6" 64;
    expr_test "arith shift right" "-8 >> 1" (-4);
    expr_test "bitwise" "(12 & 10) | (1 ^ 3)" 10;
    expr_test "bitnot" "~0 + 1" 0;
    expr_test "comparison chain" "(1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5)" 2;
    expr_test "equality" "(1 == 1) + (1 != 1)" 1;
    expr_test "logical and" "1 && 2" 1;
    expr_test "logical or" "0 || 3" 1;
    expr_test "logical not" "!0 + !7" 1;
    expr_test "ternary" "1 ? 10 : 20" 10;
    expr_test "nested ternary" "0 ? 1 : 1 ? 2 : 3" 2;
    expr_test "comma" "(1, 2, 3)" 3;
    expr_test "sizeof int" "(int)sizeof(int)" 4;
    expr_test "sizeof ptr" "(int)sizeof(char*)" 8;
    expr_test "char literal" "'A'" 65;
    expr_test "hex literal" "0xff" 255;
    expr_test "unsigned division" "(int)((unsigned int)-2 / 2u)" 0x7FFFFFFF;
    expr_test "unsigned compare" "(unsigned int)-1 > 1u" 1;
    expr_test "char wraps" "(int)(char)200" (-56);
    expr_test "uchar no wrap" "(int)(unsigned char)200" 200;
    expr_test "short truncation" "(int)(short)70000" 4464;
    expr_test "long arithmetic" "(int)(2147483647L + 1L > 0L)" 1;
  ]

(* short-circuit side effects *)
let test_short_circuit_effects () =
  let src = {|
int calls = 0;
int bump(int v) { calls++; return v; }
int main(void) {
  int a = bump(0) && bump(1);
  int b = bump(1) || bump(1);
  return calls * 10 + a + b;
}
|} in
  check int "calls=2, a=0, b=1" 21 (exit_of src)

let test_assignment_ops () =
  let src = {|
int main(void) {
  int x = 10;
  x += 5; x -= 3; x *= 2; x /= 3; x %= 5;
  int y = 6;
  y <<= 2; y >>= 1; y |= 1; y &= 7; y ^= 2;
  return x * 100 + y;
}
|} in
  check int "compound ops" 307 (exit_of src)

let test_incdec () =
  let src = {|
int main(void) {
  int i = 5;
  int a = i++;
  int b = ++i;
  int c = i--;
  int d = --i;
  return a * 1000 + b * 100 + c * 10 + d;
}
|} in
  check int "5,7,7,5" 5775 (exit_of src)

let test_ptr_incdec () =
  let src = {|
int main(void) {
  int arr[4] = {10, 20, 30, 40};
  int *q = arr;
  q++;
  int a = *q;
  q += 2;
  int b = *q;
  q--;
  return a + b + *q;
}
|} in
  check int "20+40+30" 90 (exit_of src)

(* ------------- statements ------------- *)

let test_control_flow () =
  let src = {|
int main(void) {
  int sum = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 8) break;
    sum += i;
  }
  int j = 0;
  while (j < 5) j++;
  int k = 0;
  do { k++; } while (k < 3);
  return sum * 100 + j * 10 + k;
}
|} in
  check int "loops" 2553 (exit_of src)

let test_nested_loops_break () =
  let src = {|
int main(void) {
  int hits = 0;
  for (int i = 0; i < 4; i++) {
    for (int j = 0; j < 4; j++) {
      if (j > i) break;
      hits++;
    }
  }
  return hits;
}
|} in
  check int "1+2+3+4" 10 (exit_of src)

let test_scoping () =
  let src = {|
int x = 100;
int main(void) {
  int x = 1;
  { int x = 2; { int x = 3; } x = x + 10; }
  return x;
}
|} in
  check int "shadowing" 1 (exit_of src)

let test_global_access () =
  let src = {|
int counter = 5;
int table[4] = {1, 2, 3};
int main(void) {
  counter += table[1];
  return counter * 10 + table[3];
}
|} in
  check int "globals" 70 (exit_of src)

let test_dead_code_after_return () =
  check int "code after return ignored" 1
    (exit_of "int main(void) { return 1; return 2; }")

(* ------------- functions ------------- *)

let test_recursion () =
  let src = {|
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fact(5) + fib(10); }
|} in
  check int "120 + 55" 175 (exit_of src)

let test_mutual_recursion () =
  let src = {|
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main(void) { return is_even(10) * 10 + is_odd(7); }
|} in
  check int "mutual" 11 (exit_of src)

let test_void_function () =
  let src = {|
int acc = 0;
void add(int v) { acc += v; if (acc > 100) return; acc += 1; }
int main(void) { add(3); add(200); return acc; }
|} in
  check int "void with early return" 204 (exit_of src)

let test_params_are_copies () =
  let src = {|
int clobber(int x) { x = 999; return x; }
int main(void) { int v = 7; clobber(v); return v; }
|} in
  check int "by value" 7 (exit_of src)

(* ------------- pointers, arrays, strings ------------- *)

let test_pointer_write_through () =
  let src = {|
void set(int *q, int v) { *q = v; }
int main(void) { int x = 1; set(&x, 42); return x; }
|} in
  check int "write through pointer" 42 (exit_of src)

let test_array_2d () =
  let src = {|
int main(void) {
  int g[3][4];
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      g[i][j] = i * 10 + j;
  return g[2][3] + g[1][0];
}
|} in
  check int "2d indexing" 33 (exit_of src)

let test_string_literal () =
  let src = {|
int main(void) {
  const char *s = "hi\n";
  int sum = 0;
  for (int i = 0; s[i]; i++) sum += s[i];
  return sum;
}
|} in
  check int "h+i+newline" 219 (exit_of src)

let test_local_array_init () =
  let src = {|
int main(void) {
  char word[8] = "abc";
  int n = 0;
  while (word[n]) n++;
  return n * 100 + word[5];
}
|} in
  check int "string init" 300 (exit_of src)

let test_null_checks () =
  let src = {|
int main(void) {
  int *q = 0;
  if (q == 0) return 1;
  return 0;
}
|} in
  check int "null compare" 1 (exit_of src)

(* ------------- intrinsics & output ------------- *)

let test_io () =
  let src = {|
int main(void) {
  int n = __input_size();
  for (int i = n - 1; i >= 0; i--) __output(__input(i));
  return n;
}
|} in
  let r = run ~input:"abc" src in
  check string "reversed" "cba" r.Interp.output;
  check int "exit" 3 (Int64.to_int r.Interp.exit_code)

let test_output_example () =
  check string "chars out" "ok"
    (output_of "int main(void) { __output('o'); __output('k'); return 0; }")

(* ------------- semantic errors ------------- *)

let sema_error_tests =
  let cases =
    [
      ("unknown variable", "int main(void) { return nope; }");
      ("unknown function", "int main(void) { return f(1); }");
      ("arity mismatch", "int f(int a) { return a; } int main(void) { return f(); }");
      ("void variable", "int main(void) { void v; return 0; }");
      ("deref int", "int main(void) { int x = 1; return *x; }");
      ("assign to rvalue", "int main(void) { 3 = 4; return 0; }");
      ("redeclaration", "int main(void) { int x = 1; int x = 2; return x; }");
      ("return value in void fn", "void f(void) { return 3; } int main(void) { return 0; }");
      ("missing return value", "int main(void) { return; }");
      ("pointer difference", "int main(void) { char a[2]; char *p = a; char *q = a; return (int)(p - q); }");
      ("conflicting redefinition", "int f(void) { return 1; } int f(void) { return 2; } int main(void) { return 0; }");
    ]
  in
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Quick (fun () -> expect_compile_error src))
    cases

(* ------------- memory-form invariant (property) ------------- *)

(** In memory form, registers used outside their defining block must be
    allocas (or parameters, used only in the entry). *)
let memform_invariant (fn : I.func) =
  let alloca_defs = Hashtbl.create 16 in
  let def_block = Hashtbl.create 64 in
  List.iter
    (fun (b : I.block) ->
      List.iter
        (fun i ->
          (match i with
          | I.Alloca (d, _, _) -> Hashtbl.replace alloca_defs d ()
          | _ -> ());
          match I.def_of_inst i with
          | Some d -> Hashtbl.replace def_block d b.I.bid
          | None -> ())
        b.I.insts)
    fn.I.blocks;
  let params = List.map fst fn.I.params in
  List.for_all
    (fun (b : I.block) ->
      let check_v v =
        match v with
        | I.Reg r ->
            List.mem r params
            || Hashtbl.mem alloca_defs r
            || Hashtbl.find_opt def_block r = Some b.I.bid
        | _ -> true
      in
      List.for_all
        (fun i -> List.for_all check_v (I.uses_of_inst i))
        b.I.insts
      && List.for_all check_v (I.uses_of_term b.I.term))
    fn.I.blocks

(* ------------- located lowering errors ------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(** Lowering-stage rejections must carry a source location ("at line:col"),
    not a bare [Failure]. *)
let expect_located_error ~substr src =
  match Frontend.compile_source src with
  | exception Frontend.Compile_error msg ->
      if not (contains msg substr) then
        Alcotest.failf "error %S does not mention %S" msg substr;
      if not (contains msg " at ") then
        Alcotest.failf "error %S carries no source location" msg
  | _ -> Alcotest.fail "expected a compile error"

let test_lowering_errors_located () =
  expect_located_error ~substr:"break outside loop"
    "int main() { break; return 0; }";
  expect_located_error ~substr:"continue outside loop"
    "int main() { continue; return 0; }";
  (* ill-shaped initializers: sema rejects these first (also with a
     location); the lowering-side checks behind it are defensive *)
  expect_located_error ~substr:"int[3]"
    "int main() { int a[3] = 5; return 0; }";
  expect_located_error ~substr:""
    "int main() { int x = {1, 2}; return 0; }"

let test_memform_invariant_corpus () =
  List.iter
    (fun (p : Overify_corpus.Programs.t) ->
      let m =
        Frontend.compile_sources
          [ Overify_vclib.Vclib.source Overify_vclib.Vclib.Exec;
            p.Overify_corpus.Programs.source ]
      in
      List.iter
        (fun fn ->
          if not (memform_invariant fn) then
            Alcotest.failf "memory-form invariant broken in %s of %s"
              fn.I.fname p.Overify_corpus.Programs.name)
        m.I.funcs)
    Overify_corpus.Programs.programs

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "rejects bad input" `Quick test_parser_errors;
          Alcotest.test_case "top-level items" `Quick test_parser_top_level;
        ] );
      ("expressions", expr_tests);
      ( "side effects",
        [
          Alcotest.test_case "short-circuit" `Quick test_short_circuit_effects;
          Alcotest.test_case "compound assignment" `Quick test_assignment_ops;
          Alcotest.test_case "inc/dec" `Quick test_incdec;
          Alcotest.test_case "pointer inc/dec" `Quick test_ptr_incdec;
        ] );
      ( "statements",
        [
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "nested break" `Quick test_nested_loops_break;
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "globals" `Quick test_global_access;
          Alcotest.test_case "dead code after return" `Quick
            test_dead_code_after_return;
        ] );
      ( "functions",
        [
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "void + early return" `Quick test_void_function;
          Alcotest.test_case "params by value" `Quick test_params_are_copies;
        ] );
      ( "memory",
        [
          Alcotest.test_case "pointer write" `Quick test_pointer_write_through;
          Alcotest.test_case "2d arrays" `Quick test_array_2d;
          Alcotest.test_case "string literals" `Quick test_string_literal;
          Alcotest.test_case "local array init" `Quick test_local_array_init;
          Alcotest.test_case "null compare" `Quick test_null_checks;
        ] );
      ( "io",
        [
          Alcotest.test_case "input/output" `Quick test_io;
          Alcotest.test_case "output" `Quick test_output_example;
        ] );
      ("sema errors", sema_error_tests);
      ( "lowering errors",
        [
          Alcotest.test_case "located" `Quick test_lowering_errors_located;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "memory form over corpus" `Quick
            test_memform_invariant_corpus;
        ] );
    ]
