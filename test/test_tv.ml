(** Translation-validation tests: hand-written equivalent pairs prove, a
    deliberately miscompiled pair yields a counterexample with a concrete
    witness, pre-version traps are excused, budget exhaustion falls back to
    differential interpretation with an explicit reason, and the pass
    bisector names an injected bad pass exactly. *)

module Ir = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Tv = Overify_tv.Tv
module Product = Overify_tv.Product

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(** Compile one source at a level with no libc: small, self-contained
    modules whose only function is [main]. *)
let compile ?(level = Costmodel.o0) src =
  (Pipeline.optimize level (Frontend.compile_source src)).Pipeline.modul

(** A small budget keeps each check well under a second. *)
let budget =
  {
    Tv.default_budget with
    Tv.input_size = 2;
    max_paths = 200;
    max_insts = 500_000;
    timeout = 2.0;
    fallback_runs = 8;
  }

let verdict_of pre post = (Tv.check_modules ~budget pre post).Tv.verdict

let is_proved = function Tv.Proved _ -> true | _ -> false

(* ------------- equivalent pairs prove ------------- *)

let test_proved_identical_syntactic () =
  let m = compile "int main(void) { return __input(0); }" in
  match verdict_of m m with
  | Tv.Proved Tv.Syntactic -> ()
  | v -> Alcotest.failf "expected syntactic proof, got %s" (Tv.string_of_verdict v)

let test_proved_strength_reduction () =
  (* x + x vs 2 * x : different IR, same function *)
  let pre =
    compile "int main(void) { int x = __input(0); __output(x); return x + x; }"
  in
  let post =
    compile "int main(void) { int x = __input(0); __output(x); return 2 * x; }"
  in
  match verdict_of pre post with
  | Tv.Proved Tv.Exhaustive -> ()
  | v -> Alcotest.failf "expected exhaustive proof, got %s" (Tv.string_of_verdict v)

let test_proved_real_pipeline () =
  (* -O3 output of a real program against its -O0 version *)
  let src =
    {|
int main(void) {
  int i = 0;
  int n = __input(0) & 7;
  int s = 0;
  while (i < n) { s = s + i * i; i = i + 1; }
  __output(s);
  return s & 127;
}
|}
  in
  let pre = compile ~level:Costmodel.o0 src in
  let post = compile ~level:Costmodel.o3 src in
  let o = Tv.check_modules ~budget pre post in
  check bool
    ("whole -O3 compilation proves: " ^ Tv.string_of_verdict o.Tv.verdict)
    true (is_proved o.Tv.verdict)

(* ------------- miscompilations are caught ------------- *)

let test_catches_dropped_output () =
  (* a "pass" that drops a store to the output stream *)
  let pre =
    compile "int main(void) { int x = __input(0); __output(x); return x; }"
  in
  let post = compile "int main(void) { int x = __input(0); return x; }" in
  match verdict_of pre post with
  | Tv.Counterexample w ->
      check string "detail" "output trace differs" w.Tv.detail
  | v -> Alcotest.failf "expected counterexample, got %s" (Tv.string_of_verdict v)

let test_catches_wrong_constant () =
  let pre = compile "int main(void) { return __input(0) + 1; }" in
  let post = compile "int main(void) { return __input(0) + 2; }" in
  match verdict_of pre post with
  | Tv.Counterexample w ->
      (* the witness replays through the interpreter with both behaviors *)
      check bool "exit codes differ" true
        (w.Tv.pre_behavior.Tv.exit_code <> w.Tv.post_behavior.Tv.exit_code)
  | v -> Alcotest.failf "expected counterexample, got %s" (Tv.string_of_verdict v)

let test_catches_introduced_trap () =
  (* post drops the guard, introducing a division by zero *)
  let pre =
    compile
      "int main(void) { int x = __input(0); if (x) return 10 / x; return 0; }"
  in
  let post = compile "int main(void) { int x = __input(0); return 10 / x; }" in
  match verdict_of pre post with
  | Tv.Counterexample w ->
      check bool
        ("detail names the introduced trap: " ^ w.Tv.detail)
        true
        (String.length w.Tv.detail >= 15
        && String.sub w.Tv.detail 0 15 = "introduced trap")
  | v -> Alcotest.failf "expected counterexample, got %s" (Tv.string_of_verdict v)

(* ------------- asymmetric refinement: pre-traps are excused ------------- *)

let test_excused_pre_trap () =
  (* both versions divide by a possibly-zero input: paths where the pre
     version traps end before the post version runs, so the pair still
     proves — with the excused paths counted *)
  let pre = compile "int main(void) { return 10 / __input(0); }" in
  let post = compile "int main(void) { int y = 0; return 10 / __input(0) + y; }" in
  let o = Tv.check_modules ~budget pre post in
  check bool
    ("proves despite pre-trap: " ^ Tv.string_of_verdict o.Tv.verdict)
    true (is_proved o.Tv.verdict);
  check bool "excused pre-traps counted" true (o.Tv.excused_pre_traps > 0)

(* ------------- budget exhaustion ------------- *)

let test_inconclusive_budget_exhausted () =
  let src_pre =
    "int main(void) { int i = 0; int s = 0; while (i < 5000) { s = s + i; i \
     = i + 1; } return s & 127; }"
  in
  let src_post =
    "int main(void) { int i = 0; int s = 0; while (i < 5000) { s = i + s; i \
     = i + 1; } return s & 127; }"
  in
  let pre = compile src_pre in
  let post = compile src_post in
  let tiny = { budget with Tv.max_insts = 2_000; timeout = 1.0 } in
  let o = Tv.check_modules ~budget:tiny pre post in
  match o.Tv.verdict with
  | Tv.Inconclusive reason ->
      let has_needle hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check bool
        ("reason says the budget ran out: " ^ reason)
        true
        (has_needle reason "budget exhausted");
      check bool "differential fallback ran" true (o.Tv.fallback_runs > 0)
  | v -> Alcotest.failf "expected inconclusive, got %s" (Tv.string_of_verdict v)

(* ------------- pass bisection on an injected miscompilation ------------- *)

(** Flip the first integer [Add] into a [Sub] — a classic silent
    miscompilation that still passes the IR verifier. *)
let flip_first_add (fn : Ir.func) : Ir.func =
  let flipped = ref false in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        {
          b with
          Ir.insts =
            List.map
              (fun i ->
                match i with
                | Ir.Bin (d, Ir.Add, ty, a, v) when not !flipped ->
                    flipped := true;
                    Ir.Bin (d, Ir.Sub, ty, a, v)
                | i -> i)
              b.Ir.insts;
        })
      fn.Ir.blocks
  in
  { fn with Ir.blocks }

let test_bisector_names_sabotaged_pass () =
  let src = "int main(void) { int x = __input(0); return x + 3; }" in
  let m0 = Frontend.compile_source src in
  Fun.protect
    ~finally:(fun () -> Pipeline.sabotage := None)
    (fun () ->
      Pipeline.sabotage := Some ("constfold", flip_first_add);
      let (_, report) = Tv.validate ~budget Costmodel.o2 m0 in
      match Tv.first_offender report with
      | Some o -> check string "bisector blames the corrupted pass" "constfold" o.Tv.pass
      | None ->
          Alcotest.failf "injected miscompilation not detected; report: %s"
            (Tv.report_to_json report));
  (* and without sabotage the same compilation proves end to end *)
  let (_, clean) = Tv.validate ~budget Costmodel.o2 m0 in
  check int "clean compilation has no counterexamples" 0
    (List.length (Tv.counterexamples clean))

(* ------------- validated compilation of a corpus slice ------------- *)

let test_corpus_slice_all_levels () =
  let program =
    match Overify_corpus.Programs.find "echo" with
    | Some p -> p
    | None -> Alcotest.fail "corpus program echo missing"
  in
  List.iter
    (fun (cm : Costmodel.t) ->
      let m0 =
        Frontend.compile_sources
          [ Overify_vclib.Vclib.for_cost_model cm;
            program.Overify_corpus.Programs.source ]
      in
      let (_, report) = Tv.validate ~budget cm m0 in
      check int
        (Printf.sprintf "echo @ %s: no counterexamples" cm.Costmodel.name)
        0
        (List.length (Tv.counterexamples report));
      (* any inconclusive verdict must carry its budget-exhausted reason *)
      List.iter
        (fun (r : Tv.record) ->
          match r.Tv.outcome.Tv.verdict with
          | Tv.Inconclusive reason ->
              check bool "inconclusive has a reason" true (String.length reason > 0)
          | _ -> ())
        report.Tv.records)
    Costmodel.all

let test_report_json_shape () =
  let m0 =
    Frontend.compile_source
      "int main(void) { int x = __input(0); int y = x * 3; return y; }"
  in
  let (_, report) = Tv.validate ~budget Costmodel.o2 m0 in
  check bool "at least one pass application recorded" true
    (report.Tv.records <> []);
  let json = Tv.report_to_json report in
  let has_needle hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun k -> check bool ("json has key " ^ k) true (has_needle json k))
    [ {|"level"|}; {|"records"|}; {|"per_pass"|}; {|"verdict"|}; {|"queries"|} ]

let () =
  Alcotest.run "tv"
    [
      ( "proves",
        [
          Alcotest.test_case "identical modules (syntactic)" `Quick
            test_proved_identical_syntactic;
          Alcotest.test_case "strength reduction" `Quick
            test_proved_strength_reduction;
          Alcotest.test_case "whole -O3 pipeline" `Quick test_proved_real_pipeline;
        ] );
      ( "refutes",
        [
          Alcotest.test_case "dropped output" `Quick test_catches_dropped_output;
          Alcotest.test_case "wrong constant" `Quick test_catches_wrong_constant;
          Alcotest.test_case "introduced trap" `Quick test_catches_introduced_trap;
        ] );
      ( "trust-story",
        [
          Alcotest.test_case "pre-traps excused" `Quick test_excused_pre_trap;
          Alcotest.test_case "budget exhaustion is explicit" `Quick
            test_inconclusive_budget_exhausted;
        ] );
      ( "bisection",
        [
          Alcotest.test_case "sabotaged pass is named" `Quick
            test_bisector_names_sabotaged_pass;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "corpus slice, all levels" `Slow
            test_corpus_slice_all_levels;
          Alcotest.test_case "json report shape" `Quick test_report_json_shape;
        ] );
    ]
