(** Optimizer tests: per-pass unit tests, pipeline invariants, and the
    central QCheck property — every corpus program behaves identically at
    every optimization level on random inputs (differential testing against
    the -O0 oracle). *)

module I = Overify_ir.Ir
module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Stats = Overify_opt.Stats
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* paranoid mode (IR verification after every pass) comes from the
   OVERIFY_PARANOID environment variable, which test/dune sets for the whole
   suite; test_paranoid_profile_on below fails the run if that wiring is
   ever lost *)

let compile_at level src =
  (Pipeline.optimize level (Frontend.compile_source src)).Pipeline.modul

let compile_fn level src =
  I.find_func_exn (compile_at level src) "main"

let static_size m =
  List.fold_left (fun a f -> a + I.func_size f) 0 m.I.funcs

let count_insts pred (fn : I.func) =
  let n = ref 0 in
  I.iter_insts (fun _ i -> if pred i then incr n) fn;
  !n

let count_branches fn =
  List.length
    (List.filter
       (fun (b : I.block) ->
         match b.I.term with I.Cbr (_, t, e) -> t <> e | _ -> false)
       fn.I.blocks)

let run_all_levels ?(input = "") src =
  List.map
    (fun level ->
      let m = compile_at level src in
      List.iter (Overify_ir.Verify.check_exn) m.I.funcs;
      (level.Costmodel.name, Interp.run m ~input))
    Costmodel.all

let same_behaviour ?input src =
  match run_all_levels ?input src with
  | [] -> ()
  | (name0, r0) :: rest ->
      List.iter
        (fun (name, (r : Interp.result)) ->
          if
            r.Interp.exit_code <> r0.Interp.exit_code
            || r.Interp.output <> r0.Interp.output
          then
            Alcotest.failf "%s and %s disagree: exit %Ld/%Ld output %S/%S"
              name0 name r0.Interp.exit_code r.Interp.exit_code
              r0.Interp.output r.Interp.output)
        rest

(* ------------- constant folding ------------- *)

let test_constfold_folds () =
  let src = "int main(void) { int x = 2 + 3 * 4; return x - 14; }" in
  let fn = compile_fn Costmodel.o2 src in
  check int "everything folded away" 0
    (count_insts (function I.Bin _ -> true | _ -> false) fn)

let test_constfold_preserves_div_by_zero () =
  (* 1/0 must not be folded away into a constant: the trap is observable *)
  let src = "int main(void) { int z = 0; return 1 / z; }" in
  List.iter
    (fun level ->
      let m = compile_at level src in
      let r = Interp.run m ~input:"" in
      check bool
        (Printf.sprintf "%s keeps the trap" level.Costmodel.name)
        true
        (r.Interp.trap = Some Interp.Div_by_zero))
    Costmodel.all

let test_strength_reduction () =
  let src = "int main(void) { int n = __input_size(); return n * 8 + n / 1; }" in
  let fn = compile_fn Costmodel.o2 src in
  check int "mul by 8 became shift" 0
    (count_insts (function I.Bin (_, I.Mul, _, _, _) -> true | _ -> false) fn)

(* ------------- mem2reg ------------- *)

let test_mem2reg_promotes () =
  let src = {|
int main(void) {
  int a = 1;
  int b = 2;
  for (int i = 0; i < 3; i++) a += b;
  return a;
}
|} in
  let fn = compile_fn Costmodel.o2 src in
  check int "no allocas left" 0
    (count_insts (function I.Alloca _ -> true | _ -> false) fn)

(* regression: a do-while loop's induction variable must get a header phi *)
let test_mem2reg_do_while () =
  let src = {|
int main(void) {
  int col = 0;
  do { col++; } while (col % 4 != 0);
  return col;
}
|} in
  List.iter
    (fun level ->
      let r = Interp.run ~fuel:100_000 (compile_at level src) ~input:"" in
      check bool
        (Printf.sprintf "%s terminates" level.Costmodel.name)
        true (r.Interp.trap = None);
      check int
        (Printf.sprintf "%s returns 4" level.Costmodel.name)
        4
        (Int64.to_int r.Interp.exit_code))
    Costmodel.all

let test_mem2reg_respects_escapes () =
  (* a variable whose address escapes must not be promoted *)
  let src = {|
void set(int *q) { *q = 9; }
int main(void) { int x = 1; set(&x); return x; }
|} in
  same_behaviour src

(* ------------- SROA ------------- *)

let test_sroa_splits () =
  let src = {|
int main(void) {
  int pair[2];
  pair[0] = 3;
  pair[1] = 4;
  return pair[0] * 10 + pair[1];
}
|} in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize Costmodel.o2 m0 in
  check bool "sroa fired" true (r.Pipeline.stats.Stats.aggregates_split >= 1);
  let res = Interp.run r.Pipeline.modul ~input:"" in
  check int "34" 34 (Int64.to_int res.Interp.exit_code)

(* ------------- DCE ------------- *)

let test_dce_removes_dead_code () =
  let src = {|
int main(void) {
  int unused = 5 * 5;
  int dead_store;
  dead_store = unused + 1;
  return 2;
}
|} in
  let fn = compile_fn Costmodel.o2 src in
  check int "body reduced to ret" 0 (count_insts (fun _ -> true) fn)

(* ------------- if-conversion ------------- *)

let test_if_convert_removes_branches () =
  let src = {|
int main(void) {
  int c = __input(0);
  int r;
  if (c > 64) r = c - 64; else r = c;
  return r;
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check int "no conditional branches" 0 (count_branches fn);
  check bool "has a select" true
    (count_insts (function I.Select _ -> true | _ -> false) fn >= 1);
  same_behaviour ~input:"Z" src

let test_if_convert_flattens_shortcircuit () =
  let src = {|
int main(void) {
  int c = __input(0);
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check int "fully flattened" 0 (count_branches fn);
  List.iter (fun i -> same_behaviour ~input:(String.make 1 (Char.chr i)) src)
    [ 0; 64; 65; 90; 95; 97; 122; 200 ]

let test_if_convert_keeps_side_effects_guarded () =
  (* an arm with a call must NOT be speculated *)
  let src = {|
int main(void) {
  if (__input(0) == 'x') __output('!');
  return 0;
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check bool "branch survives" true (count_branches fn >= 1);
  same_behaviour ~input:"x" src;
  same_behaviour ~input:"y" src

let test_if_convert_respects_cpu_budget () =
  (* a big arm is speculated under -OVERIFY but not under -O3 *)
  let src = {|
int main(void) {
  int c = __input(0);
  int r = 0;
  if (c > 10) {
    r = c * 3 + (c << 2) - (c ^ 5) + (c & 3) + (c | 7) + c / 3
        + c * 5 + (c << 1) - (c ^ 9) + (c & 1);
  }
  return r;
}
|} in
  let ov = compile_fn Costmodel.overify src in
  let o3 = compile_fn Costmodel.o3 src in
  check bool "o3 keeps more branches" true
    (count_branches o3 >= count_branches ov)

(* ------------- if-conversion: direct IR-level safety tests ------------- *)

module Builder = Overify_ir.Builder
module If_convert = Overify_opt.If_convert
module Loop_unswitch = Overify_opt.Loop_unswitch

(** A hand-built SSA diamond: [x = __input(0); if (x > 0) y = <arm>; return
    phi(y, x)].  The arm instruction decides whether speculation is legal. *)
let build_diamond arm : I.func =
  let b = Builder.create ~name:"main" ~params:[] ~ret:I.I32 in
  let entry_bid = Builder.current b in
  let slot = Builder.entry_alloca b I.I32 1 in
  Builder.store b I.I32 (I.imm I.I32 7L) slot;
  let x = Option.get (Builder.call b I.I32 "__input" [ I.imm I.I32 0L ]) in
  let then_b = Builder.new_block b in
  let merge = Builder.new_block b in
  let cond = Builder.cmp b I.Sgt I.I32 x (I.imm I.I32 0L) in
  Builder.term b (I.Cbr (cond, then_b, merge));
  Builder.switch_to b then_b;
  let y =
    match arm with
    | `Add -> Builder.bin b I.Add I.I32 x (I.imm I.I32 1L)
    | `Div -> Builder.bin b I.Sdiv I.I32 (I.imm I.I32 100L) x
    | `Load -> Builder.load b I.I32 slot
  in
  Builder.term b (I.Br merge);
  Builder.switch_to b merge;
  let d = Builder.fresh b in
  Builder.add_inst b (I.Phi (d, I.I32, [ (then_b, y); (entry_bid, x) ]));
  Builder.term b (I.Ret (Some (I.Reg d)));
  Builder.finish b

let diamond_behaviours (fn : I.func) =
  let m = { I.globals = []; funcs = [ fn ] } in
  List.map
    (fun input ->
      let r = Interp.run m ~input in
      (r.Interp.exit_code, r.Interp.trap))
    [ "\000"; "\001"; "\005"; "\255" ]

let test_if_convert_ir_safe_arm_converts () =
  let fn = build_diamond `Add in
  let before = diamond_behaviours fn in
  let (fn', changed) = If_convert.run Costmodel.overify (Stats.create ()) fn in
  Overify_ir.Verify.check_exn fn';
  check bool "converted" true changed;
  check int "no conditional branches left" 0 (count_branches fn');
  check bool "select materialized" true
    (count_insts (function I.Select _ -> true | _ -> false) fn' >= 1);
  check bool "behaviour preserved" true (before = diamond_behaviours fn')

let test_if_convert_ir_division_arm_blocked () =
  (* speculating 100 / x would introduce a division-by-zero trap on the
     x = 0 path: the arm must stay guarded *)
  let fn = build_diamond `Div in
  let (fn', changed) = If_convert.run Costmodel.overify (Stats.create ()) fn in
  check bool "not converted" false changed;
  check bool "branch survives" true (count_branches fn' >= 1);
  let m = { I.globals = []; funcs = [ fn' ] } in
  check bool "x = 0 still takes the safe path" true
    ((Interp.run m ~input:"\000").Interp.trap = None)

let test_if_convert_ir_load_arm_blocked () =
  (* loads may fault and are not speculatable in this IR: the arm must stay
     guarded even though this particular load happens to be safe *)
  let fn = build_diamond `Load in
  let (fn', changed) = If_convert.run Costmodel.overify (Stats.create ()) fn in
  check bool "not converted" false changed;
  check bool "branch survives" true (count_branches fn' >= 1)

(* ------------- loop unswitching ------------- *)

let test_unswitch_fires_and_preserves () =
  let src = {|
int work(int flag) {
  int total = 0;
  for (int i = 0; i < __input_size(); i++) {
    if (flag) total += __input(i);
    else total -= __input(i);
  }
  return total;
}
int main(void) { return work(__input(0) & 1) & 0xff; }
|} in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize { Costmodel.o3 with Costmodel.inline_threshold = 0 } m0 in
  check bool "unswitched" true (r.Pipeline.stats.Stats.loops_unswitched >= 1);
  List.iter
    (fun input -> same_behaviour ~input src)
    [ "a"; "bcd"; "\001xyz"; "" ]

(* direct IR-level unswitch tests: run the pass on the frontend's memory-form
   output, bypassing the pipeline, so rejections can't be masked by an
   earlier pass rewriting the loop *)

let main_fn (m : I.modul) =
  List.find (fun (f : I.func) -> f.I.fname = "main") m.I.funcs

(** Run [Loop_unswitch.run] directly on [main]; returns the rewritten module,
    whether the pass changed anything, and how many loops it unswitched. *)
let unswitch_direct src =
  let m = Frontend.compile_source src in
  let stats = Stats.create () in
  let (fn', changed) = Loop_unswitch.run Costmodel.o3 stats (main_fn m) in
  Overify_ir.Verify.check_exn fn';
  (I.update_func m fn', changed, stats.Stats.loops_unswitched)

let test_unswitch_ir_nested_invariant () =
  let src = {|
int main(void) {
  int flag = __input(0) & 1;
  int total = 0;
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < __input_size(); j++) {
      if (flag) total += __input(j);
      else total -= __input(j);
    }
  }
  return total & 0xff;
}
|} in
  let (m', changed, n) = unswitch_direct src in
  check bool "changed" true changed;
  check bool "unswitched at least one loop" true (n >= 1);
  let m0 = Frontend.compile_source src in
  List.iter
    (fun input ->
      let a = Interp.run m0 ~input and b = Interp.run m' ~input in
      check bool ("same behaviour on " ^ String.escaped input) true
        (a.Interp.exit_code = b.Interp.exit_code
        && a.Interp.output = b.Interp.output
        && a.Interp.trap = b.Interp.trap))
    [ ""; "\001"; "\002abc"; "\003\255\254\253" ]

let test_unswitch_ir_loop_written_condition_blocked () =
  (* the condition slot is stored inside the loop: not invariant, so hoisting
     its test out of the loop would freeze the first iteration's value *)
  let src = {|
int main(void) {
  int flag = __input(0) & 1;
  int total = 0;
  for (int i = 0; i < __input_size(); i++) {
    if (flag) total += 1;
    flag = total & 1;
  }
  return total;
}
|} in
  let (_, changed, n) = unswitch_direct src in
  check bool "not changed" false changed;
  check int "no loop unswitched" 0 n

let test_unswitch_ir_call_condition_blocked () =
  (* the condition is recomputed from a call every iteration: calls are
     never part of a hoistable condition chain *)
  let src = {|
int main(void) {
  int total = 0;
  for (int i = 0; i < 4; i++) {
    if (__input(0) & 1) total += 3;
  }
  return total;
}
|} in
  let (_, changed, n) = unswitch_direct src in
  check bool "not changed" false changed;
  check int "no loop unswitched" 0 n

(* ------------- loop unrolling (peeling) ------------- *)

let test_unroll_constant_loop () =
  let src = {|
int main(void) {
  int sum = 0;
  for (int i = 0; i < 6; i++) sum += i * i;
  return sum;
}
|} in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize Costmodel.overify m0 in
  check bool "unrolled" true (r.Pipeline.stats.Stats.loops_unrolled >= 1);
  let fn = I.find_func_exn r.Pipeline.modul "main" in
  (* the loop should be gone entirely: straight-line constant return *)
  check int "no loops left" 0 (List.length (Overify_ir.Loop.find fn));
  check int "55" 55
    (Int64.to_int (Interp.run r.Pipeline.modul ~input:"").Interp.exit_code)

let test_unroll_respects_trip_limit () =
  let src = {|
int main(void) {
  int sum = 0;
  for (int i = 0; i < 100000; i++) sum += 1;
  return sum > 0;
}
|} in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize Costmodel.overify m0 in
  check int "not unrolled" 0 r.Pipeline.stats.Stats.loops_unrolled

let test_unroll_downward_loop () =
  let src = {|
int main(void) {
  int sum = 0;
  for (int i = 10; i > 0; i -= 2) sum += i;
  return sum;
}
|} in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize Costmodel.overify m0 in
  check bool "unrolled downward" true (r.Pipeline.stats.Stats.loops_unrolled >= 1);
  check int "30" 30
    (Int64.to_int (Interp.run r.Pipeline.modul ~input:"").Interp.exit_code)

(* ------------- inlining ------------- *)

let test_inline_specializes () =
  let src = {|
int twice(int x) { return x + x; }
int main(void) { return twice(21); }
|} in
  let fn = compile_fn Costmodel.overify src in
  check int "no calls left" 0
    (count_insts (function I.Call _ -> true | _ -> false) fn);
  (* and specialization folds everything *)
  check bool "folded to constant return" true (I.func_size fn <= 2)

let test_inline_skips_recursion () =
  let src = {|
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int main(void) { return fact(5); }
|} in
  let m = compile_at Costmodel.overify src in
  check bool "fact still exists" true (I.find_func m "fact" <> None);
  check int "120" 120 (Int64.to_int (Interp.run m ~input:"").Interp.exit_code)

let test_inline_threshold () =
  let src = {|
int helper(int x) { return x * 2 + 1; }
int main(void) { return helper(3); }
|} in
  let m_o0 = compile_at Costmodel.o0 src in
  let fn = I.find_func_exn m_o0 "main" in
  check bool "o0 keeps the call" true
    (count_insts (function I.Call _ -> true | _ -> false) fn >= 1)

(* ------------- jump threading ------------- *)

let test_jump_threading_same_condition () =
  (* the paper's 3 example: a branch jumping to a block that re-tests the
     same condition gets threaded through *)
  let src = {|
int main(void) {
  int c = __input(0);
  int r = 0;
  if (c > 10) { __output('a'); }
  if (c > 10) { __output('b'); }   /* same condition: correlated */
  else r = 1;
  return r;
}
|} in
  (* verify semantics at every level and that -O3 threading is counted when
     the shapes line up; the structural claim is checked via path counts *)
  same_behaviour ~input:" " src;
  same_behaviour ~input:"Z" src;
  let m0 = Frontend.compile_source src in
  let o3 = Pipeline.optimize Costmodel.o3 m0 in
  let r =
    Overify_symex.Engine.run
      ~config:{ Overify_symex.Engine.default_config with input_size = 1 }
      o3.Pipeline.modul
  in
  (* only two behaviours exist; an un-threaded exploration would fork the
     second test again *)
  check int "two paths after optimization" 2 r.Overify_symex.Engine.paths

(* ------------- dead-loop deletion ------------- *)

let test_loop_delete_zero_trip () =
  let src = {|
int main(void) {
  int sum = 7;
  for (int i = 10; i < 3; i++) sum += i;   /* never runs */
  return sum;
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check int "no loops left" 0 (List.length (Overify_ir.Loop.find fn));
  check int "returns 7" 7
    (Int64.to_int
       (Interp.run (compile_at Costmodel.overify src) ~input:"").Interp.exit_code)

let test_loop_delete_keeps_live_loops () =
  let src = {|
int main(void) {
  int sum = 0;
  for (int i = 0; i < __input_size(); i++) sum += __input(i);
  return sum & 0xff;
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check bool "input-bounded loop survives" true
    (List.length (Overify_ir.Loop.find fn) >= 1);
  same_behaviour ~input:"xyz" src

(* ------------- runtime checks ------------- *)

let test_runtime_checks_insert_and_catch () =
  let src = {|
int main(void) {
  int a[4];
  int i = __input(0);
  a[i & 7] = 1;        /* can be out of bounds */
  return 0;
}
|} in
  let level = { Costmodel.o0 with Costmodel.runtime_checks = true } in
  let m0 = Frontend.compile_source src in
  let r = Pipeline.optimize level m0 in
  check bool "checks inserted" true (r.Pipeline.stats.Stats.checks_inserted > 0);
  (* in-bounds run unaffected *)
  let ok = Interp.run r.Pipeline.modul ~input:"\002" in
  check bool "in-bounds clean" true (ok.Interp.trap = None);
  (* out-of-bounds becomes an abort (crash), the paper's uniform failure *)
  let bad = Interp.run r.Pipeline.modul ~input:"\007" in
  check bool "oob aborts" true (bad.Interp.trap = Some Interp.Abort_called)

(* ------------- schedule ------------- *)

let test_schedule_preserves_semantics () =
  let src = {|
int main(void) {
  int a = __input(0);
  int b = a * 3;
  int c = __input(1);
  int d = c * 5;
  int e = b + d;
  return e + a + c;
}
|} in
  same_behaviour ~input:"AB" src

let test_schedule_reduces_stalls () =
  (* scheduling is a -O2/-O3 pass; on dependency-heavy straight-line code it
     should not make execution slower *)
  let src = {|
int main(void) {
  int s = 0;
  int a = __input(0);
  int b = __input(1);
  for (int i = 0; i < 50; i++) {
    int x = a * 3;
    int y = b * 5;
    s += x + y;
  }
  return s & 0xff;
}
|} in
  let with_sched = compile_at Costmodel.o3 src in
  let without =
    compile_at { Costmodel.o3 with Costmodel.disabled_passes = [ "schedule" ] } src
  in
  let c1 = (Interp.run with_sched ~input:"AB").Interp.cycles in
  let c2 = (Interp.run without ~input:"AB").Interp.cycles in
  check bool "scheduling does not hurt" true (c1 <= c2)

(* ------------- annotations ------------- *)

let test_annotations_present () =
  let src = {|
int main(void) {
  int s = 0;
  for (int i = 0; i < __input_size(); i++) s += __input(i);
  return s & 0xff;
}
|} in
  let fn = compile_fn Costmodel.overify src in
  check bool "has metadata" true (fn.I.fmeta <> []);
  check bool "records loops" true (List.mem_assoc "loops" fn.I.fmeta)

(* ------------- whole-pipeline properties ------------- *)

let test_paranoid_profile_on () =
  (* test/dune wraps every test in (setenv OVERIFY_PARANOID 1 ...); if that
     wiring is lost the pipeline silently stops verifying IR after each pass,
     so fail the run loudly *)
  check bool "test profile runs the pipeline in paranoid mode" true
    !Pipeline.paranoid

let test_code_growth_direction () =
  (* -OVERIFY may grow code (paper: "even if this increases program size") *)
  let p = Option.get (Programs.find "wc") in
  let compile level =
    Pipeline.optimize level
      (Frontend.compile_sources [ Vclib.for_cost_model level; p.Programs.source ])
  in
  let o0 = static_size (compile Costmodel.o0).Pipeline.modul in
  let ov = static_size (compile Costmodel.overify).Pipeline.modul in
  check bool "sizes positive" true (o0 > 0 && ov > 0)

let test_levels_verify_over_corpus () =
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun level ->
          let m =
            Pipeline.optimize level
              (Frontend.compile_sources
                 [ Vclib.for_cost_model level; p.Programs.source ])
          in
          List.iter Overify_ir.Verify.check_exn m.Pipeline.modul.I.funcs)
        Costmodel.all)
    Programs.programs

(* ------------- the big differential property ------------- *)

let text_gen =
  QCheck2.Gen.(
    let interesting =
      oneofl
        [ 'a'; 'b'; 'z'; 'A'; 'Z'; ' '; '\t'; '\n'; '/'; ':'; ';'; '%'; '\\';
          '0'; '9'; '#'; '='; '<'; '-'; '+'; '.'; '\000'; '\255' ]
    in
    let any = map Char.chr (int_range 0 255) in
    string_size ~gen:(frequency [ (4, interesting); (1, any) ]) (int_range 0 12))

let differential_tests =
  List.map
    (fun (p : Programs.t) ->
      let compiled =
        List.map
          (fun level ->
            ( level.Costmodel.name,
              (Pipeline.optimize level
                 (Frontend.compile_sources
                    [ Vclib.for_cost_model level; p.Programs.source ]))
                .Pipeline.modul ))
          Costmodel.all
      in
      QCheck_alcotest.to_alcotest
        (QCheck2.Test.make
           ~name:(Printf.sprintf "%s agrees across levels" p.Programs.name)
           ~count:25 text_gen (fun input ->
             match compiled with
             | [] -> true
             | (_, m0) :: rest ->
                 let r0 = Interp.run m0 ~input in
                 List.for_all
                   (fun (name, m) ->
                     let r = Interp.run m ~input in
                     let ok =
                       r.Interp.exit_code = r0.Interp.exit_code
                       && r.Interp.output = r0.Interp.output
                       && (r.Interp.trap = None) = (r0.Interp.trap = None)
                     in
                     if not ok then
                       QCheck2.Test.fail_reportf
                         "%s disagrees with -O0 on %S: exit %Ld vs %Ld, \
                          output %S vs %S, trap %s vs %s"
                         name input r0.Interp.exit_code r.Interp.exit_code
                         r0.Interp.output r.Interp.output
                         (match r0.Interp.trap with
                         | None -> "-"
                         | Some t -> Interp.string_of_trap t)
                         (match r.Interp.trap with
                         | None -> "-"
                         | Some t -> Interp.string_of_trap t)
                     else ok)
                   rest)))
    Programs.programs

(* ------------- Stats (the Table 3 counters) ------------- *)

let stats_fields (s : Stats.t) =
  [
    ("functions_inlined", s.Stats.functions_inlined);
    ("loops_unswitched", s.Stats.loops_unswitched);
    ("loops_unrolled", s.Stats.loops_unrolled);
    ("loops_deleted", s.Stats.loops_deleted);
    ("branches_converted", s.Stats.branches_converted);
    ("jumps_threaded", s.Stats.jumps_threaded);
    ("allocas_promoted", s.Stats.allocas_promoted);
    ("aggregates_split", s.Stats.aggregates_split);
    ("insts_folded", s.Stats.insts_folded);
    ("insts_hoisted", s.Stats.insts_hoisted);
    ("checks_inserted", s.Stats.checks_inserted);
    ("annotations_added", s.Stats.annotations_added);
  ]

let test_stats_create_zero () =
  List.iter
    (fun (name, v) -> check int (name ^ " starts at 0") 0 v)
    (stats_fields (Stats.create ()))

let test_stats_add () =
  (* distinct per-field values so a transposed field in [add] shows up *)
  let a = Stats.create () and b = Stats.create () in
  let setters =
    [
      (fun (s : Stats.t) v -> s.Stats.functions_inlined <- v);
      (fun s v -> s.Stats.loops_unswitched <- v);
      (fun s v -> s.Stats.loops_unrolled <- v);
      (fun s v -> s.Stats.loops_deleted <- v);
      (fun s v -> s.Stats.branches_converted <- v);
      (fun s v -> s.Stats.jumps_threaded <- v);
      (fun s v -> s.Stats.allocas_promoted <- v);
      (fun s v -> s.Stats.aggregates_split <- v);
      (fun s v -> s.Stats.insts_folded <- v);
      (fun s v -> s.Stats.insts_hoisted <- v);
      (fun s v -> s.Stats.checks_inserted <- v);
      (fun s v -> s.Stats.annotations_added <- v);
    ]
  in
  List.iteri (fun i set -> set a (i + 1)) setters;
  List.iteri (fun i set -> set b (100 * (i + 1))) setters;
  let s = Stats.add a b in
  List.iteri
    (fun i (name, v) -> check int (name ^ " adds field-wise") (101 * (i + 1)) v)
    (stats_fields s);
  (* add is non-destructive *)
  check int "left operand untouched" 1 a.Stats.functions_inlined;
  check int "right operand untouched" 100 b.Stats.functions_inlined

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_stats_pp () =
  let s = Stats.create () in
  s.Stats.functions_inlined <- 3;
  s.Stats.checks_inserted <- 42;
  let str = Format.asprintf "%a" Stats.pp s in
  check bool "pp shows inlined=3" true (contains str "inlined=3");
  check bool "pp shows checks=42" true (contains str "checks=42")

(* the pipeline actually populates the counters: wc at -OVERIFY inlines,
   promotes allocas and inserts checks/annotations *)
let test_stats_populated_by_pipeline () =
  let p = Option.get (Programs.find "wc") in
  let r =
    Pipeline.optimize Costmodel.overify
      (Frontend.compile_sources
         [ Vclib.for_cost_model Costmodel.overify; p.Programs.source ])
  in
  let s = r.Pipeline.stats in
  check bool "inlined something" true (s.Stats.functions_inlined > 0);
  check bool "promoted allocas" true (s.Stats.allocas_promoted > 0);
  check bool "added annotations" true (s.Stats.annotations_added > 0)

let () =
  Alcotest.run "opt"
    [
      ( "constfold",
        [
          Alcotest.test_case "folds" `Quick test_constfold_folds;
          Alcotest.test_case "preserves div-by-zero" `Quick
            test_constfold_preserves_div_by_zero;
          Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
        ] );
      ( "mem2reg",
        [
          Alcotest.test_case "promotes" `Quick test_mem2reg_promotes;
          Alcotest.test_case "do-while phi (regression)" `Quick
            test_mem2reg_do_while;
          Alcotest.test_case "respects escapes" `Quick
            test_mem2reg_respects_escapes;
        ] );
      ("sroa", [ Alcotest.test_case "splits arrays" `Quick test_sroa_splits ]);
      ("dce", [ Alcotest.test_case "removes dead code" `Quick test_dce_removes_dead_code ]);
      ( "if-conversion",
        [
          Alcotest.test_case "removes branches" `Quick
            test_if_convert_removes_branches;
          Alcotest.test_case "flattens short-circuit DAG" `Quick
            test_if_convert_flattens_shortcircuit;
          Alcotest.test_case "keeps side effects guarded" `Quick
            test_if_convert_keeps_side_effects_guarded;
          Alcotest.test_case "respects CPU budget" `Quick
            test_if_convert_respects_cpu_budget;
          Alcotest.test_case "IR: safe arm converts" `Quick
            test_if_convert_ir_safe_arm_converts;
          Alcotest.test_case "IR: division arm blocked" `Quick
            test_if_convert_ir_division_arm_blocked;
          Alcotest.test_case "IR: load arm blocked" `Quick
            test_if_convert_ir_load_arm_blocked;
        ] );
      ( "unswitch",
        [
          Alcotest.test_case "fires and preserves" `Quick
            test_unswitch_fires_and_preserves;
          Alcotest.test_case "IR: nested invariant condition" `Quick
            test_unswitch_ir_nested_invariant;
          Alcotest.test_case "IR: loop-written condition blocked" `Quick
            test_unswitch_ir_loop_written_condition_blocked;
          Alcotest.test_case "IR: call condition blocked" `Quick
            test_unswitch_ir_call_condition_blocked;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "constant loop" `Quick test_unroll_constant_loop;
          Alcotest.test_case "trip limit" `Quick test_unroll_respects_trip_limit;
          Alcotest.test_case "downward loop" `Quick test_unroll_downward_loop;
        ] );
      ( "inline",
        [
          Alcotest.test_case "specializes" `Quick test_inline_specializes;
          Alcotest.test_case "skips recursion" `Quick test_inline_skips_recursion;
          Alcotest.test_case "threshold" `Quick test_inline_threshold;
        ] );
      ( "jump threading",
        [ Alcotest.test_case "correlated conditions" `Quick
            test_jump_threading_same_condition ] );
      ( "loop deletion",
        [
          Alcotest.test_case "zero-trip loop removed" `Quick
            test_loop_delete_zero_trip;
          Alcotest.test_case "live loops kept" `Quick
            test_loop_delete_keeps_live_loops;
        ] );
      ( "runtime checks",
        [ Alcotest.test_case "insert and catch" `Quick
            test_runtime_checks_insert_and_catch ] );
      ( "schedule",
        [
          Alcotest.test_case "preserves semantics" `Quick
            test_schedule_preserves_semantics;
          Alcotest.test_case "reduces stalls" `Quick test_schedule_reduces_stalls;
        ] );
      ( "annotations",
        [ Alcotest.test_case "present" `Quick test_annotations_present ] );
      ( "pipeline",
        [
          Alcotest.test_case "paranoid profile on" `Quick test_paranoid_profile_on;
          Alcotest.test_case "code size sanity" `Quick test_code_growth_direction;
          Alcotest.test_case "IR verifies over corpus at all levels" `Slow
            test_levels_verify_over_corpus;
        ] );
      ( "stats",
        [
          Alcotest.test_case "create is all zeros" `Quick test_stats_create_zero;
          Alcotest.test_case "add is field-wise" `Quick test_stats_add;
          Alcotest.test_case "pp names every counter" `Quick test_stats_pp;
          Alcotest.test_case "pipeline populates counters" `Quick
            test_stats_populated_by_pipeline;
        ] );
      ("differential (qcheck)", differential_tests);
    ]
