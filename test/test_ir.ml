(** Unit tests for the IR core: constants, evaluation, CFG, dominators,
    loops, call graph, builder and the structural verifier. *)

open Overify_ir
module I = Ir

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

(* ------------- constants and evaluation ------------- *)

let test_norm () =
  check i64 "i8 norm" 0x34L (I.norm I.I8 0x1234L);
  check i64 "i1 norm" 1L (I.norm I.I1 3L);
  check i64 "i32 norm" 0xFFFFFFFFL (I.norm I.I32 (-1L));
  check i64 "i64 norm" (-1L) (I.norm I.I64 (-1L))

let test_signed_of () =
  check i64 "i8 -1" (-1L) (I.signed_of I.I8 0xFFL);
  check i64 "i8 127" 127L (I.signed_of I.I8 0x7FL);
  check i64 "i8 -128" (-128L) (I.signed_of I.I8 0x80L);
  check i64 "i16 -1" (-1L) (I.signed_of I.I16 0xFFFFL);
  check i64 "i32 min" (Int64.of_int32 Int32.min_int)
    (I.signed_of I.I32 0x80000000L)

let test_eval_binop () =
  let eval op ty a b = I.eval_binop op ty (I.norm ty a) (I.norm ty b) in
  check (Alcotest.option i64) "add wrap i8" (Some 0L) (eval I.Add I.I8 255L 1L);
  check (Alcotest.option i64) "sub wrap i8" (Some 255L) (eval I.Sub I.I8 0L 1L);
  check (Alcotest.option i64) "mul i8" (Some 0xE8L) (eval I.Mul I.I8 100L 10L);
  check (Alcotest.option i64) "sdiv -7/2" (Some (I.norm I.I32 (-3L)))
    (eval I.Sdiv I.I32 (-7L) 2L);
  check (Alcotest.option i64) "srem -7%2" (Some (I.norm I.I32 (-1L)))
    (eval I.Srem I.I32 (-7L) 2L);
  check (Alcotest.option i64) "udiv 0xFF/2" (Some 127L) (eval I.Udiv I.I8 255L 2L);
  check (Alcotest.option i64) "div by zero" None (eval I.Sdiv I.I32 5L 0L);
  check (Alcotest.option i64) "urem by zero" None (eval I.Urem I.I32 5L 0L);
  check (Alcotest.option i64) "shl" (Some 0x80L) (eval I.Shl I.I8 1L 7L);
  check (Alcotest.option i64) "shl masks amount" (Some 1L) (eval I.Shl I.I8 1L 8L);
  check (Alcotest.option i64) "lshr i8" (Some 0x7FL) (eval I.Lshr I.I8 255L 1L);
  check (Alcotest.option i64) "ashr i8 neg" (Some 0xFFL) (eval I.Ashr I.I8 255L 1L);
  check (Alcotest.option i64) "xor" (Some 0L) (eval I.Xor I.I32 42L 42L)

let test_eval_cmp () =
  check bool "slt signed" true (I.eval_cmp I.Slt I.I8 (I.norm I.I8 (-1L)) 1L);
  check bool "ult unsigned" false (I.eval_cmp I.Ult I.I8 (I.norm I.I8 (-1L)) 1L);
  check bool "sge" true (I.eval_cmp I.Sge I.I32 5L 5L);
  check bool "ne" false (I.eval_cmp I.Ne I.I32 5L 5L);
  check bool "ugt 64" true
    (I.eval_cmp I.Ugt I.I64 (I.norm I.I64 (-1L)) 1L)

let test_eval_cast () =
  check i64 "zext i8->i32" 0xFFL (I.eval_cast I.Zext I.I32 0xFFL I.I8);
  check i64 "sext i8->i32" 0xFFFFFFFFL (I.eval_cast I.Sext I.I32 0xFFL I.I8);
  check i64 "trunc i32->i8" 0x34L (I.eval_cast I.Trunc I.I8 0x1234L I.I32)

let test_sizes () =
  check int "i8" 1 (I.size_of_ty I.I8);
  check int "i32" 4 (I.size_of_ty I.I32);
  check int "ptr" 8 (I.size_of_ty I.Ptr);
  check int "arr" 12 (I.size_of_ty (I.Arr (I.I32, 3)));
  check int "nested arr" 24 (I.size_of_ty (I.Arr (I.Arr (I.I8, 4), 6)));
  check int "bits i1" 1 (I.bits_of_ty I.I1)

(* ------------- builder & structure ------------- *)

(* build: entry -> (cond ? L1 : L2) -> join; a classic diamond *)
let build_diamond () =
  let b = Builder.create ~name:"diamond" ~params:[ I.I32 ] ~ret:I.I32 in
  let p = List.hd (Builder.param_regs b) in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let join = Builder.new_block b in
  let c = Builder.cmp b I.Sgt I.I32 (I.Reg p) (I.imm I.I32 0L) in
  Builder.term b (I.Cbr (c, l1, l2));
  Builder.switch_to b l1;
  let v1 = Builder.bin b I.Add I.I32 (I.Reg p) (I.imm I.I32 1L) in
  Builder.term b (I.Br join);
  Builder.switch_to b l2;
  let v2 = Builder.bin b I.Sub I.I32 (I.Reg p) (I.imm I.I32 1L) in
  Builder.term b (I.Br join);
  Builder.switch_to b join;
  let d = Builder.fresh b in
  Builder.add_inst b
    (I.Phi (d, I.I32, [ (l1, v1); (l2, v2) ]));
  Builder.term b (I.Ret (Some (I.Reg d)));
  Builder.finish b

(* entry -> header <-> body, header -> exit; a while loop *)
let build_loop () =
  let b = Builder.create ~name:"loop" ~params:[ I.I32 ] ~ret:I.I32 in
  let header = Builder.new_block b and body = Builder.new_block b in
  let exit_ = Builder.new_block b in
  let slot = Builder.entry_alloca b I.I32 1 in
  Builder.store b I.I32 (I.imm I.I32 0L) slot;
  Builder.term b (I.Br header);
  Builder.switch_to b header;
  let i = Builder.load b I.I32 slot in
  let c = Builder.cmp b I.Slt I.I32 i (I.imm I.I32 10L) in
  Builder.term b (I.Cbr (c, body, exit_));
  Builder.switch_to b body;
  let i2 = Builder.load b I.I32 slot in
  let i3 = Builder.bin b I.Add I.I32 i2 (I.imm I.I32 1L) in
  Builder.store b I.I32 i3 slot;
  Builder.term b (I.Br header);
  Builder.switch_to b exit_;
  let r = Builder.load b I.I32 slot in
  Builder.term b (I.Ret (Some r));
  Builder.finish b

let test_builder_diamond () =
  let fn = build_diamond () in
  check int "4 blocks" 4 (I.num_blocks fn);
  Verify.check_exn ~ssa:true fn

let test_builder_loop () =
  let fn = build_loop () in
  check int "4 blocks" 4 (I.num_blocks fn);
  Verify.check_exn ~memform:true fn

let test_func_size () =
  let fn = build_diamond () in
  check int "size counts insts + terminators" (4 + 4) (I.func_size fn)

let test_subst () =
  let fn = build_diamond () in
  let p = List.hd (List.map fst fn.I.params) in
  let fn2 = I.subst_func p (I.imm I.I32 7L) fn in
  (* no more uses of p *)
  let uses = ref 0 in
  I.iter_insts
    (fun _ i ->
      List.iter
        (fun v -> if v = I.Reg p then incr uses)
        (I.uses_of_inst i))
    fn2;
  check int "param uses gone" 0 !uses

(* ------------- CFG ------------- *)

let test_cfg_preds_succs () =
  let fn = build_diamond () in
  let entry = (I.entry fn).I.bid in
  let preds = Cfg.preds fn in
  check int "entry has no preds" 0 (List.length (Cfg.preds_of preds entry));
  let join =
    match List.rev fn.I.blocks with b :: _ -> b.I.bid | [] -> assert false
  in
  check int "join has 2 preds" 2 (List.length (Cfg.preds_of preds join));
  check int "reachable = all" 4 (Cfg.IntSet.cardinal (Cfg.reachable fn))

let test_cfg_rpo () =
  let fn = build_diamond () in
  let order = Cfg.rpo fn in
  check int "rpo covers all" 4 (List.length order);
  check int "entry first" (I.entry fn).I.bid (List.hd order)

let test_remove_unreachable () =
  let fn = build_diamond () in
  (* add an unreachable block *)
  let dead = { I.bid = fn.I.next; insts = []; term = I.Ret (Some (I.imm I.I32 0L)) } in
  let fn = { fn with I.blocks = fn.I.blocks @ [ dead ]; next = fn.I.next + 1 } in
  let (fn', changed) = Cfg.remove_unreachable fn in
  check bool "changed" true changed;
  check int "back to 4" 4 (I.num_blocks fn')

(* ------------- dominators ------------- *)

let test_dominators_diamond () =
  let fn = build_diamond () in
  let dom = Dom.compute fn in
  let bids = List.map (fun (b : I.block) -> b.I.bid) fn.I.blocks in
  match bids with
  | [ entry; l1; l2; join ] ->
      check bool "entry dominates all" true
        (List.for_all (Dom.dominates dom entry) bids);
      check bool "l1 !dom join" false (Dom.dominates dom l1 join);
      check bool "l2 !dom join" false (Dom.dominates dom l2 join);
      check (Alcotest.option int) "idom join = entry" (Some entry)
        (Dom.idom dom join);
      (* dominance frontiers: DF(l1) = DF(l2) = {join} *)
      let df = Dom.frontiers fn dom in
      check bool "df l1 = {join}" true
        (Cfg.IntSet.equal (Dom.frontier_of df l1) (Cfg.IntSet.singleton join));
      check bool "df entry empty" true
        (Cfg.IntSet.is_empty (Dom.frontier_of df entry))
  | _ -> Alcotest.fail "unexpected block structure"

(* the Euler-tour O(1) dominance must agree with the definition on a deep
   chain (the shape heavy peeling produces) *)
let test_dominates_deep_chain () =
  let b = Builder.create ~name:"chain" ~params:[] ~ret:I.I32 in
  let blocks = Array.init 300 (fun _ -> Builder.new_block b) in
  Builder.term b (I.Br blocks.(0));
  Array.iteri
    (fun i l ->
      Builder.switch_to b l;
      if i + 1 < Array.length blocks then Builder.term b (I.Br blocks.(i + 1))
      else Builder.term b (I.Ret (Some (I.imm I.I32 0L))))
    blocks;
  let fn = Builder.finish b in
  let dom = Dom.compute fn in
  check bool "first dominates last" true
    (Dom.dominates dom blocks.(0) blocks.(299));
  check bool "mid dominates later" true
    (Dom.dominates dom blocks.(100) blocks.(200));
  check bool "later does not dominate earlier" false
    (Dom.dominates dom blocks.(200) blocks.(100));
  check bool "entry dominates all" true
    (Dom.dominates dom (I.entry fn).I.bid blocks.(299))

(* regression for the mem2reg bug: a loop header must be in its own
   dominance frontier *)
let test_frontier_self_loop () =
  let fn = build_loop () in
  let dom = Dom.compute fn in
  let df = Dom.frontiers fn dom in
  let header = List.nth (List.map (fun (b : I.block) -> b.I.bid) fn.I.blocks) 1 in
  check bool "header in own frontier" true
    (Cfg.IntSet.mem header (Dom.frontier_of df header))

(* ------------- loops ------------- *)

let test_loop_detection () =
  let fn = build_loop () in
  let loops = Loop.find fn in
  check int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check int "two blocks in loop" 2 (Cfg.IntSet.cardinal l.Loop.blocks);
  check int "one latch" 1 (List.length l.Loop.latches);
  check int "one exit" 1 (List.length l.Loop.exits);
  check bool "has preheader" true (l.Loop.preheader <> None)

let test_loop_depths () =
  let fn = build_loop () in
  let depth = Loop.depth_map fn in
  let l = List.hd (Loop.find fn) in
  check int "header depth 1" 1 (Hashtbl.find depth l.Loop.header);
  check int "entry depth 0" 0 (Hashtbl.find depth (I.entry fn).I.bid)

let test_no_loops_in_diamond () =
  check int "diamond has no loops" 0 (List.length (Loop.find (build_diamond ())))

(* ------------- verifier ------------- *)

let expect_invalid ?ssa ?memform fn =
  match Verify.check ?ssa ?memform fn with
  | Ok () -> Alcotest.fail "verifier accepted invalid IR"
  | Error _ -> ()

let test_verify_catches_double_def () =
  let fn = build_diamond () in
  let blk = I.entry fn in
  let dup =
    { blk with I.insts = blk.I.insts @ blk.I.insts }
  in
  expect_invalid (I.update_block fn dup)

let test_verify_catches_bad_target () =
  let fn = build_diamond () in
  let blk = I.entry fn in
  let bad = { blk with I.term = I.Br 9999 } in
  expect_invalid (I.update_block fn bad)

let test_verify_catches_type_error () =
  let b = Builder.create ~name:"bad" ~params:[ I.I32 ] ~ret:I.I32 in
  let p = List.hd (Builder.param_regs b) in
  (* i8 add over an i32 operand *)
  let v = Builder.bin b I.Add I.I8 (I.Reg p) (I.imm I.I8 1L) in
  ignore v;
  Builder.term b (I.Ret (Some (I.Reg p)));
  expect_invalid (Builder.finish b)

let test_verify_catches_use_before_def () =
  let b = Builder.create ~name:"ubd" ~params:[] ~ret:I.I32 in
  let d1 = Builder.fresh b in
  let d2 = Builder.fresh b in
  Builder.add_inst b (I.Bin (d1, I.Add, I.I32, I.Reg d2, I.imm I.I32 1L));
  Builder.add_inst b (I.Bin (d2, I.Add, I.I32, I.imm I.I32 1L, I.imm I.I32 1L));
  Builder.term b (I.Ret (Some (I.Reg d1)));
  expect_invalid ~ssa:true (Builder.finish b)

let test_verify_accepts_good () =
  Verify.check_exn ~ssa:true (build_diamond ());
  Verify.check_exn (build_loop ())

(* ------------- typing ------------- *)

let test_typing () =
  let fn = build_diamond () in
  let t = Typing.of_func fn in
  let p = List.hd (List.map fst fn.I.params) in
  check bool "param typed i32" true (Typing.reg_ty t p = I.I32);
  check bool "glob is ptr" true (Typing.value_ty t (I.Glob "g") = I.Ptr)

(* ------------- callgraph ------------- *)

let simple_module () =
  let mk name callees =
    let b = Builder.create ~name ~params:[] ~ret:I.I32 in
    List.iter (fun c -> ignore (Builder.call b I.I32 c [])) callees;
    Builder.term b (I.Ret (Some (I.imm I.I32 0L)));
    Builder.finish b
  in
  {
    I.globals = [];
    funcs =
      [ mk "main" [ "a"; "b" ]; mk "a" [ "b" ]; mk "b" []; mk "r" [ "r" ] ];
  }

let test_callgraph () =
  let m = simple_module () in
  let main = I.find_func_exn m "main" in
  check (Alcotest.list Alcotest.string) "callees" [ "a"; "b" ]
    (Callgraph.callees m main);
  check bool "r cyclic" true (Callgraph.in_cycle m "r");
  check bool "a acyclic" false (Callgraph.in_cycle m "a");
  let order = Callgraph.bottom_up_order m in
  let pos x = Option.get (List.find_index (( = ) x) order) in
  check bool "b before a" true (pos "b" < pos "a");
  check bool "a before main" true (pos "a" < pos "main")

(* Tarjan SCC grouping: a two-function cycle (mutual recursion) must land
   in one SCC and be flagged cyclic — the summary layer keys on this to
   make recursive functions Opaque *)
let test_sccs () =
  let mk name callees =
    let b = Builder.create ~name ~params:[] ~ret:I.I32 in
    List.iter (fun c -> ignore (Builder.call b I.I32 c [])) callees;
    Builder.term b (I.Ret (Some (I.imm I.I32 0L)));
    Builder.finish b
  in
  let m =
    {
      I.globals = [];
      funcs =
        [ mk "main" [ "even"; "leaf" ]; mk "even" [ "odd" ];
          mk "odd" [ "even"; "leaf" ]; mk "leaf" [] ];
    }
  in
  let sccs = Callgraph.sccs m in
  let scc_of n = List.find (List.mem n) sccs in
  check (Alcotest.list Alcotest.string) "even and odd form one SCC"
    [ "even"; "odd" ]
    (List.sort compare (scc_of "even"));
  check bool "main is a singleton SCC" true (scc_of "main" = [ "main" ]);
  let cyc = Callgraph.cyclic m in
  check bool "even cyclic" true (Callgraph.StrSet.mem "even" cyc);
  check bool "odd cyclic" true (Callgraph.StrSet.mem "odd" cyc);
  check bool "main acyclic" false (Callgraph.StrSet.mem "main" cyc);
  check bool "leaf acyclic" false (Callgraph.StrSet.mem "leaf" cyc);
  (* reverse topological order: every callee's SCC precedes its callers' *)
  let pos n =
    Option.get (List.find_index (fun scc -> List.mem n scc) sccs)
  in
  check bool "leaf before the cycle" true (pos "leaf" < pos "even");
  check bool "cycle before main" true (pos "even" < pos "main")

(* ------------- printer ------------- *)

let test_printer () =
  let fn = build_diamond () in
  let s = Printer.func_to_string fn in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check bool "define" true (contains "define i32 @diamond");
  check bool "phi" true (contains "phi");
  check bool "icmp" true (contains "icmp sgt");
  check bool "ret" true (contains "ret")

let () =
  Alcotest.run "ir"
    [
      ( "constants",
        [
          Alcotest.test_case "norm" `Quick test_norm;
          Alcotest.test_case "signed_of" `Quick test_signed_of;
          Alcotest.test_case "eval_binop" `Quick test_eval_binop;
          Alcotest.test_case "eval_cmp" `Quick test_eval_cmp;
          Alcotest.test_case "eval_cast" `Quick test_eval_cast;
          Alcotest.test_case "sizes" `Quick test_sizes;
        ] );
      ( "builder",
        [
          Alcotest.test_case "diamond" `Quick test_builder_diamond;
          Alcotest.test_case "loop" `Quick test_builder_loop;
          Alcotest.test_case "func_size" `Quick test_func_size;
          Alcotest.test_case "subst" `Quick test_subst;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "preds/succs" `Quick test_cfg_preds_succs;
          Alcotest.test_case "rpo" `Quick test_cfg_rpo;
          Alcotest.test_case "remove_unreachable" `Quick test_remove_unreachable;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "deep chain (Euler-tour query)" `Quick
            test_dominates_deep_chain;
          Alcotest.test_case "loop header in own frontier (regression)" `Quick
            test_frontier_self_loop;
        ] );
      ( "loops",
        [
          Alcotest.test_case "detection" `Quick test_loop_detection;
          Alcotest.test_case "depths" `Quick test_loop_depths;
          Alcotest.test_case "diamond loop-free" `Quick test_no_loops_in_diamond;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "double def" `Quick test_verify_catches_double_def;
          Alcotest.test_case "bad target" `Quick test_verify_catches_bad_target;
          Alcotest.test_case "type error" `Quick test_verify_catches_type_error;
          Alcotest.test_case "use before def" `Quick
            test_verify_catches_use_before_def;
          Alcotest.test_case "accepts good IR" `Quick test_verify_accepts_good;
        ] );
      ( "typing",
        [ Alcotest.test_case "of_func" `Quick test_typing ] );
      ( "callgraph",
        [
          Alcotest.test_case "basics" `Quick test_callgraph;
          Alcotest.test_case "tarjan sccs (two-function cycle)" `Quick
            test_sccs;
        ] );
      ( "printer",
        [ Alcotest.test_case "contains expected text" `Quick test_printer ] );
    ]
