(** Harness tests: the experiment plumbing and, crucially, the paper-shape
    assertions — the qualitative results the reproduction must deliver
    (path-count ordering, the verification/execution trade-off, Table 3's
    monotonicity). *)

module H = Overify_harness
module Costmodel = Overify_opt.Costmodel
module Engine = Overify_symex.Engine
module Stats = Overify_opt.Stats

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------- experiment plumbing ------------- *)

let test_compile_produces_sizes () =
  let p = Option.get (Overify_corpus.Programs.find "wc") in
  let c0 = H.Experiment.compile Costmodel.o0 p in
  let cv = H.Experiment.compile Costmodel.overify p in
  check bool "sizes positive" true
    (c0.H.Experiment.size > 0 && cv.H.Experiment.size > 0);
  check bool "compile time measured" true (c0.H.Experiment.t_compile >= 0.0)

let test_measure_cycles_deterministic () =
  let p = Option.get (Overify_corpus.Programs.find "sum") in
  let c = H.Experiment.compile Costmodel.o3 p in
  let a = H.Experiment.measure_cycles ~runs:3 ~size:10 c in
  let b = H.Experiment.measure_cycles ~runs:3 ~size:10 c in
  check (Alcotest.float 0.001) "deterministic" a b

(* ------------- Table 1 shape ------------- *)

let test_table1_shape () =
  let rows =
    match H.Table1.rows ~input_size:3 ~timeout:60.0 () with
    | Ok rs -> rs
    | Error msg -> Alcotest.fail ("table 1 rows unavailable: " ^ msg)
  in
  check int "four rows" 4 (List.length rows);
  let by name =
    List.find (fun (r : H.Table1.row) -> r.H.Table1.level = name) rows
  in
  let o0 = by "-O0" and o2 = by "-O2" and o3 = by "-O3"
  and ov = by "-OVERIFY" in
  List.iter
    (fun (r : H.Table1.row) ->
      check bool (r.H.Table1.level ^ " completes") true r.H.Table1.complete)
    rows;
  (* the paper's headline orderings *)
  check bool "paths: O0 = O2" true (o0.H.Table1.paths = o2.H.Table1.paths);
  check bool "paths: O2 > O3" true (o2.H.Table1.paths > o3.H.Table1.paths);
  check bool "paths: O3 > OVERIFY" true (o3.H.Table1.paths > ov.H.Table1.paths);
  check bool "paths: OVERIFY linear (= n+2 at most)" true
    (ov.H.Table1.paths <= 3 + 2);
  check bool "instructions: O0 > OVERIFY x10" true
    (o0.H.Table1.instructions > 10 * ov.H.Table1.instructions);
  (* the execution-side trade-off: -OVERIFY code is slower on the CPU *)
  check bool "t_run: OVERIFY slower than O3" true
    (ov.H.Table1.run_cycles > o3.H.Table1.run_cycles);
  check bool "t_run: O3 faster than O0" true
    (o3.H.Table1.run_cycles < o0.H.Table1.run_cycles)

(* ------------- Table 3 shape ------------- *)

let test_table3_monotone () =
  let t_o3 = H.Table3.totals Costmodel.o3 in
  let t_ov = H.Table3.totals Costmodel.overify in
  let t_o0 = H.Table3.totals Costmodel.o0 in
  check int "O0 does nothing (inlined)" 0 t_o0.Stats.functions_inlined;
  check int "O0 does nothing (unswitched)" 0 t_o0.Stats.loops_unswitched;
  check bool "OVERIFY inlines more than O3" true
    (t_ov.Stats.functions_inlined > t_o3.Stats.functions_inlined);
  check bool "OVERIFY unswitches at least as much" true
    (t_ov.Stats.loops_unswitched >= t_o3.Stats.loops_unswitched);
  check bool "OVERIFY unrolls more" true
    (t_ov.Stats.loops_unrolled > t_o3.Stats.loops_unrolled);
  check bool "OVERIFY converts more branches" true
    (t_ov.Stats.branches_converted > t_o3.Stats.branches_converted);
  check bool "annotations only at OVERIFY" true
    (t_ov.Stats.annotations_added > 0 && t_o3.Stats.annotations_added = 0)

(* ------------- Figure 4 machinery ------------- *)

let test_figure4_summary_math () =
  let mk name o0 o3 ov complete_ov =
    {
      H.Figure4.pname = name;
      o0 = { H.Figure4.total_s = o0; complete = true; paths = 1; bugs = [] };
      o3 = { H.Figure4.total_s = o3; complete = o3 < 900.; paths = 1; bugs = [] };
      overify =
        { H.Figure4.total_s = ov; complete = complete_ov; paths = 1; bugs = [] };
    }
  in
  let entries =
    [ mk "a" 10.0 4.0 1.0 true;    (* OVERIFY 4x faster than O3 *)
      mk "b" 8.0 2.0 2.0 true;     (* tie *)
      mk "c" 10.0 999.0 1.0 true ] (* O3 times out, OVERIFY rescues *)
  in
  let s = H.Figure4.summarize entries in
  check int "one rescued" 1 s.H.Figure4.rescued_from_o3;
  check int "one o3 timeout" 1 s.H.Figure4.timeouts_o3;
  (* the rescued program's timed-out baseline counts as a lower bound *)
  check bool "max speedup is 999x (lower bound from the timeout)" true
    (abs_float (s.H.Figure4.max_speedup_vs_o3 -. 999.0) < 1e-6);
  check bool "no bug mismatches" true (s.H.Figure4.bug_mismatches = [])

let test_figure4_bug_consistency_detection () =
  let cell bugs =
    { H.Figure4.total_s = 1.0; complete = true; paths = 1; bugs }
  in
  let entries =
    [
      {
        H.Figure4.pname = "p";
        o0 = cell [ ("division by zero", "main") ];
        o3 = cell [];
        overify = cell [];  (* missing the bug! *)
      };
    ]
  in
  let s = H.Figure4.summarize entries in
  check int "mismatch detected" 1 (List.length s.H.Figure4.bug_mismatches)

(* a tiny real figure-4 sweep over two programs *)
let test_figure4_small_run () =
  List.iter
    (fun name ->
      let p = Option.get (Overify_corpus.Programs.find name) in
      let m = H.Figure4.measure_one ~input_size:2 ~timeout:10.0 Costmodel.overify p in
      check bool (name ^ " completes at OVERIFY") true m.H.Figure4.complete)
    [ "tr"; "cut" ]

(* ------------- Table 2 machinery ------------- *)

let test_table2_sign () =
  check Alcotest.string "faster" "+" (H.Table2.sign 2.0);
  check Alcotest.string "slower" "-" (H.Table2.sign 0.5);
  check Alcotest.string "neutral" "0" (H.Table2.sign 1.01)

let test_table2_if_convert_ablation () =
  (* disabling if-conversion must hurt verification of wc *)
  let r =
    H.Table2.ablate ~input_size:3 ~timeout:30.0
      ~name:"if-conversion" ~base:Costmodel.overify
      ~disabled:[ "if_convert" ] ()
  in
  check bool "verification suffers without if-conversion" true
    (r.H.Table2.verify_factor > 1.5);
  check bool "more paths without" true
    (r.H.Table2.paths_without > r.H.Table2.paths_with)

(* ------------- report formatting ------------- *)

let test_report_fmt_int () =
  check Alcotest.string "thousands" "1,234,567" (H.Report.fmt_int 1234567);
  check Alcotest.string "small" "42" (H.Report.fmt_int 42);
  check Alcotest.string "exact thousand" "1,000" (H.Report.fmt_int 1000)

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "compile sizes" `Quick test_compile_produces_sizes;
          Alcotest.test_case "cycles deterministic" `Quick
            test_measure_cycles_deterministic;
        ] );
      ( "table1",
        [ Alcotest.test_case "paper shape" `Slow test_table1_shape ] );
      ( "table3",
        [ Alcotest.test_case "monotone counters" `Slow test_table3_monotone ] );
      ( "figure4",
        [
          Alcotest.test_case "summary math" `Quick test_figure4_summary_math;
          Alcotest.test_case "bug-consistency detection" `Quick
            test_figure4_bug_consistency_detection;
          Alcotest.test_case "small run" `Slow test_figure4_small_run;
        ] );
      ( "table2",
        [
          Alcotest.test_case "signs" `Quick test_table2_sign;
          Alcotest.test_case "if-convert ablation" `Slow
            test_table2_if_convert_ablation;
        ] );
      ( "report",
        [ Alcotest.test_case "fmt_int" `Quick test_report_fmt_int ] );
    ]
