(** Compiler fuzzing: generate random well-typed MiniC programs and check
    that all four optimization levels agree with the -O0 oracle on random
    inputs (Csmith-style differential testing, scaled to MiniC).

    Programs are built from integer arithmetic, bounded loops, arrays with
    in-bounds indices, function calls and I/O intrinsics, so every generated
    program is trap-free by construction except for division (always guarded
    by [| 1]). *)

module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline

(* ------------- program generator ------------- *)

type genv = {
  buf : Buffer.t;
  mutable indent : int;
  mutable vars : string list;       (* in-scope assignable int variables *)
  mutable rvars : string list;      (* read-only (loop counters) *)
  mutable arrays : (string * int) list;
  mutable fresh : int;
  rng : Random.State.t;
  mutable fuel : int;               (* bounds program size *)
}

let line g fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string g.buf (String.make (2 * g.indent) ' ');
      Buffer.add_string g.buf s;
      Buffer.add_char g.buf '\n')
    fmt

let fresh g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let pick g l = List.nth l (Random.State.int g.rng (List.length l))

let rec gen_expr g depth : string =
  let readable g = g.vars @ g.rvars in
  let leaf () =
    match Random.State.int g.rng 4 with
    | 0 when readable g <> [] -> pick g (readable g)
    | 1 -> string_of_int (Random.State.int g.rng 200 - 100)
    | 2 -> Printf.sprintf "__input(%d)" (Random.State.int g.rng 4)
    | _ -> (
        match g.arrays with
        | [] -> string_of_int (Random.State.int g.rng 64)
        | arrays ->
            let (a, n) = pick g arrays in
            (* in-bounds by masking with a power-of-two-minus-one < n *)
            let mask = if n >= 8 then 7 else if n >= 4 then 3 else 1 in
            let idx =
              if g.vars <> [] && Random.State.bool g.rng then pick g g.vars
              else Printf.sprintf "__input(%d)" (Random.State.int g.rng 4)
            in
            Printf.sprintf "%s[(%s) & %d]" a idx mask)
  in
  if depth = 0 || g.fuel <= 0 then leaf ()
  else begin
    g.fuel <- g.fuel - 1;
    match Random.State.int g.rng 10 with
    | 0 | 1 | 2 ->
        let op = pick g [ "+"; "-"; "*"; "&"; "|"; "^" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 3 ->
        (* guarded division: divisor forced nonzero *)
        let op = pick g [ "/"; "%" ] in
        Printf.sprintf "(%s %s ((%s) | 1))" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 4 ->
        let op = pick g [ "<"; ">"; "<="; ">="; "=="; "!=" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 5 ->
        let op = pick g [ "&&"; "||" ] in
        Printf.sprintf "(%s %s %s)" (gen_expr g (depth - 1)) op
          (gen_expr g (depth - 1))
    | 6 ->
        Printf.sprintf "(%s ? %s : %s)" (gen_expr g (depth - 1))
          (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 ->
        (* bounded shift *)
        Printf.sprintf "(%s %s ((%s) & 15))" (gen_expr g (depth - 1))
          (pick g [ "<<"; ">>" ])
          (gen_expr g (depth - 1))
    | 8 -> Printf.sprintf "(-(%s))" (gen_expr g (depth - 1))
    | _ -> Printf.sprintf "(!(%s))" (gen_expr g (depth - 1))
  end

let rec gen_stmt g depth =
  if g.fuel <= 0 then ()
  else begin
    g.fuel <- g.fuel - 1;
    match Random.State.int g.rng 11 with
    | 0 | 1 ->
        let v = fresh g "v" in
        line g "int %s = %s;" v (gen_expr g 2);
        g.vars <- v :: g.vars
    | 2 when g.vars <> [] ->
        line g "%s %s= %s;" (pick g g.vars)
          (pick g [ ""; "+"; "-"; "^"; "&"; "|" ])
          (gen_expr g 2)
    | 3 when depth > 0 ->
        line g "if (%s) {" (gen_expr g 2);
        g.indent <- g.indent + 1;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 3);
        g.indent <- g.indent - 1;
        if Random.State.bool g.rng then begin
          line g "} else {";
          g.indent <- g.indent + 1;
          gen_block g (depth - 1) (1 + Random.State.int g.rng 2);
          g.indent <- g.indent - 1
        end;
        line g "}"
    | 4 when depth > 0 ->
        (* bounded counted loop *)
        let i = fresh g "i" in
        let n = 1 + Random.State.int g.rng 6 in
        line g "for (int %s = 0; %s < %d; %s++) {" i i n i;
        g.indent <- g.indent + 1;
        let saved = g.rvars in
        (* readable but never assignable: generated loops terminate *)
        g.rvars <- i :: g.rvars;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 3);
        g.rvars <- saved;
        g.indent <- g.indent - 1;
        line g "}"
    | 5 when g.arrays <> [] ->
        let (a, n) = pick g g.arrays in
        let mask = if n >= 8 then 7 else if n >= 4 then 3 else 1 in
        line g "%s[(%s) & %d] = %s;" a (gen_expr g 1) mask (gen_expr g 2)
    | 6 ->
        line g "__output((%s) & 0xff);" (gen_expr g 2)
    | 7 when depth > 0 && g.vars <> [] ->
        (* while loop with a guaranteed-decreasing counter *)
        let c = fresh g "c" in
        line g "int %s = (%s) & 7;" c (gen_expr g 1);
        line g "while (%s > 0) {" c;
        g.indent <- g.indent + 1;
        gen_block g (depth - 1) (1 + Random.State.int g.rng 2);
        line g "%s--;" c;
        g.indent <- g.indent - 1;
        line g "}"
    | 8 ->
        let a = fresh g "arr" in
        let n = pick g [ 2; 4; 8 ] in
        line g "int %s[%d] = {%s};" a n
          (String.concat ", "
             (List.init n (fun _ -> string_of_int (Random.State.int g.rng 100))));
        g.arrays <- (a, n) :: g.arrays
    | _ when g.vars <> [] ->
        line g "%s = %s;" (pick g g.vars) (gen_expr g 3)
    | _ -> line g "__output('.');"
  end

and gen_block g depth count =
  (* blocks open a scope: declarations inside must not leak out *)
  let saved_vars = g.vars and saved_arrays = g.arrays in
  for _ = 1 to count do gen_stmt g depth done;
  g.vars <- saved_vars;
  g.arrays <- saved_arrays

let gen_function g name =
  line g "int %s(int p0, int p1) {" name;
  g.indent <- g.indent + 1;
  let saved_vars = g.vars and saved_arrays = g.arrays in
  let saved_rvars = g.rvars in
  g.vars <- [ "p0"; "p1" ];
  g.rvars <- [];
  g.arrays <- [];
  gen_block g 2 (2 + Random.State.int g.rng 4);
  line g "return %s;" (gen_expr g 2);
  g.vars <- saved_vars;
  g.rvars <- saved_rvars;
  g.arrays <- saved_arrays;
  g.indent <- g.indent - 1;
  line g "}"

let gen_program seed : string =
  let g =
    {
      buf = Buffer.create 1024;
      indent = 0;
      vars = [];
      rvars = [];
      arrays = [];
      fresh = 0;
      rng = Random.State.make [| seed |];
      fuel = 120;
    }
  in
  (* a couple of helper functions main can call *)
  let helpers =
    List.init (Random.State.int g.rng 3) (fun i -> Printf.sprintf "helper%d" i)
  in
  List.iter (fun h -> gen_function g h) helpers;
  line g "int main(void) {";
  g.indent <- 1;
  line g "int acc = 0;";
  g.vars <- [ "acc" ];
  gen_block g 3 (4 + Random.State.int g.rng 6);
  List.iter
    (fun h ->
      line g "acc += %s(%s, %s);" h (gen_expr g 1) (gen_expr g 1))
    helpers;
  line g "return acc & 0xff;";
  g.indent <- 0;
  line g "}";
  Buffer.contents g.buf

(* ------------- the differential property ------------- *)

let check_program seed =
  let src = gen_program seed in
  let m0 =
    try Frontend.compile_source src
    with Frontend.Compile_error msg ->
      QCheck2.Test.fail_reportf "seed %d: generated invalid program: %s\n%s"
        seed msg src
  in
  let compiled =
    List.map
      (fun level ->
        let r = Pipeline.optimize level m0 in
        List.iter Overify_ir.Verify.check_exn r.Pipeline.modul.Overify_ir.Ir.funcs;
        (level.Costmodel.name, r.Pipeline.modul))
      Costmodel.all
  in
  let inputs =
    [ ""; "a"; "\000\255"; "zz9 ";
      String.init 4 (fun i -> Char.chr (((seed * 31) + (i * 77)) land 0xff)) ]
  in
  List.for_all
    (fun input ->
      match compiled with
      | [] -> true
      | (_, m0) :: rest ->
          let r0 = Interp.run ~fuel:2_000_000 m0 ~input in
          (* speculation can make -OVERIFY execute more instructions than
             -O0; only compare runs comfortably inside the budget *)
          if r0.Interp.trap = Some Interp.Out_of_fuel || r0.Interp.insts > 500_000
          then true
          else
          List.for_all
            (fun (name, m) ->
              let r = Interp.run ~fuel:5_000_000 m ~input in
              if
                r.Interp.exit_code <> r0.Interp.exit_code
                || r.Interp.output <> r0.Interp.output
                || (r.Interp.trap <> None) <> (r0.Interp.trap <> None)
              then
                QCheck2.Test.fail_reportf
                  "seed %d input %S: %s disagrees with -O0\n\
                   exit %Ld vs %Ld; out %S vs %S\n\
                   --- program ---\n%s"
                  seed input name r0.Interp.exit_code r.Interp.exit_code
                  r0.Interp.output r.Interp.output (gen_program seed)
              else true)
            rest)
    inputs

let fuzz_differential =
  QCheck2.Test.make ~name:"random programs agree across all levels" ~count:60
    QCheck2.Gen.(int_range 1 1_000_000)
    check_program

(* symbolic soundness on random programs: every path witness replays *)
let fuzz_symex_soundness =
  QCheck2.Test.make ~name:"random programs: symex witnesses replay" ~count:15
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let src = gen_program seed in
      let m0 = Frontend.compile_source src in
      let m =
        (Pipeline.optimize Costmodel.overify m0).Pipeline.modul
      in
      let r =
        Overify_symex.Engine.run
          ~config:
            { Overify_symex.Engine.default_config with
              input_size = 2; timeout = 10.0; max_paths = 300 }
          m
      in
      List.for_all
        (fun (input, code) ->
          let rr = Interp.run ~fuel:2_000_000 m ~input in
          if rr.Interp.trap = None && rr.Interp.exit_code <> code then
            QCheck2.Test.fail_reportf
              "seed %d: witness %S predicted exit %Ld, concrete run gave %Ld\n%s"
              seed input code rr.Interp.exit_code src
          else true)
        r.Overify_symex.Engine.exit_codes)

(* symex differential mode: a generated (trap-free) program is explored
   sequentially and in parallel; for complete runs the two must agree
   exactly, and every witness from either exploration must replay through
   the concrete interpreter with the predicted exit code — symbolic
   execution checked against the interpreter as an oracle *)
let fuzz_symex_differential =
  QCheck2.Test.make ~name:"random programs: dfs = parallel, witnesses replay"
    ~count:10
    QCheck2.Gen.(int_range 100_001 200_000)
    (fun seed ->
      let src = gen_program seed in
      let m0 = Frontend.compile_source src in
      let m = (Pipeline.optimize Costmodel.overify m0).Pipeline.modul in
      let explore searcher =
        Overify_symex.Engine.run
          ~config:
            { Overify_symex.Engine.default_config with
              input_size = 2; timeout = 10.0; max_paths = 300; searcher }
          m
      in
      let seq = explore `Dfs in
      let par = explore (`Parallel 2) in
      let open Overify_symex.Engine in
      if seq.complete && par.complete then begin
        if seq.paths <> par.paths then
          QCheck2.Test.fail_reportf
            "seed %d: dfs found %d paths, parallel %d\n%s" seed seq.paths
            par.paths src;
        if seq.exit_codes <> par.exit_codes then
          QCheck2.Test.fail_reportf
            "seed %d: dfs and parallel disagree on exit codes\n%s" seed src;
        if seq.bugs <> par.bugs then
          QCheck2.Test.fail_reportf
            "seed %d: dfs and parallel disagree on bugs\n%s" seed src;
        if seq.blocks_covered <> par.blocks_covered then
          QCheck2.Test.fail_reportf
            "seed %d: dfs covered %d blocks, parallel %d\n%s" seed
            seq.blocks_covered par.blocks_covered src
      end;
      List.for_all
        (fun (input, code) ->
          let rr = Interp.run ~fuel:2_000_000 m ~input in
          if rr.Interp.trap = None && rr.Interp.exit_code <> code then
            QCheck2.Test.fail_reportf
              "seed %d: parallel witness %S predicted exit %Ld, concrete \
               run gave %Ld\n%s"
              seed input code rr.Interp.exit_code src
          else true)
        (seq.exit_codes @ par.exit_codes))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [ QCheck_alcotest.to_alcotest fuzz_differential ] );
      ( "symex soundness",
        [ QCheck_alcotest.to_alcotest fuzz_symex_soundness ] );
      ( "symex differential",
        [ QCheck_alcotest.to_alcotest fuzz_symex_differential ] );
    ]
