(** Compiler fuzzing: generate random well-typed MiniC programs (via the
    shared {!Fuzzgen} generator) and check that all four optimization
    levels agree with the -O0 oracle on random inputs (Csmith-style
    differential testing, scaled to MiniC).

    Failures are shrunk before reporting (greedy statement/region deletion
    plus literal simplification, see {!shrink_program}), and a
    translation-validation mode proves each pass application sound with the
    symbolic engine — set OVERIFY_TV=1 for the wide sweep. *)

module Frontend = Overify_minic.Frontend
module Interp = Overify_interp.Interp
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline

let gen_program = Fuzzgen.gen_program

(* ------------- the differential property ------------- *)

type mismatch = {
  mm_level : string;
  mm_input : string;
  mm_exit0 : int64;
  mm_exit : int64;
  mm_out0 : string;
  mm_out : string;
}

let inputs_for seed =
  [ ""; "a"; "\000\255"; "zz9 ";
    String.init 4 (fun i -> Char.chr (((seed * 31) + (i * 77)) land 0xff)) ]

(** Compile [src] at every level and run each against the -O0 oracle on
    [inputs]; the first disagreement found, if any.  Raises
    [Frontend.Compile_error] on an invalid program. *)
let find_mismatch ~inputs src : mismatch option =
  let m0 = Frontend.compile_source src in
  let compiled =
    List.map
      (fun level ->
        let r = Pipeline.optimize level m0 in
        List.iter Overify_ir.Verify.check_exn r.Pipeline.modul.Overify_ir.Ir.funcs;
        (level.Costmodel.name, r.Pipeline.modul))
      Costmodel.all
  in
  match compiled with
  | [] -> None
  | (_, base) :: rest ->
      List.find_map
        (fun input ->
          let r0 = Interp.run ~fuel:2_000_000 base ~input in
          (* speculation can make -OVERIFY execute more instructions than
             -O0; only compare runs comfortably inside the budget *)
          if r0.Interp.trap = Some Interp.Out_of_fuel || r0.Interp.insts > 500_000
          then None
          else
            List.find_map
              (fun (name, m) ->
                let r = Interp.run ~fuel:5_000_000 m ~input in
                if
                  r.Interp.exit_code <> r0.Interp.exit_code
                  || r.Interp.output <> r0.Interp.output
                  || (r.Interp.trap <> None) <> (r0.Interp.trap <> None)
                then
                  Some
                    {
                      mm_level = name;
                      mm_input = input;
                      mm_exit0 = r0.Interp.exit_code;
                      mm_exit = r.Interp.exit_code;
                      mm_out0 = r0.Interp.output;
                      mm_out = r.Interp.output;
                    }
                else None)
              rest)
        inputs

(* ------------- counterexample shrinker ------------- *)

(* When the differential property fails, the generated program is usually a
   page of irrelevant arithmetic around a two-line bug.  Before reporting,
   greedily delete statements (single brace-balanced lines, or whole
   brace-delimited regions) and simplify integer literals to 0, keeping any
   candidate that still compiles and still reproduces a mismatch on the same
   seed-derived inputs. *)

let split_lines s = String.split_on_char '\n' s

let brace_delta line =
  String.fold_left
    (fun d c -> match c with '{' -> d + 1 | '}' -> d - 1 | _ -> d)
    0 line

(** Candidate deletions: a brace-neutral line alone, or an opening line
    together with everything through its matching close. *)
let deletion_regions lines =
  let n = Array.length lines in
  let regions = ref [] in
  for i = 0 to n - 1 do
    let d = brace_delta lines.(i) in
    if d = 0 then regions := (i, i) :: !regions
    else if d > 0 then begin
      let depth = ref d and j = ref (i + 1) in
      while !depth > 0 && !j < n do
        depth := !depth + brace_delta lines.(!j);
        if !depth > 0 then incr j
      done;
      if !depth = 0 && !j < n then regions := (i, !j) :: !regions
    end
  done;
  List.rev !regions

let drop_region lines (i, j) =
  Array.to_list lines
  |> List.filteri (fun k _ -> k < i || k > j)
  |> String.concat "\n"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

(** Greedy shrink loop, bounded by total compile attempts so a stubborn
    counterexample cannot stall the suite. *)
let shrink_program ~reproduces src =
  let attempts = ref 0 in
  let max_attempts = 400 in
  let try_candidate cand =
    incr attempts;
    !attempts <= max_attempts && reproduces cand
  in
  (* phase 1: delete statements and whole regions, largest first *)
  let cur = ref src in
  let progress = ref true in
  while !progress && !attempts < max_attempts do
    progress := false;
    let lines = Array.of_list (split_lines !cur) in
    let regions =
      List.sort
        (fun (i1, j1) (i2, j2) -> compare (j2 - i2) (j1 - i1))
        (deletion_regions lines)
    in
    (try
       List.iter
         (fun r ->
           let cand = drop_region lines r in
           if cand <> !cur && try_candidate cand then begin
             cur := cand;
             progress := true;
             raise Exit
           end)
         regions
     with Exit -> ())
  done;
  (* phase 2: rewrite decimal literals to 0 where the bug survives *)
  let i = ref 0 in
  while !i < String.length !cur && !attempts < max_attempts do
    let s = !cur in
    if
      s.[!i] >= '0' && s.[!i] <= '9'
      && ((!i = 0) || not (is_ident_char s.[!i - 1]))
    then begin
      let j = ref !i in
      while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if String.sub s !i (!j - !i) <> "0" then begin
        let cand =
          String.sub s 0 !i ^ "0" ^ String.sub s !j (String.length s - !j)
        in
        if try_candidate cand then begin
          cur := cand;
          incr i
        end
        else i := !j
      end
      else i := !j
    end
    else incr i
  done;
  !cur

(* shrinker self-test: inject a silent miscompilation through the pipeline's
   fault-injection hook and check the minimizer strips the noise while the
   bug keeps reproducing *)

module I = Overify_ir.Ir

let flip_first_add (fn : I.func) : I.func =
  let flipped = ref false in
  let blocks =
    List.map
      (fun (b : I.block) ->
        {
          b with
          I.insts =
            List.map
              (fun i ->
                match i with
                | I.Bin (d, I.Add, ty, a, v) when not !flipped ->
                    flipped := true;
                    I.Bin (d, I.Sub, ty, a, v)
                | i -> i)
              b.I.insts;
        })
      fn.I.blocks
  in
  { fn with I.blocks }

let test_shrinker_minimizes () =
  let src =
    String.concat "\n"
      [
        "int dead(int p0, int p1) {";
        "  int w = p0 * 3;";
        "  return w * p1;";
        "}";
        "int main(void) {";
        "  int a = __input(0);";
        "  int junk = 5;";
        "  junk = junk * 3;";
        "  __output(junk & 0xff);";
        "  int r = a + 7;";
        "  return r & 0xff;";
        "}";
      ]
  in
  let inputs = [ "a"; "\005" ] in
  Fun.protect
    ~finally:(fun () -> Pipeline.sabotage := None)
    (fun () ->
      Pipeline.sabotage := Some ("constfold", flip_first_add);
      let reproduces s =
        match find_mismatch ~inputs s with
        | Some _ -> true
        | None | (exception _) -> false
      in
      Alcotest.(check bool) "sabotaged program mismatches" true (reproduces src);
      let small = shrink_program ~reproduces src in
      Alcotest.(check bool) "shrunk still reproduces" true (reproduces small);
      let n0 = List.length (split_lines src)
      and n1 = List.length (split_lines small) in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk from %d to %d lines" n0 n1)
        true (n1 < n0))

let check_program seed =
  let src = gen_program seed in
  let inputs = inputs_for seed in
  match
    try Ok (find_mismatch ~inputs src)
    with Frontend.Compile_error msg -> Error msg
  with
  | Error msg ->
      QCheck2.Test.fail_reportf "seed %d: generated invalid program: %s\n%s"
        seed msg src
  | Ok None -> true
  | Ok (Some mm) ->
      let reproduces s =
        match find_mismatch ~inputs s with
        | Some _ -> true
        | None | (exception _) -> false
      in
      let small = shrink_program ~reproduces src in
      let mm =
        match try find_mismatch ~inputs small with _ -> None with
        | Some m -> m
        | None -> mm
      in
      QCheck2.Test.fail_reportf
        "seed %d input %S: %s disagrees with -O0\n\
         exit %Ld vs %Ld; out %S vs %S\n\
         --- minimized program (%d -> %d lines; rerun with this seed) ---\n%s"
        seed mm.mm_input mm.mm_level mm.mm_exit0 mm.mm_exit mm.mm_out0
        mm.mm_out
        (List.length (split_lines src))
        (List.length (split_lines small))
        small

let fuzz_differential =
  QCheck2.Test.make ~name:"random programs agree across all levels" ~count:60
    QCheck2.Gen.(int_range 1 1_000_000)
    check_program

(* symbolic soundness on random programs: every path witness replays *)
let fuzz_symex_soundness =
  QCheck2.Test.make ~name:"random programs: symex witnesses replay" ~count:15
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let src = gen_program seed in
      let m0 = Frontend.compile_source src in
      let m =
        (Pipeline.optimize Costmodel.overify m0).Pipeline.modul
      in
      let r =
        Overify_symex.Engine.run
          ~config:
            { Overify_symex.Engine.default_config with
              input_size = 2; timeout = 10.0; max_paths = 300 }
          m
      in
      List.for_all
        (fun (input, code) ->
          let rr = Interp.run ~fuel:2_000_000 m ~input in
          if rr.Interp.trap = None && rr.Interp.exit_code <> code then
            QCheck2.Test.fail_reportf
              "seed %d: witness %S predicted exit %Ld, concrete run gave %Ld\n%s"
              seed input code rr.Interp.exit_code src
          else true)
        r.Overify_symex.Engine.exit_codes)

(* symex differential mode: a generated (trap-free) program is explored
   sequentially and in parallel; for complete runs the two must agree
   exactly, and every witness from either exploration must replay through
   the concrete interpreter with the predicted exit code — symbolic
   execution checked against the interpreter as an oracle *)
let fuzz_symex_differential =
  QCheck2.Test.make ~name:"random programs: dfs = parallel, witnesses replay"
    ~count:10
    QCheck2.Gen.(int_range 100_001 200_000)
    (fun seed ->
      let src = gen_program seed in
      let m0 = Frontend.compile_source src in
      let m = (Pipeline.optimize Costmodel.overify m0).Pipeline.modul in
      let explore searcher =
        Overify_symex.Engine.run
          ~config:
            { Overify_symex.Engine.default_config with
              input_size = 2; timeout = 10.0; max_paths = 300; searcher }
          m
      in
      let seq = explore `Dfs in
      let par = explore (`Parallel 2) in
      let open Overify_symex.Engine in
      if seq.complete && par.complete then begin
        if seq.paths <> par.paths then
          QCheck2.Test.fail_reportf
            "seed %d: dfs found %d paths, parallel %d\n%s" seed seq.paths
            par.paths src;
        if seq.exit_codes <> par.exit_codes then
          QCheck2.Test.fail_reportf
            "seed %d: dfs and parallel disagree on exit codes\n%s" seed src;
        if seq.bugs <> par.bugs then
          QCheck2.Test.fail_reportf
            "seed %d: dfs and parallel disagree on bugs\n%s" seed src;
        if seq.blocks_covered <> par.blocks_covered then
          QCheck2.Test.fail_reportf
            "seed %d: dfs covered %d blocks, parallel %d\n%s" seed
            seq.blocks_covered par.blocks_covered src
      end;
      List.for_all
        (fun (input, code) ->
          let rr = Interp.run ~fuel:2_000_000 m ~input in
          if rr.Interp.trap = None && rr.Interp.exit_code <> code then
            QCheck2.Test.fail_reportf
              "seed %d: parallel witness %S predicted exit %Ld, concrete \
               run gave %Ld\n%s"
              seed input code rr.Interp.exit_code src
          else true)
        (seq.exit_codes @ par.exit_codes))

(* translation-validation mode: every pass application on a generated
   program is proved (or differentially cross-checked) against its input
   with lib/tv's product construction.  The default run keeps a small slice
   at -OVERIFY so `dune runtest` stays fast; OVERIFY_TV=1 widens the sweep
   to more seeds at every level. *)

module Tv = Overify_tv.Tv

let tv_deep = Sys.getenv_opt "OVERIFY_TV" = Some "1"

let tv_budget =
  {
    Tv.default_budget with
    Tv.input_size = 2;
    max_paths = 200;
    max_insts = 300_000;
    timeout = 0.75;
    fallback_runs = 8;
  }

let tv_check_seed seed =
  let src = gen_program seed in
  let m0 = Frontend.compile_source src in
  let levels = if tv_deep then Costmodel.all else [ Costmodel.overify ] in
  List.for_all
    (fun (cm : Costmodel.t) ->
      let (_, report) = Tv.validate ~budget:tv_budget cm m0 in
      match Tv.first_offender report with
      | Some r ->
          QCheck2.Test.fail_reportf
            "seed %d @ %s: pass %s on %s miscompiles:\n%s\n--- program ---\n%s"
            seed cm.Costmodel.name r.Tv.pass r.Tv.fn
            (Tv.string_of_verdict r.Tv.outcome.Tv.verdict)
            src
      | None -> true)
    levels

let fuzz_translation_validation =
  QCheck2.Test.make
    ~name:
      (if tv_deep then
         "random programs: every pass application validates (all levels)"
       else "random programs: every pass application validates (slice)")
    ~count:(if tv_deep then 25 else 3)
    QCheck2.Gen.(int_range 200_001 300_000)
    tv_check_seed

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [ QCheck_alcotest.to_alcotest fuzz_differential ] );
      ( "symex soundness",
        [ QCheck_alcotest.to_alcotest fuzz_symex_soundness ] );
      ( "symex differential",
        [ QCheck_alcotest.to_alcotest fuzz_symex_differential ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes a sabotaged counterexample" `Quick
            test_shrinker_minimizes;
        ] );
      ( "translation validation",
        [ QCheck_alcotest.to_alcotest fuzz_translation_validation ] );
    ]
