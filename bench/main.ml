(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md §3 for the experiment index).

      dune exec bench/main.exe                 # everything, quick settings
      dune exec bench/main.exe -- table1 [-n N] [-t SECONDS]
      dune exec bench/main.exe -- table2
      dune exec bench/main.exe -- table3
      dune exec bench/main.exe -- figure4 [-n N] [-t SECONDS]
      dune exec bench/main.exe -- precision    # the 2.1 precision experiment
      dune exec bench/main.exe -- parallel [-n N] [-t SECONDS] [-j JOBS]
      dune exec bench/main.exe -- solve [-n N] [-t SECONDS] [-p PROGRAM] [-o FILE]
      dune exec bench/main.exe -- summary [-n N] [-t SECONDS] [-p PROGRAM] [-o FILE]
      dune exec bench/main.exe -- validate [-n N] [-t SECONDS]
      dune exec bench/main.exe -- profile [-n N] [-t SECONDS]
      dune exec bench/main.exe -- bechamel     # micro-benchmarks
      dune exec bench/main.exe -- diff OLD.json NEW.json [-t FRACTION]

    Absolute numbers will differ from the paper (our substrate is a
    simulator, their testbed was KLEE+STP on x86); the shapes — who wins,
    by what order of magnitude, where the trade-off flips — are the
    reproduction target.  EXPERIMENTS.md records paper-vs-measured. *)

module H = Overify_harness

let parse_flags args =
  let n = ref None and t = ref None in
  let rec go = function
    | "-n" :: v :: rest -> n := Some (int_of_string v); go rest
    | "-t" :: v :: rest -> t := Some (float_of_string v); go rest
    | _ :: rest -> go rest
    | [] -> ()
  in
  go args;
  (!n, !t)

let parse_jobs args =
  let rec go = function
    | "-j" :: v :: rest -> (match int_of_string_opt v with Some j -> Some j | None -> go rest)
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

let run_table1 args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:4 in
  let timeout = Option.value t ~default:60.0 in
  ignore (H.Table1.print ~input_size ~timeout ());
  (* the paper emphasizes scaling: show a small sweep of input sizes *)
  match H.Table1.wc () with
  | Error msg -> Printf.printf "scaling sweep skipped: %s\n" msg
  | Ok wc when not (List.mem "-n" args) ->
    H.Report.section "Table 1 (scaling): paths by symbolic input size";
    let sizes = [ 2; 3; 4; 5 ] in
    let rows =
      List.map
        (fun (cm : Overify_opt.Costmodel.t) ->
          cm.Overify_opt.Costmodel.name
          :: List.map
               (fun sz ->
                 let c = H.Experiment.compile cm wc in
                 let v = H.Experiment.verify ~input_size:sz ~timeout:30.0 c in
                 Printf.sprintf "%d%s" v.Overify_symex.Engine.paths
                   (if v.Overify_symex.Engine.complete then "" else "+"))
               sizes)
        Overify_opt.Costmodel.all
    in
    H.Report.table
      (("level" :: List.map (fun sz -> Printf.sprintf "n=%d" sz) sizes) :: rows);
    print_endline "('+' = budget exhausted before full exploration)"
  | Ok _ -> ()

let run_table2 args =
  let (n, t) = parse_flags args in
  ignore (H.Table2.print ?timeout:t ~input_size:(Option.value n ~default:4) ())

let run_table3 _args = ignore (H.Table3.print ())

let run_figure4 args =
  let (n, t) = parse_flags args in
  ignore
    (H.Figure4.print
       ~input_size:(Option.value n ~default:5)
       ~timeout:(Option.value t ~default:10.0)
       ())

let run_precision _args = ignore (H.Precision.print ())

(* ---- seq-vs-parallel symbolic-execution benchmark ----

   For every corpus program (compiled at OVERIFY), explore once with the
   sequential DFS searcher and once with [`Parallel jobs], report the
   wall-clock speedup, and check the determinism contract (identical paths,
   exit codes, bugs and coverage for complete runs).  Rows are also written
   to BENCH_symex_parallel.json for machine consumption. *)

let run_parallel args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:4 in
  let timeout = Option.value t ~default:30.0 in
  let jobs = Option.value (parse_jobs args) ~default:4 in
  H.Report.section
    (Printf.sprintf
       "Symbolic execution: sequential vs %d worker domains (n=%d bytes)" jobs
       input_size);
  let level = Overify_opt.Costmodel.overify in
  let measurements =
    List.map
      (fun (p : Overify_corpus.Programs.t) ->
        let c = H.Experiment.compile level p in
        let m = H.Experiment.measure_parallel ~input_size ~timeout ~jobs c in
        (p.Overify_corpus.Programs.name, m))
      Overify_corpus.Programs.programs
  in
  let rows =
    [
      "program"; "paths"; "t_seq (ms)"; "t_par (ms)"; "speedup";
      "deterministic"; "complete";
    ]
    :: List.map
         (fun (name, (m : H.Experiment.parallel_measurement)) ->
           [
             name;
             string_of_int m.H.Experiment.seq.Overify_symex.Engine.paths;
             H.Report.ms m.H.Experiment.seq.Overify_symex.Engine.time;
             H.Report.ms m.H.Experiment.par.Overify_symex.Engine.time;
             Printf.sprintf "%.2fx" m.H.Experiment.speedup;
             string_of_bool m.H.Experiment.deterministic;
             string_of_bool
               (m.H.Experiment.seq.Overify_symex.Engine.complete
               && m.H.Experiment.par.Overify_symex.Engine.complete);
           ])
         measurements
  in
  H.Report.table rows;
  Printf.printf
    "(speedup = t_seq / t_par at %d domains; this host exposes %d core(s))\n"
    jobs (Domain.recommended_domain_count ());
  let json_row (name, (m : H.Experiment.parallel_measurement)) =
    Printf.sprintf
      "  {\"program\": %S, \"jobs\": %d, \"t_seq_s\": %.6f, \"t_par_s\": \
       %.6f, \"speedup\": %.3f, \"paths\": %d, \"deterministic\": %b, \
       \"complete\": %b}"
      name m.H.Experiment.jobs
      m.H.Experiment.seq.Overify_symex.Engine.time
      m.H.Experiment.par.Overify_symex.Engine.time m.H.Experiment.speedup
      m.H.Experiment.seq.Overify_symex.Engine.paths
      m.H.Experiment.deterministic
      (m.H.Experiment.seq.Overify_symex.Engine.complete
      && m.H.Experiment.par.Overify_symex.Engine.complete)
  in
  let path = "BENCH_symex_parallel.json" in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "[\n%s\n]\n"
        (String.concat ",\n" (List.map json_row measurements)));
  Printf.printf "wrote %s\n" path

(* ---- verification-profile sweep: profile every corpus program at -O0 and
   -OVERIFY with cost attribution on and report each program's hottest
   function at both levels — the per-function view of Table 1's speedups.
   Full reports go to BENCH_profile.json. ---- *)

let run_profile args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:3 in
  let timeout = Option.value t ~default:30.0 in
  H.Report.section
    (Printf.sprintf
       "Verification profile: hottest function at -O0 vs -OVERIFY (n=%d \
        bytes)" input_size);
  let levels = [ Overify_opt.Costmodel.o0; Overify_opt.Costmodel.overify ] in
  let profiles =
    List.map
      (fun (p : Overify_corpus.Programs.t) ->
        List.map
          (fun level ->
            H.Profile.profile ~program:p.Overify_corpus.Programs.name ~level
              ~input_size ~timeout p.Overify_corpus.Programs.source)
          levels)
      Overify_corpus.Programs.programs
  in
  let hot (pr : H.Profile.t) =
    match pr.H.Profile.funcs with
    | f :: _ ->
        Printf.sprintf "%s (%d queries, %s insts)" f.H.Profile.fr_fn
          f.H.Profile.fr_queries
          (H.Report.fmt_int f.H.Profile.fr_insts)
    | [] -> "-"
  in
  let rows =
    [ "program"; "hottest @ -O0"; "hottest @ -OVERIFY"; "solver -O0 (ms)";
      "solver -OVERIFY (ms)" ]
    :: List.map
         (fun prs ->
           match prs with
           | [ p0; pv ] ->
               [
                 p0.H.Profile.program;
                 hot p0;
                 hot pv;
                 H.Report.ms p0.H.Profile.result.Overify_symex.Engine.solver_time;
                 H.Report.ms pv.H.Profile.result.Overify_symex.Engine.solver_time;
               ]
           | _ -> assert false)
         profiles
  in
  H.Report.table rows;
  let path = "BENCH_profile.json" in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "[\n%s\n]\n"
        (String.concat ",\n"
           (List.map (fun p -> H.Profile.to_json p) (List.concat profiles))));
  Printf.printf "wrote %s (full per-function/per-block reports)\n" path

(* ---- solver acceleration benchmark: every corpus program at -O0/-O3/
   -OVERIFY is explored twice, once with the solver reuse layers off and
   once on.  The determinism contract requires byte-identical verdicts
   (paths, exit codes, bugs, coverage) — any disagreement is a hard failure
   (exit 1).  The interesting numbers are the raw blast+SAT invocations
   saved and where each layer's hits came from.  A final persistent-store
   round trip (same exploration twice against a temp --cache-dir) shows
   cross-run reuse.  Rows go to BENCH_solver.json. ---- *)

let run_solve args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:4 in
  let timeout = Option.value t ~default:30.0 in
  let flag name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let only = flag "-p" in
  let out = Option.value (flag "-o") ~default:"BENCH_solver.json" in
  let programs =
    match only with
    | None -> Overify_corpus.Programs.programs
    | Some name -> (
        match Overify_corpus.Programs.find name with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "bench solve: unknown corpus program %S\n" name;
            exit 2)
  in
  let module E = Overify_symex.Engine in
  H.Report.section
    (Printf.sprintf
       "Solver acceleration: reuse layers off vs on (n=%d bytes)" input_size);
  let levels =
    [ Overify_opt.Costmodel.o0; Overify_opt.Costmodel.o3;
      Overify_opt.Costmodel.overify ]
  in
  let failures = ref 0 in
  let measurements =
    List.concat_map
      (fun (p : Overify_corpus.Programs.t) ->
        List.map
          (fun (level : Overify_opt.Costmodel.t) ->
            let c = H.Experiment.compile level p in
            let off =
              H.Experiment.verify ~input_size ~timeout
                ~solver_cache:false c
            in
            let on =
              H.Experiment.verify ~input_size ~timeout
                ~solver_cache:true c
            in
            (* byte-identical verdicts are only promised for complete runs:
               a wall-clock timeout truncates the faster (cached) run at a
               different point than the slower one *)
            let comparable = off.E.complete && on.E.complete in
            let agree =
              (not comparable)
              || off.E.paths = on.E.paths
                 && off.E.exit_codes = on.E.exit_codes
                 && off.E.bugs = on.E.bugs
                 && off.E.blocks_covered = on.E.blocks_covered
            in
            if not agree then begin
              incr failures;
              Printf.eprintf
                "bench solve: VERDICT MISMATCH for %s at %s (cache off vs \
                 on)\n"
                p.Overify_corpus.Programs.name
                level.Overify_opt.Costmodel.name
            end;
            let hits =
              on.E.cache_hits + on.E.hits_canon + on.E.hits_subset
              + on.E.hits_superset + on.E.hits_store
            in
            (* in single-program mode (the CI smoke) zero hits is a hard
               failure; over the full corpus it is reported but legal —
               a program whose every query is a distinct single-component
               conjunction (the executor's own model fast path already
               absorbed the reusable ones) has nothing for the chain to
               reuse *)
            if hits = 0 && on.E.queries > 0 && only <> None then begin
              incr failures;
              Printf.eprintf
                "bench solve: zero acceleration hits for %s at %s (%d \
                 queries)\n"
                p.Overify_corpus.Programs.name
                level.Overify_opt.Costmodel.name on.E.queries
            end;
            (p.Overify_corpus.Programs.name,
             level.Overify_opt.Costmodel.name, off, on, agree))
          levels)
      programs
  in
  let rows =
    [ "program"; "level"; "queries"; "components"; "solves off"; "solves on";
      "saved"; "exact"; "canon"; "subset"; "superset"; "agree" ]
    :: List.map
         (fun (name, lvl, (off : E.result), (on : E.result), agree) ->
           [
             name; lvl;
             string_of_int on.E.queries;
             string_of_int on.E.components;
             string_of_int off.E.component_solves;
             string_of_int on.E.component_solves;
             string_of_int (off.E.component_solves - on.E.component_solves);
             string_of_int on.E.hits_exact;
             string_of_int on.E.hits_canon;
             string_of_int on.E.hits_subset;
             string_of_int on.E.hits_superset;
             string_of_bool agree;
           ])
         measurements
  in
  H.Report.table rows;
  print_endline
    "(saved = raw blast+SAT invocations the reuse layers avoided; verdicts \
     are byte-identical by contract)";
  let total f =
    List.fold_left (fun acc (_, _, off, on, _) -> acc + f off on) 0 measurements
  in
  let saved = total (fun (off : E.result) (on : E.result) ->
      off.E.component_solves - on.E.component_solves)
  and hits = total (fun _ (on : E.result) ->
      on.E.cache_hits + on.E.hits_canon + on.E.hits_subset
      + on.E.hits_superset + on.E.hits_store)
  in
  Printf.printf "total: %d raw solves saved, %d layer hits\n" saved hits;
  if hits = 0 then begin
    incr failures;
    prerr_endline "bench solve: the acceleration chain produced no hits at all"
  end;
  (* persistent-store round trip: the same exploration twice against one
     cache directory — the second run answers from the store *)
  let tmp = Filename.temp_file "overify_bench_store" "" in
  let dir = tmp ^ ".d" in
  let store_demo =
    match programs with
    | [] -> None
    | p :: _ ->
        let c = H.Experiment.compile Overify_opt.Costmodel.overify p in
        let cold =
          H.Experiment.verify ~input_size ~timeout ~solver_cache:true
            ~cache_dir:dir c
        in
        let warm =
          H.Experiment.verify ~input_size ~timeout ~solver_cache:true
            ~cache_dir:dir c
        in
        if warm.E.hits_store = 0 && warm.E.queries > 0 then begin
          incr failures;
          Printf.eprintf
            "bench solve: persistent store produced no hits on a warm \
             re-run of %s\n"
            p.Overify_corpus.Programs.name
        end;
        Printf.printf
          "store round-trip (%s @ -OVERIFY): cold solves=%d, warm solves=%d \
           (store hits=%d)\n"
          p.Overify_corpus.Programs.name cold.E.component_solves
          warm.E.component_solves warm.E.hits_store;
        Some (p.Overify_corpus.Programs.name, cold, warm)
  in
  (if Sys.file_exists dir && Sys.is_directory dir then
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir));
  (try Sys.rmdir dir with Sys_error _ -> ());
  (try Sys.remove tmp with Sys_error _ -> ());
  let json_row (name, lvl, (off : E.result), (on : E.result), agree) =
    Printf.sprintf
      "  {\"program\": %S, \"level\": %S, \"queries\": %d, \"components\": \
       %d, \"component_solves_off\": %d, \"component_solves_on\": %d, \
       \"cache_hits\": %d, \"hits_exact\": %d, \"hits_canon\": %d, \
       \"hits_subset\": %d, \"hits_superset\": %d, \"hits_store\": %d, \
       \"solver_ms_off\": %.3f, \"solver_ms_on\": %.3f, \"agree\": %b}"
      name lvl on.E.queries on.E.components off.E.component_solves
      on.E.component_solves on.E.cache_hits on.E.hits_exact on.E.hits_canon
      on.E.hits_subset on.E.hits_superset on.E.hits_store
      (off.E.solver_time *. 1000.) (on.E.solver_time *. 1000.) agree
  in
  let store_json =
    match store_demo with
    | None -> ""
    | Some (name, cold, warm) ->
        Printf.sprintf
          ",\n  {\"store_round_trip\": %S, \"cold_solves\": %d, \
           \"warm_solves\": %d, \"warm_store_hits\": %d}"
          name cold.E.component_solves warm.E.component_solves
          warm.E.hits_store
  in
  Out_channel.with_open_text out (fun oc ->
      Printf.fprintf oc "[\n%s%s\n]\n"
        (String.concat ",\n" (List.map json_row measurements))
        store_json);
  Printf.printf "wrote %s\n" out;
  if !failures > 0 then exit 1

(* ---- compositional-summary benchmark: every corpus program at -O0 and
   -OVERIFY is verified three times with summaries on against one persistent
   store — cold (store empty, every summary built), warm (same binary,
   every summary answered from the store) and edited (one libc helper gets
   a semantically neutral edit, so only its callgraph cone is rebuilt and
   everything outside it cache-hits).  The incremental contract is asserted:
   warm recomputes nothing, the edited run rebuilds a strict subset of the
   cold run's summaries, and (for complete runs) re-verifies strictly fewer
   instructions than cold.  Rows go to BENCH_summary.json. ---- *)

let run_summary args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:3 in
  let timeout = Option.value t ~default:30.0 in
  let flag name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let only = flag "-p" in
  let out = Option.value (flag "-o") ~default:"BENCH_summary.json" in
  let programs =
    match only with
    | None -> Overify_corpus.Programs.programs
    | Some name -> (
        match Overify_corpus.Programs.find name with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "bench summary: unknown corpus program %S\n" name;
            exit 2)
  in
  let module E = Overify_symex.Engine in
  let module Sum = Overify_summary.Summary in
  H.Report.section
    (Printf.sprintf
       "Compositional summaries: cold vs warm vs one-function-edited (n=%d \
        bytes)" input_size);
  let levels = [ Overify_opt.Costmodel.o0; Overify_opt.Costmodel.overify ] in
  let failures = ref 0 in
  (* edit the first candidate whose callgraph cone contains a second
     candidate (so the edited run demonstrably rebuilds the cone and
     cache-hits outside it); a leaf nobody calls is the fallback *)
  let pick_edit m cands =
    let fps0 = Sum.fingerprints m in
    let cone_of fn =
      let fps1 = Sum.fingerprints (Sum.edit_function m fn) in
      List.filter
        (fun c -> Hashtbl.find_opt fps0 c <> Hashtbl.find_opt fps1 c)
        cands
    in
    match cands with
    | [] -> None
    | first :: _ ->
        let rec go = function
          | [] -> Some (first, cone_of first)
          | fn :: rest ->
              let cone = cone_of fn in
              if List.length cone >= 2 then Some (fn, cone) else go rest
        in
        go cands
  in
  let measurements =
    List.concat_map
      (fun (p : Overify_corpus.Programs.t) ->
        List.filter_map
          (fun (level : Overify_opt.Costmodel.t) ->
            let c = H.Experiment.compile level p in
            let cands = Sum.candidates c.H.Experiment.modul in
            match pick_edit c.H.Experiment.modul cands with
            | None -> None  (* nothing summarizable: nothing to measure *)
            | Some (edit_fn, cone) ->
                let tmp = Filename.temp_file "overify_bench_summary" "" in
                let dir = tmp ^ ".d" in
                let verify m =
                  H.Experiment.verify ~input_size ~timeout ~summaries:true
                    ~cache_dir:dir { c with H.Experiment.modul = m }
                in
                let cold = verify c.H.Experiment.modul in
                let warm = verify c.H.Experiment.modul in
                let edited =
                  verify (Sum.edit_function c.H.Experiment.modul edit_fn)
                in
                (if Sys.file_exists dir && Sys.is_directory dir then
                   Array.iter
                     (fun f ->
                       try Sys.remove (Filename.concat dir f)
                       with Sys_error _ -> ())
                     (Sys.readdir dir));
                (try Sys.rmdir dir with Sys_error _ -> ());
                (try Sys.remove tmp with Sys_error _ -> ());
                let name = p.Overify_corpus.Programs.name in
                let lvl = level.Overify_opt.Costmodel.name in
                let where = Printf.sprintf "%s at %s" name lvl in
                if warm.E.summary_computed > 0 then begin
                  incr failures;
                  Printf.eprintf
                    "bench summary: warm run of %s recomputed %d summaries\n"
                    where warm.E.summary_computed
                end;
                if cold.E.summary_computed > 0 && warm.E.summary_cached = 0
                then begin
                  incr failures;
                  Printf.eprintf
                    "bench summary: warm run of %s hit no cached summaries\n"
                    where
                end;
                if
                  edited.E.summary_computed < 1
                  || edited.E.summary_computed >= cold.E.summary_computed
                then begin
                  incr failures;
                  Printf.eprintf
                    "bench summary: edited run of %s rebuilt %d summaries \
                     (cold built %d; expected a strict non-empty subset)\n"
                    where edited.E.summary_computed cold.E.summary_computed
                end;
                if edited.E.summary_cached = 0 then begin
                  incr failures;
                  Printf.eprintf
                    "bench summary: edited run of %s hit no summaries \
                     outside the %d-function cone of %s\n"
                    where (List.length cone) edit_fn
                end;
                let win =
                  cold.E.complete && edited.E.complete
                  && edited.E.instructions < cold.E.instructions
                  && edited.E.component_solves <= cold.E.component_solves
                in
                Some (name, lvl, edit_fn, List.length cone, cold, warm,
                      edited, win))
          levels)
      programs
  in
  let rows =
    [ "program"; "level"; "edit"; "cone"; "cold built"; "edited built";
      "edited cached"; "cold insts"; "edited insts"; "cold solves";
      "edited solves"; "win" ]
    :: List.map
         (fun (name, lvl, edit_fn, cone, (cold : E.result), _,
               (edited : E.result), win) ->
           [
             name; lvl; edit_fn; string_of_int cone;
             string_of_int cold.E.summary_computed;
             string_of_int edited.E.summary_computed;
             string_of_int edited.E.summary_cached;
             H.Report.fmt_int cold.E.instructions;
             H.Report.fmt_int edited.E.instructions;
             string_of_int cold.E.component_solves;
             string_of_int edited.E.component_solves;
             string_of_bool win;
           ])
         measurements
  in
  H.Report.table rows;
  print_endline
    "(win = the one-function edit re-verified strictly fewer instructions \
     than cold, both runs complete)";
  let wins =
    List.length
      (List.filter (fun (_, _, _, _, _, _, _, w) -> w) measurements)
  in
  let win_programs =
    List.sort_uniq compare
      (List.filter_map
         (fun (name, _, _, _, _, _, _, w) -> if w then Some name else None)
         measurements)
  in
  Printf.printf
    "incremental wins: %d of %d cells (%d distinct programs)\n" wins
    (List.length measurements)
    (List.length win_programs);
  (* over the full corpus the incremental claim must hold broadly; with -p
     the single program may legitimately be wall-clock truncated *)
  if only = None && List.length win_programs < 3 then begin
    incr failures;
    Printf.eprintf
      "bench summary: one-function edits beat cold on only %d programs \
       (expected >= 3)\n"
      (List.length win_programs)
  end;
  let json_row
      (name, lvl, edit_fn, cone, (cold : E.result), (warm : E.result),
       (edited : E.result), win) =
    Printf.sprintf
      "  {\"program\": %S, \"level\": %S, \"edit_fn\": %S, \"cone\": %d, \
       \"cold_computed\": %d, \"cold_cached\": %d, \"cold_instantiated\": \
       %d, \"cold_opaque\": %d, \"cold_instructions\": %d, \
       \"cold_solves\": %d, \"cold_complete\": %b, \"warm_computed\": %d, \
       \"warm_cached\": %d, \"warm_instructions\": %d, \"warm_solves\": \
       %d, \"edited_computed\": %d, \"edited_cached\": %d, \
       \"edited_instructions\": %d, \"edited_solves\": %d, \
       \"edited_complete\": %b, \"incremental_win\": %b}"
      name lvl edit_fn cone cold.E.summary_computed cold.E.summary_cached
      cold.E.summary_instantiated cold.E.summary_opaque cold.E.instructions
      cold.E.component_solves cold.E.complete warm.E.summary_computed
      warm.E.summary_cached warm.E.instructions warm.E.component_solves
      edited.E.summary_computed edited.E.summary_cached
      edited.E.instructions edited.E.component_solves edited.E.complete win
  in
  Out_channel.with_open_text out (fun oc ->
      Printf.fprintf oc "[\n%s\n]\n"
        (String.concat ",\n" (List.map json_row measurements)));
  Printf.printf "wrote %s\n" out;
  if !failures > 0 then exit 1

(* ---- chaos sweep: every corpus program under a battery of deterministic
   fault schedules plus a kill/resume phase; the hardening contract (zero
   crashes, two-run determinism, degraded subsets, byte-identical resume)
   is asserted cell by cell and any violation exits 1.  Rows go to
   BENCH_chaos.json. ---- *)

let run_chaos args =
  let (n, t) = parse_flags args in
  let input_size = Option.value n ~default:3 in
  let timeout = Option.value t ~default:60.0 in
  let flag name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let programs =
    match flag "-p" with
    | None -> Overify_corpus.Programs.programs
    | Some name -> (
        match Overify_corpus.Programs.find name with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "bench chaos: unknown corpus program %S\n" name;
            exit 2)
  in
  let out = Option.value (flag "-o") ~default:"BENCH_chaos.json" in
  let r = H.Chaos.run ~input_size ~timeout ~programs ~json_path:out () in
  if r.H.Chaos.failures > 0 then exit 1

(* ---- serve: throughput/latency of the verification daemon under a
   concurrent synthetic trace (programs x levels x budgets, duplicates,
   malformed inputs).  The health contract — zero daemon crashes, every
   entry answered, dedup hits > 0 — is asserted and any violation exits
   1.  The summary goes to BENCH_serve.json. ---- *)

let run_serve args =
  let flag name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let n =
    Option.value (Option.map int_of_string (flag "-n")) ~default:48
  in
  let clients =
    Option.value (Option.map int_of_string (flag "-c")) ~default:4
  in
  let out = Option.value (flag "-o") ~default:"BENCH_serve.json" in
  Printf.printf
    "=== Serve: %d-entry synthetic trace over %d concurrent clients ===\n\n"
    n clients;
  let (s, healthy) = H.Serve.run ~n ~clients () in
  Printf.printf
    "requests=%d ok=%d errors=%d transport_failures=%d\n"
    s.H.Serve.s_requests s.H.Serve.s_ok s.H.Serve.s_errors
    s.H.Serve.s_transport_failures;
  Printf.printf
    "executed=%d dedup_hits=%d (inflight=%d recent=%d) malformed=%d\n"
    (H.Serve.stat s "executed")
    (H.Serve.stat s "dedup_hits")
    (H.Serve.stat s "dedup_inflight")
    (H.Serve.stat s "dedup_recent")
    (H.Serve.stat s "malformed");
  Printf.printf
    "throughput=%.1f req/s latency p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n"
    s.H.Serve.s_throughput_rps s.H.Serve.s_p50_ms s.H.Serve.s_p95_ms
    s.H.Serve.s_p99_ms s.H.Serve.s_max_ms;
  Out_channel.with_open_text out (fun oc ->
      Printf.fprintf oc "%s\n" (H.Serve.summary_to_json s));
  Printf.printf "wrote %s\n" out;
  if healthy then
    print_endline
      "serve trace passed: daemon survived the whole trace, every entry \
       answered, dedup hits > 0"
  else begin
    print_endline "serve trace FAILED the health contract";
    exit 1
  end

(* ---- overload: the daemon under deliberate overload — a stall@1-wedged
   executor, a full capacity-1 queue, a distinct-fingerprint flood, then
   watchdog recovery, an accepted stream, a slowloris and an idle probe.
   The contract — zero transport failures, every request answered or
   shed, sheds reconciling exactly with the daemon's own counter, the
   watchdog firing exactly once — is asserted and any violation exits 1.
   The summary (shed rate, accepted p50/p95/p99) goes to
   BENCH_overload.json. ---- *)

let run_overload args =
  let flag name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let probes =
    Option.value (Option.map int_of_string (flag "-n")) ~default:12
  in
  let accepted =
    Option.value (Option.map int_of_string (flag "-a")) ~default:16
  in
  let out = Option.value (flag "-o") ~default:"BENCH_overload.json" in
  Printf.printf
    "=== Overload: %d-probe flood against a wedged capacity-1 daemon ===\n\n"
    probes;
  let (o, healthy) = H.Serve.run_overload ~probes ~accepted () in
  Printf.printf
    "requests=%d ok=%d overloaded=%d deadline_exceeded=%d other_errors=%d \
     transport_failures=%d\n"
    o.H.Serve.o_requests o.H.Serve.o_ok o.H.Serve.o_overloaded
    o.H.Serve.o_deadline o.H.Serve.o_other_errors
    o.H.Serve.o_transport_failures;
  Printf.printf
    "shed_rate=%.3f retry_hint_min=%dms watchdog_reason=%b \
     slowloris_answered=%b idle_reaped=%b\n"
    (float_of_int o.H.Serve.o_overloaded
    /. float_of_int (max 1 o.H.Serve.o_requests))
    o.H.Serve.o_hint_ms_min o.H.Serve.o_watchdog_reason
    o.H.Serve.o_slowloris_answered o.H.Serve.o_idle_reaped;
  let lat = o.H.Serve.o_accepted_lat in
  let pct q =
    let n = Array.length lat in
    if n = 0 then 0.0
    else lat.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  Printf.printf "accepted latency p50=%.1fms p95=%.1fms p99=%.1fms\n"
    (pct 0.50) (pct 0.95) (pct 0.99);
  Out_channel.with_open_text out (fun oc ->
      Printf.fprintf oc "%s\n" (H.Serve.overload_to_json o));
  Printf.printf "wrote %s\n" out;
  if healthy then
    print_endline
      "overload schedule passed: every request answered or shed, shed \
       accounting exact, watchdog recovered the wedged executor, zero \
       transport failures"
  else begin
    print_endline "overload schedule FAILED the health contract";
    exit 1
  end

(* ---- translation-validated corpus sweep: every pass application on every
   corpus program at every level is checked with the symbolic engine; the
   expected result is zero counterexamples (exit 1 otherwise) ---- *)

let run_validate args =
  let (n, t) = parse_flags args in
  let b = Overify_tv.Tv.default_budget in
  let budget =
    {
      b with
      Overify_tv.Tv.input_size = Option.value n ~default:b.Overify_tv.Tv.input_size;
      timeout = Option.value t ~default:b.Overify_tv.Tv.timeout;
    }
  in
  let cex = H.Validation.run ~budget () in
  if cex > 0 then exit 1

(* ---- Bechamel micro-benchmarks: one Test.make per table/figure driver,
   at miniature settings so each iteration is sub-second ---- *)

let bechamel () =
  let open Bechamel in
  let wc =
    match H.Table1.wc () with
    | Ok p -> p
    | Error msg -> failwith ("bechamel needs the wc program: " ^ msg)
  in
  let compile_overify () =
    ignore (H.Experiment.compile Overify_opt.Costmodel.overify wc)
  in
  let table1_tiny () =
    let c = H.Experiment.compile Overify_opt.Costmodel.overify wc in
    ignore (H.Experiment.verify ~input_size:2 ~timeout:5.0 c)
  in
  let table2_cell () =
    let c = H.Experiment.compile Overify_opt.Costmodel.o3 wc in
    ignore (H.Experiment.measure_cycles ~runs:2 ~size:8 c)
  in
  let table3_cell () =
    ignore (H.Experiment.compile Overify_opt.Costmodel.o3 wc)
  in
  let figure4_cell () =
    let p = Option.get (Overify_corpus.Programs.find "tr") in
    let c = H.Experiment.compile Overify_opt.Costmodel.overify p in
    ignore (H.Experiment.verify ~input_size:2 ~timeout:5.0 c)
  in
  let tests =
    [
      Test.make ~name:"compile-overify-wc" (Staged.stage compile_overify);
      Test.make ~name:"table1-verify-wc-n2" (Staged.stage table1_tiny);
      Test.make ~name:"table2-exec-cycles" (Staged.stage table2_cell);
      Test.make ~name:"table3-compile-stats" (Staged.stage table3_cell);
      Test.make ~name:"figure4-verify-tr-n2" (Staged.stage figure4_cell);
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let a = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        a)
    tests

(* ---- bench diff: compare two BENCH_*.json files ---- *)

module Bjson = Overify.Serve_json

(** Flatten a BENCH json document to (path, number) cells.  Array
    elements that are objects are keyed by their string-valued fields
    (sorted), so rows match across reordering; other elements by index. *)
let bench_cells (j : Bjson.t) : (string * float) list =
  let out = ref [] in
  let ident kvs =
    match
      List.filter_map
        (fun (k, v) ->
          match v with Bjson.Str s -> Some (k ^ "=" ^ s) | _ -> None)
        kvs
    with
    | [] -> None
    | l -> Some (String.concat "," (List.sort compare l))
  in
  let rec go prefix = function
    | Bjson.Num n -> out := (prefix, n) :: !out
    | Bjson.Obj kvs ->
        List.iter
          (fun (k, v) ->
            go (if prefix = "" then k else prefix ^ "." ^ k) v)
          kvs
    | Bjson.Arr els ->
        List.iteri
          (fun i el ->
            let key =
              match el with
              | Bjson.Obj kvs -> (
                  match ident kvs with
                  | Some id -> "[" ^ id ^ "]"
                  | None -> Printf.sprintf "[%d]" i)
              | _ -> Printf.sprintf "[%d]" i
            in
            go (prefix ^ key) el)
          els
    | _ -> ()
  in
  go "" j;
  List.rev !out

(** Fields where a bigger number means a slower/costlier run — the ones
    a regression gate cares about.  Verdict counts (paths, bugs) and
    hit counters legitimately move in either direction. *)
let cost_cell path =
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let contains sub =
    let n = String.length sub and m = String.length seg in
    let rec at i = i + n <= m && (String.sub seg i n = sub || at (i + 1)) in
    n <= m && at 0
  in
  List.exists contains
    [ "time"; "ms"; "instructions"; "insts"; "forks"; "queries"; "solves";
      "cycles" ]

let run_diff args =
  let threshold = ref 0.25 in
  let files = ref [] in
  let rec go = function
    | "-t" :: v :: rest ->
        threshold := float_of_string v;
        go rest
    | a :: rest ->
        files := a :: !files;
        go rest
    | [] -> ()
  in
  go args;
  match List.rev !files with
  | [ old_path; new_path ] -> (
      let read path =
        match Bjson.parse (In_channel.with_open_text path In_channel.input_all) with
        | Ok j -> j
        | Error msg ->
            Printf.eprintf "bench diff: %s: %s\n" path msg;
            exit 2
      in
      let old_cells = Hashtbl.create 256 in
      List.iter
        (fun (p, v) -> Hashtbl.replace old_cells p v)
        (bench_cells (read old_path));
      let thr = !threshold in
      let compared = ref 0 and improved = ref 0 in
      let regressions = ref [] in
      List.iter
        (fun (path, nv) ->
          match Hashtbl.find_opt old_cells path with
          | None -> ()
          | Some ov ->
              incr compared;
              if cost_cell path then
                (* both a relative and a small absolute bar, so float
                   jitter on near-zero timings does not trip the gate *)
                if nv > (ov *. (1.0 +. thr)) +. 1e-9 && nv -. ov > 1e-3 then
                  regressions := (path, ov, nv) :: !regressions
                else if ov > (nv *. (1.0 +. thr)) +. 1e-9 && ov -. nv > 1e-3
                then incr improved)
        (bench_cells (read new_path));
      List.iter
        (fun (path, ov, nv) ->
          Printf.printf "REGRESSION %s: %g -> %g (%+.1f%%)\n" path ov nv
            ((nv -. ov) /. (if ov = 0.0 then 1.0 else ov) *. 100.0))
        (List.rev !regressions);
      Printf.printf
        "bench diff: %d cells compared, %d regressions, %d improvements \
         (threshold +%.0f%%)\n"
        !compared
        (List.length !regressions)
        !improved (thr *. 100.0);
      if !regressions <> [] then exit 1)
  | _ ->
      prerr_endline "usage: bench diff OLD.json NEW.json [-t FRACTION]";
      exit 2

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "table1" :: rest -> run_table1 rest
  | _ :: "table2" :: rest -> run_table2 rest
  | _ :: "table3" :: rest -> run_table3 rest
  | _ :: "figure4" :: rest -> run_figure4 rest
  | _ :: "precision" :: rest -> run_precision rest
  | _ :: "parallel" :: rest -> run_parallel rest
  | _ :: "solve" :: rest -> run_solve rest
  | _ :: "summary" :: rest -> run_summary rest
  | _ :: "chaos" :: rest -> run_chaos rest
  | _ :: "serve" :: rest -> run_serve rest
  | _ :: "overload" :: rest -> run_overload rest
  | _ :: "validate" :: rest -> run_validate rest
  | _ :: "profile" :: rest -> run_profile rest
  | _ :: "diff" :: rest -> run_diff rest
  | _ :: "bechamel" :: _ -> bechamel ()
  | _ ->
      (* default: regenerate everything at quick settings *)
      run_table1 [];
      run_table2 [ "-n"; "3" ];
      run_table3 [];
      run_precision [];
      run_figure4 [ "-n"; "5"; "-t"; "12" ]
