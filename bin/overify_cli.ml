(** The [overify] command-line tool: compile MiniC at a chosen level, dump
    IR, run the program concretely, or verify it symbolically — the build
    chain of the paper's Figure 3 in one binary. *)

open Cmdliner

module O = Overify

let level_arg =
  let parse s =
    match O.Costmodel.of_name s with
    | Some cm -> Ok cm
    | None -> Error (`Msg (Printf.sprintf "unknown level %s (use O0/O2/O3/OVERIFY)" s))
  in
  let print fmt (cm : O.Costmodel.t) =
    Format.pp_print_string fmt cm.O.Costmodel.name
  in
  Arg.conv (parse, print)

let level =
  Arg.(
    value
    & opt level_arg O.Costmodel.overify
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:"Optimization level: O0, O2, O3 or OVERIFY.")

let no_libc =
  Arg.(
    value & flag
    & info [ "no-libc" ] ~doc:"Do not link the MiniC standard library.")

let source_file =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"MiniC source file, or the name of a corpus program \
              (prefix with 'corpus:').")

let read_source path =
  if String.length path > 7 && String.sub path 0 7 = "corpus:" then
    let name = String.sub path 7 (String.length path - 7) in
    match O.Programs.find name with
    | Some p -> p.O.Programs.source
    | None ->
        Printf.eprintf "unknown corpus program %s; available: %s\n" name
          (String.concat ", " O.Programs.names);
        exit 2
  else In_channel.with_open_text path In_channel.input_all

let compile_to_module level no_libc path =
  O.compile ~level ~link_libc:(not no_libc) (read_source path)

let program_name path =
  if String.length path > 7 && String.sub path 0 7 = "corpus:" then
    String.sub path 7 (String.length path - 7)
  else Filename.remove_extension (Filename.basename path)

(* ---- structured tracing (any subcommand) ---- *)

let trace_arg =
  Arg.(
    value & opt string ""
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event timeline of the whole invocation \
           (solver checks, pass applications, engine runs, TV obligations) \
           and write it to $(docv) on exit.  Load the file in \
           chrome://tracing or Perfetto; a .jsonl suffix selects one JSON \
           event per line.")

(** Run [f] with the trace sink collecting; write the trace on the way out
    (even if [f] raises). *)
let with_trace trace f =
  if trace = "" then f ()
  else begin
    O.Obs.Trace.clear ();
    O.Obs.Trace.start ();
    Fun.protect
      ~finally:(fun () ->
        O.Obs.Trace.stop ();
        O.Obs.Trace.write trace;
        Printf.eprintf "; trace written to %s (load in chrome://tracing)\n"
          trace)
      f
  end

(* ---- compile subcommand ---- *)

let compile_cmd =
  let run level no_libc path stats validate trace =
    with_trace trace @@ fun () ->
    if validate then begin
      let (r, report) =
        O.compile_validated ~level ~link_libc:(not no_libc) (read_source path)
      in
      print_string (O.Printer.modul_to_string r.O.Pipeline.modul);
      if stats then
        Format.printf "@.; transformations: %a@." Overify_opt.Stats.pp
          r.O.Pipeline.stats;
      let cex = O.Tv.counterexamples report in
      Printf.eprintf
        "; translation validation: %d pass applications, %d counterexamples, \
         %d inconclusive\n"
        (List.length report.O.Tv.records)
        (List.length cex)
        (List.length (O.Tv.inconclusives report));
      (match O.Tv.first_offender report with
      | Some o ->
          Printf.eprintf "; FIRST OFFENDING PASS: %s (in %s): %s\n" o.O.Tv.pass
            o.O.Tv.fn
            (O.Tv.string_of_verdict o.O.Tv.outcome.O.Tv.verdict)
      | None -> ());
      if cex = [] then 0 else 1
    end
    else begin
      let (m, s) =
        O.compile_with_stats ~level ~link_libc:(not no_libc) (read_source path)
      in
      print_string (O.Printer.modul_to_string m);
      if stats then
        Format.printf "@.; transformations: %a@." Overify_opt.Stats.pp s;
      0
    end
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print transformation counters.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Translation-validate every optimization pass application while \
             compiling (see the tv subcommand); exit 1 on a counterexample.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile MiniC and print the IR.")
    Term.(const run $ level $ no_libc $ source_file $ stats $ validate
          $ trace_arg)

(* ---- run subcommand ---- *)

let run_cmd =
  let input =
    Arg.(
      value & opt string ""
      & info [ "input"; "i" ] ~docv:"BYTES" ~doc:"Program input bytes.")
  in
  let run level no_libc path input trace =
    with_trace trace @@ fun () ->
    let m = compile_to_module level no_libc path in
    let r = O.run m ~input in
    print_string r.O.Interp.output;
    Printf.eprintf "exit=%Ld cycles=%d instructions=%d%s\n" r.O.Interp.exit_code
      r.O.Interp.cycles r.O.Interp.insts
      (match r.O.Interp.trap with
      | None -> ""
      | Some t -> " TRAP: " ^ O.Interp.string_of_trap t);
    Int64.to_int r.O.Interp.exit_code land 0xff
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute concretely (prints t_run data).")
    Term.(const run $ level $ no_libc $ source_file $ input $ trace_arg)

(* ---- verify subcommand ---- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the solver's canonical query cache in $(docv) and reuse \
           it across runs (including at other -O levels).  Results are \
           byte-identical with or without the cache; only the number of \
           raw SAT solves changes.")

let faults_conv =
  let parse s =
    match O.Fault.parse s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print fmt f = Format.pp_print_string fmt (O.Fault.spec f) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic faults (chaos testing): comma-separated \
           site\\@N entries — timeout\\@N (N-th solver query times out), \
           corrupt\\@N / partial\\@N (N-th solver-store save is corrupted \
           / truncated), alloc\\@N (N-th allocation exhausts its budget), \
           crash\\@N (N-th executor step raises a contained worker crash), \
           kill\\@N (simulated SIGKILL — only a checkpoint survives) — or \
           seed:S[:K] for K pseudo-random entries.  Defaults to \
           $(b,OVERIFY_FAULTS) when set.")

let summaries_arg =
  Arg.(
    value & flag
    & info [ "summaries" ]
        ~doc:
          "Compositional mode: compute (or load from $(b,--cache-dir)) \
           per-function symbolic summaries bottom-up over the call graph \
           and instantiate them at call sites instead of inlining.  \
           Summaries are keyed by a structural fingerprint of the function \
           body plus its callees', so editing one function re-verifies \
           only its callgraph cone.  Verdicts are identical to inline \
           exploration; only the effort counters change.  Defaults to \
           $(b,OVERIFY_SUMMARIES) when set.")

let verify_cmd =
  let size =
    Arg.(
      value & opt int 4
      & info [ "size"; "n" ] ~docv:"N" ~doc:"Number of symbolic input bytes.")
  in
  let timeout =
    Arg.(
      value & opt float 60.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"Verification budget.")
  in
  let tests_flag =
    Arg.(
      value & flag
      & info [ "tests" ]
          ~doc:"Print a generated test input (and its exit code) per path, \
                like KLEE's ktest files.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Explore paths on $(docv) parallel worker domains. Results are \
             identical to the sequential searcher for complete runs.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Write periodic atomic snapshots of the exploration frontier to \
             $(docv) (sequential searcher), so a killed run can be continued \
             with $(b,--resume).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 64
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Snapshot every $(docv) completed paths (default 64).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the snapshot in $(b,--checkpoint-dir) when one \
             exists and matches this program and configuration; the resumed \
             run's verdicts equal an uninterrupted run's.")
  in
  let json_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Emit the machine-readable result — including the structured \
             $(i,degradations) and $(i,faults_injected) blocks — to stdout, \
             or to $(docv) if given.")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Zero the wall-clock and cache-temperature fields of the \
             $(b,--json) result, so identical programs produce identical \
             bytes — e.g. for diffing a one-shot run against the same \
             request answered by a warm $(b,overify serve) daemon.")
  in
  let run level no_libc path size timeout tests jobs summaries cache_dir
      faults checkpoint_dir checkpoint_every resume json deterministic trace =
    with_trace trace @@ fun () ->
    let faults =
      match faults with
      | Some _ as f -> f
      | None -> (
          try O.Fault.of_env ()
          with Invalid_argument msg ->
            Printf.eprintf "%s\n" msg;
            exit 2)
    in
    let m = compile_to_module level no_libc path in
    let r =
      try
        O.verify ~input_size:size ~timeout ~jobs
          ?summaries:(if summaries then Some true else None)
          ?cache_dir ?faults ?checkpoint_dir ~checkpoint_every ~resume m
      with O.Fault.Killed msg ->
        (* simulated process death: mirror SIGKILL's exit status; the
           checkpoint (if any) stays behind for --resume *)
        Printf.eprintf "killed: %s%s\n" msg
          (match checkpoint_dir with
          | Some d -> Printf.sprintf " (resume with --checkpoint-dir %s --resume)" d
          | None -> " (no --checkpoint-dir; progress lost)");
        exit 137
    in
    (match json with
    | Some "-" -> print_endline (O.Engine.result_to_json ~deterministic r)
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc (O.Engine.result_to_json ~deterministic r);
            output_char oc '\n');
        Printf.eprintf "; result written to %s\n" file
    | None -> ());
    Printf.printf
      "paths=%d instructions=%d queries=%d cache_hits=%d solver=%.1fms \
       total=%.1fms coverage=%d/%d blocks jobs=%d complete=%b%s\n"
      r.O.Engine.paths r.O.Engine.instructions r.O.Engine.queries
      r.O.Engine.cache_hits
      (r.O.Engine.solver_time *. 1000.)
      (r.O.Engine.time *. 1000.)
      r.O.Engine.blocks_covered r.O.Engine.blocks_total r.O.Engine.jobs
      r.O.Engine.complete
      (if r.O.Engine.resumed then " resumed=true" else "");
    Printf.printf
      "solver: components=%d solves=%d hits: exact=%d canon=%d subset=%d \
       superset=%d store=%d\n"
      r.O.Engine.components r.O.Engine.component_solves r.O.Engine.hits_exact
      r.O.Engine.hits_canon r.O.Engine.hits_subset r.O.Engine.hits_superset
      r.O.Engine.hits_store;
    if
      r.O.Engine.summary_instantiated + r.O.Engine.summary_opaque
      + r.O.Engine.summary_computed + r.O.Engine.summary_cached > 0
    then
      Printf.printf
        "summaries: instantiated=%d opaque=%d computed=%d cached=%d\n"
        r.O.Engine.summary_instantiated r.O.Engine.summary_opaque
        r.O.Engine.summary_computed r.O.Engine.summary_cached;
    List.iter
      (fun (d : O.Engine.degradation) ->
        Printf.printf "degraded: %s paths=%d%s\n" d.O.Engine.d_kind
          d.O.Engine.d_paths
          (if d.O.Engine.d_where = "" then ""
           else " (" ^ d.O.Engine.d_where ^ ")"))
      r.O.Engine.degradations;
    (let fired =
       List.filter (fun (_, n) -> n > 0) r.O.Engine.faults_injected
     in
     if fired <> [] then
       Printf.printf "faults injected: %s\n"
         (String.concat " "
            (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) fired)));
    if tests then
      List.iteri
        (fun i (input, code) ->
          Printf.printf "test %04d: input=%S expected_exit=%Ld\n" i input code)
        r.O.Engine.exit_codes;
    List.iter
      (fun (b : O.Engine.bug) ->
        Printf.printf "BUG: %s in %s, input=%S\n" b.O.Engine.kind
          b.O.Engine.at_function b.O.Engine.input)
      r.O.Engine.bugs;
    if r.O.Engine.bugs = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Compile and symbolically execute all paths (KLEE-style).")
    Term.(const run $ level $ no_libc $ source_file $ size $ timeout
          $ tests_flag $ jobs $ summaries_arg $ cache_dir_arg $ faults_arg
          $ checkpoint_dir_arg $ checkpoint_every_arg $ resume_arg $ json_arg
          $ deterministic_arg $ trace_arg)

(* ---- analyze subcommand ---- *)

let analyze_cmd =
  let run level no_libc path =
    let m = compile_to_module level no_libc path in
    let c = O.Precision.of_module m in
    Printf.printf
      "interval analysis over functions reachable from main (%s):\n"
      level.O.Costmodel.name;
    Printf.printf "  branches decided statically : %d / %d\n"
      c.O.Precision.branches_decided c.O.Precision.branches;
    Printf.printf "  accesses proven in bounds   : %d / %d\n"
      c.O.Precision.geps_proved c.O.Precision.geps;
    Printf.printf "  registers with tight ranges : %d / %d\n"
      c.O.Precision.regs_bounded c.O.Precision.regs;
    (* a few sample derived facts from main *)
    (match O.Ir.find_func m "main" with
    | Some main ->
        let r = O.Absint.analyze main in
        let shown = ref 0 in
        print_endline "  sample facts in main:";
        O.Absint.IMap.iter
          (fun reg range ->
            match range with
            | O.Interval.Range (lo, hi)
              when !shown < 10 && lo <> Int64.min_int && hi <> Int64.max_int ->
                incr shown;
                Printf.printf "    %%%d : %s\n" reg (O.Interval.to_string range)
            | _ -> ())
          r.O.Absint.reg_out
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the coarse interval analysis (the paper's 2.1 'simple \
          verification tool') and report what it can prove.")
    Term.(const run $ level $ no_libc $ source_file)

(* ---- tv subcommand ---- *)

let tv_cmd =
  let size =
    Arg.(
      value & opt int 3
      & info [ "size"; "n" ] ~docv:"N"
          ~doc:"Symbolic input bytes per pass-application check.")
  in
  let timeout =
    Arg.(
      value & opt float 3.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS"
          ~doc:"Symbolic budget per pass-application check.")
  in
  let all_levels =
    Arg.(
      value & flag
      & info [ "all-levels" ]
          ~doc:"Validate at every level (O0, O2, O3, OVERIFY), not just -O.")
  in
  let json =
    Arg.(
      value & opt string ""
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable per-pass report to $(docv).")
  in
  let run level no_libc path size timeout all_levels json trace =
    with_trace trace @@ fun () ->
    let src = read_source path in
    let budget =
      { O.Tv.default_budget with O.Tv.input_size = size; timeout }
    in
    let levels = if all_levels then O.Costmodel.all else [ level ] in
    let reports =
      List.map
        (fun (cm : O.Costmodel.t) ->
          let (_, report) =
            O.compile_validated ~level:cm ~link_libc:(not no_libc) ~budget src
          in
          Printf.printf "== %s: %d pass applications validated in %.1fs ==\n"
            cm.O.Costmodel.name
            (List.length report.O.Tv.records)
            report.O.Tv.time;
          List.iter
            (fun (r : O.Tv.record) ->
              Printf.printf "  %-16s %-16s %s\n" r.O.Tv.pass r.O.Tv.fn
                (O.Tv.string_of_verdict r.O.Tv.outcome.O.Tv.verdict))
            report.O.Tv.records;
          (match O.Tv.first_offender report with
          | Some o ->
              Printf.printf "  FIRST OFFENDING PASS: %s (in %s)\n" o.O.Tv.pass
                o.O.Tv.fn
          | None -> ());
          report)
        levels
    in
    if json <> "" then
      Out_channel.with_open_text json (fun oc ->
          Printf.fprintf oc "[\n%s\n]\n"
            (String.concat ",\n" (List.map O.Tv.report_to_json reports)));
    if List.for_all (fun r -> O.Tv.counterexamples r = []) reports then 0
    else 1
  in
  Cmd.v
    (Cmd.info "tv"
       ~doc:
         "Translation-validate the optimizer on a program: prove every pass \
          application observably equivalent with the symbolic engine \
          (product-program construction), or report a counterexample naming \
          the offending pass.")
    Term.(
      const run $ level $ no_libc $ source_file $ size $ timeout $ all_levels
      $ json $ trace_arg)

(* ---- profile subcommand ---- *)

let profile_cmd =
  let module P = Overify_harness.Profile in
  let size =
    Arg.(
      value & opt int 4
      & info [ "size"; "n" ] ~docv:"N" ~doc:"Number of symbolic input bytes.")
  in
  let timeout =
    Arg.(
      value & opt float 60.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"Verification budget.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Explore paths on $(docv) parallel worker domains.")
  in
  let diff =
    Arg.(
      value & opt (some level_arg) None
      & info [ "diff" ] ~docv:"LEVEL"
          ~doc:
            "Also profile at $(docv) and print a side-by-side per-function \
             comparison — which hot-spot did the level remove?")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Emit the machine-readable report (to stdout, or to $(docv) if \
             given).")
  in
  let top =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"N"
          ~doc:"Number of hottest basic blocks to list.")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Zero all wall-clock fields and omit the latency histogram in \
             the JSON report, leaving only deterministic attribution (for \
             golden tests and cross-run diffing).")
  in
  let run level no_libc path size timeout jobs summaries cache_dir diff json
      top deterministic trace =
    with_trace trace @@ fun () ->
    let src = read_source path in
    let program = program_name path in
    let prof lvl =
      P.profile ~program ~level:lvl ~input_size:size ~timeout ~jobs
        ?summaries:(if summaries then Some true else None)
        ?cache_dir ~link_libc:(not no_libc) src
    in
    let p = prof level in
    (match diff with
    | Some lvl2 -> P.print_diff p (prof lvl2)
    | None -> (
        match json with
        | None -> P.print ~top p
        | Some "-" -> print_endline (P.to_json ~times:(not deterministic) p)
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (P.to_json ~times:(not deterministic) p);
                output_char oc '\n');
            P.print ~top p;
            Printf.eprintf "; profile written to %s\n" file));
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Verify a program symbolically with cost attribution on and report \
          where verification time went: per-function/per-block dynamic \
          instructions, forks, solver queries and solver time, plus the \
          per-pass compile profile.  Attribution sums to the whole-run \
          totals by construction.")
    Term.(
      const run $ level $ no_libc $ source_file $ size $ timeout $ jobs
      $ summaries_arg $ cache_dir_arg $ diff $ json $ top $ deterministic
      $ trace_arg)

(* ---- serve subcommand ---- *)

let socket_arg =
  Arg.(
    value & opt string ""
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:
          "Unix socket path.  serve: where to listen (default: a fresh \
           path under the temp directory, printed on startup).  client: \
           the daemon to talk to (required).")

let serve_cmd =
  let recent_cap =
    Arg.(
      value & opt int 128
      & info [ "recent-cap" ] ~docv:"N"
          ~doc:
            "Keep the last $(docv) completed request bodies for \
             deduplication (answered without re-executing).")
  in
  let save_every =
    Arg.(
      value & opt int 32
      & info [ "save-every" ] ~docv:"N"
          ~doc:"Save the warm solver store every $(docv) executed jobs.")
  in
  let queue_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission control: refuse new work once $(docv) jobs are \
             queued, answering a machine-readable $(i,overloaded) error \
             with a $(i,retry_after_ms) backoff hint derived from the \
             live per-kind latency histograms.  Default: unbounded.")
  in
  let grace =
    Arg.(
      value & opt float 2.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog escalation margin: a job still running $(docv) \
             seconds past its deadline is presumed wedged — the daemon \
             dumps a flight record, force-cancels it and keeps serving.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 600.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Reap connections with no frame in flight for $(docv) \
             seconds (closed silently).  0 disables the reaper.")
  in
  let frame_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "frame-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Drop a connection that stalls mid-frame for $(docv) seconds \
             (the slowloris defence), answering \
             $(i,bad_frame:timeout) first.  0 disables the bound.")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable per-request registry metrics for the whole daemon.  \
             The flag beats the $(b,OVERIFY_OBS) environment variable, so \
             clients need nothing in their environment; without it the \
             variable still applies.")
  in
  let flight_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Enable the flight recorder: dump the in-memory span/event \
             ring to a post-mortem file under $(docv) whenever a request \
             degrades, a kill/crash is contained, or the daemon shuts \
             down.  Inspect dumps with $(b,overify postmortem).")
  in
  let log_arg =
    let log_conv =
      let parse s =
        match O.Serve_log.level_of_name s with
        | Some l -> Ok l
        | None -> Error (`Msg (Printf.sprintf "unknown log level %s" s))
      in
      Arg.conv (parse, fun fmt l ->
          Format.pp_print_string fmt (O.Serve_log.level_name l))
    in
    Arg.(
      value
      & opt (some log_conv) None
      & info [ "log" ] ~docv:"LEVEL"
          ~doc:
            "Stderr log threshold: debug, info or warn.  One JSONL line \
             per event, carrying the request's trace id.  Defaults to \
             $(b,OVERIFY_LOG) (warn when unset); the flag wins.")
  in
  let run socket cache_dir recent_cap save_every queue_cap grace idle_timeout
      frame_timeout obs flight_dir log_level =
    let daemon =
      O.Serve.start
        ?socket:(if socket = "" then None else Some socket)
        ?cache_dir ~recent_cap ~save_every ?queue_cap ~grace ~idle_timeout
        ~frame_timeout
        ?obs:(if obs then Some true else None)
        ?flight_dir ?log_level ()
    in
    Printf.printf "listening on %s\n%!" (O.Serve.socket_path daemon);
    O.Serve.wait daemon;
    Printf.eprintf "daemon stopped\n";
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification service: a daemon accepting concurrent \
          compile/verify/tv requests over a Unix socket (length-prefixed \
          JSON frames), deduplicating identical in-flight and recent \
          requests, and keeping one warm solver store across all of them. \
          Stop it with $(b,overify client --shutdown).")
    Term.(const run $ socket_arg $ cache_dir_arg $ recent_cap $ save_every
          $ queue_cap $ grace $ idle_timeout $ frame_timeout
          $ obs $ flight_dir $ log_arg)

(* ---- client subcommand ---- *)

(** Render the [metrics] document as a compact table (the [--watch]
    screen). *)
let metrics_table (j : O.Serve_json.t) : string =
  let geti k =
    Option.value ~default:0 (Option.bind (O.Serve_json.mem j k) O.Serve_json.int_)
  in
  let getf k =
    Option.value ~default:0.0
      (Option.bind (O.Serve_json.mem j k) O.Serve_json.num)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "overify daemon — uptime %.1fs  queue depth %d\n"
       (getf "uptime_s") (geti "queue_depth"));
  Buffer.add_string b
    (Printf.sprintf
       "requests %d  executed %d  dedup hits %d  malformed %d  errors %d  \
        degraded %d\n"
       (geti "requests") (geti "executed") (geti "dedup_hits")
       (geti "malformed") (geti "errors") (geti "degraded"));
  Buffer.add_string b
    (Printf.sprintf
       "store %d entries (loaded %d, hits %d)  solver %.1fms over %d \
        queries (%d cached)\n"
       (geti "store_entries") (geti "store_loaded") (geti "store_hits")
       (getf "solver_time_s" *. 1000.0)
       (geti "engine_queries") (geti "engine_cache_hits"));
  Buffer.add_string b
    (Printf.sprintf
       "summaries instantiated %d  opaque %d  computed %d  cached %d\n"
       (geti "summary_instantiated") (geti "summary_opaque")
       (geti "summary_computed") (geti "summary_cached"));
  Buffer.add_string b
    (Printf.sprintf "flight dumps %d  ring %d records (%d dropped)\n"
       (geti "flight_dumps") (geti "flight_records") (geti "flight_dropped"));
  Buffer.add_string b
    "latency_ms    count    mean     p50     p95     p99     max\n";
  (match O.Serve_json.mem j "latency_ms" with
  | Some (O.Serve_json.Obj kinds) ->
      List.iter
        (fun (k, h) ->
          let gi key =
            Option.value ~default:0
              (Option.bind (O.Serve_json.mem h key) O.Serve_json.int_)
          in
          let gf key =
            Option.value ~default:0.0
              (Option.bind (O.Serve_json.mem h key) O.Serve_json.num)
          in
          Buffer.add_string b
            (Printf.sprintf "%-10s %8d %7.2f %7.2f %7.2f %7.2f %7.2f\n" k
               (gi "count") (gf "mean_ms") (gf "p50_ms") (gf "p95_ms")
               (gf "p99_ms") (gf "max_ms")))
        kinds
  | _ -> ());
  Buffer.contents b

let client_cmd =
  let kind_arg =
    Arg.(
      value & opt string "verify"
      & info [ "kind"; "k" ] ~docv:"KIND"
          ~doc:
            "Request kind: verify, compile, tv, stats, metrics or \
             shutdown.")
  in
  let program_arg =
    Arg.(
      value & opt string ""
      & info [ "program"; "p" ] ~docv:"NAME"
          ~doc:"Corpus program to submit (see $(b,overify corpus)).")
  in
  let file_arg =
    Arg.(
      value & opt string ""
      & info [ "file"; "f" ] ~docv:"FILE" ~doc:"MiniC source file to submit.")
  in
  let size =
    Arg.(
      value & opt int 4
      & info [ "size"; "n" ] ~docv:"N" ~doc:"Symbolic input bytes.")
  in
  let timeout =
    Arg.(
      value & opt float 30.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"Per-request budget.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for this request's exploration.")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Ask for a byte-reproducible response (wall-clock and \
             cache-temperature fields zeroed) — comparable to \
             $(b,overify verify --json --deterministic).")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to shut down cleanly.")
  in
  let stats =
    Arg.(
      value & flag & info [ "stats" ] ~doc:"Fetch the daemon's counters.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Fetch the daemon's full telemetry registry (per-kind latency \
             histograms, queue depth, dedup/store/summary hit counters, \
             uptime, degradation counts) — supersedes $(b,--stats).")
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "With $(b,--metrics) (implied): print the registry in \
             Prometheus text exposition format instead of JSON.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch"; "w" ]
          ~doc:
            "Poll $(b,--metrics) (implied) and redraw a live table until \
             interrupted (or $(b,--count) polls).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Poll period for $(b,--watch) (default 2s).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop $(b,--watch) after $(docv) polls (0 = forever).")
  in
  let garbage =
    Arg.(
      value & flag
      & info [ "garbage" ]
          ~doc:
            "Send a deliberately malformed (non-JSON) payload and print \
             the daemon's structured error response — a protocol smoke \
             test.")
  in
  let result_only =
    Arg.(
      value & flag
      & info [ "result-only" ]
          ~doc:
            "Print only the $(i,result) field of the response envelope \
             (raw bytes) — for diffing against the one-shot CLI's \
             $(b,--json) output.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) extra times — a fresh connection per \
             attempt — when the daemon is not up yet (connection \
             refused), the transport fails, or the daemon sheds the \
             request ($(i,overloaded)).  Sleeps a jittered exponential \
             backoff between attempts; an $(i,overloaded) answer's \
             $(i,retry_after_ms) hint is honored as a floor.  Default 0 \
             (one attempt).")
  in
  let backoff =
    Arg.(
      value & opt int 100
      & info [ "backoff" ] ~docv:"MS"
          ~doc:
            "Base backoff for $(b,--retries): attempt k sleeps \
             $(docv)ms × 2^k, jittered ×[0.5,1.5), capped at 10s.")
  in
  let run socket level kind program file size timeout jobs summaries
      deterministic faults shutdown stats metrics prometheus watch interval
      count garbage result_only retries backoff =
    if socket = "" then begin
      Printf.eprintf "client: --socket is required\n";
      exit 2
    end;
    let connect () =
      try O.Serve_client.connect socket
      with _ ->
        Printf.eprintf "client: cannot connect to %s (is the daemon up?)\n"
          socket;
        exit 2
    in
    let rq_format = if prometheus then "prometheus" else "" in
    if watch then begin
      (* live telemetry: poll the metrics op and redraw *)
      let conn = connect () in
      let rec go i =
        match
          O.Serve_client.rpc conn
            {
              O.Serve_protocol.default_request with
              O.Serve_protocol.rq_kind = O.Serve_protocol.Metrics;
              rq_format;
            }
        with
        | Error e ->
            Printf.eprintf "client: transport error: %s\n"
              (O.Serve_protocol.frame_error_name e);
            1
        | Ok json ->
            let doc =
              match O.Serve_protocol.extract_field json "result" with
              | Some r -> r
              | None -> json
            in
            let rendered =
              match O.Serve_json.parse doc with
              | Ok (O.Serve_json.Str text) -> text (* prometheus *)
              | Ok j -> metrics_table j
              | Error _ -> doc
            in
            Printf.printf "\027[2J\027[H%s%!" rendered;
            if count > 0 && i + 1 >= count then 0
            else begin
              Unix.sleepf interval;
              go (i + 1)
            end
      in
      let rc = go 0 in
      O.Serve_client.close conn;
      rc
    end
    else begin
    let answer =
      if garbage then begin
        let conn = connect () in
        let r =
          if O.Serve_client.send_payload conn "this is not json {" then
            O.Serve_client.read_response conn
          else Error O.Serve_protocol.Closed
        in
        O.Serve_client.close conn;
        Result.map_error O.Serve_protocol.frame_error_name r
      end
      else begin
        let kind =
          if shutdown then O.Serve_protocol.Shutdown
          else if stats then O.Serve_protocol.Stats
          else if metrics || prometheus then O.Serve_protocol.Metrics
          else
            match O.Serve_protocol.kind_of_name kind with
            | Some k -> k
            | None ->
                Printf.eprintf "client: unknown kind %s\n" kind;
                exit 2
        in
        let source =
          if file = "" then ""
          else In_channel.with_open_text file In_channel.input_all
        in
        let rq =
          {
            O.Serve_protocol.default_request with
            O.Serve_protocol.rq_kind = kind;
            rq_program = program;
            rq_source = source;
            rq_level = level.O.Costmodel.name;
            rq_input_size = size;
            rq_timeout = timeout;
            rq_jobs = jobs;
            rq_deterministic = deterministic;
            rq_faults =
              (match faults with Some f -> O.Fault.spec f | None -> "");
            rq_summaries = summaries;
            rq_format;
          }
        in
        if retries > 0 then
          (* fresh connection per attempt; retries connect failures,
             transport errors and [overloaded] sheds (honoring the
             daemon's retry_after_ms pacing hint) *)
          O.Serve_client.rpc_retry ~socket ~retries ~backoff_ms:backoff rq
        else begin
          let conn = connect () in
          let r = O.Serve_client.rpc conn rq in
          O.Serve_client.close conn;
          Result.map_error O.Serve_protocol.frame_error_name r
        end
      end
    in
    match answer with
    | Error e ->
        Printf.eprintf "client: transport error: %s\n" e;
        1
    | Ok json ->
        let doc =
          if prometheus then
            (* the exposition text travels as a JSON string; decode it *)
            match O.Serve_protocol.extract_field json "result" with
            | Some r -> (
                match O.Serve_json.parse r with
                | Ok (O.Serve_json.Str text) -> text
                | _ -> r)
            | None -> json
          else if result_only then
            match O.Serve_protocol.extract_field json "result" with
            | Some r -> r
            | None -> json
          else json
        in
        print_endline doc;
        let ok =
          match O.Serve_protocol.extract_field json "status" with
          | Some "\"ok\"" -> true
          | _ -> false
        in
        if ok then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,overify serve) daemon and \
          print the JSON response envelope.")
    Term.(
      const run $ socket_arg $ level $ kind_arg $ program_arg $ file_arg
      $ size $ timeout $ jobs $ summaries_arg $ deterministic $ faults_arg
      $ shutdown $ stats $ metrics $ prometheus $ watch $ interval $ count
      $ garbage $ result_only $ retries $ backoff)

(* ---- postmortem subcommand ---- *)

let postmortem_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"A flight-record file (flight-*.bin) from the daemon's \
                $(b,--flight-dir).")
  in
  let run file =
    match O.Serve_flight.load file with
    | Error msg ->
        Printf.eprintf "postmortem: %s\n" msg;
        1
    | Ok d ->
        O.Serve_flight.render d;
        0
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Replay a daemon flight record: the bounded ring of spans, \
          events and warnings the daemon dumped when a request degraded, \
          a worker crashed or the daemon stopped.  Prints one line per \
          record with relative timestamps, trace ids, span nesting, \
          durations and counters.")
    Term.(const run $ file)

(* ---- corpus subcommand ---- *)

let corpus_cmd =
  let run () =
    List.iter
      (fun (p : O.Programs.t) ->
        Printf.printf "%-10s %s\n" p.O.Programs.name p.O.Programs.descr)
      O.Programs.programs;
    0
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the bundled Coreutils-like programs.")
    Term.(const run $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "overify" ~version:"1.0"
       ~doc:
         "Compiler + symbolic-execution toolchain reproducing '-OVERIFY: \
          Optimizing Programs for Fast Verification' (HotOS 2013).")
    [ compile_cmd; run_cmd; verify_cmd; analyze_cmd; tv_cmd; profile_cmd;
      serve_cmd; client_cmd; postmortem_cmd; corpus_cmd ]

let () = exit (Cmd.eval' main_cmd)
