(** Type checking and elaboration of MiniC into a typed tree.

    The typed tree makes every implicit C behaviour explicit so that lowering
    is a mechanical translation: integer promotions and usual arithmetic
    conversions become [TCast]s, pointer arithmetic carries its scale,
    compound assignments and increments carry the evaluated lvalue. *)

open Ast

exception Error of loc * string

let err loc fmt = Printf.ksprintf (fun s -> raise (Error (loc, s))) fmt

(* ---------------- typed tree ---------------- *)

type tlval =
  | LVar of string * bool * cty  (** name, is_global, variable type *)
  | LMem of texpr * cty          (** address, pointee type *)

(** Arithmetic operators on matching-width integer operands; signedness is
    taken from the result type. *)
and arith = AAdd | ASub | AMul | ADiv | AMod | AShl | AShr | AAnd | AOr | AXor

and relop = REq | RNe | RLt | RLe | RGt | RGe

and texpr = { ty : cty; node : tnode; tloc : loc }

and tnode =
  | TConst of int64
  | TStr of string                       (** char* pointing at a literal *)
  | TLoad of tlval
  | TAddr of tlval
  | TBin of arith * texpr * texpr        (** both operands have type [ty] *)
  | TPtrAdd of texpr * texpr * int       (** base, index (i64), byte scale *)
  | TCmp of relop * texpr * texpr        (** result int; same-typed operands *)
  | TLogNot of texpr                     (** !e, result int *)
  | TAnd of texpr * texpr                (** short-circuit, result int *)
  | TOr of texpr * texpr
  | TCond of texpr * texpr * texpr
  | TAssign of tlval * texpr             (** rhs already converted *)
  | TAssignArith of tlval * arith * texpr * cty
      (** [lv op= rhs]: compute in type [cty], store back converted *)
  | TAssignPtr of tlval * texpr * int    (** pointer [p += idx*scale] *)
  | TIncDec of { lv : tlval; pre : bool; inc : bool; scale : int }
      (** [scale = 0] for integers, element size for pointers *)
  | TCast of texpr * cty                 (** value conversion to [ty] *)
  | TCall of string * texpr list
  | TComma of texpr * texpr

type tstmt =
  | TSexpr of texpr
  | TSdecl of tdecl
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list        (** also encodes [for] after elab *)
  | TSdo of tstmt list * texpr
  | TSfor of tstmt list * texpr option * texpr option * tstmt list
  | TSbreak of loc
  | TScontinue of loc
  | TSreturn of texpr option

and tdecl = {
  td_name : string;
  td_ty : cty;
  td_init : tinit option;
  td_loc : loc;
}

and tinit =
  | TIexpr of texpr
  | TIlist of texpr list  (** element-typed, zero-filled to array length *)
  | TIstr of string

type tfunc = {
  tf_name : string;
  tf_ret : cty;
  tf_params : (cty * string) list;
  tf_body : tstmt list;
}

type tglobal = {
  tg_name : string;
  tg_ty : cty;
  tg_image : string;  (** initial byte image, little-endian *)
  tg_const : bool;
}

type tprog = {
  tp_globals : tglobal list;
  tp_funcs : tfunc list;
}

(* ---------------- environments ---------------- *)

type funsig = { fs_ret : cty; fs_params : cty list }

type env = {
  funs : (string, funsig) Hashtbl.t;
  globals : (string, cty) Hashtbl.t;
  mutable scopes : (string, string * cty) Hashtbl.t list;
      (** source name -> (unique name, type); locals are alpha-renamed so
          that lowering can key purely on the unique name *)
  mutable ret_ty : cty;
  mutable uid : int;
}

let intrinsic_sigs =
  [
    ("__input", { fs_ret = c_int; fs_params = [ c_int ] });
    ("__input_size", { fs_ret = c_int; fs_params = [] });
    ("__output", { fs_ret = CVoid; fs_params = [ c_int ] });
    ("__abort", { fs_ret = CVoid; fs_params = [] });
    ("__assert", { fs_ret = CVoid; fs_params = [ c_int ] });
  ]

(** Resolve a variable to (unique name, type, is_global). *)
let lookup_var env loc name =
  let rec in_scopes = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s name with
        | Some (u, t) -> Some (u, t, false)
        | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some r -> r
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> (name, t, true)
      | None -> err loc "unknown variable %s" name)

(* ---------------- type algebra ---------------- *)

let is_integer = function CInt _ -> true | CVoid | CPtr _ | CArr _ -> false
let is_pointerish = function CPtr _ | CArr _ -> true | CVoid | CInt _ -> false

let width_rank = function W8 -> 1 | W16 -> 2 | W32 -> 3 | W64 -> 4

(** C integer promotion: anything narrower than int becomes int. *)
let promote = function
  | CInt (w, _) when width_rank w < width_rank W32 -> c_int
  | t -> t

(** Usual arithmetic conversions over promoted integer operands. *)
let common_int loc a b =
  match (promote a, promote b) with
  | (CInt (wa, sa), CInt (wb, sb)) ->
      if width_rank wa > width_rank wb then CInt (wa, sa)
      else if width_rank wb > width_rank wa then CInt (wb, sb)
      else CInt (wa, sa && sb)
  | _ -> err loc "expected integer operands"

(** Decay arrays to pointers; the given texpr must denote an lvalue whose
    address is meaningful. *)
let decay (e : texpr) : texpr =
  match (e.ty, e.node) with
  | (CArr (elt, _), TLoad lv) -> { e with ty = CPtr elt; node = TAddr lv }
  | (CArr (elt, _), _) -> { e with ty = CPtr elt }
  | _ -> e

(** Insert a conversion of [e] to type [want] (no-op when equal). *)
let convert loc (e : texpr) want =
  if e.ty = want then e
  else
    match (e.ty, want) with
    | (CInt _, CInt _) -> { ty = want; node = TCast (e, want); tloc = loc }
    | (CInt _, CPtr _) -> { ty = want; node = TCast (e, want); tloc = loc }
    | (CPtr _, CInt _) -> { ty = want; node = TCast (e, want); tloc = loc }
    | (CPtr _, CPtr _) -> { e with ty = want }
    | _ ->
        err loc "cannot convert %s to %s" (string_of_cty e.ty)
          (string_of_cty want)

let elem_size loc = function
  | CPtr t ->
      let s = sizeof_cty t in
      if s = 0 then err loc "arithmetic on void pointer" else s
  | t -> err loc "expected pointer, got %s" (string_of_cty t)

let arith_of_binop loc = function
  | Badd -> AAdd | Bsub -> ASub | Bmul -> AMul | Bdiv -> ADiv | Bmod -> AMod
  | Bshl -> AShl | Bshr -> AShr | Band -> AAnd | Bor -> AOr | Bxor -> AXor
  | _ -> err loc "not an arithmetic operator"

let relop_of_binop = function
  | Blt -> Some RLt | Bgt -> Some RGt | Ble -> Some RLe | Bge -> Some RGe
  | Beq -> Some REq | Bne -> Some RNe
  | _ -> None

(* ---------------- constant evaluation (for initializers) ---------------- *)

let rec const_eval (e : expr) : int64 option =
  match e.e with
  | IntLit v | LongLit v -> Some v
  | CharLit c -> Some (Int64.of_int (Char.code c))
  | SizeofT t -> Some (Int64.of_int (sizeof_cty t))
  | Un (Neg, a) -> Option.map Int64.neg (const_eval a)
  | Un (BitNot, a) -> Option.map Int64.lognot (const_eval a)
  | Un (LogNot, a) ->
      Option.map (fun v -> if v = 0L then 1L else 0L) (const_eval a)
  | CastE (CInt (w, signed), a) ->
      Option.map
        (fun v ->
          let bits = 8 * sizeof_cty (CInt (w, signed)) in
          if bits >= 64 then v
          else
            let m = Int64.sub (Int64.shift_left 1L bits) 1L in
            let v = Int64.logand v m in
            if signed then
              let shift = 64 - bits in
              Int64.shift_right (Int64.shift_left v shift) shift
            else v)
        (const_eval a)
  | Bin (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | (Some va, Some vb) -> (
          match op with
          | Badd -> Some (Int64.add va vb)
          | Bsub -> Some (Int64.sub va vb)
          | Bmul -> Some (Int64.mul va vb)
          | Bdiv -> if vb = 0L then None else Some (Int64.div va vb)
          | Bmod -> if vb = 0L then None else Some (Int64.rem va vb)
          | Bshl -> Some (Int64.shift_left va (Int64.to_int vb land 63))
          | Bshr -> Some (Int64.shift_right va (Int64.to_int vb land 63))
          | Band -> Some (Int64.logand va vb)
          | Bor -> Some (Int64.logor va vb)
          | Bxor -> Some (Int64.logxor va vb)
          | Blt -> Some (if va < vb then 1L else 0L)
          | Bgt -> Some (if va > vb then 1L else 0L)
          | Ble -> Some (if va <= vb then 1L else 0L)
          | Bge -> Some (if va >= vb then 1L else 0L)
          | Beq -> Some (if va = vb then 1L else 0L)
          | Bne -> Some (if va <> vb then 1L else 0L)
          | Bland -> Some (if va <> 0L && vb <> 0L then 1L else 0L)
          | Blor -> Some (if va <> 0L || vb <> 0L then 1L else 0L))
      | _ -> None)
  | Cond (c, t, f) -> (
      match const_eval c with
      | Some v -> const_eval (if v <> 0L then t else f)
      | None -> None)
  | _ -> None

(* ---------------- expression checking ---------------- *)

let rec check_expr env (e : expr) : texpr =
  let loc = e.eloc in
  match e.e with
  | IntLit v -> { ty = c_int; node = TConst v; tloc = loc }
  | LongLit v -> { ty = c_long; node = TConst v; tloc = loc }
  | CharLit c ->
      { ty = c_int; node = TConst (Int64.of_int (Char.code c)); tloc = loc }
  | StrLit s -> { ty = CPtr c_char; node = TStr s; tloc = loc }
  | SizeofT t ->
      { ty = c_ulong; node = TConst (Int64.of_int (sizeof_cty t)); tloc = loc }
  | Ident name ->
      let (uname, ty, is_global) = lookup_var env loc name in
      decay { ty; node = TLoad (LVar (uname, is_global, ty)); tloc = loc }
  | Un (Deref, a) -> (
      let a = decay (check_expr env a) in
      match a.ty with
      | CPtr pt when pt <> CVoid ->
          decay { ty = pt; node = TLoad (LMem (a, pt)); tloc = loc }
      | _ -> err loc "cannot dereference %s" (string_of_cty a.ty))
  | Un (Addr, a) -> (
      let lv = check_lvalue env a in
      match lv with
      | LVar (_, _, ty) | LMem (_, ty) ->
          { ty = CPtr ty; node = TAddr lv; tloc = loc })
  | Un (Neg, a) ->
      let a = check_expr env a in
      if not (is_integer a.ty) then err loc "negation of non-integer";
      let ty = promote a.ty in
      let a = convert loc a ty in
      let zero = { ty; node = TConst 0L; tloc = loc } in
      { ty; node = TBin (ASub, zero, a); tloc = loc }
  | Un (BitNot, a) ->
      let a = check_expr env a in
      if not (is_integer a.ty) then err loc "~ of non-integer";
      let ty = promote a.ty in
      let a = convert loc a ty in
      let ones = { ty; node = TConst (-1L); tloc = loc } in
      { ty; node = TBin (AXor, a, ones); tloc = loc }
  | Un (LogNot, a) ->
      let a = decay (check_expr env a) in
      if not (is_integer a.ty || is_pointerish a.ty) then
        err loc "! of non-scalar";
      { ty = c_int; node = TLogNot a; tloc = loc }
  | Bin (Bland, a, b) ->
      let a = check_cond env a and b = check_cond env b in
      { ty = c_int; node = TAnd (a, b); tloc = loc }
  | Bin (Blor, a, b) ->
      let a = check_cond env a and b = check_cond env b in
      { ty = c_int; node = TOr (a, b); tloc = loc }
  | Bin (op, a, b) -> (
      let a = decay (check_expr env a) and b = decay (check_expr env b) in
      match relop_of_binop op with
      | Some rel -> check_relational env loc rel a b
      | None -> check_arith env loc op a b)
  | Cond (c, t, f) ->
      let c = check_cond env c in
      let t = decay (check_expr env t) and f = decay (check_expr env f) in
      let ty =
        if t.ty = f.ty then t.ty
        else if is_integer t.ty && is_integer f.ty then common_int loc t.ty f.ty
        else if is_pointerish t.ty && is_const_zero f then t.ty
        else if is_pointerish f.ty && is_const_zero t then f.ty
        else
          err loc "incompatible branches of ?: (%s vs %s)"
            (string_of_cty t.ty) (string_of_cty f.ty)
      in
      let t = convert loc t ty and f = convert loc f ty in
      { ty; node = TCond (c, t, f); tloc = loc }
  | Assign (None, lhs, rhs) ->
      let lv = check_lvalue env lhs in
      let lty = lval_ty lv in
      let rhs = decay (check_expr env rhs) in
      let rhs = assign_convert loc rhs lty in
      { ty = lty; node = TAssign (lv, rhs); tloc = loc }
  | Assign (Some op, lhs, rhs) -> (
      let lv = check_lvalue env lhs in
      let lty = lval_ty lv in
      let rhs = decay (check_expr env rhs) in
      match lty with
      | CPtr _ when op = Badd || op = Bsub ->
          if not (is_integer rhs.ty) then err loc "pointer += non-integer";
          let idx = convert loc rhs c_long in
          let idx =
            if op = Bsub then
              let z = { ty = c_long; node = TConst 0L; tloc = loc } in
              { ty = c_long; node = TBin (ASub, z, idx); tloc = loc }
            else idx
          in
          { ty = lty; node = TAssignPtr (lv, idx, elem_size loc lty); tloc = loc }
      | CInt _ ->
          let a = arith_of_binop loc op in
          let opty = common_int loc lty rhs.ty in
          let opty = if op = Bshl || op = Bshr then promote lty else opty in
          let rhs = convert loc rhs opty in
          { ty = lty; node = TAssignArith (lv, a, rhs, opty); tloc = loc }
      | _ -> err loc "bad compound assignment target")
  | IncDec { pre; inc; arg } -> (
      let lv = check_lvalue env arg in
      let lty = lval_ty lv in
      match lty with
      | CInt _ ->
          { ty = lty; node = TIncDec { lv; pre; inc; scale = 0 }; tloc = loc }
      | CPtr _ ->
          { ty = lty;
            node = TIncDec { lv; pre; inc; scale = elem_size loc lty };
            tloc = loc }
      | _ -> err loc "++/-- of non-scalar")
  | Call (name, args) -> (
      let fsig =
        match Hashtbl.find_opt env.funs name with
        | Some s -> Some s
        | None -> List.assoc_opt name intrinsic_sigs
      in
      match fsig with
      | None -> err loc "call to undeclared function %s" name
      | Some { fs_ret; fs_params } ->
          if List.length args <> List.length fs_params then
            err loc "%s expects %d arguments, got %d" name
              (List.length fs_params) (List.length args);
          let targs =
            List.map2
              (fun a pty ->
                assign_convert loc (decay (check_expr env a)) pty)
              args fs_params
          in
          { ty = fs_ret; node = TCall (name, targs); tloc = loc })
  | Index (base, idx) -> (
      let base = decay (check_expr env base) in
      let idx = decay (check_expr env idx) in
      match base.ty with
      | CPtr elt when elt <> CVoid ->
          if not (is_integer idx.ty) then err loc "array index not integer";
          let idx = convert loc idx c_long in
          let addr =
            { ty = base.ty;
              node = TPtrAdd (base, idx, sizeof_cty elt);
              tloc = loc }
          in
          decay { ty = elt; node = TLoad (LMem (addr, elt)); tloc = loc }
      | _ -> err loc "indexing a non-pointer (%s)" (string_of_cty base.ty))
  | CastE (ty, a) -> (
      let a = decay (check_expr env a) in
      match (a.ty, ty) with
      | (t1, t2) when t1 = t2 -> a
      | ((CInt _ | CPtr _), (CInt _ | CPtr _)) ->
          { ty; node = TCast (a, ty); tloc = loc }
      | (_, CVoid) -> { ty = CVoid; node = TCast (a, CVoid); tloc = loc }
      | _ -> err loc "invalid cast to %s" (string_of_cty ty))
  | Comma (a, b) ->
      let a = check_expr env a in
      let b = decay (check_expr env b) in
      { ty = b.ty; node = TComma (a, b); tloc = loc }

and is_const_zero (e : texpr) =
  match e.node with TConst 0L -> true | _ -> false

and lval_ty = function LVar (_, _, t) -> t | LMem (_, t) -> t

(** An expression used where a boolean condition is needed: any scalar. *)
and check_cond env (e : expr) : texpr =
  let t = decay (check_expr env e) in
  if not (is_integer t.ty || is_pointerish t.ty) then
    err e.eloc "condition is not scalar (%s)" (string_of_cty t.ty);
  t

and check_relational _env loc rel a b =
  if is_integer a.ty && is_integer b.ty then begin
    let ty = common_int loc a.ty b.ty in
    let a = convert loc a ty and b = convert loc b ty in
    { ty = c_int; node = TCmp (rel, a, b); tloc = loc }
  end
  else if is_pointerish a.ty && is_pointerish b.ty then
    { ty = c_int; node = TCmp (rel, a, b); tloc = loc }
  else if is_pointerish a.ty && is_const_zero b then
    { ty = c_int; node = TCmp (rel, a, convert loc b a.ty); tloc = loc }
  else if is_pointerish b.ty && is_const_zero a then
    { ty = c_int; node = TCmp (rel, convert loc a b.ty, b); tloc = loc }
  else err loc "invalid comparison"

and check_arith _env loc op a b =
  match (a.ty, b.ty, op) with
  | (CPtr _, CInt _, (Badd | Bsub)) ->
      let idx = convert loc b c_long in
      let idx =
        if op = Bsub then
          let z = { ty = c_long; node = TConst 0L; tloc = loc } in
          { ty = c_long; node = TBin (ASub, z, idx); tloc = loc }
        else idx
      in
      { ty = a.ty; node = TPtrAdd (a, idx, elem_size loc a.ty); tloc = loc }
  | (CInt _, CPtr _, Badd) ->
      let idx = convert loc a c_long in
      { ty = b.ty; node = TPtrAdd (b, idx, elem_size loc b.ty); tloc = loc }
  | (CPtr _, CPtr _, Bsub) ->
      err loc "pointer difference is not supported; track indices instead"
  | (CInt _, CInt _, _) ->
      let aop = arith_of_binop loc op in
      let ty =
        if op = Bshl || op = Bshr then promote a.ty else common_int loc a.ty b.ty
      in
      let shift_ty = if op = Bshl || op = Bshr then promote b.ty else ty in
      let a = convert loc a ty in
      let b = convert loc b (if op = Bshl || op = Bshr then shift_ty else ty) in
      (* shifts: bring the amount to the operand type for the IR *)
      let b = if op = Bshl || op = Bshr then convert loc b ty else b in
      { ty; node = TBin (aop, a, b); tloc = loc }
  | _ ->
      err loc "invalid operands (%s, %s)" (string_of_cty a.ty)
        (string_of_cty b.ty)

and assign_convert loc (e : texpr) want =
  match (e.ty, want) with
  | (t1, t2) when t1 = t2 -> e
  | (CInt _, CInt _) -> convert loc e want
  | (CInt _, CPtr _) when is_const_zero e -> convert loc e want
  | (CPtr _, CPtr (CInt (W8, _)))
  | (CPtr (CInt (W8, _)), CPtr _) ->
      (* char* interconversion, pervasive in C string code *)
      { e with ty = want }
  | (CPtr _, CPtr CVoid) | (CPtr CVoid, CPtr _) -> { e with ty = want }
  | _ ->
      err loc "cannot assign %s to %s" (string_of_cty e.ty)
        (string_of_cty want)

and check_lvalue env (e : expr) : tlval =
  let loc = e.eloc in
  match e.e with
  | Ident name ->
      let (uname, ty, is_global) = lookup_var env loc name in
      LVar (uname, is_global, ty)
  | Un (Deref, a) -> (
      let a = decay (check_expr env a) in
      match a.ty with
      | CPtr pt when pt <> CVoid -> LMem (a, pt)
      | _ -> err loc "cannot dereference %s" (string_of_cty a.ty))
  | Index (base, idx) -> (
      let base = decay (check_expr env base) in
      let idx = decay (check_expr env idx) in
      match base.ty with
      | CPtr elt when elt <> CVoid ->
          let idx = convert loc idx c_long in
          let addr =
            { ty = base.ty;
              node = TPtrAdd (base, idx, sizeof_cty elt);
              tloc = loc }
          in
          LMem (addr, elt)
      | _ -> err loc "indexing a non-pointer")
  | _ -> err loc "expression is not an lvalue"

(* ---------------- statements ---------------- *)

let rec check_stmt env (s : stmt) : tstmt list =
  let loc = s.sloc in
  match s.s with
  | Sexpr e -> [ TSexpr (check_expr env e) ]
  | Sdecl ds -> List.map (check_decl env loc) ds
  | Sif (c, th, el) ->
      let c = check_cond env c in
      let th = in_scope env (fun () -> check_stmt env th) in
      let el =
        match el with
        | Some el -> in_scope env (fun () -> check_stmt env el)
        | None -> []
      in
      [ TSif (c, th, el) ]
  | Swhile (c, body) ->
      let c = check_cond env c in
      let body = in_scope env (fun () -> check_stmt env body) in
      [ TSwhile (c, body) ]
  | Sdo (body, c) ->
      let body = in_scope env (fun () -> check_stmt env body) in
      let c = check_cond env c in
      [ TSdo (body, c) ]
  | Sfor (init, cond, step, body) ->
      in_scope env (fun () ->
          let init =
            match init with
            | None -> []
            | Some (FExpr e) -> [ TSexpr (check_expr env e) ]
            | Some (FDecl ds) -> List.map (check_decl env loc) ds
          in
          let cond = Option.map (check_cond env) cond in
          let step = Option.map (check_expr env) step in
          let body = in_scope env (fun () -> check_stmt env body) in
          [ TSfor (init, cond, step, body) ])
  | Sblock ss ->
      in_scope env (fun () -> List.concat_map (check_stmt env) ss)
  | Sbreak -> [ TSbreak loc ]
  | Scontinue -> [ TScontinue loc ]
  | Sreturn None ->
      if env.ret_ty <> CVoid then err loc "missing return value";
      [ TSreturn None ]
  | Sreturn (Some e) ->
      if env.ret_ty = CVoid then err loc "return value in void function";
      let e = assign_convert loc (decay (check_expr env e)) env.ret_ty in
      [ TSreturn (Some e) ]

and in_scope env f =
  env.scopes <- Hashtbl.create 8 :: env.scopes;
  let r = f () in
  env.scopes <- List.tl env.scopes;
  r

and check_decl env loc (d : decl) : tstmt =
  (match d.dty with
  | CVoid -> err loc "variable %s has type void" d.dname
  | _ -> ());
  let init =
    match (d.dinit, d.dty) with
    | (None, _) -> None
    | (Some (Iexpr e), _) ->
        let e = decay (check_expr env e) in
        Some (TIexpr (assign_convert loc e d.dty))
    | (Some (Ilist es), CArr (elt, n)) ->
        if List.length es > n then err loc "too many initializers for %s" d.dname;
        let tes =
          List.map
            (fun e -> assign_convert loc (decay (check_expr env e)) elt)
            es
        in
        Some (TIlist tes)
    | (Some (Ilist _), _) -> err loc "initializer list for non-array"
    | (Some (Istr s), CArr (CInt (W8, _), n)) ->
        if String.length s + 1 > n then err loc "string too long for %s" d.dname;
        Some (TIstr s)
    | (Some (Istr _), _) -> err loc "string initializer for non-char-array"
  in
  let uname =
    env.uid <- env.uid + 1;
    Printf.sprintf "%s$%d" d.dname env.uid
  in
  (match env.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope d.dname then err loc "redeclaration of %s" d.dname;
      Hashtbl.replace scope d.dname (uname, d.dty)
  | [] -> assert false);
  TSdecl { td_name = uname; td_ty = d.dty; td_init = init; td_loc = loc }

(* ---------------- globals ---------------- *)

let store_le bytes off v size =
  for i = 0 to size - 1 do
    Bytes.set bytes (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let global_image loc (d : decl) : string =
  let size = sizeof_cty d.dty in
  if size <= 0 then err loc "global %s has zero size" d.dname;
  let img = Bytes.make size '\000' in
  (match (d.dinit, d.dty) with
  | (None, _) -> ()
  | (Some (Iexpr e), t) when is_integer t -> (
      match const_eval e with
      | Some v -> store_le img 0 v size
      | None -> err loc "global %s initializer is not constant" d.dname)
  | (Some (Ilist es), CArr (elt, _)) ->
      let esize = sizeof_cty elt in
      List.iteri
        (fun i e ->
          match const_eval e with
          | Some v -> store_le img (i * esize) v esize
          | None -> err loc "global %s element %d not constant" d.dname i)
        es
  | (Some (Istr s), CArr (CInt (W8, _), n)) ->
      if String.length s + 1 > n then err loc "string too long for %s" d.dname;
      Bytes.blit_string s 0 img 0 (String.length s)
  | _ -> err loc "unsupported global initializer for %s" d.dname);
  Bytes.to_string img

(* ---------------- program ---------------- *)

let dummy_loc : loc = { Lexer.line = 0; col = 0 }

(** Check a whole program (several translation units may be concatenated
    before the call).  Returns the typed program. *)
let check_program (prog : program) : tprog =
  let env =
    {
      funs = Hashtbl.create 32;
      globals = Hashtbl.create 16;
      scopes = [];
      ret_ty = CVoid;
      uid = 0;
    }
  in
  (* first pass: signatures and globals *)
  List.iter
    (fun top ->
      match top with
      | Tproto { pret; pname; pparams } ->
          Hashtbl.replace env.funs pname { fs_ret = pret; fs_params = pparams }
      | Tfunc { fret; fname; fparams; _ } ->
          (match Hashtbl.find_opt env.funs fname with
          | Some existing ->
              if existing.fs_ret <> fret
                 || existing.fs_params <> List.map fst fparams
              then err dummy_loc "conflicting declarations of %s" fname
          | None -> ());
          Hashtbl.replace env.funs fname
            { fs_ret = fret; fs_params = List.map fst fparams }
      | Tglobal d ->
          if Hashtbl.mem env.globals d.dname then
            err dummy_loc "redefinition of global %s" d.dname;
          Hashtbl.replace env.globals d.dname d.dty)
    prog;
  (* second pass: bodies and images *)
  let funcs = ref [] and globals = ref [] and defined = Hashtbl.create 16 in
  List.iter
    (fun top ->
      match top with
      | Tproto _ -> ()
      | Tglobal d ->
          globals :=
            {
              tg_name = d.dname;
              tg_ty = d.dty;
              tg_image = global_image dummy_loc d;
              tg_const = false;
            }
            :: !globals
      | Tfunc { fret; fname; fparams; fbody } ->
          if Hashtbl.mem defined fname then
            err dummy_loc "redefinition of function %s" fname;
          Hashtbl.replace defined fname ();
          env.ret_ty <- fret;
          let body =
            in_scope env (fun () ->
                List.iter
                  (fun (ty, name) ->
                    match env.scopes with
                    | scope :: _ -> Hashtbl.replace scope name (name, ty)
                    | [] -> assert false)
                  fparams;
                check_stmt env fbody)
          in
          funcs :=
            { tf_name = fname; tf_ret = fret; tf_params = fparams;
              tf_body = body }
            :: !funcs)
    prog;
  { tp_globals = List.rev !globals; tp_funcs = List.rev !funcs }
