(** Lowering of the typed tree to IR in {e memory form}.

    Memory-form invariant: the only registers live across basic-block
    boundaries are entry-block allocas.  Every local variable gets an alloca;
    short-circuit operators and [?:] produce control flow whose value is
    communicated through a temporary alloca; when a later operand of an
    expression can branch, already-computed operands are spilled to
    temporaries and reloaded afterwards.

    Keeping [-O0] output maximally branchy mirrors clang -O0 and gives the
    path-count baseline the paper's Table 1 starts from. *)

open Sema
module A = Ast
module B = Overify_ir.Builder
module Ir = Overify_ir.Ir

exception Error of A.loc * string

let err loc fmt = Printf.ksprintf (fun s -> raise (Error (loc, s))) fmt

let rec ir_ty : A.cty -> Ir.ty = function
  | A.CVoid -> Ir.Void
  | A.CInt (A.W8, _) -> Ir.I8
  | A.CInt (A.W16, _) -> Ir.I16
  | A.CInt (A.W32, _) -> Ir.I32
  | A.CInt (A.W64, _) -> Ir.I64
  | A.CPtr _ -> Ir.Ptr
  | A.CArr (t, n) -> Ir.Arr (ir_ty t, n)

let is_signed = function A.CInt (_, s) -> s | _ -> false

(* module-wide lowering state: interned string literals *)
type mstate = {
  strtbl : (string, string) Hashtbl.t;  (* content -> global name *)
  mutable nstr : int;
  mutable extra_globals : Ir.global list;
}

let intern_string ms s =
  match Hashtbl.find_opt ms.strtbl s with
  | Some name -> name
  | None ->
      let name = Printf.sprintf ".str.%d" ms.nstr in
      ms.nstr <- ms.nstr + 1;
      Hashtbl.replace ms.strtbl s name;
      ms.extra_globals <-
        {
          Ir.gname = name;
          gsize = String.length s + 1;
          ginit = s ^ "\000";
          gconst = true;
        }
        :: ms.extra_globals;
      name

(* per-function lowering state *)
type ctx = {
  b : B.t;
  ms : mstate;
  vars : (string, Ir.value) Hashtbl.t;  (* unique local name -> alloca *)
  entry_allocas : (int, unit) Hashtbl.t;
  mutable loops : (int * int) list;  (* (break target, continue target) *)
  ret_ty : A.cty;
}

let entry_alloca ctx ty n =
  let v = B.entry_alloca ctx.b ty n in
  (match v with Ir.Reg r -> Hashtbl.replace ctx.entry_allocas r () | _ -> ());
  v

(** Can lowering this expression create new basic blocks? *)
let rec may_branch (e : texpr) : bool =
  match e.node with
  | TAnd _ | TOr _ | TCond _ -> true
  | TConst _ | TStr _ -> false
  | TLoad lv | TAddr lv -> lval_may_branch lv
  | TBin (_, a, b) | TPtrAdd (a, b, _) | TComma (a, b) ->
      may_branch a || may_branch b
  | TCmp (_, a, b) -> may_branch a || may_branch b
  | TLogNot a | TCast (a, _) -> may_branch a
  | TAssign (lv, r) -> lval_may_branch lv || may_branch r
  | TAssignArith (lv, _, r, _) -> lval_may_branch lv || may_branch r
  | TAssignPtr (lv, r, _) -> lval_may_branch lv || may_branch r
  | TIncDec { lv; _ } -> lval_may_branch lv
  | TCall (_, args) -> List.exists may_branch args

and lval_may_branch = function
  | LVar _ -> false
  | LMem (a, _) -> may_branch a

(** Return a thunk producing [v] in whatever block is current when the thunk
    runs.  If evaluation of subsequent operands may branch and [v] is a
    block-local register, spill it to a temporary now and reload then. *)
let protect ctx ty (v : Ir.value) ~later_branches =
  match v with
  | Ir.Imm _ | Ir.Glob _ -> fun () -> v
  | Ir.Reg r when Hashtbl.mem ctx.entry_allocas r -> fun () -> v
  | Ir.Reg _ when not later_branches -> fun () -> v
  | Ir.Reg _ ->
      let slot = entry_alloca ctx ty 1 in
      B.store ctx.b ty v slot;
      fun () -> B.load ctx.b ty slot

let zext_bool ctx (v : Ir.value) to_ty = B.cast ctx.b Ir.Zext to_ty v Ir.I1

let rec lower_expr ctx (e : texpr) : Ir.value =
  let loc = e.tloc in
  match e.node with
  | TConst v -> Ir.imm (ir_ty e.ty) v
  | TStr s -> Ir.Glob (intern_string ctx.ms s)
  | TLoad lv -> (
      match e.ty with
      | A.CArr _ -> err loc "internal: load of array value"
      | _ ->
          let addr = lower_lval ctx loc lv in
          B.load ctx.b (ir_ty e.ty) addr)
  | TAddr lv -> lower_lval ctx loc lv
  | TBin (op, a, b) -> (
      let ty = ir_ty e.ty in
      match lower_many ctx [ a; b ] with
      | [ va; vb ] -> B.bin ctx.b (ir_binop op (is_signed e.ty)) ty va vb
      | _ -> assert false)
  | TPtrAdd (p, idx, scale) -> (
      match lower_many ctx [ p; idx ] with
      | [ vp; vi ] -> B.gep ctx.b vp scale vi
      | _ -> assert false)
  | TCmp (rel, a, b) ->
      let c = lower_cmp ctx rel a b in
      zext_bool ctx c Ir.I32
  | TLogNot a ->
      let va = lower_expr ctx a in
      let vty = ir_ty a.ty in
      let c = B.cmp ctx.b Ir.Eq vty va (Ir.zero vty) in
      zext_bool ctx c Ir.I32
  | TAnd _ | TOr _ ->
      (* materialize the short-circuit result through a temporary *)
      lower_bool_value ctx e
  | TCond (c, t, f) ->
      let ty = ir_ty e.ty in
      let slot = entry_alloca ctx ty 1 in
      let lt = B.new_block ctx.b
      and lf = B.new_block ctx.b
      and lm = B.new_block ctx.b in
      lower_branch ctx c lt lf;
      B.switch_to ctx.b lt;
      let vt = lower_expr ctx t in
      B.store ctx.b ty vt slot;
      B.term ctx.b (Ir.Br lm);
      B.switch_to ctx.b lf;
      let vf = lower_expr ctx f in
      B.store ctx.b ty vf slot;
      B.term ctx.b (Ir.Br lm);
      B.switch_to ctx.b lm;
      B.load ctx.b ty slot
  | TAssign (lv, rhs) ->
      let lty = ir_ty (lval_ty lv) in
      let get_addr = lower_lval_protected ctx loc lv ~later:[ rhs ] in
      let v = lower_expr ctx rhs in
      B.store ctx.b lty v (get_addr ());
      v
  | TAssignArith (lv, op, rhs, opcty) ->
      let lcty = lval_ty lv in
      let lty = ir_ty lcty in
      let opty = ir_ty opcty in
      let get_addr = lower_lval_protected ctx loc lv ~later:[ rhs ] in
      let vr = lower_expr ctx rhs in
      let addr = get_addr () in
      let old = B.load ctx.b lty addr in
      let old' = lower_conversion ctx old lcty opcty in
      let res = B.bin ctx.b (ir_binop op (is_signed opcty)) opty old' vr in
      let res' = lower_conversion ctx res opcty lcty in
      B.store ctx.b lty res' addr;
      res'
  | TAssignPtr (lv, idx, scale) ->
      let get_addr = lower_lval_protected ctx loc lv ~later:[ idx ] in
      let vi = lower_expr ctx idx in
      let addr = get_addr () in
      let old = B.load ctx.b Ir.Ptr addr in
      let np = B.gep ctx.b old scale vi in
      B.store ctx.b Ir.Ptr np addr;
      np
  | TIncDec { lv; pre; inc; scale } ->
      let lcty = lval_ty lv in
      let lty = ir_ty lcty in
      let addr = lower_lval ctx loc lv in
      let old = B.load ctx.b lty addr in
      let nv =
        if scale = 0 then
          B.bin ctx.b (if inc then Ir.Add else Ir.Sub) lty old (Ir.one lty)
        else
          B.gep ctx.b old scale (Ir.imm Ir.I64 (if inc then 1L else -1L))
      in
      B.store ctx.b lty nv addr;
      if pre then nv else old
  | TCast (a, to_cty) ->
      let v = lower_expr ctx a in
      lower_conversion ~loc ctx v a.ty to_cty
  | TCall (name, args) -> (
      let rty = lookup_ret ctx name e.ty in
      let vargs = lower_many ctx args in
      match B.call ctx.b rty name vargs with
      | Some v -> v
      | None -> Ir.zero Ir.I32 (* void result; never used as a value *))
  | TComma (a, b) ->
      ignore (lower_expr ctx a);
      lower_expr ctx b

and lookup_ret _ctx _name cty = ir_ty cty

and ir_binop (op : arith) signed : Ir.binop =
  match op with
  | AAdd -> Ir.Add | ASub -> Ir.Sub | AMul -> Ir.Mul
  | ADiv -> if signed then Ir.Sdiv else Ir.Udiv
  | AMod -> if signed then Ir.Srem else Ir.Urem
  | AShl -> Ir.Shl
  | AShr -> if signed then Ir.Ashr else Ir.Lshr
  | AAnd -> Ir.And | AOr -> Ir.Or | AXor -> Ir.Xor

and ir_cmp (rel : relop) signed : Ir.cmp =
  match rel with
  | REq -> Ir.Eq | RNe -> Ir.Ne
  | RLt -> if signed then Ir.Slt else Ir.Ult
  | RLe -> if signed then Ir.Sle else Ir.Ule
  | RGt -> if signed then Ir.Sgt else Ir.Ugt
  | RGe -> if signed then Ir.Sge else Ir.Uge

(** Integer/pointer conversions.  IR types do not carry signedness, so a
    same-width conversion is the identity; sign/zero extension is chosen by
    the {e source} type, following C. *)
and lower_conversion ?loc ctx v (from_cty : A.cty) (to_cty : A.cty) : Ir.value =
  let loc = Option.value loc ~default:{ Lexer.line = 0; col = 0 } in
  match (from_cty, to_cty) with
  | (f, t) when ir_ty f = ir_ty t -> v
  | (A.CInt _, A.CInt _) ->
      let fi = ir_ty from_cty and ti = ir_ty to_cty in
      let fb = Ir.bits_of_ty fi and tb = Ir.bits_of_ty ti in
      let op =
        if tb < fb then Ir.Trunc
        else if is_signed from_cty then Ir.Sext
        else Ir.Zext
      in
      (* fold constant conversions right here so that constant array indices
         stay literal (SROA and the peeler pattern-match on them) *)
      (match v with
      | Ir.Imm (c, _) -> Ir.Imm (Ir.eval_cast op ti c fi, ti)
      | _ -> B.cast ctx.b op ti v fi)
  | (A.CInt _, (A.CPtr _ | A.CArr _)) -> (
      match v with
      | Ir.Imm (0L, _) -> Ir.Imm (0L, Ir.Ptr)
      | _ -> err loc "integer-to-pointer casts are not supported")
  | ((A.CPtr _ | A.CArr _), A.CInt _) ->
      err loc "pointer-to-integer casts are not supported"
  | (_, A.CVoid) -> v
  | _ -> err loc "unsupported conversion"

(** Lower a list of operands left to right, spilling earlier results when a
    later operand can branch. *)
and lower_many ctx (es : texpr list) : Ir.value list =
  match es with
  | [] -> []
  | [ e ] -> [ lower_expr ctx e ]
  | e :: rest ->
      let later_branches = List.exists may_branch rest in
      let v = lower_expr ctx e in
      let get = protect ctx (ir_ty e.ty) v ~later_branches in
      let vs = lower_many ctx rest in
      get () :: vs

and lower_lval ctx loc (lv : tlval) : Ir.value =
  match lv with
  | LVar (name, false, _) -> (
      match Hashtbl.find_opt ctx.vars name with
      | Some slot -> slot
      | None -> err loc "unknown local %s" name)
  | LVar (name, true, _) -> Ir.Glob name
  | LMem (addr, _) -> lower_expr ctx addr

(** Lower an lvalue address and protect it against branching in [later]. *)
and lower_lval_protected ctx loc lv ~later =
  let branches = List.exists may_branch later in
  let addr = lower_lval ctx loc lv in
  protect ctx Ir.Ptr addr ~later_branches:branches

(** Produce an [I1] for a comparison whose operands are already checked. *)
and lower_cmp ctx rel a b : Ir.value =
  let signed = is_signed a.ty in
  let vty = ir_ty a.ty in
  match lower_many ctx [ a; b ] with
  | [ va; vb ] -> B.cmp ctx.b (ir_cmp rel signed) vty va vb
  | _ -> assert false

(** Lower a boolean-valued short-circuit expression by materializing 0/1
    through a temporary (used when [&&]/[||] appears in value position). *)
and lower_bool_value ctx (e : texpr) : Ir.value =
  let slot = entry_alloca ctx Ir.I32 1 in
  let lt = B.new_block ctx.b
  and lf = B.new_block ctx.b
  and lm = B.new_block ctx.b in
  lower_branch ctx e lt lf;
  B.switch_to ctx.b lt;
  B.store ctx.b Ir.I32 (Ir.imm Ir.I32 1L) slot;
  B.term ctx.b (Ir.Br lm);
  B.switch_to ctx.b lf;
  B.store ctx.b Ir.I32 (Ir.imm Ir.I32 0L) slot;
  B.term ctx.b (Ir.Br lm);
  B.switch_to ctx.b lm;
  B.load ctx.b Ir.I32 slot

(** Lower [e] as a condition: emit control flow ending with a conditional
    branch to [ltrue]/[lfalse].  Short-circuit structure maps directly onto
    the CFG, exactly like clang -O0. *)
and lower_branch ctx (e : texpr) ltrue lfalse : unit =
  match e.node with
  | TAnd (a, b) ->
      let lmid = B.new_block ctx.b in
      lower_branch ctx a lmid lfalse;
      B.switch_to ctx.b lmid;
      lower_branch ctx b ltrue lfalse
  | TOr (a, b) ->
      let lmid = B.new_block ctx.b in
      lower_branch ctx a ltrue lmid;
      B.switch_to ctx.b lmid;
      lower_branch ctx b ltrue lfalse
  | TLogNot a -> lower_branch ctx a lfalse ltrue
  | TCmp (rel, a, b) ->
      let c = lower_cmp ctx rel a b in
      B.term ctx.b (Ir.Cbr (c, ltrue, lfalse))
  | TCond (c, t, f) ->
      let lt = B.new_block ctx.b and lf = B.new_block ctx.b in
      lower_branch ctx c lt lf;
      B.switch_to ctx.b lt;
      lower_branch ctx t ltrue lfalse;
      B.switch_to ctx.b lf;
      lower_branch ctx f ltrue lfalse
  | TConst v ->
      B.term ctx.b (Ir.Br (if v <> 0L then ltrue else lfalse))
  | _ ->
      let v = lower_expr ctx e in
      let vty = ir_ty e.ty in
      let c = B.cmp ctx.b Ir.Ne vty v (Ir.zero vty) in
      B.term ctx.b (Ir.Cbr (c, ltrue, lfalse))

(* ---------------- statements ---------------- *)

let ensure_open ctx =
  (* after a return/break, remaining source statements are unreachable; give
     them a fresh block that dead-code elimination will drop *)
  if B.is_terminated ctx.b then begin
    let l = B.new_block ctx.b in
    B.switch_to ctx.b l
  end

let rec lower_stmts ctx (ss : tstmt list) : unit =
  List.iter
    (fun s ->
      ensure_open ctx;
      lower_stmt ctx s)
    ss

and lower_stmt ctx (s : tstmt) : unit =
  match s with
  | TSexpr e -> ignore (lower_expr ctx e)
  | TSdecl d -> lower_decl ctx d
  | TSif (c, th, el) ->
      let lt = B.new_block ctx.b and lm = B.new_block ctx.b in
      let lf = if el = [] then lm else B.new_block ctx.b in
      lower_branch ctx c lt lf;
      B.switch_to ctx.b lt;
      lower_stmts ctx th;
      B.term ctx.b (Ir.Br lm);
      if el <> [] then begin
        B.switch_to ctx.b lf;
        lower_stmts ctx el;
        B.term ctx.b (Ir.Br lm)
      end;
      B.switch_to ctx.b lm
  | TSwhile (c, body) ->
      let lhead = B.new_block ctx.b
      and lbody = B.new_block ctx.b
      and lexit = B.new_block ctx.b in
      B.term ctx.b (Ir.Br lhead);
      B.switch_to ctx.b lhead;
      lower_branch ctx c lbody lexit;
      B.switch_to ctx.b lbody;
      ctx.loops <- (lexit, lhead) :: ctx.loops;
      lower_stmts ctx body;
      ctx.loops <- List.tl ctx.loops;
      B.term ctx.b (Ir.Br lhead);
      B.switch_to ctx.b lexit
  | TSdo (body, c) ->
      let lbody = B.new_block ctx.b
      and lcond = B.new_block ctx.b
      and lexit = B.new_block ctx.b in
      B.term ctx.b (Ir.Br lbody);
      B.switch_to ctx.b lbody;
      ctx.loops <- (lexit, lcond) :: ctx.loops;
      lower_stmts ctx body;
      ctx.loops <- List.tl ctx.loops;
      B.term ctx.b (Ir.Br lcond);
      B.switch_to ctx.b lcond;
      lower_branch ctx c lbody lexit;
      B.switch_to ctx.b lexit
  | TSfor (init, cond, step, body) ->
      lower_stmts ctx init;
      ensure_open ctx;
      let lhead = B.new_block ctx.b
      and lbody = B.new_block ctx.b
      and lstep = B.new_block ctx.b
      and lexit = B.new_block ctx.b in
      B.term ctx.b (Ir.Br lhead);
      B.switch_to ctx.b lhead;
      (match cond with
      | Some c -> lower_branch ctx c lbody lexit
      | None -> B.term ctx.b (Ir.Br lbody));
      B.switch_to ctx.b lbody;
      ctx.loops <- (lexit, lstep) :: ctx.loops;
      lower_stmts ctx body;
      ctx.loops <- List.tl ctx.loops;
      B.term ctx.b (Ir.Br lstep);
      B.switch_to ctx.b lstep;
      (match step with Some e -> ignore (lower_expr ctx e) | None -> ());
      B.term ctx.b (Ir.Br lhead);
      B.switch_to ctx.b lexit
  | TSbreak loc -> (
      match ctx.loops with
      | (lexit, _) :: _ -> B.term ctx.b (Ir.Br lexit)
      | [] -> err loc "break outside loop")
  | TScontinue loc -> (
      match ctx.loops with
      | (_, lcont) :: _ -> B.term ctx.b (Ir.Br lcont)
      | [] -> err loc "continue outside loop")
  | TSreturn None -> B.term ctx.b (Ir.Ret None)
  | TSreturn (Some e) ->
      let v = lower_expr ctx e in
      B.term ctx.b (Ir.Ret (Some v))

and lower_decl ctx (d : tdecl) : unit =
  match d.td_ty with
  | A.CArr (elt, n) -> (
      let ety = ir_ty elt in
      let slot = entry_alloca ctx ety n in
      Hashtbl.replace ctx.vars d.td_name slot;
      let esize = A.sizeof_cty elt in
      match d.td_init with
      | None -> ()
      | Some (TIlist es) ->
          List.iteri
            (fun i e ->
              let v = lower_expr ctx e in
              let addr = B.gep ctx.b slot esize (Ir.imm Ir.I64 (Int64.of_int i)) in
              B.store ctx.b ety v addr)
            es;
          (* zero-fill the rest, as C does for partially initialized arrays *)
          for i = List.length es to n - 1 do
            let addr = B.gep ctx.b slot esize (Ir.imm Ir.I64 (Int64.of_int i)) in
            B.store ctx.b ety (Ir.zero ety) addr
          done
      | Some (TIstr s) ->
          String.iteri
            (fun i c ->
              let addr = B.gep ctx.b slot 1 (Ir.imm Ir.I64 (Int64.of_int i)) in
              B.store ctx.b Ir.I8 (Ir.imm Ir.I8 (Int64.of_int (Char.code c))) addr)
            s;
          for i = String.length s to n - 1 do
            let addr = B.gep ctx.b slot 1 (Ir.imm Ir.I64 (Int64.of_int i)) in
            B.store ctx.b Ir.I8 (Ir.zero Ir.I8) addr
          done
      | Some (TIexpr _) -> err d.td_loc "scalar initializer for array %s" d.td_name)
  | _ ->
      let ty = ir_ty d.td_ty in
      let slot = entry_alloca ctx ty 1 in
      Hashtbl.replace ctx.vars d.td_name slot;
      (match d.td_init with
      | Some (TIexpr e) ->
          let v = lower_expr ctx e in
          B.store ctx.b ty v slot
      | Some (TIlist _ | TIstr _) -> err d.td_loc "list initializer for scalar %s" d.td_name
      | None -> ())

(* ---------------- functions and programs ---------------- *)

let lower_func ms (tf : tfunc) : Ir.func =
  let b =
    B.create ~name:tf.tf_name
      ~params:(List.map (fun (ty, _) -> ir_ty ty) tf.tf_params)
      ~ret:(ir_ty tf.tf_ret)
  in
  let ctx =
    {
      b;
      ms;
      vars = Hashtbl.create 16;
      entry_allocas = Hashtbl.create 16;
      loops = [];
      ret_ty = tf.tf_ret;
    }
  in
  (* spill parameters into allocas so they are ordinary mutable locals *)
  List.iter2
    (fun preg (cty, name) ->
      let ty = ir_ty cty in
      let slot = entry_alloca ctx ty 1 in
      B.store ctx.b ty (Ir.Reg preg) slot;
      Hashtbl.replace ctx.vars name slot)
    (B.param_regs b) tf.tf_params;
  lower_stmts ctx tf.tf_body;
  (* implicit return *)
  if not (B.is_terminated b) then
    B.term b
      (match tf.tf_ret with
      | A.CVoid -> Ir.Ret None
      | t -> Ir.Ret (Some (Ir.zero (ir_ty t))));
  B.finish b

let lower_prog (tp : tprog) : Ir.modul =
  let ms =
    { strtbl = Hashtbl.create 16; nstr = 0; extra_globals = [] }
  in
  let funcs = List.map (lower_func ms) tp.tp_funcs in
  let globals =
    List.map
      (fun g ->
        {
          Ir.gname = g.tg_name;
          gsize = A.sizeof_cty g.tg_ty;
          ginit = g.tg_image;
          gconst = g.tg_const;
        })
      tp.tp_globals
  in
  { Ir.globals = globals @ List.rev ms.extra_globals; funcs }
