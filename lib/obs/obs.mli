(** Observability for the verification toolchain (DESIGN.md,
    "Observability"): a metric registry, the symbolic-execution attribution
    profile, the per-pass compile profile, and Chrome [trace_event] export.

    Instrumentation is near-zero cost when disabled: hot paths are guarded
    by a per-consumer [option] or one global flag — a single branch, no
    allocation, no clock read. *)

val enabled : unit -> bool
(** Global observability switch (also settable via [OVERIFY_OBS=1]).
    Gates the non-hot-path instrumentation (registry recording). *)

val set_enabled : bool -> unit

(** Log-scale latency histogram; bucket [i] counts observations under
    [1us * 2^i].  Merging is bucket-wise, hence deterministic. *)
module Hist : sig
  val nbuckets : int

  type t = {
    mutable count : int;
    mutable sum : float;   (** seconds *)
    mutable max : float;
    buckets : int array;
  }

  val create : unit -> t
  val observe : t -> float -> unit
  val merge_into : t -> t -> unit
  val bucket_bound : int -> float
  val percentile : t -> float -> float
  (** Approximate (bucket upper bound, capped at the observed max). *)

  val mean : t -> float
end

(** Named counters / timers / histograms with labels — the non-hot-path
    instrument (pass timers, TV obligation counters).  Lookup takes a
    mutex; hot paths use {!Profile} instead. *)
module Registry : sig
  type kind = Counter | Timer | Histogram

  type cell = {
    name : string;
    labels : (string * string) list;
    kind : kind;
    mutable count : int;
    mutable sum : float;
    hist : Hist.t option;
  }

  type t

  val create : unit -> t

  val default : t
  (** The process-global registry. *)

  val counter : ?registry:t -> ?labels:(string * string) list -> string -> cell
  val timer : ?registry:t -> ?labels:(string * string) list -> string -> cell
  val histogram : ?registry:t -> ?labels:(string * string) list -> string -> cell
  val incr : cell -> unit
  val add : cell -> int -> unit
  val add_time : cell -> float -> unit
  val observe : cell -> float -> unit
  val time : cell -> (unit -> 'a) -> 'a
  val dump : ?registry:t -> unit -> cell list
  (** All cells in canonical (name, labels) order. *)

  val clear : ?registry:t -> unit -> unit
end

(** Per-(function, basic block) cost attribution for one symbolic-execution
    run.  Single-owner: one collector per worker domain, merged after the
    join.  Increments mirror the engine's whole-run counters exactly, so
    per-site values sum to [Engine.result] totals. *)
module Profile : sig
  type site_stats = {
    mutable s_insts : int;
    mutable s_forks : int;
    mutable s_queries : int;
    mutable s_cache_hits : int;
    mutable s_solver_time : float;
    mutable s_paths : int;
    mutable s_sum_hits : int;    (** calls answered by a function summary *)
    mutable s_sum_opaque : int;  (** calls whose callee summary was opaque *)
  }

  type t = {
    sites : (string * int, site_stats) Hashtbl.t;
    qhist : Hist.t;   (** per-query blast+SAT latency *)
    mutable last_fn : string;
    mutable last_block : int;
    mutable last_cell : site_stats;
  }

  val create : unit -> t

  val site : t -> fn:string -> block:int -> site_stats
  (** The cell for (function, block), memoized for consecutive hits. *)

  val merge_into : t -> t -> unit

  val sites : t -> ((string * int) * site_stats) list
  (** Canonical (function, block) order. *)

  type totals = {
    t_insts : int;
    t_forks : int;
    t_queries : int;
    t_cache_hits : int;
    t_solver_time : float;
    t_paths : int;
    t_sum_hits : int;
    t_sum_opaque : int;
  }

  val totals : t -> totals
end

(** Per-pass compile profile: wall time and code-size delta per pass
    application, collected by [Pipeline.optimize ~prof]. *)
module Pass : sig
  type app = {
    pa_pass : string;
    pa_fn : string;       (** ["*"] for module-level passes *)
    pa_time : float;
    pa_size_before : int;
    pa_size_after : int;
    pa_changed : bool;
  }

  type t

  val create : unit -> t
  val record : t -> app -> unit

  val apps : t -> app list
  (** Application order. *)

  type rollup = {
    pr_pass : string;
    pr_apps : int;
    pr_changed : int;
    pr_time : float;
    pr_dsize : int;
  }

  val rollup : t -> rollup list
  (** One row per pass, in first-application order. *)
end

(** Chrome [trace_event] sink (view in [chrome://tracing] / Perfetto).
    Process-global, mutex per event; collection is off until {!start}. *)
module Trace : sig
  type event = {
    ev_name : string;
    ev_cat : string;
    ev_ts : float;   (** absolute seconds *)
    ev_dur : float;  (** seconds; 0 = instant event *)
    ev_tid : int;
    ev_args : (string * string) list;
  }

  val enabled : unit -> bool
  val start : unit -> unit
  val stop : unit -> unit
  val clear : unit -> unit

  val emit :
    ?cat:string ->
    ?args:(string * string) list ->
    name:string ->
    ts:float ->
    dur:float ->
    unit ->
    unit

  val with_span :
    ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

  val events : unit -> event list

  val to_json : unit -> string
  (** One Chrome-loadable JSON document. *)

  val write : string -> unit
  (** Write to a file; a [.jsonl] suffix selects one event per line. *)
end

(** Bounded in-memory ring of recent span/event/log records — the flight
    recorder's working memory (drop-oldest beyond [cap], dropped counter
    kept).  Serialization to post-mortem files lives in [lib/serve]
    (Binfile discipline); obs cannot depend on the solver's Binfile. *)
module Flight : sig
  type record = {
    fr_ts : float;     (** absolute start, Unix seconds *)
    fr_dur : float;    (** seconds; 0 for instant events and log lines *)
    fr_trace : string; (** trace id; joins spans, events, logs, envelopes *)
    fr_id : int;       (** span id; 0 for events/logs without one *)
    fr_parent : int;   (** parent span id; -1 = root *)
    fr_kind : string;  (** ["span"] | ["event"] | ["log"] *)
    fr_label : string;
    fr_counters : (string * float) list;
    fr_args : (string * string) list;
  }

  val default_cap : int
  val set_cap : int -> unit
  val record : record -> unit

  val records : unit -> record list
  (** Snapshot, oldest first. *)

  val dropped : unit -> int
  (** Records evicted by the cap since the last {!clear}. *)

  val clear : unit -> unit
end

(** Hierarchical wall-clock spans (trace id, parent, label, interval,
    attached counters), opened at request admission in [lib/serve] and
    threaded through [Engine.config.span] down to per-query solves.  The
    counters attached at each level are the same increments that make up
    [Engine.result], so per-span sums equal engine totals.  Finished
    spans land in the {!Flight} ring and — when collection is on — in the
    {!Trace} sink with [trace]/[span]/[parent] args. *)
module Span : sig
  type t = {
    sp_trace : string;
    sp_id : int;
    sp_parent : int;  (** -1 = root *)
    sp_label : string;
    sp_start : float;
    mutable sp_counters : (string * float) list;
  }

  val fresh_trace : unit -> string
  (** A fresh process-local trace id ([local-N]); daemon requests use
      fingerprint-derived ids so duplicates share one trace. *)

  val start : ?trace:string -> ?parent:t -> string -> t
  (** Open a span.  The trace id is [trace] if given, else inherited from
      [parent], else fresh. *)

  val add_counter : t -> string -> float -> unit

  val finish : ?counters:(string * float) list -> t -> unit
  (** Close the span over [sp_start .. now]; [counters] are appended to
      any [add_counter]ed ones and canonically sorted. *)

  val emit :
    parent:t ->
    ?counters:(string * float) list ->
    ts:float ->
    dur:float ->
    string ->
    unit
  (** One-shot child span with an explicit interval (the per-query
      solver hook). *)

  val event :
    ?parent:t -> ?trace:string -> ?args:(string * string) list -> string -> unit
  (** Instant event on a span's trace (degradations, injected faults). *)
end
