(** Observability for the verification toolchain: a metric registry
    (counters / timers / histograms with labels), the symbolic-execution
    attribution profile (per function and basic block), the per-pass compile
    profile, and Chrome [trace_event] export.

    Design constraints (DESIGN.md, "Observability"):

    - {e near-zero cost when disabled}: every hot-path instrumentation site
      is guarded by a per-consumer [option] (the executor's [prof] field,
      the solver's [hist] field) or by the single global {!enabled} /
      {!Trace.enabled} flag — one branch, no allocation, no clock read.
    - {e attribution sums to totals}: the symbolic-execution profile
      accumulates the very same increments as the engine's whole-run
      counters, so per-site values sum exactly to [Engine.result] (solver
      time within float rounding).
    - {e domain safety}: profile collectors are single-owner (one per
      worker domain, merged after the join, like the engine's own
      counters); the trace buffer is the one shared sink and takes a
      mutex per event. *)

(* ---------------- global switch ---------------- *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "OVERIFY_OBS" with
    | Some ("1" | "true") -> true
    | _ -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ---------------- latency histogram ---------------- *)

(** Log-scale latency histogram: bucket [i] counts observations with
    [dt < 1us * 2^i]; the last bucket is unbounded.  Merging is bucket-wise
    addition, so per-worker histograms combine deterministically. *)
module Hist = struct
  let nbuckets = 28 (* 1us .. ~2.2 min, then overflow *)

  type t = {
    mutable count : int;
    mutable sum : float;          (** seconds *)
    mutable max : float;
    buckets : int array;
  }

  let create () = { count = 0; sum = 0.0; max = 0.0; buckets = Array.make nbuckets 0 }

  let bucket_of dt =
    let rec go i bound =
      if i >= nbuckets - 1 || dt < bound then i else go (i + 1) (bound *. 2.0)
    in
    go 0 1e-6

  let observe t dt =
    t.count <- t.count + 1;
    t.sum <- t.sum +. dt;
    if dt > t.max then t.max <- dt;
    let b = bucket_of dt in
    t.buckets.(b) <- t.buckets.(b) + 1

  let merge_into dst src =
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.max > dst.max then dst.max <- src.max;
    Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets

  (** Upper bound (seconds) of bucket [i]. *)
  let bucket_bound i = 1e-6 *. (2.0 ** float_of_int i)

  (** Approximate percentile from the buckets (returns a bucket upper
      bound); [p] in [0,1]. *)
  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let target = int_of_float (ceil (p *. float_of_int t.count)) in
      let seen = ref 0 and res = ref t.max in
      (try
         Array.iteri
           (fun i n ->
             seen := !seen + n;
             if !seen >= target then begin
               res := bucket_bound i;
               raise Exit
             end)
           t.buckets
       with Exit -> ());
      min !res t.max
    end

  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
end

(* ---------------- metric registry ---------------- *)

(** Generic registry of named metrics with labels — the non-hot-path
    instrument (pass timers, TV obligation counters, solver rollups).  Hot
    paths use the dedicated {!Profile} collector instead: a registry lookup
    per dynamic instruction would dominate the executor. *)
module Registry = struct
  type kind = Counter | Timer | Histogram

  type cell = {
    name : string;
    labels : (string * string) list;
    kind : kind;
    mutable count : int;
    mutable sum : float;       (** seconds for timers/histograms *)
    hist : Hist.t option;
  }

  type t = {
    tbl : (string * (string * string) list, cell) Hashtbl.t;
    mutable order : cell list;  (** reverse creation order *)
    mu : Mutex.t;
  }

  let create () = { tbl = Hashtbl.create 64; order = []; mu = Mutex.create () }

  (** The process-global registry (what [overify profile] dumps). *)
  let default = create ()

  let cell t ~kind ~name ~labels =
    Mutex.lock t.mu;
    let c =
      match Hashtbl.find_opt t.tbl (name, labels) with
      | Some c -> c
      | None ->
          let c =
            {
              name;
              labels;
              kind;
              count = 0;
              sum = 0.0;
              hist = (if kind = Histogram then Some (Hist.create ()) else None);
            }
          in
          Hashtbl.add t.tbl (name, labels) c;
          t.order <- c :: t.order;
          c
    in
    Mutex.unlock t.mu;
    c

  let counter ?(registry = default) ?(labels = []) name =
    cell registry ~kind:Counter ~name ~labels

  let timer ?(registry = default) ?(labels = []) name =
    cell registry ~kind:Timer ~name ~labels

  let histogram ?(registry = default) ?(labels = []) name =
    cell registry ~kind:Histogram ~name ~labels

  (* recording is gated on the global switch, so call sites don't have to
     re-check it — a disabled registry cell never moves *)
  let incr c = if enabled () then c.count <- c.count + 1
  let add c n = if enabled () then c.count <- c.count + n

  let add_time c dt =
    if enabled () then begin
      c.count <- c.count + 1;
      c.sum <- c.sum +. dt
    end

  let observe c dt =
    if enabled () then begin
      c.count <- c.count + 1;
      c.sum <- c.sum +. dt;
      match c.hist with Some h -> Hist.observe h dt | None -> ()
    end

  (** Time [f], charging the elapsed wall clock to [c].  [f] always runs;
      when disabled no clock is read. *)
  let time c f =
    if not (enabled ()) then f ()
    else
      let t0 = Unix.gettimeofday () in
      Fun.protect ~finally:(fun () -> add_time c (Unix.gettimeofday () -. t0)) f

  (** All cells in canonical (name, labels) order. *)
  let dump ?(registry = default) () =
    Mutex.lock registry.mu;
    let cells = registry.order in
    Mutex.unlock registry.mu;
    List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) cells

  let clear ?(registry = default) () =
    Mutex.lock registry.mu;
    Hashtbl.reset registry.tbl;
    registry.order <- [];
    Mutex.unlock registry.mu
end

(* ---------------- symbolic-execution attribution profile ---------------- *)

(** Per-(function, block) cost attribution for one symbolic-execution run.
    One collector per worker domain (single-owner, no locking); collectors
    merge after the join exactly like the engine's own counters.

    The executor keys every increment by the {e current} frame's function
    and block, and a one-entry memo makes the common case (consecutive
    instructions of one block) a pointer comparison instead of a hashtable
    lookup. *)
module Profile = struct
  type site_stats = {
    mutable s_insts : int;        (** dynamic instructions *)
    mutable s_forks : int;
    mutable s_queries : int;      (** solver queries issued here *)
    mutable s_cache_hits : int;
    mutable s_solver_time : float; (** seconds of blasting + SAT *)
    mutable s_paths : int;        (** paths that completed (exited) here *)
    mutable s_sum_hits : int;     (** calls answered by a function summary *)
    mutable s_sum_opaque : int;   (** calls whose callee summary was opaque *)
  }

  let zero_stats () =
    {
      s_insts = 0;
      s_forks = 0;
      s_queries = 0;
      s_cache_hits = 0;
      s_solver_time = 0.0;
      s_paths = 0;
      s_sum_hits = 0;
      s_sum_opaque = 0;
    }

  type t = {
    sites : (string * int, site_stats) Hashtbl.t;
    qhist : Hist.t;               (** per-query blast+SAT latency *)
    mutable last_fn : string;
    mutable last_block : int;
    mutable last_cell : site_stats;
  }

  let create () =
    {
      sites = Hashtbl.create 64;
      qhist = Hist.create ();
      last_fn = "";
      last_block = min_int;  (* never matches a real block id *)
      last_cell = zero_stats ();
    }

  let site t ~fn ~block =
    if block = t.last_block && fn == t.last_fn then t.last_cell
    else begin
      let cell =
        match Hashtbl.find_opt t.sites (fn, block) with
        | Some c -> c
        | None ->
            let c = zero_stats () in
            Hashtbl.add t.sites (fn, block) c;
            c
      in
      t.last_fn <- fn;
      t.last_block <- block;
      t.last_cell <- cell;
      cell
    end

  let merge_into dst src =
    Hashtbl.iter
      (fun (fn, block) (s : site_stats) ->
        let d = site dst ~fn ~block in
        d.s_insts <- d.s_insts + s.s_insts;
        d.s_forks <- d.s_forks + s.s_forks;
        d.s_queries <- d.s_queries + s.s_queries;
        d.s_cache_hits <- d.s_cache_hits + s.s_cache_hits;
        d.s_solver_time <- d.s_solver_time +. s.s_solver_time;
        d.s_paths <- d.s_paths + s.s_paths;
        d.s_sum_hits <- d.s_sum_hits + s.s_sum_hits;
        d.s_sum_opaque <- d.s_sum_opaque + s.s_sum_opaque)
      src.sites;
    Hist.merge_into dst.qhist src.qhist

  (** All sites in canonical (function, block) order. *)
  let sites t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sites []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  type totals = {
    t_insts : int;
    t_forks : int;
    t_queries : int;
    t_cache_hits : int;
    t_solver_time : float;
    t_paths : int;
    t_sum_hits : int;
    t_sum_opaque : int;
  }

  let totals t =
    List.fold_left
      (fun acc (_, (s : site_stats)) ->
        {
          t_insts = acc.t_insts + s.s_insts;
          t_forks = acc.t_forks + s.s_forks;
          t_queries = acc.t_queries + s.s_queries;
          t_cache_hits = acc.t_cache_hits + s.s_cache_hits;
          t_solver_time = acc.t_solver_time +. s.s_solver_time;
          t_paths = acc.t_paths + s.s_paths;
          t_sum_hits = acc.t_sum_hits + s.s_sum_hits;
          t_sum_opaque = acc.t_sum_opaque + s.s_sum_opaque;
        })
      {
        t_insts = 0;
        t_forks = 0;
        t_queries = 0;
        t_cache_hits = 0;
        t_solver_time = 0.0;
        t_paths = 0;
        t_sum_hits = 0;
        t_sum_opaque = 0;
      }
      (sites t)
end

(* ---------------- per-pass compile profile ---------------- *)

(** One record per optimization-pass application: wall time and code-size
    delta, in application order.  Collected by [Pipeline.optimize ~prof]. *)
module Pass = struct
  type app = {
    pa_pass : string;
    pa_fn : string;       (** ["*"] for module-level passes *)
    pa_time : float;      (** seconds *)
    pa_size_before : int; (** static instructions (function, or module for ["*"]) *)
    pa_size_after : int;
    pa_changed : bool;
  }

  type t = { mutable apps_rev : app list }

  let create () = { apps_rev = [] }
  let record t a = t.apps_rev <- a :: t.apps_rev
  let apps t = List.rev t.apps_rev

  type rollup = {
    pr_pass : string;
    pr_apps : int;        (** applications attempted *)
    pr_changed : int;     (** applications that changed code *)
    pr_time : float;
    pr_dsize : int;       (** net static-size delta of changing applications *)
  }

  (** One row per pass, in first-application order. *)
  let rollup t =
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let r =
          match Hashtbl.find_opt tbl a.pa_pass with
          | Some r -> r
          | None ->
              order := a.pa_pass :: !order;
              { pr_pass = a.pa_pass; pr_apps = 0; pr_changed = 0;
                pr_time = 0.0; pr_dsize = 0 }
        in
        Hashtbl.replace tbl a.pa_pass
          {
            r with
            pr_apps = r.pr_apps + 1;
            pr_changed = (r.pr_changed + if a.pa_changed then 1 else 0);
            pr_time = r.pr_time +. a.pa_time;
            pr_dsize =
              (r.pr_dsize
              + if a.pa_changed then a.pa_size_after - a.pa_size_before else 0);
          })
      (apps t);
    List.rev_map (fun p -> Hashtbl.find tbl p) !order
end

(* ---------------- Chrome trace_event export ---------------- *)

(** Structured trace sink in Chrome's [trace_event] JSON format (load the
    emitted file in [chrome://tracing] / Perfetto).  One process-global
    buffer behind a mutex: events come from pass applications, solver
    queries, TV obligations and engine runs — thousands, not millions, so a
    lock per event is fine.  Collection is off until {!start}. *)
module Trace = struct
  type event = {
    ev_name : string;
    ev_cat : string;
    ev_ts : float;    (** absolute seconds (Unix.gettimeofday) *)
    ev_dur : float;   (** seconds; 0 for instant events *)
    ev_tid : int;
    ev_args : (string * string) list;
  }

  type sink = {
    mutable events_rev : event list;
    mutable t0 : float;     (** trace epoch: first [start] *)
    mu : Mutex.t;
  }

  let sink = { events_rev = []; t0 = 0.0; mu = Mutex.create () }
  let collecting = ref false

  let enabled () = !collecting

  let start () =
    Mutex.lock sink.mu;
    sink.events_rev <- [];
    sink.t0 <- Unix.gettimeofday ();
    Mutex.unlock sink.mu;
    collecting := true

  let stop () = collecting := false

  let clear () =
    Mutex.lock sink.mu;
    sink.events_rev <- [];
    Mutex.unlock sink.mu

  let emit ?(cat = "overify") ?(args = []) ~name ~ts ~dur () =
    if !collecting then begin
      let ev =
        {
          ev_name = name;
          ev_cat = cat;
          ev_ts = ts;
          ev_dur = dur;
          ev_tid = (Domain.self () :> int);
          ev_args = args;
        }
      in
      Mutex.lock sink.mu;
      sink.events_rev <- ev :: sink.events_rev;
      Mutex.unlock sink.mu
    end

  (** Run [f] inside a complete ("X") span. *)
  let with_span ?cat ?(args = []) name f =
    if not !collecting then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          emit ?cat ~args ~name ~ts:t0 ~dur:(Unix.gettimeofday () -. t0) ())
        f
    end

  let events () =
    Mutex.lock sink.mu;
    let evs = List.rev sink.events_rev in
    Mutex.unlock sink.mu;
    evs

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let event_to_json t0 ev =
    let args =
      match ev.ev_args with
      | [] -> ""
      | args ->
          Printf.sprintf ", \"args\": {%s}"
            (String.concat ", "
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                      (json_escape v))
                  args))
    in
    Printf.sprintf
      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": %.1f, \
       \"dur\": %.1f, \"pid\": 1, \"tid\": %d%s}"
      (json_escape ev.ev_name) (json_escape ev.ev_cat)
      (if ev.ev_dur > 0.0 then "X" else "i")
      ((ev.ev_ts -. t0) *. 1e6)
      (ev.ev_dur *. 1e6) ev.ev_tid args

  (** The collected events as one Chrome-loadable JSON document. *)
  let to_json () =
    Mutex.lock sink.mu;
    let t0 = sink.t0 and evs = List.rev sink.events_rev in
    Mutex.unlock sink.mu;
    Printf.sprintf "{\"traceEvents\": [\n%s\n]}\n"
      (String.concat ",\n" (List.map (event_to_json t0) evs))

  (** Write {!to_json} to [path] (also accepts a [.jsonl] path, one event
      per line). *)
  let write path =
    Out_channel.with_open_text path (fun oc ->
        if Filename.check_suffix path ".jsonl" then begin
          Mutex.lock sink.mu;
          let t0 = sink.t0 and evs = List.rev sink.events_rev in
          Mutex.unlock sink.mu;
          List.iter
            (fun ev -> output_string oc (event_to_json t0 ev ^ "\n"))
            evs
        end
        else output_string oc (to_json ()))
end

(* ---------------- flight-recorder ring ---------------- *)

(** Bounded in-memory ring of recent span/event/log records — the
    flight recorder's working memory.  Recording is unconditional (the
    callers gate: a record only exists because somebody opened a span or
    logged), bounded (drop-oldest beyond [cap], with a dropped counter so
    a dump says how much history it lost), and cheap (one mutex + queue
    push per record; record producers are per-request/per-query, not
    per-instruction).  Serialization lives upstream in [lib/serve] —
    this module cannot depend on [Binfile] (the solver depends on obs). *)
module Flight = struct
  type record = {
    fr_ts : float;     (** absolute start, Unix seconds *)
    fr_dur : float;    (** seconds; 0 for instant events and log lines *)
    fr_trace : string; (** trace id; joins spans, events, logs, envelopes *)
    fr_id : int;       (** span id; 0 for events/logs without one *)
    fr_parent : int;   (** parent span id; -1 = root *)
    fr_kind : string;  (** ["span"] | ["event"] | ["log"] *)
    fr_label : string;
    fr_counters : (string * float) list;
    fr_args : (string * string) list;
  }

  let default_cap = 2048

  type ring = {
    mutable cap : int;
    q : record Queue.t;
    mutable dropped : int;
    mu : Mutex.t;
  }

  let ring =
    { cap = default_cap; q = Queue.create (); dropped = 0; mu = Mutex.create () }

  let set_cap n =
    Mutex.lock ring.mu;
    ring.cap <- max 1 n;
    while Queue.length ring.q > ring.cap do
      ignore (Queue.pop ring.q);
      ring.dropped <- ring.dropped + 1
    done;
    Mutex.unlock ring.mu

  let record r =
    Mutex.lock ring.mu;
    Queue.push r ring.q;
    while Queue.length ring.q > ring.cap do
      ignore (Queue.pop ring.q);
      ring.dropped <- ring.dropped + 1
    done;
    Mutex.unlock ring.mu

  (** Snapshot, oldest first. *)
  let records () =
    Mutex.lock ring.mu;
    let rs = List.of_seq (Queue.to_seq ring.q) in
    Mutex.unlock ring.mu;
    rs

  let dropped () =
    Mutex.lock ring.mu;
    let d = ring.dropped in
    Mutex.unlock ring.mu;
    d

  let clear () =
    Mutex.lock ring.mu;
    Queue.clear ring.q;
    ring.dropped <- 0;
    Mutex.unlock ring.mu
end

(* ---------------- hierarchical spans ---------------- *)

(** Hierarchical wall-clock spans: a trace id shared by everything one
    request touches, a span id, a parent, a label and attached counters.
    Opened at request admission in [lib/serve], threaded through
    [Engine.config.span] into summary build, per-worker exploration and
    per-query solves — the same increments that make up [Engine.result],
    so per-span counter sums equal engine totals exactly as the
    {!Profile} per-site sums do.

    A finished span lands in the {!Flight} ring and, when trace
    collection is on, in the {!Trace} sink (with [trace]/[span]/[parent]
    args, so the Chrome timeline renders a multi-request daemon view).
    Spans are created only on demand (a [None] config field elsewhere);
    an un-traced run pays one [option] branch per site. *)
module Span = struct
  type t = {
    sp_trace : string;
    sp_id : int;
    sp_parent : int;  (** -1 = root *)
    sp_label : string;
    sp_start : float;
    mutable sp_counters : (string * float) list;
  }

  let next_id = Atomic.make 1
  let next_trace = Atomic.make 1

  (** Fresh local trace id (daemon requests use fingerprint-derived ids
      instead, so duplicates share one trace). *)
  let fresh_trace () =
    Printf.sprintf "local-%d" (Atomic.fetch_and_add next_trace 1)

  let start ?trace ?parent label =
    let trace =
      match (trace, parent) with
      | Some t, _ -> t
      | None, Some p -> p.sp_trace
      | None, None -> fresh_trace ()
    in
    {
      sp_trace = trace;
      sp_id = Atomic.fetch_and_add next_id 1;
      sp_parent = (match parent with Some p -> p.sp_id | None -> -1);
      sp_label = label;
      sp_start = Unix.gettimeofday ();
      sp_counters = [];
    }

  let add_counter t k v = t.sp_counters <- (k, v) :: t.sp_counters

  let span_args t =
    [ ("trace", t.sp_trace); ("span", string_of_int t.sp_id);
      ("parent", string_of_int t.sp_parent) ]

  let record_span t ~ts ~dur ~counters =
    Flight.record
      {
        Flight.fr_ts = ts;
        fr_dur = dur;
        fr_trace = t.sp_trace;
        fr_id = t.sp_id;
        fr_parent = t.sp_parent;
        fr_kind = "span";
        fr_label = t.sp_label;
        fr_counters = counters;
        fr_args = [];
      };
    if Trace.enabled () then
      Trace.emit ~cat:"span"
        ~args:
          (span_args t
          @ List.map (fun (k, v) -> (k, Printf.sprintf "%g" v)) counters)
        ~name:t.sp_label ~ts ~dur ()

  (** Close the span: its interval is [sp_start .. now].  [counters]
      (appended to any {!add_counter}ed ones, canonically sorted) are the
      span's attributed costs. *)
  let finish ?(counters = []) t =
    let now = Unix.gettimeofday () in
    let counters = List.sort compare (List.rev_append t.sp_counters counters) in
    record_span t ~ts:t.sp_start ~dur:(now -. t.sp_start) ~counters

  (** One-shot child span with an explicit interval — the per-query
      solver hook, which already holds start and duration. *)
  let emit ~parent ?(counters = []) ~ts ~dur label =
    let t =
      {
        sp_trace = parent.sp_trace;
        sp_id = Atomic.fetch_and_add next_id 1;
        sp_parent = parent.sp_id;
        sp_label = label;
        sp_start = ts;
        sp_counters = [];
      }
    in
    record_span t ~ts ~dur ~counters:(List.sort compare counters)

  (** Instant event attached to a span's trace (degradations, injected
      faults, summary instantiations). *)
  let event ?parent ?(trace = "") ?(args = []) label =
    let trace =
      match (parent, trace) with
      | Some p, _ -> p.sp_trace
      | None, t -> t
    in
    Flight.record
      {
        Flight.fr_ts = Unix.gettimeofday ();
        fr_dur = 0.0;
        fr_trace = trace;
        fr_id = 0;
        fr_parent = (match parent with Some p -> p.sp_id | None -> -1);
        fr_kind = "event";
        fr_label = label;
        fr_counters = [];
        fr_args = args;
      };
    if Trace.enabled () then
      Trace.emit ~cat:"span"
        ~args:(("trace", trace) :: args)
        ~name:label ~ts:(Unix.gettimeofday ()) ~dur:0.0 ()
end
