(** Hash-consed bitvector terms — the symbolic-expression language shared by
    the symbolic executor and the solver (the role STP's expressions play for
    KLEE).

    Widths are 1..64 bits; constants are stored normalized (zero-extended
    into the [int64]).  Smart constructors perform local simplification so
    that the executor's common patterns (flag tests, arithmetic on
    constants) never reach the SAT solver. *)

type binop =
  | Add | Sub | Mul
  | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type t = { id : int; node : node; width : int }

and node =
  | Const of int64
  | Var of int          (** symbolic variable (input byte), id is global *)
  | Bin of binop * t * t
  | Cmp of cmpop * t * t   (** width 1 *)
  | Ite of t * t * t
  | Concat of t * t     (** high bits, low bits *)
  | Extract of int * int * t  (** [hi..lo] inclusive *)

let width t = t.width

let mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L
let norm w v = Int64.logand v (mask w)

let to_signed w v =
  if w >= 64 then v
  else
    let s = 64 - w in
    Int64.shift_right (Int64.shift_left v s) s

(* ---------------- hash consing ---------------- *)

module Node_key = struct
  let equal a b =
    match (a, b) with
    | (Const x, Const y) -> x = y
    | (Var x, Var y) -> x = y
    | (Bin (o1, a1, b1), Bin (o2, a2, b2)) ->
        o1 = o2 && a1.id = a2.id && b1.id = b2.id
    | (Cmp (o1, a1, b1), Cmp (o2, a2, b2)) ->
        o1 = o2 && a1.id = a2.id && b1.id = b2.id
    | (Ite (c1, a1, b1), Ite (c2, a2, b2)) ->
        c1.id = c2.id && a1.id = a2.id && b1.id = b2.id
    | (Concat (a1, b1), Concat (a2, b2)) -> a1.id = a2.id && b1.id = b2.id
    | (Extract (h1, l1, a1), Extract (h2, l2, a2)) ->
        h1 = h2 && l1 = l2 && a1.id = a2.id
    | _ -> false

  let hash = function
    | Const v -> Hashtbl.hash (0, v)
    | Var v -> Hashtbl.hash (1, v)
    | Bin (o, a, b) -> Hashtbl.hash (2, o, a.id, b.id)
    | Cmp (o, a, b) -> Hashtbl.hash (3, o, a.id, b.id)
    | Ite (c, a, b) -> Hashtbl.hash (4, c.id, a.id, b.id)
    | Concat (a, b) -> Hashtbl.hash (5, a.id, b.id)
    | Extract (h, l, a) -> Hashtbl.hash (6, h, l, a.id)
end

module NTbl = Hashtbl.Make (struct
  type nonrec t = node * int
  let equal (n1, w1) (n2, w2) = w1 = w2 && Node_key.equal n1 n2
  let hash (n, w) = Node_key.hash n lxor (w * 0x9e3779b1)
end)

let table : t NTbl.t = NTbl.create 4096
let counter = ref 0

(* The hash-cons table is the one piece of term state shared by every
   domain: parallel exploration workers build terms concurrently, so all
   table accesses go through this lock.  Everything downstream (blasting,
   SAT) is per-context and needs no synchronization.  Term [id]s depend on
   allocation order and therefore on scheduling, but ids are only names:
   structurally equal terms get the same id within a run, and nothing
   user-visible depends on the numeric values. *)
let lock = Mutex.create ()

let mk node width =
  Mutex.protect lock (fun () ->
      match NTbl.find_opt table (node, width) with
      | Some t -> t
      | None ->
          incr counter;
          let t = { id = !counter; node; width } in
          NTbl.replace table (node, width) t;
          t)

(** Number of live hash-consed terms (for stats). *)
let live_terms () = Mutex.protect lock (fun () -> NTbl.length table)

(** Re-intern terms that bypassed [mk] — i.e. came out of [Marshal] when
    loading a checkpoint.  An unmarshaled term carries stale [id]s: left
    alone it could collide with ids handed out by the live counter, and
    the solver's exact-match cache (keyed on id lists) would conflate
    distinct terms.  [rebuilder ()] returns a memoizing bottom-up
    re-interning function; sharing within one batch is preserved (the
    memo is keyed on the stale ids, which are mutually consistent because
    they came from a single run's table). *)
let rebuilder () =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some t' -> t'
    | None ->
        let node' =
          match t.node with
          | Const _ | Var _ -> t.node
          | Bin (o, a, b) -> Bin (o, go a, go b)
          | Cmp (o, a, b) -> Cmp (o, go a, go b)
          | Ite (c, a, b) -> Ite (go c, go a, go b)
          | Concat (a, b) -> Concat (go a, go b)
          | Extract (h, l, a) -> Extract (h, l, go a)
        in
        let t' = mk node' t.width in
        Hashtbl.add memo t.id t';
        t'
  in
  go

(* ---------------- constructors with simplification ---------------- *)

let const w v = mk (Const (norm w v)) w
let var w id = mk (Var id) w
let tt = const 1 1L
let ff = const 1 0L

(** Drop all hash-consed terms.  Only safe when no term values are retained
    by the caller (each engine run is self-contained); keeps long benchmark
    sessions from accumulating GC pressure.  The persistent boolean
    constants keep their identities. *)
let reset () =
  Mutex.protect lock (fun () ->
      NTbl.reset table;
      counter := 0;
      NTbl.replace table (tt.node, tt.width) tt;
      NTbl.replace table (ff.node, ff.width) ff;
      counter := max tt.id ff.id)
let bool_ b = if b then tt else ff

let is_const t = match t.node with Const _ -> true | _ -> false
let const_val t = match t.node with Const v -> Some v | _ -> None

let eval_binop (op : binop) w a b =
  let sa = to_signed w a and sb = to_signed w b in
  let ok v = Some (norm w v) in
  match op with
  | Add -> ok (Int64.add a b)
  | Sub -> ok (Int64.sub a b)
  | Mul -> ok (Int64.mul a b)
  | Sdiv -> if sb = 0L then None else ok (Int64.div sa sb)
  | Srem -> if sb = 0L then None else ok (Int64.rem sa sb)
  | Udiv -> if b = 0L then None else ok (Int64.unsigned_div a b)
  | Urem -> if b = 0L then None else ok (Int64.unsigned_rem a b)
  | And -> ok (Int64.logand a b)
  | Or -> ok (Int64.logor a b)
  | Xor -> ok (Int64.logxor a b)
  | Shl ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int w)) in
      ok (Int64.shift_left a s)
  | Lshr ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int w)) in
      ok (Int64.shift_right_logical a s)
  | Ashr ->
      let s = Int64.to_int (Int64.unsigned_rem b (Int64.of_int w)) in
      ok (norm w (Int64.shift_right sa s))

let eval_cmp (op : cmpop) w a b =
  let sa = to_signed w a and sb = to_signed w b in
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> sa < sb
  | Sle -> sa <= sb
  | Sgt -> sa > sb
  | Sge -> sa >= sb
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Ugt -> Int64.unsigned_compare a b > 0
  | Uge -> Int64.unsigned_compare a b >= 0

let rec binop (op : binop) a b =
  let w = a.width in
  assert (b.width = w);
  match (a.node, b.node, op) with
  | (Const x, Const y, _) -> (
      match eval_binop op w x y with
      | Some v -> const w v
      | None -> mk (Bin (op, a, b)) w)
  | (_, Const 0L, (Add | Sub | Or | Xor | Shl | Lshr | Ashr)) -> a
  | (Const 0L, _, (Add | Or | Xor)) -> b
  | (_, Const 0L, (And | Mul)) -> const w 0L
  | (Const 0L, _, (And | Mul | Udiv | Urem | Shl | Lshr)) -> const w 0L
  | (_, Const 1L, (Mul | Udiv)) -> a
  | (Const 1L, _, Mul) -> b
  (* power-of-two strength reduction keeps divider circuits out of the CNF *)
  | (_, Const c, Udiv)
    when c > 0L && Int64.logand c (Int64.sub c 1L) = 0L ->
      let k = ref 0 and x = ref c in
      while !x > 1L do incr k; x := Int64.shift_right_logical !x 1 done;
      binop Lshr a (const w (Int64.of_int !k))
  | (_, Const c, Urem)
    when c > 0L && Int64.logand c (Int64.sub c 1L) = 0L ->
      binop And a (const w (Int64.sub c 1L))
  | (_, Const c, Mul)
    when c > 0L && Int64.logand c (Int64.sub c 1L) = 0L ->
      let k = ref 0 and x = ref c in
      while !x > 1L do incr k; x := Int64.shift_right_logical !x 1 done;
      binop Shl a (const w (Int64.of_int !k))
  | (_, Const c, And) when c = mask w -> a
  | (Const c, _, And) when c = mask w -> b
  | (_, Const c, Or) when c = mask w -> const w c
  | (_, _, Sub) when a.id = b.id -> const w 0L
  | (_, _, Xor) when a.id = b.id -> const w 0L
  | (_, _, (And | Or)) when a.id = b.id -> a
  | _ ->
      (* canonicalize commutative constants to the right *)
      let (a, b) =
        match (op, a.node, b.node) with
        | ((Add | Mul | And | Or | Xor), Const _, _) -> (b, a)
        | _ -> (a, b)
      in
      mk (Bin (op, a, b)) w

and cmp (op : cmpop) a b =
  let w = a.width in
  assert (b.width = w);
  match (a.node, b.node) with
  | (Const x, Const y) -> bool_ (eval_cmp op w x y)
  | _ when a.id = b.id -> (
      match op with
      | Eq | Sle | Sge | Ule | Uge -> tt
      | Ne | Slt | Sgt | Ult | Ugt -> ff)
  | _ -> (
      (* (ite c x y) == k where x,y consts: reduce to c or !c *)
      match (a.node, b.node, op) with
      | (Ite (c, x, y), Const k, (Eq | Ne)) when is_const x && is_const y -> (
          let xv = Option.get (const_val x) and yv = Option.get (const_val y) in
          let eq_x = xv = k and eq_y = yv = k in
          let base =
            if eq_x && eq_y then tt
            else if eq_x then c
            else if eq_y then not_ c
            else ff
          in
          match op with Eq -> base | _ -> not_ base)
      | _ ->
          if w = 1 then
            (* boolean comparisons reduce to logic *)
            match (op, b.node) with
            | (Eq, Const 1L) -> a
            | (Eq, Const 0L) -> not_ a
            | (Ne, Const 0L) -> a
            | (Ne, Const 1L) -> not_ a
            | _ -> mk (Cmp (op, a, b)) 1
          else mk (Cmp (op, a, b)) 1)

and not_ t =
  match t.node with
  | Const v -> bool_ (v = 0L)
  | Bin (Xor, x, o) when o.node = Const 1L && t.width = 1 -> x
  | _ -> binop Xor t tt

let and_ a b =
  match (a.node, b.node) with
  | (Const 0L, _) | (_, Const 0L) -> ff
  | (Const 1L, _) -> b
  | (_, Const 1L) -> a
  | _ -> binop And a b

let or_ a b =
  match (a.node, b.node) with
  | (Const 1L, _) | (_, Const 1L) -> tt
  | (Const 0L, _) -> b
  | (_, Const 0L) -> a
  | _ -> binop Or a b

let ite c a b =
  assert (c.width = 1);
  assert (a.width = b.width);
  match c.node with
  | Const 1L -> a
  | Const 0L -> b
  | _ ->
      if a.id = b.id then a
      else if a.width = 1 && a.node = Const 1L && b.node = Const 0L then c
      else if a.width = 1 && a.node = Const 0L && b.node = Const 1L then not_ c
      else mk (Ite (c, a, b)) a.width

let rec extract ~hi ~lo t =
  assert (0 <= lo && lo <= hi && hi < t.width);
  let w = hi - lo + 1 in
  if w = t.width then t
  else
    match t.node with
    | Const v -> const w (Int64.shift_right_logical v lo)
    | Concat (h, l) when lo >= l.width ->
        extract ~hi:(hi - l.width) ~lo:(lo - l.width) h
    | Concat (_, l) when hi < l.width -> extract ~hi ~lo l
    | Extract (_, lo2, inner) -> extract ~hi:(hi + lo2) ~lo:(lo + lo2) inner
    | _ -> mk (Extract (hi, lo, t)) w

let concat hi lo =
  let w = hi.width + lo.width in
  assert (w <= 64);
  match (hi.node, lo.node) with
  | (Const h, Const l) ->
      const w (Int64.logor (Int64.shift_left h lo.width) l)
  | _ -> mk (Concat (hi, lo)) w

let zext w t =
  assert (w >= t.width);
  if w = t.width then t else concat (const (w - t.width) 0L) t

let sext w t =
  assert (w >= t.width);
  if w = t.width then t
  else
    match t.node with
    | Const v -> const w (to_signed t.width v)
    | _ ->
        let sign = extract ~hi:(t.width - 1) ~lo:(t.width - 1) t in
        let ext = ite sign (const (w - t.width) (-1L)) (const (w - t.width) 0L) in
        concat ext t

let trunc w t =
  assert (w <= t.width);
  extract ~hi:(w - 1) ~lo:0 t

(* ---------------- evaluation under an assignment ---------------- *)

(** Evaluate a term under a variable assignment; division by zero yields 0
    (matching the blasted circuit's conventional value is unnecessary — the
    executor always guards divisions). *)
let eval (lookup : int -> int64) (t : t) : int64 =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Const v -> v
          | Var id -> norm t.width (lookup id)
          | Bin (op, a, b) -> (
              match eval_binop op t.width (go a) (go b) with
              | Some v -> v
              | None -> 0L)
          | Cmp (op, a, b) -> if eval_cmp op a.width (go a) (go b) then 1L else 0L
          | Ite (c, a, b) -> if go c = 1L then go a else go b
          | Concat (h, l) ->
              Int64.logor (Int64.shift_left (go h) l.width) (go l)
          | Extract (hi, lo, x) ->
              norm (hi - lo + 1) (Int64.shift_right_logical (go x) lo)
        in
        Hashtbl.replace memo t.id v;
        v
  in
  go t

(** Collect the variables occurring in a term. *)
let vars (t : t) : (int, int) Hashtbl.t =
  let seen = Hashtbl.create 16 in
  let out = Hashtbl.create 16 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.replace seen t.id ();
      match t.node with
      | Var id -> Hashtbl.replace out id t.width
      | Const _ -> ()
      | Bin (_, a, b) | Cmp (_, a, b) | Concat (a, b) -> go a; go b
      | Ite (c, a, b) -> go c; go a; go b
      | Extract (_, _, a) -> go a
    end
  in
  go t;
  out

let rec pp fmt (t : t) =
  match t.node with
  | Const v -> Format.fprintf fmt "%Ld:%d" v t.width
  | Var id -> Format.fprintf fmt "v%d:%d" id t.width
  | Bin (op, a, b) ->
      let s =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Sdiv -> "/s" | Udiv -> "/u"
        | Srem -> "%s" | Urem -> "%u" | And -> "&" | Or -> "|" | Xor -> "^"
        | Shl -> "<<" | Lshr -> ">>u" | Ashr -> ">>s"
      in
      Format.fprintf fmt "(%a %s %a)" pp a s pp b
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Eq -> "==" | Ne -> "!=" | Slt -> "<s" | Sle -> "<=s" | Sgt -> ">s"
        | Sge -> ">=s" | Ult -> "<u" | Ule -> "<=u" | Ugt -> ">u" | Uge -> ">=u"
      in
      Format.fprintf fmt "(%a %s %a)" pp a s pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Concat (a, b) -> Format.fprintf fmt "(%a ++ %a)" pp a pp b
  | Extract (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp a hi lo

let to_string t = Format.asprintf "%a" pp t
