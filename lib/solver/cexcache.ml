(** Counterexample cache: UNSAT-subset index + stored-model screening.
    See cexcache.mli for the soundness/determinism contracts. *)

let max_unsat_sets = 256
let max_models = 32

type t = {
  mutable unsat_sets : int array list;  (* sorted term-id arrays, newest first *)
  mutable n_unsat : int;
  mutable models : (int, int64) Hashtbl.t list;  (* newest first *)
  mutable n_models : int;
}

let create () = { unsat_sets = []; n_unsat = 0; models = []; n_models = 0 }

let clear t =
  t.unsat_sets <- [];
  t.n_unsat <- 0;
  t.models <- [];
  t.n_models <- 0

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let note_unsat t ids =
  t.unsat_sets <- ids :: t.unsat_sets;
  if t.n_unsat >= max_unsat_sets then
    t.unsat_sets <- take max_unsat_sets t.unsat_sets
  else t.n_unsat <- t.n_unsat + 1

(* sorted-array subset test, two pointers *)
let subset (small : int array) (big : int array) : bool =
  let ns = Array.length small and nb = Array.length big in
  if ns > nb then false
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < ns && !j < nb do
      if small.(!i) = big.(!j) then begin
        incr i;
        incr j
      end
      else if small.(!i) > big.(!j) then incr j
      else j := nb (* small.(i) absent from big *)
    done;
    !i = ns
  end

let implies_unsat t ids = List.exists (fun s -> subset s ids) t.unsat_sets

let note_model t model =
  let tbl = Hashtbl.create (List.length model * 2) in
  List.iter (fun (id, v) -> Hashtbl.replace tbl id v) model;
  t.models <- tbl :: t.models;
  if t.n_models >= max_models then t.models <- take max_models t.models
  else t.n_models <- t.n_models + 1

let screen t assertions =
  List.exists
    (fun tbl ->
      let lookup id =
        match Hashtbl.find_opt tbl id with Some v -> v | None -> 0L
      in
      List.for_all (fun a -> Bv.eval lookup a = 1L) assertions)
    t.models
