let rec mkdirs d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with _ -> ()
  end

let put_int_be buf width v =
  for i = width - 1 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_int_be s off width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let frame ~magic ~version payload =
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  put_int_be buf 4 version;
  put_int_be buf 8 (String.length payload);
  Buffer.add_string buf payload;
  Buffer.add_string buf (Digest.string payload);
  Buffer.contents buf

let parse ~magic ~version s =
  let mlen = String.length magic in
  let header = mlen + 4 + 8 in
  let len = String.length s in
  if len < header + 16 then None
  else if String.sub s 0 mlen <> magic then None
  else if get_int_be s mlen 4 <> version then None
  else
    let plen = get_int_be s (mlen + 4) 8 in
    if len <> header + plen + 16 then None
    else
      let payload = String.sub s header plen in
      let digest = String.sub s (header + plen) 16 in
      if Digest.string payload <> digest then None else Some payload

(* Temp names must be unique per {e write}, not just per process: two
   threads of one process saving the same path (the serve daemon's
   periodic store save racing another handle's save) would otherwise
   share a pid-only temp file and interleave, and the rename could
   publish the torn result.  A process-wide counter disambiguates. *)
let tmp_seq = Atomic.make 0

let write_atomic ~path bytes =
  try
    mkdirs (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    let oc = open_out_bin tmp in
    (try
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc bytes);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    true
  with _ -> false

let read_file ~path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with _ -> None

let write ~path ~magic ~version payload =
  write_atomic ~path (frame ~magic ~version payload)

let read ~path ~magic ~version =
  Option.bind (read_file ~path) (parse ~magic ~version)
