(** Persistent cross-run solver store: versioned binary file, atomic
    writes, graceful rejection of invalid files.  See store.mli. *)

type entry = E_unsat | E_sat of int64 array

let magic = "OVERIFY-SOLVER-STORE"
let version = 1
let filename = "solver-cache.bin"

type t = {
  dir : string;
  tbl : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable dirty : bool;
  mutable loaded : int;
}

let path t = Filename.concat t.dir filename

let rec mkdirs d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ~dir : t =
  let t =
    {
      dir;
      tbl = Hashtbl.create 256;
      mutex = Mutex.create ();
      dirty = false;
      loaded = 0;
    }
  in
  (try mkdirs dir with _ -> ());
  (try
     let ic = open_in_bin (path t) in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         let m = really_input_string ic (String.length magic) in
         if m <> magic then failwith "bad magic";
         let v = input_binary_int ic in
         if v <> version then failwith "version mismatch";
         let (data : (string, entry) Hashtbl.t) = Marshal.from_channel ic in
         Hashtbl.iter (fun k e -> Hashtbl.replace t.tbl k e) data;
         t.loaded <- Hashtbl.length t.tbl)
   with _ -> (* missing/corrupt/wrong version: start cold *) ());
  t

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mutex;
  r

let add t key entry =
  Mutex.lock t.mutex;
  if not (Hashtbl.mem t.tbl key) then begin
    Hashtbl.replace t.tbl key entry;
    t.dirty <- true
  end;
  Mutex.unlock t.mutex

let save t =
  Mutex.lock t.mutex;
  (if t.dirty then
     try
       mkdirs t.dir;
       let tmp =
         Printf.sprintf "%s.tmp.%d" (path t) (Unix.getpid ())
       in
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc magic;
           output_binary_int oc version;
           Marshal.to_channel oc t.tbl []);
       Sys.rename tmp (path t);
       t.dirty <- false
     with _ -> (* cache write failures never fail the run *) ());
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let loaded t = t.loaded
let dir t = t.dir
