(** Persistent cross-run solver store: framed binary file (magic +
    version + length + checksum trailer via {!Binfile}), atomic writes,
    graceful rejection of invalid or truncated files.  See store.mli. *)

module Fault = Overify_fault.Fault

type entry = E_unsat | E_sat of int64 array | E_blob of string

let magic = "OVERIFY-SOLVER-STORE"

(* v2: framed via Binfile (length + MD5 trailer).  v1 files (bare
   magic+version+Marshal) fail the frame parse and load as empty, which
   is the correct cold-cache behaviour for a format change.
   v3: adds the E_blob constructor (opaque client payloads — function
   summaries); v2 files load as empty for the same cold-cache reason. *)
let version = 3
let filename = "solver-cache.bin"

type t = {
  dir : string;
  tbl : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  faults : Fault.t option;
  mutable dirty : bool;
  mutable loaded : int;
}

let path t = Filename.concat t.dir filename
let mkdirs = Binfile.mkdirs

let load ?faults ~dir () : t =
  let t =
    {
      dir;
      tbl = Hashtbl.create 256;
      mutex = Mutex.create ();
      faults;
      dirty = false;
      loaded = 0;
    }
  in
  mkdirs dir;
  (match Binfile.read ~path:(path t) ~magic ~version with
  | None -> (* missing/corrupt/truncated/wrong version: start cold *) ()
  | Some payload -> (
      try
        let (data : (string, entry) Hashtbl.t) = Marshal.from_string payload 0 in
        Hashtbl.iter (fun k e -> Hashtbl.replace t.tbl k e) data;
        t.loaded <- Hashtbl.length t.tbl
      with _ -> ()));
  t

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mutex;
  r

let add t key entry =
  Mutex.lock t.mutex;
  if not (Hashtbl.mem t.tbl key) then begin
    Hashtbl.replace t.tbl key entry;
    t.dirty <- true
  end;
  Mutex.unlock t.mutex

(* Injected write faults mangle the framed bytes before the atomic
   write: a flipped payload byte (digest mismatch on load) or a
   truncation (length mismatch).  Either way the next [load] must come
   up empty rather than crash — the truncation-sweep unit test checks
   every prefix length. *)
let mangle faults bytes =
  let corrupt = Fault.fire faults Fault.Store_corrupt in
  let partial = Fault.fire faults Fault.Store_partial in
  let bytes =
    if corrupt && String.length bytes > 40 then begin
      let b = Bytes.of_string bytes in
      let i = String.length magic + 12 + ((Bytes.length b - 60) / 2) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      Bytes.to_string b
    end
    else bytes
  in
  if partial then String.sub bytes 0 (String.length bytes * 2 / 3) else bytes

let save t =
  Mutex.lock t.mutex;
  (if t.dirty then
     try
       let payload = Marshal.to_string t.tbl [] in
       let bytes = mangle t.faults (Binfile.frame ~magic ~version payload) in
       if Binfile.write_atomic ~path:(path t) bytes then t.dirty <- false
     with _ -> (* cache write failures never fail the run *) ());
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let loaded t = t.loaded
let dir t = t.dir
