(** Query interface over bit-blasting + CDCL, with a query cache and the
    counters the benchmark harness reports (KLEE's counterpart is its solver
    chain: simplification, caching, then STP).

    All mutable solver state — the query cache, the stats counters and the
    wall-clock deadline — lives in an explicit {!ctx} record.  Contexts are
    cheap to create and deliberately {e not} thread-safe: the parallel
    exploration engine gives every worker domain its own context, so no
    solver-level synchronization is needed.

    Determinism contract: the answer to a query (including the satisfying
    model) is a pure function of the assertion list itself, never of cache
    history.  The cache key is the ordered list of term ids, so a hit can
    only return exactly what a fresh solve of the same list would have
    produced — which is what makes parallel and sequential exploration agree
    byte-for-byte on path witnesses. *)

type result =
  | Unsat
  | Sat of (int * int64) list  (** satisfying assignment: (var id, value) *)

exception Timeout = Sat.Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
}

type ctx = {
  stats : stats;
  cache : (int list, result) Hashtbl.t;
      (** query cache: ordered term-id list -> result *)
  mutable deadline : float option;
      (** wall-clock deadline honoured by [check]; long-running
          blasting/SAT work raises {!Timeout} past it *)
  mutable hist : Overify_obs.Obs.Hist.t option;
      (** per-query blast+SAT latency histogram; observed only on real
          solves (cache hits and constant-pruned queries cost no solver
          time).  [None] (the default) records nothing. *)
}

let create ?deadline ?hist () =
  {
    stats =
      {
        queries = 0;
        cache_hits = 0;
        sat_answers = 0;
        unsat_answers = 0;
        solver_time = 0.0;
      };
    cache = Hashtbl.create 1024;
    deadline;
    hist;
  }

let stats ctx = ctx.stats

let reset_stats ctx =
  let s = ctx.stats in
  s.queries <- 0;
  s.cache_hits <- 0;
  s.sat_answers <- 0;
  s.unsat_answers <- 0;
  s.solver_time <- 0.0

let clear_cache ctx = Hashtbl.reset ctx.cache

let set_deadline ctx d = ctx.deadline <- d

let set_hist ctx h = ctx.hist <- h

(** Charge one real (uncached) solve to the counters, the latency
    histogram, and — when tracing — the trace sink.  Also called on the
    timeout path so attributed time stays consistent with [solver_time]. *)
let charge_solve ctx t0 ~timed_out =
  let dt = Unix.gettimeofday () -. t0 in
  ctx.stats.solver_time <- ctx.stats.solver_time +. dt;
  (match ctx.hist with
  | Some h -> Overify_obs.Obs.Hist.observe h dt
  | None -> ());
  if Overify_obs.Obs.Trace.enabled () then
    Overify_obs.Obs.Trace.emit ~cat:"solver" ~name:"solver.check"
      ~args:(if timed_out then [ ("timeout", "true") ] else [])
      ~ts:t0 ~dur:dt ()

(** Check satisfiability of the conjunction of width-1 terms. *)
let check (ctx : ctx) (assertions : Bv.t list) : result =
  let stats = ctx.stats in
  stats.queries <- stats.queries + 1;
  (* constant-prune: smart constructors already folded constants *)
  let assertions =
    List.filter (fun (t : Bv.t) -> t.Bv.node <> Bv.Const 1L) assertions
  in
  if List.exists (fun (t : Bv.t) -> t.Bv.node = Bv.Const 0L) assertions then begin
    stats.unsat_answers <- stats.unsat_answers + 1;
    Unsat
  end
  else if assertions = [] then begin
    stats.sat_answers <- stats.sat_answers + 1;
    Sat []
  end
  else begin
    (* the key preserves assertion order: queries with the same term set but
       a different order may blast to different CNF variable numberings and
       hence different (equally valid) models — caching across them would
       make the reported model depend on exploration history *)
    let key = List.map (fun (t : Bv.t) -> t.Bv.id) assertions in
    match Hashtbl.find_opt ctx.cache key with
    | Some r ->
        stats.cache_hits <- stats.cache_hits + 1;
        (match r with
        | Sat _ -> stats.sat_answers <- stats.sat_answers + 1
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        r
    | None ->
        let t0 = Unix.gettimeofday () in
        (match ctx.deadline with
        | Some d when t0 > d -> raise Timeout
        | _ -> ());
        let bctx = Blast.create ?deadline:ctx.deadline () in
        List.iter (Blast.assert_true bctx) assertions;
        let sat =
          try Sat.solve ?deadline:ctx.deadline bctx.Blast.sat
          with Timeout ->
            charge_solve ctx t0 ~timed_out:true;
            raise Timeout
        in
        let r =
          if not sat then Unsat
          else begin
            (* extract values for every variable mentioned *)
            let vars = Hashtbl.create 16 in
            List.iter
              (fun t ->
                Hashtbl.iter (fun id w -> Hashtbl.replace vars id w) (Bv.vars t))
              assertions;
            let model =
              Hashtbl.fold
                (fun id _w acc ->
                  match Blast.model_of_var bctx id with
                  | Some v -> (id, v) :: acc
                  | None -> (id, 0L) :: acc)
                vars []
            in
            Sat model
          end
        in
        charge_solve ctx t0 ~timed_out:false;
        (match r with
        | Sat _ -> stats.sat_answers <- stats.sat_answers + 1
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        Hashtbl.replace ctx.cache key r;
        r
  end

(** Convenience: is the conjunction satisfiable? *)
let is_sat ctx assertions =
  match check ctx assertions with Sat _ -> true | Unsat -> false

(** Model lookup with default 0 (unconstrained variables may take any value;
    0 is what the model extraction produces for absent bits). *)
let model_value model id =
  match List.assoc_opt id model with Some v -> v | None -> 0L
