(** Query interface over bit-blasting + CDCL, behind a layered acceleration
    chain (KLEE's counterpart is its solver chain: simplification,
    independence, counterexample cache, then STP; ours adds a Green-style
    canonical cache and an optional persistent cross-run store).

    Layer order for {!check} (DESIGN.md, "Solver acceleration"):

    {ol
    {- constant pruning (smart constructors already folded constants);}
    {- exact-match cache on the ordered term-id list;}
    {- canonicalization: sort structurally + dedup ({!Canon.normalize}),
       so permutations and duplicates of one assertion set share one
       solve;}
    {- independence partitioning ({!Canon.partition}): connected
       components over shared variables are solved separately — on the
       engine's queries, every component except the one touching the new
       branch condition was already solved for the parent state and hits
       the next layer;}
    {- per-component canonical cache, keyed by the α-renamed serialization
       ({!Canon.rename}): structurally equal components share one entry
       even across different variable ids;}
    {- UNSAT-subset rule ({!Cexcache}): a recorded UNSAT subset proves the
       component UNSAT;}
    {- persistent store ({!Store}, optional): canonical verdicts reused
       across runs and processes;}
    {- fresh bit-blast + SAT of the component (counted in
       [component_solves]).}}

    All mutable solver state lives in an explicit {!ctx}.  Contexts are
    cheap to create and deliberately {e not} thread-safe: the parallel
    exploration engine gives every worker domain its own context (the
    shared {!Store.t} has its own lock).

    Determinism contract: the answer to a query — including the satisfying
    model — is a pure function of the assertion {e set}, never of cache
    history or assertion order.  A fresh solve canonicalizes first, so a
    cache hit at any layer returns exactly what the fresh solve would
    have: canonical-cache and store hits translate a canonical-space model
    through the current renaming, which is the fresh answer because
    bit-blasting is equivariant under α-renaming (identical CNF, identical
    deterministic SAT run).  The one deliberately history-dependent rule —
    screening stored models ({!Cexcache.screen}, the SAT-superset rule) —
    is confined to the verdict-only {!is_sat} and never reaches {!check}.
    Consequently caching may be disabled ([OVERIFY_SOLVER_CACHE=0] or
    [create ~cache:false]) without changing any result: only the hit
    counters and solve counts move. *)

type result =
  | Unsat
  | Sat of (int * int64) list  (** satisfying assignment: (var id, value) *)

exception Timeout = Sat.Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
      (** queries answered without any blasting (any layer) *)
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
  mutable components : int;
      (** independent components across all canonically solved queries *)
  mutable component_solves : int;
      (** components that reached a fresh blast + SAT — the raw solver
          invocations the acceleration chain exists to avoid *)
  mutable hits_exact : int;     (** exact-match (ordered) cache hits *)
  mutable hits_canon : int;     (** per-component canonical cache hits *)
  mutable hits_subset : int;    (** UNSAT-subset rule hits *)
  mutable hits_superset : int;
      (** stored-model screening hits (verdict-only, {!is_sat}) *)
  mutable hits_store : int;     (** persistent cross-run store hits *)
}

(** One canonical component verdict; SAT models live in canonical variable
    space so α-equivalent components share the entry. *)
type centry = C_unsat | C_sat of int64 array

type ctx = {
  stats : stats;
  cache : (int list, result) Hashtbl.t;
      (** exact-match cache: ordered term-id list -> result *)
  canon : Canon.ctx;  (** digest/variable-set memos *)
  ctbl : (string, centry) Hashtbl.t;
      (** canonical per-component cache: α-renamed key -> verdict *)
  cex : Cexcache.t;
  reuse : bool;
      (** reuse layers enabled?  [false] keeps canonicalization and
          partitioning (they define the result) but re-solves everything *)
  store : Store.t option;
  faults : Overify_fault.Fault.t option;
      (** injected-fault schedule; a scheduled [timeout@N] makes the N-th
          query raise {!Timeout} before touching any cache layer *)
  mutable deadline : float option;
      (** wall-clock deadline honoured by [check]; long-running
          blasting/SAT work raises {!Timeout} past it *)
  mutable cancel : Overify_fault.Cancel.t option;
      (** cooperative cancellation token, polled at the top of every
          query (the serve daemon threads the request's token here so a
          past-deadline or watchdog-cancelled job stops before its next
          solve); also what an injected [stall@N] query blocks on *)
  mutable hist : Overify_obs.Obs.Hist.t option;
      (** per-query blast+SAT latency histogram; observed only on real
          solves (queries answered from cache cost no solver time).
          [None] (the default) records nothing. *)
  mutable span : Overify_obs.Obs.Span.t option;
      (** parent span for per-query solve spans: every real solve emits a
          one-shot ["solver.check"] child into the flight ring (and trace
          sink), so a request's span tree reaches individual queries.
          [None] (the default) emits nothing. *)
}

let env_cache_default () =
  match Sys.getenv_opt "OVERIFY_SOLVER_CACHE" with
  | Some "0" -> false
  | _ -> true

let create ?deadline ?cancel ?hist ?cache ?store ?faults () =
  {
    stats =
      {
        queries = 0;
        cache_hits = 0;
        sat_answers = 0;
        unsat_answers = 0;
        solver_time = 0.0;
        components = 0;
        component_solves = 0;
        hits_exact = 0;
        hits_canon = 0;
        hits_subset = 0;
        hits_superset = 0;
        hits_store = 0;
      };
    cache = Hashtbl.create 1024;
    canon = Canon.create ();
    ctbl = Hashtbl.create 1024;
    cex = Cexcache.create ();
    reuse = (match cache with Some b -> b | None -> env_cache_default ());
    store;
    faults;
    deadline;
    cancel;
    hist;
    span = None;
  }

let stats ctx = ctx.stats

let reset_stats ctx =
  let s = ctx.stats in
  s.queries <- 0;
  s.cache_hits <- 0;
  s.sat_answers <- 0;
  s.unsat_answers <- 0;
  s.solver_time <- 0.0;
  s.components <- 0;
  s.component_solves <- 0;
  s.hits_exact <- 0;
  s.hits_canon <- 0;
  s.hits_subset <- 0;
  s.hits_superset <- 0;
  s.hits_store <- 0

(** Drop {e every} acceleration layer this context owns: the exact-match
    cache, the canonical component cache, the counterexample cache and the
    per-term canonicalization memos (the shared persistent store, if any,
    belongs to the run, not the context, and is untouched). *)
let clear_cache ctx =
  Hashtbl.reset ctx.cache;
  Hashtbl.reset ctx.ctbl;
  Cexcache.clear ctx.cex;
  Canon.clear ctx.canon

let set_deadline ctx d = ctx.deadline <- d
let set_cancel ctx c = ctx.cancel <- c

let set_hist ctx h = ctx.hist <- h
let set_span ctx s = ctx.span <- s

(** Charge one real (uncached) solve to the counters, the latency
    histogram, the enclosing span (flight ring) and — when tracing — the
    trace sink.  Also called on the timeout path so attributed time stays
    consistent with [solver_time]. *)
let charge_solve ctx t0 ~timed_out =
  let dt = Unix.gettimeofday () -. t0 in
  ctx.stats.solver_time <- ctx.stats.solver_time +. dt;
  (match ctx.hist with
  | Some h -> Overify_obs.Obs.Hist.observe h dt
  | None -> ());
  match ctx.span with
  | Some parent ->
      (* the one-shot span emit covers both sinks (trace args carry
         trace/span/parent ids, joining the daemon timeline) *)
      Overify_obs.Obs.Span.emit ~parent ~ts:t0 ~dur:dt
        ~counters:
          (("solver_time", dt)
          :: (if timed_out then [ ("timed_out", 1.0) ] else []))
        "solver.check"
  | None ->
      if Overify_obs.Obs.Trace.enabled () then
        Overify_obs.Obs.Trace.emit ~cat:"solver" ~name:"solver.check"
          ~args:(if timed_out then [ ("timeout", "true") ] else [])
          ~ts:t0 ~dur:dt ()

let sorted_ids (comp : Bv.t list) : int array =
  let a = Array.of_list (List.map (fun (t : Bv.t) -> t.Bv.id) comp) in
  Array.sort compare a;
  a

(** Blast + SAT one component (already in canonical order) and return its
    verdict with the model in canonical variable space. *)
let solve_component ctx (comp : Bv.t list) (renamed : Canon.renamed) : centry =
  ctx.stats.component_solves <- ctx.stats.component_solves + 1;
  let bctx = Blast.create ?deadline:ctx.deadline () in
  List.iter (Blast.assert_true bctx) comp;
  if not (Sat.solve ?deadline:ctx.deadline bctx.Blast.sat) then C_unsat
  else
    C_sat
      (Array.map
         (fun v ->
           match Blast.model_of_var bctx v with Some x -> x | None -> 0L)
         renamed.Canon.cvars)

(** One component through the reuse layers, falling back to a fresh solve.
    Every layer returns exactly what [solve_component] would (see the
    determinism contract above), so the layers are pure memoization.
    [fresh] is incremented when blasting actually happened. *)
let check_component ctx ~fresh (comp : Bv.t list) : result =
  let renamed = Canon.rename ctx.canon comp in
  let answer = function
    | C_unsat -> Unsat
    | C_sat values -> Sat (Canon.model_of_canon renamed values)
  in
  let record entry =
    if ctx.reuse then Hashtbl.replace ctx.ctbl renamed.Canon.key entry;
    (match ctx.store with
    | Some st ->
        Store.add st renamed.Canon.key
          (match entry with
          | C_unsat -> Store.E_unsat
          | C_sat v -> Store.E_sat v)
    | None -> ());
    if ctx.reuse && entry = C_unsat then
      Cexcache.note_unsat ctx.cex (sorted_ids comp)
  in
  if not ctx.reuse then begin
    let entry = solve_component ctx comp renamed in
    incr fresh;
    (* still publish to an explicitly attached store: the store is a
       cross-run artifact, not an in-run reuse layer *)
    (match ctx.store with
    | Some st ->
        Store.add st renamed.Canon.key
          (match entry with
          | C_unsat -> Store.E_unsat
          | C_sat v -> Store.E_sat v)
    | None -> ());
    answer entry
  end
  else
    match Hashtbl.find_opt ctx.ctbl renamed.Canon.key with
    | Some entry ->
        ctx.stats.hits_canon <- ctx.stats.hits_canon + 1;
        answer entry
    | None ->
        if Cexcache.implies_unsat ctx.cex (sorted_ids comp) then begin
          ctx.stats.hits_subset <- ctx.stats.hits_subset + 1;
          Hashtbl.replace ctx.ctbl renamed.Canon.key C_unsat;
          Unsat
        end
        else begin
          match
            Option.bind ctx.store (fun st -> Store.find st renamed.Canon.key)
          with
          (* E_blob entries live under namespaced client keys (never a
             canonical component key); finding one here means a key
             collision we must treat as a miss, not a verdict *)
          | Some ((Store.E_unsat | Store.E_sat _) as e) ->
              ctx.stats.hits_store <- ctx.stats.hits_store + 1;
              let entry =
                match e with
                | Store.E_unsat -> C_unsat
                | Store.E_sat v -> C_sat v
                | Store.E_blob _ -> assert false
              in
              Hashtbl.replace ctx.ctbl renamed.Canon.key entry;
              answer entry
          | Some (Store.E_blob _) | None ->
              let entry = solve_component ctx comp renamed in
              incr fresh;
              record entry;
              answer entry
        end

(** An injected stuck query ([stall@N]): blocks polling only the explicit
    cancellation flag — deliberately ignoring the solver deadline, which
    is what makes it a wedge the engine's own budgets cannot escape —
    until an external party (the serve watchdog) cancels the token.
    Without a token attached nothing could ever free it, so it degrades
    to an ordinary {!Timeout} instead of hanging the process. *)
let stall ctx =
  match ctx.cancel with
  | None -> raise Timeout
  | Some c ->
      while not (Overify_fault.Cancel.cancelled c) do
        Unix.sleepf 0.005
      done;
      raise (Overify_fault.Cancel.Cancelled (Overify_fault.Cancel.reason c))

(** Check satisfiability of the conjunction of width-1 terms. *)
let check (ctx : ctx) (assertions : Bv.t list) : result =
  let stats = ctx.stats in
  stats.queries <- stats.queries + 1;
  (* cooperative cancellation point: every query starts with a token
     check (deadline-aware), so a cancelled job never begins another
     solve *)
  Overify_fault.Cancel.check ctx.cancel;
  (* injected solver timeout: fires before any cache layer, so a faulted
     query costs its caller a path regardless of warm caches *)
  if Overify_fault.Fault.fire ctx.faults Overify_fault.Fault.Solver_timeout then
    raise Timeout;
  if Overify_fault.Fault.fire ctx.faults Overify_fault.Fault.Solver_stall then
    stall ctx;
  (* constant-prune: smart constructors already folded constants *)
  let assertions =
    List.filter (fun (t : Bv.t) -> t.Bv.node <> Bv.Const 1L) assertions
  in
  if List.exists (fun (t : Bv.t) -> t.Bv.node = Bv.Const 0L) assertions then begin
    stats.unsat_answers <- stats.unsat_answers + 1;
    Unsat
  end
  else if assertions = [] then begin
    stats.sat_answers <- stats.sat_answers + 1;
    Sat []
  end
  else begin
    (* exact-match fast path: same assertions in the same order.  (The
       canonical layers below make the result order-independent, so this
       key is just the cheapest possible lookup, not a semantic
       necessity.) *)
    let key = List.map (fun (t : Bv.t) -> t.Bv.id) assertions in
    match if ctx.reuse then Hashtbl.find_opt ctx.cache key else None with
    | Some r ->
        stats.cache_hits <- stats.cache_hits + 1;
        stats.hits_exact <- stats.hits_exact + 1;
        (match r with
        | Sat _ -> stats.sat_answers <- stats.sat_answers + 1
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        r
    | None ->
        let t0 = Unix.gettimeofday () in
        (match ctx.deadline with
        | Some d when t0 > d -> raise Timeout
        | _ -> ());
        (* canonical solve: normalize, partition, solve each component.
           This path runs identically with reuse on or off — it defines
           the query's answer. *)
        let comps =
          Canon.partition ctx.canon (Canon.normalize ctx.canon assertions)
        in
        stats.components <- stats.components + List.length comps;
        let fresh = ref 0 in
        let r =
          try
            (* first UNSAT component decides; models concatenate in
               component order (both orders are canonical) *)
            let rec go acc = function
              | [] -> Sat (List.concat (List.rev acc))
              | comp :: rest -> (
                  match check_component ctx ~fresh comp with
                  | Unsat -> Unsat
                  | Sat m -> go (m :: acc) rest)
            in
            go [] comps
          with Timeout ->
            charge_solve ctx t0 ~timed_out:true;
            raise Timeout
        in
        if !fresh > 0 then charge_solve ctx t0 ~timed_out:false
        else stats.cache_hits <- stats.cache_hits + 1;
        (match r with
        | Sat m ->
            stats.sat_answers <- stats.sat_answers + 1;
            if ctx.reuse && !fresh > 0 then Cexcache.note_model ctx.cex m
        | Unsat -> stats.unsat_answers <- stats.unsat_answers + 1);
        if ctx.reuse then Hashtbl.replace ctx.cache key r;
        r
  end

(** Convenience: is the conjunction satisfiable?  Verdict-only, so this
    entry point may additionally reuse stored models (the SAT-superset
    rule): if a model recorded for any earlier query satisfies every
    assertion here, the conjunction is SAT — no blasting at all.  The
    verdict is sound and identical to [check]'s; only which counters move
    depends on history, which is why the rule lives here and not in
    [check]. *)
let is_sat ctx assertions =
  if
    ctx.reuse && assertions <> []
    && Cexcache.screen ctx.cex assertions
  then begin
    let s = ctx.stats in
    s.queries <- s.queries + 1;
    s.cache_hits <- s.cache_hits + 1;
    s.hits_superset <- s.hits_superset + 1;
    s.sat_answers <- s.sat_answers + 1;
    true
  end
  else match check ctx assertions with Sat _ -> true | Unsat -> false

(** Model lookup with default 0 (unconstrained variables may take any value;
    0 is what the model extraction produces for absent bits). *)
let model_value model id =
  match List.assoc_opt id model with Some v -> v | None -> 0L
