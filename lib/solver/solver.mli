(** Query interface over bit-blasting + CDCL, with a query cache and
    counters — the role KLEE's solver chain (simplify, cache, STP) plays.

    All mutable solver state lives in an explicit {!ctx} threaded through
    {!check}.  A context is {e not} thread-safe; concurrent callers (the
    parallel exploration workers) each own one.  Query answers — including
    the satisfying model — are a pure function of the assertion list, never
    of cache history, which is what lets parallel and sequential exploration
    agree exactly on path witnesses. *)

type result =
  | Unsat
  | Sat of (int * int64) list
      (** satisfying assignment as (variable id, value) pairs *)

exception Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
}

type ctx
(** Query cache + stats counters + wall-clock deadline. *)

val create : ?deadline:float -> ?hist:Overify_obs.Obs.Hist.t -> unit -> ctx
(** Fresh context with empty cache and zeroed counters.  [deadline] is an
    absolute [Unix.gettimeofday] instant past which blasting or SAT work
    raises {!Timeout} — set by the symbolic-execution engine so one
    pathological query cannot blow an experiment budget.  [hist] receives
    the latency of every real (uncached) solve. *)

val stats : ctx -> stats
val reset_stats : ctx -> unit

val set_hist : ctx -> Overify_obs.Obs.Hist.t option -> unit
(** Attach (or detach) the per-query latency histogram. *)

val clear_cache : ctx -> unit
(** Drop this context's cached query results (other contexts are
    unaffected). *)

val set_deadline : ctx -> float option -> unit

val check : ctx -> Bv.t list -> result
(** Satisfiability of the conjunction of width-1 terms.  Results are cached
    by the ordered hash-consed term-id list. *)

val is_sat : ctx -> Bv.t list -> bool

val model_value : (int * int64) list -> int -> int64
(** Look up a variable in a model; unconstrained variables read as 0. *)
