(** Query interface over bit-blasting + CDCL behind a layered acceleration
    chain — the role KLEE's solver chain (simplify, independence,
    counterexample cache, STP) plays, plus a Green-style canonical cache
    and an optional persistent cross-run store.

    Layers, in order (each falls through to the next; see DESIGN.md,
    "Solver acceleration"): constant pruning → exact-match cache →
    canonicalization (sort + dedup, {!Canon}) → independence partitioning
    into variable-disjoint components → per-component canonical cache
    (α-renamed keys) → UNSAT-subset rule ({!Cexcache}) → persistent store
    ({!Store}, when attached) → fresh blast + SAT.

    All mutable solver state lives in an explicit {!ctx} threaded through
    {!check}.  A context is {e not} thread-safe; concurrent callers (the
    parallel exploration workers) each own one — only the optional
    {!Store.t} may be shared (it locks internally).

    Determinism contract: query answers — including the satisfying model —
    are a pure function of the assertion {e set}, never of cache history
    or assertion order, which is what lets parallel and sequential
    exploration agree exactly on path witnesses, with caching on or off.
    The single history-dependent rule (stored-model screening, the
    SAT-superset rule) is confined to the verdict-only {!is_sat}. *)

type result =
  | Unsat
  | Sat of (int * int64) list
      (** satisfying assignment as (variable id, value) pairs *)

exception Timeout

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
      (** queries answered without any blasting, by any layer *)
  mutable sat_answers : int;
  mutable unsat_answers : int;
  mutable solver_time : float;  (** seconds spent in blasting + SAT *)
  mutable components : int;
      (** independent components over all canonically solved queries *)
  mutable component_solves : int;
      (** components that reached a fresh blast + SAT — the raw solver
          invocations the chain exists to avoid *)
  mutable hits_exact : int;     (** exact-match (ordered) cache hits *)
  mutable hits_canon : int;     (** per-component canonical cache hits *)
  mutable hits_subset : int;    (** UNSAT-subset rule hits *)
  mutable hits_superset : int;  (** model-screening hits ({!is_sat} only) *)
  mutable hits_store : int;     (** persistent cross-run store hits *)
}

type ctx
(** Acceleration layers + stats counters + wall-clock deadline. *)

val create :
  ?deadline:float ->
  ?cancel:Overify_fault.Cancel.t ->
  ?hist:Overify_obs.Obs.Hist.t ->
  ?cache:bool ->
  ?store:Store.t ->
  ?faults:Overify_fault.Fault.t ->
  unit ->
  ctx
(** Fresh context with empty caches and zeroed counters.  [deadline] is an
    absolute [Unix.gettimeofday] instant past which blasting or SAT work
    raises {!Timeout}.  [cancel] attaches a cooperative cancellation
    token, polled (deadline-aware) at the top of every {!check}: a set or
    past-deadline token makes the query raise
    {!Overify_fault.Cancel.Cancelled} before any other work.  [hist]
    receives the latency of every real (uncached) solve.  [cache] enables
    the reuse layers (default: the [OVERIFY_SOLVER_CACHE] environment
    variable, off only when ["0"]); disabling it never changes an answer —
    canonicalization and partitioning still run, only reuse is skipped.
    [store] attaches a persistent cross-run store (shared across contexts;
    it locks internally); fresh results are published to it even with
    [cache:false].  [faults] attaches a fault-injection schedule: a
    scheduled solver timeout makes that query raise {!Timeout} before any
    cache layer is consulted, and a scheduled [stall@N] makes the N-th
    query block until the cancellation token fires ({!Timeout} immediately
    if no token is attached — a stuck solver must not hang a process that
    has no way to cancel it). *)

val stats : ctx -> stats
val reset_stats : ctx -> unit

val set_hist : ctx -> Overify_obs.Obs.Hist.t option -> unit
(** Attach (or detach) the per-query latency histogram. *)

val set_span : ctx -> Overify_obs.Obs.Span.t option -> unit
(** Attach (or detach) the parent span: every real (uncached) solve then
    emits a one-shot ["solver.check"] child span carrying its wall
    interval and [solver_time] counter into the flight ring (and, when
    collecting, the trace sink).  [None] (the default) emits nothing. *)

val clear_cache : ctx -> unit
(** Drop {e every} acceleration layer this context owns — the exact-match
    cache, the canonical component cache, the counterexample cache and the
    canonicalization memos.  Other contexts and the shared persistent
    store are unaffected. *)

val set_deadline : ctx -> float option -> unit

val set_cancel : ctx -> Overify_fault.Cancel.t option -> unit
(** Attach (or detach) the cooperative cancellation token. *)

val check : ctx -> Bv.t list -> result
(** Satisfiability of the conjunction of width-1 terms, through the
    acceleration chain.  The result (verdict {e and} model) is a pure
    function of the assertion set. *)

val is_sat : ctx -> Bv.t list -> bool
(** Verdict-only satisfiability.  May additionally answer SAT by screening
    stored models (the SAT-superset rule), which {!check} must not use —
    the verdict is identical either way. *)

val model_value : (int * int64) list -> int -> int64
(** Look up a variable in a model; unconstrained variables read as 0. *)
