(** Hash-consed bitvector terms — the symbolic-expression language shared by
    the symbolic executor and the solver (the role STP's expressions play
    for KLEE).  Widths are 1..64 bits; constants are stored normalized
    (zero-extended into the [int64]).  Smart constructors simplify locally
    so the executor's common patterns never reach the SAT solver. *)

type binop =
  | Add | Sub | Mul
  | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type t = private { id : int; node : node; width : int }

and node =
  | Const of int64
  | Var of int          (** symbolic variable (input byte); id is global *)
  | Bin of binop * t * t
  | Cmp of cmpop * t * t   (** width 1 *)
  | Ite of t * t * t
  | Concat of t * t     (** high bits, low bits *)
  | Extract of int * int * t  (** [hi..lo] inclusive *)

val width : t -> int
val mask : int -> int64
val norm : int -> int64 -> int64
val to_signed : int -> int64 -> int64

val live_terms : unit -> int
(** Number of live hash-consed terms (stats). *)

val rebuilder : unit -> t -> t
(** Memoizing re-interner for terms that bypassed the hash-cons table —
    i.e. were unmarshaled from a checkpoint.  Rebuilds bottom-up through
    [mk], so the results are ordinary interned terms with live ids;
    sharing within the batch is preserved.  One rebuilder per unmarshaled
    batch. *)

val reset : unit -> unit
(** Drop all hash-consed terms.  Only safe when no term values are retained
    by the caller and no other domain is constructing terms; each engine run
    calls this (before spawning workers) to bound GC pressure.

    Term construction itself is thread-safe: the hash-cons table is guarded
    by a lock, so parallel exploration workers may build terms
    concurrently. *)

(** {2 Constructors (simplifying)} *)

val const : int -> int64 -> t

val var : int -> int -> t
(** [var width id]. *)

val tt : t
val ff : t
val bool_ : bool -> t
val is_const : t -> bool
val const_val : t -> int64 option

val binop : binop -> t -> t -> t
(** Folds constants; identity/absorption laws; power-of-two division and
    multiplication become shifts/masks (keeps divider circuits out of the
    CNF). *)

val cmp : cmpop -> t -> t -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val ite : t -> t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
(** [concat hi lo]. *)

val zext : int -> t -> t
val sext : int -> t -> t
val trunc : int -> t -> t

(** {2 Evaluation and queries} *)

val eval_binop : binop -> int -> int64 -> int64 -> int64 option
val eval_cmp : cmpop -> int -> int64 -> int64 -> bool

val eval : (int -> int64) -> t -> int64
(** Evaluate under a variable assignment (memoized over the DAG); division
    by zero yields 0, matching the blasted circuit. *)

val vars : t -> (int, int) Hashtbl.t
(** Variables occurring in a term: id -> width. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
