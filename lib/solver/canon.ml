(** Canonicalization of assertion sets: structural digests for sorting,
    independence partitioning over shared variables, and α-renaming
    serialization for cache keys.  See canon.mli for the contracts. *)

type ctx = {
  digests : (int, int64 * int64) Hashtbl.t;  (* term id -> 128-bit digest *)
  varsets : (int, int list) Hashtbl.t;       (* term id -> sorted var ids *)
}

let create () = { digests = Hashtbl.create 512; varsets = Hashtbl.create 512 }

let clear ctx =
  Hashtbl.reset ctx.digests;
  Hashtbl.reset ctx.varsets

(* ---------------- structural digests ---------------- *)

let opcode_bin : Bv.binop -> int = function
  | Bv.Add -> 1 | Bv.Sub -> 2 | Bv.Mul -> 3
  | Bv.Sdiv -> 4 | Bv.Udiv -> 5 | Bv.Srem -> 6 | Bv.Urem -> 7
  | Bv.And -> 8 | Bv.Or -> 9 | Bv.Xor -> 10
  | Bv.Shl -> 11 | Bv.Lshr -> 12 | Bv.Ashr -> 13

let opcode_cmp : Bv.cmpop -> int = function
  | Bv.Eq -> 1 | Bv.Ne -> 2
  | Bv.Slt -> 3 | Bv.Sle -> 4 | Bv.Sgt -> 5 | Bv.Sge -> 6
  | Bv.Ult -> 7 | Bv.Ule -> 8 | Bv.Ugt -> 9 | Bv.Uge -> 10

(* splitmix64 finalizer: full-avalanche 64-bit mix *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fold h x = mix64 (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) x)

(* two independent 64-bit chains (different seeds) make accidental
   collisions vanishingly rare; a collision is still harmless — digests
   only order terms, with a structural compare as tie-break, and are never
   used as cache keys *)
let rec digest ctx (t : Bv.t) : int64 * int64 =
  match Hashtbl.find_opt ctx.digests t.Bv.id with
  | Some d -> d
  | None ->
      let parts =
        match t.Bv.node with
        | Bv.Const c -> [ 1L; Int64.of_int t.Bv.width; c ]
        | Bv.Var v -> [ 2L; Int64.of_int t.Bv.width; Int64.of_int v ]
        | Bv.Bin (op, a, b) ->
            let (a1, a2) = digest ctx a and (b1, b2) = digest ctx b in
            [ 3L; Int64.of_int (opcode_bin op); Int64.of_int t.Bv.width;
              a1; a2; b1; b2 ]
        | Bv.Cmp (op, a, b) ->
            let (a1, a2) = digest ctx a and (b1, b2) = digest ctx b in
            [ 4L; Int64.of_int (opcode_cmp op); a1; a2; b1; b2 ]
        | Bv.Ite (c, a, b) ->
            let (c1, c2) = digest ctx c
            and (a1, a2) = digest ctx a
            and (b1, b2) = digest ctx b in
            [ 5L; Int64.of_int t.Bv.width; c1; c2; a1; a2; b1; b2 ]
        | Bv.Concat (a, b) ->
            let (a1, a2) = digest ctx a and (b1, b2) = digest ctx b in
            [ 6L; Int64.of_int t.Bv.width; a1; a2; b1; b2 ]
        | Bv.Extract (hi, lo, a) ->
            let (a1, a2) = digest ctx a in
            [ 7L; Int64.of_int hi; Int64.of_int lo; a1; a2 ]
      in
      let d =
        (List.fold_left fold 0x5bf03635f0935ad1L parts,
         List.fold_left fold 0x27220a95fe1dbf9aL parts)
      in
      Hashtbl.replace ctx.digests t.Bv.id d;
      d

(* deterministic, id-independent structural order; only reached on digest
   collisions, so the tree recursion cost never matters in practice *)
let rec struct_compare (a : Bv.t) (b : Bv.t) : int =
  if a == b then 0
  else
    match compare a.Bv.width b.Bv.width with
    | 0 -> (
        let tag (t : Bv.t) =
          match t.Bv.node with
          | Bv.Const _ -> 0 | Bv.Var _ -> 1 | Bv.Bin _ -> 2 | Bv.Cmp _ -> 3
          | Bv.Ite _ -> 4 | Bv.Concat _ -> 5 | Bv.Extract _ -> 6
        in
        match compare (tag a) (tag b) with
        | 0 -> (
            match (a.Bv.node, b.Bv.node) with
            | (Bv.Const x, Bv.Const y) -> compare x y
            | (Bv.Var x, Bv.Var y) -> compare x y
            | (Bv.Bin (o1, a1, b1), Bv.Bin (o2, a2, b2)) -> (
                match compare (opcode_bin o1) (opcode_bin o2) with
                | 0 -> (
                    match struct_compare a1 a2 with
                    | 0 -> struct_compare b1 b2
                    | c -> c)
                | c -> c)
            | (Bv.Cmp (o1, a1, b1), Bv.Cmp (o2, a2, b2)) -> (
                match compare (opcode_cmp o1) (opcode_cmp o2) with
                | 0 -> (
                    match struct_compare a1 a2 with
                    | 0 -> struct_compare b1 b2
                    | c -> c)
                | c -> c)
            | (Bv.Ite (c1, a1, b1), Bv.Ite (c2, a2, b2)) -> (
                match struct_compare c1 c2 with
                | 0 -> (
                    match struct_compare a1 a2 with
                    | 0 -> struct_compare b1 b2
                    | c -> c)
                | c -> c)
            | (Bv.Concat (a1, b1), Bv.Concat (a2, b2)) -> (
                match struct_compare a1 a2 with
                | 0 -> struct_compare b1 b2
                | c -> c)
            | (Bv.Extract (h1, l1, a1), Bv.Extract (h2, l2, a2)) -> (
                match compare (h1, l1) (h2, l2) with
                | 0 -> struct_compare a1 a2
                | c -> c)
            | _ -> assert false (* tags equal *))
        | c -> c)
    | c -> c

let compare_terms ctx a b =
  if a == b then 0
  else
    match compare (digest ctx a) (digest ctx b) with
    | 0 -> struct_compare a b
    | c -> c

(* ---------------- variable sets ---------------- *)

let term_vars ctx (t : Bv.t) : int list =
  match Hashtbl.find_opt ctx.varsets t.Bv.id with
  | Some vs -> vs
  | None ->
      let vs =
        List.sort compare
          (Hashtbl.fold (fun id _w acc -> id :: acc) (Bv.vars t) [])
      in
      Hashtbl.replace ctx.varsets t.Bv.id vs;
      vs

(* ---------------- normalize ---------------- *)

let normalize ctx (assertions : Bv.t list) : Bv.t list =
  let sorted = List.stable_sort (compare_terms ctx) assertions in
  let rec dedup = function
    | a :: (b :: _ as rest) when (a : Bv.t).Bv.id = (b : Bv.t).Bv.id ->
        dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* ---------------- independence partitioning ---------------- *)

(* union-find over variable ids, local to one partition call *)
let partition ctx (assertions : Bv.t list) : Bv.t list list =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
        Hashtbl.replace parent v v;
        v
    | Some p when p = v -> v
    | Some p ->
        let r = find p in
        Hashtbl.replace parent v r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun t ->
      match term_vars ctx t with
      | [] -> ()
      | v0 :: rest -> List.iter (union v0) rest)
    assertions;
  (* group assertions by their variables' root; component order = first
     member's position, members keep input order.  Variable-free assertions
     get unique negative keys (singleton components). *)
  let groups : (int, Bv.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let fresh = ref 0 in
  List.iter
    (fun t ->
      let key =
        match term_vars ctx t with
        | [] ->
            decr fresh;
            !fresh
        | v :: _ -> find v
      in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := t :: !cell
      | None ->
          Hashtbl.replace groups key (ref [ t ]);
          order := key :: !order)
    assertions;
  List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order

(* ---------------- α-renaming serialization ---------------- *)

type renamed = { key : string; cvars : int array }

let rename _ctx (assertions : Bv.t list) : renamed =
  let buf = Buffer.create 256 in
  let nodes = Hashtbl.create 64 in (* term id -> canonical node index *)
  let vmap = Hashtbl.create 16 in  (* var id -> canonical var index *)
  let vorder = ref [] in
  let next = ref 0 in
  (* postorder of first visit: shared subterms emitted once, referenced by
     node index — linear in the DAG, not the unfolded tree *)
  let rec go (t : Bv.t) : int =
    match Hashtbl.find_opt nodes t.Bv.id with
    | Some i -> i
    | None ->
        let line =
          match t.Bv.node with
          | Bv.Const c -> Printf.sprintf "c%d:%Ld" t.Bv.width c
          | Bv.Var v ->
              let cv =
                match Hashtbl.find_opt vmap v with
                | Some i -> i
                | None ->
                    let i = Hashtbl.length vmap in
                    Hashtbl.replace vmap v i;
                    vorder := v :: !vorder;
                    i
              in
              Printf.sprintf "v%d:%d" t.Bv.width cv
          | Bv.Bin (op, a, b) ->
              let ia = go a in
              let ib = go b in
              Printf.sprintf "b%d:%d:%d:%d" (opcode_bin op) t.Bv.width ia ib
          | Bv.Cmp (op, a, b) ->
              let ia = go a in
              let ib = go b in
              Printf.sprintf "p%d:%d:%d" (opcode_cmp op) ia ib
          | Bv.Ite (c, a, b) ->
              let ic = go c in
              let ia = go a in
              let ib = go b in
              Printf.sprintf "i%d:%d:%d:%d" t.Bv.width ic ia ib
          | Bv.Concat (a, b) ->
              let ia = go a in
              let ib = go b in
              Printf.sprintf "n%d:%d:%d" t.Bv.width ia ib
          | Bv.Extract (hi, lo, a) ->
              let ia = go a in
              Printf.sprintf "x%d:%d:%d" hi lo ia
        in
        let i = !next in
        incr next;
        Hashtbl.replace nodes t.Bv.id i;
        Buffer.add_string buf line;
        Buffer.add_char buf ';';
        i
  in
  let roots = List.map go assertions in
  Buffer.add_char buf '|';
  Buffer.add_string buf (String.concat "," (List.map string_of_int roots));
  { key = Buffer.contents buf; cvars = Array.of_list (List.rev !vorder) }

let model_of_canon (r : renamed) (values : int64 array) : (int * int64) list =
  List.init (Array.length r.cvars) (fun i -> (r.cvars.(i), values.(i)))
