(** Canonicalization of assertion sets — the front half of the solver
    acceleration chain (DESIGN.md, "Solver acceleration").

    Three jobs, all deterministic and independent of term allocation order:

    - {b normalize}: sort an assertion list by a structural digest (with a
      full structural compare as tie-break) and drop duplicates, so every
      permutation/duplication of the same assertion set maps to one
      canonical list;
    - {b partition}: split the canonical list into connected components
      over shared symbolic variables — independent subproblems that can be
      solved (and cached) separately;
    - {b rename}: serialize a component with variables renumbered by first
      occurrence, yielding a key under which α-equivalent components (same
      structure, different variable ids) collide, plus the positional map
      needed to translate models between the canonical variable space and
      the actual one.

    The digest and variable-set computations are memoized per hash-consed
    term id in a {!ctx}; a context is only valid for one [Bv] hash-cons
    generation (ids are recycled by [Bv.reset]) and is not thread-safe —
    exactly the ownership discipline of [Solver.ctx], which embeds one. *)

type ctx

val create : unit -> ctx

val clear : ctx -> unit
(** Drop the per-term memo tables (safe after [Bv.reset]). *)

val digest : ctx -> Bv.t -> int64 * int64
(** 128-bit structural digest over node kinds, widths, constants and
    {e global} variable ids — never over term ids, so two workers that
    allocate the same term in different orders agree on the digest. *)

val compare_terms : ctx -> Bv.t -> Bv.t -> int
(** Total order: digest first, full structural comparison on collision.
    Returns 0 iff the terms are equal (hash-consing makes structural
    equality physical equality). *)

val term_vars : ctx -> Bv.t -> int list
(** Sorted list of symbolic-variable ids occurring in the term
    (memoized). *)

val normalize : ctx -> Bv.t list -> Bv.t list
(** Canonical form of an assertion list: sorted by {!compare_terms},
    duplicates removed.  A pure function of the assertion {e set}. *)

val partition : ctx -> Bv.t list -> Bv.t list list
(** Split a canonical list into connected components of the "shares a
    variable" relation.  Component order follows the first member's
    position in the input; members keep their input order, so partitioning
    a normalized list yields normalized components.  Variable-free
    assertions form singleton components. *)

type renamed = {
  key : string;
      (** canonical serialization of the component DAG with variables
          renumbered by first occurrence; equal keys iff the components are
          identical up to an injective variable renaming *)
  cvars : int array;
      (** actual variable id of each canonical variable index *)
}

val rename : ctx -> Bv.t list -> renamed
(** Serialize a (canonically ordered) assertion list.  Linear in the DAG
    size: shared subterms are emitted once and referenced by node index. *)

val model_of_canon : renamed -> int64 array -> (int * int64) list
(** Translate a model in canonical variable space (value per canonical
    index) back to (actual variable id, value) pairs, in canonical-index
    order. *)
