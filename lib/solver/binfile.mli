(** Framed atomic binary files — the shared on-disk discipline for
    {!Store} and the engine's checkpoints.

    Frame layout: magic string, 4-byte big-endian version, 8-byte
    big-endian payload length, payload bytes, 16-byte MD5 digest of the
    payload.  [read] validates every field, so a truncated file (partial
    write, killed process) or a flipped byte is detected and rejected —
    not just bad magic.  Writes go to a temp file and [Sys.rename] into
    place, so a reader never observes a half-written frame. *)

val frame : magic:string -> version:int -> string -> string
(** Wrap a payload in a frame. *)

val parse : magic:string -> version:int -> string -> string option
(** Unwrap and validate a frame; [None] on any mismatch (magic, version,
    truncation, length, digest). *)

val write_atomic : path:string -> string -> bool
(** Write bytes to [path] via temp-file + rename; [false] on failure
    (never raises). Creates parent directories as needed. *)

val read_file : path:string -> string option
(** Whole-file read; [None] if missing/unreadable. *)

val write : path:string -> magic:string -> version:int -> string -> bool
(** [frame] + [write_atomic]. *)

val read : path:string -> magic:string -> version:int -> string option
(** [read_file] + [parse]. *)

val mkdirs : string -> unit
(** [mkdir -p]; never raises. *)
