(** Counterexample cache: reuse past verdicts and models by set reasoning
    instead of exact match (DESIGN.md, "Solver acceleration").

    Two rules, both per solver context and in-memory:

    - {b UNSAT subset}: if a previously-UNSAT assertion set is a subset of
      the current query, the current query is UNSAT.  Sound because adding
      conjuncts can only shrink the solution set; usable on the
      model-producing path since an UNSAT answer carries no model.
    - {b SAT superset / model screening}: if a stored model of some past
      query satisfies every assertion of the current one (which in
      particular holds when the past query was a superset), the current
      query is SAT.  The verdict is sound, but {e which} stored model fires
      depends on cache history — so this rule is reserved for verdict-only
      entry points ([Solver.is_sat]), never for [Solver.check], whose
      models must stay a pure function of the assertion set.

    Assertion sets are identified by hash-consed term ids (structural
    equality is physical equality within one [Bv] generation), so subset
    tests are exact — no digest-collision unsoundness is possible.  Both
    stores are bounded; eviction only costs hits, never correctness. *)

type t

val create : unit -> t
val clear : t -> unit

val note_unsat : t -> int array -> unit
(** Record a sorted term-id array whose conjunction is UNSAT. *)

val implies_unsat : t -> int array -> bool
(** Is some recorded UNSAT set a subset of this sorted term-id array? *)

val note_model : t -> (int * int64) list -> unit
(** Record a satisfying assignment for later screening. *)

val screen : t -> Bv.t list -> bool
(** Does some stored model evaluate every assertion to 1?  (Unassigned
    variables read as 0, matching [Solver.model_value].)  [true] proves the
    conjunction SAT. *)
