(** Persistent cross-run solver store (the [--cache-dir] layer).

    Maps canonical component keys ({!Canon.renamed}[.key] — α-renamed
    serializations, stable across runs, processes and [Bv.reset]
    generations) to verdicts, with SAT models stored in canonical variable
    space.  Because a key determines the component up to an injective
    variable renaming, and bit-blasting is equivariant under such renamings
    (the CNF built for two α-equivalent components is literally identical),
    a store hit translated back through the current query's renaming equals
    what a fresh solve would return — cross-run reuse preserves the
    solver's determinism contract.

    The on-disk format is a {!Binfile} frame: magic string, version,
    payload length, [Marshal] payload, MD5 checksum trailer.  Loading a
    missing, corrupted, truncated or wrong-version file silently yields an
    empty store — a cache may always start cold, never crash the run.  The
    length + checksum trailer means even a single-byte truncation or flip
    is detected, not just bad magic.  Writes are atomic (temp file +
    rename), so concurrent or killed runs cannot tear the file.  All
    operations take an internal mutex: one store may be shared by all
    parallel worker domains of a run. *)

type entry =
  | E_unsat
  | E_sat of int64 array  (** value per canonical variable index *)
  | E_blob of string
      (** opaque client payload under a client-chosen key (namespaced so it
          can never collide with a canonical component key) — used by the
          summary layer to persist serialized function summaries in the
          same framed, fault-tolerant file *)

type t

val load : ?faults:Overify_fault.Fault.t -> dir:string -> unit -> t
(** Open (creating [dir] if needed) and read the store file if present and
    valid; any load failure yields an empty store.  [faults] injects
    write corruption/truncation at [save] time (chaos testing). *)

val find : t -> string -> entry option
val add : t -> string -> entry -> unit

val save : t -> unit
(** Atomically write the store back if it gained entries.  Write failures
    are silently ignored (a cache must never fail the run). *)

val length : t -> int
val loaded : t -> int
(** Number of entries read from disk at [load] time. *)

val dir : t -> string
