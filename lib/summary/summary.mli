(** Per-function symbolic summaries — the compositional layer.

    A summary records the {e complete} set of execution traces of a
    function explored under unconstrained symbolic parameters (variable
    ids [param_base + i]) and fully symbolic writable-global byte cells
    (variable ids [global_cell_base + layout offset]).  Each trace is a
    list of {e flavored} path conjuncts (in execution order) plus an
    outcome: a return value, or a bug with its build-time attribution.

    Instantiating a summary at a call site substitutes the actual
    argument terms for the parameter variables and the caller's current
    global cell contents for the cell variables, then re-constrains the
    conjuncts one at a time against the caller's path condition.  Because
    substitution rebuilds terms bottom-up through the same smart
    constructors the inline executor uses, the replayed assertion lists
    are exactly the ones inline exploration would have produced — and the
    solver's determinism contract (answers are pure functions of the
    assertion set) then guarantees identical verdicts, models and
    witnesses.  The summary-vs-inline differential battery in
    test_summary.ml checks this end to end.

    The two conjunct flavors mirror the executor's two constraining
    disciplines:
    - [c_fork = false] ({e condition} conjuncts: division guards,
      assertions, select-on-distinct-objects): inline always constrains
      when the condition is feasible, so replay does too;
    - [c_fork = true] ({e branch} conjuncts, [Cbr] only): inline
      constrains {e only when both sides are feasible} — when the other
      side is infeasible it continues with the state (and model!)
      untouched.  Replay reproduces this: if the negation is infeasible
      under the caller context, the conjunct is skipped and the new model
      discarded.  Substitution preserves unsatisfiability, so a branch
      one-sided at build time stays one-sided under any caller context.

    Functions that cannot be summarized faithfully are [Opaque] and
    explored inline as before: recursion (SCC grouping via
    {!Overify_ir.Callgraph.cyclic}), symbolic memory offsets (the
    bounds checker's bug messages differ between concrete and symbolic
    offsets), budget blow-ups (trace count, instruction count), or any
    dropped path.

    Summaries persist in the solver {!Overify_solver.Store} as [E_blob]
    entries keyed by a structural fingerprint hashing the function body
    plus its callees' fingerprints — editing one function invalidates
    exactly its callgraph cone. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv

(** {2 Symbolic variable spaces} *)

val param_base : int
(** Parameter [i] of the summarized function is [Bv.var width (param_base + i)].
    Chosen far above the input-byte variable space. *)

val global_cell_base : int
(** Byte [off] of the writable-global layout is
    [Bv.var 8 (global_cell_base + off)]. *)

(** {2 Writable-global layout} *)

type layout = (string * int * int) list
(** [(gname, base_var, size)] per writable global, in module order:
    byte [i] of [gname] is cell variable [base_var + i]. *)

val layout : Ir.modul -> layout

val cell_of_var : layout -> int -> (string * int) option
(** Map a cell variable id back to [(gname, byte offset)]. *)

(** {2 The summary language} *)

type conjunct = {
  c_fork : bool;  (** branch conjunct (see the flavor rules above) *)
  c_term : Bv.t;  (** width-1 term over params / cells / input bytes *)
}

type outcome =
  | O_ret of Bv.t option  (** return value ([None] for [Void]) *)
  | O_bug of { bg_kind : string; bg_fn : string; bg_block : int }
      (** bug kind + build-time attribution (function, block) so replay
          reports the bug at the callee, not the caller *)

type trace = {
  t_conjuncts : conjunct list;  (** in execution order *)
  t_outcome : outcome;
  t_writes : (string * int * Bv.t) list;
      (** final value of every modified writable-global byte:
          [(gname, offset, 8-bit term)] *)
  t_covered : (string * int) list;
      (** blocks this trace covers: [(fname, bid)], sorted *)
}

type fsum =
  | Summarized of trace list  (** traces partition the input space *)
  | Opaque of string          (** reason; call sites explore inline *)

(** {2 Fingerprints and store keys} *)

val fingerprints : Ir.modul -> (string, string) Hashtbl.t
(** Structural fingerprint per defined function: the MD5 of the module's
    global layout, the (sorted) bodies of the function's SCC, and the
    (sorted, distinct) fingerprints of callee SCCs.  Two compiles of
    identical source agree; editing a function changes the fingerprints
    of exactly its callgraph cone (itself + transitive callers). *)

val store_key : check_bounds:bool -> string -> string
(** Store key for a fingerprint — namespaced ("summary:" prefix) so it
    can never collide with a canonical solver-component key, and split
    by the bounds-checking mode (bounds checks add traces). *)

(** {2 The static gate} *)

val summarizable : Ir.modul -> Ir.func -> bool
(** May [f] be summarized at all?  Requires: not [main]; integer params;
    integer or void return; acyclic; and every transitively reachable
    defined callee body free of pointer-typed loads/stores, I/O
    intrinsics and calls to undefined non-intrinsic functions.  Dynamic
    blow-ups (trace/instruction budgets, symbolic offsets, dropped
    paths) are caught during the build and published as [Opaque]. *)

val candidates : Ir.modul -> string list
(** Summarizable functions in bottom-up (callees-first) order. *)

(** {2 Persistence} *)

val encode : fsum -> string
val decode : string -> fsum option
(** [decode] re-interns all terms through {!Bv.rebuilder} (blob terms
    were marshaled from a previous hash-cons generation) and returns
    [None] on any version mismatch or decoding failure — a corrupt blob
    is a cache miss, never a crash. *)

(** {2 Substitution} *)

val subst : memo:(int, Bv.t) Hashtbl.t -> lookup:(int -> Bv.t) -> Bv.t -> Bv.t
(** Replace every variable [v >= param_base] by [lookup v], rebuilding
    bottom-up through the smart constructors (so the result is exactly
    the term inline execution would have built).  Variables below
    [param_base] (input bytes) are untouched.  [memo] caches by term id
    and must be scoped to one instantiation (one set of arguments). *)

(** {2 Test support} *)

val edit_function : Ir.modul -> string -> Ir.modul
(** Semantically neutral edit (prepends a dead add to the entry block)
    that still changes the printed body — used by the invalidation-cone
    property tests and [bench summary]'s one-function-edit phase. *)
