(** Per-function symbolic summaries: language, fingerprints, persistence,
    substitution.  The build (trace collection) and instantiation
    (replay) live in the symex layer; see summary.mli for the soundness
    argument. *)

module Ir = Overify_ir.Ir
module Callgraph = Overify_ir.Callgraph
module Printer = Overify_ir.Printer
module Bv = Overify_solver.Bv

(* Far above the input-byte variable space (1_000_000 + size*7919 + i for
   realistic sizes) and any checkpoint-era id. *)
let param_base = 900_000_000
let global_cell_base = 910_000_000

type layout = (string * int * int) list

let layout (m : Ir.modul) : layout =
  let off = ref 0 in
  List.filter_map
    (fun (g : Ir.global) ->
      if g.Ir.gconst then None
      else begin
        let base = global_cell_base + !off in
        off := !off + g.Ir.gsize;
        Some (g.Ir.gname, base, g.Ir.gsize)
      end)
    m.Ir.globals

let cell_of_var (l : layout) (v : int) : (string * int) option =
  List.find_map
    (fun (name, base, size) ->
      if v >= base && v < base + size then Some (name, v - base) else None)
    l

type conjunct = { c_fork : bool; c_term : Bv.t }

type outcome =
  | O_ret of Bv.t option
  | O_bug of { bg_kind : string; bg_fn : string; bg_block : int }

type trace = {
  t_conjuncts : conjunct list;
  t_outcome : outcome;
  t_writes : (string * int * Bv.t) list;
  t_covered : (string * int) list;
}

type fsum = Summarized of trace list | Opaque of string

(* ---- fingerprints ---- *)

(** Globals participate in summary meaning twice: cell variables are
    positional in the writable layout, and constant-global contents fold
    into trace terms — so the layout (names, sizes, constness, initial
    bytes) is hashed into every fingerprint. *)
let glayout_string (m : Ir.modul) : string =
  String.concat ";"
    (List.map
       (fun (g : Ir.global) ->
         Printf.sprintf "%s:%d:%b:%s" g.Ir.gname g.Ir.gsize g.Ir.gconst
           (Digest.to_hex (Digest.string g.Ir.ginit)))
       m.Ir.globals)

let fingerprints (m : Ir.modul) : (string, string) Hashtbl.t =
  let fps = Hashtbl.create 16 in
  let gstr = glayout_string m in
  (* SCCs arrive callees-first, so every callee fingerprint outside the
     current SCC is already computed; inside the SCC the mutual
     dependency is covered by hashing all member bodies together. *)
  List.iter
    (fun scc ->
      let bodies =
        List.sort compare
          (List.filter_map
             (fun n -> Option.map Printer.func_to_string (Ir.find_func m n))
             scc)
      in
      let callee_fps =
        List.sort_uniq compare
          (List.concat_map
             (fun n ->
               match Ir.find_func m n with
               | None -> []
               | Some f ->
                   List.filter_map
                     (fun c ->
                       if List.mem c scc then None else Hashtbl.find_opt fps c)
                     (Callgraph.callees m f))
             scc)
      in
      let fp =
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                ((gstr :: bodies) @ [ String.concat "," callee_fps ])))
      in
      List.iter (fun n -> Hashtbl.replace fps n fp) scc)
    (Callgraph.sccs m);
  fps

let store_key ~check_bounds fp =
  "summary:" ^ fp ^ ":b" ^ if check_bounds then "1" else "0"

(* ---- the static gate ---- *)

(** No pointer-typed loads/stores (those would put object ids into
    terms), no I/O intrinsics (input offsets and output streams are
    caller-relative), no calls into code we cannot see. *)
let pure_body (m : Ir.modul) (f : Ir.func) : bool =
  let ok = ref true in
  Ir.iter_insts
    (fun _ inst ->
      match inst with
      | Ir.Load (_, Ir.Ptr, _) | Ir.Store (Ir.Ptr, _, _) -> ok := false
      | Ir.Call (_, _, callee, _) ->
          if callee = "__input" || callee = "__input_size" || callee = "__output"
          then ok := false
          else if
            (not (Ir.is_intrinsic callee)) && Ir.find_func m callee = None
          then ok := false
      | _ -> ())
    f;
  !ok

let reachable_pure (m : Ir.modul) (f : Ir.func) : bool =
  let seen = Hashtbl.create 8 in
  let rec go (g : Ir.func) =
    Hashtbl.mem seen g.Ir.fname
    || begin
         Hashtbl.replace seen g.Ir.fname ();
         pure_body m g
         && List.for_all
              (fun c ->
                match Ir.find_func m c with None -> true | Some cf -> go cf)
              (Callgraph.callees m g)
       end
  in
  go f

let summarizable (m : Ir.modul) (f : Ir.func) : bool =
  f.Ir.fname <> "main"
  && List.for_all (fun ((_, ty) : int * Ir.ty) -> Ir.is_int_ty ty) f.Ir.params
  && (Ir.is_int_ty f.Ir.ret || f.Ir.ret = Ir.Void)
  && (not (Callgraph.StrSet.mem f.Ir.fname (Callgraph.cyclic m)))
  && reachable_pure m f

let candidates (m : Ir.modul) : string list =
  let cyc = Callgraph.cyclic m in
  List.filter
    (fun n ->
      match Ir.find_func m n with
      | None -> false
      | Some f ->
          f.Ir.fname <> "main"
          && List.for_all
               (fun ((_, ty) : int * Ir.ty) -> Ir.is_int_ty ty)
               f.Ir.params
          && (Ir.is_int_ty f.Ir.ret || f.Ir.ret = Ir.Void)
          && (not (Callgraph.StrSet.mem n cyc))
          && reachable_pure m f)
    (Callgraph.bottom_up_order m)

(* ---- persistence ---- *)

(* Bumped whenever the marshaled shape of [fsum] changes; a mismatched
   blob is a cache miss. *)
let blob_version = 1

let encode (s : fsum) : string = Marshal.to_string (blob_version, s) []

let decode (bytes : string) : fsum option =
  try
    let ((v : int), (s : fsum)) = Marshal.from_string bytes 0 in
    if v <> blob_version then None
    else
      match s with
      | Opaque _ -> Some s
      | Summarized traces ->
          (* unmarshaled terms bypassed the hash-cons table: re-intern *)
          let rb = Bv.rebuilder () in
          Some
            (Summarized
               (List.map
                  (fun t ->
                    {
                      t with
                      t_conjuncts =
                        List.map
                          (fun c -> { c with c_term = rb c.c_term })
                          t.t_conjuncts;
                      t_outcome =
                        (match t.t_outcome with
                        | O_ret (Some r) -> O_ret (Some (rb r))
                        | o -> o);
                      t_writes =
                        List.map (fun (g, o, w) -> (g, o, rb w)) t.t_writes;
                    })
                  traces))
  with _ -> None

(* ---- substitution ---- *)

let subst ~memo ~lookup (t : Bv.t) : Bv.t =
  let rec go (t : Bv.t) : Bv.t =
    match Hashtbl.find_opt memo t.Bv.id with
    | Some r -> r
    | None ->
        let r =
          match t.Bv.node with
          | Bv.Const _ -> t
          | Bv.Var v -> if v >= param_base then lookup v else t
          | Bv.Bin (op, a, b) ->
              let a' = go a and b' = go b in
              if a' == a && b' == b then t else Bv.binop op a' b'
          | Bv.Cmp (op, a, b) ->
              let a' = go a and b' = go b in
              if a' == a && b' == b then t else Bv.cmp op a' b'
          | Bv.Ite (c, x, y) ->
              let c' = go c and x' = go x and y' = go y in
              if c' == c && x' == x && y' == y then t else Bv.ite c' x' y'
          | Bv.Concat (h, l) ->
              let h' = go h and l' = go l in
              if h' == h && l' == l then t else Bv.concat h' l'
          | Bv.Extract (hi, lo, x) ->
              let x' = go x in
              if x' == x then t else Bv.extract ~hi ~lo x'
        in
        Hashtbl.add memo t.Bv.id r;
        r
  in
  go t

(* ---- test support ---- *)

let edit_function (m : Ir.modul) (name : string) : Ir.modul =
  let f = Ir.find_func_exn m name in
  let entry = Ir.entry f in
  let dead =
    Ir.Bin (f.Ir.next, Ir.Add, Ir.I32, Ir.imm Ir.I32 0L, Ir.imm Ir.I32 0L)
  in
  let entry' = { entry with Ir.insts = dead :: entry.Ir.insts } in
  let f' = { (Ir.update_block f entry') with Ir.next = f.Ir.next + 1 } in
  Ir.update_func m f'
