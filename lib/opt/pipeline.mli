(** Pass pipelines implementing [-O0], [-O2], [-O3] and [-OVERIFY].

    Phase structure: structural transforms on memory form (inlining,
    unswitching, peeling) where block cloning is trivially sound, then
    [mem2reg], then the scalar fixpoint on SSA, then CPU-oriented or
    verification-oriented finishing passes. *)

type result = {
  modul : Overify_ir.Ir.modul;
  stats : Stats.t;         (** transformation counters (Table 3) *)
  level : Costmodel.t;
}

type observer =
  pass:string ->
  fn:string ->
  before:Overify_ir.Ir.modul ->
  after:Overify_ir.Ir.modul ->
  unit
(** Called once per pass application that changed code, with the whole
    module just before and just after that one application.  [fn] is the
    function the pass ran on, or ["*"] for module-level passes (inlining).
    Applications are reported in order, so consecutive [after]/[before]
    modules coincide and the chain composes to the whole compilation. *)

val paranoid : bool ref
(** When true, every pass is followed by an IR verification.  Initialized
    from the [OVERIFY_PARANOID] environment variable (set by the test
    profile in [test/dune]). *)

val sabotage : (string * (Overify_ir.Ir.func -> Overify_ir.Ir.func)) option ref
(** Test-only fault injection: [Some (pass, corrupt)] corrupts the output
    of every application of [pass].  Used to prove that translation
    validation catches miscompilations.  Never set outside tests. *)

val optimize :
  ?observe:observer ->
  ?prof:Overify_obs.Obs.Pass.t ->
  Costmodel.t ->
  Overify_ir.Ir.modul ->
  result
(** Compile a memory-form module at the given optimization level.
    [observe] taps the stream of pass applications; [prof] collects per-
    application wall time and code-size delta (every attempted application,
    changed or not).  Without either the compilation path is unchanged —
    no clock reads, no recording. *)
