(** Pass pipelines implementing [-O0], [-O2], [-O3] and [-OVERIFY].

    Phase structure (see DESIGN.md §5):
    1. memory form: inlining, loop unswitching, loop peeling — structural
       transforms where block cloning is trivially sound;
    2. [mem2reg] builds SSA;
    3. scalar fixpoint: folding, GVN, CFG simplification, jump threading,
       if-conversion, DCE;
    4. CPU-oriented scheduling ([-O2]/[-O3] only) or annotations and the
       optional runtime checks ([-OVERIFY]).

    The pipeline is organized as a stream of {e pass applications}: every
    time a pass changes a function (or, for [inline], the module), an
    observer can receive the module just before and just after that one
    application.  The translation-validation subsystem ([lib/tv]) consumes
    this stream to prove each application sound — the chain of observed
    (before, after) pairs composes to the whole compilation, so the first
    failing pair names the offending pass. *)

module Ir = Overify_ir.Ir
module Verify = Overify_ir.Verify
module Obs = Overify_obs.Obs

type result = {
  modul : Ir.modul;
  stats : Stats.t;
  level : Costmodel.t;
}

type observer =
  pass:string -> fn:string -> before:Ir.modul -> after:Ir.modul -> unit

(** When true, every pass is followed by an IR verification.  Defaults to
    the [OVERIFY_PARANOID] environment variable, which the test profile sets
    (test/dune) — test_opt asserts it is on, so silently losing the paranoid
    re-verification from [dune runtest] fails the suite. *)
let paranoid =
  ref
    (match Sys.getenv_opt "OVERIFY_PARANOID" with
    | Some ("1" | "true") -> true
    | _ -> false)

(** Test-only fault injection: [Some (pass, corrupt)] applies [corrupt] to
    the result of every application of [pass].  Used to check that
    translation validation detects a miscompilation and that pass bisection
    names exactly the corrupted pass.  Never set outside tests. *)
let sabotage : (string * (Ir.func -> Ir.func)) option ref = ref None

let check_fn what fn =
  if !paranoid then
    match Verify.check fn with
    | Ok () -> ()
    | Error errs ->
        failwith
          (Printf.sprintf "pipeline: IR broken after %s in %s:\n%s\n%s" what
             fn.Ir.fname
             (String.concat "\n" errs)
             (Overify_ir.Printer.func_to_string fn))

let trace_passes =
  match Sys.getenv_opt "OVERIFY_PASS_TIMES" with Some _ -> true | None -> false

(** Everything one compilation threads through the pass applications.  [cur]
    tracks the whole module between applications, but only when an observer
    is attached — the plain compile path pays nothing for the stream. *)
type ctx = {
  cm : Costmodel.t;
  stats : Stats.t;
  observe : observer option;
  prof : Obs.Pass.t option;
      (** per-application wall time + code-size delta collector *)
  mutable cur : Ir.modul;
}

let emit ctx ~pass ~fn ~before ~after =
  match ctx.observe with
  | Some f -> f ~pass ~fn ~before ~after
  | None -> ()

(** Record one pass application (time + size delta) with the profile
    collector and, when tracing, the trace sink. *)
let profile_app ctx ~pass ~fn ~t0 ~size_before ~size_after ~changed =
  let dt = Unix.gettimeofday () -. t0 in
  (match ctx.prof with
  | Some p ->
      Obs.Pass.record p
        {
          Obs.Pass.pa_pass = pass;
          pa_fn = fn;
          pa_time = dt;
          pa_size_before = size_before;
          pa_size_after = size_after;
          pa_changed = changed;
        }
  | None -> ());
  if Obs.Trace.enabled () then
    Obs.Trace.emit ~cat:"opt" ~name:pass
      ~args:
        [
          ("fn", fn);
          ("size_before", string_of_int size_before);
          ("size_after", string_of_int size_after);
          ("changed", string_of_bool changed);
        ]
      ~ts:t0 ~dur:dt ()

(** Is any per-application bookkeeping (profile, trace, env tracing) on? *)
let timing_on ctx =
  ctx.prof <> None || trace_passes || Obs.Trace.enabled ()

(** Apply one function pass, feeding the observer on change. *)
let apply_fn ctx what (f : Ir.func -> Ir.func * bool) (fn : Ir.func) :
    Ir.func * bool =
  let timing = timing_on ctx in
  let t0 = if timing then Unix.gettimeofday () else 0.0 in
  let (fn', changed) = f fn in
  let (fn', changed) =
    match !sabotage with
    | Some (p, corrupt) when p = what ->
        let fn'' = corrupt fn' in
        (fn'', changed || fn'' <> fn')
    | _ -> (fn', changed)
  in
  if timing then begin
    profile_app ctx ~pass:what ~fn:fn.Ir.fname ~t0
      ~size_before:(Ir.func_size fn) ~size_after:(Ir.func_size fn') ~changed;
    if trace_passes then begin
      let dt = Unix.gettimeofday () -. t0 in
      if dt > 0.05 then
        Printf.eprintf "[pass] %-16s %-20s %6.2fs size=%d\n%!" what
          fn.Ir.fname dt (Ir.func_size fn')
    end
  end;
  if changed then begin
    check_fn what fn';
    if ctx.observe <> None then begin
      let before = ctx.cur in
      ctx.cur <- Ir.update_func ctx.cur fn';
      emit ctx ~pass:what ~fn:fn.Ir.fname ~before ~after:ctx.cur
    end
  end;
  (fn', changed)

(** Apply a pass unless the cost model's ablation list disables it. *)
let apply_fn_cm ctx what f fn =
  if List.mem what ctx.cm.Costmodel.disabled_passes then (fn, false)
  else apply_fn ctx what f fn

(** The scalar-optimization fixpoint on one SSA function. *)
let scalar_fixpoint ctx (fn : Ir.func) : Ir.func =
  let cm = ctx.cm and stats = ctx.stats in
  let rec go fn round =
    if round = 0 then fn
    else begin
      let (fn, c1) = apply_fn_cm ctx "constfold" (Constfold.run stats) fn in
      let (fn, c2) = apply_fn_cm ctx "gvn" Gvn.run fn in
      let (fn, c2b) = apply_fn_cm ctx "loadelim" Loadelim.run fn in
      let c2 = c2 || c2b in
      let (fn, c3) = apply_fn_cm ctx "simplify_cfg" Simplify_cfg.run fn in
      let (fn, c4) =
        if cm.Costmodel.jump_threading then
          apply_fn_cm ctx "jump_threading" (Jump_threading.run stats) fn
        else (fn, false)
      in
      let (fn, c5) = apply_fn_cm ctx "if_convert" (If_convert.run cm stats) fn in
      let (fn, c6) =
        if cm.Costmodel.licm then apply_fn_cm ctx "licm" (Licm.run stats) fn
        else (fn, false)
      in
      let (fn, c6b) =
        let (fn, ch) = apply_fn_cm ctx "loop_delete" Loop_delete.run fn in
        if ch then stats.Stats.loops_deleted <- stats.Stats.loops_deleted + 1;
        (fn, ch)
      in
      let c6 = c6 || c6b in
      let (fn, c7) = apply_fn_cm ctx "dce" Dce.run fn in
      if c1 || c2 || c3 || c4 || c5 || c6 || c7 then go fn (round - 1) else fn
    end
  in
  go fn 6

let optimize_function ctx (fn : Ir.func) : Ir.func =
  let cm = ctx.cm and stats = ctx.stats in
  if not cm.Costmodel.scalar_opts then fn
  else begin
    (* memory-form loop transforms *)
    let (fn, _) = apply_fn_cm ctx "unswitch" (Loop_unswitch.run cm stats) fn in
    let (fn, _) = apply_fn_cm ctx "unroll" (Loop_unroll.run cm stats) fn in
    (* SSA construction and scalar work *)
    let (fn, _) = apply_fn_cm ctx "sroa" (Sroa.run stats) fn in
    let (fn, _) = apply_fn_cm ctx "mem2reg" (Mem2reg.run stats) fn in
    let fn = scalar_fixpoint ctx fn in
    let fn =
      if cm.Costmodel.cpu_opts then
        fst (apply_fn_cm ctx "schedule" Schedule.run fn)
      else fn
    in
    let fn =
      if cm.Costmodel.annotations then
        fst (apply_fn ctx "annotate" (Annotate.run cm stats) fn)
      else fn
    in
    fn
  end

(** Compile a memory-form module at the given optimization level.  With
    [observe], every pass application that changes code is reported as a
    (before, after) module pair, in application order. *)
let optimize ?observe ?prof (cm : Costmodel.t) (m : Ir.modul) : result =
  let stats = Stats.create () in
  let ctx = { cm; stats; observe; prof; cur = m } in
  let m =
    if cm.Costmodel.runtime_checks then
      {
        m with
        Ir.funcs =
          List.map
            (fun f -> fst (apply_fn ctx "runtime_checks" (Runtime_checks.run stats) f))
            m.Ir.funcs;
      }
    else m
  in
  let m =
    if cm.Costmodel.inline_threshold > 0
       && not (List.mem "inline" cm.Costmodel.disabled_passes)
    then begin
      let before = ctx.cur in
      let timing = timing_on ctx in
      let t0 = if timing then Unix.gettimeofday () else 0.0 in
      let m' = Inline.run cm stats m in
      if timing then begin
        let modul_size mm =
          List.fold_left (fun acc f -> acc + Ir.func_size f) 0 mm.Ir.funcs
        in
        profile_app ctx ~pass:"inline" ~fn:"*" ~t0
          ~size_before:(modul_size m) ~size_after:(modul_size m')
          ~changed:(m' <> m)
      end;
      if ctx.observe <> None && m' <> m then begin
        ctx.cur <- m';
        emit ctx ~pass:"inline" ~fn:"*" ~before ~after:m'
      end;
      m'
    end
    else m
  in
  let m = { m with Ir.funcs = List.map (optimize_function ctx) m.Ir.funcs } in
  { modul = m; stats; level = cm }
