(** Chaos sweep: every corpus program is explored under a battery of
    deterministic fault schedules (see [Overify_fault.Fault]) and the
    hardening contract is checked cell by cell:

    - no fault schedule may crash the engine (uncaught exception = FAIL);
    - a faulted run is deterministic — the same schedule re-run from a
      freshly parsed [Fault.t] reports identical verdicts, degradations
      and injected-fault counters;
    - whenever a runtime fault actually fired (solver timeout, allocation
      exhaustion, worker crash), the result carries a non-empty
      [degradations] list — nothing degrades silently;
    - the completed subset keeps the determinism contract: the degraded
      run's paths, exit codes, bugs and coverage are a subset of the
      clean run's (an injected fault may only remove verdicts, never
      invent or alter one).

    A final kill/resume phase injects an uncontainable [Fault.Killed]
    mid-run with checkpointing on, resumes from the snapshot, and demands
    byte-identical sorted verdicts versus an uninterrupted run — the
    ISSUE's headline robustness property. *)

module Costmodel = Overify_opt.Costmodel
module Programs = Overify_corpus.Programs
module Engine = Overify_symex.Engine
module Fault = Overify_fault.Fault
module Obs = Overify_obs.Obs
module Flight = Overify_serve.Flight

(** The schedules of the default battery.  Chosen to fire while a run of
    a small corpus program at [-O0] is still in flight: early solver
    queries, an allocation a few calls in, executor steps both shortly
    after warm-up and deep into the exploration, plus one seeded
    pseudo-random mix.  [kill@N] is deliberately absent — random kills
    belong to the dedicated kill/resume phase, not the sweep. *)
let default_schedules =
  [ "timeout@3,timeout@7"; "crash@150,crash@900"; "alloc@120,timeout@9";
    "seed:7:4" ]

type cell = {
  c_program : string;
  c_schedule : string;
  c_crashed : string option;  (** uncaught exception text, if any *)
  c_paths : int;
  c_clean_paths : int;
  c_injected : int;           (** faults that actually fired *)
  c_degradations : int;       (** distinct degradation groups reported *)
  c_repeat_agrees : bool;     (** re-run with a fresh [Fault.t] agreed *)
  c_subset : bool;            (** verdicts ⊆ clean verdicts *)
  c_flight : bool;
      (** every fired fault left a readable flight record: the ring dump
          round-trips through {!Overify_serve.Flight} and carries a
          [fault.injected] event on this run's trace (vacuously true
          when nothing fired) *)
  c_failures : string list;   (** contract violations in this cell *)
}

type kill_resume = {
  k_program : string;
  k_ok : bool;
  k_detail : string;
}

type report = {
  cells : cell list;
  kill : kill_resume option;
  failures : int;  (** total contract violations (0 = pass) *)
}

(* ---- verdict helpers ---- *)

(** The per-run facts the determinism contract covers, as sorted lines —
    comparing two runs byte-for-byte is then string equality. *)
let verdict_lines (r : Engine.result) : string list =
  List.sort compare
    (List.map
       (fun (witness, code) -> Printf.sprintf "exit %S = %Ld" witness code)
       r.Engine.exit_codes
    @ List.map
        (fun (b : Engine.bug) ->
          Printf.sprintf "bug %s @ %s input=%S" b.Engine.kind
            b.Engine.at_function b.Engine.input)
        r.Engine.bugs)

(** Multiset subset on sorted lists. *)
let rec subset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
      if x = y then subset xs' ys'
      else if compare x y > 0 then subset xs ys'
      else false

(** Bugs compared by (kind, function) only: dedup keeps the smallest
    witness, and dropping the path that produced it legitimately changes
    the witness of a bug the degraded run still finds. *)
let bug_sites (r : Engine.result) =
  List.sort compare
    (List.map
       (fun (b : Engine.bug) -> (b.Engine.kind, b.Engine.at_function))
       r.Engine.bugs)

let same_outcome (a : Engine.result) (b : Engine.result) =
  verdict_lines a = verdict_lines b
  && a.Engine.paths = b.Engine.paths
  && a.Engine.degradations = b.Engine.degradations
  && a.Engine.faults_injected = b.Engine.faults_injected
  && a.Engine.blocks_covered = b.Engine.blocks_covered

(** Injected faults that must surface as degradations: the runtime kinds.
    Store corruption faults fire on save and only show up as an empty
    store on the next load, so they are excluded here. *)
let runtime_injected (r : Engine.result) =
  List.fold_left
    (fun acc (k, n) ->
      if k = "timeout" || k = "alloc" || k = "crash" then acc + n else acc)
    0 r.Engine.faults_injected

(* ---- the sweep ---- *)

(** A wall-clock-truncated run is legitimately nondeterministic (the
    determinism contract covers complete runs and deterministically
    truncated ones — budgets and injected faults — not time). *)
let wall_clocked (r : Engine.result) =
  List.exists
    (fun (d : Engine.degradation) -> d.Engine.d_kind = "wall_clock")
    r.Engine.degradations

let run_faulted ?span ~input_size ~timeout ~summaries compiled spec :
    (Engine.result, string) result =
  match Fault.parse spec with
  | Error msg -> Error (Printf.sprintf "unparseable schedule %S: %s" spec msg)
  | Ok faults -> (
      try
        Ok
          (Experiment.verify ~input_size ~timeout ~summaries ~faults ?span
             compiled)
      with e -> Error (Printexc.to_string e))

(** Wipe and remove a flat temp directory; best effort. *)
let rm_rf dir =
  (if Sys.file_exists dir && Sys.is_directory dir then
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir));
  try Sys.rmdir dir with Sys_error _ -> ()

(** Dump the flight ring and check the injected fault left its mark: the
    dump must round-trip through {!Flight} and contain a [label] event
    on [trace].  The dump directory is temporary and removed. *)
let flight_check ~trace ~label : (unit, string) result =
  let tmp = Filename.temp_file "overify_chaos_flight" "" in
  Sys.remove tmp;
  let dir = tmp ^ ".d" in
  let res =
    match Flight.dump ~dir ~reason:"chaos" ~trace () with
    | None -> Error "flight dump failed"
    | Some path -> (
        match Flight.load path with
        | Error msg -> Error ("flight record unreadable: " ^ msg)
        | Ok d ->
            if
              List.exists
                (fun (r : Obs.Flight.record) ->
                  r.Obs.Flight.fr_trace = trace
                  && r.Obs.Flight.fr_label = label)
                d.Flight.fd_records
            then Ok ()
            else
              Error
                (Printf.sprintf "no %s event on trace %s in flight record"
                   label trace))
  in
  rm_rf dir;
  res

let sweep_cell ~input_size ~timeout ~summaries compiled
    ~(clean : Engine.result) spec : cell =
  let comparable = clean.Engine.complete in
  let pname = compiled.Experiment.program.Programs.name in
  let base =
    {
      c_program = pname;
      c_schedule = spec;
      c_crashed = None;
      c_paths = 0;
      c_clean_paths = clean.Engine.paths;
      c_injected = 0;
      c_degradations = 0;
      c_repeat_agrees = false;
      c_subset = false;
      c_flight = false;
      c_failures = [];
    }
  in
  (* the faulted run carries a span, so fired faults land in the flight
     ring as [fault.injected] events on this cell's trace *)
  let trace = Printf.sprintf "chaos-%s-%s" pname spec in
  let span = Obs.Span.start ~trace ("chaos." ^ pname) in
  let first = run_faulted ~span ~input_size ~timeout ~summaries compiled spec in
  Obs.Span.finish span;
  match first with
  | Error msg ->
      { base with
        c_crashed = Some msg;
        c_failures = [ "uncaught exception: " ^ msg ] }
  | Ok r1 ->
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      (* two-run determinism, from a freshly parsed schedule — asserted
         unless a run hit the wall clock, whose truncation point is
         legitimately timing-dependent *)
      let repeat_agrees =
        match run_faulted ~input_size ~timeout ~summaries compiled spec with
        | Error msg ->
            fail "re-run crashed: %s" msg;
            false
        | Ok r2 when wall_clocked r1 || wall_clocked r2 -> true
        | Ok r2 ->
            let ok = same_outcome r1 r2 in
            if not ok then
              fail "re-run disagreed (paths %d vs %d)" r1.Engine.paths
                r2.Engine.paths;
            ok
      in
      (* fired runtime faults must be accounted for *)
      let injected = runtime_injected r1 in
      if injected > 0 && r1.Engine.degradations = [] then
        fail "%d runtime fault(s) fired but degradations is empty" injected;
      (* ... and must have left a readable flight record *)
      let any_fired =
        List.exists (fun (_, n) -> n > 0) r1.Engine.faults_injected
      in
      let flight =
        if not any_fired then true
        else
          match flight_check ~trace ~label:"fault.injected" with
          | Ok () -> true
          | Error msg ->
              fail "flight record: %s" msg;
              false
      in
      (* completed-subset determinism versus the clean run — only
         meaningful against a complete baseline *)
      let sub =
        (not comparable)
        || wall_clocked r1
        || subset (verdict_lines r1) (verdict_lines clean)
           && subset (bug_sites r1) (bug_sites clean)
           && r1.Engine.paths <= clean.Engine.paths
           && r1.Engine.blocks_covered <= clean.Engine.blocks_covered
      in
      if not sub then fail "degraded verdicts are not a subset of clean";
      {
        base with
        c_paths = r1.Engine.paths;
        c_injected =
          List.fold_left (fun a (_, n) -> a + n) 0 r1.Engine.faults_injected;
        c_degradations = List.length r1.Engine.degradations;
        c_repeat_agrees = repeat_agrees;
        c_subset = sub;
        c_flight = flight;
        c_failures = List.rev !failures;
      }

(* ---- kill/resume ---- *)

(** Kill an exploration of [compiled] mid-run (checkpointing on), resume
    it, and compare against the uninterrupted [clean] run. *)
let kill_and_resume ~input_size ~timeout compiled ~(clean : Engine.result) :
    kill_resume =
  let pname = compiled.Experiment.program.Programs.name in
  let tmp = Filename.temp_file "overify_chaos_ck" "" in
  let dir = tmp ^ ".d" in
  let finish ok detail =
    rm_rf dir;
    (try Sys.remove tmp with Sys_error _ -> ());
    { k_program = pname; k_ok = ok; k_detail = detail }
  in
  if not clean.Engine.complete then
    finish true "skipped: baseline incomplete at this budget"
  else
  (* kill halfway through the instruction stream, with a snapshot cadence
     fine enough that several checkpoints exist by then *)
  let kill_at = max 2 (clean.Engine.instructions / 2) in
  let spec = Printf.sprintf "kill@%d" kill_at in
  (* even a kill that escapes the engine must leave a flight trail: mark
     the attempt on a trace, then dump the ring once the kill fires *)
  let trace = "chaos-kill-" ^ pname in
  Obs.Span.event ~trace ~args:[ ("spec", spec) ] "chaos.kill";
  match Fault.parse spec with
  | Error msg -> finish false ("bad kill spec: " ^ msg)
  | Ok faults -> (
      let span = Obs.Span.start ~trace "chaos.kill_run" in
      match
        Experiment.verify ~input_size ~timeout ~faults ~checkpoint_dir:dir
          ~checkpoint_every:8 ~span compiled
      with
      | (_ : Engine.result) ->
          finish false
            (Printf.sprintf "kill@%d never fired (run completed)" kill_at)
      | exception Fault.Killed _ -> (
          match flight_check ~trace ~label:"chaos.kill" with
          | Error msg ->
              finish false ("killed run's flight record: " ^ msg)
          | Ok () -> (
          match
            Experiment.verify ~input_size ~timeout ~checkpoint_dir:dir
              ~resume:true compiled
          with
          | exception e ->
              finish false ("resume crashed: " ^ Printexc.to_string e)
          | resumed ->
              let a = String.concat "\n" (verdict_lines resumed)
              and b = String.concat "\n" (verdict_lines clean) in
              if not resumed.Engine.resumed then
                finish false "resume found no checkpoint"
              else if a <> b then
                finish false "resumed verdicts differ from uninterrupted run"
              else if resumed.Engine.paths <> clean.Engine.paths then
                finish false
                  (Printf.sprintf "resumed paths %d <> clean %d"
                     resumed.Engine.paths clean.Engine.paths)
              else
                finish true
                  (Printf.sprintf
                     "killed at step %d, resumed, %d paths byte-identical"
                     kill_at resumed.Engine.paths)))
      | exception e ->
          finish false ("killed run raised unexpectedly: " ^ Printexc.to_string e))

(* ---- entry point ---- *)

let cell_to_json c =
  Printf.sprintf
    "  {\"program\": %S, \"schedule\": %S, \"crashed\": %b, \"paths\": %d, \
     \"clean_paths\": %d, \"injected\": %d, \"degradations\": %d, \
     \"repeat_agrees\": %b, \"subset\": %b, \"flight\": %b, \"failures\": \
     [%s]}"
    c.c_program c.c_schedule
    (c.c_crashed <> None)
    c.c_paths c.c_clean_paths c.c_injected c.c_degradations c.c_repeat_agrees
    c.c_subset c.c_flight
    (String.concat ", " (List.map (Printf.sprintf "%S") c.c_failures))

(** Run the chaos sweep.  Every program in [programs] is compiled at
    [level] and explored clean once, then under each schedule twice (the
    determinism check).  [kill_resume] (default true) appends the
    kill/resume phase on the first program.  [summaries] (default false)
    runs the whole sweep — clean baselines and faulted runs alike — in
    compositional-summaries mode; the contract is the same (a fault
    firing during summary construction must degrade the run, not crash
    it).  Summaries do not combine with the kill/resume phase: a kill
    firing mid-build precedes the first checkpoint, so callers turning
    [summaries] on should pass [kill_resume:false].  Writes the
    machine-readable report to [json_path] unless empty.  Returns the
    report; callers gate on [report.failures = 0]. *)
let run ?(input_size = 3) ?(timeout = 60.0) ?(level = Costmodel.o0)
    ?(schedules = default_schedules) ?(programs = Programs.programs)
    ?(kill_resume = true) ?(summaries = false)
    ?(json_path = "BENCH_chaos.json") () : report =
  Report.section
    (Printf.sprintf
       "Chaos sweep: corpus x %d fault schedules at %s (n=%d bytes)"
       (List.length schedules) level.Costmodel.name input_size);
  let cells =
    List.concat_map
      (fun (p : Programs.t) ->
        let compiled = Experiment.compile level p in
        let clean = Experiment.verify ~input_size ~timeout ~summaries compiled in
        let clean_cell =
          (* an incomplete baseline weakens the subset checks; only a
             wall-clock degradation excuses it (a slow program at this
             budget) — anything else in a fault-free run is a failure *)
          if clean.Engine.complete then []
          else
            [ { c_program = p.Programs.name;
                c_schedule = "(none)";
                c_crashed = None;
                c_paths = clean.Engine.paths;
                c_clean_paths = clean.Engine.paths;
                c_injected = 0;
                c_degradations = List.length clean.Engine.degradations;
                c_repeat_agrees = true;
                c_subset = true;
                c_flight = true;
                c_failures =
                  (if wall_clocked clean then []
                   else [ "fault-free baseline degraded" ]);
              } ]
        in
        clean_cell
        @ List.map
            (sweep_cell ~input_size ~timeout ~summaries compiled ~clean)
            schedules)
      programs
  in
  let kill =
    match programs with
    | p :: _ when kill_resume ->
        let compiled = Experiment.compile level p in
        let clean = Experiment.verify ~input_size ~timeout compiled in
        Some (kill_and_resume ~input_size ~timeout compiled ~clean)
    | _ -> None
  in
  let failures =
    List.fold_left (fun acc c -> acc + List.length c.c_failures) 0 cells
    + (match kill with Some k when not k.k_ok -> 1 | _ -> 0)
  in
  let header =
    [ "program"; "schedule"; "paths"; "clean"; "injected"; "degradations";
      "2-run agree"; "subset"; "flight"; "ok" ]
  in
  let body =
    List.map
      (fun c ->
        [
          c.c_program; c.c_schedule;
          string_of_int c.c_paths;
          string_of_int c.c_clean_paths;
          string_of_int c.c_injected;
          string_of_int c.c_degradations;
          string_of_bool c.c_repeat_agrees;
          string_of_bool c.c_subset;
          string_of_bool c.c_flight;
          (if c.c_failures = [] then "yes" else "NO");
        ])
      cells
  in
  Report.table (header :: body);
  List.iter
    (fun c ->
      List.iter
        (fun f ->
          Printf.printf "  FAIL %s [%s]: %s\n" c.c_program c.c_schedule f)
        c.c_failures)
    cells;
  (match kill with
  | Some k ->
      Printf.printf "kill/resume (%s): %s — %s\n" k.k_program
        (if k.k_ok then "ok" else "FAIL")
        k.k_detail
  | None -> ());
  if json_path <> "" then begin
    let kill_json =
      match kill with
      | None -> "null"
      | Some k ->
          Printf.sprintf "{\"program\": %S, \"ok\": %b, \"detail\": %S}"
            k.k_program k.k_ok k.k_detail
    in
    Out_channel.with_open_text json_path (fun oc ->
        Printf.fprintf oc
          "{\"cells\": [\n%s\n],\n\"kill_resume\": %s,\n\"failures\": %d}\n"
          (String.concat ",\n" (List.map cell_to_json cells))
          kill_json failures);
    Printf.printf "wrote %s\n" json_path
  end;
  if failures = 0 then
    print_endline
      "chaos sweep passed: zero crashes, deterministic degraded subsets, \
       every fired fault flight-recorded"
  else Printf.printf "CHAOS SWEEP FAILED: %d contract violation(s)\n" failures;
  { cells; kill; failures }
