(** The verification profile: where did verification time go?

    Combines the three observability sources into one attribution report
    (EXPERIMENTS.md, "Profiling a verification run"):

    - the engine's per-(function, block) cost attribution
      ([Engine.result.profile]): dynamic instructions, forks, solver
      queries/cache hits/time, path completions;
    - the per-pass compile profile ([Pipeline.optimize ~prof]): wall time
      and code-size delta per pass application;
    - the solver's per-query latency histogram.

    Functions are ranked by solver time's deterministic proxies (queries,
    then instructions) so two runs of the same program produce the same
    table — wall-clock only breaks ties in the human-readable rendering,
    never the row order.  Reports are diffable across optimization levels:
    {!print_diff} shows exactly which hot-spot a level removed. *)

module Ir = Overify_ir.Ir
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Engine = Overify_symex.Engine
module Obs = Overify_obs.Obs

type func_row = {
  fr_fn : string;
  fr_insts : int;
  fr_forks : int;
  fr_queries : int;
  fr_cache_hits : int;
  fr_solver_time : float;
  fr_paths : int;
  fr_sum_hits : int;    (** call sites answered by a function summary *)
  fr_sum_opaque : int;  (** call sites whose callee summary was [Opaque] *)
  fr_blocks : (int * Obs.Profile.site_stats) list;  (** ascending block id *)
}

type t = {
  program : string;
  level : string;
  input_size : int;
  result : Engine.result;
  funcs : func_row list;
      (** ranked: queries desc, instructions desc, name asc — all
          deterministic keys *)
  passes : Obs.Pass.app list;        (** application order *)
  pass_rollup : Obs.Pass.rollup list;
  t_compile : float;
}

(* ---------------- building ---------------- *)

let rank_funcs rows =
  List.sort
    (fun a b ->
      match compare b.fr_queries a.fr_queries with
      | 0 -> (
          match compare b.fr_insts a.fr_insts with
          | 0 -> compare a.fr_fn b.fr_fn
          | c -> c)
      | c -> c)
    rows

let func_rows (p : Obs.Profile.t) : func_row list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((fn, block), (s : Obs.Profile.site_stats)) ->
      let row =
        match Hashtbl.find_opt tbl fn with
        | Some r -> r
        | None ->
            order := fn :: !order;
            {
              fr_fn = fn;
              fr_insts = 0;
              fr_forks = 0;
              fr_queries = 0;
              fr_cache_hits = 0;
              fr_solver_time = 0.0;
              fr_paths = 0;
              fr_sum_hits = 0;
              fr_sum_opaque = 0;
              fr_blocks = [];
            }
      in
      Hashtbl.replace tbl fn
        {
          row with
          fr_insts = row.fr_insts + s.Obs.Profile.s_insts;
          fr_forks = row.fr_forks + s.Obs.Profile.s_forks;
          fr_queries = row.fr_queries + s.Obs.Profile.s_queries;
          fr_cache_hits = row.fr_cache_hits + s.Obs.Profile.s_cache_hits;
          fr_solver_time = row.fr_solver_time +. s.Obs.Profile.s_solver_time;
          fr_paths = row.fr_paths + s.Obs.Profile.s_paths;
          fr_sum_hits = row.fr_sum_hits + s.Obs.Profile.s_sum_hits;
          fr_sum_opaque = row.fr_sum_opaque + s.Obs.Profile.s_sum_opaque;
          fr_blocks = (block, s) :: row.fr_blocks;
        })
    (Obs.Profile.sites p);
  rank_funcs
    (List.rev_map
       (fun fn ->
         let r = Hashtbl.find tbl fn in
         { r with fr_blocks = List.sort compare r.fr_blocks })
       !order)

(** Build the report for an already-profiled run.  [result.profile] must be
    present (run the engine with [config.profile = true]). *)
let of_result ~program ~level ~input_size ?(passes = Obs.Pass.create ())
    ?(t_compile = 0.0) (result : Engine.result) : t =
  let prof =
    match result.Engine.profile with
    | Some p -> p
    | None -> invalid_arg "Profile.of_result: engine run was not profiled"
  in
  {
    program;
    level;
    input_size;
    result;
    funcs = func_rows prof;
    passes = Obs.Pass.apps passes;
    pass_rollup = Obs.Pass.rollup passes;
    t_compile;
  }

(** Compile [source] at [level] (with the per-pass profile) and
    symbolically execute it with attribution on. *)
let profile ?(program = "<source>") ~(level : Costmodel.t) ?(input_size = 4)
    ?(timeout = 30.0) ?(jobs = 1) ?(link_libc = true) ?summaries ?solver_cache
    ?cache_dir (source : string) : t =
  let passes = Obs.Pass.create () in
  let t0 = Unix.gettimeofday () in
  let sources =
    if link_libc then [ Overify_vclib.Vclib.for_cost_model level; source ]
    else [ source ]
  in
  let m0 = Overify_minic.Frontend.compile_sources sources in
  let r = Pipeline.optimize ~prof:passes level m0 in
  let t_compile = Unix.gettimeofday () -. t0 in
  let searcher = if jobs > 1 then `Parallel jobs else `Dfs in
  let summaries =
    match summaries with
    | Some s -> s
    | None -> Engine.default_config.Engine.summaries
  in
  let result =
    Engine.run
      ~config:
        {
          Engine.default_config with
          Engine.input_size;
          timeout;
          searcher;
          profile = true;
          summaries;
          solver_cache;
          cache_dir;
        }
      r.Pipeline.modul
  in
  of_result ~program ~level:level.Costmodel.name ~input_size ~passes
    ~t_compile result

(* ---------------- rendering ---------------- *)

let pct part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total

let site_label fn block = Printf.sprintf "%s:L%d" fn block

(** Hottest (function, block) sites, ranked like functions (queries, then
    instructions — deterministic). *)
let hot_blocks ?(top = 8) t =
  List.concat_map
    (fun r ->
      List.map
        (fun (b, (s : Obs.Profile.site_stats)) -> (r.fr_fn, b, s))
        r.fr_blocks)
    t.funcs
  |> List.sort (fun (fa, ba, (a : Obs.Profile.site_stats))
                    (fb, bb, (b : Obs.Profile.site_stats)) ->
         match compare b.Obs.Profile.s_queries a.Obs.Profile.s_queries with
         | 0 -> (
             match compare b.Obs.Profile.s_insts a.Obs.Profile.s_insts with
             | 0 -> compare (fa, ba) (fb, bb)
             | c -> c)
         | c -> c)
  |> List.filteri (fun i _ -> i < top)

let print ?(top = 8) ?(out = stdout) t =
  let r = t.result in
  Printf.fprintf out
    "== verification profile: %s @ %s (n=%d symbolic bytes) ==\n" t.program
    t.level t.input_size;
  Printf.fprintf out
    "totals: paths=%d instructions=%s forks=%d queries=%d cache_hits=%d \
     solver=%sms wall=%sms compile=%sms complete=%b jobs=%d\n"
    r.Engine.paths
    (Report.fmt_int r.Engine.instructions)
    r.Engine.forks r.Engine.queries r.Engine.cache_hits
    (Report.ms r.Engine.solver_time)
    (Report.ms r.Engine.time) (Report.ms t.t_compile) r.Engine.complete
    r.Engine.jobs;
  Printf.fprintf out
    "solver: components=%d solves=%d hits: exact=%d canon=%d subset=%d \
     superset=%d store=%d\n\n"
    r.Engine.components r.Engine.component_solves r.Engine.hits_exact
    r.Engine.hits_canon r.Engine.hits_subset r.Engine.hits_superset
    r.Engine.hits_store;
  if
    r.Engine.summary_instantiated + r.Engine.summary_opaque
    + r.Engine.summary_computed + r.Engine.summary_cached
    > 0
  then
    Printf.fprintf out
      "summaries: instantiated=%d opaque=%d computed=%d cached=%d\n"
      r.Engine.summary_instantiated r.Engine.summary_opaque
      r.Engine.summary_computed r.Engine.summary_cached;
  List.iter
    (fun (d : Engine.degradation) ->
      Printf.fprintf out "degraded: %s paths=%d%s\n" d.Engine.d_kind
        d.Engine.d_paths
        (if d.Engine.d_where = "" then "" else " (" ^ d.Engine.d_where ^ ")"))
    r.Engine.degradations;
  let with_summaries =
    List.exists (fun f -> f.fr_sum_hits + f.fr_sum_opaque > 0) t.funcs
  in
  let rows =
    ([
       "function"; "insts"; "forks"; "queries"; "hits"; "solver (ms)";
       "solver %"; "paths"; "blocks";
     ]
    @ (if with_summaries then [ "sum hits"; "sum opq" ] else []))
    :: List.map
         (fun f ->
           [
             f.fr_fn;
             Report.fmt_int f.fr_insts;
             string_of_int f.fr_forks;
             string_of_int f.fr_queries;
             string_of_int f.fr_cache_hits;
             Report.ms f.fr_solver_time;
             Printf.sprintf "%.1f"
               (pct f.fr_solver_time r.Engine.solver_time);
             string_of_int f.fr_paths;
             string_of_int (List.length f.fr_blocks);
           ]
           @
           if with_summaries then
             [ string_of_int f.fr_sum_hits; string_of_int f.fr_sum_opaque ]
           else [])
         t.funcs
  in
  Report.table ~out rows;
  (match hot_blocks ~top t with
  | [] -> ()
  | hot ->
      Printf.fprintf out "\nhottest blocks (by queries, then instructions):\n";
      Report.table ~out
        ([ "site"; "insts"; "forks"; "queries"; "solver (ms)" ]
        :: List.map
             (fun (fn, b, (s : Obs.Profile.site_stats)) ->
               [
                 site_label fn b;
                 Report.fmt_int s.Obs.Profile.s_insts;
                 string_of_int s.Obs.Profile.s_forks;
                 string_of_int s.Obs.Profile.s_queries;
                 Report.ms s.Obs.Profile.s_solver_time;
               ])
             hot));
  (match t.pass_rollup with
  | [] -> ()
  | rollup ->
      Printf.fprintf out "\ncompile profile (per pass):\n";
      Report.table ~out
        ([ "pass"; "apps"; "changed"; "time (ms)"; "Δsize" ]
        :: List.map
             (fun (p : Obs.Pass.rollup) ->
               [
                 p.Obs.Pass.pr_pass;
                 string_of_int p.Obs.Pass.pr_apps;
                 string_of_int p.Obs.Pass.pr_changed;
                 Report.ms p.Obs.Pass.pr_time;
                 (if p.Obs.Pass.pr_dsize > 0 then "+" else "")
                 ^ string_of_int p.Obs.Pass.pr_dsize;
               ])
             rollup));
  (match r.Engine.profile with
  | Some p when p.Obs.Profile.qhist.Obs.Hist.count > 0 ->
      let h = p.Obs.Profile.qhist in
      Printf.fprintf out
        "\nsolver latency: %d real solves, mean=%.3fms p50=%.3fms \
         p90=%.3fms max=%.3fms\n"
        h.Obs.Hist.count
        (Obs.Hist.mean h *. 1000.)
        (Obs.Hist.percentile h 0.5 *. 1000.)
        (Obs.Hist.percentile h 0.9 *. 1000.)
        (h.Obs.Hist.max *. 1000.)
  | _ -> ())

(* ---------------- diff across levels ---------------- *)

(** Side-by-side per-function comparison of two profiles of the same
    program at different levels: which hot-spot did the level remove? *)
let print_diff ?(out = stdout) (a : t) (b : t) =
  Printf.fprintf out
    "== verification profile diff: %s @ %s vs %s (n=%d bytes) ==\n" a.program
    a.level b.level a.input_size;
  let ra = a.result and rb = b.result in
  Report.table ~out
    [
      [ "totals"; a.level; b.level; "Δ" ];
      [
        "paths";
        string_of_int ra.Engine.paths;
        string_of_int rb.Engine.paths;
        Printf.sprintf "%+d" (rb.Engine.paths - ra.Engine.paths);
      ];
      [
        "instructions";
        Report.fmt_int ra.Engine.instructions;
        Report.fmt_int rb.Engine.instructions;
        Printf.sprintf "%+d" (rb.Engine.instructions - ra.Engine.instructions);
      ];
      [
        "forks";
        string_of_int ra.Engine.forks;
        string_of_int rb.Engine.forks;
        Printf.sprintf "%+d" (rb.Engine.forks - ra.Engine.forks);
      ];
      [
        "queries";
        string_of_int ra.Engine.queries;
        string_of_int rb.Engine.queries;
        Printf.sprintf "%+d" (rb.Engine.queries - ra.Engine.queries);
      ];
      [
        "solver (ms)";
        Report.ms ra.Engine.solver_time;
        Report.ms rb.Engine.solver_time;
        Printf.sprintf "%+.1f"
          ((rb.Engine.solver_time -. ra.Engine.solver_time) *. 1000.);
      ];
      [
        "wall (ms)";
        Report.ms ra.Engine.time;
        Report.ms rb.Engine.time;
        Printf.sprintf "%+.1f" ((rb.Engine.time -. ra.Engine.time) *. 1000.);
      ];
    ];
  Printf.fprintf out "\n";
  (* union of function names; a function absent on one side reads as 0 —
     inlining at one level legitimately removes functions *)
  let find rows fn = List.find_opt (fun r -> r.fr_fn = fn) rows in
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.fr_fn) a.funcs
      @ List.map (fun r -> r.fr_fn) b.funcs)
  in
  let key fn =
    let q r = match find r fn with Some x -> x.fr_queries | None -> 0 in
    let i r = match find r fn with Some x -> x.fr_insts | None -> 0 in
    (max (q a.funcs) (q b.funcs), max (i a.funcs) (i b.funcs))
  in
  let names =
    List.sort
      (fun x y ->
        match compare (key y) (key x) with 0 -> compare x y | c -> c)
      names
  in
  let cell rows fn f = match find rows fn with Some r -> f r | None -> 0 in
  Report.table ~out
    ([
       "function";
       "insts " ^ a.level; "insts " ^ b.level;
       "forks " ^ a.level; "forks " ^ b.level;
       "queries " ^ a.level; "queries " ^ b.level;
       "solver Δ (ms)";
     ]
    :: List.map
         (fun fn ->
           let sa =
             match find a.funcs fn with Some r -> r.fr_solver_time | None -> 0.0
           in
           let sb =
             match find b.funcs fn with Some r -> r.fr_solver_time | None -> 0.0
           in
           [
             fn;
             Report.fmt_int (cell a.funcs fn (fun r -> r.fr_insts));
             Report.fmt_int (cell b.funcs fn (fun r -> r.fr_insts));
             string_of_int (cell a.funcs fn (fun r -> r.fr_forks));
             string_of_int (cell b.funcs fn (fun r -> r.fr_forks));
             string_of_int (cell a.funcs fn (fun r -> r.fr_queries));
             string_of_int (cell b.funcs fn (fun r -> r.fr_queries));
             Printf.sprintf "%+.1f" ((sb -. sa) *. 1000.);
           ])
         names)

(* ---------------- JSON ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Machine-readable report.  [times:false] (for golden/determinism tests
    and cross-run diffing) zeroes every wall-clock field and omits the
    latency histogram, leaving only deterministic attribution: two runs of
    the same program produce byte-identical documents. *)
let to_json ?(times = true) (t : t) : string =
  let r = t.result in
  let ms x = if times then Printf.sprintf "%.3f" (x *. 1000.) else "0.000" in
  let block_json (blk, (s : Obs.Profile.site_stats)) =
    Printf.sprintf
      {|{"block": %d, "instructions": %d, "forks": %d, "queries": %d, "cache_hits": %d, "solver_time_ms": %s, "paths": %d, "summary_hits": %d, "summary_opaque": %d}|}
      blk s.Obs.Profile.s_insts s.Obs.Profile.s_forks s.Obs.Profile.s_queries
      s.Obs.Profile.s_cache_hits
      (ms s.Obs.Profile.s_solver_time)
      s.Obs.Profile.s_paths s.Obs.Profile.s_sum_hits s.Obs.Profile.s_sum_opaque
  in
  let func_json f =
    Printf.sprintf
      {|    {"fn": "%s", "instructions": %d, "forks": %d, "queries": %d, "cache_hits": %d, "solver_time_ms": %s, "paths": %d, "summary_hits": %d, "summary_opaque": %d, "blocks": [%s]}|}
      (json_escape f.fr_fn) f.fr_insts f.fr_forks f.fr_queries f.fr_cache_hits
      (ms f.fr_solver_time) f.fr_paths f.fr_sum_hits f.fr_sum_opaque
      (String.concat ", " (List.map block_json f.fr_blocks))
  in
  let pass_json (p : Obs.Pass.rollup) =
    Printf.sprintf
      {|    {"pass": "%s", "applications": %d, "changed": %d, "time_ms": %s, "size_delta": %d}|}
      (json_escape p.Obs.Pass.pr_pass)
      p.Obs.Pass.pr_apps p.Obs.Pass.pr_changed
      (ms p.Obs.Pass.pr_time)
      p.Obs.Pass.pr_dsize
  in
  let latency =
    match r.Engine.profile with
    | Some p when times ->
        let h = p.Obs.Profile.qhist in
        Printf.sprintf
          ",\n  \"query_latency\": {\"count\": %d, \"mean_ms\": %.3f, \
           \"p50_ms\": %.3f, \"p90_ms\": %.3f, \"max_ms\": %.3f}"
          h.Obs.Hist.count
          (Obs.Hist.mean h *. 1000.)
          (Obs.Hist.percentile h 0.5 *. 1000.)
          (Obs.Hist.percentile h 0.9 *. 1000.)
          (h.Obs.Hist.max *. 1000.)
    | _ -> ""
  in
  let degradation_json (d : Engine.degradation) =
    Printf.sprintf {|{"kind": "%s", "where": "%s", "paths": %d}|}
      (json_escape d.Engine.d_kind)
      (json_escape d.Engine.d_where)
      d.Engine.d_paths
  in
  Printf.sprintf
    {|{
  "program": "%s",
  "level": "%s",
  "input_size": %d,
  "totals": {"paths": %d, "instructions": %d, "forks": %d, "queries": %d, "cache_hits": %d, "components": %d, "component_solves": %d, "hits_exact": %d, "hits_canon": %d, "hits_subset": %d, "hits_superset": %d, "hits_store": %d, "summary_instantiated": %d, "summary_opaque": %d, "summary_computed": %d, "summary_cached": %d, "solver_time_ms": %s, "time_ms": %s, "compile_ms": %s, "complete": %b, "jobs": %d},
  "degradations": [%s],
  "functions": [
%s
  ],
  "passes": [
%s
  ]%s
}|}
    (json_escape t.program) (json_escape t.level) t.input_size r.Engine.paths
    r.Engine.instructions r.Engine.forks r.Engine.queries r.Engine.cache_hits
    r.Engine.components r.Engine.component_solves r.Engine.hits_exact
    r.Engine.hits_canon r.Engine.hits_subset r.Engine.hits_superset
    r.Engine.hits_store r.Engine.summary_instantiated r.Engine.summary_opaque
    r.Engine.summary_computed r.Engine.summary_cached
    (ms r.Engine.solver_time) (ms r.Engine.time) (ms t.t_compile)
    r.Engine.complete r.Engine.jobs
    (String.concat ", " (List.map degradation_json r.Engine.degradations))
    (String.concat ",\n" (List.map func_json t.funcs))
    (String.concat ",\n" (List.map pass_json t.pass_rollup))
    latency
