(** Validated corpus sweep: translation-validate every optimization-pass
    application on every corpus program at every level, and report a
    per-pass verdict table (see EXPERIMENTS.md, "Validation sweep").

    The acceptance bar is zero [Counterexample] verdicts at every level;
    [Inconclusive] is tolerated only with its explicit budget-exhausted
    reason, which the table and the JSON report both carry. *)

module Costmodel = Overify_opt.Costmodel
module Programs = Overify_corpus.Programs
module Vclib = Overify_vclib.Vclib
module Tv = Overify_tv.Tv

type row = {
  program : Programs.t;
  level : Costmodel.t;
  report : Tv.report;
}

(** Compile [program] at [level] (linking the level's libc variant, exactly
    like {!Experiment.compile}) while validating every pass application. *)
let validate_one ?budget (level : Costmodel.t) (program : Programs.t) : row =
  let m0 =
    Overify_minic.Frontend.compile_sources
      [ Vclib.for_cost_model level; program.Programs.source ]
  in
  let (_, report) = Tv.validate ?budget level m0 in
  { program; level; report }

let row_to_json r =
  Printf.sprintf {|{"program": "%s", "report": %s}|} r.program.Programs.name
    (Tv.report_to_json r.report)

(** Run the sweep; returns the number of counterexample verdicts found (0
    is the expected result).  Writes the machine-readable report to
    [json_path] unless empty. *)
let run ?budget ?(levels = Costmodel.all) ?(programs = Programs.programs)
    ?(json_path = "BENCH_validation.json") () : int =
  Report.section "Translation-validated corpus sweep";
  let rows =
    List.concat_map
      (fun level -> List.map (validate_one ?budget level) programs)
      levels
  in
  let header =
    [ "program"; "level"; "applications"; "proved"; "cex"; "inconclusive";
      "queries"; "time (ms)" ]
  in
  let body =
    List.map
      (fun r ->
        let n = List.length r.report.Tv.records in
        let cex = List.length (Tv.counterexamples r.report) in
        let inc = List.length (Tv.inconclusives r.report) in
        let queries =
          List.fold_left
            (fun acc (rec_ : Tv.record) -> acc + rec_.Tv.outcome.Tv.queries)
            0 r.report.Tv.records
        in
        [
          r.program.Programs.name;
          r.level.Costmodel.name;
          string_of_int n;
          string_of_int (n - cex - inc);
          string_of_int cex;
          string_of_int inc;
          Report.fmt_int queries;
          Report.ms r.report.Tv.time;
        ])
      rows
  in
  Report.table (header :: body);
  (* surface every non-proved verdict with its full reason *)
  List.iter
    (fun r ->
      List.iter
        (fun (rec_ : Tv.record) ->
          match rec_.Tv.outcome.Tv.verdict with
          | Tv.Proved _ -> ()
          | v ->
              Printf.printf "  %s @ %s: %s in %s: %s\n"
                r.program.Programs.name r.level.Costmodel.name rec_.Tv.pass
                rec_.Tv.fn (Tv.string_of_verdict v))
        r.report.Tv.records;
      match Tv.first_offender r.report with
      | Some o ->
          Printf.printf "  %s @ %s: FIRST OFFENDING PASS: %s (in %s)\n"
            r.program.Programs.name r.level.Costmodel.name o.Tv.pass o.Tv.fn
      | None -> ())
    rows;
  if json_path <> "" then begin
    let oc = open_out json_path in
    output_string oc
      (Printf.sprintf {|{"sweeps": [
%s
]}
|}
         (String.concat ",\n" (List.map row_to_json rows)));
    close_out oc;
    Printf.printf "\nmachine-readable report: %s\n" json_path
  end;
  let total_cex =
    List.fold_left
      (fun acc r -> acc + List.length (Tv.counterexamples r.report))
      0 rows
  in
  if total_cex = 0 then
    print_endline "all pass applications validated: zero counterexamples"
  else Printf.printf "VALIDATION FAILED: %d counterexample(s)\n" total_cex;
  total_cex
