(** Table 1: the paper's motivating measurement — exhaustively exploring all
    paths of [wc] for symbolic strings, at every optimization level.

    Columns mirror the paper: t_verify, t_compile, t_run (we report simulated
    cycles and interpretation wall time), number of interpreted instructions,
    number of paths. *)

module Costmodel = Overify_opt.Costmodel
module Engine = Overify_symex.Engine

type row = {
  level : string;
  t_verify_ms : float;
  t_compile_ms : float;
  run_cycles : float;
  t_run_ms : float;
  instructions : int;
  paths : int;
  complete : bool;
}

(** The measured program.  [Error] (rather than an exception) on a
    thinned corpus, so harness entry points degrade to a diagnostic
    instead of aborting the whole report. *)
let wc () : (Overify_corpus.Programs.t, string) result =
  match Overify_corpus.Programs.find "wc" with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf
           "corpus has no program 'wc' (Table 1 measures it); available: %s"
           (String.concat ", " Overify_corpus.Programs.names))

let measure ?(input_size = 4) ?(timeout = 60.0) (level : Costmodel.t)
    (p : Overify_corpus.Programs.t) : row =
  let c = Experiment.compile level p in
  let v = Experiment.verify ~input_size ~timeout c in
  let cycles = Experiment.measure_cycles ~size:14 c in
  let t_run = Experiment.measure_run_time ~size:14 c in
  {
    level = level.Costmodel.name;
    t_verify_ms = v.Engine.time *. 1000.;
    t_compile_ms = c.Experiment.t_compile *. 1000.;
    run_cycles = cycles;
    t_run_ms = t_run *. 1000.;
    instructions = v.Engine.instructions;
    paths = v.Engine.paths;
    complete = v.Engine.complete;
  }

let rows ?input_size ?timeout () : (row list, string) result =
  Result.map
    (fun p -> List.map (fun cm -> measure ?input_size ?timeout cm p) Costmodel.all)
    (wc ())

let print ?(input_size = 4) ?timeout () =
  Report.section
    (Printf.sprintf
       "Table 1: exhaustive symbolic execution of wc (%d symbolic bytes)"
       input_size);
  match rows ~input_size ?timeout () with
  | Error msg ->
      Printf.printf "table 1 unavailable: %s\n" msg;
      []
  | Ok rs ->
      Report.table
        ([ "Optimization"; "t_verify [ms]"; "t_compile [ms]"; "t_run [cycles]";
           "t_run [ms]"; "# instructions"; "# paths"; "complete" ]
        :: List.map
             (fun r ->
               [
                 r.level;
                 Printf.sprintf "%.1f" r.t_verify_ms;
                 Printf.sprintf "%.1f" r.t_compile_ms;
                 Printf.sprintf "%.0f" r.run_cycles;
                 Printf.sprintf "%.2f" r.t_run_ms;
                 Report.fmt_int r.instructions;
                 Report.fmt_int r.paths;
                 string_of_bool r.complete;
               ])
             rs);
      rs
